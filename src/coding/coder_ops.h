// Symmetric encode/decode operations over adaptive branches.
//
// Lepton's model logic must be written exactly once: any drift between the
// encoder's and decoder's view of a context is a correctness bug of the
// worst kind (silent corruption caught only by round-trip tests, §5.2).
// All model code is therefore templated over an Ops policy; EncodeOps
// writes bits it is told, DecodeOps returns bits from the stream, and both
// update the branch identically.
#pragma once

#include <cstdint>

#include "coding/bool_coder.h"
#include "coding/branch.h"

namespace lepton::coding {

struct EncodeOps {
  static constexpr bool kEncoding = true;
  BoolEncoder* enc;

  // Codes `bit` under `b` and returns it.
  bool code_bit(Branch& b, bool bit) {
    enc->put(bit, b.prob_zero());
    b.record(bit);
    return bit;
  }

  // Codes `count` raw bits in one batched call (no model state) and
  // returns them. The fast path for near-uniform bit runs.
  std::uint32_t code_literal(std::uint32_t bits, int count) {
    enc->put_literal(bits, count);
    return bits;
  }
};

struct DecodeOps {
  static constexpr bool kEncoding = false;
  BoolDecoder* dec;

  // Ignores the hint and returns the decoded bit.
  bool code_bit(Branch& b, bool /*hint*/) {
    bool bit = dec->get(b.prob_zero());
    b.record(bit);
    return bit;
  }

  // Ignores the hint and returns `count` decoded raw bits.
  std::uint32_t code_literal(std::uint32_t /*hint*/, int count) {
    return dec->get_literal(count);
  }
};

// Unary-exponent / sign / residual integer coding (the paper's Exp-Golomb
// scheme, §A.2): exponent e = bit-length of |v| coded as unary over
// per-position branches, then a sign bit, then the e-1 bits below the
// implicit leading 1. The top residual bit stays adaptive (it still
// carries structure); the bits below it are statistically near-uniform,
// so they go through the batched literal fast path — one range
// subdivision per bit, no bin lookups, no adaptation. `exp_branches` must
// hold at least `max_bits` branches, `res_branches` at least
// `max_bits - 1`.
template <typename Ops>
std::int32_t code_value(Ops& ops, Branch* exp_branches, Branch* sign_branch,
                        Branch* res_branches, int max_bits,
                        std::int32_t v_if_encoding) {
  int target_e = 0;
  if constexpr (Ops::kEncoding) {
    std::uint32_t a = v_if_encoding < 0
                          ? static_cast<std::uint32_t>(-v_if_encoding)
                          : static_cast<std::uint32_t>(v_if_encoding);
    while (a != 0) {
      ++target_e;
      a >>= 1;
    }
  }
  int e = 0;
  while (e < max_bits) {
    bool more = ops.code_bit(exp_branches[e], e < target_e);
    if (!more) break;
    ++e;
  }
  if (e == 0) return 0;

  bool negative = ops.code_bit(*sign_branch, v_if_encoding < 0);

  std::uint32_t mag = 1;  // implicit leading 1
  std::uint32_t abs_v = v_if_encoding < 0
                            ? static_cast<std::uint32_t>(-v_if_encoding)
                            : static_cast<std::uint32_t>(v_if_encoding);
  if (e >= 2) {
    int top = e - 2;  // highest residual bit: adaptive
    bool bit = ops.code_bit(res_branches[top], (abs_v >> top) & 1u);
    mag = (mag << 1) | (bit ? 1u : 0u);
    if (top > 0) {  // remaining low bits: batched raw literals
      std::uint32_t low = ops.code_literal(abs_v & ((1u << top) - 1u), top);
      mag = (mag << top) | low;
    }
  }
  auto result = static_cast<std::int32_t>(mag);
  return negative ? -result : result;
}

// Fixed-width binary-tree coding of a value in [0, 2^bits): each node of
// the prefix tree has its own branch (the paper's "bin for each bit is
// further indexed by the previously decoded bits", §A.2.1).
// `tree_branches` must hold at least 2^bits entries.
template <typename Ops>
std::uint32_t code_tree(Ops& ops, Branch* tree_branches, int bits,
                        std::uint32_t v_if_encoding) {
  std::uint32_t node = 1;  // heap-style index; value bits appended below
  for (int i = bits - 1; i >= 0; --i) {
    bool bit = ops.code_bit(tree_branches[node],
                            (v_if_encoding >> i) & 1u);
    node = (node << 1) | (bit ? 1u : 0u);
  }
  return node - (1u << bits);
}

}  // namespace lepton::coding
