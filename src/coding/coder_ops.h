// Symmetric encode/decode operations over adaptive branches.
//
// Lepton's model logic must be written exactly once: any drift between the
// encoder's and decoder's view of a context is a correctness bug of the
// worst kind (silent corruption caught only by round-trip tests, §5.2).
// All model code is therefore templated over an Ops policy; EncodeOps
// writes bits it is told, DecodeOps returns bits from the stream, and both
// update the branch identically.
#pragma once

#include <bit>
#include <cstdint>

#include "coding/bool_coder.h"
#include "coding/branch.h"

namespace lepton::coding {

struct EncodeOps {
  static constexpr bool kEncoding = true;
  BoolEncoder* enc;

  // Codes `bit` under `b` and returns it.
  bool code_bit(Branch& b, bool bit) {
    enc->put(bit, b.prob_zero());
    b.record(bit);
    return bit;
  }

  // Codes `count` raw bits in one batched call (no model state) and
  // returns them. The fast path for near-uniform bit runs.
  std::uint32_t code_literal(std::uint32_t bits, int count) {
    enc->put_literal(bits, count);
    return bits;
  }
};

struct DecodeOps {
  static constexpr bool kEncoding = false;
  BoolDecoder* dec;

  // Ignores the hint and returns the decoded bit.
  bool code_bit(Branch& b, bool /*hint*/) {
    bool bit = dec->get(b.prob_zero());
    b.record(bit);
    return bit;
  }

  // Ignores the hint and returns `count` decoded raw bits.
  std::uint32_t code_literal(std::uint32_t /*hint*/, int count) {
    return dec->get_literal(count);
  }
};

// Unary-exponent / sign / residual integer coding (the paper's Exp-Golomb
// scheme, §A.2): exponent e = bit-length of |v| coded as unary over
// per-position branches, then a sign bit, then the e-1 bits below the
// implicit leading 1. The top residual bit stays adaptive (it still
// carries structure); the bits below it are statistically near-uniform,
// so they go through the batched literal fast path — one range
// subdivision per bit, no bin lookups, no adaptation. `exp_branches` must
// hold at least `max_bits` branches, `res_branches` at least
// `max_bits - 1`.
//
// These templates are the *reference* implementation: one ops.code_bit per
// bit, in the canonical order. The decode side has speculative non-template
// overloads below that resolve the same bit chains with batched
// renormalization and next-branch probability preloads; the overloads are
// bit-for-bit equivalent (the fuzz tests in tests/hotloop_test.cpp compare
// them against these templates instantiated with DecodeOps).
template <typename Ops>
std::int32_t code_value(Ops& ops, Branch* exp_branches, Branch* sign_branch,
                        Branch* res_branches, int max_bits,
                        std::int32_t v_if_encoding) {
  int target_e = 0;
  if constexpr (Ops::kEncoding) {
    std::uint32_t a = v_if_encoding < 0
                          ? static_cast<std::uint32_t>(-v_if_encoding)
                          : static_cast<std::uint32_t>(v_if_encoding);
    target_e = std::bit_width(a);  // one instruction, not a shift loop
  }
  int e = 0;
  while (e < max_bits) {
    bool more = ops.code_bit(exp_branches[e], e < target_e);
    if (!more) break;
    ++e;
  }
  if (e == 0) return 0;

  bool negative = ops.code_bit(*sign_branch, v_if_encoding < 0);

  std::uint32_t mag = 1;  // implicit leading 1
  std::uint32_t abs_v = v_if_encoding < 0
                            ? static_cast<std::uint32_t>(-v_if_encoding)
                            : static_cast<std::uint32_t>(v_if_encoding);
  if (e >= 2) {
    int top = e - 2;  // highest residual bit: adaptive
    bool bit = ops.code_bit(res_branches[top], (abs_v >> top) & 1u);
    mag = (mag << 1) | (bit ? 1u : 0u);
    if (top > 0) {  // remaining low bits: batched raw literals
      std::uint32_t low = ops.code_literal(abs_v & ((1u << top) - 1u), top);
      mag = (mag << top) | low;
    }
  }
  auto result = static_cast<std::int32_t>(mag);
  return negative ? -result : result;
}

// Fixed-width binary-tree coding of a value in [0, 2^bits): each node of
// the prefix tree has its own branch (the paper's "bin for each bit is
// further indexed by the previously decoded bits", §A.2.1).
// `tree_branches` must hold at least 2^bits entries.
template <typename Ops>
std::uint32_t code_tree(Ops& ops, Branch* tree_branches, int bits,
                        std::uint32_t v_if_encoding) {
  std::uint32_t node = 1;  // heap-style index; value bits appended below
  for (int i = bits - 1; i >= 0; --i) {
    bool bit = ops.code_bit(tree_branches[node],
                            (v_if_encoding >> i) & 1u);
    node = (node << 1) | (bit ? 1u : 0u);
  }
  return node - (1u << bits);
}

// ---- Speculative decode-side overloads -------------------------------------
//
// Overload resolution picks these (non-template beats template) whenever the
// model code instantiates with DecodeOps, so SegmentCodec's decode loop gets
// them without any call-site changes; EncodeOps — and any explicit
// `code_tree<DecodeOps>` reference call — still uses the templates above.
//
// Two levers, both bit-exact (identical arithmetic, identical branch-update
// sequence — only buffering and instruction scheduling change):
//  * batched renormalization: one adaptive bit consumes at most one stream
//    byte, so a chain of n bits needs one BoolDecoder::prepare(n) instead of
//    n refill checks, and each bit resolves branchlessly (get_prepared);
//  * split-table speculation: while the range split for the current tree
//    node resolves, both candidate child probabilities are already loaded
//    (they sit on the same cache line in the clustered model layout), so
//    the dependent bin lookup is off the critical path — the next split is
//    ready the moment the current bit's compare retires.

// Tree decode with both-child probability preload. Runs in prepared chunks
// of up to 6 bits (the decoder window's ceiling), so any tree depth works —
// the model's trees are 3/6 bits, the byte-arith baseline's are 8.
inline std::uint32_t code_tree(DecodeOps& ops, Branch* tree_branches, int bits,
                               std::uint32_t /*hint*/) {
  BoolDecoder* dec = ops.dec;
  std::uint32_t node = 1;
  std::uint8_t p = tree_branches[1].prob_zero();
  int i = bits - 1;
  while (i >= 0) {
    int chunk = i + 1;
    if (chunk > 6) chunk = 6;
    dec->prepare(chunk);
    for (int j = 0; j < chunk; ++j, --i) {
      // Children of every non-final level stay inside the 2^bits-entry row;
      // the last level has no children to preload.
      std::uint8_t p0 = 0, p1 = 0;
      if (i > 0) {
        p0 = tree_branches[2 * node].prob_zero();
        p1 = tree_branches[2 * node + 1].prob_zero();
      }
      bool bit = dec->get_prepared(p);
      tree_branches[node].record(bit);
      node = (node << 1) | (bit ? 1u : 0u);
      p = bit ? p1 : p0;
    }
  }
  return node - (1u << bits);
}

// Exp-Golomb decode. A prepared-chunk walk of the unary exponent (chunks
// of 4 or 6, with or without next-bin probability preloads) was measured
// *slower* than the plain per-bit walk on every tried tuning (ISSUE 4's
// spec_decode_speedup 0.961 regression): one adaptive bit's refill check
// is a single well-predicted compare, so chunking only adds loop overhead
// here — unlike code_tree above, where the chunk walk carries the
// both-children preload that does pay. This overload therefore delegates
// to the per-bit reference template; it exists so the speculative-path
// seam (and its fuzz coverage) stays in place. See DESIGN.md "what didn't
// pay".
inline std::int32_t code_value(DecodeOps& ops, Branch* exp_branches,
                               Branch* sign_branch, Branch* res_branches,
                               int max_bits, std::int32_t hint) {
  return code_value<DecodeOps>(ops, exp_branches, sign_branch, res_branches,
                               max_bits, hint);
}

}  // namespace lepton::coding
