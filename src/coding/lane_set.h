// Steps N independent segment codecs ("lanes") in lockstep, one MCU column
// at a time, inside a single instruction stream.
//
// This is the interleaved-rANS trick applied to the adaptive bool coder:
// each lane owns its own coder window, probability model, and context
// rings, so the serial carry/renormalize/adapt chain of lane k has no data
// dependency on lane j. Alternating lanes at MCU-column granularity gives
// the out-of-order core N dependency chains to overlap where the v2 format
// gives it one — which is why this pays off on a single vCPU (§3.4's
// restructuring-for-parallelism taken down to the ILP level). Column
// granularity (rather than whole rows) keeps every lane's working set —
// its two context ring rows and its model's hot bins — resident while the
// chains interleave.
//
// The lanes must already be configured (set_row_map with this group's base
// row and the lane stride) and are driven through SegmentCodec's stepping
// API: begin_row on all lanes, then every column across all lanes, then
// end_row on all. Works for encode and decode instantiations alike.
#pragma once

#include <cstddef>

#include "lepton/format.h"

namespace lepton::coding {

template <typename Codec, typename Source>
class LaneSet {
 public:
  void clear() { n_ = 0; }
  void add(Codec* lane) { lanes_[n_++] = lane; }
  std::size_t size() const { return n_; }
  Codec* lane(std::size_t k) const { return lanes_[k]; }

  // Codes local row `local_row` of the first `active` lanes (the final
  // round-robin group of a segment can be ragged when the row count is not
  // a lane multiple). `source` is ground truth on encode, nullptr on
  // decode; every lane maps `local_row` to its own source row.
  void code_row_group(int local_row, std::size_t active, int mcus_x,
                      const Source* source) const {
    for (std::size_t k = 0; k < active; ++k) {
      lanes_[k]->begin_row(local_row, source);
    }
    // The hot interleave. The two-lane shape is by far the most common
    // (kDefaultCoderLanes); spelling it out keeps the pair of independent
    // inlined coder bodies adjacent in one straight-line loop.
    if (active == 2) {
      Codec* l0 = lanes_[0];
      Codec* l1 = lanes_[1];
      for (int mx = 0; mx < mcus_x; ++mx) {
        l0->code_row_mcu(mx);
        l1->code_row_mcu(mx);
      }
    } else {
      for (int mx = 0; mx < mcus_x; ++mx) {
        for (std::size_t k = 0; k < active; ++k) lanes_[k]->code_row_mcu(mx);
      }
    }
    for (std::size_t k = 0; k < active; ++k) lanes_[k]->end_row();
  }

 private:
  Codec* lanes_[core::kMaxLanes] = {};
  std::size_t n_ = 0;
};

}  // namespace lepton::coding
