// Adaptive "statistic bin" (the paper's unit of model state, §3.2).
//
// Each Branch tracks how many zeros and ones it has coded and exposes an
// 8-bit probability for the range coder. Bins start at 50-50 and adapt
// independently as the file is coded (§3.2); per-thread models are
// independent copies, which is why more threads cost a little compression.
#pragma once

#include <cstdint>

namespace lepton::coding {

namespace detail {

// The count→probability division is baked into a compile-time table
// indexed by the packed 16-bit count word (zeros in the low byte, ones in
// the high byte). Counts are virtual (start at 1/1) and renormalization
// keeps both >= 1, so zero-count entries are never read; they hold the
// clamp floor anyway.
struct ProbZeroTable {
  std::uint8_t p[65536];
};

inline constexpr ProbZeroTable make_prob_zero_table() {
  ProbZeroTable t{};
  for (unsigned z = 0; z < 256; ++z) {
    for (unsigned o = 0; o < 256; ++o) {
      unsigned total = z + o;
      unsigned v = total == 0 ? 128 : (z << 8) / total;
      t.p[z | (o << 8)] =
          static_cast<std::uint8_t>(v < 1 ? 1 : (v > 255 ? 255 : v));
    }
  }
  return t;
}

inline constexpr ProbZeroTable kProbZero = make_prob_zero_table();

}  // namespace detail

// Layout notes, both load-bearing:
//  * The whole bin is one uint32_t (counts in the low 16 bits, cached
//    probability in bits 16..23): record() stores that one whole word,
//    never a lone uint8_t — a uint8_t (unsigned char) store may alias
//    anything under the strict-aliasing rules, which forced the compiler
//    to reload the inlined range-coder state (low/range/code) from memory
//    after every coded bit when counts were updated bytewise.
//  * The probability is cached *in the bin* and refreshed by record().
//    prob_zero() is the first operation of every coded bit — the single
//    hottest load in the codec — and sits on the serial decode chain
//    (bound depends on it). A load of the packed count word followed by a
//    dependent 64 KiB table load put two chained loads on that critical
//    path; caching the table byte next to the counts makes it one L1 load
//    from the cluster line the surrounding bins already pulled in, and
//    moves the table lookup into record(), off the chain.
class Branch {
 public:
  // P(bit == 0) scaled to [1, 255]; starts at 128 (50-50).
  std::uint8_t prob_zero() const {
    return static_cast<std::uint8_t>(bits_ >> 16);
  }

  void record(bool bit) {
    std::uint32_t c = bits_ & 0xFFFFu;
    if ((bit ? (c >> 8) : (c & 0xFF)) == 0xFF) {
      // Renormalize: halve both counts (keeping >= 1) so the bin keeps
      // adapting to recent statistics instead of saturating.
      std::uint32_t z = ((c & 0xFF) + 1u) >> 1;
      std::uint32_t o = ((c >> 8) + 1u) >> 1;
      c = z | (o << 8);
    }
    c += bit ? 0x0100u : 0x0001u;
    bits_ = c | (static_cast<std::uint32_t>(detail::kProbZero.p[c]) << 16);
  }

  std::uint16_t observations() const {
    return static_cast<std::uint16_t>((bits_ & 0xFF) + ((bits_ >> 8) & 0xFF) -
                                      2);
  }

 private:
  // ones << 8 | zeros in the low half (1/1 == 50-50 prior), kProbZero of
  // those counts in bits 16..23, top byte zero.
  std::uint32_t bits_ = 0x0101u | (128u << 16);
};

static_assert(sizeof(Branch) == 4, "bins are the model's memory footprint");

}  // namespace lepton::coding
