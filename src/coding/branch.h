// Adaptive "statistic bin" (the paper's unit of model state, §3.2).
//
// Each Branch tracks how many zeros and ones it has coded and exposes an
// 8-bit probability for the range coder. Bins start at 50-50 and adapt
// independently as the file is coded (§3.2); per-thread models are
// independent copies, which is why more threads cost a little compression.
#pragma once

#include <cstdint>

namespace lepton::coding {

namespace detail {

// prob_zero is evaluated once per coded bit — the single hottest scalar
// operation in the codec — so the count→probability division is baked into
// a compile-time table indexed directly by the packed 16-bit count word
// (zeros in the low byte, ones in the high byte): one load, one index.
// Counts are virtual (start at 1/1) and renormalization keeps both >= 1,
// so zero-count entries are never read; they hold the clamp floor anyway.
struct ProbZeroTable {
  std::uint8_t p[65536];
};

inline constexpr ProbZeroTable make_prob_zero_table() {
  ProbZeroTable t{};
  for (unsigned z = 0; z < 256; ++z) {
    for (unsigned o = 0; o < 256; ++o) {
      unsigned total = z + o;
      unsigned v = total == 0 ? 128 : (z << 8) / total;
      t.p[z | (o << 8)] =
          static_cast<std::uint8_t>(v < 1 ? 1 : (v > 255 ? 255 : v));
    }
  }
  return t;
}

inline constexpr ProbZeroTable kProbZero = make_prob_zero_table();

}  // namespace detail

// The two counts live in one uint16_t on purpose: record() then stores a
// uint16_t, not a uint8_t. A uint8_t (unsigned char) store may alias
// anything under the strict-aliasing rules, which forced the compiler to
// reload the inlined range-coder state (low/range/code) from memory after
// every coded bit; with a uint16_t store that state stays in registers.
class Branch {
 public:
  // P(bit == 0) scaled to [1, 255]; starts at 128 (50-50).
  std::uint8_t prob_zero() const { return detail::kProbZero.p[counts_]; }

  void record(bool bit) {
    std::uint16_t c = counts_;
    if ((bit ? (c >> 8) : (c & 0xFF)) == 0xFF) {
      // Renormalize: halve both counts (keeping >= 1) so the bin keeps
      // adapting to recent statistics instead of saturating.
      std::uint32_t z = ((c & 0xFF) + 1u) >> 1;
      std::uint32_t o = ((c >> 8) + 1u) >> 1;
      c = static_cast<std::uint16_t>(z | (o << 8));
    }
    counts_ = static_cast<std::uint16_t>(c + (bit ? 0x0100 : 0x0001));
  }

  std::uint16_t observations() const {
    return static_cast<std::uint16_t>((counts_ & 0xFF) + (counts_ >> 8) - 2);
  }

 private:
  std::uint16_t counts_ = 0x0101;  // ones << 8 | zeros; 1/1 == 50-50 prior
};

static_assert(sizeof(Branch) == 2, "bins are the model's memory footprint");

}  // namespace lepton::coding
