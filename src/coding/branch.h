// Adaptive "statistic bin" (the paper's unit of model state, §3.2).
//
// Each Branch tracks how many zeros and ones it has coded and exposes an
// 8-bit probability for the range coder. Bins start at 50-50 and adapt
// independently as the file is coded (§3.2); per-thread models are
// independent copies, which is why more threads cost a little compression.
#pragma once

#include <cstdint>

namespace lepton::coding {

class Branch {
 public:
  // P(bit == 0) scaled to [1, 255]; starts at 128 (50-50).
  std::uint8_t prob_zero() const {
    unsigned total = zeros_ + ones_;
    unsigned p = (static_cast<unsigned>(zeros_) << 8) / total;
    return static_cast<std::uint8_t>(p < 1 ? 1 : (p > 255 ? 255 : p));
  }

  void record(bool bit) {
    std::uint8_t& c = bit ? ones_ : zeros_;
    if (c == 0xFF) {
      // Renormalize: halve both counts (keeping >= 1) so the bin keeps
      // adapting to recent statistics instead of saturating.
      zeros_ = static_cast<std::uint8_t>((zeros_ + 1) >> 1);
      ones_ = static_cast<std::uint8_t>((ones_ + 1) >> 1);
    }
    ++c;
  }

  std::uint16_t observations() const {
    return static_cast<std::uint16_t>(zeros_ + ones_ - 2);
  }

 private:
  std::uint8_t zeros_ = 1;  // virtual counts: 1/1 == 50-50 prior
  std::uint8_t ones_ = 1;
};

static_assert(sizeof(Branch) == 2, "bins are the model's memory footprint");

}  // namespace lepton::coding
