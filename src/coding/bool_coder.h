// Binary arithmetic (range) coder with 8-bit probabilities.
//
// The paper's footnote 1 says Lepton implements "a modified version of a
// VP8 range coder" (RFC 6386 §13.2). We implement the same family — a
// byte-renormalized binary range coder driven by an 8-bit probability of
// zero — using the carry-counting low/cache scheme (LZMA lineage) rather
// than VP8's emitted-byte carry walk-back, because it handles carries
// without revisiting the output buffer. Entropy performance is equivalent
// (documented as a substitution in DESIGN.md).
//
// Probabilities are P(bit == 0) scaled to [1, 255]. The decoder never reads
// past the end of its input: a truncated or hostile stream yields garbage
// bits, never undefined behaviour — the codec's outer round-trip gate is
// what decides admissibility (§5.7). Whether the decoder *did* run past the
// end is recorded and exposed via overran(), so validation layers can
// distinguish exact consumption from truncation.
//
// Hot-path notes (DESIGN.md "Performance architecture"):
//  * the encoder can write into a caller-owned, capacity-reserved buffer so
//    a long-lived CodecContext reuses one allocation across files, and it
//    emits through raw stores into over-allocated storage (one capacity
//    check per renormalization burst, not a push_back per byte);
//  * both sides have a put_literal/get_literal fast path for raw-bit runs
//    that subdivides the range by powers of two directly — no probability
//    multiply, no branch-statistics update;
//  * the decoder batches renormalization: it refills a 64-bit byte window
//    in bulk, and because one adaptive bit consumes at most one window byte
//    (range ≥ 2^16 after any update, so a single <<8 restores range ≥
//    2^24), a caller can prepare() a short bit chain once and then resolve
//    each bit with get_prepared() — no per-bit refill check, branchless
//    range/code update. coder_ops.h builds the speculative multi-bit tree
//    and Exp-Golomb decodes on top of this.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace lepton::coding {

class BoolEncoder {
 public:
  // Encodes into an internal buffer (finish() moves it out).
  BoolEncoder() : out_(&own_) {}

  // Encodes into `*out`, which is cleared up front but keeps its capacity —
  // the CodecContext scratch-reuse path. The buffer must outlive finish().
  explicit BoolEncoder(std::vector<std::uint8_t>* out) : out_(out) {
    out_->clear();
  }

  void reserve(std::size_t bytes) {
    if (out_->size() < bytes) out_->resize(bytes);
  }

  void put(bool bit, std::uint8_t prob_zero) {
    std::uint32_t bound = (range_ >> 8) * prob_zero;
    // Branchless split selection: adaptive bits sit near maximum entropy,
    // so a conditional branch here mispredicts constantly.
    std::uint32_t mask = 0u - static_cast<std::uint32_t>(bit);
    low_ += bound & mask;
    range_ = ((range_ - bound) & mask) | (bound & ~mask);
    // One adaptive bit shrinks range by at most 255/256ths of itself plus
    // the >>8 truncation, so range ≥ 2^16 afterwards: a single
    // renormalization always restores range ≥ 2^24.
    if (range_ < (1u << 24)) {
      range_ <<= 8;
      shift_low();
    }
  }

  // Raw-bit fast path: appends the low `count` bits of `bits` (MSB first)
  // by halving the range per bit. Pairs with BoolDecoder::get_literal; the
  // bit cost is exactly 1.0 and no model state is touched.
  void put_literal(std::uint32_t bits, int count) {
    for (int i = count - 1; i >= 0; --i) {
      range_ >>= 1;
      std::uint32_t mask = 0u - ((bits >> i) & 1u);
      low_ += range_ & mask;
      if (range_ < (1u << 24)) {
        range_ <<= 8;
        shift_low();
      }
    }
  }

  // Terminates the stream and returns the bytes. With an external buffer the
  // same bytes are also left in that buffer (the return value moves from
  // it only when the encoder owns the storage). The encoder must not be
  // used afterwards.
  std::vector<std::uint8_t> finish() {
    flush();
    if (out_ == &own_) return std::move(own_);
    return *out_;
  }

  // Terminates the stream, leaving the bytes in the buffer passed at
  // construction (no copy). Only valid with an external buffer.
  void finish_into_buffer() { flush(); }

  std::size_t bytes_so_far() const { return len_; }

 private:
  void flush() {
    for (int i = 0; i < 5; ++i) shift_low();
    out_->resize(len_);  // storage beyond len_ is over-allocation
  }

  void shift_low() {
    if (static_cast<std::uint32_t>(low_) < 0xFF000000u || (low_ >> 32) != 0) {
      auto carry = static_cast<std::uint8_t>(low_ >> 32);
      // Raw stores into over-allocated storage: the vector's size() is only
      // authoritative after flush() trims it to len_.
      ensure(pending_ff_ + 2);
      std::uint8_t* dst = out_->data() + len_;
      if (!first_) *dst++ = static_cast<std::uint8_t>(cache_ + carry);
      for (; pending_ff_ > 0; --pending_ff_) {
        *dst++ = static_cast<std::uint8_t>(0xFF + carry);
      }
      len_ = static_cast<std::size_t>(dst - out_->data());
      cache_ = static_cast<std::uint8_t>(low_ >> 24);
      first_ = false;
    } else {
      ++pending_ff_;
    }
    low_ = (low_ & 0x00FFFFFFull) << 8;
  }

  void ensure(std::uint64_t extra) {
    if (out_->size() < len_ + extra) {
      std::size_t grown = out_->size() * 2;
      std::size_t need = len_ + static_cast<std::size_t>(extra) + 64;
      out_->resize(grown > need ? grown : need);
    }
  }

  std::vector<std::uint8_t> own_;
  std::vector<std::uint8_t>* out_;
  std::size_t len_ = 0;  // emitted bytes; out_->size() is capacity in use
  std::uint64_t low_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  std::uint8_t cache_ = 0;
  std::uint64_t pending_ff_ = 0;
  bool first_ = true;
};

class BoolDecoder {
 public:
  explicit BoolDecoder(std::span<const std::uint8_t> data) : d_(data) {
    refill();
    for (int i = 0; i < 4; ++i) {
      wbits_ -= 8;
      code_ = (code_ << 8) |
              static_cast<std::uint32_t>((win_ >> wbits_) & 0xFF);
    }
    popped_ += 4;
  }

  bool get(std::uint8_t prob_zero) {
    if (wbits_ < 8) refill();
    return get_prepared(prob_zero);
  }

  // Guarantees the next `nbits` adaptive-bit decodes (each consumes at most
  // one renormalization byte) can run without any refill or bounds check.
  // nbits must be <= 6 (the window holds up to 56 buffered bits).
  void prepare(int nbits) {
    if (wbits_ < nbits * 8) refill();
  }

  // One adaptive bit with no refill check — requires a prior prepare()
  // covering it. Both the split selection and the ≤1-byte renormalization
  // keep *predicted branches* on purpose: well-adapted model bins are
  // heavily skewed and renorm fires roughly once per coded byte, so the
  // predictor resolves both off the critical path, while a cmov/mask chain
  // would serialize every bit behind a variable shift of code_ (measured:
  // fully branchless here costs ~10% whole-decode). The uniform-bit
  // literal path below is the opposite case and is branchless. What this
  // path removes relative to a classic per-bit decoder is the per-renorm
  // memory load with its bounds check: the byte pops from a register.
  bool get_prepared(std::uint8_t prob_zero) {
    std::uint32_t bound = (range_ >> 8) * prob_zero;
    bool bit;
    if (code_ < bound) {
      bit = false;
      range_ = bound;
    } else {
      bit = true;
      code_ -= bound;
      range_ -= bound;
    }
    if (range_ < (1u << 24)) {
      range_ <<= 8;
      wbits_ -= 8;
      code_ = (code_ << 8) |
              static_cast<std::uint32_t>((win_ >> wbits_) & 0xFF);
      ++popped_;
    }
    return bit;
  }

  // Raw-bit fast path mirroring BoolEncoder::put_literal. Returns `count`
  // bits MSB-first. Each literal bit halves the range, so it too consumes
  // at most one renormalization byte; bits run in prepared chunks.
  std::uint32_t get_literal(int count) {
    std::uint32_t v = 0;
    int i = 0;
    while (i < count) {
      int chunk = count - i;
      if (chunk > 6) chunk = 6;
      prepare(chunk);
      for (int j = 0; j < chunk; ++j) {
        range_ >>= 1;
        std::uint32_t one = code_ >= range_ ? 1u : 0u;
        code_ -= range_ & (0u - one);
        v = (v << 1) | one;
        std::uint32_t renorm = range_ < (1u << 24) ? 1u : 0u;
        int s = static_cast<int>(renorm << 3);
        range_ <<= s;
        wbits_ -= s;
        std::uint32_t byte =
            static_cast<std::uint32_t>((win_ >> wbits_) & 0xFF) &
            (0u - renorm);
        code_ = (code_ << s) | byte;
        popped_ += renorm;
      }
      i += chunk;
    }
    return v;
  }

  // True once the decoder has consumed (or run past) all input; used by
  // validation, not required for correctness.
  bool exhausted() const { return popped_ >= d_.size(); }

  // True iff the decoder needed bytes beyond the end of its input — i.e.
  // the stream was truncated relative to what the coded data demanded. A
  // well-formed stream decodes to exactly its own length and never sets
  // this; validation (verify.cpp's admissibility gate) uses it to separate
  // truncation from exact consumption.
  bool overran() const { return popped_ > d_.size(); }

  // Exact consumption counts behind the exhausted()/overran() booleans,
  // aggregated into lepton::DecodeStats so validation layers outside the
  // whole-file path (chunk decode, the store's get()) can report *how far*
  // a stream was consumed, not just whether it ran out. consumed() never
  // exceeds available(): an overrunning decode reads synthetic zero bytes,
  // it does not advance past the end.
  std::size_t consumed() const {
    return popped_ < d_.size() ? static_cast<std::size_t>(popped_) : d_.size();
  }
  std::size_t available() const { return d_.size(); }

 private:
  // Refills the byte window to 56 bits. Bytes past the end of the input
  // read as zero (truncated input); whether any synthetic byte was actually
  // *consumed* is what popped_ vs d_.size() records — prefetching them into
  // the window is unobservable.
  void refill() {
    if (pos_ + 8 <= d_.size()) {
      // Bulk path: load the next 8 bytes once, take what fits.
      std::uint64_t chunk;
      std::memcpy(&chunk, d_.data() + pos_, 8);
#if defined(__GNUC__) || defined(__clang__)
      chunk = __builtin_bswap64(chunk);  // first stream byte = MSB
#else
      chunk = ((chunk & 0x00000000000000FFull) << 56) |
              ((chunk & 0x000000000000FF00ull) << 40) |
              ((chunk & 0x0000000000FF0000ull) << 24) |
              ((chunk & 0x00000000FF000000ull) << 8) |
              ((chunk & 0x000000FF00000000ull) >> 8) |
              ((chunk & 0x0000FF0000000000ull) >> 24) |
              ((chunk & 0x00FF000000000000ull) >> 40) |
              ((chunk & 0xFF00000000000000ull) >> 56);
#endif
      int take = (56 - wbits_) >> 3;
      win_ = (win_ << (take * 8)) | (chunk >> (64 - take * 8));
      wbits_ += take * 8;
      pos_ += static_cast<std::size_t>(take);
      return;
    }
    while (wbits_ <= 48) {
      std::uint64_t b = pos_ < d_.size() ? d_[pos_] : 0;
      pos_ += pos_ < d_.size() ? 1 : 0;
      win_ = (win_ << 8) | b;
      wbits_ += 8;
    }
  }

  std::span<const std::uint8_t> d_;
  std::size_t pos_ = 0;         // next input byte to prefetch into win_
  std::uint64_t win_ = 0;       // prefetched stream bytes, right-justified
  int wbits_ = 0;               // valid bits in win_ (multiple of 8, <= 56)
  std::uint64_t popped_ = 0;    // bytes fed from win_ into code_
  std::uint32_t code_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
};

}  // namespace lepton::coding
