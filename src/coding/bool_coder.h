// Binary arithmetic (range) coder with 8-bit probabilities.
//
// The paper's footnote 1 says Lepton implements "a modified version of a
// VP8 range coder" (RFC 6386 §13.2). We implement the same family — a
// byte-renormalized binary range coder driven by an 8-bit probability of
// zero — using the carry-counting low/cache scheme (LZMA lineage) rather
// than VP8's emitted-byte carry walk-back, because it handles carries
// without revisiting the output buffer. Entropy performance is equivalent
// (documented as a substitution in DESIGN.md).
//
// Probabilities are P(bit == 0) scaled to [1, 255]. The decoder never reads
// past the end of its input: a truncated or hostile stream yields garbage
// bits, never undefined behaviour — the codec's outer round-trip gate is
// what decides admissibility (§5.7). Whether the decoder *did* run past the
// end is recorded and exposed via overran(), so validation layers can
// distinguish exact consumption from truncation.
//
// Hot-path notes (DESIGN.md "Performance architecture"):
//  * the encoder can write into a caller-owned, capacity-reserved buffer so
//    a long-lived CodecContext reuses one allocation across files, and
//  * both sides have a put_literal/get_literal fast path for raw-bit runs
//    that subdivides the range by powers of two directly — no probability
//    multiply, no branch-statistics update.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lepton::coding {

class BoolEncoder {
 public:
  // Encodes into an internal buffer (finish() moves it out).
  BoolEncoder() : out_(&own_) {}

  // Encodes into `*out`, which is cleared up front but keeps its capacity —
  // the CodecContext scratch-reuse path. The buffer must outlive finish().
  explicit BoolEncoder(std::vector<std::uint8_t>* out) : out_(out) {
    out_->clear();
  }

  void reserve(std::size_t bytes) { out_->reserve(bytes); }

  void put(bool bit, std::uint8_t prob_zero) {
    std::uint32_t bound = (range_ >> 8) * prob_zero;
    if (!bit) {
      range_ = bound;
    } else {
      low_ += bound;
      range_ -= bound;
    }
    while (range_ < (1u << 24)) {
      range_ <<= 8;
      shift_low();
    }
  }

  // Raw-bit fast path: appends the low `count` bits of `bits` (MSB first)
  // by halving the range per bit. Pairs with BoolDecoder::get_literal; the
  // bit cost is exactly 1.0 and no model state is touched.
  void put_literal(std::uint32_t bits, int count) {
    for (int i = count - 1; i >= 0; --i) {
      range_ >>= 1;
      if ((bits >> i) & 1u) low_ += range_;
      while (range_ < (1u << 24)) {
        range_ <<= 8;
        shift_low();
      }
    }
  }

  // Terminates the stream and returns the bytes. With an external buffer the
  // same bytes are also left in that buffer (the return value moves from
  // it only when the encoder owns the storage). The encoder must not be
  // used afterwards.
  std::vector<std::uint8_t> finish() {
    flush();
    if (out_ == &own_) return std::move(own_);
    return *out_;
  }

  // Terminates the stream, leaving the bytes in the buffer passed at
  // construction (no copy). Only valid with an external buffer.
  void finish_into_buffer() { flush(); }

  std::size_t bytes_so_far() const { return out_->size(); }

 private:
  void flush() {
    for (int i = 0; i < 5; ++i) shift_low();
  }

  void shift_low() {
    if (static_cast<std::uint32_t>(low_) < 0xFF000000u || (low_ >> 32) != 0) {
      auto carry = static_cast<std::uint8_t>(low_ >> 32);
      if (!first_) {
        out_->push_back(static_cast<std::uint8_t>(cache_ + carry));
      }
      for (; pending_ff_ > 0; --pending_ff_) {
        out_->push_back(static_cast<std::uint8_t>(0xFF + carry));
      }
      cache_ = static_cast<std::uint8_t>(low_ >> 24);
      first_ = false;
    } else {
      ++pending_ff_;
    }
    low_ = (low_ & 0x00FFFFFFull) << 8;
  }

  std::vector<std::uint8_t> own_;
  std::vector<std::uint8_t>* out_;
  std::uint64_t low_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  std::uint8_t cache_ = 0;
  std::uint64_t pending_ff_ = 0;
  bool first_ = true;
};

class BoolDecoder {
 public:
  explicit BoolDecoder(std::span<const std::uint8_t> data) : d_(data) {
    for (int i = 0; i < 4; ++i) code_ = (code_ << 8) | next_byte();
  }

  bool get(std::uint8_t prob_zero) {
    std::uint32_t bound = (range_ >> 8) * prob_zero;
    bool bit;
    if (code_ < bound) {
      bit = false;
      range_ = bound;
    } else {
      bit = true;
      code_ -= bound;
      range_ -= bound;
    }
    while (range_ < (1u << 24)) {
      range_ <<= 8;
      code_ = (code_ << 8) | next_byte();
    }
    return bit;
  }

  // Raw-bit fast path mirroring BoolEncoder::put_literal. Returns `count`
  // bits MSB-first.
  std::uint32_t get_literal(int count) {
    std::uint32_t v = 0;
    for (int i = 0; i < count; ++i) {
      range_ >>= 1;
      std::uint32_t bit = code_ >= range_ ? 1u : 0u;
      if (bit) code_ -= range_;
      v = (v << 1) | bit;
      while (range_ < (1u << 24)) {
        range_ <<= 8;
        code_ = (code_ << 8) | next_byte();
      }
    }
    return v;
  }

  // True once the decoder has consumed (or run past) all input; used by
  // validation, not required for correctness.
  bool exhausted() const { return pos_ >= d_.size(); }

  // True iff the decoder needed bytes beyond the end of its input — i.e.
  // the stream was truncated relative to what the coded data demanded. A
  // well-formed stream decodes to exactly its own length and never sets
  // this; validation (verify.cpp's admissibility gate) uses it to separate
  // truncation from exact consumption.
  bool overran() const { return overran_; }

  // Exact consumption counts behind the exhausted()/overran() booleans,
  // aggregated into lepton::DecodeStats so validation layers outside the
  // whole-file path (chunk decode, the store's get()) can report *how far*
  // a stream was consumed, not just whether it ran out. consumed() never
  // exceeds available(): an overrunning decode reads synthetic zero bytes,
  // it does not advance past the end.
  std::size_t consumed() const { return pos_; }
  std::size_t available() const { return d_.size(); }

 private:
  std::uint8_t next_byte() {
    if (pos_ >= d_.size()) {
      overran_ = true;
      return 0;  // truncated input reads as 0
    }
    return d_[pos_++];
  }

  std::span<const std::uint8_t> d_;
  std::size_t pos_ = 0;
  std::uint32_t code_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  bool overran_ = false;
};

}  // namespace lepton::coding
