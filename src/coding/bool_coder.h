// Binary arithmetic (range) coder with 8-bit probabilities.
//
// The paper's footnote 1 says Lepton implements "a modified version of a
// VP8 range coder" (RFC 6386 §13.2). We implement the same family — a
// byte-renormalized binary range coder driven by an 8-bit probability of
// zero — using the carry-counting low/cache scheme (LZMA lineage) rather
// than VP8's emitted-byte carry walk-back, because it handles carries
// without revisiting the output buffer. Entropy performance is equivalent
// (documented as a substitution in DESIGN.md §5).
//
// Probabilities are P(bit == 0) scaled to [1, 255]. The decoder never reads
// past the end of its input: a truncated or hostile stream yields garbage
// bits, never undefined behaviour — the codec's outer round-trip gate is
// what decides admissibility (§5.7).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lepton::coding {

class BoolEncoder {
 public:
  void put(bool bit, std::uint8_t prob_zero) {
    std::uint32_t bound = (range_ >> 8) * prob_zero;
    if (!bit) {
      range_ = bound;
    } else {
      low_ += bound;
      range_ -= bound;
    }
    while (range_ < (1u << 24)) {
      range_ <<= 8;
      shift_low();
    }
  }

  // Terminates the stream; the encoder must not be used afterwards.
  std::vector<std::uint8_t> finish() {
    for (int i = 0; i < 5; ++i) shift_low();
    return std::move(out_);
  }

  std::size_t bytes_so_far() const { return out_.size(); }

 private:
  void shift_low() {
    if (static_cast<std::uint32_t>(low_) < 0xFF000000u || (low_ >> 32) != 0) {
      auto carry = static_cast<std::uint8_t>(low_ >> 32);
      if (!first_) {
        out_.push_back(static_cast<std::uint8_t>(cache_ + carry));
      }
      for (; pending_ff_ > 0; --pending_ff_) {
        out_.push_back(static_cast<std::uint8_t>(0xFF + carry));
      }
      cache_ = static_cast<std::uint8_t>(low_ >> 24);
      first_ = false;
    } else {
      ++pending_ff_;
    }
    low_ = (low_ & 0x00FFFFFFull) << 8;
  }

  std::vector<std::uint8_t> out_;
  std::uint64_t low_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  std::uint8_t cache_ = 0;
  std::uint64_t pending_ff_ = 0;
  bool first_ = true;
};

class BoolDecoder {
 public:
  explicit BoolDecoder(std::span<const std::uint8_t> data) : d_(data) {
    for (int i = 0; i < 4; ++i) code_ = (code_ << 8) | next_byte();
  }

  bool get(std::uint8_t prob_zero) {
    std::uint32_t bound = (range_ >> 8) * prob_zero;
    bool bit;
    if (code_ < bound) {
      bit = false;
      range_ = bound;
    } else {
      bit = true;
      code_ -= bound;
      range_ -= bound;
    }
    while (range_ < (1u << 24)) {
      range_ <<= 8;
      code_ = (code_ << 8) | next_byte();
    }
    return bit;
  }

  // True once the decoder has consumed (or run past) all input; used by
  // validation, not required for correctness.
  bool exhausted() const { return pos_ >= d_.size(); }

 private:
  std::uint8_t next_byte() {
    return pos_ < d_.size() ? d_[pos_++] : 0;  // truncated input reads as 0
  }

  std::span<const std::uint8_t> d_;
  std::size_t pos_ = 0;
  std::uint32_t code_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
};

}  // namespace lepton::coding
