// leptond's configuration layer: a key=value config file and command-line
// flags over it (flags win). The keys are the operator surface documented
// in docs/OPERATIONS.md §"leptond"; parsing lives apart from main() so
// tests can exercise it without forking a daemon.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lepton::leptond {

struct DaemonConfig {
  std::string config_file;           // --config (read before other flags)
  std::string listen = "tcp:127.0.0.1:2929";
  std::string plane = "event";       // "event" (epoll + pool) or "thread"
  int workers = 4;                   // event plane's fixed worker pool
  int codec_threads = 0;             // CodecContext pool size; 0 = default
  int max_in_flight = 4;
  std::uint64_t max_body_bytes = 6u << 20;
  std::uint64_t idle_timeout_ms = 30000;
  // Decoded-output LRU budget for DECODE requests, in MiB; 0 disables.
  // Hits skip the decode; misses buffer the body and decode at END (the
  // TTFB trade is documented on ServiceConfig::decode_cache_bytes).
  std::uint64_t decode_cache_mb = 0;
  std::string shutoff_file;          // §5.7 kill-switch file (SIGHUP re-stats)
  std::string pidfile;
  bool quiet = false;
};

// Applies one key/value (config-file line or --flag). Unknown key or
// malformed value: false with *err set.
bool apply_option(DaemonConfig* cfg, const std::string& key,
                  const std::string& value, std::string* err);

// Parses config-file text: one "key value" or "key = value" per line,
// '#' comments, blank lines ignored.
bool parse_config_text(const std::string& text, DaemonConfig* cfg,
                       std::string* err);

// Full flag parsing: finds --config first, loads the file, then applies
// the remaining flags over it. argv-style input sans argv[0].
// *show_help is set when --help is present.
bool parse_args(const std::vector<std::string>& args, DaemonConfig* cfg,
                std::string* err, bool* show_help);

// The --help text (shared with error messages).
std::string usage_text();

// ---- pidfile liveness ------------------------------------------------------
//
// A daemon that died uncleanly (SIGKILL, OOM, power) leaves its pidfile
// behind; the replacement must not be locked out by a ghost. The rule:
// refuse only when the recorded owner is *alive* (kill(pid, 0) reaches a
// process — EPERM counts as alive), replace otherwise.

enum class PidfileState {
  kAbsent,       // no file — free to take
  kStale,        // unreadable/garbage pid, or the owner is gone (ESRCH)
  kOwnerAlive,   // a live process holds it — refuse to start
};

// Classifies `path` without modifying it. On kOwnerAlive, *owner_pid (when
// non-null) receives the recorded pid.
PidfileState inspect_pidfile(const std::string& path, long* owner_pid);

// Takes the pidfile for the calling process: absent or stale files are
// (re)written with getpid(); a live owner refuses with *err naming the pid.
// False is also returned when the file cannot be written.
bool acquire_pidfile(const std::string& path, std::string* err);

}  // namespace lepton::leptond
