// Event-driven connection plane for the Lepton daemon (§6 deployment).
//
// The production fleet holds thousands of long-lived blockserver
// connections per daemon, almost all idle at any instant. PR 5's
// thread-per-connection LeptonServer prices an idle connection at a
// parked thread; this plane prices it at a registered epoll fd:
//
//   * one event-loop thread owns every connection fd (nonblocking) plus
//     the listener; it buffers bytes toward each connection's next
//     request-open frame (8-byte header + <=64-byte control payload);
//   * when — and only when — a complete open frame is buffered, the
//     connection is removed from the loop and dispatched to one of a
//     fixed pool of worker threads, which runs the shared RequestService
//     path exactly as the thread plane does (blocking body reads under
//     the PR 5 wall budget, blocking response writes under the send
//     timeout), then hands the fd back to the loop for the next request;
//   * admission, deadlines, backpressure, slow-loris defense, kill-switch
//     and stats are RequestService's, byte-identical across planes.
//
// So a slow-loris client dribbling a *header* holds a 72-byte buffer in
// the loop (reaped by the idle sweep), not a worker; a client dribbling a
// *body* holds a worker bounded by the wall budget, same as PR 5; and a
// thousand idle keep-alive connections hold zero threads beyond the fixed
// pool — the connection-scaling property tests/leptond_test.cpp asserts.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/endpoint.h"
#include "server/service.h"

namespace lepton {
class CodecContext;
}

namespace lepton::leptond {

struct EventServerConfig {
  // Endpoint string: "tcp:host:port", "unix:/path", or a bare path
  // (server/endpoint.h). Port 0 binds an ephemeral port; read it back
  // from bound_address().
  std::string listen;

  // Fixed worker pool: the conversion concurrency ceiling. The admission
  // bound (service.max_in_flight) still governs how many requests hold
  // sessions; extra workers beyond it only help absorb control frames.
  int workers = 4;

  server::ServiceConfig service;
};

class EventServer {
 public:
  explicit EventServer(EventServerConfig cfg, CodecContext* ctx = nullptr);
  ~EventServer();  // stop()s if still running

  EventServer(const EventServer&) = delete;
  EventServer& operator=(const EventServer&) = delete;

  // Binds the listener, spawns the loop thread and the worker pool.
  // False (message in last_error()) on bind/epoll failure.
  bool start();

  // Graceful drain: stop accepting, let dispatched requests run to their
  // trailer, close every connection, join everything. Idempotent.
  void stop();

  // Hard stop: trips every dispatched request's RunControl first;
  // cancelled requests trail as kServerShutdown.
  void shutdown_now();

  bool running() const { return running_.load(std::memory_order_acquire); }
  const std::string& bound_address() const { return bound_; }
  const std::string& last_error() const { return error_; }
  int worker_count() const { return cfg_.workers; }

  server::ServerStats stats() const { return service_.stats(); }
  server::RequestService& service() { return service_; }

  // Connections currently owned by the plane (idle in the loop or
  // dispatched to a worker). The connection-scaling test reads this to
  // know its 1k idle connections are actually registered.
  std::size_t open_connections() const;

 private:
  struct EConn;

  void loop_main();
  void worker_main();
  bool accept_ready();
  void conn_readable(EConn* c);
  void dispatch(EConn* c);
  void rearm_or_close_ready();
  void sweep_idle();
  void close_conn(EConn* c);
  void wake_loop();

  EventServerConfig cfg_;
  server::Endpoint endpoint_;
  std::string bound_;
  std::string error_;
  server::RequestService service_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: workers -> loop (re-arm queue, stop)
  bool accept_paused_ = false;  // listener deregistered during fd backoff
  std::chrono::steady_clock::time_point accept_resume_at_;
  std::chrono::milliseconds accept_backoff_{10};

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> workers_done_{false};  // stop(): pool joined, loop may exit
  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  // Connection registry. The loop inserts/erases; shutdown_now reads it
  // to trip in-flight controls, so mutations take the mutex.
  mutable std::mutex conns_mu_;
  std::unordered_map<int, std::unique_ptr<EConn>> conns_;

  // Loop -> workers: connections with a complete open frame.
  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  std::deque<EConn*> jobs_;

  // Workers -> loop: served connections to re-arm (keep) or close.
  std::mutex done_mu_;
  std::vector<std::pair<EConn*, bool>> done_;  // (conn, keep)
};

}  // namespace lepton::leptond
