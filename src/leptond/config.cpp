#include "leptond/config.h"

#include <cerrno>
#include <csignal>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "util/fileio.h"

namespace lepton::leptond {
namespace {

bool parse_u64(const std::string& v, std::uint64_t* out) {
  if (v.empty()) return false;
  std::uint64_t n = 0;
  for (char ch : v) {
    if (ch < '0' || ch > '9') return false;
    n = n * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  *out = n;
  return true;
}

bool parse_int(const std::string& v, int* out) {
  std::uint64_t n;
  if (!parse_u64(v, &n) || n > 1u << 20) return false;
  *out = static_cast<int>(n);
  return true;
}

bool parse_bool(const std::string& v, bool* out) {
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") {
    *out = true;
    return true;
  }
  if (v == "0" || v == "false" || v == "no" || v == "off") {
    *out = false;
    return true;
  }
  return false;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

bool apply_option(DaemonConfig* cfg, const std::string& key,
                  const std::string& value, std::string* err) {
  auto bad = [&](const char* what) {
    if (err != nullptr) {
      *err = std::string(what) + " for '" + key + "': '" + value + "'";
    }
    return false;
  };
  if (key == "listen") {
    if (value.empty()) return bad("empty value");
    cfg->listen = value;
    return true;
  }
  if (key == "plane") {
    if (value != "event" && value != "thread") return bad("bad value");
    cfg->plane = value;
    return true;
  }
  if (key == "workers") {
    if (!parse_int(value, &cfg->workers) || cfg->workers < 1) {
      return bad("bad value");
    }
    return true;
  }
  if (key == "codec-threads") {
    if (!parse_int(value, &cfg->codec_threads) || cfg->codec_threads < 0) {
      return bad("bad value");
    }
    return true;
  }
  if (key == "max-in-flight") {
    if (!parse_int(value, &cfg->max_in_flight) || cfg->max_in_flight < 1) {
      return bad("bad value");
    }
    return true;
  }
  if (key == "max-body-bytes") {
    return parse_u64(value, &cfg->max_body_bytes) ? true : bad("bad value");
  }
  if (key == "idle-timeout-ms") {
    if (!parse_u64(value, &cfg->idle_timeout_ms) ||
        cfg->idle_timeout_ms == 0) {
      return bad("bad value");
    }
    return true;
  }
  if (key == "decode-cache-mb") {
    return parse_u64(value, &cfg->decode_cache_mb) ? true : bad("bad value");
  }
  if (key == "shutoff-file") {
    cfg->shutoff_file = value;
    return true;
  }
  if (key == "pidfile") {
    cfg->pidfile = value;
    return true;
  }
  if (key == "quiet") {
    bool b;
    if (!parse_bool(value, &b)) return bad("bad value");
    cfg->quiet = b;
    return true;
  }
  if (err != nullptr) *err = "unknown option '" + key + "'";
  return false;
}

bool parse_config_text(const std::string& text, DaemonConfig* cfg,
                       std::string* err) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;
    // "key = value" or "key value".
    std::size_t sep = line.find_first_of("= \t");
    if (sep == std::string::npos) {
      if (err != nullptr) {
        *err = "line " + std::to_string(lineno) + ": expected 'key value'";
      }
      return false;
    }
    std::string key = trim(line.substr(0, sep));
    std::string value = trim(line.substr(sep + 1));
    if (!value.empty() && value.front() == '=') value = trim(value.substr(1));
    std::string inner;
    if (!apply_option(cfg, key, value, &inner)) {
      if (err != nullptr) {
        *err = "line " + std::to_string(lineno) + ": " + inner;
      }
      return false;
    }
  }
  return true;
}

bool parse_args(const std::vector<std::string>& args, DaemonConfig* cfg,
                std::string* err, bool* show_help) {
  if (show_help != nullptr) *show_help = false;

  // Split "--key=value" / "--key value" pairs; booleans may omit the value.
  struct Opt {
    std::string key, value;
  };
  std::vector<Opt> opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      if (show_help != nullptr) *show_help = true;
      return true;
    }
    if (a.rfind("--", 0) != 0) {
      if (err != nullptr) *err = "unexpected argument '" + a + "'";
      return false;
    }
    std::string key = a.substr(2);
    std::string value;
    auto eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key.resize(eq);
    } else if (key != "quiet" && i + 1 < args.size()) {
      value = args[++i];
    }
    opts.push_back({std::move(key), std::move(value)});
  }

  // The config file (if any) first, then flags override it.
  for (const Opt& o : opts) {
    if (o.key == "config") cfg->config_file = o.value;
  }
  if (!cfg->config_file.empty()) {
    std::ifstream f(cfg->config_file);
    if (!f) {
      if (err != nullptr) {
        *err = "cannot read config file '" + cfg->config_file + "'";
      }
      return false;
    }
    std::ostringstream body;
    body << f.rdbuf();
    std::string inner;
    if (!parse_config_text(body.str(), cfg, &inner)) {
      if (err != nullptr) *err = cfg->config_file + ": " + inner;
      return false;
    }
  }
  for (const Opt& o : opts) {
    if (o.key == "config") continue;
    if (!apply_option(cfg, o.key, o.value, err)) return false;
  }
  return true;
}

PidfileState inspect_pidfile(const std::string& path, long* owner_pid) {
  std::ifstream f(path);
  if (!f) return PidfileState::kAbsent;
  long pid = 0;
  if (!(f >> pid) || pid <= 0) return PidfileState::kStale;
  if (::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM) {
    // Signal 0 probes existence without delivering anything; EPERM means
    // the pid exists but belongs to someone else — still alive.
    if (owner_pid != nullptr) *owner_pid = pid;
    return PidfileState::kOwnerAlive;
  }
  return PidfileState::kStale;  // ESRCH: the owner died without cleanup
}

bool acquire_pidfile(const std::string& path, std::string* err) {
  long owner = 0;
  if (inspect_pidfile(path, &owner) == PidfileState::kOwnerAlive) {
    if (err != nullptr) {
      *err = "pidfile '" + path + "' is held by live pid " +
             std::to_string(owner);
    }
    return false;
  }
  // Crash-atomic: temp + rename, so a daemon killed mid-write can never
  // leave a truncated pidfile that a later inspect_pidfile() would read as
  // a garbage pid (or, worse, somebody else's).
  std::string body = std::to_string(::getpid()) + "\n";
  util::fileio::IoStatus st = util::fileio::write_file_atomic(
      path, {reinterpret_cast<const std::uint8_t*>(body.data()), body.size()},
      /*do_fsync=*/false);
  if (!st.ok()) {
    if (err != nullptr) {
      *err = "cannot write pidfile '" + path + "': " + std::string(st.op) +
             " failed";
    }
    return false;
  }
  return true;
}

std::string usage_text() {
  return
      "usage: leptond [flags]\n"
      "  --config FILE          key=value config file (flags override it)\n"
      "  --listen ENDPOINT      tcp:host:port | unix:/path (default "
      "tcp:127.0.0.1:2929)\n"
      "  --plane event|thread   connection plane (default event)\n"
      "  --workers N            event-plane worker pool size (default 4)\n"
      "  --codec-threads N      CodecContext pool threads (0 = default)\n"
      "  --max-in-flight N      admission bound (default 4)\n"
      "  --max-body-bytes N     per-request body cap (default 6 MiB)\n"
      "  --idle-timeout-ms N    idle window / body wall budget (default "
      "30000)\n"
      "  --decode-cache-mb N    decoded-output LRU for DECODE, MiB "
      "(default 0 = off;\n"
      "                         hits skip the decode, misses buffer the "
      "body first)\n"
      "  --shutoff-file PATH    kill-switch file (SIGHUP re-stats it)\n"
      "  --pidfile PATH         write the daemon pid here\n"
      "  --quiet                no startup/shutdown chatter\n"
      "signals: SIGTERM/SIGINT graceful drain, SIGHUP shutoff-state "
      "reload\n";
}

}  // namespace lepton::leptond
