// leptonctl — operator CLI for a running leptond (docs/OPERATIONS.md).
//
//   leptonctl tcp:127.0.0.1:2929 ping
//   leptonctl tcp:127.0.0.1:2929 stats
//   leptonctl unix:/run/lepton.sock encode in.jpg out.lep
//   leptonctl tcp:127.0.0.1:2929 selftest
//
// Every subcommand is one client conversation over the PROTOCOL.md frame
// protocol; `selftest` is the CI smoke probe — it generates a deterministic
// corpus JPEG, round-trips it encode→decode through the daemon, and checks
// the wire results byte-for-byte against the in-process codec.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "lepton/codec.h"
#include "server/client.h"
#include "storage/durable_store.h"
#include "util/exit_codes.h"

namespace {

using lepton::server::LeptonClient;
using lepton::server::RequestResult;

int usage() {
  std::fputs(
      "usage: leptonctl ENDPOINT COMMAND [args]\n"
      "       leptonctl health ENDPOINT [ENDPOINT...]\n"
      "       leptonctl fsck DIR\n"
      "  ENDPOINT               tcp:host:port | unix:/path\n"
      "commands:\n"
      "  ping                   liveness probe (prints shutoff state)\n"
      "  stats                  print the server's STATS text\n"
      "  shutoff-engage         set the server's kill-switch\n"
      "  shutoff-clear          clear the process-local kill-switch\n"
      "  shutoff-query          forced re-check of the kill-switch\n"
      "  encode IN.jpg OUT.lep  compress a JPEG through the server\n"
      "  decode IN.lep OUT.jpg  decompress a container through the server\n"
      "  selftest               encode+decode a generated JPEG over the\n"
      "                         wire; verify byte-identity vs in-process\n"
      "  health (fleet form)    ping + STATS every listed endpoint; print a\n"
      "                         healthy/degraded/dead table; exit 1 if any\n"
      "                         endpoint is dead\n"
      "  fsck DIR (offline)     check a durable-store directory: recovery\n"
      "                         pass + full md5 verify; quarantines torn/\n"
      "                         orphaned/corrupt files; exit 1 when any\n"
      "                         acknowledged key is lost\n",
      stderr);
  return 2;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream body;
  body << f.rdbuf();
  std::string s = body.str();
  out->assign(s.begin(), s.end());
  return true;
}

bool write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  return f.good();
}

// 0 on success; 1 with a diagnostic otherwise.
int check(const RequestResult& r, const char* what) {
  if (r.ok()) return 0;
  std::fprintf(stderr, "leptonctl: %s failed: %s (%s)\n", what,
               std::string(lepton::util::exit_code_name(r.code)).c_str(),
               r.message.empty() ? "no detail" : r.message.c_str());
  return 1;
}

int cmd_transfer(LeptonClient& cli, bool is_encode, const std::string& in,
                 const std::string& out) {
  std::vector<std::uint8_t> body;
  if (!read_file(in, &body)) {
    std::fprintf(stderr, "leptonctl: cannot read %s\n", in.c_str());
    return 1;
  }
  RequestResult r = is_encode ? cli.encode(body) : cli.decode(body);
  if (int rc = check(r, is_encode ? "encode" : "decode"); rc != 0) return rc;
  if (!write_file(out, r.data)) {
    std::fprintf(stderr, "leptonctl: cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(stderr, "leptonctl: %s %zu -> %zu bytes (%.1f ms)\n",
               is_encode ? "encoded" : "decoded", body.size(), r.data.size(),
               r.total_s * 1000.0);
  return 0;
}

int cmd_selftest(const std::string& endpoint) {
  // Deterministic input, sized to exercise real model state but stay fast.
  std::vector<std::uint8_t> jpeg = lepton::corpus::jpeg_of_size(96 << 10, 7);

  // The in-process reference this daemon's answers must match exactly.
  lepton::Result ref = lepton::encode_jpeg(jpeg);
  if (ref.code != lepton::util::ExitCode::kSuccess) {
    std::fprintf(stderr, "leptonctl: selftest reference encode failed\n");
    return 1;
  }

  LeptonClient cli = LeptonClient::connect(endpoint);
  if (!cli.ok()) {
    std::fprintf(stderr, "leptonctl: connect %s: %s\n", endpoint.c_str(),
                 cli.message().c_str());
    return 1;
  }
  RequestResult enc = cli.encode(jpeg);
  if (int rc = check(enc, "selftest encode"); rc != 0) return rc;
  if (enc.data != ref.data) {
    std::fprintf(stderr,
                 "leptonctl: selftest FAILED: wire container differs from "
                 "in-process (%zu vs %zu bytes)\n",
                 enc.data.size(), ref.data.size());
    return 1;
  }
  RequestResult dec = cli.decode(enc.data);
  if (int rc = check(dec, "selftest decode"); rc != 0) return rc;
  if (dec.data != jpeg) {
    std::fprintf(stderr,
                 "leptonctl: selftest FAILED: decoded JPEG differs from "
                 "input (%zu vs %zu bytes)\n",
                 dec.data.size(), jpeg.size());
    return 1;
  }
  std::fprintf(stderr,
               "leptonctl: selftest OK (%zu byte JPEG -> %zu byte "
               "container, byte-identical round trip)\n",
               jpeg.size(), enc.data.size());
  return 0;
}

// Pulls one "key value" row out of STATS text; empty when absent.
std::string stats_value(const std::vector<std::uint8_t>& text,
                        const std::string& key) {
  std::istringstream in(std::string(text.begin(), text.end()));
  std::string line;
  while (std::getline(in, line)) {
    if (line.size() > key.size() + 1 && line.compare(0, key.size(), key) == 0 &&
        line[key.size()] == ' ') {
      return line.substr(key.size() + 1);
    }
  }
  return "";
}

// Fleet health sweep: `leptonctl health EP [EP...]`. Three verdicts —
//   healthy   ping answers, kill-switch clear, STATS served
//   degraded  alive on the wire but impaired (shutoff engaged, or a
//             pre-STATS server that cannot report depth)
//   dead      connect or ping failed at the transport level
// Exit 0 when nothing is dead; 1 otherwise (degraded is a warning, not a
// page — the fleet client still routes around it via the breaker).
int cmd_health(const std::vector<std::string>& endpoints) {
  std::printf("%-28s %-9s %9s %10s  %s\n", "ENDPOINT", "STATE", "PING_MS",
              "IN_FLIGHT", "DETAIL");
  int dead = 0;
  for (const std::string& ep : endpoints) {
    lepton::server::RequestOptions opts;
    opts.transport_timeout = std::chrono::milliseconds(2000);
    LeptonClient cli = LeptonClient::connect(ep);
    RequestResult ping;
    if (cli.ok()) ping = cli.ping(opts);
    if (!cli.ok() || !ping.transport_ok) {
      std::printf("%-28s %-9s %9s %10s  %s\n", ep.c_str(), "dead", "-", "-",
                  (!cli.ok() ? cli.message() : ping.message).c_str());
      ++dead;
      continue;
    }
    RequestResult stats = cli.stats();
    std::string in_flight =
        stats.ok() ? stats_value(stats.data, "in_flight") : "";
    const char* state = "healthy";
    std::string detail = "shutoff clear";
    if (ping.shutoff_engaged) {
      state = "degraded";
      detail = "kill-switch engaged";
    } else if (!stats.ok()) {
      state = "degraded";
      detail = "no STATS (pre-STATS server?)";
    }
    std::printf("%-28s %-9s %9.2f %10s  %s\n", ep.c_str(), state,
                ping.total_s * 1000.0,
                in_flight.empty() ? "-" : in_flight.c_str(), detail.c_str());
  }
  if (dead > 0) {
    std::fprintf(stderr, "leptonctl: %d of %zu endpoints dead\n", dead,
                 endpoints.size());
    return 1;
  }
  return 0;
}

// Offline store check: runs DurableStore's recovery pass (temps and
// orphans swept to quarantine, every referenced object md5-verified) and
// reports. Loss — an acknowledged key whose bytes are gone or corrupt —
// is the only nonzero-exit condition; quarantined garbage is routine
// after a crash and exits 0.
int cmd_fsck(const std::string& dir) {
  std::string err;
  lepton::storage::FsckReport rep = lepton::storage::DurableStore::fsck(
      dir, &err);
  if (!err.empty()) {
    std::fprintf(stderr, "leptonctl: fsck %s: %s\n", dir.c_str(), err.c_str());
    return 1;
  }
  std::printf("fsck %s\n", dir.c_str());
  std::printf("  healthy objects   %llu (%llu keys)\n",
              static_cast<unsigned long long>(rep.healthy),
              static_cast<unsigned long long>(rep.keys));
  std::printf("  quarantined       %llu (of which orphaned %llu)\n",
              static_cast<unsigned long long>(rep.quarantined),
              static_cast<unsigned long long>(rep.orphaned));
  std::printf("  lost              %llu\n",
              static_cast<unsigned long long>(rep.lost));
  if (!rep.ok()) {
    std::fprintf(stderr,
                 "leptonctl: fsck FAILED: %llu acknowledged key(s) "
                 "unreadable — data loss\n",
                 static_cast<unsigned long long>(rep.lost));
    return 1;
  }
  std::printf("fsck OK: no acknowledged data lost\n");
  return 0;
}

int cmd_shutoff(LeptonClient& cli, lepton::server::ShutoffOp op,
                const char* what) {
  RequestResult r = cli.shutoff(op);
  if (int rc = check(r, what); rc != 0) return rc;
  std::printf("shutoff %s\n", r.shutoff_engaged ? "engaged" : "clear");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "health") {
    if (argc < 3) return usage();
    return cmd_health(std::vector<std::string>(argv + 2, argv + argc));
  }
  if (argc >= 2 && std::string(argv[1]) == "fsck") {
    if (argc != 3) return usage();
    return cmd_fsck(argv[2]);
  }
  if (argc < 3) return usage();
  std::string endpoint = argv[1];
  std::string cmd = argv[2];

  if (cmd == "selftest") return cmd_selftest(endpoint);

  LeptonClient cli = LeptonClient::connect(endpoint);
  if (!cli.ok()) {
    std::fprintf(stderr, "leptonctl: connect %s: %s\n", endpoint.c_str(),
                 cli.message().c_str());
    return 1;
  }

  if (cmd == "ping") {
    RequestResult r = cli.ping();
    if (int rc = check(r, "ping"); rc != 0) return rc;
    std::printf("pong (%.2f ms, shutoff %s)\n", r.total_s * 1000.0,
                r.shutoff_engaged ? "engaged" : "clear");
    return 0;
  }
  if (cmd == "stats") {
    RequestResult r = cli.stats();
    if (int rc = check(r, "stats"); rc != 0) return rc;
    std::fwrite(r.data.data(), 1, r.data.size(), stdout);
    return 0;
  }
  if (cmd == "shutoff-engage") {
    return cmd_shutoff(cli, lepton::server::ShutoffOp::kEngage, "shutoff");
  }
  if (cmd == "shutoff-clear") {
    return cmd_shutoff(cli, lepton::server::ShutoffOp::kClear, "shutoff");
  }
  if (cmd == "shutoff-query") {
    return cmd_shutoff(cli, lepton::server::ShutoffOp::kQuery, "shutoff");
  }
  if (cmd == "encode" || cmd == "decode") {
    if (argc != 5) return usage();
    return cmd_transfer(cli, cmd == "encode", argv[3], argv[4]);
  }
  return usage();
}
