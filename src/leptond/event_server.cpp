#include "leptond/event_server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "server/sockio.h"

namespace lepton::leptond {

using server::FrameHeader;
using server::FrameType;
using server::kFrameHeaderSize;
using server::kMaxControlFrame;

// Per-connection loop state. The open buffer is bounded by the protocol
// itself: a request-open frame is an 8-byte header plus a <=64-byte
// control payload, so the loop never buffers request *bodies* — those are
// read by the worker under the wall budget, through kernel backpressure.
struct EventServer::EConn {
  server::ServiceConn svc;
  std::uint8_t open_buf[kFrameHeaderSize + kMaxControlFrame];
  std::size_t open_len = 0;
  std::size_t open_want = kFrameHeaderSize;
  bool header_done = false;
  bool dispatched = false;
  std::chrono::steady_clock::time_point idle_deadline;
};

EventServer::EventServer(EventServerConfig cfg, CodecContext* ctx)
    : cfg_(std::move(cfg)), service_(cfg_.service, ctx) {
  if (cfg_.workers < 1) cfg_.workers = 1;
  service_.set_extra_stats([this] {
    std::string t = "plane event\n";
    t += "workers " + std::to_string(cfg_.workers) + "\n";
    t += "open_connections " + std::to_string(open_connections()) + "\n";
    t += "open_fds " + std::to_string(server::count_open_fds()) + "\n";
    return t;
  });
}

EventServer::~EventServer() { stop(); }

std::size_t EventServer::open_connections() const {
  std::lock_guard<std::mutex> lk(conns_mu_);
  return conns_.size();
}

bool EventServer::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  if (!server::parse_endpoint(cfg_.listen, &endpoint_, &error_)) return false;
  listen_fd_ =
      server::listen_endpoint(endpoint_, &error_, &bound_, /*backlog=*/512);
  if (listen_fd_ < 0) return false;
  server::set_nonblocking(listen_fd_, true);
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    error_ = std::string("epoll/eventfd: ") + std::strerror(errno);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    ::close(listen_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    server::unlink_endpoint(endpoint_);
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = &listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.ptr = &wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  service_.reset();
  stopping_.store(false, std::memory_order_release);
  workers_done_.store(false, std::memory_order_release);
  accept_paused_ = false;
  accept_backoff_ = std::chrono::milliseconds(10);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread(&EventServer::loop_main, this);
  for (int i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back(&EventServer::worker_main, this);
  }
  return true;
}

void EventServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  service_.begin_drain();
  jobs_cv_.notify_all();
  wake_loop();
  // Workers first: they drain the job queue (draining requests answer
  // kServerShutdown at admission) and finish in-flight conversions to
  // their trailer — the graceful part of the drain.
  for (auto& w : workers_) w.join();
  workers_.clear();
  workers_done_.store(true, std::memory_order_release);
  wake_loop();
  loop_thread_.join();
  ::close(epoll_fd_);
  ::close(wake_fd_);
  ::close(listen_fd_);
  epoll_fd_ = wake_fd_ = listen_fd_ = -1;
  server::unlink_endpoint(endpoint_);
  running_.store(false, std::memory_order_release);
}

void EventServer::shutdown_now() {
  if (!running_.load(std::memory_order_acquire)) return;
  service_.cancel_all();
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (auto& [fd, c] : conns_) {
      c->svc.rc.request_cancel();
      // Unblock worker-side body reads and loop-side idle waits alike.
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  stop();
}

void EventServer::wake_loop() {
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t w = ::write(wake_fd_, &one, sizeof one);
}

// ---- loop thread -----------------------------------------------------------

void EventServer::loop_main() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  bool accept_stopped = false;
  auto next_sweep = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(500);
  for (;;) {
    rearm_or_close_ready();
    if (stopping_.load(std::memory_order_acquire)) {
      if (!accept_stopped) {
        // Stop admitting new connections the moment the drain starts; the
        // listener fd itself is closed after the threads join.
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        accept_stopped = true;
      }
      if (workers_done_.load(std::memory_order_acquire)) break;
    }
    auto now = std::chrono::steady_clock::now();
    if (accept_paused_ && !accept_stopped && now >= accept_resume_at_) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = &listen_fd_;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
      accept_paused_ = false;
    }
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, /*timeout=*/100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      void* p = events[i].data.ptr;
      if (p == &listen_fd_) {
        accept_ready();
      } else if (p == &wake_fd_) {
        std::uint64_t junk;
        while (::read(wake_fd_, &junk, sizeof junk) > 0) {
        }
      } else {
        conn_readable(static_cast<EConn*>(p));
      }
    }
    now = std::chrono::steady_clock::now();
    if (now >= next_sweep) {
      sweep_idle();
      next_sweep = now + std::chrono::milliseconds(500);
    }
  }
  // Teardown: every connection still registered is idle (workers already
  // joined and their hand-backs were processed above); close them all.
  rearm_or_close_ready();
  std::vector<EConn*> rest;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    rest.reserve(conns_.size());
    for (auto& [fd, c] : conns_) rest.push_back(c.get());
  }
  for (EConn* c : rest) close_conn(c);
}

bool EventServer::accept_ready() {
  for (;;) {
    int fd = -1;
    bool injected = false;
    // Failpoint "accept": inject descriptor exhaustion so the deregister/
    // backoff/re-register dance below runs without a full fd table.
    if (util::failpoint::armed()) {
      util::failpoint::Outcome o = util::failpoint::hit("accept");
      if (o.fired() &&
          o.action != util::failpoint::Action::kDelay) {
        injected = true;
        errno = o.action == util::failpoint::Action::kErr ? o.err : EMFILE;
      }
    }
    if (!injected) {
      fd = ::accept4(listen_fd_, nullptr, nullptr,
                     SOCK_CLOEXEC | SOCK_NONBLOCK);
    }
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Out of descriptors. With a level-triggered listener and a
        // non-empty backlog, staying registered would spin the loop hot —
        // deregister, back off, re-register when the backoff elapses
        // (connections finish, fds free, the backlog keeps the peers).
        service_.record_accept_retry();
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        accept_paused_ = true;
        accept_resume_at_ =
            std::chrono::steady_clock::now() + accept_backoff_;
        accept_backoff_ =
            std::min(accept_backoff_ * 2, std::chrono::milliseconds(500));
        return true;
      }
      return false;
    }
    accept_backoff_ = std::chrono::milliseconds(10);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    server::tune_accepted_socket(fd);
    server::set_send_timeout(fd, cfg_.service.idle_read_timeout);
    auto c = std::make_unique<EConn>();
    c->svc.fd = fd;
    c->idle_deadline =
        std::chrono::steady_clock::now() + cfg_.service.idle_read_timeout;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = c.get();
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    service_.record_connection();
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns_.emplace(fd, std::move(c));
  }
}

void EventServer::conn_readable(EConn* c) {
  if (c->dispatched) return;  // stale event already handed to a worker
  const int fd = c->svc.fd;
  for (;;) {
    // Never read past the open frame: bytes after it belong to the request
    // body, which the worker reads under the wall budget.
    ssize_t r = ::recv(fd, c->open_buf + c->open_len,
                       c->open_want - c->open_len, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_conn(c);
      return;
    }
    if (r == 0) {
      // Clean close between requests is just a goodbye; mid-header is the
      // wire-level short read.
      if (c->open_len > 0) service_.record_short_read();
      close_conn(c);
      return;
    }
    c->open_len += static_cast<std::size_t>(r);
    c->idle_deadline =
        std::chrono::steady_clock::now() + cfg_.service.idle_read_timeout;
    if (!c->header_done && c->open_len >= kFrameHeaderSize) {
      c->header_done = true;
      FrameHeader fh;
      if (parse_frame_header(c->open_buf, &fh) &&
          (fh.type == FrameType::kEncode || fh.type == FrameType::kDecode ||
           fh.type == FrameType::kShutoff)) {
        // Buffer the control payload too, so the worker starts with the
        // complete open frame in hand. Everything else — PING/STATS (no
        // payload expected), stray stream frames, unparseable headers —
        // dispatches on the header alone; the service answers and closes.
        c->open_want = kFrameHeaderSize + fh.length;
      }
    }
    if (c->header_done && c->open_len >= c->open_want) {
      dispatch(c);
      return;
    }
  }
}

void EventServer::dispatch(EConn* c) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->svc.fd, nullptr);
  c->dispatched = true;
  {
    std::lock_guard<std::mutex> lk(jobs_mu_);
    jobs_.push_back(c);
  }
  jobs_cv_.notify_one();
}

void EventServer::rearm_or_close_ready() {
  std::vector<std::pair<EConn*, bool>> batch;
  {
    std::lock_guard<std::mutex> lk(done_mu_);
    batch.swap(done_);
  }
  const auto now = std::chrono::steady_clock::now();
  for (auto& [c, keep] : batch) {
    if (!keep || stopping_.load(std::memory_order_acquire)) {
      close_conn(c);
      continue;
    }
    server::set_nonblocking(c->svc.fd, true);
    c->open_len = 0;
    c->open_want = kFrameHeaderSize;
    c->header_done = false;
    c->dispatched = false;
    c->idle_deadline = now + cfg_.service.idle_read_timeout;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = c;
    // Level-triggered: if the client already pipelined the next request,
    // the ADD fires immediately — keep-alive costs no extra round trip.
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, c->svc.fd, &ev) != 0) {
      close_conn(c);
    }
  }
}

void EventServer::sweep_idle() {
  const auto now = std::chrono::steady_clock::now();
  std::vector<EConn*> expired;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (auto& [fd, c] : conns_) {
      if (!c->dispatched && now >= c->idle_deadline) {
        expired.push_back(c.get());
      }
    }
  }
  // Parity with the thread plane: an idle (or header-dribbling) timeout is
  // a silent close, not a recorded protocol error.
  for (EConn* c : expired) close_conn(c);
}

void EventServer::close_conn(EConn* c) {
  const int fd = c->svc.fd;
  if (!c->dispatched) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  std::lock_guard<std::mutex> lk(conns_mu_);
  // Close under the registry lock so shutdown_now never shutdown()s a
  // descriptor number the kernel has already reused.
  ::close(fd);
  conns_.erase(fd);
}

// ---- worker threads --------------------------------------------------------

void EventServer::worker_main() {
  for (;;) {
    EConn* c = nullptr;
    {
      std::unique_lock<std::mutex> lk(jobs_mu_);
      jobs_cv_.wait(lk, [&] {
        return stopping_.load(std::memory_order_acquire) || !jobs_.empty();
      });
      if (jobs_.empty()) {
        if (stopping_.load(std::memory_order_acquire)) return;
        continue;
      }
      c = jobs_.front();
      jobs_.pop_front();
    }
    // The service's request path does blocking reads (body, wall-budgeted)
    // and blocking writes (send timeout armed at accept).
    server::set_nonblocking(c->svc.fd, false);
    bool keep = service_.serve_frame(c->svc, c->open_buf,
                                     c->open_buf + kFrameHeaderSize);
    {
      std::lock_guard<std::mutex> lk(done_mu_);
      done_.emplace_back(c, keep);
    }
    wake_loop();
  }
}

}  // namespace lepton::leptond
