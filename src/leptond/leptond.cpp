// leptond — the standalone Lepton compression daemon (§6 deployment).
//
//   leptond --listen tcp:0.0.0.0:2929 --workers 4 --shutoff-file /dev/shm/ls
//
// Serves the docs/PROTOCOL.md frame protocol over TCP or AF_UNIX with the
// event-driven connection plane (event_server.h) or the thread-per-
// connection plane (--plane thread). Supervision contract:
//   SIGTERM / SIGINT  graceful drain (in-flight requests run to their
//                     trailer), then exit 0
//   SIGHUP            re-stat the shutoff file now (bypasses the 250 ms
//                     TTL cache) and log the state
//   --pidfile PATH    pid written on start, removed on exit
// docs/OPERATIONS.md §"leptond" is the operator guide.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <sys/signalfd.h>
#include <unistd.h>

#include "lepton/context.h"
#include "lepton/store.h"
#include "leptond/config.h"
#include "leptond/event_server.h"
#include "server/server.h"
#include "util/failpoint.h"

namespace {

using lepton::leptond::DaemonConfig;

// Either plane behind one daemon-facing surface.
struct Plane {
  std::unique_ptr<lepton::leptond::EventServer> event;
  std::unique_ptr<lepton::server::LeptonServer> thread;

  bool start() { return event ? event->start() : thread->start(); }
  void stop() {
    if (event) {
      event->stop();
    } else {
      thread->stop();
    }
  }
  const std::string& bound() const {
    return event ? event->bound_address() : thread->bound_address();
  }
  lepton::server::ServerStats stats() const {
    return event ? event->stats() : thread->stats();
  }
};

void log_line(const DaemonConfig& cfg, const std::string& s) {
  if (cfg.quiet) return;
  std::fprintf(stderr, "leptond: %s\n", s.c_str());
  std::fflush(stderr);
}

}  // namespace

int main(int argc, char** argv) {
  DaemonConfig cfg;
  std::string err;
  bool show_help = false;
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!lepton::leptond::parse_args(args, &cfg, &err, &show_help)) {
    std::fprintf(stderr, "leptond: %s\n%s", err.c_str(),
                 lepton::leptond::usage_text().c_str());
    return 2;
  }
  if (show_help) {
    std::fputs(lepton::leptond::usage_text().c_str(), stdout);
    return 0;
  }

  // Chaos harness hook: LEPTON_FAILPOINTS arms the fault-injection schedule
  // (util/failpoint.h grammar). A malformed spec is a hard error — a soak
  // that silently ran fault-free proves nothing.
  if (!lepton::util::failpoint::arm_from_env(&err)) {
    std::fprintf(stderr, "leptond: LEPTON_FAILPOINTS: %s\n", err.c_str());
    return 2;
  }
  if (lepton::util::failpoint::armed()) {
    log_line(cfg, "failpoints armed from LEPTON_FAILPOINTS");
  }

  // Take the pidfile before binding: a live owner means a daemon is already
  // serving this role — refuse. A dead owner's leftover file is replaced.
  if (!cfg.pidfile.empty() &&
      !lepton::leptond::acquire_pidfile(cfg.pidfile, &err)) {
    std::fprintf(stderr, "leptond: %s\n", err.c_str());
    return 1;
  }

  // Block the supervision signals before *any* thread exists — the codec
  // context and the connection plane both spawn pools, every thread
  // inherits this mask, and only the signalfd below ever sees a signal.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGHUP);
  if (pthread_sigmask(SIG_BLOCK, &mask, nullptr) != 0) {
    std::fprintf(stderr, "leptond: sigmask: %s\n", std::strerror(errno));
    return 1;
  }
  int sfd = signalfd(-1, &mask, SFD_CLOEXEC);
  if (sfd < 0) {
    std::fprintf(stderr, "leptond: signalfd: %s\n", std::strerror(errno));
    return 1;
  }

  lepton::TransparentStore store;
  if (!cfg.shutoff_file.empty()) store.set_shutoff_file(cfg.shutoff_file);

  std::unique_ptr<lepton::CodecContext> ctx;
  if (cfg.codec_threads > 0) {
    ctx = std::make_unique<lepton::CodecContext>(cfg.codec_threads);
  }
  lepton::CodecContext* ctx_p =
      ctx ? ctx.get() : &lepton::default_context();

  Plane plane;
  if (cfg.plane == "event") {
    lepton::leptond::EventServerConfig ec;
    ec.listen = cfg.listen;
    ec.workers = cfg.workers;
    ec.service.max_in_flight = cfg.max_in_flight;
    ec.service.max_body_bytes = cfg.max_body_bytes;
    ec.service.idle_read_timeout =
        std::chrono::milliseconds(cfg.idle_timeout_ms);
    ec.service.decode_cache_bytes =
        static_cast<std::size_t>(cfg.decode_cache_mb) << 20;
    ec.service.store = &store;
    plane.event =
        std::make_unique<lepton::leptond::EventServer>(std::move(ec), ctx_p);
  } else {
    lepton::server::ServerConfig sc;
    sc.listen = cfg.listen;
    sc.max_in_flight = cfg.max_in_flight;
    sc.max_body_bytes = cfg.max_body_bytes;
    sc.idle_read_timeout = std::chrono::milliseconds(cfg.idle_timeout_ms);
    sc.decode_cache_bytes =
        static_cast<std::size_t>(cfg.decode_cache_mb) << 20;
    sc.store = &store;
    plane.thread =
        std::make_unique<lepton::server::LeptonServer>(std::move(sc), ctx_p);
  }

  if (!plane.start()) {
    std::string detail = plane.event ? plane.event->last_error()
                                     : std::string(std::strerror(errno));
    std::fprintf(stderr, "leptond: cannot listen on %s: %s\n",
                 cfg.listen.c_str(), detail.c_str());
    if (!cfg.pidfile.empty()) ::unlink(cfg.pidfile.c_str());
    return 1;
  }

  log_line(cfg, "listening on " + plane.bound() + " (plane=" + cfg.plane +
                    " workers=" + std::to_string(cfg.workers) +
                    " pid=" + std::to_string(::getpid()) + ")");

  // Supervised run loop: nothing to poll but the signalfd — all serving
  // happens on the plane's threads.
  int exit_code = 0;
  for (bool run = true; run;) {
    signalfd_siginfo si;
    ssize_t n = ::read(sfd, &si, sizeof si);
    if (n != static_cast<ssize_t>(sizeof si)) {
      if (n < 0 && errno == EINTR) continue;
      exit_code = 1;
      break;
    }
    switch (si.ssi_signo) {
      case SIGHUP: {
        // Reload of the shutoff state: re-stat the file now, TTL bypassed.
        bool engaged = store.recheck_shutoff();
        log_line(cfg, std::string("SIGHUP: shutoff ") +
                          (engaged ? "engaged" : "clear"));
        break;
      }
      case SIGTERM:
      case SIGINT: {
        log_line(cfg, "draining");
        run = false;
        break;
      }
      default:
        break;
    }
  }

  plane.stop();
  auto s = plane.stats();
  log_line(cfg, "drained: " + std::to_string(s.requests) + " requests, " +
                    std::to_string(s.connections) + " connections served");
  if (!cfg.pidfile.empty()) ::unlink(cfg.pidfile.c_str());
  ::close(sfd);
  return exit_code;
}
