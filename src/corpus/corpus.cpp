#include "corpus/corpus.h"

#include <cmath>

#include "corpus/image_gen.h"
#include "jpeg/parser.h"

namespace lepton::corpus {
namespace {

using jpegfmt::JfifOptions;
using jpegfmt::Subsampling;

// Camera-style metadata blob: EXIF-flavoured key/value text. Real photos
// carry 1-10 KiB of such header data (the paper's Figure 4 attributes 2.3%
// of bytes to headers, compressing to 47.6% under Deflate); redundant text
// like this compresses similarly.
std::vector<std::uint8_t> fake_exif(util::Rng& rng) {
  static const char* kKeys[] = {
      "Make=ACME Imaging Corp",        "Model=SnapShot 900 Digital Camera",
      "Orientation=top-left",          "XResolution=72/1",
      "YResolution=72/1",              "Software=SnapShot firmware 2.1.04",
      "ExposureTime=1/125",            "FNumber=28/10",
      "ISOSpeedRatings=200",           "FocalLength=350/10",
      "Flash=off, did not fire",       "WhiteBalance=auto",
      "ColorSpace=sRGB",               "MeteringMode=pattern",
      "SceneCaptureType=standard",     "GPSLatitudeRef=N",
  };
  std::vector<std::uint8_t> out;
  const char* magic = "Exif\0\0";
  out.insert(out.end(), magic, magic + 6);
  int entries = static_cast<int>(rng.range(24, 160));
  for (int i = 0; i < entries; ++i) {
    const char* k = kKeys[rng.below(sizeof(kKeys) / sizeof(kKeys[0]))];
    while (*k != '\0') out.push_back(static_cast<std::uint8_t>(*k++));
    char buf[40];
    std::snprintf(buf, sizeof(buf), ";ts=2016-0%d-%02d %02d:%02d:%02d\n",
                  static_cast<int>(rng.range(1, 9)),
                  static_cast<int>(rng.range(1, 28)),
                  static_cast<int>(rng.range(0, 23)),
                  static_cast<int>(rng.range(0, 59)),
                  static_cast<int>(rng.range(0, 59)));
    for (const char* p = buf; *p != '\0'; ++p) {
      out.push_back(static_cast<std::uint8_t>(*p));
    }
  }
  return out;
}

JfifOptions random_jfif_options(util::Rng& rng) {
  JfifOptions o;
  o.quality = static_cast<int>(rng.range(50, 95));
  double r = rng.uniform();
  o.subsampling = r < 0.6 ? Subsampling::k420
                          : (r < 0.8 ? Subsampling::k422 : Subsampling::k444);
  if (rng.chance(0.25)) {
    o.restart_interval_mcus = static_cast<int>(rng.range(1, 16));
  }
  o.optimize_huffman = rng.chance(0.3);
  if (rng.chance(0.8)) o.comment = fake_exif(rng);
  return o;
}

ImageStyle random_style(util::Rng& rng) {
  double r = rng.uniform();
  if (r < 0.2) return ImageStyle::kSmoothGradient;
  if (r < 0.45) return ImageStyle::kTexture;
  if (r < 0.6) return ImageStyle::kEdges;
  return ImageStyle::kMixed;
}

std::vector<std::uint8_t> valid_jpeg_near(std::size_t target, util::Rng& rng,
                                          int channels, JfifOptions opt,
                                          ImageStyle style) {
  // Bytes-per-pixel for this generator/quality land around 0.1-0.5;
  // iterate dimension scaling until within 25% of target.
  double bpp = 0.25;
  double aspect = rng.uniform(0.6, 1.7);
  std::vector<std::uint8_t> best;
  std::uint64_t img_seed = rng.next();
  for (int iter = 0; iter < 6; ++iter) {
    double area = static_cast<double>(target) / bpp;
    int w = std::max(16, static_cast<int>(std::sqrt(area * aspect)));
    int h = std::max(16, static_cast<int>(area / w));
    auto img = generate_image(w, h, channels, style, img_seed);
    auto file = jpegfmt::build_jfif(img, opt);
    best = std::move(file);
    double ratio = static_cast<double>(best.size()) / target;
    if (ratio > 0.75 && ratio < 1.25) break;
    bpp *= ratio;  // adjust and retry
  }
  return best;
}

}  // namespace

std::vector<std::uint8_t> jpeg_of_size(std::size_t target_bytes,
                                       std::uint64_t seed) {
  util::Rng rng(seed);
  return valid_jpeg_near(target_bytes, rng, 3, random_jfif_options(rng),
                         random_style(rng));
}

std::vector<CorpusFile> build_corpus(const CorpusOptions& opts) {
  util::Rng rng(opts.seed);
  std::vector<CorpusFile> out;

  auto target = [&](int i, int n) {
    // Log-uniform spread over [min, max] so small files are represented the
    // way Figure 6's x-axis needs.
    double t = n <= 1 ? 0.5 : static_cast<double>(i) / (n - 1);
    double lo = std::log(static_cast<double>(opts.min_bytes));
    double hi = std::log(static_cast<double>(opts.max_bytes));
    return static_cast<std::size_t>(std::exp(lo + (hi - lo) * t));
  };

  for (int i = 0; i < opts.valid_files; ++i) {
    CorpusFile f;
    f.kind = FileKind::kBaselineJpeg;
    int channels = rng.chance(0.08) ? 1 : 3;
    f.bytes = valid_jpeg_near(target(i, opts.valid_files), rng, channels,
                              random_jfif_options(rng), random_style(rng));
    f.label = "baseline-" + std::to_string(i);
    out.push_back(std::move(f));
  }

  if (!opts.include_anomalies) return out;

  // Anomaly counts scaled from the §6.2 proportions (at least one each so
  // every classification path is exercised).
  int n = opts.valid_files;
  int n_prog = std::max(1, n * 3 / 100);
  int n_unsup = std::max(1, n * 3 / 200);
  int n_notimg = std::max(1, n / 100);
  int n_cmyk = std::max(1, n / 200);
  int n_zero = std::max(1, n / 50);
  int n_trunc = std::max(1, n / 100);
  int n_tail = std::max(1, n / 50);
  int n_concat = std::max(1, n / 100);

  // Anomalies are small: the paper's rejected chunks are 3.6% by count but
  // only 1.2% by *bytes* (§4), and the byte share is what the generic-codec
  // comparison integrates over.
  auto small_valid = [&](std::uint64_t seed2) {
    util::Rng r2(seed2);
    return valid_jpeg_near(opts.min_bytes / 3, r2, 3, random_jfif_options(r2),
                           random_style(r2));
  };

  for (int i = 0; i < n_prog; ++i) {
    CorpusFile f;
    f.kind = FileKind::kProgressive;
    f.bytes = small_valid(rng.next());
    for (std::size_t j = 0; j + 1 < f.bytes.size(); ++j) {
      if (f.bytes[j] == 0xFF && f.bytes[j + 1] == 0xC0) {
        f.bytes[j + 1] = 0xC2;  // SOF0 -> SOF2
        break;
      }
    }
    f.label = "progressive-" + std::to_string(i);
    out.push_back(std::move(f));
  }
  for (int i = 0; i < n_unsup; ++i) {
    CorpusFile f;
    f.kind = FileKind::kUnsupported;
    f.bytes = small_valid(rng.next());
    for (std::size_t j = 0; j + 1 < f.bytes.size(); ++j) {
      if (f.bytes[j] == 0xFF && f.bytes[j + 1] == 0xC0) {
        f.bytes[j + 1] = 0xC3;  // lossless SOF3
        break;
      }
    }
    f.label = "unsupported-" + std::to_string(i);
    out.push_back(std::move(f));
  }
  for (int i = 0; i < n_notimg; ++i) {
    CorpusFile f;
    f.kind = FileKind::kNotAnImage;
    f.bytes = {0xFF, 0xD8};  // SOI then junk (§4: sampling keyed on SOI)
    for (std::size_t j = 0; j < opts.min_bytes / 8; ++j) {
      f.bytes.push_back(static_cast<std::uint8_t>(rng.below(255)));
    }
    f.label = "notimage-" + std::to_string(i);
    out.push_back(std::move(f));
  }
  for (int i = 0; i < n_cmyk; ++i) {
    CorpusFile f;
    f.kind = FileKind::kCmyk;
    f.bytes = small_valid(rng.next());
    for (std::size_t j = 0; j + 9 < f.bytes.size(); ++j) {
      if (f.bytes[j] == 0xFF && f.bytes[j + 1] == 0xC0) {
        f.bytes[j + 9] = 4;  // component count
        break;
      }
    }
    f.label = "cmyk-" + std::to_string(i);
    out.push_back(std::move(f));
  }
  for (int i = 0; i < n_zero; ++i) {
    CorpusFile f;
    f.kind = FileKind::kZeroWipedTail;
    auto file = small_valid(rng.next());
    auto jf = jpegfmt::parse_jpeg({file.data(), file.size()});
    // Wipe the last fifth of the scan; pad with enough zero bytes that the
    // zero-decode can complete the remaining MCUs (§A.3).
    std::size_t keep = jf.scan_begin +
                       (jf.scan_end - jf.scan_begin) * 4 / 5;
    f.bytes.assign(file.begin(), file.begin() + static_cast<std::ptrdiff_t>(keep));
    std::size_t blocks = static_cast<std::size_t>(jf.frame.mcus_x) *
                         jf.frame.mcus_y * jf.frame.blocks_per_mcu();
    f.bytes.insert(f.bytes.end(), blocks / 4 * 26 + 1024, 0x00);
    f.label = "zerowiped-" + std::to_string(i);
    out.push_back(std::move(f));
  }
  for (int i = 0; i < n_trunc; ++i) {
    CorpusFile f;
    f.kind = FileKind::kTruncated;
    auto file = small_valid(rng.next());
    f.bytes.assign(file.begin(),
                   file.begin() + static_cast<std::ptrdiff_t>(file.size() / 3));
    f.label = "truncated-" + std::to_string(i);
    out.push_back(std::move(f));
  }
  for (int i = 0; i < n_tail; ++i) {
    CorpusFile f;
    f.kind = FileKind::kTrailingGarbage;
    f.bytes = small_valid(rng.next());
    for (int j = 0; j < 1500; ++j) {
      f.bytes.push_back(static_cast<std::uint8_t>(rng.below(256)));
    }
    f.label = "tvtail-" + std::to_string(i);
    out.push_back(std::move(f));
  }
  for (int i = 0; i < n_concat; ++i) {
    CorpusFile f;
    f.kind = FileKind::kConcatenated;
    util::Rng r2(rng.next());
    auto thumb = valid_jpeg_near(opts.min_bytes / 4, r2, 3,
                                 random_jfif_options(r2), random_style(r2));
    auto main_img = small_valid(rng.next());
    f.bytes = thumb;
    f.bytes.insert(f.bytes.end(), main_img.begin(), main_img.end());
    f.label = "concat-" + std::to_string(i);
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace lepton::corpus
