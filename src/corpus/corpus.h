// Benchmark corpus builder.
//
// Mirrors the paper's evaluation inputs (§4): "randomly sampled data chunks
// beginning with the JPEG start-of-image marker ... Some of these chunks
// are JPEG files, some are not JPEGs, and some are the first 4 MiB of a
// large JPEG file." The anomaly proportions follow the §6.2 exit-code
// table: ~3% progressive, ~1.5% otherwise-unsupported, ~0.8% non-image,
// ~0.5% CMYK, plus §A.3 corruptions (zero-wiped tails, truncations,
// trailing TV garbage, concatenated thumbnail+image pairs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jpeg/jfif_builder.h"
#include "util/rng.h"

namespace lepton::corpus {

enum class FileKind {
  kBaselineJpeg,    // valid baseline JPEG (the ~94% case)
  kProgressive,     // SOF2 (rejected as Progressive)
  kUnsupported,     // 12-bit / multi-scan style (rejected Unsupported)
  kNotAnImage,      // SOI then non-JPEG bytes
  kCmyk,            // 4-component frame
  kZeroWipedTail,   // §A.3 zero-run corruption (often still round-trips)
  kTruncated,       // cut mid-scan
  kTrailingGarbage, // valid JPEG + TV-format appendix (round-trips)
  kConcatenated     // thumbnail JPEG + main JPEG in one file (round-trips)
};

struct CorpusFile {
  FileKind kind = FileKind::kBaselineJpeg;
  std::string label;
  std::vector<std::uint8_t> bytes;
};

struct CorpusOptions {
  // Approximate byte-size targets for valid JPEGs (the paper benchmarks
  // 100 KiB - 4 MiB; tests use smaller ranges to stay fast).
  std::size_t min_bytes = 30 << 10;
  std::size_t max_bytes = 400 << 10;
  int valid_files = 24;       // baseline JPEGs
  bool include_anomalies = true;  // add the §6.2 / §A.3 mix
  std::uint64_t seed = 20160414;  // Lepton's production launch date
};

// Builds a deterministic corpus. Valid files span sizes, qualities
// (50..95), subsampling modes, grayscale, restart intervals and content
// styles; anomalies follow the §6.2 proportions scaled to corpus size.
std::vector<CorpusFile> build_corpus(const CorpusOptions& opts);

// One valid baseline JPEG of roughly `target_bytes` (binary-searches the
// image dimensions; exact size varies with content).
std::vector<std::uint8_t> jpeg_of_size(std::size_t target_bytes,
                                       std::uint64_t seed);

}  // namespace lepton::corpus
