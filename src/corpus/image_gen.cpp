#include "corpus/image_gen.h"

#include <cmath>
#include <vector>

namespace lepton::corpus {
namespace {

// Seeded value-noise lattice with bilinear interpolation; summed octaves
// give the 1/f-ish spectrum of natural textures.
class ValueNoise {
 public:
  ValueNoise(std::uint64_t seed, int cell) : seed_(seed), cell_(cell) {}

  double at(int x, int y) const {
    int gx = x / cell_, gy = y / cell_;
    double fx = static_cast<double>(x % cell_) / cell_;
    double fy = static_cast<double>(y % cell_) / cell_;
    double v00 = lattice(gx, gy), v10 = lattice(gx + 1, gy);
    double v01 = lattice(gx, gy + 1), v11 = lattice(gx + 1, gy + 1);
    double sx = fx * fx * (3 - 2 * fx);  // smoothstep
    double sy = fy * fy * (3 - 2 * fy);
    double a = v00 + (v10 - v00) * sx;
    double b = v01 + (v11 - v01) * sx;
    return a + (b - a) * sy;  // [0, 1)
  }

 private:
  double lattice(int gx, int gy) const {
    std::uint64_t h = seed_;
    h ^= static_cast<std::uint64_t>(gx) * 0x9E3779B97F4A7C15ull;
    h ^= static_cast<std::uint64_t>(gy) * 0xC2B2AE3D27D4EB4Full;
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 33;
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }

  std::uint64_t seed_;
  int cell_;
};

}  // namespace

jpegfmt::RasterImage generate_image(int width, int height, int channels,
                                    ImageStyle style, std::uint64_t seed) {
  jpegfmt::RasterImage img;
  img.width = width;
  img.height = height;
  img.channels = channels;
  img.pixels.resize(static_cast<std::size_t>(width) * height * channels);
  util::Rng rng(seed);

  // Global gradient parameters, scaled so the ramp spans a bounded range
  // across the whole image regardless of its dimensions (unbounded slopes
  // saturate to flat black/white areas, whose scan bytes are trivially
  // compressible and would corrupt the Figure 2 "generic codecs save ~1%"
  // baseline).
  double gx = rng.uniform(-90.0, 90.0) / width;
  double gy = rng.uniform(-90.0, 90.0) / height;
  double base = rng.uniform(90, 170);
  // Radial component (sunset-sky look, §A.2.3's motivating example).
  double cx = width * rng.uniform(0.1, 0.9), cy = height * rng.uniform(0.1, 0.9);
  double rad_amp = rng.uniform(10, 50);
  double rad_scale = rng.uniform(0.5, 2.0) * (width + height);

  ValueNoise coarse(rng.next(), std::max(8, width / 12));
  ValueNoise mid(rng.next(), 13);
  ValueNoise fine(rng.next(), 3);

  // Hard-edge rectangles.
  struct Rect {
    int x0, y0, x1, y1;
    double delta;
  };
  std::vector<Rect> rects;
  int nrects = style == ImageStyle::kEdges
                   ? 12
                   : (style == ImageStyle::kMixed ? 5 : 0);
  for (int i = 0; i < nrects; ++i) {
    int x0 = static_cast<int>(rng.below(static_cast<std::uint64_t>(width)));
    int y0 = static_cast<int>(rng.below(static_cast<std::uint64_t>(height)));
    rects.push_back({x0, y0,
                     x0 + static_cast<int>(rng.range(8, width / 2 + 8)),
                     y0 + static_cast<int>(rng.range(8, height / 2 + 8)),
                     rng.uniform(-60, 60)});
  }

  double w_coarse, w_mid, w_fine;
  switch (style) {
    case ImageStyle::kSmoothGradient:
      w_coarse = 18;
      w_mid = 3;
      w_fine = 1;
      break;
    case ImageStyle::kTexture:
      w_coarse = 10;
      w_mid = 35;
      w_fine = 16;
      break;
    case ImageStyle::kEdges:
      w_coarse = 8;
      w_mid = 6;
      w_fine = 3;
      break;
    case ImageStyle::kMixed:
    default:
      w_coarse = 16;
      w_mid = 18;
      w_fine = 7;
      break;
  }
  // Per-channel hue offsets so chroma planes carry real (but smaller) data.
  double chan_off[4] = {0, rng.uniform(-25, 25), rng.uniform(-25, 25), 0};

  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      double dx = x - cx, dy = y - cy;
      double r = std::sqrt(dx * dx + dy * dy);
      double v = base + gx * x + gy * y +
                 rad_amp * std::sin(r * 6.2831853 / rad_scale) +
                 w_coarse * (coarse.at(x, y) - 0.5) * 2 +
                 w_mid * (mid.at(x, y) - 0.5) * 2 +
                 w_fine * (fine.at(x, y) - 0.5) * 2;
      for (const auto& rect : rects) {
        if (x >= rect.x0 && x < rect.x1 && y >= rect.y0 && y < rect.y1) {
          v += rect.delta;
        }
      }
      for (int c = 0; c < channels; ++c) {
        double cv = v + chan_off[c] * (0.5 + coarse.at(x + 37 * c, y) * 0.5);
        // Soft tone curve instead of hard clipping: saturated flat regions
        // would make the Huffman scan LZ-compressible, which real photos
        // are not.
        cv = 128.0 + 112.0 * std::tanh((cv - 128.0) / 112.0);
        img.pixels[(static_cast<std::size_t>(y) * width + x) * channels + c] =
            static_cast<std::uint8_t>(cv < 0 ? 0 : (cv > 255 ? 255 : cv));
      }
    }
  }
  return img;
}

}  // namespace lepton::corpus
