// Synthetic photo-like image generator.
//
// The paper's benchmark corpus is 233,376 randomly sampled user chunks
// (§4); we cannot have user photos, so this generator produces images with
// the statistical structure Lepton's model exploits in real photographs:
// smooth large-scale gradients (DC prediction), value-noise octaves at
// several scales (AC energy distribution), and hard edges (edge-coefficient
// correlation across blocks). Everything is seeded and deterministic.
#pragma once

#include <cstdint>

#include "jpeg/jfif_builder.h"
#include "util/rng.h"

namespace lepton::corpus {

enum class ImageStyle {
  kSmoothGradient,  // sky-like: strong DC structure, weak AC
  kTexture,         // foliage-like: dense mid-frequency AC
  kEdges,           // architecture-like: strong edge coefficients
  kMixed            // composite of the above (default "photo")
};

jpegfmt::RasterImage generate_image(int width, int height, int channels,
                                    ImageStyle style, std::uint64_t seed);

}  // namespace lepton::corpus
