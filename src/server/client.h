// Thin client for the Lepton compression server (docs/PROTOCOL.md).
//
// One LeptonClient wraps one connection and issues sequential requests:
//
//   auto cli = lepton::server::LeptonClient::connect(endpoint);
//   auto r = cli.encode(jpeg_bytes, {.deadline = 50ms});
//   if (r.code == util::ExitCode::kSuccess) use(r.data);
//
// The transact loop is full-duplex: the request body is sent while response
// frames are drained, because the server streams decode output *during* the
// body (TTFB before the container has fully arrived) and a client that only
// reads after writing everything would deadlock both socket buffers — the
// flow-control rule PROTOCOL.md §"Flow control" makes normative.
//
// Per-request facts (TTFB, wall time, byte counts, the trailer's server-side
// counters) are surfaced so pacing layers — the fleet requeue path in
// storage/fleet.h, the micro_server bench — can aggregate them through
// util/stats.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "server/protocol.h"
#include "util/exit_codes.h"

namespace lepton::server {

struct RequestOptions {
  // 0 = no deadline. Carried in the open frame; the server arms it on the
  // request session's RunControl, so expiry comes back as kTimeout.
  std::chrono::milliseconds deadline{0};
  // Client-side guard against a hung server/transport (poll ceiling).
  std::chrono::milliseconds transport_timeout{60000};
  // Size of the DATA slices the body is cut into.
  std::uint32_t slice_bytes = 64 << 10;
};

struct RequestResult {
  // False when the conversation itself failed (connect/IO error, truncated
  // response, malformed trailer); `code` then holds the transport-level
  // classification (kShortRead/kTimeout) and `message` the detail. The
  // response body in `data` is authoritative only when transport_ok and
  // code == kSuccess.
  bool transport_ok = false;
  util::ExitCode code = util::ExitCode::kImpossible;
  std::vector<std::uint8_t> data;
  std::string message;

  // Client-side clocking.
  double ttfb_s = 0;   // request sent -> first response DATA byte
  double total_s = 0;  // request sent -> trailer (or failure)

  // Trailer facts (server-side byte counts, kill-switch state).
  std::uint64_t server_bytes_in = 0;
  std::uint64_t server_bytes_out = 0;
  bool shutoff_engaged = false;

  bool ok() const { return transport_ok && code == util::ExitCode::kSuccess; }
};

class LeptonClient {
 public:
  // Connects to a server endpoint — "unix:/path", a bare filesystem path,
  // or "tcp:host:port" (endpoint.h; TCP sockets get TCP_NODELAY). Check
  // ok(); a failed connect keeps the failure's message in message().
  static LeptonClient connect(const std::string& endpoint);

  LeptonClient() = default;
  ~LeptonClient();
  LeptonClient(LeptonClient&& other) noexcept;
  LeptonClient& operator=(LeptonClient&& other) noexcept;
  LeptonClient(const LeptonClient&) = delete;
  LeptonClient& operator=(const LeptonClient&) = delete;

  bool ok() const { return fd_ >= 0; }
  const std::string& message() const { return message_; }

  // body = JPEG file; result.data = Lepton container.
  RequestResult encode(std::span<const std::uint8_t> jpeg,
                       const RequestOptions& opts = {});
  // body = Lepton container; result.data = original JPEG bytes.
  RequestResult decode(std::span<const std::uint8_t> lep,
                       const RequestOptions& opts = {});
  // Liveness probe; result.shutoff_engaged reports the (TTL-cached) switch.
  // `opts` only matters for its transport_timeout (health probes use a
  // tight one); a deadline is meaningless for a request with no session.
  RequestResult ping(const RequestOptions& opts = {});
  // Kill-switch operation; result.shutoff_engaged is the state after the
  // op, from a forced (TTL-bypassing) re-check.
  RequestResult shutoff(ShutoffOp op);
  // Operator metrics: result.data holds the server's STATS text ("key
  // value" lines — docs/PROTOCOL.md §"STATS"). A pre-STATS server answers
  // kImpossible and closes; that is the defined probe semantics.
  RequestResult stats();

  void close();

 private:
  RequestResult transact(FrameType open_type,
                         std::span<const std::uint8_t> body,
                         const RequestOptions& opts);

  int fd_ = -1;
  std::string message_;
};

}  // namespace lepton::server
