#include "server/service.h"

#include <sys/uio.h>

#include <algorithm>
#include <cstring>

#include "lepton/context.h"
#include "lepton/session.h"
#include "server/sockio.h"
#include "util/md5.h"

namespace lepton::server {
namespace {

using util::ExitCode;

// Streams session output as DATA frames. A send failure marks the sink
// broken and cancels the request's RunControl, so the session aborts at its
// next MCU-row poll instead of converting for a dead peer.
class SocketSink : public ByteSink {
 public:
  SocketSink(int fd, RunControl* rc) : fd_(fd), rc_(rc) {}

  void append(std::span<const std::uint8_t> b) override {
    if (broken_) return;
    std::size_t off = 0;
    while (off < b.size()) {
      auto n = static_cast<std::uint32_t>(
          std::min<std::size_t>(b.size() - off, kMaxDataFrame));
      std::uint8_t hdr[kFrameHeaderSize];
      write_frame_header(hdr, {FrameType::kData, 0, n});
      iovec iov[2] = {{hdr, kFrameHeaderSize},
                      {const_cast<std::uint8_t*>(b.data() + off), n}};
      if (!writev_all(iov)) {
        broken_ = true;
        rc_->request_cancel();
        return;
      }
      if (!saw_first_) {
        first_ = std::chrono::steady_clock::now();
        saw_first_ = true;
      }
      bytes_ += n;
      off += n;
    }
  }

  bool broken() const { return broken_; }
  std::uint64_t bytes() const { return bytes_; }
  bool saw_first() const { return saw_first_; }
  std::chrono::steady_clock::time_point first_byte() const { return first_; }

 private:
  bool writev_all(iovec iov[2]) {
    std::size_t total = iov[0].iov_len + iov[1].iov_len;
    // Failpoint "sock.write", same semantics as send_all's: a short
    // outcome delivers a prefix of this DATA frame and then breaks the
    // sink — the client sees a response die mid-frame.
    bool fail_after = false;
    if (util::failpoint::armed()) {
      total = failpoint_write(total, &fail_after);
      if (total == 0 && fail_after) return false;
    }
    std::size_t sent = 0;
    while (sent < total) {
      iovec cur[2];
      int cnt = 0;
      std::size_t skip = sent;
      for (int i = 0; i < 2; ++i) {
        if (skip >= iov[i].iov_len) {
          skip -= iov[i].iov_len;
          continue;
        }
        cur[cnt].iov_base = static_cast<std::uint8_t*>(iov[i].iov_base) + skip;
        cur[cnt].iov_len = iov[i].iov_len - skip;
        skip = 0;
        ++cnt;
      }
      msghdr msg{};
      msg.msg_iov = cur;
      msg.msg_iovlen = static_cast<std::size_t>(cnt);
      ssize_t w = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(w);
    }
    return !fail_after;
  }

  int fd_;
  RunControl* rc_;
  bool broken_ = false;
  bool saw_first_ = false;
  std::chrono::steady_clock::time_point first_;
  std::uint64_t bytes_ = 0;
};

// Tees session output: forwards every slice to the socket and keeps a
// bounded copy for decode-cache insertion. Output past the cap stops the
// copy (the cache would reject it anyway) but keeps streaming.
class CaptureSink : public ByteSink {
 public:
  CaptureSink(SocketSink& inner, std::size_t cap) : inner_(inner), cap_(cap) {}

  void append(std::span<const std::uint8_t> b) override {
    inner_.append(b);
    if (overflow_) return;
    if (copy_.size() + b.size() > cap_) {
      overflow_ = true;
      copy_.clear();
      copy_.shrink_to_fit();
      return;
    }
    copy_.insert(copy_.end(), b.begin(), b.end());
  }

  bool overflow() const { return overflow_; }
  std::vector<std::uint8_t> take() { return std::move(copy_); }

 private:
  SocketSink& inner_;
  std::size_t cap_;
  std::vector<std::uint8_t> copy_;
  bool overflow_ = false;
};

void append_kv(std::string& s, const char* key, std::uint64_t v) {
  s += key;
  s += ' ';
  s += std::to_string(v);
  s += '\n';
}

void append_kv_ms(std::string& s, const char* key, double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s %.3f\n", key, seconds * 1000.0);
  s += buf;
}

}  // namespace

RequestService::RequestService(ServiceConfig cfg, CodecContext* ctx)
    : cfg_(std::move(cfg)), ctx_(ctx != nullptr ? *ctx : default_context()) {
  if (cfg_.store == nullptr) {
    own_store_ = std::make_unique<TransparentStore>();
    store_ = own_store_.get();
  } else {
    store_ = cfg_.store;
  }
  if (cfg_.decode_cache_bytes > 0) {
    storage::DecodeCacheConfig cc;
    cc.budget_bytes = cfg_.decode_cache_bytes;
    decode_cache_ = std::make_unique<storage::DecodeCache>(cc);
  }
}

void RequestService::reset() {
  draining_.store(false, std::memory_order_release);
  cancel_all_.store(false, std::memory_order_release);
}

void RequestService::begin_drain() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    draining_.store(true, std::memory_order_release);
  }
  slot_cv_.notify_all();
}

void RequestService::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  slot_cv_.wait(lk, [&] { return stats_.in_flight == 0; });
}

void RequestService::cancel_all() {
  cancel_all_.store(true, std::memory_order_release);
}

void RequestService::record_connection() {
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.connections;
}

void RequestService::record_short_read() {
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.protocol_errors;
  stats_.trailer_codes.add(static_cast<unsigned>(ExitCode::kShortRead));
}

void RequestService::record_accept_retry() {
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.accept_retries;
}

ServerStats RequestService::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

bool RequestService::acquire_slot() {
  std::unique_lock<std::mutex> lk(mu_);
  slot_cv_.wait(lk, [&] {
    return draining_.load(std::memory_order_acquire) ||
           stats_.in_flight < cfg_.max_in_flight;
  });
  if (draining_.load(std::memory_order_acquire)) return false;
  ++stats_.requests;
  ++stats_.in_flight;
  if (stats_.in_flight > stats_.in_flight_peak) {
    stats_.in_flight_peak = stats_.in_flight;
  }
  return true;
}

void RequestService::release_slot() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    --stats_.in_flight;
  }
  slot_cv_.notify_all();
}

std::string RequestService::stats_text() {
  ServerStats s = stats();
  std::string t;
  t.reserve(512);
  append_kv(t, "stats_version", 1);
  append_kv(t, "connections", s.connections);
  append_kv(t, "requests", s.requests);
  append_kv(t, "bytes_in", s.bytes_in);
  append_kv(t, "bytes_out", s.bytes_out);
  append_kv(t, "protocol_errors", s.protocol_errors);
  append_kv(t, "oversized_rejects", s.oversized_rejects);
  append_kv(t, "disconnects", s.disconnects);
  append_kv(t, "shutoff_refusals", s.shutoff_refusals);
  append_kv(t, "accept_retries", s.accept_retries);
  append_kv(t, "in_flight", static_cast<std::uint64_t>(s.in_flight));
  append_kv(t, "in_flight_peak",
            static_cast<std::uint64_t>(s.in_flight_peak));
  append_kv(t, "shutoff_engaged", store_->shutoff_active() ? 1 : 0);
  append_kv_ms(t, "ttfb_p50_ms", s.ttfb_s.percentile(50));
  append_kv_ms(t, "ttfb_p99_ms", s.ttfb_s.percentile(99));
  append_kv_ms(t, "request_p50_ms", s.request_s.percentile(50));
  append_kv_ms(t, "request_p99_ms", s.request_s.percentile(99));
  for (unsigned code = 0; code < s.trailer_codes.ceiling(); ++code) {
    std::uint64_t n = s.trailer_codes.count(code);
    if (n == 0) continue;
    t += "trailer_code_";
    t += std::to_string(code);
    t += ' ';
    t += std::string(
        util::exit_code_name(static_cast<util::ExitCode>(code)));
    t += ' ';
    t += std::to_string(n);
    t += '\n';
  }
  // Additive keys (PROTOCOL.md §"STATS"): per-site failpoint counters,
  // present only while a chaos schedule is armed.
  if (util::failpoint::armed()) {
    append_kv(t, "failpoints_armed",
              static_cast<std::uint64_t>(util::failpoint::report().size()));
    t += util::failpoint::stats_text();
  }
  // Additive keys: decoded-output cache counters, present only when the
  // cache is configured (--decode-cache-mb / decode_cache_bytes).
  if (decode_cache_ != nullptr) t += decode_cache_->stats_text();
  if (cfg_.extra_stats) t += cfg_.extra_stats();
  return t;
}

bool RequestService::serve_stats(int fd) {
  std::string text = stats_text();
  std::uint8_t hdr[kFrameHeaderSize];
  write_frame_header(
      hdr, {FrameType::kData, 0, static_cast<std::uint32_t>(text.size())});
  // Like PING, a STATS round trip is not a conversion: it does not hold an
  // admission slot and its trailer is not tallied into trailer_codes.
  return send_all(fd, hdr, sizeof hdr) &&
         send_all(fd, text.data(), text.size()) &&
         send_trailer(fd, ExitCode::kSuccess, store_->shutoff_active(), 0,
                      text.size());
}

bool RequestService::serve_frame(ServiceConn& c,
                                 const std::uint8_t hdr[kFrameHeaderSize],
                                 const std::uint8_t* payload) {
  FrameHeader fh;
  if (!parse_frame_header(hdr, &fh)) {
    // Oversized declared length or a frame no version-1 client sends.
    // Rejected before any allocation; answer and hang up.
    bool oversized = static_cast<FrameType>(hdr[0]) == FrameType::kData;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (oversized) {
        ++stats_.oversized_rejects;
      } else {
        ++stats_.protocol_errors;
      }
      stats_.trailer_codes.add(static_cast<unsigned>(ExitCode::kImpossible));
    }
    (void)send_trailer(c.fd, ExitCode::kImpossible, store_->shutoff_active(),
                       0, 0);
    return false;
  }

  // Control payload: pre-read by the event plane (passed in), read here by
  // the thread plane (which leaves the idle recv timeout armed on c.fd).
  std::uint8_t ctl_buf[kMaxControlFrame];
  const std::uint8_t* ctl = payload;
  const bool needs_payload = fh.type == FrameType::kShutoff ||
                             fh.type == FrameType::kEncode ||
                             fh.type == FrameType::kDecode;
  if (needs_payload && ctl == nullptr) {
    if (fh.length > kMaxControlFrame ||
        read_exact(c.fd, ctl_buf, fh.length) != ReadStatus::kOk) {
      return false;
    }
    ctl = ctl_buf;
  }

  switch (fh.type) {
    case FrameType::kPing: {
      return fh.length == 0 &&
             send_trailer(c.fd, ExitCode::kSuccess, store_->shutoff_active(),
                          0, 0);
    }
    case FrameType::kStats: {
      return fh.length == 0 && serve_stats(c.fd);
    }
    case FrameType::kShutoff: {
      if (fh.length != 1) return false;
      auto op = static_cast<ShutoffOp>(ctl[0]);
      if (op == ShutoffOp::kEngage) store_->set_shutoff(true);
      if (op == ShutoffOp::kClear) store_->set_shutoff(false);
      // Every SHUTOFF answer re-stats the shutoff file (bypassing the
      // 250 ms TTL cache): the operator asked *now*, not a TTL ago.
      bool state = store_->recheck_shutoff();
      return send_trailer(c.fd, ExitCode::kSuccess, state, 0, 0);
    }
    case FrameType::kEncode:
    case FrameType::kDecode: {
      return serve_request(c, hdr[0], ctl, fh.length);
    }
    default: {
      // DATA/END/TRAILER outside a request: protocol violation.
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.protocol_errors;
        stats_.trailer_codes.add(
            static_cast<unsigned>(ExitCode::kImpossible));
      }
      (void)send_trailer(c.fd, ExitCode::kImpossible,
                         store_->shutoff_active(), 0, 0);
      return false;
    }
  }
}

bool RequestService::serve_request(ServiceConn& c, std::uint8_t open_type,
                                   const std::uint8_t* open_payload,
                                   std::uint32_t open_len) {
  const bool is_encode =
      static_cast<FrameType>(open_type) == FrameType::kEncode;
  OpenPayload open;
  if (!parse_open_payload(open_payload, open_len, &open) ||
      open.version != kProtocolVersion) {
    {
      // Never send while holding mu_: a client whose buffer is full would
      // stall every other connection's stats/trailer path.
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.protocol_errors;
      stats_.trailer_codes.add(static_cast<unsigned>(ExitCode::kImpossible));
    }
    (void)send_trailer(c.fd, ExitCode::kImpossible, store_->shutoff_active(),
                       0, 0);
    return false;
  }

  // Admission: block (not reject) until a slot frees — the unread socket is
  // the backpressure signal to this client, §5.5-style.
  if (!acquire_slot()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stats_.trailer_codes.add(
          static_cast<unsigned>(ExitCode::kServerShutdown));
    }
    (void)send_trailer(c.fd, ExitCode::kServerShutdown,
                       store_->shutoff_active(), 0, 0);
    return false;
  }
  struct SlotGuard {
    RequestService* s;
    ~SlotGuard() { s->release_slot(); }
  } slot_guard{this};

  const auto start = std::chrono::steady_clock::now();
  c.rc.reset();
  const bool has_deadline = open.deadline_ms > 0;
  const auto deadline = start + std::chrono::milliseconds(open.deadline_ms);
  if (has_deadline) c.rc.set_deadline(deadline);

  // Failpoint "service.encode"/"service.decode": `delay` burns wall budget
  // inside the admission slot (a slow conversion, without needing one);
  // any failing action is an internal server failure — error trailer,
  // close, exactly the §6.6 signal that sends the caller to another box.
  if (util::failpoint::armed()) {
    util::failpoint::Outcome o = util::failpoint::hit(
        is_encode ? "service.encode" : "service.decode");
    if (o.action == util::failpoint::Action::kDelay) {
      std::this_thread::sleep_for(o.delay);
    } else if (o.fired()) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        stats_.trailer_codes.add(
            static_cast<unsigned>(ExitCode::kImpossible));
      }
      (void)send_trailer(c.fd, ExitCode::kImpossible,
                         store_->shutoff_active(), 0, 0);
      return false;
    }
  }

  // §5.7 kill-switch: compression stops, decompression never does.
  if (is_encode && store_->shutoff_active()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.shutoff_refusals;
      stats_.trailer_codes.add(
          static_cast<unsigned>(ExitCode::kServerShutdown));
    }
    (void)send_trailer(c.fd, ExitCode::kServerShutdown, true, 0, 0);
    return false;
  }

  SocketSink sink(c.fd, &c.rc);
  EncodeOptions eopts = cfg_.encode_opts;
  eopts.run = &c.rc;
  DecodeOptions dopts = cfg_.decode_opts;
  dopts.run = &c.rc;
  // Cached-decode mode: the body is buffered and md5'd before any decode
  // work, so a hit can skip the session entirely (ServiceConfig rationale).
  const bool use_cache = !is_encode && decode_cache_ != nullptr;
  CaptureSink capture(sink,
                      use_cache ? decode_cache_->max_entry_bytes() : 0);
  std::vector<std::uint8_t> whole_body;
  // Exactly one of the two is used; both are cheap to construct.
  EncodeSession enc(eopts, &ctx_);
  DecodeSession dec(use_cache ? static_cast<ByteSink&>(capture)
                              : static_cast<ByteSink&>(sink),
                    dopts, &ctx_);

  // ---- body: DATA* then END ----
  // The whole body phase runs under an absolute wall budget: the request
  // deadline when one was given, and the idle window either way (a body
  // that cannot arrive within the idle window is indistinguishable from a
  // stalled one — and per-read inactivity alone is gameable by dribbling).
  auto body_deadline = start + cfg_.idle_read_timeout;
  if (has_deadline && deadline < body_deadline) body_deadline = deadline;
  std::uint64_t body_bytes = 0;
  ExitCode code = ExitCode::kSuccess;
  bool disconnected = false;
  for (;;) {
    std::uint8_t hdr_buf[kFrameHeaderSize];
    ReadStatus rs =
        read_exact_deadline(c.fd, hdr_buf, kFrameHeaderSize, body_deadline);
    if (rs == ReadStatus::kTimedOut) {
      // Deadline passed or the body stalled/dribbled past the idle window.
      code = ExitCode::kTimeout;
      break;
    }
    if (rs != ReadStatus::kOk) {
      disconnected = true;
      break;
    }
    FrameHeader fh;
    if (!parse_frame_header(hdr_buf, &fh)) {
      bool oversized = static_cast<FrameType>(hdr_buf[0]) == FrameType::kData;
      // The §6.2 memory-budget refusal: the declaration alone exceeds what
      // this request may allocate, so no buffer is ever sized for it.
      code = oversized ? (is_encode ? ExitCode::kMemLimitEncode
                                    : ExitCode::kMemLimitDecode)
                       : ExitCode::kImpossible;
      std::lock_guard<std::mutex> lk(mu_);
      if (oversized) {
        ++stats_.oversized_rejects;
      } else {
        ++stats_.protocol_errors;
      }
      break;
    }
    if (fh.type == FrameType::kEnd) {
      if (fh.length != 0) code = ExitCode::kImpossible;
      break;
    }
    if (fh.type != FrameType::kData) {
      code = ExitCode::kImpossible;
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.protocol_errors;
      break;
    }
    if (body_bytes + fh.length > cfg_.max_body_bytes) {
      code = is_encode ? ExitCode::kMemLimitEncode : ExitCode::kMemLimitDecode;
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.oversized_rejects;
      break;
    }
    std::vector<std::uint8_t>& buf = c.body[c.body_ix];
    c.body_ix ^= 1;
    buf.resize(fh.length);
    if (fh.length > 0) {
      rs = read_exact_deadline(c.fd, buf.data(), fh.length, body_deadline);
      if (rs == ReadStatus::kTimedOut) {
        code = ExitCode::kTimeout;
        break;
      }
      if (rs != ReadStatus::kOk) {
        disconnected = true;
        break;
      }
    }
    body_bytes += fh.length;
    if (use_cache) {
      // Deferred decode: accumulate (bounded by max_body_bytes, already
      // enforced above) and hash/decode after END.
      whole_body.insert(whole_body.end(), buf.begin(), buf.end());
    } else {
      code = is_encode ? enc.feed({buf.data(), buf.size()})
                       : dec.feed({buf.data(), buf.size()});
      if (code != ExitCode::kSuccess) break;
    }
  }

  if (disconnected) {
    // Mid-request hangup: cancel the session so nothing keeps converting
    // for a dead peer, record it, and close. No trailer — there is no one
    // left to read it.
    c.rc.request_cancel();
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.disconnects;
    stats_.trailer_codes.add(static_cast<unsigned>(ExitCode::kShortRead));
    return false;
  }

  // ---- finish + trailer ----
  if (code == ExitCode::kSuccess && use_cache) {
    std::string md5 =
        util::Md5::hex_digest({whole_body.data(), whole_body.size()});
    if (storage::DecodeCache::Value v = decode_cache_->get(md5)) {
      // Hit: the cached bytes ARE the decode (content-addressed by the
      // container md5 — identical containers decode identically), so the
      // session is never fed.
      sink.append({v->data(), v->size()});
    } else {
      code = dec.feed({whole_body.data(), whole_body.size()});
      if (code == ExitCode::kSuccess) {
        code = dec.finish();
      } else {
        (void)dec.finish();
      }
      if (code == ExitCode::kSuccess && !capture.overflow() &&
          !sink.broken()) {
        decode_cache_->put(
            md5, std::make_shared<const std::vector<std::uint8_t>>(
                     capture.take()));
      }
    }
  } else if (code == ExitCode::kSuccess) {
    code = is_encode ? enc.finish(sink) : dec.finish();
  } else if (!is_encode) {
    // The feed's sticky classification is the trailer code (probe/parse
    // rejections, kTimeout); finish() just finalizes the dead session.
    (void)dec.finish();
  }
  if (sink.broken()) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.disconnects;
    stats_.trailer_codes.add(static_cast<unsigned>(ExitCode::kShortRead));
    return false;
  }
  if (code == ExitCode::kTimeout &&
      cancel_all_.load(std::memory_order_acquire)) {
    code = ExitCode::kServerShutdown;  // server-initiated, not the budget
  }

  // Counters first, trailer second: a client acting on the trailer (tests
  // included) must never observe stats() that predate its own request.
  auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.bytes_in += body_bytes;
    stats_.bytes_out += sink.bytes();
    stats_.trailer_codes.add(static_cast<unsigned>(code));
    if (sink.saw_first()) {
      stats_.ttfb_s.add(
          std::chrono::duration<double>(sink.first_byte() - start).count());
    }
    stats_.request_s.add(std::chrono::duration<double>(now - start).count());
  }
  bool sent = send_trailer(c.fd, code, store_->shutoff_active(), body_bytes,
                           sink.bytes());
  if (!sent) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.disconnects;
  }
  // Keep the connection only after a clean success; every error trailer is
  // followed by a close so a confused client cannot desynchronize framing.
  return sent && code == ExitCode::kSuccess;
}

}  // namespace lepton::server
