#include "server/client.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "server/endpoint.h"

namespace lepton::server {
namespace {

using util::ExitCode;

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void set_nonblocking(int fd, bool on) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return;
  ::fcntl(fd, F_SETFL, on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK));
}

void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::span<const std::uint8_t> payload) {
  std::uint8_t hdr[kFrameHeaderSize];
  write_frame_header(hdr,
                     {type, 0, static_cast<std::uint32_t>(payload.size())});
  out.insert(out.end(), hdr, hdr + kFrameHeaderSize);
  out.insert(out.end(), payload.begin(), payload.end());
}

}  // namespace

LeptonClient LeptonClient::connect(const std::string& endpoint) {
  LeptonClient c;
  Endpoint ep;
  std::string err;
  if (!parse_endpoint(endpoint, &ep, &err)) {
    c.message_ = err;
    return c;
  }
  int fd = connect_endpoint(ep, &err);
  if (fd < 0) {
    c.message_ = err;
    return c;
  }
  c.fd_ = fd;
  return c;
}

LeptonClient::~LeptonClient() { close(); }

LeptonClient::LeptonClient(LeptonClient&& other) noexcept
    : fd_(other.fd_), message_(std::move(other.message_)) {
  other.fd_ = -1;
}

LeptonClient& LeptonClient::operator=(LeptonClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    message_ = std::move(other.message_);
    other.fd_ = -1;
  }
  return *this;
}

void LeptonClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

RequestResult LeptonClient::encode(std::span<const std::uint8_t> jpeg,
                                   const RequestOptions& opts) {
  return transact(FrameType::kEncode, jpeg, opts);
}

RequestResult LeptonClient::decode(std::span<const std::uint8_t> lep,
                                   const RequestOptions& opts) {
  return transact(FrameType::kDecode, lep, opts);
}

RequestResult LeptonClient::ping(const RequestOptions& opts) {
  return transact(FrameType::kPing, {}, opts);
}

RequestResult LeptonClient::shutoff(ShutoffOp op) {
  std::uint8_t b = static_cast<std::uint8_t>(op);
  return transact(FrameType::kShutoff, {&b, 1}, {});
}

RequestResult LeptonClient::stats() {
  return transact(FrameType::kStats, {}, {});
}

RequestResult LeptonClient::transact(FrameType open_type,
                                     std::span<const std::uint8_t> body,
                                     const RequestOptions& opts) {
  RequestResult r;
  if (fd_ < 0) {
    r.code = ExitCode::kShortRead;
    r.message = "not connected";
    return r;
  }

  // ---- assemble the outgoing frame stream ----
  // Clamp the slice size into the protocol's valid range: 0 would divide
  // by zero and then never advance; anything over kMaxDataFrame would be
  // rejected by the server at the declaration.
  const std::uint32_t slice =
      std::clamp<std::uint32_t>(opts.slice_bytes, 1, kMaxDataFrame);
  std::vector<std::uint8_t> out;
  if (open_type == FrameType::kEncode || open_type == FrameType::kDecode) {
    out.reserve(body.size() + body.size() / slice * 16 + 64);
    std::uint8_t open_buf[kOpenPayloadSize];
    OpenPayload open;
    open.deadline_ms = static_cast<std::uint32_t>(opts.deadline.count());
    write_open_payload(open_buf, open);
    append_frame(out, open_type, {open_buf, kOpenPayloadSize});
    std::size_t off = 0;
    while (off < body.size()) {
      std::size_t n = std::min<std::size_t>(slice, body.size() - off);
      append_frame(out, FrameType::kData, body.subspan(off, n));
      off += n;
    }
    append_frame(out, FrameType::kEnd, {});
  } else {
    // PING / SHUTOFF: the open frame carries the whole request.
    append_frame(out, open_type, body);
  }

  // ---- full-duplex pump: send while draining response frames ----
  const auto start = std::chrono::steady_clock::now();
  const auto hard_stop = start + opts.transport_timeout;
  set_nonblocking(fd_, true);

  std::size_t sent = 0;
  std::vector<std::uint8_t> rbuf;   // undissected response bytes
  std::size_t rpos = 0;             // consumed prefix of rbuf
  bool saw_first = false, got_trailer = false, dead = false;
  std::uint8_t chunk[64 << 10];

  while (!got_trailer && !dead) {
    // Dissect buffered response frames first.
    while (!got_trailer) {
      std::size_t avail = rbuf.size() - rpos;
      if (avail < kFrameHeaderSize) break;
      FrameHeader fh;
      if (!parse_frame_header(rbuf.data() + rpos, &fh)) {
        r.code = ExitCode::kImpossible;
        r.message = "malformed response frame";
        dead = true;
        break;
      }
      if (avail < kFrameHeaderSize + fh.length) break;
      const std::uint8_t* payload = rbuf.data() + rpos + kFrameHeaderSize;
      if (fh.type == FrameType::kData) {
        if (!saw_first && fh.length > 0) {
          saw_first = true;
          r.ttfb_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
        }
        r.data.insert(r.data.end(), payload, payload + fh.length);
      } else if (fh.type == FrameType::kTrailer) {
        TrailerPayload t;
        if (!parse_trailer_payload(payload, fh.length, &t)) {
          r.code = ExitCode::kImpossible;
          r.message = "malformed trailer";
          dead = true;
          break;
        }
        r.code = static_cast<ExitCode>(t.exit_code);
        r.server_bytes_in = t.bytes_in;
        r.server_bytes_out = t.bytes_out;
        r.shutoff_engaged = t.shutoff_engaged;
        r.transport_ok = true;
        got_trailer = true;
      } else {
        r.code = ExitCode::kImpossible;
        r.message = "unexpected response frame type";
        dead = true;
        break;
      }
      rpos += kFrameHeaderSize + fh.length;
    }
    if (got_trailer || dead) break;
    if (rpos > 0) {
      // Compact every pass: recv chunks rarely end on frame boundaries,
      // and without this the consumed prefix of a streamed response
      // accumulates for the whole request (~2x the body in memory).
      rbuf.erase(rbuf.begin(),
                 rbuf.begin() + static_cast<std::ptrdiff_t>(rpos));
      rpos = 0;
    }

    auto now = std::chrono::steady_clock::now();
    if (now >= hard_stop) {
      r.code = ExitCode::kTimeout;
      r.message = "transport timeout";
      dead = true;
      break;
    }
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    if (sent < out.size()) pfd.events |= POLLOUT;
    int timeout_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(hard_stop - now)
            .count() +
        1);
    int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      r.code = ExitCode::kShortRead;
      r.message = errno_message("poll");
      dead = true;
      break;
    }
    if (pr == 0) continue;  // loop re-checks the hard stop

    if ((pfd.revents & POLLOUT) != 0 && sent < out.size()) {
      ssize_t w = ::send(fd_, out.data() + sent, out.size() - sent,
                         MSG_NOSIGNAL);
      if (w < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
          errno != EINTR) {
        // The server may legally answer-and-close before reading our whole
        // body (error trailer, §"Request lifecycle"); keep draining input
        // and let the read side decide the outcome.
        sent = out.size();
      } else if (w > 0) {
        sent += static_cast<std::size_t>(w);
      }
    }
    if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n > 0) {
        rbuf.insert(rbuf.end(), chunk, chunk + n);
      } else if (n == 0 ||
                 (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                  errno != EINTR)) {
        // A hard reset (TCP RST — the server died or the network did) is a
        // transport failure exactly like a silent close: kShortRead with
        // transport_ok == false, so the fleet requeue path retries it on
        // another server (§6.6) instead of misreading it as a protocol
        // violation of this one.
        r.code = ExitCode::kShortRead;
        r.message = n == 0 ? "connection closed before trailer"
                           : (errno == ECONNRESET
                                  ? "connection reset before trailer"
                                  : errno_message("recv"));
        dead = true;
      }
    }
  }

  r.total_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  set_nonblocking(fd_, false);
  // The server closes after every non-success trailer (PROTOCOL.md); match
  // it so the next request reconnects instead of desynchronizing.
  if (!r.transport_ok || r.code != ExitCode::kSuccess) close();
  return r;
}

}  // namespace lepton::server
