#include "server/endpoint.h"

#include <arpa/inet.h>
#include <dirent.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "util/failpoint.h"

namespace lepton::server {
namespace {

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void set_tcp_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

// Splits "host:port" with optional [brackets] around a v6 host. The port is
// everything after the *last* colon, so bare v6 addresses must be bracketed.
bool split_host_port(const std::string& s, std::string* host,
                     std::string* port, std::string* err) {
  if (!s.empty() && s.front() == '[') {
    auto close = s.find(']');
    if (close == std::string::npos || close + 1 >= s.size() ||
        s[close + 1] != ':') {
      if (err != nullptr) *err = "tcp endpoint: expected [host]:port";
      return false;
    }
    *host = s.substr(1, close - 1);
    *port = s.substr(close + 2);
  } else {
    auto colon = s.rfind(':');
    if (colon == std::string::npos) {
      if (err != nullptr) *err = "tcp endpoint: expected host:port";
      return false;
    }
    *host = s.substr(0, colon);
    *port = s.substr(colon + 1);
  }
  if (host->empty() || port->empty()) {
    if (err != nullptr) *err = "tcp endpoint: empty host or port";
    return false;
  }
  return true;
}

// Canonical "tcp:ip:port" of a bound/connected local socket address.
std::string format_sockaddr(const sockaddr* sa) {
  char ip[INET6_ADDRSTRLEN] = {0};
  unsigned port = 0;
  if (sa->sa_family == AF_INET) {
    const auto* in4 = reinterpret_cast<const sockaddr_in*>(sa);
    ::inet_ntop(AF_INET, &in4->sin_addr, ip, sizeof ip);
    port = ntohs(in4->sin_port);
    return "tcp:" + std::string(ip) + ":" + std::to_string(port);
  }
  if (sa->sa_family == AF_INET6) {
    const auto* in6 = reinterpret_cast<const sockaddr_in6*>(sa);
    ::inet_ntop(AF_INET6, &in6->sin6_addr, ip, sizeof ip);
    port = ntohs(in6->sin6_port);
    return "tcp:[" + std::string(ip) + "]:" + std::to_string(port);
  }
  return "tcp:?";
}

bool fill_unix_addr(const std::string& path, sockaddr_un* addr,
                    std::string* err) {
  *addr = {};
  addr->sun_family = AF_UNIX;
  if (path.size() >= sizeof addr->sun_path) {
    if (err != nullptr) *err = "socket path too long";
    errno = ENAMETOOLONG;
    return false;
  }
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

bool parse_endpoint(const std::string& s, Endpoint* ep, std::string* err) {
  *ep = {};
  if (s.empty()) {
    if (err != nullptr) *err = "empty endpoint";
    return false;
  }
  if (s.rfind("unix:", 0) == 0) {
    ep->kind = Endpoint::Kind::kUnix;
    ep->path = s.substr(5);
    if (ep->path.empty()) {
      if (err != nullptr) *err = "unix endpoint: empty path";
      return false;
    }
    return true;
  }
  if (s.rfind("tcp:", 0) == 0) {
    ep->kind = Endpoint::Kind::kTcp;
    return split_host_port(s.substr(4), &ep->host, &ep->port, err);
  }
  // No scheme: a filesystem path (the pre-TCP config shape keeps working).
  ep->kind = Endpoint::Kind::kUnix;
  ep->path = s;
  return true;
}

std::string endpoint_to_string(const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::kUnix) return "unix:" + ep.path;
  if (ep.host.find(':') != std::string::npos) {
    return "tcp:[" + ep.host + "]:" + ep.port;
  }
  return "tcp:" + ep.host + ":" + ep.port;
}

int listen_endpoint(const Endpoint& ep, std::string* err, std::string* bound,
                    int backlog) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      if (err != nullptr) *err = errno_message("socket");
      return -1;
    }
    sockaddr_un addr;
    if (!fill_unix_addr(ep.path, &addr, err)) {
      ::close(fd);
      return -1;
    }
    ::unlink(ep.path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
        ::listen(fd, backlog) < 0) {
      if (err != nullptr) *err = errno_message("bind/listen");
      int saved = errno;
      ::close(fd);
      errno = saved;
      return -1;
    }
    if (bound != nullptr) *bound = "unix:" + ep.path;
    return fd;
  }

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  int gai = ::getaddrinfo(ep.host.c_str(), ep.port.c_str(), &hints, &res);
  if (gai != 0) {
    if (err != nullptr) {
      *err = std::string("getaddrinfo: ") + ::gai_strerror(gai);
    }
    return -1;
  }
  int fd = -1;
  std::string last_err = "no usable address";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) {
      last_err = errno_message("socket");
      continue;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (ai->ai_family == AF_INET6) {
      // Keep "[::]" and "0.0.0.0" separate sockets so binding both never
      // conflicts and the bound-address string means what it says.
      ::setsockopt(fd, IPPROTO_IPV6, IPV6_V6ONLY, &one, sizeof one);
    }
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, backlog) == 0) {
      break;
    }
    last_err = errno_message("bind/listen");
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    if (err != nullptr) *err = last_err;
    return -1;
  }
  if (bound != nullptr) {
    // Report the kernel's view: for port 0 this carries the real port.
    sockaddr_storage ss{};
    socklen_t slen = sizeof ss;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&ss), &slen) == 0) {
      *bound = format_sockaddr(reinterpret_cast<sockaddr*>(&ss));
    } else {
      *bound = endpoint_to_string(ep);
    }
  }
  return fd;
}

int connect_endpoint(const Endpoint& ep, std::string* err) {
  // Failpoint "fleet.connect": a refused/unreachable endpoint without
  // needing a dead machine — the breaker and requeue paths train on this.
  if (util::failpoint::armed()) {
    using util::failpoint::Action;
    util::failpoint::Outcome o = util::failpoint::hit("fleet.connect");
    if (o.action == Action::kDelay) {
      std::this_thread::sleep_for(o.delay);
    } else if (o.fired()) {
      errno = o.action == Action::kErr ? o.err : ECONNREFUSED;
      if (err != nullptr) *err = errno_message("connect (failpoint)");
      return -1;
    }
  }
  if (ep.kind == Endpoint::Kind::kUnix) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      if (err != nullptr) *err = errno_message("socket");
      return -1;
    }
    sockaddr_un addr;
    if (!fill_unix_addr(ep.path, &addr, err)) {
      ::close(fd);
      return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      if (err != nullptr) *err = errno_message("connect");
      int saved = errno;
      ::close(fd);
      errno = saved;
      return -1;
    }
    return fd;
  }

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  int gai = ::getaddrinfo(ep.host.c_str(), ep.port.c_str(), &hints, &res);
  if (gai != 0) {
    if (err != nullptr) {
      *err = std::string("getaddrinfo: ") + ::gai_strerror(gai);
    }
    return -1;
  }
  int fd = -1;
  std::string last_err = "no usable address";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) {
      last_err = errno_message("socket");
      continue;
    }
    int rc;
    do {
      rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      set_tcp_nodelay(fd);
      break;
    }
    last_err = errno_message("connect");
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0 && err != nullptr) *err = last_err;
  return fd;
}

void tune_accepted_socket(int fd) {
  sockaddr_storage ss{};
  socklen_t slen = sizeof ss;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&ss), &slen) == 0 &&
      (ss.ss_family == AF_INET || ss.ss_family == AF_INET6)) {
    set_tcp_nodelay(fd);
  }
}

void unlink_endpoint(const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::kUnix) ::unlink(ep.path.c_str());
}

int count_open_fds() {
  DIR* d = ::opendir("/proc/self/fd");
  if (d == nullptr) return -1;
  int n = 0;
  while (::readdir(d) != nullptr) ++n;
  ::closedir(d);
  return n - 2 - 1;  // ".", "..", and the directory's own fd
}

}  // namespace lepton::server
