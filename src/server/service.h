// Transport-independent request service for the Lepton protocol (§5, §6.6).
//
// PR 5's LeptonServer fused two things: a *connection plane* (accept
// thread, one thread per connection) and the *request semantics* (frame
// switch, admission bound, deadlines, body wall budget, kill-switch,
// stats, trailer discipline). The daemon's event-driven plane
// (leptond/event_server.h) needs the second half verbatim — the PR 5
// hostile-client suite is the contract — so it lives here, once.
// RequestService knows nothing about how connections are accepted,
// scheduled, or torn down; a plane hands it a connection fd plus the
// request's open frame and gets back "keep this connection or close it".
//
// The split is the reason cross-transport byte-identity holds by
// construction: AF_UNIX thread-per-connection, TCP thread-per-connection
// and TCP epoll all execute the same serve_frame.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "lepton/codec.h"
#include "lepton/run_control.h"
#include "lepton/store.h"
#include "server/protocol.h"
#include "storage/decode_cache.h"
#include "util/stats.h"

namespace lepton {
class CodecContext;
}

namespace lepton::server {

struct ServiceConfig {
  // Admission bound: at most this many requests hold sessions at once.
  // A request that arrives while the service is full is parked (its caller
  // blocks in serve_frame), never rejected — backpressure by parked reads
  // (docs/PROTOCOL.md §"Flow control").
  int max_in_flight = 4;

  // Total request-body cap (sum of DATA payloads).
  std::uint64_t max_body_bytes = 6u << 20;

  // Idle window between requests, absolute wall budget for one request
  // body, and the send timeout on responses (server.h documents the
  // three-in-one-knob rationale).
  std::chrono::milliseconds idle_read_timeout{30000};

  // Kill-switch authority (§5.7); when null the service owns a private
  // TransparentStore so the switch still works per-process.
  TransparentStore* store = nullptr;

  EncodeOptions encode_opts;
  DecodeOptions decode_opts;

  // Decoded-output LRU for the DECODE path (storage/decode_cache.h), byte
  // budget; 0 (default) disables it. When enabled the request body is
  // buffered (already bounded by max_body_bytes) and md5'd before any
  // decode work: a hit streams the cached original and skips the decode
  // entirely; a miss decodes once and caches the output. The trade is
  // explicit — misses lose the streamed-decode TTFB since decoding starts
  // at END, wins come from Zipf-skewed read traffic (ISSUE 10). Counters
  // surface as decode_cache_* STATS rows (leptonctl stats shows them).
  std::size_t decode_cache_bytes = 0;

  // Plane-specific rows appended to the STATS response (worker counts,
  // open-connection counts — facts only the connection plane knows). Must
  // return "key value\n" lines; called outside the stats mutex.
  std::function<std::string()> extra_stats;
};

// A point-in-time copy of the service's counters (taken under the stats
// mutex; cheap enough for tests to poll).
struct ServerStats {
  std::uint64_t connections = 0;         // accepted
  std::uint64_t requests = 0;            // open frames admitted
  std::uint64_t bytes_in = 0;            // request body bytes consumed
  std::uint64_t bytes_out = 0;           // response DATA bytes emitted
  std::uint64_t protocol_errors = 0;     // malformed frames / bad version
  std::uint64_t oversized_rejects = 0;   // declared length over cap
  std::uint64_t disconnects = 0;         // connection died mid-request
  std::uint64_t shutoff_refusals = 0;    // ENCODE refused by kill-switch
  std::uint64_t accept_retries = 0;      // accept() backoffs (EMFILE/ENFILE)
  int in_flight = 0;                     // requests holding slots now
  int in_flight_peak = 0;
  // §6.2 classification of every request/connection outcome: the code of
  // each trailer sent, plus kShortRead for requests whose peer vanished
  // before a trailer could be delivered (those also count in disconnects).
  util::CodeTally trailer_codes;
  // Bounded reservoirs, not exact sample sets: a daemon must not grow
  // per-request stats (or the stats() snapshot copy) without limit.
  util::ReservoirPercentiles ttfb_s;     // request admit -> first DATA out
  util::ReservoirPercentiles request_s;  // request admit -> trailer sent
};

// Per-connection request state. rc lives here (not in the request scope)
// so a plane's shutdown_now can trip an in-flight request's control from
// another thread while the serving thread is inside feed()/finish().
struct ServiceConn {
  int fd = -1;
  RunControl rc;
  // Alternating body buffers: EncodeSession::feed borrows its first slice
  // until the *next* feed returns (session.h lifetime contract), so the
  // frame we just fed must stay intact while the next one is read.
  std::vector<std::uint8_t> body[2];
  int body_ix = 0;
};

class RequestService {
 public:
  explicit RequestService(ServiceConfig cfg, CodecContext* ctx = nullptr);

  RequestService(const RequestService&) = delete;
  RequestService& operator=(const RequestService&) = delete;

  TransparentStore* store() { return store_; }
  const ServiceConfig& config() const { return cfg_; }
  // Null unless cfg.decode_cache_bytes > 0.
  storage::DecodeCache* decode_cache() { return decode_cache_.get(); }

  // Installs the owning plane's STATS rows (set once, before the plane
  // starts serving — the callback is invoked from request threads).
  void set_extra_stats(std::function<std::string()> fn) {
    cfg_.extra_stats = std::move(fn);
  }

  // ---- lifecycle (driven by the owning plane) ----
  // Clears drain/cancel state; call when the plane (re)starts.
  void reset();
  // Starts the graceful drain: slot waiters wake and are answered
  // kServerShutdown; no new request is admitted.
  void begin_drain();
  // Blocks until no request holds an admission slot.
  void wait_idle();
  // Hard-stop posture: in-flight requests that trip their deadline from
  // here on trail as kServerShutdown (server-initiated), not kTimeout.
  void cancel_all();
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  // ---- the one request path both planes share ----
  // Serves one request whose 8-byte open-frame header `hdr` the plane has
  // already read from c.fd. `payload` is the control payload when the
  // plane pre-read it (event plane buffers header+payload before
  // dispatching); nullptr means "read it from c.fd" (thread plane, which
  // leaves the idle recv timeout armed). The request body, when the frame
  // opens one, is always read from c.fd here, under the PR 5 wall budget.
  // Returns true iff the connection may carry another request.
  bool serve_frame(ServiceConn& c, const std::uint8_t hdr[kFrameHeaderSize],
                   const std::uint8_t* payload);

  // ---- plane-owned events recorded into the shared counters ----
  void record_connection();
  // A frame died mid-header (the wire-level short read).
  void record_short_read();
  // The plane's accept loop backed off on EMFILE/ENFILE and retried.
  void record_accept_retry();

  ServerStats stats() const;

  // The STATS response body: "key value" text lines of a stats snapshot
  // plus the plane's extra_stats rows. Exposed for tests and leptonctl.
  std::string stats_text();

 private:
  bool serve_request(ServiceConn& c, std::uint8_t open_type,
                     const std::uint8_t* open_payload, std::uint32_t open_len);
  bool serve_stats(int fd);
  bool acquire_slot();
  void release_slot();

  ServiceConfig cfg_;
  CodecContext& ctx_;
  std::unique_ptr<TransparentStore> own_store_;
  TransparentStore* store_ = nullptr;
  std::unique_ptr<storage::DecodeCache> decode_cache_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> cancel_all_{false};

  mutable std::mutex mu_;
  std::condition_variable slot_cv_;  // admission + drain waits
  ServerStats stats_;
};

}  // namespace lepton::server
