// Listener/connector abstraction shared by every transport (§6 deployment).
//
// The paper's fleet serves blockservers over local sockets and operators
// over the network; the framing (protocol.h) is transport-agnostic, so the
// only per-transport code in the system is here: parsing an endpoint
// string, opening a listening socket for it, and connecting to one. Both
// connection planes (server.h thread-per-connection, leptond/event_server.h
// event-driven) and the client call these helpers — adding a transport
// never touches frame or request logic.
//
// Endpoint strings:
//   unix:/run/lepton.sock     AF_UNIX stream socket at that path
//   /run/lepton.sock          ditto (anything without a scheme is a path)
//   tcp:127.0.0.1:2929        TCP over IPv4
//   tcp:[::1]:2929            TCP over IPv6 (host bracketed)
//   tcp:host:0                TCP on an ephemeral port; the *bound* address
//                             (with the real port) comes back from listen
#pragma once

#include <string>

namespace lepton::server {

struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  // kUnix: filesystem path
  std::string host;  // kTcp: numeric address or name
  std::string port;  // kTcp: numeric port or service name
};

// Parses an endpoint string. False (with *err set) on an empty string, an
// empty unix path, or a tcp endpoint missing its host or port.
bool parse_endpoint(const std::string& s, Endpoint* ep, std::string* err);

// Formats back to the canonical string form ("unix:" prefix included).
std::string endpoint_to_string(const Endpoint& ep);

// Opens a listening socket: AF_UNIX (existing socket file unlinked first)
// or TCP (SO_REUSEADDR, IPv4/IPv6 via getaddrinfo, IPV6_V6ONLY so "[::]"
// and "0.0.0.0" stay distinct). Returns the fd, or -1 with *err set.
// *bound (optional) receives the canonical bound address — for "tcp:...:0"
// it carries the kernel-chosen port, which is what tests and multi-daemon
// fleets on one host connect to.
int listen_endpoint(const Endpoint& ep, std::string* err,
                    std::string* bound = nullptr, int backlog = 256);

// Connects a blocking stream socket to the endpoint (TCP_NODELAY set on
// TCP: requests are latency-bound frames, not bulk flows that want Nagle).
// Returns the fd, or -1 with *err set.
int connect_endpoint(const Endpoint& ep, std::string* err);

// Post-accept tuning for a connection fd: TCP_NODELAY when the socket is
// TCP; a no-op on AF_UNIX. Safe to call on any stream fd.
void tune_accepted_socket(int fd);

// Removes the socket file of an AF_UNIX endpoint (no-op for TCP) — the
// listener's teardown counterpart to listen_endpoint.
void unlink_endpoint(const Endpoint& ep);

// Open descriptors of this process (walks /proc/self/fd) — the operator
// metric behind the STATS frame's open_fds row; -1 when unreadable.
int count_open_fds();

}  // namespace lepton::server
