// Wire protocol of the Lepton compression server (§5, §6.6).
//
// The paper's deployment is not a library but a fleet of daemons: a
// blockserver hands a compression server the bytes of a chunk over a local
// socket, the server streams converted bytes back, and a trailer carries
// the §6.2 exit code so the caller can admit, retry on a second server, or
// fall back to Deflate. This header is the single definition of that wire
// format — server.cpp, client.cpp, the fleet requeue path and the hostile-
// client tests all compile against it, and docs/PROTOCOL.md documents it
// byte for byte (keep them in lockstep).
//
// Every message is a *frame*: an 8-byte little-endian header followed by
// `length` payload bytes. A request is an open frame (ENCODE/DECODE with a
// deadline, or PING/SHUTOFF), a streamed body (DATA* then END; PING and
// SHUTOFF have no body), and a streamed response (DATA* then one TRAILER
// with the exit code and byte counts). Declared lengths are validated
// against hard caps *before* any buffer is sized, so a hostile 4-GiB
// declaration costs the server an 8-byte read and an error trailer, never
// an allocation.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

namespace lepton::server {

// Protocol version carried in every request-open frame. Bump on any change
// to the frame layouts below; a server answers a mismatched version with a
// kImpossible trailer (docs/PROTOCOL.md §"Versioning").
inline constexpr std::uint8_t kProtocolVersion = 1;

enum class FrameType : std::uint8_t {
  // Request-open frames (client -> server).
  kEncode = 0x01,   // body = JPEG file, response body = Lepton container
  kDecode = 0x02,   // body = Lepton container, response body = JPEG file
  kPing = 0x03,     // no body; immediate trailer (liveness + shutoff state)
  kShutoff = 0x04,  // no body; 1-byte payload operates the kill-switch
  kStats = 0x05,    // no body; response = DATA (text key/value lines) +
                    // trailer. Additive to version 1: a server that does
                    // not speak it answers kImpossible and closes, which is
                    // the protocol's defined reaction to unknown types —
                    // clients probe, they do not negotiate.
  // Stream frames (both directions).
  kData = 0x10,     // a body slice (request input or response output)
  kEnd = 0x11,      // terminates a request body (no payload)
  kTrailer = 0x12,  // terminates a response (TrailerPayload)
};

// ---- frame header ----------------------------------------------------------
//
//   offset 0  u8   type        (FrameType)
//   offset 1  u8   flags       (must be 0 in version 1)
//   offset 2  u16  reserved    (must be 0; little-endian)
//   offset 4  u32  length      (payload bytes that follow; little-endian)

struct FrameHeader {
  FrameType type = FrameType::kData;
  std::uint8_t flags = 0;
  std::uint32_t length = 0;
};

inline constexpr std::size_t kFrameHeaderSize = 8;

// Hard caps, enforced before allocation (docs/PROTOCOL.md §"Limits").
// kMaxDataFrame bounds one DATA slice — bodies of any size stream as
// multiple frames; a server additionally bounds the *total* body by its
// configured request cap. Control frames are tiny by construction.
inline constexpr std::uint32_t kMaxDataFrame = 8u << 20;  // 8 MiB
inline constexpr std::uint32_t kMaxControlFrame = 64;

inline void put_u16le(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
inline void put_u32le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}
inline void put_u64le(std::uint8_t* p, std::uint64_t v) {
  put_u32le(p, static_cast<std::uint32_t>(v));
  put_u32le(p + 4, static_cast<std::uint32_t>(v >> 32));
}
inline std::uint16_t get_u16le(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
inline std::uint32_t get_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
inline std::uint64_t get_u64le(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32le(p)) |
         (static_cast<std::uint64_t>(get_u32le(p + 4)) << 32);
}

inline void write_frame_header(std::uint8_t out[kFrameHeaderSize],
                               const FrameHeader& h) {
  out[0] = static_cast<std::uint8_t>(h.type);
  out[1] = h.flags;
  put_u16le(out + 2, 0);
  put_u32le(out + 4, h.length);
}

// Parses an 8-byte header. Returns false on a frame no version-1 peer may
// send: unknown type, nonzero flags/reserved, or a declared length over the
// per-type cap — the pre-allocation rejection point.
inline bool parse_frame_header(const std::uint8_t in[kFrameHeaderSize],
                               FrameHeader* h) {
  h->type = static_cast<FrameType>(in[0]);
  h->flags = in[1];
  h->length = get_u32le(in + 4);
  if (h->flags != 0 || get_u16le(in + 2) != 0) return false;
  switch (h->type) {
    case FrameType::kEncode:
    case FrameType::kDecode:
    case FrameType::kPing:
    case FrameType::kShutoff:
    case FrameType::kStats:
    case FrameType::kEnd:
    case FrameType::kTrailer:
      return h->length <= kMaxControlFrame;
    case FrameType::kData:
      return h->length <= kMaxDataFrame;
  }
  return false;
}

// ---- request-open payload (ENCODE / DECODE) --------------------------------
//
//   offset 0  u8   version     (kProtocolVersion)
//   offset 1  u8[3] reserved   (0)
//   offset 4  u32  deadline_ms (0 = no deadline; server arms RunControl)

struct OpenPayload {
  std::uint8_t version = kProtocolVersion;
  std::uint32_t deadline_ms = 0;
};

inline constexpr std::size_t kOpenPayloadSize = 8;

inline void write_open_payload(std::uint8_t out[kOpenPayloadSize],
                               const OpenPayload& p) {
  std::memset(out, 0, kOpenPayloadSize);
  out[0] = p.version;
  put_u32le(out + 4, p.deadline_ms);
}

inline bool parse_open_payload(const std::uint8_t* in, std::size_t len,
                               OpenPayload* p) {
  if (len != kOpenPayloadSize) return false;
  p->version = in[0];
  p->deadline_ms = get_u32le(in + 4);
  return true;
}

// ---- shutoff payload -------------------------------------------------------
//
// One byte. The response trailer's bit0 flag reports the state *after* the
// operation; kQuery forces a fresh stat of the shutoff file, bypassing the
// store's 250 ms TTL cache (store.h), so operators see the switch flip
// immediately instead of one TTL late.

enum class ShutoffOp : std::uint8_t {
  kQuery = 0,   // forced re-check; no state change
  kEngage = 1,  // set the process-local kill-switch
  kClear = 2,   // clear the process-local kill-switch (the file, if
                // configured, still forces shutoff until removed)
};

// ---- trailer payload -------------------------------------------------------
//
//   offset 0   u8   exit_code   (util::ExitCode, §6.2)
//   offset 1   u8   flags       (bit0: shutoff engaged at trailer time)
//   offset 2   u16  reserved    (0)
//   offset 4   u64  bytes_in    (request body bytes the server consumed)
//   offset 12  u64  bytes_out   (response DATA payload bytes emitted)
//
// The response body is authoritative only when exit_code == 0 (kSuccess):
// a decode that trips its deadline may have already streamed a partial
// prefix, and the trailer is what voids it.

struct TrailerPayload {
  std::uint8_t exit_code = 0;
  bool shutoff_engaged = false;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

inline constexpr std::size_t kTrailerPayloadSize = 20;
inline constexpr std::uint8_t kTrailerFlagShutoff = 0x01;

inline void write_trailer_payload(std::uint8_t out[kTrailerPayloadSize],
                                  const TrailerPayload& t) {
  out[0] = t.exit_code;
  out[1] = t.shutoff_engaged ? kTrailerFlagShutoff : 0;
  put_u16le(out + 2, 0);
  put_u64le(out + 4, t.bytes_in);
  put_u64le(out + 12, t.bytes_out);
}

inline bool parse_trailer_payload(const std::uint8_t* in, std::size_t len,
                                  TrailerPayload* t) {
  if (len != kTrailerPayloadSize) return false;
  t->exit_code = in[0];
  t->shutoff_engaged = (in[1] & kTrailerFlagShutoff) != 0;
  t->bytes_in = get_u64le(in + 4);
  t->bytes_out = get_u64le(in + 12);
  return true;
}

}  // namespace lepton::server
