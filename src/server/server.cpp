#include "server/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "server/sockio.h"

namespace lepton::server {
namespace {

ServiceConfig to_service_config(const ServerConfig& cfg) {
  ServiceConfig s;
  s.max_in_flight = cfg.max_in_flight;
  s.max_body_bytes = cfg.max_body_bytes;
  s.idle_read_timeout = cfg.idle_read_timeout;
  s.store = cfg.store;
  s.encode_opts = cfg.encode_opts;
  s.decode_opts = cfg.decode_opts;
  s.decode_cache_bytes = cfg.decode_cache_bytes;
  return s;
}

}  // namespace

LeptonServer::LeptonServer(ServerConfig cfg, CodecContext* ctx)
    : cfg_(std::move(cfg)), service_(to_service_config(cfg_), ctx) {
  service_.set_extra_stats([this] {
    std::size_t threads;
    {
      std::lock_guard<std::mutex> lk(mu_);
      threads = conn_threads_.size();
    }
    std::string t = "plane thread\n";
    t += "connection_threads " + std::to_string(threads) + "\n";
    t += "open_fds " + std::to_string(count_open_fds()) + "\n";
    return t;
  });
}

LeptonServer::~LeptonServer() { stop(); }

bool LeptonServer::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  const std::string& spec =
      !cfg_.listen.empty() ? cfg_.listen : cfg_.socket_path;
  std::string err;
  if (!parse_endpoint(spec, &endpoint_, &err)) {
    errno = EINVAL;
    return false;
  }
  listen_fd_ = listen_endpoint(endpoint_, &err, &bound_, /*backlog=*/256);
  if (listen_fd_ < 0) return false;
  service_.reset();
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&LeptonServer::accept_loop, this);
  return true;
}

void LeptonServer::accept_loop() {
  auto backoff = std::chrono::milliseconds(10);
  for (;;) {
    int fd = -1;
    bool injected = false;
    // Failpoint "accept": descriptor exhaustion on demand — the EMFILE
    // backoff below is recovery code that otherwise needs a full fd table
    // to run.
    if (util::failpoint::armed()) {
      util::failpoint::Outcome o = util::failpoint::hit("accept");
      if (o.action == util::failpoint::Action::kDelay) {
        std::this_thread::sleep_for(o.delay);
      } else if (o.fired()) {
        injected = true;
        errno = o.action == util::failpoint::Action::kErr ? o.err : EMFILE;
      }
    }
    if (!injected) fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Descriptor/buffer exhaustion is a load condition, not a listener
        // failure: the pending connection stays in the kernel backlog, so
        // back off (slots free as requests finish) and retry instead of
        // silently ending the accept thread — which would leave a healthy-
        // looking daemon that never answers again.
        service_.record_accept_retry();
        if (stopping_.load(std::memory_order_acquire)) return;
        std::this_thread::sleep_for(backoff);
        backoff = std::min(backoff * 2, std::chrono::milliseconds(500));
        continue;
      }
      return;  // listener closed by stop()
    }
    backoff = std::chrono::milliseconds(10);
    tune_accepted_socket(fd);
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    reap_finished_locked();
    service_.record_connection();
    conn_threads_.emplace_back(&LeptonServer::serve_connection, this, fd);
  }
}

void LeptonServer::reap_finished_locked() {
  for (std::thread::id id : finished_conn_ids_) {
    for (auto it = conn_threads_.begin(); it != conn_threads_.end(); ++it) {
      if (it->get_id() == id) {
        // The thread announced completion just before returning; join()
        // waits out only its final few instructions.
        it->join();
        conn_threads_.erase(it);
        break;
      }
    }
  }
  finished_conn_ids_.clear();
}

void LeptonServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_.store(true, std::memory_order_release);
  }
  service_.begin_drain();
  // Wake the accept loop.
  ::shutdown(listen_fd_, SHUT_RDWR);
  // Graceful drain: in-flight requests run to their trailer. (shutdown_now
  // trips their controls first, so this converges quickly there too.)
  service_.wait_idle();
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Unblock connections parked in a header read.
    for (ServiceConn* c : live_conns_) ::shutdown(c->fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(mu_);
    threads.swap(conn_threads_);
  }
  for (auto& t : threads) t.join();
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  unlink_endpoint(endpoint_);
  running_.store(false, std::memory_order_release);
}

void LeptonServer::shutdown_now() {
  if (!running_.load(std::memory_order_acquire)) return;
  service_.cancel_all();
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Trip every in-flight session; workers notice at MCU-row granularity.
    for (ServiceConn* c : live_conns_) c->rc.request_cancel();
    // And unblock body reads so stalled requests die now, not at the idle
    // timeout.
    for (ServiceConn* c : live_conns_) ::shutdown(c->fd, SHUT_RDWR);
  }
  stop();
}

void LeptonServer::serve_connection(int fd) {
  ServiceConn conn;
  conn.fd = fd;
  set_send_timeout(fd, cfg_.idle_read_timeout);
  {
    std::lock_guard<std::mutex> lk(mu_);
    live_conns_.push_back(&conn);
  }

  std::uint8_t hdr_buf[kFrameHeaderSize];
  bool keep = true;
  while (keep && !stopping_.load(std::memory_order_acquire)) {
    set_recv_timeout(fd, cfg_.idle_read_timeout);
    ReadStatus rs = read_exact(fd, hdr_buf, kFrameHeaderSize);
    if (rs == ReadStatus::kEof) break;  // clean close between requests
    if (rs != ReadStatus::kOk) {
      // A frame died mid-header: the wire-level short read.
      if (rs == ReadStatus::kTruncated) service_.record_short_read();
      break;
    }
    keep = service_.serve_frame(conn, hdr_buf, nullptr);
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    live_conns_.erase(
        std::find(live_conns_.begin(), live_conns_.end(), &conn));
    finished_conn_ids_.push_back(std::this_thread::get_id());
  }
  ::close(fd);
}

}  // namespace lepton::server
