#include "server/server.h"

#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "lepton/context.h"
#include "lepton/session.h"
#include "server/protocol.h"

namespace lepton::server {
namespace {

using util::ExitCode;

// ---- blocking socket helpers ----------------------------------------------

bool send_all(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

timeval to_timeval(std::chrono::milliseconds ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms.count() % 1000) * 1000);
  return tv;
}

void set_recv_timeout(int fd, std::chrono::milliseconds ms) {
  timeval tv = to_timeval(ms);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

// Response writes must not block forever on a client that stops reading:
// with a send timeout, a stalled ::sendmsg fails with EAGAIN, the sink
// marks itself broken, and the request thread unwinds through the
// disconnect path — releasing its admission slot instead of wedging
// stop()/drain. The slow consumer pays with its connection.
void set_send_timeout(int fd, std::chrono::milliseconds ms) {
  timeval tv = to_timeval(ms);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

enum class ReadStatus { kOk, kEof, kTruncated, kTimedOut, kError };

// Reads exactly `n` bytes. kEof only when the peer closed cleanly before
// the first byte; a close partway through is kTruncated (the §6.2 short
// read, at the frame layer).
ReadStatus read_exact(int fd, std::uint8_t* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r == 0) return got == 0 ? ReadStatus::kEof : ReadStatus::kTruncated;
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return ReadStatus::kTimedOut;
      return ReadStatus::kError;
    }
    got += static_cast<std::size_t>(r);
  }
  return ReadStatus::kOk;
}

// Deadline-bounded read_exact: re-arms SO_RCVTIMEO with the *remaining*
// wall budget before every recv. Plain SO_RCVTIMEO alone bounds only
// inactivity — a hostile client dribbling one byte per interval restarts
// the idle window forever while holding an admission slot (slow loris);
// the absolute deadline is what actually bounds the body phase.
ReadStatus read_exact_deadline(int fd, std::uint8_t* out, std::size_t n,
                               std::chrono::steady_clock::time_point deadline) {
  std::size_t got = 0;
  while (got < n) {
    auto remain = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remain.count() <= 0) return ReadStatus::kTimedOut;
    set_recv_timeout(fd, remain + std::chrono::milliseconds(1));
    ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r == 0) return got == 0 ? ReadStatus::kEof : ReadStatus::kTruncated;
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return ReadStatus::kTimedOut;
      return ReadStatus::kError;
    }
    got += static_cast<std::size_t>(r);
  }
  return ReadStatus::kOk;
}

// Streams session output as DATA frames. A send failure marks the sink
// broken and cancels the request's RunControl, so the session aborts at its
// next MCU-row poll instead of converting for a dead peer.
class SocketSink : public ByteSink {
 public:
  SocketSink(int fd, RunControl* rc) : fd_(fd), rc_(rc) {}

  void append(std::span<const std::uint8_t> b) override {
    if (broken_) return;
    std::size_t off = 0;
    while (off < b.size()) {
      auto n = static_cast<std::uint32_t>(
          std::min<std::size_t>(b.size() - off, kMaxDataFrame));
      std::uint8_t hdr[kFrameHeaderSize];
      write_frame_header(hdr, {FrameType::kData, 0, n});
      iovec iov[2] = {{hdr, kFrameHeaderSize},
                      {const_cast<std::uint8_t*>(b.data() + off), n}};
      if (!writev_all(iov)) {
        broken_ = true;
        rc_->request_cancel();
        return;
      }
      if (!saw_first_) {
        first_ = std::chrono::steady_clock::now();
        saw_first_ = true;
      }
      bytes_ += n;
      off += n;
    }
  }

  bool broken() const { return broken_; }
  std::uint64_t bytes() const { return bytes_; }
  bool saw_first() const { return saw_first_; }
  std::chrono::steady_clock::time_point first_byte() const { return first_; }

 private:
  bool writev_all(iovec iov[2]) {
    std::size_t total = iov[0].iov_len + iov[1].iov_len;
    std::size_t sent = 0;
    while (sent < total) {
      iovec cur[2];
      int cnt = 0;
      std::size_t skip = sent;
      for (int i = 0; i < 2; ++i) {
        if (skip >= iov[i].iov_len) {
          skip -= iov[i].iov_len;
          continue;
        }
        cur[cnt].iov_base = static_cast<std::uint8_t*>(iov[i].iov_base) + skip;
        cur[cnt].iov_len = iov[i].iov_len - skip;
        skip = 0;
        ++cnt;
      }
      msghdr msg{};
      msg.msg_iov = cur;
      msg.msg_iovlen = static_cast<std::size_t>(cnt);
      ssize_t w = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(w);
    }
    return true;
  }

  int fd_;
  RunControl* rc_;
  bool broken_ = false;
  bool saw_first_ = false;
  std::chrono::steady_clock::time_point first_;
  std::uint64_t bytes_ = 0;
};

}  // namespace

// Per-connection state. rc lives here (not in the request scope) so
// shutdown_now() can trip an in-flight request's control from another
// thread while the request thread is inside feed()/finish().
struct LeptonServer::Conn {
  int fd = -1;
  RunControl rc;
  // Alternating body buffers: EncodeSession::feed borrows its first slice
  // until the *next* feed returns (session.h lifetime contract), so the
  // frame we just fed must stay intact while the next one is read.
  std::vector<std::uint8_t> body[2];
  int body_ix = 0;
};

LeptonServer::LeptonServer(ServerConfig cfg, CodecContext* ctx)
    : cfg_(std::move(cfg)), ctx_(ctx != nullptr ? *ctx : default_context()) {
  if (cfg_.store == nullptr) {
    own_store_ = std::make_unique<TransparentStore>();
    store_ = own_store_.get();
  } else {
    store_ = cfg_.store;
  }
}

LeptonServer::~LeptonServer() { stop(); }

bool LeptonServer::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return false;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (cfg_.socket_path.size() >= sizeof addr.sun_path) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = ENAMETOOLONG;
    return false;
  }
  std::memcpy(addr.sun_path, cfg_.socket_path.c_str(),
              cfg_.socket_path.size() + 1);
  ::unlink(cfg_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  stopping_.store(false, std::memory_order_release);
  cancel_all_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&LeptonServer::accept_loop, this);
  return true;
}

void LeptonServer::accept_loop() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    reap_finished_locked();
    ++stats_.connections;
    conn_threads_.emplace_back(&LeptonServer::serve_connection, this, fd);
  }
}

void LeptonServer::reap_finished_locked() {
  for (std::thread::id id : finished_conn_ids_) {
    for (auto it = conn_threads_.begin(); it != conn_threads_.end(); ++it) {
      if (it->get_id() == id) {
        // The thread announced completion just before returning; join()
        // waits out only its final few instructions.
        it->join();
        conn_threads_.erase(it);
        break;
      }
    }
  }
  finished_conn_ids_.clear();
}

void LeptonServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_.store(true, std::memory_order_release);
  }
  slot_cv_.notify_all();
  // Wake the accept loop.
  ::shutdown(listen_fd_, SHUT_RDWR);
  // Graceful drain: in-flight requests run to their trailer. (shutdown_now
  // trips their controls first, so this converges quickly there too.)
  {
    std::unique_lock<std::mutex> lk(mu_);
    slot_cv_.wait(lk, [&] { return stats_.in_flight == 0; });
    // Unblock connections parked in a header read.
    for (Conn* c : live_conns_) ::shutdown(c->fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(mu_);
    threads.swap(conn_threads_);
  }
  for (auto& t : threads) t.join();
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(cfg_.socket_path.c_str());
  running_.store(false, std::memory_order_release);
}

void LeptonServer::shutdown_now() {
  if (!running_.load(std::memory_order_acquire)) return;
  cancel_all_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Trip every in-flight session; workers notice at MCU-row granularity.
    for (Conn* c : live_conns_) c->rc.request_cancel();
    // And unblock body reads so stalled requests die now, not at the idle
    // timeout.
    for (Conn* c : live_conns_) ::shutdown(c->fd, SHUT_RDWR);
  }
  stop();
}

ServerStats LeptonServer::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

bool LeptonServer::acquire_slot(Conn& c) {
  (void)c;
  std::unique_lock<std::mutex> lk(mu_);
  slot_cv_.wait(lk, [&] {
    return stopping_ || stats_.in_flight < cfg_.max_in_flight;
  });
  if (stopping_) return false;
  ++stats_.requests;
  ++stats_.in_flight;
  if (stats_.in_flight > stats_.in_flight_peak) {
    stats_.in_flight_peak = stats_.in_flight;
  }
  return true;
}

void LeptonServer::release_slot() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    --stats_.in_flight;
  }
  slot_cv_.notify_all();
}

namespace {

bool send_trailer(int fd, ExitCode code, bool shutoff, std::uint64_t in,
                  std::uint64_t out) {
  std::uint8_t buf[kFrameHeaderSize + kTrailerPayloadSize];
  write_frame_header(buf, {FrameType::kTrailer, 0, kTrailerPayloadSize});
  TrailerPayload t;
  t.exit_code = static_cast<std::uint8_t>(code);
  t.shutoff_engaged = shutoff;
  t.bytes_in = in;
  t.bytes_out = out;
  write_trailer_payload(buf + kFrameHeaderSize, t);
  return send_all(fd, buf, sizeof buf);
}

}  // namespace

void LeptonServer::serve_connection(int fd) {
  Conn conn;
  conn.fd = fd;
  set_send_timeout(fd, cfg_.idle_read_timeout);
  {
    std::lock_guard<std::mutex> lk(mu_);
    live_conns_.push_back(&conn);
  }

  std::uint8_t hdr_buf[kFrameHeaderSize];
  std::uint8_t ctl_buf[kMaxControlFrame];
  bool keep = true;
  while (keep && !stopping_.load(std::memory_order_acquire)) {
    set_recv_timeout(fd, cfg_.idle_read_timeout);
    ReadStatus rs = read_exact(fd, hdr_buf, kFrameHeaderSize);
    if (rs == ReadStatus::kEof) break;  // clean close between requests
    if (rs != ReadStatus::kOk) {
      std::lock_guard<std::mutex> lk(mu_);
      if (rs == ReadStatus::kTruncated) {
        // A frame died mid-header: the wire-level short read.
        ++stats_.protocol_errors;
        stats_.trailer_codes.add(
            static_cast<unsigned>(ExitCode::kShortRead));
      }
      break;
    }
    FrameHeader fh;
    if (!parse_frame_header(hdr_buf, &fh)) {
      // Oversized declared length or a frame no version-1 client sends.
      // Rejected before any allocation; answer and hang up.
      bool oversized = static_cast<FrameType>(hdr_buf[0]) == FrameType::kData;
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (oversized) {
          ++stats_.oversized_rejects;
        } else {
          ++stats_.protocol_errors;
        }
        stats_.trailer_codes.add(
            static_cast<unsigned>(ExitCode::kImpossible));
      }
      (void)send_trailer(fd, ExitCode::kImpossible, store_->shutoff_active(),
                         0, 0);
      break;
    }
    switch (fh.type) {
      case FrameType::kPing: {
        if (fh.length != 0 ||
            !send_trailer(fd, ExitCode::kSuccess, store_->shutoff_active(), 0,
                          0)) {
          keep = false;
        }
        break;
      }
      case FrameType::kShutoff: {
        if (fh.length != 1 ||
            read_exact(fd, ctl_buf, 1) != ReadStatus::kOk) {
          keep = false;
          break;
        }
        auto op = static_cast<ShutoffOp>(ctl_buf[0]);
        if (op == ShutoffOp::kEngage) store_->set_shutoff(true);
        if (op == ShutoffOp::kClear) store_->set_shutoff(false);
        // Every SHUTOFF answer re-stats the shutoff file (bypassing the
        // 250 ms TTL cache): the operator asked *now*, not a TTL ago.
        bool state = store_->recheck_shutoff();
        keep = send_trailer(fd, ExitCode::kSuccess, state, 0, 0);
        break;
      }
      case FrameType::kEncode:
      case FrameType::kDecode: {
        if (fh.length > kMaxControlFrame ||
            read_exact(fd, ctl_buf, fh.length) != ReadStatus::kOk) {
          keep = false;
          break;
        }
        keep = serve_request(conn, hdr_buf[0], ctl_buf, fh.length);
        break;
      }
      default: {
        // DATA/END/TRAILER outside a request: protocol violation.
        {
          std::lock_guard<std::mutex> lk(mu_);
          ++stats_.protocol_errors;
          stats_.trailer_codes.add(
              static_cast<unsigned>(ExitCode::kImpossible));
        }
        (void)send_trailer(fd, ExitCode::kImpossible, store_->shutoff_active(),
                           0, 0);
        keep = false;
        break;
      }
    }
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    live_conns_.erase(
        std::find(live_conns_.begin(), live_conns_.end(), &conn));
    finished_conn_ids_.push_back(std::this_thread::get_id());
  }
  ::close(fd);
}

bool LeptonServer::serve_request(Conn& c, std::uint8_t open_type,
                                 const std::uint8_t* open_payload,
                                 std::uint32_t open_len) {
  const bool is_encode =
      static_cast<FrameType>(open_type) == FrameType::kEncode;
  OpenPayload open;
  if (!parse_open_payload(open_payload, open_len, &open) ||
      open.version != kProtocolVersion) {
    {
      // Never send while holding mu_: a client whose buffer is full would
      // stall every other connection's stats/trailer path.
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.protocol_errors;
      stats_.trailer_codes.add(static_cast<unsigned>(ExitCode::kImpossible));
    }
    (void)send_trailer(c.fd, ExitCode::kImpossible, store_->shutoff_active(),
                       0, 0);
    return false;
  }

  // Admission: block (not reject) until a slot frees — the unread socket is
  // the backpressure signal to this client, §5.5-style.
  if (!acquire_slot(c)) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stats_.trailer_codes.add(
          static_cast<unsigned>(ExitCode::kServerShutdown));
    }
    (void)send_trailer(c.fd, ExitCode::kServerShutdown,
                       store_->shutoff_active(), 0, 0);
    return false;
  }
  struct SlotGuard {
    LeptonServer* s;
    ~SlotGuard() { s->release_slot(); }
  } slot_guard{this};

  const auto start = std::chrono::steady_clock::now();
  c.rc.reset();
  const bool has_deadline = open.deadline_ms > 0;
  const auto deadline =
      start + std::chrono::milliseconds(open.deadline_ms);
  if (has_deadline) c.rc.set_deadline(deadline);

  // §5.7 kill-switch: compression stops, decompression never does.
  if (is_encode && store_->shutoff_active()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.shutoff_refusals;
      stats_.trailer_codes.add(
          static_cast<unsigned>(ExitCode::kServerShutdown));
    }
    (void)send_trailer(c.fd, ExitCode::kServerShutdown, true, 0, 0);
    return false;
  }

  SocketSink sink(c.fd, &c.rc);
  EncodeOptions eopts = cfg_.encode_opts;
  eopts.run = &c.rc;
  DecodeOptions dopts = cfg_.decode_opts;
  dopts.run = &c.rc;
  // Exactly one of the two is used; both are cheap to construct.
  EncodeSession enc(eopts, &ctx_);
  DecodeSession dec(sink, dopts, &ctx_);

  // ---- body: DATA* then END ----
  // The whole body phase runs under an absolute wall budget: the request
  // deadline when one was given, and the idle window either way (a body
  // that cannot arrive within the idle window is indistinguishable from a
  // stalled one — and per-read inactivity alone is gameable by dribbling).
  auto body_deadline = start + cfg_.idle_read_timeout;
  if (has_deadline && deadline < body_deadline) body_deadline = deadline;
  std::uint64_t body_bytes = 0;
  ExitCode code = ExitCode::kSuccess;
  bool disconnected = false;
  for (;;) {
    std::uint8_t hdr_buf[kFrameHeaderSize];
    ReadStatus rs =
        read_exact_deadline(c.fd, hdr_buf, kFrameHeaderSize, body_deadline);
    if (rs == ReadStatus::kTimedOut) {
      // Deadline passed or the body stalled/dribbled past the idle window.
      code = ExitCode::kTimeout;
      break;
    }
    if (rs != ReadStatus::kOk) {
      disconnected = true;
      break;
    }
    FrameHeader fh;
    if (!parse_frame_header(hdr_buf, &fh)) {
      bool oversized = static_cast<FrameType>(hdr_buf[0]) == FrameType::kData;
      // The §6.2 memory-budget refusal: the declaration alone exceeds what
      // this request may allocate, so no buffer is ever sized for it.
      code = oversized ? (is_encode ? ExitCode::kMemLimitEncode
                                    : ExitCode::kMemLimitDecode)
                       : ExitCode::kImpossible;
      std::lock_guard<std::mutex> lk(mu_);
      if (oversized) {
        ++stats_.oversized_rejects;
      } else {
        ++stats_.protocol_errors;
      }
      break;
    }
    if (fh.type == FrameType::kEnd) {
      if (fh.length != 0) code = ExitCode::kImpossible;
      break;
    }
    if (fh.type != FrameType::kData) {
      code = ExitCode::kImpossible;
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.protocol_errors;
      break;
    }
    if (body_bytes + fh.length > cfg_.max_body_bytes) {
      code = is_encode ? ExitCode::kMemLimitEncode : ExitCode::kMemLimitDecode;
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.oversized_rejects;
      break;
    }
    std::vector<std::uint8_t>& buf = c.body[c.body_ix];
    c.body_ix ^= 1;
    buf.resize(fh.length);
    if (fh.length > 0) {
      rs = read_exact_deadline(c.fd, buf.data(), fh.length, body_deadline);
      if (rs == ReadStatus::kTimedOut) {
        code = ExitCode::kTimeout;
        break;
      }
      if (rs != ReadStatus::kOk) {
        disconnected = true;
        break;
      }
    }
    body_bytes += fh.length;
    code = is_encode ? enc.feed({buf.data(), buf.size()})
                     : dec.feed({buf.data(), buf.size()});
    if (code != ExitCode::kSuccess) break;
  }

  if (disconnected) {
    // Mid-request hangup: cancel the session so nothing keeps converting
    // for a dead peer, record it, and close. No trailer — there is no one
    // left to read it.
    c.rc.request_cancel();
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.disconnects;
    stats_.trailer_codes.add(static_cast<unsigned>(ExitCode::kShortRead));
    return false;
  }

  // ---- finish + trailer ----
  if (code == ExitCode::kSuccess) {
    code = is_encode ? enc.finish(sink) : dec.finish();
  } else if (!is_encode) {
    // The feed's sticky classification is the trailer code (probe/parse
    // rejections, kTimeout); finish() just finalizes the dead session.
    (void)dec.finish();
  }
  if (sink.broken()) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.disconnects;
    stats_.trailer_codes.add(static_cast<unsigned>(ExitCode::kShortRead));
    return false;
  }
  if (code == ExitCode::kTimeout && cancel_all_.load(std::memory_order_acquire)) {
    code = ExitCode::kServerShutdown;  // server-initiated, not the budget
  }

  // Counters first, trailer second: a client acting on the trailer (tests
  // included) must never observe stats() that predate its own request.
  auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.bytes_in += body_bytes;
    stats_.bytes_out += sink.bytes();
    stats_.trailer_codes.add(static_cast<unsigned>(code));
    if (sink.saw_first()) {
      stats_.ttfb_s.add(
          std::chrono::duration<double>(sink.first_byte() - start).count());
    }
    stats_.request_s.add(std::chrono::duration<double>(now - start).count());
  }
  bool sent = send_trailer(c.fd, code, store_->shutoff_active(), body_bytes,
                           sink.bytes());
  if (!sent) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.disconnects;
  }
  // Keep the connection only after a clean success; every error trailer is
  // followed by a close so a confused client cannot desynchronize framing.
  return sent && code == ExitCode::kSuccess;
}

}  // namespace lepton::server
