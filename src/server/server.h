// Socket-serving front-end over the streaming sessions (§5, §6.6).
//
// The production system runs Lepton as a fleet of daemons behind the
// blockservers: requests arrive over a local socket as length-prefixed
// frames, every conversion runs under a per-request time box, a saturated
// server simply stops reading (the kernel's socket buffer is the
// backpressure signal), and an operator kill-switch stops compression
// fleet-wide within seconds (§5.7). LeptonServer is that daemon:
//
//   lepton::TransparentStore store;            // kill-switch authority
//   lepton::server::ServerConfig cfg;
//   cfg.socket_path = "/run/lepton.sock";
//   cfg.store = &store;
//   lepton::server::LeptonServer srv(cfg);     // + optional CodecContext*
//   srv.start();                               // accept thread spawned
//   ...
//   srv.stop();                                // drain in-flight, join
//
// One connection carries any number of sequential requests; each ENCODE or
// DECODE request drives a fresh EncodeSession/DecodeSession over the shared
// CodecContext, with the request's deadline armed on the session's
// RunControl. docs/PROTOCOL.md is the wire contract; docs/OPERATIONS.md is
// the operator's guide.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "lepton/codec.h"
#include "lepton/store.h"
#include "util/stats.h"

namespace lepton {
class CodecContext;
}

namespace lepton::server {

struct ServerConfig {
  // AF_UNIX path the server binds (unlinked+rebound on start, unlinked on
  // stop). Unix sockets keep the hostile-client surface local, match the
  // paper's blockserver-to-daemon hop, and sidestep port allocation in
  // tests/CI; the framing itself is transport-agnostic.
  std::string socket_path;

  // Admission bound: at most this many requests hold sessions at once.
  // A connection whose open frame arrives while the server is full is
  // simply not read further until a slot frees — backpressure by parked
  // reads, never by dropped requests (docs/PROTOCOL.md §"Flow control").
  int max_in_flight = 4;

  // Total request-body cap (sum of DATA payloads). The per-frame cap is
  // protocol-level (kMaxDataFrame); this bounds what one request may make
  // the server buffer. Defaults to the paper's 4-MiB chunk plus headroom.
  std::uint64_t max_body_bytes = 6u << 20;

  // Three bounds in one knob: (a) how long a connection may sit idle
  // between requests; (b) the *wall-clock* budget for reading one request
  // body — absolute, not per-read, so a one-byte-per-interval dribble
  // cannot re-arm it forever while holding an admission slot (a request
  // with a tighter deadline uses that instead); (c) the send timeout on
  // response writes, so a client that stops reading is disconnected
  // rather than wedging its request thread.
  std::chrono::milliseconds idle_read_timeout{30000};

  // Kill-switch authority (§5.7). When set, ENCODE requests are refused
  // with kServerShutdown while store->shutoff_active(); SHUTOFF frames
  // query (forced re-check) or flip its process-local switch. When null
  // the server owns a private store so the switch still works per-process.
  TransparentStore* store = nullptr;

  // Options for the per-request sessions.
  EncodeOptions encode_opts;
  DecodeOptions decode_opts;
};

// A point-in-time copy of the server's counters (taken under the stats
// mutex; cheap enough for tests to poll).
struct ServerStats {
  std::uint64_t connections = 0;         // accepted
  std::uint64_t requests = 0;            // open frames admitted
  std::uint64_t bytes_in = 0;            // request body bytes consumed
  std::uint64_t bytes_out = 0;           // response DATA bytes emitted
  std::uint64_t protocol_errors = 0;     // malformed frames / bad version
  std::uint64_t oversized_rejects = 0;   // declared length over cap
  std::uint64_t disconnects = 0;         // connection died mid-request
  std::uint64_t shutoff_refusals = 0;    // ENCODE refused by kill-switch
  int in_flight = 0;                     // requests holding slots now
  int in_flight_peak = 0;
  // §6.2 classification of every request/connection outcome: the code of
  // each trailer sent, plus kShortRead for requests whose peer vanished
  // before a trailer could be delivered (those also count in disconnects).
  util::CodeTally trailer_codes;
  // Bounded reservoirs, not exact sample sets: a daemon must not grow
  // per-request stats (or the stats() snapshot copy) without limit.
  util::ReservoirPercentiles ttfb_s;     // request admit -> first DATA out
  util::ReservoirPercentiles request_s;  // request admit -> trailer sent
};

class LeptonServer {
 public:
  explicit LeptonServer(ServerConfig cfg, CodecContext* ctx = nullptr);
  ~LeptonServer();  // stop()s if still running

  LeptonServer(const LeptonServer&) = delete;
  LeptonServer& operator=(const LeptonServer&) = delete;

  // Binds the socket and spawns the accept thread. False (with errno
  // intact) when the bind/listen fails; safe to call once per instance.
  bool start();

  // Graceful drain: stop accepting, let in-flight requests run to their
  // trailer, then close every connection and join. Idempotent.
  void stop();

  // Hard stop: like stop(), but first cancels every in-flight session (the
  // paper's posture that a draining server may trip all its conversions at
  // once — run_control.h). Cancelled requests trail as kServerShutdown.
  void shutdown_now();

  bool running() const { return running_.load(std::memory_order_acquire); }
  const std::string& socket_path() const { return cfg_.socket_path; }

  ServerStats stats() const;

 private:
  struct Conn;  // per-connection state (server.cpp)

  void accept_loop();
  void serve_connection(int fd);
  // Joins connection threads that have announced completion (a long-lived
  // daemon must not accumulate one joinable thread per connection ever
  // accepted). Called with mu_ held.
  void reap_finished_locked();
  // One request: open frame already parsed. Returns false when the
  // connection must close (protocol error, disconnect, error trailer).
  bool serve_request(Conn& c, std::uint8_t open_type,
                     const std::uint8_t* open_payload, std::uint32_t open_len);
  bool acquire_slot(Conn& c);
  void release_slot();

  ServerConfig cfg_;
  CodecContext& ctx_;
  // Private kill-switch store when cfg_.store == nullptr.
  std::unique_ptr<TransparentStore> own_store_;
  TransparentStore* store_ = nullptr;

  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> cancel_all_{false};
  std::thread accept_thread_;

  mutable std::mutex mu_;
  std::condition_variable slot_cv_;       // admission + drain waits
  std::vector<std::thread> conn_threads_;
  std::vector<std::thread::id> finished_conn_ids_;  // ready to join
  std::vector<Conn*> live_conns_;         // for shutdown() on stop
  ServerStats stats_;
};

}  // namespace lepton::server
