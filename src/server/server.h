// Socket-serving front-end over the streaming sessions (§5, §6.6).
//
// The production system runs Lepton as a fleet of daemons behind the
// blockservers: requests arrive over a stream socket as length-prefixed
// frames, every conversion runs under a per-request time box, a saturated
// server simply stops reading (the kernel's socket buffer is the
// backpressure signal), and an operator kill-switch stops compression
// fleet-wide within seconds (§5.7). LeptonServer is that daemon's
// thread-per-connection plane:
//
//   lepton::TransparentStore store;            // kill-switch authority
//   lepton::server::ServerConfig cfg;
//   cfg.socket_path = "/run/lepton.sock";      // or cfg.listen = "tcp:..."
//   cfg.store = &store;
//   lepton::server::LeptonServer srv(cfg);     // + optional CodecContext*
//   srv.start();                               // accept thread spawned
//   ...
//   srv.stop();                                // drain in-flight, join
//
// One connection carries any number of sequential requests; each ENCODE or
// DECODE request drives a fresh EncodeSession/DecodeSession over the shared
// CodecContext, with the request's deadline armed on the session's
// RunControl. All request semantics live in RequestService (service.h),
// shared with the daemon's event-driven plane (src/leptond/) — this class
// only owns accepting and one-thread-per-connection scheduling.
// docs/PROTOCOL.md is the wire contract; docs/OPERATIONS.md is the
// operator's guide.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "lepton/codec.h"
#include "lepton/store.h"
#include "server/endpoint.h"
#include "server/service.h"

namespace lepton {
class CodecContext;
}

namespace lepton::server {

struct ServerConfig {
  // AF_UNIX path the server binds (unlinked+rebound on start, unlinked on
  // stop). Unix sockets keep the hostile-client surface local, match the
  // paper's blockserver-to-daemon hop, and sidestep port allocation in
  // tests/CI; the framing itself is transport-agnostic.
  std::string socket_path;

  // Endpoint string ("unix:/path" or "tcp:host:port", endpoint.h); when
  // non-empty it takes precedence over socket_path. Both transports run
  // the identical request path — the transport choice is confined to the
  // listener.
  std::string listen;

  // Admission bound: at most this many requests hold sessions at once.
  // A connection whose open frame arrives while the server is full is
  // simply not read further until a slot frees — backpressure by parked
  // reads, never by dropped requests (docs/PROTOCOL.md §"Flow control").
  int max_in_flight = 4;

  // Total request-body cap (sum of DATA payloads). The per-frame cap is
  // protocol-level (kMaxDataFrame); this bounds what one request may make
  // the server buffer. Defaults to the paper's 4-MiB chunk plus headroom.
  std::uint64_t max_body_bytes = 6u << 20;

  // Three bounds in one knob: (a) how long a connection may sit idle
  // between requests; (b) the *wall-clock* budget for reading one request
  // body — absolute, not per-read, so a one-byte-per-interval dribble
  // cannot re-arm it forever while holding an admission slot (a request
  // with a tighter deadline uses that instead); (c) the send timeout on
  // response writes, so a client that stops reading is disconnected
  // rather than wedging its request thread.
  std::chrono::milliseconds idle_read_timeout{30000};

  // Kill-switch authority (§5.7). When set, ENCODE requests are refused
  // with kServerShutdown while store->shutoff_active(); SHUTOFF frames
  // query (forced re-check) or flip its process-local switch. When null
  // the server owns a private store so the switch still works per-process.
  TransparentStore* store = nullptr;

  // Options for the per-request sessions.
  EncodeOptions encode_opts;
  DecodeOptions decode_opts;

  // Decoded-output LRU for DECODE requests; 0 = off (see
  // ServiceConfig::decode_cache_bytes for the full contract).
  std::size_t decode_cache_bytes = 0;
};

class LeptonServer {
 public:
  explicit LeptonServer(ServerConfig cfg, CodecContext* ctx = nullptr);
  ~LeptonServer();  // stop()s if still running

  LeptonServer(const LeptonServer&) = delete;
  LeptonServer& operator=(const LeptonServer&) = delete;

  // Binds the socket and spawns the accept thread. False (with errno
  // intact where the failure was a syscall) when the bind/listen fails;
  // safe to call once per instance.
  bool start();

  // Graceful drain: stop accepting, let in-flight requests run to their
  // trailer, then close every connection and join. Idempotent.
  void stop();

  // Hard stop: like stop(), but first cancels every in-flight session (the
  // paper's posture that a draining server may trip all its conversions at
  // once — run_control.h). Cancelled requests trail as kServerShutdown.
  void shutdown_now();

  bool running() const { return running_.load(std::memory_order_acquire); }
  const std::string& socket_path() const { return cfg_.socket_path; }
  // The canonical address the listener actually bound — for "tcp:...:0"
  // it carries the kernel-chosen port. Valid after start().
  const std::string& bound_address() const { return bound_; }

  ServerStats stats() const { return service_.stats(); }

 private:
  void accept_loop();
  void serve_connection(int fd);
  // Joins connection threads that have announced completion (a long-lived
  // daemon must not accumulate one joinable thread per connection ever
  // accepted). Called with mu_ held.
  void reap_finished_locked();

  ServerConfig cfg_;
  Endpoint endpoint_;
  std::string bound_;
  RequestService service_;

  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  mutable std::mutex mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<std::thread::id> finished_conn_ids_;  // ready to join
  std::vector<ServiceConn*> live_conns_;            // for shutdown() on stop
};

}  // namespace lepton::server
