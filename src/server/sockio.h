// Blocking-socket I/O helpers shared by the serving stack (internal).
//
// Both connection planes and the request service read frames with the same
// discipline: exact-length reads, EINTR retried, a clean pre-first-byte
// close distinguished from a mid-frame truncation, and — for request
// bodies — an *absolute* wall budget re-armed onto SO_RCVTIMEO before
// every recv, because per-read inactivity timeouts alone are gameable by
// dribbling one byte per interval (the slow-loris hole PR 5 closed).
#pragma once

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <thread>

#include "server/protocol.h"
#include "util/exit_codes.h"
#include "util/failpoint.h"

namespace lepton::server {

// Failpoint "sock.write": evaluated per send_all/writev_all call when a
// schedule is armed. `err` fails the write outright; `short` delivers a
// PRNG-sized prefix first — the peer sees a frame die partway, the §6.2
// short write; `delay` stalls the writer, then proceeds.
//
// Returns the number of bytes the caller may still send (n = proceed
// normally), with *fail_now set when the write must then report failure.
inline std::size_t failpoint_write(std::size_t n, bool* fail_now) {
  using util::failpoint::Action;
  util::failpoint::Outcome o = util::failpoint::hit("sock.write");
  switch (o.action) {
    case Action::kDelay:
      std::this_thread::sleep_for(o.delay);
      return n;
    case Action::kErr:
    case Action::kFail:
      errno = o.err;
      *fail_now = true;
      return 0;
    case Action::kShort:
      errno = ECONNRESET;
      *fail_now = true;
      return n == 0 ? 0 : o.draw % n;
    case Action::kNone:
      return n;
  }
  return n;
}

inline bool send_all(int fd, const void* data, std::size_t n) {
  bool fail_after = false;
  if (util::failpoint::armed()) {
    n = failpoint_write(n, &fail_after);
  }
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return !fail_after;
}

inline timeval to_timeval(std::chrono::milliseconds ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms.count() % 1000) * 1000);
  return tv;
}

inline void set_recv_timeout(int fd, std::chrono::milliseconds ms) {
  timeval tv = to_timeval(ms);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

// Response writes must not block forever on a client that stops reading:
// with a send timeout, a stalled ::sendmsg fails with EAGAIN, the sink
// marks itself broken, and the request unwinds through the disconnect
// path — releasing its admission slot instead of wedging stop()/drain.
// The slow consumer pays with its connection.
inline void set_send_timeout(int fd, std::chrono::milliseconds ms) {
  timeval tv = to_timeval(ms);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

inline void set_nonblocking(int fd, bool on) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return;
  ::fcntl(fd, F_SETFL, on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK));
}

enum class ReadStatus { kOk, kEof, kTruncated, kTimedOut, kError };

// Failpoint "sock.read": `err` reports a transport error without reading,
// `short` reports a mid-frame truncation, `delay` stalls the reader then
// proceeds. Returns true when the read should proceed normally.
inline bool failpoint_read(ReadStatus* rs) {
  using util::failpoint::Action;
  util::failpoint::Outcome o = util::failpoint::hit("sock.read");
  switch (o.action) {
    case Action::kDelay:
      std::this_thread::sleep_for(o.delay);
      return true;
    case Action::kErr:
    case Action::kFail:
      errno = o.err;
      *rs = ReadStatus::kError;
      return false;
    case Action::kShort:
      *rs = ReadStatus::kTruncated;
      return false;
    case Action::kNone:
      return true;
  }
  return true;
}

// Reads exactly `n` bytes. kEof only when the peer closed cleanly before
// the first byte; a close partway through is kTruncated (the §6.2 short
// read, at the frame layer).
inline ReadStatus read_exact(int fd, std::uint8_t* out, std::size_t n) {
  if (util::failpoint::armed()) {
    ReadStatus rs;
    if (!failpoint_read(&rs)) return rs;
  }
  std::size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r == 0) return got == 0 ? ReadStatus::kEof : ReadStatus::kTruncated;
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return ReadStatus::kTimedOut;
      return ReadStatus::kError;
    }
    got += static_cast<std::size_t>(r);
  }
  return ReadStatus::kOk;
}

// Deadline-bounded read_exact: re-arms SO_RCVTIMEO with the *remaining*
// wall budget before every recv. Plain SO_RCVTIMEO alone bounds only
// inactivity — a hostile client dribbling one byte per interval restarts
// the idle window forever while holding an admission slot (slow loris);
// the absolute deadline is what actually bounds the body phase.
inline ReadStatus read_exact_deadline(
    int fd, std::uint8_t* out, std::size_t n,
    std::chrono::steady_clock::time_point deadline) {
  if (util::failpoint::armed()) {
    ReadStatus rs;
    if (!failpoint_read(&rs)) return rs;
  }
  std::size_t got = 0;
  while (got < n) {
    auto remain = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remain.count() <= 0) return ReadStatus::kTimedOut;
    set_recv_timeout(fd, remain + std::chrono::milliseconds(1));
    ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r == 0) return got == 0 ? ReadStatus::kEof : ReadStatus::kTruncated;
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return ReadStatus::kTimedOut;
      return ReadStatus::kError;
    }
    got += static_cast<std::size_t>(r);
  }
  return ReadStatus::kOk;
}

inline bool send_trailer(int fd, util::ExitCode code, bool shutoff,
                         std::uint64_t in, std::uint64_t out) {
  std::uint8_t buf[kFrameHeaderSize + kTrailerPayloadSize];
  write_frame_header(buf, {FrameType::kTrailer, 0, kTrailerPayloadSize});
  TrailerPayload t;
  t.exit_code = static_cast<std::uint8_t>(code);
  t.shutoff_engaged = shutoff;
  t.bytes_in = in;
  t.bytes_out = out;
  write_trailer_payload(buf + kFrameHeaderSize, t);
  return send_all(fd, buf, sizeof buf);
}

}  // namespace lepton::server
