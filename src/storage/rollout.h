// Rollout dynamics (§6.4 "Boiling the frog") and the THP latency anomaly
// (§6.3), as parameterized simulations.
//
// Figure 13: in April 2016 every *new* photo was Lepton-encoded but nearly
// all *stored* photos were still Deflate — so decodes of Lepton files were
// rare. As the Lepton-compressed fraction of the store grew, the
// decode:encode ratio climbed from ~0 toward the steady-state 1.5-2.0,
// quietly multiplying the decode hardware requirements (Figure 14's
// multi-second p99s) until the outsourcing system shipped.
//
// Figure 12: transparent huge pages made the kernel defragment 2-MiB pages
// for a process that asks for 200 MiB up front but touches 24 MiB; the
// stall hits a few decodes after each allocation burst, inflating p95/p99
// (not the median) until THP was disabled.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace lepton::storage {

struct RolloutConfig {
  double days = 90;
  double uploads_per_s = 5.0;        // new photos, all Lepton-encoded
  double downloads_per_s = 9.0;      // photo fetches (decode if Lepton)
  double initial_store_photos = 40e9;  // existing Deflate-compressed photos
  double backfill_per_s = 0.0;       // §5.6 backfill starts months later
  std::uint64_t seed = 414;          // April 14, launch day
};

struct RolloutSample {
  double day = 0;
  double decode_rate = 0;   // Lepton decodes/s
  double encode_rate = 0;
  double ratio = 0;         // the Figure 13 curve
  double lepton_fraction = 0;  // of the photo store
  // Figure 14: decode latency percentiles as load grows against fixed
  // pre-outsourcing capacity.
  double p50 = 0, p75 = 0, p95 = 0, p99 = 0;
};

std::vector<RolloutSample> simulate_rollout(const RolloutConfig& cfg);

struct ThpConfig {
  double hours = 20;
  double disable_at_hour = 6.0;  // the Figure 12 event (April 13, 03:00)
  double base_p50_s = 0.060;     // §4.1: median decode < 60 ms
  double stall_prob = 0.04;      // fraction of decodes hitting defrag stalls
  double stall_mean_s = 1.8;     // §6.3: up to 30 s observed; heavy tail
  std::uint64_t seed = 413;
};

struct ThpSample {
  double hour = 0;
  double p50 = 0, p75 = 0, p95 = 0, p99 = 0;
};

std::vector<ThpSample> simulate_thp(const ThpConfig& cfg);

}  // namespace lepton::storage
