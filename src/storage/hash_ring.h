// Consistent-hash ring (ISSUE 10) — deterministic key→shard placement for
// the sharded fleet store.
//
// Each shard contributes `vnodes` points to a 64-bit ring; a point is a
// pure hash of (seed, shard name, vnode index), so placement is a function
// of the membership *set* alone — no RNG state, no insertion-order
// dependence, identical across process restarts. A key routes to the owner
// of the first point clockwise from hash(seed, key).
//
// Invariants the property tests (tests/sharded_test.cpp) pin down:
//   * determinism: two rings with the same seed and the same membership set
//     (regardless of the add/remove history that produced it) map every key
//     identically;
//   * minimal remap: adding a shard moves keys only TO the new shard
//     (expected fraction ≈ 1/N); removing a shard moves only the keys it
//     owned (fraction ≈ 1/N) — everything else stays put;
//   * uniformity: with ~1k virtual nodes per shard the max/mean distinct-key
//     load stays within a small constant of 1.
//
// Shard identifiers are small stable ints handed out by add_shard() and
// never reused while the ring lives, so callers can index side tables by id
// across membership changes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lepton::storage {

struct HashRingConfig {
  int vnodes = 128;           // points per shard
  std::uint64_t seed = 1017;  // placement salt (pr 10, issue 17... just stable)
};

class HashRing {
 public:
  explicit HashRing(HashRingConfig cfg = {});

  // Adds a shard under `name`; returns its stable id, or -1 if the name is
  // already a member. Ids are dense on a fresh ring (0, 1, 2, ...) and
  // never recycled after a remove.
  int add_shard(std::string_view name);
  // Removes a member by name. Its points leave the ring; every other
  // shard's points are untouched (this is what makes remap minimal).
  bool remove_shard(std::string_view name);

  // Stable id of the shard owning `key`, or -1 on an empty ring.
  int shard_of(std::string_view key) const;

  bool contains(std::string_view name) const;
  int id_of(std::string_view name) const;              // -1 if absent
  const std::string& name_of(int id) const;            // "" if retired
  std::size_t size() const { return live_; }           // live members
  std::size_t points() const { return points_.size(); }

  // Names of live members, in id order (tests, stats tables).
  std::vector<std::string> members() const;

  // The raw 64-bit position of a key on the ring — exposed so tests can
  // reason about arcs directly.
  std::uint64_t key_point(std::string_view key) const;

 private:
  struct Point {
    std::uint64_t h;
    int id;
  };

  std::uint64_t shard_point(std::string_view name, int vnode) const;

  HashRingConfig cfg_;
  std::vector<Point> points_;       // sorted by h (ties broken by id)
  std::vector<std::string> names_;  // id → name; "" marks a retired id
  std::size_t live_ = 0;
};

}  // namespace lepton::storage
