// Backfill / DropSpot model (§5.6) and the cost-effectiveness arithmetic
// (§5.6.1), calibrated entirely from the paper's published constants:
// 964 machines encoding 5,583 chunks/s (5.75 images/s per 2.6 GHz Xeon
// E5-2650v2), a 278 kW cluster footprint of which 121 kW disappears when
// backfill stops (Figure 11's outage step), 1.5 MB average images, 23%
// savings → 24 GiB saved per kWh including the three verification decodes.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace lepton::storage {

struct BackfillConfig {
  int machines = 964;                  // §5.6.1
  double chunks_per_second = 5583.0;   // §5.6.1
  double cluster_power_kw = 278.0;     // §5.6.1
  double backfill_power_kw = 121.0;    // Figure 11's step when disabled
  double base_power_kw = 157.0;        // the rest of the measured chassis
  double avg_image_mb = 1.5;           // §5.6.1
  double savings_fraction = 0.2269;    // §5.4: 22.69% average savings
  std::uint64_t seed = 926;            // Sept 26, the day of Figure 11
};

struct BackfillSample {
  double hour = 0;
  double power_kw = 0;
  double compressions_per_s = 0;
  bool backfill_active = true;
};

// Reproduces Figure 11: ~30 hours of chassis power and compressions/s with
// an outage window during which backfill stops and power steps down.
std::vector<BackfillSample> simulate_backfill_day(const BackfillConfig& cfg,
                                                  double outage_start_h,
                                                  double outage_end_h,
                                                  double hours = 30.0);

// §5.6.1 cost-effectiveness arithmetic.
struct CostModel {
  double conversions_per_kwh = 0;  // paper: ~72,300
  double gib_saved_per_kwh = 0;    // paper: ~24 GiB
  double breakeven_kwh_price_depowered_disk = 0;   // paper: $0.58
  double images_per_server_year = 0;               // paper: ~181.5M
  double tib_saved_per_server_year = 0;            // paper: ~58.8 TiB
  double s3_ia_cost_per_server_year_usd = 0;       // paper: ~$9,031
};
CostModel compute_cost_model(const BackfillConfig& cfg);

}  // namespace lepton::storage
