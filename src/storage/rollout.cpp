#include "storage/rollout.h"

#include <cmath>

#include "storage/workload.h"

namespace lepton::storage {

std::vector<RolloutSample> simulate_rollout(const RolloutConfig& cfg) {
  util::Rng rng(cfg.seed);
  std::vector<RolloutSample> out;
  double lepton_photos = 0;
  double store = cfg.initial_store_photos;

  // Fixed pre-outsourcing decode capacity: chosen so early load is
  // comfortable and day-90 load pushes utilization toward ~0.97, which is
  // what drove Figure 14's multi-second p99s.
  const double capacity = cfg.downloads_per_s * 0.72;

  for (double day = 0; day < cfg.days; day += 1.0) {
    double secs = kDay;
    lepton_photos += (cfg.uploads_per_s + cfg.backfill_per_s) * secs;
    store += cfg.uploads_per_s * secs;
    RolloutSample s;
    s.day = day;
    s.lepton_fraction = lepton_photos / store;
    // Downloads skew toward recent photos: weight the Lepton fraction by a
    // recency factor that saturates (most fetched photos are recent).
    double recency_boost = 1.0 - std::exp(-day / 25.0);
    double effective_fraction =
        s.lepton_fraction + (1 - s.lepton_fraction) * 0.85 * recency_boost;
    s.encode_rate = cfg.uploads_per_s * rng.uniform(0.95, 1.05);
    s.decode_rate =
        cfg.downloads_per_s * effective_fraction * rng.uniform(0.95, 1.05);
    s.ratio = s.decode_rate / s.encode_rate;

    // M/M/1-flavoured latency inflation as decode load approaches the fixed
    // capacity (Figure 14's creep), with multiplicative percentile spread.
    double util = s.decode_rate / capacity;
    if (util > 0.97) util = 0.97;
    double inflate = 1.0 / (1.0 - util);
    // The tail inflates far more than the median (Figure 14: p99 reaches
    // seconds while the p50 stays tens of milliseconds).
    s.p50 = 0.060 * (1 + 0.04 * (inflate - 1));
    s.p75 = 0.110 * (1 + 0.12 * (inflate - 1));
    s.p95 = 0.240 * (1 + 0.40 * (inflate - 1));
    s.p99 = 0.300 * inflate;
    out.push_back(s);
  }
  return out;
}

std::vector<ThpSample> simulate_thp(const ThpConfig& cfg) {
  util::Rng rng(cfg.seed);
  std::vector<ThpSample> out;
  for (double h = 0; h < cfg.hours; h += 1.0) {
    bool thp_on = h < cfg.disable_at_hour;
    util::Percentiles lat;
    for (int i = 0; i < 4000; ++i) {
      // Baseline decode latency: log-normal around the production median.
      double v = cfg.base_p50_s * std::exp(rng.normal(0, 0.45));
      if (thp_on && rng.chance(cfg.stall_prob)) {
        // isolate_migratepages_range & friends: the decode blocks before it
        // reads a single input byte (§6.3).
        v += rng.exponential(cfg.stall_mean_s);
      }
      lat.add(v);
    }
    ThpSample s;
    s.hour = h;
    s.p50 = lat.percentile(50);
    s.p75 = lat.percentile(75);
    s.p95 = lat.percentile(95);
    s.p99 = lat.percentile(99);
    out.push_back(s);
  }
  return out;
}

}  // namespace lepton::storage
