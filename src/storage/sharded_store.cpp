#include "storage/sharded_store.h"

#include <cstdio>
#include <utility>

namespace lepton::storage {

ShardedStore::ShardedStore(ShardedStoreConfig cfg)
    : cfg_(std::move(cfg)),
      ring_(HashRingConfig{cfg_.ring_vnodes, cfg_.ring_seed}) {
  if (cfg_.decode_cache_bytes > 0) {
    DecodeCacheConfig cc;
    cc.budget_bytes = cfg_.decode_cache_bytes;
    cc.max_entry_bytes = cfg_.decode_cache_max_entry_bytes;
    cache_ = std::make_unique<DecodeCache>(cc);
  }
}

ShardedStore::~ShardedStore() = default;

DurableStoreConfig ShardedStore::shard_store_config(
    const ShardBackendConfig& sh) const {
  DurableStoreConfig dc;
  dc.root = sh.root;
  dc.fsync = cfg_.fsync;
  dc.verify_md5_on_open = cfg_.verify_md5_on_open;
  dc.encode = cfg_.encode;
  return dc;
}

std::unique_ptr<FleetClient> ShardedStore::make_fleet(
    const ShardBackendConfig& sh) const {
  if (sh.endpoints.empty()) return nullptr;
  FleetClientConfig fc = cfg_.fleet;
  fc.endpoints = sh.endpoints;
  fc.op = FleetOp::kEncode;
  auto client = std::make_unique<FleetClient>(std::move(fc));
  client->start();
  return client;
}

std::unique_ptr<ShardedStore> ShardedStore::open(ShardedStoreConfig cfg,
                                                 std::string* err) {
  if (cfg.shards.empty()) {
    if (err != nullptr) *err = "sharded store needs at least one shard";
    return nullptr;
  }
  std::unique_ptr<ShardedStore> s(new ShardedStore(std::move(cfg)));
  for (const auto& sh : s->cfg_.shards) {
    if (sh.name.empty() || s->ring_.contains(sh.name)) {
      if (err != nullptr) {
        *err = "shard name empty or duplicated: '" + sh.name + "'";
      }
      return nullptr;
    }
    auto store = DurableStore::open(s->shard_store_config(sh), err);
    if (store == nullptr) return nullptr;
    s->ring_.add_shard(sh.name);
    Shard slot;
    slot.cfg = sh;
    slot.store = std::move(store);
    slot.fleet = s->make_fleet(sh);
    slot.alive = true;
    s->shards_.push_back(std::move(slot));
  }
  return s;
}

std::string ShardedStore::cache_key(const std::string& md5_hex,
                                    StorageKind kind) {
  // The storage kind is part of the content address: one payload
  // byte-string can legally decode differently under different kinds
  // (e.g. the same bytes stored pass-through vs as a deflate stream).
  return md5_hex + "/" + std::string(storage_kind_name(kind));
}

std::shared_ptr<DurableStore> ShardedStore::route(std::string_view key,
                                                  int* sid, bool is_put) {
  std::lock_guard<std::mutex> lk(mu_);
  int id = ring_.shard_of(key);
  *sid = id;
  Shard& sh = shards_[static_cast<std::size_t>(id)];
  if (is_put) {
    ++stats_.puts;
    ++sh.puts;
    if (!sh.alive) {
      ++stats_.puts_unavailable;
      return nullptr;
    }
  } else {
    ++stats_.gets;
    ++sh.gets;
    if (!sh.alive) {
      ++stats_.gets_unavailable;
      return nullptr;
    }
  }
  return sh.store;
}

void ShardedStore::finish_put(int sid, const std::string& old_cache_key,
                              bool had_old, ShardedPutStats* out) {
  if (out->durable.acknowledged && cache_ != nullptr && had_old) {
    std::string new_key = cache_key(out->durable.md5_hex, out->durable.kind);
    if (new_key != old_cache_key) cache_->invalidate(old_cache_key);
  }
  std::lock_guard<std::mutex> lk(mu_);
  (void)sid;
  if (out->durable.acknowledged) {
    ++stats_.puts_acknowledged;
  } else {
    ++stats_.puts_failed;
  }
  if (out->remote_converted) ++stats_.remote_conversions;
  if (out->passthrough) ++stats_.passthrough_fallbacks;
}

ShardedPutStats ShardedStore::put(std::string_view key,
                                  std::span<const std::uint8_t> file) {
  ShardedPutStats out;
  auto store = route(key, &out.shard, /*is_put=*/true);
  if (store == nullptr) {
    out.durable.code = util::ExitCode::kServerShutdown;
    return out;
  }
  StorageKind old_kind{};
  std::string old_md5;
  bool had_old = store->lookup(key, &old_kind, &old_md5, nullptr);
  FleetClient* fleet;
  {
    std::lock_guard<std::mutex> lk(mu_);
    fleet = shards_[static_cast<std::size_t>(out.shard)].fleet.get();
  }
  if (fleet != nullptr) {
    FleetClient::PutResult pr = fleet->put(store->codec(), file);
    out.remote_converted = !pr.passthrough;
    out.passthrough = pr.passthrough;
    out.durable = store->put_object(key, pr.object);
  } else {
    out.durable = store->put(key, file);
  }
  finish_put(out.shard, had_old ? cache_key(old_md5, old_kind) : std::string(),
             had_old, &out);
  return out;
}

ShardedPutStats ShardedStore::put_object(std::string_view key,
                                         const StoredObject& obj) {
  ShardedPutStats out;
  auto store = route(key, &out.shard, /*is_put=*/true);
  if (store == nullptr) {
    out.durable.code = util::ExitCode::kServerShutdown;
    return out;
  }
  StorageKind old_kind{};
  std::string old_md5;
  bool had_old = store->lookup(key, &old_kind, &old_md5, nullptr);
  out.durable = store->put_object(key, obj);
  finish_put(out.shard, had_old ? cache_key(old_md5, old_kind) : std::string(),
             had_old, &out);
  return out;
}

bool ShardedStore::get(std::string_view key, Result* out, ShardedGetStats* gs) {
  int sid = -1;
  auto store = route(key, &sid, /*is_put=*/false);
  if (gs != nullptr) {
    gs->shard = sid;
    gs->cache_hit = false;
  }
  if (store == nullptr) {
    // The key may well exist on the dead shard — absence is never claimed
    // here, only unavailability (the §6.6 server-local, retryable class).
    out->code = util::ExitCode::kServerShutdown;
    out->data.clear();
    out->message = "owning shard is down; retryable";
    return true;
  }
  StorageKind kind{};
  std::string md5;
  if (!store->lookup(key, &kind, &md5, nullptr)) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.gets_not_found;
    return false;
  }
  std::string ck = cache_key(md5, kind);
  if (cache_ != nullptr) {
    if (DecodeCache::Value v = cache_->get(ck)) {
      out->code = util::ExitCode::kSuccess;
      out->message.clear();
      out->data.assign(v->begin(), v->end());
      if (gs != nullptr) gs->cache_hit = true;
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.cache_hits;
      return true;
    }
  }
  if (!store->get(key, out)) {
    // The key vanished between lookup and read (overwrite race resolved to
    // a quarantined object); report it as the store did.
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.gets_not_found;
    return false;
  }
  if (!out->ok()) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.gets_failed;
    return true;
  }
  if (cache_ != nullptr) {
    auto shared = std::make_shared<const std::vector<std::uint8_t>>(
        std::move(out->data));
    cache_->put(ck, shared);
    out->data = *shared;
  }
  return true;
}

bool ShardedStore::contains(std::string_view key) const {
  std::lock_guard<std::mutex> lk(mu_);
  int id = ring_.shard_of(key);
  const Shard& sh = shards_[static_cast<std::size_t>(id)];
  return sh.alive && sh.store->contains(key);
}

int ShardedStore::shard_of(std::string_view key) const {
  std::lock_guard<std::mutex> lk(mu_);
  return ring_.shard_of(key);
}

std::size_t ShardedStore::shard_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return shards_.size();
}

bool ShardedStore::shard_alive(int shard) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (shard < 0 || static_cast<std::size_t>(shard) >= shards_.size()) {
    return false;
  }
  return shards_[static_cast<std::size_t>(shard)].alive;
}

std::vector<std::string> ShardedStore::shard_keys(int shard) const {
  std::shared_ptr<DurableStore> store;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shard < 0 || static_cast<std::size_t>(shard) >= shards_.size()) {
      return {};
    }
    const Shard& sh = shards_[static_cast<std::size_t>(shard)];
    if (!sh.alive) return {};
    store = sh.store;
  }
  return store->keys();
}

bool ShardedStore::kill_shard(int shard) {
  std::shared_ptr<DurableStore> victim;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shard < 0 || static_cast<std::size_t>(shard) >= shards_.size()) {
      return false;
    }
    Shard& sh = shards_[static_cast<std::size_t>(shard)];
    if (!sh.alive) return false;
    sh.alive = false;
    sh.scrub = false;
    victim = std::move(sh.store);
    ++stats_.shard_kills;
  }
  // The handle dies outside the lock: in-flight reads holding their own
  // shared_ptr finish safely, then the journal closes and the scrubber
  // joins. (Crash-vs-kill-9 is PR 9's harness; this drill is loss of the
  // backend, not of the machine.)
  victim.reset();
  return true;
}

bool ShardedStore::restart_shard(int shard, std::string* err) {
  ShardBackendConfig cfg;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shard < 0 || static_cast<std::size_t>(shard) >= shards_.size()) {
      if (err != nullptr) *err = "no such shard";
      return false;
    }
    Shard& sh = shards_[static_cast<std::size_t>(shard)];
    if (sh.alive) return true;
    cfg = sh.cfg;
  }
  // Full recovery runs outside the lock (it can md5-verify a large root);
  // the shard stays routed-but-down until the swap below.
  auto store = DurableStore::open(shard_store_config(cfg), err);
  if (store == nullptr) return false;
  std::lock_guard<std::mutex> lk(mu_);
  Shard& sh = shards_[static_cast<std::size_t>(shard)];
  if (sh.alive) return true;  // lost a restart race; drop our copy
  sh.store = std::move(store);
  sh.alive = true;
  ++stats_.shard_restarts;
  return true;
}

bool ShardedStore::add_shard(ShardBackendConfig shard, std::string* err) {
  auto store = DurableStore::open(shard_store_config(shard), err);
  if (store == nullptr) return false;
  std::lock_guard<std::mutex> lk(mu_);
  if (shard.name.empty() || ring_.contains(shard.name)) {
    if (err != nullptr) {
      *err = "shard name empty or duplicated: '" + shard.name + "'";
    }
    return false;
  }
  int id = ring_.add_shard(shard.name);
  // Migrate exactly the keys whose ring owner changed — by construction of
  // the ring these all now map to the new shard, so a single membership
  // test per key finds them. Objects move at rest (no decode); the source
  // copy stays behind as an inert shadow the ring no longer routes to.
  for (auto& old : shards_) {
    if (!old.alive) continue;  // a dead shard's keys surface after restart
    for (const std::string& key : old.store->keys()) {
      if (ring_.shard_of(key) != id) continue;
      StoredObject obj;
      util::ExitCode code = util::ExitCode::kSuccess;
      if (!old.store->get_object(key, &obj, &code) ||
          code != util::ExitCode::kSuccess) {
        ++stats_.migrate_read_errors;
        continue;
      }
      DurablePutStats dps = store->put_object(key, obj);
      if (!dps.acknowledged) {
        ++stats_.migrate_read_errors;
        continue;
      }
      ++stats_.migrated_objects;
    }
  }
  Shard slot;
  slot.cfg = std::move(shard);
  slot.store = std::move(store);
  slot.fleet = make_fleet(slot.cfg);
  slot.alive = true;
  shards_.push_back(std::move(slot));
  return true;
}

void ShardedStore::set_shutoff(bool on) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (Shard& sh : shards_) {
      if (sh.alive) sh.store->codec().set_shutoff(on);
    }
    if (on) ++stats_.shutoff_drills;
  }
  if (on && cache_ != nullptr) cache_->invalidate_all();
}

bool ShardedStore::sync() {
  std::vector<std::shared_ptr<DurableStore>> live;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (Shard& sh : shards_) {
      if (sh.alive) live.push_back(sh.store);
    }
  }
  bool ok = true;
  for (auto& s : live) ok = s->sync() && ok;
  return ok;
}

void ShardedStore::start_scrubbers(ScrubberConfig cfg) {
  std::lock_guard<std::mutex> lk(mu_);
  for (Shard& sh : shards_) {
    if (sh.alive) {
      sh.store->start_scrubber(cfg);
      sh.scrub = true;
    }
  }
}

void ShardedStore::stop_scrubbers() {
  std::lock_guard<std::mutex> lk(mu_);
  for (Shard& sh : shards_) {
    if (sh.alive && sh.scrub) {
      sh.store->stop_scrubber();
      sh.scrub = false;
    }
  }
}

ShardedStoreStats ShardedStore::stats() const {
  ShardedStoreStats out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    out = stats_;
    out.shards.reserve(shards_.size());
    for (const Shard& sh : shards_) {
      ShardHealth h;
      h.name = sh.cfg.name;
      h.root = sh.cfg.root;
      h.alive = sh.alive;
      h.fleet = !sh.cfg.endpoints.empty();
      h.keys = sh.alive ? sh.store->key_count() : 0;
      h.puts = sh.puts;
      h.gets = sh.gets;
      out.shards.push_back(std::move(h));
    }
  }
  if (cache_ != nullptr) out.cache = cache_->stats();
  return out;
}

std::string ShardedStore::stats_text() const {
  ShardedStoreStats s = stats();
  std::string t;
  char buf[256];
  auto kv = [&](const char* k, std::uint64_t v) {
    std::snprintf(buf, sizeof(buf), "sharded_%s %llu\n", k,
                  static_cast<unsigned long long>(v));
    t += buf;
  };
  std::uint64_t alive = 0;
  for (const auto& h : s.shards) alive += h.alive ? 1 : 0;
  kv("shards", s.shards.size());
  kv("shards_alive", alive);
  kv("puts", s.puts);
  kv("puts_acknowledged", s.puts_acknowledged);
  kv("puts_failed", s.puts_failed);
  kv("puts_unavailable", s.puts_unavailable);
  kv("gets", s.gets);
  kv("gets_not_found", s.gets_not_found);
  kv("gets_failed", s.gets_failed);
  kv("gets_unavailable", s.gets_unavailable);
  kv("cache_hits", s.cache_hits);
  kv("remote_conversions", s.remote_conversions);
  kv("passthrough_fallbacks", s.passthrough_fallbacks);
  kv("migrated_objects", s.migrated_objects);
  kv("migrate_read_errors", s.migrate_read_errors);
  kv("shard_kills", s.shard_kills);
  kv("shard_restarts", s.shard_restarts);
  kv("shutoff_drills", s.shutoff_drills);
  for (std::size_t i = 0; i < s.shards.size(); ++i) {
    const auto& h = s.shards[i];
    std::snprintf(buf, sizeof(buf),
                  "shard%zu_name %s\nshard%zu_alive %d\nshard%zu_keys %llu\n",
                  i, h.name.c_str(), i, h.alive ? 1 : 0, i,
                  static_cast<unsigned long long>(h.keys));
    t += buf;
  }
  if (cache_ != nullptr) t += cache_->stats_text();
  return t;
}

}  // namespace lepton::storage
