// ShardedStore — the fleet-facing storage plane (ISSUE 10, ROADMAP item 4).
//
// The paper's deployment is not one blockserver but a fleet fronting
// hundreds of PB (§4.2, §6). PR 9 gave one node crash-safe durability
// (storage::DurableStore); this layer routes put/get across N such
// backends with a consistent-hash ring (hash_ring.h) and keeps hot decoded
// outputs in a bounded LRU (decode_cache.h) so Zipf-skewed read traffic
// does not pay a full Lepton decode per read.
//
// Topology: every shard owns a DurableStore root. A shard may additionally
// name `leptond` endpoints — conversions for keys on that shard then go
// through the self-healing FleetClient (breakers, backoff, least-in-flight
// routing all reused from PR 8) against the shard's own §5.7 admission
// gate, and the admitted object is committed locally via put_object(). A
// fleet that cannot convert degrades that put to pass-through, never to an
// error: availability is per-key and durability is never gated on the
// fleet.
//
// Failure semantics:
//   * shard loss (kill_shard, or a crashed backend) degrades PER-KEY:
//     operations routed to the dead shard classify kServerShutdown
//     (unavailable, retryable — never wrong bytes, never a claimed miss),
//     every other key is untouched;
//   * restart_shard() reopens the root through full DurableStore recovery,
//     so every previously acknowledged key on that shard must come back
//     byte-identical (the replay driver and tests assert exactly this);
//   * membership growth (add_shard) migrates exactly the keys whose ring
//     owner changed — the objects move at rest (get_object/put_object, no
//     decode), expected fraction ≈ 1/(N+1) of the keyspace.
//
// Decode-cache coherence: entries are keyed by content address
// (payload md5 + storage kind — the kind is part of the key because one
// payload byte-string can legally decode differently under different
// kinds), so a resident entry can never be wrong. Overwrites additionally
// invalidate the old payload's entry, and a SHUTOFF drill clears the cache
// (see decode_cache.h).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "storage/decode_cache.h"
#include "storage/durable_store.h"
#include "storage/fleet_client.h"
#include "storage/hash_ring.h"

namespace lepton::storage {

struct ShardBackendConfig {
  std::string name;  // ring identity; must be unique and stable
  std::string root;  // DurableStore root directory
  // Optional leptond endpoints ("unix:/path" | "tcp:host:port"): when
  // non-empty, put() converts through a FleetClient against this shard's
  // admission gate instead of encoding locally.
  std::vector<std::string> endpoints;
};

struct ShardedStoreConfig {
  std::vector<ShardBackendConfig> shards;
  int ring_vnodes = 128;
  std::uint64_t ring_seed = 1017;
  // Decoded-output LRU budget; 0 disables the cache entirely.
  std::size_t decode_cache_bytes = 64u << 20;
  std::size_t decode_cache_max_entry_bytes = 0;  // 0 = budget/4
  // Per-shard DurableStore settings.
  FsyncMode fsync = FsyncMode::kBatch;
  bool verify_md5_on_open = true;
  EncodeOptions encode;
  // Template for per-shard fleet clients (endpoints replaced per shard).
  FleetClientConfig fleet;
};

struct ShardedPutStats {
  int shard = -1;
  bool remote_converted = false;  // fleet produced the admitted container
  bool passthrough = false;       // fleet degraded to pass-through
  DurablePutStats durable;        // durable.acknowledged is the verdict
};

struct ShardedGetStats {
  int shard = -1;
  bool cache_hit = false;
};

struct ShardHealth {
  std::string name;
  std::string root;
  bool alive = false;
  bool fleet = false;  // converts via endpoints
  std::uint64_t keys = 0;
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
};

struct ShardedStoreStats {
  std::uint64_t puts = 0;
  std::uint64_t puts_acknowledged = 0;
  std::uint64_t puts_failed = 0;       // commit failed (disk full, io error)
  std::uint64_t puts_unavailable = 0;  // routed to a dead shard
  std::uint64_t gets = 0;
  std::uint64_t gets_not_found = 0;
  std::uint64_t gets_failed = 0;       // exists but unserveable
  std::uint64_t gets_unavailable = 0;  // routed to a dead shard
  std::uint64_t cache_hits = 0;
  std::uint64_t remote_conversions = 0;
  std::uint64_t passthrough_fallbacks = 0;
  std::uint64_t migrated_objects = 0;
  std::uint64_t migrate_read_errors = 0;
  std::uint64_t shard_kills = 0;
  std::uint64_t shard_restarts = 0;
  std::uint64_t shutoff_drills = 0;
  DecodeCacheStats cache;
  std::vector<ShardHealth> shards;
};

class ShardedStore {
 public:
  ~ShardedStore();
  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;

  // Opens every shard root (running each one's recovery). nullptr with
  // *err set if any shard fails to open or a name is duplicated.
  static std::unique_ptr<ShardedStore> open(ShardedStoreConfig cfg,
                                            std::string* err);

  // Routes by ring, converts (locally or via the shard's fleet), commits.
  // A dead shard yields durable.code == kServerShutdown, acknowledged ==
  // false — unavailable, not lost.
  ShardedPutStats put(std::string_view key, std::span<const std::uint8_t> file);
  // Commits a pre-admitted object on the owning shard (bulk backfill, the
  // replay driver's simulated-object path).
  ShardedPutStats put_object(std::string_view key, const StoredObject& obj);

  // Reads through the decode cache. False = key unknown fleet-wide. True
  // with out->code != kSuccess: kServerShutdown when the owning shard is
  // down (the key may exist — absence is never claimed on a dead shard),
  // otherwise DurableStore::get's classification.
  bool get(std::string_view key, Result* out, ShardedGetStats* gs = nullptr);

  bool contains(std::string_view key) const;
  int shard_of(std::string_view key) const;
  std::size_t shard_count() const;
  bool shard_alive(int shard) const;
  std::vector<std::string> shard_keys(int shard) const;

  // Availability drills. kill_shard closes the backend (in-flight reads
  // holding the handle finish safely); restart_shard reopens it through
  // full recovery. Both are idempotent-safe.
  bool kill_shard(int shard);
  bool restart_shard(int shard, std::string* err);

  // Membership growth with minimal-remap migration: opens the new backend,
  // adds it to the ring, and moves exactly the objects whose owner changed
  // (at rest — no decode). False with *err on open failure; migration read
  // errors are tallied, never silent.
  bool add_shard(ShardBackendConfig shard, std::string* err);

  // §5.7 SHUTOFF drill across the fleet: flips every live shard's codec
  // switch and (on engage) clears the decode cache so the drill observes
  // the real uncached path.
  void set_shutoff(bool on);

  // Journal group-commit barrier on every live shard.
  bool sync();

  // Background scrubbers on every live shard (restart_shard does not
  // re-arm them; call start_scrubbers again after a restart drill).
  void start_scrubbers(ScrubberConfig cfg = {});
  void stop_scrubbers();

  ShardedStoreStats stats() const;
  // STATS-style "key value\n" rows (sharded_* + decode_cache_*).
  std::string stats_text() const;

  DecodeCache* cache() { return cache_.get(); }

 private:
  struct Shard {
    ShardBackendConfig cfg;
    std::shared_ptr<DurableStore> store;  // null while killed
    std::unique_ptr<FleetClient> fleet;
    bool alive = false;
    bool scrub = false;  // scrubber armed (so restart notes it is not)
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
  };

  explicit ShardedStore(ShardedStoreConfig cfg);

  DurableStoreConfig shard_store_config(const ShardBackendConfig& sh) const;
  std::unique_ptr<FleetClient> make_fleet(const ShardBackendConfig& sh) const;
  // Routes a key; fills *sid and returns the backend handle, or nullptr
  // when the owning shard is down (never when the ring is merely empty —
  // open() guarantees ≥1 shard).
  std::shared_ptr<DurableStore> route(std::string_view key, int* sid,
                                      bool is_put);
  static std::string cache_key(const std::string& md5_hex, StorageKind kind);
  void finish_put(int sid, const std::string& old_cache_key, bool had_old,
                  ShardedPutStats* out);

  ShardedStoreConfig cfg_;
  HashRing ring_;
  std::unique_ptr<DecodeCache> cache_;
  mutable std::mutex mu_;  // shards_ + counters (ring is write-locked too)
  std::vector<Shard> shards_;
  ShardedStoreStats stats_;
};

}  // namespace lepton::storage
