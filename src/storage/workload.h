// Production workload model (§5.4) and the §5 replay generator (ISSUE 10).
//
// Calibrated from every number the paper publishes: ~5 fleet-wide encodes/s
// at the Thursday peak, decode:encode ratio ≈ 1.5 on weekdays and ≈ 1.0 on
// weekends (users shoot as much on weekends but sync/view less), a diurnal
// cycle peaking in the (UTC) evening, and file sizes averaging ~1.5 MB.
//
// The replay half feeds examples/workload_replay.cpp and
// bench/micro_sharded.cpp: Zipf-skewed object popularity (Xu et al.,
// arXiv:1912.11145 — photo reads are heavily skewed and time-varying),
// read timestamps following the fig05 weekly decode-rate shape, and a
// fig11-style backfill ramp for the ingest phase. Everything draws from an
// explicitly seeded Rng, so a replay replays.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace lepton::storage {

inline constexpr double kHour = 3600.0;
inline constexpr double kDay = 24 * kHour;
inline constexpr double kWeek = 7 * kDay;

struct WorkloadModel {
  double peak_encode_rate = 5.0;  // fleet-wide encodes/s at weekday peak
  double weekday_decode_ratio = 1.5;
  double weekend_decode_ratio = 1.0;

  // t = seconds since Monday 00:00 UTC.
  static bool is_weekend(double t) {
    int day = static_cast<int>(std::fmod(t, kWeek) / kDay);
    return day >= 5;
  }

  // Smooth diurnal shape in [0.35, 1.0], peaking around 19:00.
  static double diurnal(double t) {
    double hour = std::fmod(t, kDay) / kHour;
    return 0.675 + 0.325 * std::sin((hour - 13.0) * 2 * M_PI / 24.0);
  }

  double encode_rate(double t) const {
    // Uploads are similar on weekends (§5.4: "users tend to produce the
    // same number of photos").
    return peak_encode_rate * diurnal(t);
  }

  double decode_rate(double t) const {
    double ratio = is_weekend(t) ? weekend_decode_ratio : weekday_decode_ratio;
    return encode_rate(t) * ratio;
  }

  // File size distribution: log-normal clamped to (0, 4 MiB], mean ≈ 1.5 MB
  // (§5.6.1: "images sized at an average of 1.5 MB each").
  double sample_file_mb(util::Rng& rng) const {
    double v = std::exp(rng.normal(0.05, 0.7));
    return v > 4.0 ? 4.0 : (v < 0.02 ? 0.02 : v);
  }
};

// Zipf(n, s) rank sampler by inverse CDF over a precomputed table: rank r
// (0-based, 0 = hottest) is drawn with probability (r+1)^-s / H_{n,s}.
// Exact, deterministic, O(log n) per sample; the table costs 8 bytes/rank
// (a 1M-object replay pays 8 MB once).
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s) : cdf_(n > 0 ? n : 1) {
    double acc = 0;
    for (std::uint64_t r = 0; r < cdf_.size(); ++r) {
      acc += std::pow(static_cast<double>(r + 1), -s);
      cdf_[r] = acc;
    }
    for (auto& v : cdf_) v /= acc;
  }

  std::uint64_t sample(util::Rng& rng) const {
    double u = rng.uniform();
    // First rank whose CDF is > u.
    std::uint64_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      std::uint64_t mid = (lo + hi) / 2;
      if (cdf_[mid] > u) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  std::uint64_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

// Draws read timestamps (seconds since Monday 00:00) distributed like the
// fig05 weekly decode-rate shape: the week is bucketed hourly, each
// bucket's mass ∝ decode_rate at its midpoint, and a draw picks a bucket
// by inverse CDF then a uniform offset within it.
class WeeklyShapeSampler {
 public:
  explicit WeeklyShapeSampler(const WorkloadModel& model = {},
                              double span_s = kWeek)
      : span_s_(span_s), bucket_s_(kHour), cdf_(bucket_count()) {
    double acc = 0;
    for (std::size_t b = 0; b < cdf_.size(); ++b) {
      double mid = (static_cast<double>(b) + 0.5) * bucket_s_;
      acc += model.decode_rate(mid);
      cdf_[b] = acc;
    }
    for (auto& v : cdf_) v /= acc;
  }

  double sample(util::Rng& rng) const {
    double u = rng.uniform();
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] > u) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    double base = static_cast<double>(lo) * bucket_s_;
    double top = std::min(span_s_, base + bucket_s_);
    return rng.uniform(base, top);
  }

 private:
  std::size_t bucket_count() const {
    auto n = static_cast<std::size_t>(span_s_ / bucket_s_);
    return n > 0 ? n : 1;
  }

  double span_s_;
  double bucket_s_;
  std::vector<double> cdf_;
};

// fig11 backfill ramp: the paper rolled backfill in gradually (compression
// runs as a background job whose rate was stepped up as confidence grew).
// Maps backfill progress p ∈ [0,1] to the simulated day it lands on, for a
// ramp that doubles the daily rate each day until steady state at
// `ramp_days`: day(p) is the inverse of the cumulative-rate curve.
inline double backfill_day_of_progress(double p, double ramp_days,
                                       double total_days) {
  if (p <= 0) return 0;
  if (p >= 1) return total_days;
  if (ramp_days <= 0 || total_days <= ramp_days) return p * total_days;
  // Cumulative work: ramp phase contributes ramp_days/2 day-equivalents
  // (linear ramp 0→full rate), steady phase 1/day after that.
  double total_work = ramp_days / 2 + (total_days - ramp_days);
  double w = p * total_work;
  if (w < ramp_days / 2) return std::sqrt(2 * w * ramp_days);  // inside ramp
  return ramp_days + (w - ramp_days / 2);
}

// One simulated access in a replay stream.
struct ReplayOp {
  enum class Kind : std::uint8_t { kPut, kGet } kind = Kind::kGet;
  std::uint64_t object = 0;  // object id in [0, objects)
  double t = 0;              // simulated seconds since Monday 00:00
};

struct ReplayConfig {
  std::uint64_t objects = 1'000'000;  // distinct simulated objects
  std::uint64_t reads = 1'200'000;    // Zipf-skewed gets after the backfill
  double zipf_s = 0.99;
  double backfill_ramp_days = 2.0;  // fig11-style ramp-up window
  double backfill_days = 5.0;       // total simulated ingest span
  double read_span_s = kWeek;       // fig05 weekly shape spanned by reads
  std::uint64_t seed = 11945;       // arXiv:1912.11145
};

// Deterministic op-stream generator: first every object is backfilled once
// (kPut, timestamps following the fig11 ramp), then `reads` Zipf-ranked
// kGet ops land with fig05-shaped timestamps. Zipf rank r reads object r —
// the ring hashes keys, so the hot head still spreads across shards.
class ReplayGen {
 public:
  explicit ReplayGen(ReplayConfig cfg)
      : cfg_(cfg),
        rng_(cfg.seed),
        zipf_(cfg.objects, cfg.zipf_s),
        shape_(WorkloadModel{}, cfg.read_span_s) {}

  // False once the stream is exhausted.
  bool next(ReplayOp* op) {
    if (put_emitted_ < cfg_.objects) {
      op->kind = ReplayOp::Kind::kPut;
      op->object = put_emitted_;
      double p = static_cast<double>(put_emitted_ + 1) /
                 static_cast<double>(cfg_.objects);
      op->t = kDay * backfill_day_of_progress(p, cfg_.backfill_ramp_days,
                                              cfg_.backfill_days);
      ++put_emitted_;
      return true;
    }
    if (get_emitted_ < cfg_.reads) {
      op->kind = ReplayOp::Kind::kGet;
      op->object = zipf_.sample(rng_);
      op->t = shape_.sample(rng_);
      ++get_emitted_;
      return true;
    }
    return false;
  }

  const ReplayConfig& config() const { return cfg_; }

 private:
  ReplayConfig cfg_;
  util::Rng rng_;
  ZipfSampler zipf_;
  WeeklyShapeSampler shape_;
  std::uint64_t put_emitted_ = 0;
  std::uint64_t get_emitted_ = 0;
};

}  // namespace lepton::storage
