// Production workload model (§5.4).
//
// Calibrated from every number the paper publishes: ~5 fleet-wide encodes/s
// at the Thursday peak, decode:encode ratio ≈ 1.5 on weekdays and ≈ 1.0 on
// weekends (users shoot as much on weekends but sync/view less), a diurnal
// cycle peaking in the (UTC) evening, and file sizes averaging ~1.5 MB.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/rng.h"

namespace lepton::storage {

inline constexpr double kHour = 3600.0;
inline constexpr double kDay = 24 * kHour;
inline constexpr double kWeek = 7 * kDay;

struct WorkloadModel {
  double peak_encode_rate = 5.0;  // fleet-wide encodes/s at weekday peak
  double weekday_decode_ratio = 1.5;
  double weekend_decode_ratio = 1.0;

  // t = seconds since Monday 00:00 UTC.
  static bool is_weekend(double t) {
    int day = static_cast<int>(std::fmod(t, kWeek) / kDay);
    return day >= 5;
  }

  // Smooth diurnal shape in [0.35, 1.0], peaking around 19:00.
  static double diurnal(double t) {
    double hour = std::fmod(t, kDay) / kHour;
    return 0.675 + 0.325 * std::sin((hour - 13.0) * 2 * M_PI / 24.0);
  }

  double encode_rate(double t) const {
    // Uploads are similar on weekends (§5.4: "users tend to produce the
    // same number of photos").
    return peak_encode_rate * diurnal(t);
  }

  double decode_rate(double t) const {
    double ratio = is_weekend(t) ? weekend_decode_ratio : weekday_decode_ratio;
    return encode_rate(t) * ratio;
  }

  // File size distribution: log-normal clamped to (0, 4 MiB], mean ≈ 1.5 MB
  // (§5.6.1: "images sized at an average of 1.5 MB each").
  double sample_file_mb(util::Rng& rng) const {
    double v = std::exp(rng.normal(0.05, 0.7));
    return v > 4.0 ? 4.0 : (v < 0.02 ? 0.02 : v);
  }
};

}  // namespace lepton::storage
