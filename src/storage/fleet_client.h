// Self-healing fleet client (§6 deployment, ROADMAP item 3).
//
// run_fleet_requeue (fleet.h) is a per-call router: it probes once, routes
// uniformly at random, and allows one requeue. FleetClient is the
// persistent promotion of that path — the object a blockserver keeps for
// the life of the process:
//
//   * a background prober re-pings every endpoint on an interval with
//     jitter, so recovery is discovered without waiting for a request to
//     fail into a dead box;
//   * a per-endpoint circuit breaker: closed -> open after N consecutive
//     transport failures -> half-open after a cooldown, where exactly one
//     probe request (or a prober PING) is allowed through — success closes
//     the breaker, failure re-opens it;
//   * retry budgets with exponential backoff + jitter between attempts,
//     replacing the bare "one requeue" rule;
//   * least-in-flight routing fed by STATS polling (the daemon's
//     `in_flight` key) plus locally outstanding requests, instead of
//     uniform random;
//   * graceful degradation: put() admits via the §5.7 round-trip gate when
//     the fleet converts, and stores the original bytes pass-through
//     (StorageKind::kPassthrough) when it cannot — a fleet-wide outage
//     costs compression ratio, never durability or availability.
//
// Determinism: all routing/jitter randomness draws from one seeded Rng, so
// a chaos run (tests/fault_test.cpp, examples/chaos_fleet.cpp) replays
// from its seed.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "lepton/store.h"
#include "storage/fleet.h"
#include "util/rng.h"

namespace lepton::storage {

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

const char* breaker_state_name(BreakerState s);

struct FleetClientConfig {
  // Endpoints as in RequeueConfig: "unix:/path", bare path, "tcp:host:port".
  std::vector<std::string> endpoints;
  FleetOp op = FleetOp::kEncode;

  // Attempt shaping (RequeueConfig semantics, budget > 2).
  std::chrono::milliseconds first_deadline{100};
  std::chrono::milliseconds retry_deadline{0};
  int max_attempts = 3;

  // Exponential backoff between retryable attempts: attempt k (1-based
  // retry) sleeps in [base*2^(k-1)/2, base*2^(k-1)], capped — full jitter
  // over the upper half, drawn from the client seed.
  std::chrono::milliseconds backoff_base{10};
  std::chrono::milliseconds backoff_cap{1000};

  // Circuit breaker: open after `breaker_threshold` *consecutive*
  // transport failures; half-open once `breaker_cooldown` elapses.
  int breaker_threshold = 3;
  std::chrono::milliseconds breaker_cooldown{500};

  // Background prober. start() spawns it when enabled; probe_now() runs
  // one pass synchronously either way (tests drive it directly).
  bool background_probe = false;
  std::chrono::milliseconds probe_interval{1000};
  double probe_jitter = 0.25;  // interval scales by 1 +/- jitter
  std::chrono::milliseconds health_timeout{250};

  // Route to the candidate with the fewest in-flight requests (server-
  // reported via STATS + locally outstanding); false = seeded uniform.
  bool least_in_flight = true;

  std::uint64_t seed = 66;  // §6.6
};

// Operator-visible view of one endpoint's health (leptonctl-style tables,
// tests, the chaos soak report).
struct EndpointHealth {
  std::string endpoint;
  BreakerState state = BreakerState::kClosed;
  int consecutive_failures = 0;
  std::uint64_t server_in_flight = 0;   // last STATS-reported depth
  std::uint64_t local_outstanding = 0;  // our requests currently against it
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;           // transport-level
};

class FleetClient {
 public:
  explicit FleetClient(FleetClientConfig cfg);
  ~FleetClient();

  FleetClient(const FleetClient&) = delete;
  FleetClient& operator=(const FleetClient&) = delete;

  // Spawns the background prober (no-op unless cfg.background_probe).
  void start();
  // Joins the prober. Safe to call repeatedly; the destructor calls it.
  void stop();

  // One conversion through the fleet with breakers, backoff and requeue.
  // trace.final_code == kSuccess means trace.data holds the response body.
  // When every breaker is open and none is due a probe, fails fast with
  // kServerShutdown and zero attempts (the §6.6 server-local class — the
  // caller's fallback logic treats it like a draining fleet).
  RequestTrace convert(FleetOp op, std::span<const std::uint8_t> body);

  struct PutResult {
    StoredObject object;
    bool passthrough = false;          // degraded to the original bytes
    util::ExitCode fleet_code = util::ExitCode::kSuccess;  // conversion verdict
    int attempts = 0;
  };

  // The §4 admit path over the fleet: encode remotely, gate through
  // store.admit_converted (md5 + byte-identical local round trip), and on
  // *any* failure — breakers exhausted, retries exhausted, content
  // classification, round-trip mismatch — degrade to
  // store.put_passthrough and tally it. Never errors, never loses a byte.
  PutResult put(const TransparentStore& store,
                std::span<const std::uint8_t> jpeg);

  // One synchronous probe pass (the prober thread's body): due open
  // breakers go half-open and get a PING probe; closed endpoints get a
  // STATS poll that refreshes in-flight depth and doubles as a health
  // check. Returns the number of endpoints probed.
  int probe_now();

  RequeueMetrics metrics() const;
  std::vector<EndpointHealth> endpoints() const;

  // Test hook: pretend the server last reported this in-flight depth
  // (least-in-flight routing is deterministic given these).
  void inject_reported_in_flight(std::size_t index, std::uint64_t depth);

 private:
  struct Peer {
    std::string endpoint;
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    std::chrono::steady_clock::time_point open_until{};
    bool half_open_busy = false;  // the one allowed half-open probe is out
    std::uint64_t server_in_flight = 0;
    std::uint64_t local_outstanding = 0;
    std::uint64_t successes = 0;
    std::uint64_t failures = 0;
  };

  // All three take mu_ held.
  int pick_locked(std::chrono::steady_clock::time_point now);
  void record_success_locked(std::size_t ix);
  void record_transport_failure_locked(std::size_t ix);

  void prober_main();

  FleetClientConfig cfg_;
  mutable std::mutex mu_;
  std::vector<Peer> peers_;
  RequeueMetrics metrics_;
  util::Rng rng_;

  std::thread prober_;
  std::condition_variable prober_cv_;
  bool prober_stop_ = false;
};

}  // namespace lepton::storage
