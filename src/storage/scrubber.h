// Background integrity scrubber for DurableStore (durable_store.h).
//
// Disks rot: the paper's posture of layered verification only holds if
// someone actually re-reads the bytes. The scrubber walks every live
// object on a cycle, re-computes its md5 against the journal's sealed
// digest, runs a full decode spot-check on every Nth kLepton object
// (decode must succeed AND consume its payload exactly — the same §5.7
// facts the serving path demands), and re-validates the journal's own
// record checksums. Anything that fails is quarantined through the
// store's normal never-delete path and counted in `scrub_*` stats.
//
// Reads are token-bucket rate-limited so a scrub pass never competes with
// serving traffic for disk bandwidth; all scrub I/O is raw (unrouted past
// the failpoint shim) so an armed chaos schedule cannot blind the
// detector it is supposed to exercise.
#pragma once

#include <condition_variable>
#include <mutex>
#include <thread>

#include "storage/durable_store.h"

namespace lepton::storage {

class Scrubber {
 public:
  Scrubber(DurableStore* store, ScrubberConfig cfg)
      : store_(store), cfg_(cfg) {}
  ~Scrubber() { stop(); }

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  void start();
  void stop();

  // One full pass over the current snapshot, synchronously, without rate
  // limiting (tests and fsck drills call this via scrub_pass_now()).
  void run_pass();

 private:
  void thread_main();
  // Sleeps long enough to keep reads under the configured budget; returns
  // false when stop() was requested during the wait.
  bool throttle(std::uint64_t bytes_read);

  DurableStore* store_;
  ScrubberConfig cfg_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool running_ = false;
};

}  // namespace lepton::storage
