// Bounded decoded-output LRU cache (ISSUE 10).
//
// Hot objects must not pay a full Lepton decode on every read (Xu et al.,
// arXiv:1912.11145: photo reads are heavily Zipf-skewed), so the sharded
// store — and optionally the serving daemon's DECODE path — keeps recently
// decoded originals in memory, keyed by the *content md5* of the stored
// payload.
//
// Coherence rule (DESIGN.md §"Sharded storage"): entries are keyed by
// content address, and content-addressed bytes are immutable — a given md5
// can only ever map to one decoded output, so a cache entry can never be
// wrong, only useless. Staleness exists solely in the key→md5 mapping,
// which lives in the store's index, not here. The store still invalidates
// conservatively: an overwrite drops the *old* payload's entry (worst case
// one redundant re-decode for a deduped sibling key), and a SHUTOFF drill
// clears the cache outright so the drill observes the uncached path.
//
// Values are shared_ptr<const vector>: a reader holding a hit keeps the
// bytes alive even if the entry is evicted mid-read, so eviction needs no
// reader coordination. Counters reconcile by construction:
// hits + misses == gets, entries/bytes never exceed the budget after any
// call returns.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace lepton::storage {

struct DecodeCacheConfig {
  std::size_t budget_bytes = 64u << 20;
  // Entries larger than this are rejected outright (a single huge decode
  // must not wipe the whole working set). 0 = budget / 4.
  std::size_t max_entry_bytes = 0;
};

struct DecodeCacheStats {
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;  // explicit drops (overwrite, SHUTOFF)
  std::uint64_t rejected_oversize = 0;
  std::uint64_t bytes = 0;    // resident decoded bytes now
  std::uint64_t entries = 0;  // resident entries now
  std::uint64_t hit_bytes_served = 0;
  std::uint64_t budget_bytes = 0;
};

class DecodeCache {
 public:
  using Value = std::shared_ptr<const std::vector<std::uint8_t>>;

  explicit DecodeCache(DecodeCacheConfig cfg = {});

  // Looks up by content md5 (hex). A hit refreshes recency and returns the
  // shared bytes; nullptr = miss. Every call counts toward gets.
  Value get(std::string_view md5_hex);

  // Inserts (or refreshes) the decoded output for `md5_hex`, evicting from
  // the LRU tail until the byte budget holds. Oversize values are rejected
  // and tallied. Inserting an md5 that is already resident just refreshes
  // recency — content-addressed values cannot differ.
  void put(std::string_view md5_hex, Value value);

  // Drops one entry (store overwrite invalidation). False = not resident.
  bool invalidate(std::string_view md5_hex);
  // Drops everything (SHUTOFF drill). Returns entries dropped.
  std::uint64_t invalidate_all();

  DecodeCacheStats stats() const;
  // STATS-style "key value\n" rows, each prefixed (default "decode_cache_")
  // — the serving daemon splices these into its STATS body so leptonctl
  // surfaces them verbatim.
  std::string stats_text(std::string_view prefix = "decode_cache_") const;

  std::size_t budget_bytes() const { return cfg_.budget_bytes; }
  std::size_t max_entry_bytes() const { return cfg_.max_entry_bytes; }

 private:
  struct Entry {
    std::string md5_hex;
    Value value;
  };

  void evict_to_budget_locked();

  DecodeCacheConfig cfg_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string_view, std::list<Entry>::iterator> map_;
  DecodeCacheStats stats_;
};

}  // namespace lepton::storage
