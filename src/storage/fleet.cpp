#include "storage/fleet.h"

#include <algorithm>

#include "server/client.h"

namespace lepton::storage {
namespace {

struct Server {
  int active = 0;        // concurrent Lepton conversions
  double bg_load = 1.0;  // non-Lepton work multiplier (blockservers only)
};

}  // namespace

FleetMetrics simulate_fleet(const FleetConfig& cfg, const WorkloadModel& wl,
                            double days) {
  EventSim sim;
  util::Rng rng(cfg.seed);
  FleetMetrics out;

  std::vector<Server> servers(
      static_cast<std::size_t>(cfg.blockservers + cfg.dedicated));
  for (int i = 0; i < cfg.blockservers; ++i) {
    servers[static_cast<std::size_t>(i)].bg_load = rng.uniform(1.0, 1.3);
  }

  const double horizon = days * kDay;
  const double start = cfg.sim_start_hour * kHour;
  const double lambda_max = wl.encode_rate(19 * kHour);  // diurnal max

  // Batched arrivals: album/camera-roll uploads produce runs of photos in
  // quick succession; the load balancer sprays them per-request, but the
  // *rate* bursts are what pile conversions onto unlucky machines (§5.5
  // "routinely get 15 encodes at once during peak").
  const double batch_mean = 4.0;

  std::function<void()> schedule_arrival = [&] {
    double dt = rng.exponential(batch_mean / lambda_max);
    sim.after(dt, [&] {
      double t = start + sim.now();
      if (sim.now() >= horizon) return;
      schedule_arrival();
      // Thinning for the diurnal/weekly rate.
      if (!rng.chance(wl.encode_rate(t) / lambda_max)) return;
      int batch = 1 + static_cast<int>(rng.exponential(batch_mean - 1));
      for (int b = 0; b < batch; ++b) {
        // ---- random load balancing ----
        auto target = static_cast<std::size_t>(
            rng.below(static_cast<std::uint64_t>(cfg.blockservers)));
        bool outsourced = false;
        if (cfg.policy != OutsourcePolicy::kControl &&
            servers[target].active + 1 > cfg.threshold) {
          outsourced = true;
          if (cfg.policy == OutsourcePolicy::kToSelf) {
            // Power-of-two-choices among the blockserver fleet (§5.5).
            auto a = static_cast<std::size_t>(
                rng.below(static_cast<std::uint64_t>(cfg.blockservers)));
            auto c = static_cast<std::size_t>(
                rng.below(static_cast<std::uint64_t>(cfg.blockservers)));
            target = servers[a].active <= servers[c].active ? a : c;
          } else {
            target = static_cast<std::size_t>(
                cfg.blockservers +
                static_cast<int>(rng.below(
                    static_cast<std::uint64_t>(cfg.dedicated))));
          }
        }
        Server& sv = servers[target];
        sv.active += 1;
        // Two conversions saturate a machine (§5.5): beyond that they share.
        double contention =
            std::max(1.0, static_cast<double>(sv.active) / 2.0);
        double size_mb = wl.sample_file_mb(rng);
        double service = cfg.base_encode_s_per_mb * size_mb * contention *
                         sv.bg_load * rng.uniform(0.85, 1.25);
        if (outsourced) service *= 1.0 + cfg.outsource_overhead;

        double started = sim.now();
        double diurnal_level = WorkloadModel::diurnal(start + started);
        sim.after(service, [&out, &servers, target, started, service,
                            diurnal_level, &cfg, &sim] {
          servers[target].active -= 1;
          double latency = sim.now() - started;
          out.latency_all.add(latency);
          if (diurnal_level >= 0.97) {
            out.latency_at_peak.add(latency);
          } else if (diurnal_level >= 0.85) {
            out.latency_near_peak.add(latency);
          }
          if (latency > cfg.timeout_s) ++out.timeouts;
          ++out.conversions;
          (void)service;
        });
        if (outsourced) ++out.outsourced;
      }
    });
  };
  schedule_arrival();

  // Concurrency sampler: every simulated minute, p99 across machines of
  // concurrent conversions (the Figure 9 metric).
  std::function<void()> sample = [&] {
    sim.after(60.0, [&] {
      if (sim.now() >= horizon) return;
      util::Percentiles p;
      for (int i = 0; i < cfg.blockservers; ++i) {
        p.add(servers[static_cast<std::size_t>(i)].active);
      }
      out.concurrency_p99_series.push_back(p.percentile(99));
      out.series_time_hours.push_back((start + sim.now()) / kHour);
      sample();
    });
  };
  sample();

  sim.run_until(horizon);
  return out;
}

namespace {

// One PING against an endpoint under the health-check transport cap.
// Healthy = the probe conversed cleanly; for encode fleets a kill-switched
// server also fails the probe (it would answer the encode kShutoff anyway).
bool probe_healthy(const std::string& endpoint, const RequeueConfig& cfg) {
  auto cli = server::LeptonClient::connect(endpoint);
  if (!cli.ok()) return false;
  server::RequestOptions opts;
  opts.transport_timeout = cfg.health_timeout;
  server::RequestResult r = cli.ping(opts);
  if (!r.ok()) return false;
  return !(cfg.op == FleetOp::kEncode && r.shutoff_engaged);
}

}  // namespace

RequeueMetrics run_fleet_requeue(
    const RequeueConfig& cfg,
    const std::vector<std::vector<std::uint8_t>>& bodies) {
  RequeueMetrics m;
  if (cfg.endpoints.empty()) return m;
  util::Rng rng(cfg.seed);
  const auto n_servers = static_cast<std::uint64_t>(cfg.endpoints.size());

  // Health-checked routing (leptond fleets): probe once up front, then
  // route among the healthy. `healthy` always names the current candidate
  // set; with health_check off it is the full fleet and never shrinks, so
  // the rng draw sequence — and therefore routing — is byte-identical to
  // the legacy path.
  std::vector<std::size_t> healthy(cfg.endpoints.size());
  for (std::size_t i = 0; i < healthy.size(); ++i) healthy[i] = i;
  auto demote = [&](std::size_t server_ix) {
    if (!cfg.health_check) return;
    for (std::size_t i = 0; i < healthy.size(); ++i) {
      if (healthy[i] == server_ix) {
        healthy.erase(healthy.begin() + static_cast<std::ptrdiff_t>(i));
        ++m.unhealthy_endpoints;
        break;
      }
    }
    // Fleet-wide outage: fall back to blind routing over the full list.
    if (healthy.empty()) {
      healthy.resize(cfg.endpoints.size());
      for (std::size_t i = 0; i < healthy.size(); ++i) healthy[i] = i;
    }
  };
  if (cfg.health_check) {
    std::vector<std::size_t> up;
    for (std::size_t i = 0; i < cfg.endpoints.size(); ++i) {
      ++m.health_probes;
      if (probe_healthy(cfg.endpoints[i], cfg)) {
        up.push_back(i);
      } else {
        ++m.unhealthy_endpoints;
      }
    }
    if (!up.empty()) healthy = std::move(up);
  }

  for (const auto& body : bodies) {
    RequestTrace tr;
    tr.bytes_in = body.size();
    ++m.requests;

    auto pick = static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(healthy.size())));
    auto target = healthy[pick];
    for (int attempt = 0; attempt < cfg.max_attempts; ++attempt) {
      // Fresh connection per attempt: the server closes after every
      // non-success trailer, and a requeue must not depend on the state of
      // the connection the timed-out attempt died on.
      auto cli = server::LeptonClient::connect(cfg.endpoints[target]);
      server::RequestOptions opts;
      opts.deadline = attempt == 0 ? cfg.first_deadline : cfg.retry_deadline;
      server::RequestResult res;
      if (!cli.ok()) {
        res.transport_ok = false;
        res.code = util::ExitCode::kShortRead;
        res.message = cli.message();
      } else {
        res = cfg.op == FleetOp::kEncode
                  ? cli.encode({body.data(), body.size()}, opts)
                  : cli.decode({body.data(), body.size()}, opts);
      }

      ++tr.attempts;
      tr.total_s += res.total_s;
      tr.final_server = static_cast<int>(target);
      tr.final_code = res.code;
      if (attempt == 0) {
        tr.first_server = static_cast<int>(target);
        tr.first_code = res.code;
        m.first_attempt_codes.add(static_cast<unsigned>(res.code));
      }
      if (!res.transport_ok) {
        ++m.transport_failures;
        // A dead transport is the strongest health signal there is:
        // stop routing new work at this endpoint.
        demote(target);
      }

      // §6.6: server-local conditions — a blown time box, a dead
      // transport, a draining or kill-switched server — earn another
      // server; content classifications are properties of the file and
      // never requeue (a progressive JPEG is progressive everywhere).
      bool requeue_worthy =
          !res.transport_ok || res.code == util::ExitCode::kTimeout ||
          res.code == util::ExitCode::kServerShutdown;
      if (res.ok()) {
        tr.ttfb_s = res.ttfb_s;
        tr.bytes_out = res.data.size();
        tr.data = std::move(res.data);
        ++m.succeeded;
        break;
      }
      if (!requeue_worthy || attempt + 1 >= cfg.max_attempts) break;
      ++m.requeues;
      if (cfg.health_check) {
        // The second server must be a different machine (§6.6) — and a
        // healthy one. Exclude the failed target when any other healthy
        // endpoint exists; a one-endpoint candidate set retries in place.
        std::vector<std::size_t> others;
        for (std::size_t s : healthy) {
          if (s != target) others.push_back(s);
        }
        if (!others.empty()) {
          target = others[static_cast<std::size_t>(
              rng.below(static_cast<std::uint64_t>(others.size())))];
        }
      } else if (n_servers > 1) {
        // The second server must be a different machine (§6.6).
        auto next = static_cast<std::size_t>(rng.below(n_servers - 1));
        target = next < target ? next : next + 1;
      }
    }

    m.final_codes.add(static_cast<unsigned>(tr.final_code));
    m.latency_s.add(tr.total_s);
    if (tr.final_code == util::ExitCode::kSuccess) m.ttfb_s.add(tr.ttfb_s);
    m.bytes_in += tr.bytes_in;
    m.bytes_out += tr.bytes_out;
    m.traces.push_back(std::move(tr));
  }
  return m;
}

}  // namespace lepton::storage
