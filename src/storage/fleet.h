// Blockserver fleet simulator (§5.5 "Outsourcing").
//
// The production problem: load balancers assign requests to blockservers
// uniformly at random without inspecting them; a 16-core blockserver is
// saturated by 2 simultaneous Lepton conversions, yet routinely receives 15
// at once during peak — so conversion latency collapses unless overloaded
// machines can "outsource" conversions elsewhere. The paper evaluates three
// strategies (Fig 9/10): Control (none), To-Self (re-route to a random
// other blockserver, power-of-two-choices style), and To-Dedicated (a
// separate Lepton-only cluster), with outsourcing triggered when local
// concurrent conversions exceed a threshold (3 or 4), at a 7.9% transport
// overhead.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "storage/event_sim.h"
#include "storage/workload.h"
#include "util/exit_codes.h"
#include "util/rng.h"
#include "util/stats.h"

namespace lepton::storage {

enum class OutsourcePolicy { kControl, kToSelf, kToDedicated };

struct FleetConfig {
  int blockservers = 128;
  int dedicated = 12;           // Lepton-only machines (To-Dedicated)
  int cores_per_server = 16;    // §5.5
  OutsourcePolicy policy = OutsourcePolicy::kControl;
  int threshold = 4;            // outsource if > threshold-1 concurrent (§5.5)
  double outsource_overhead = 0.079;  // §5.5: 7.9%
  // Conversion service time: a 2-conversions-saturate-16-cores machine
  // encodes a median 1.5 MB file in ~170 ms (§4.1). §5.5's "average of 5
  // encodes/s during the Thursday peak" reads as a per-blockserver rate
  // (fleet-wide Lepton ingests thousands of images/s at 2-12 GiB/s, §5.4);
  // benches set WorkloadModel::peak_encode_rate ≈ 4-8 × blockservers.
  double base_encode_s_per_mb = 0.113;
  double timeout_s = 30.0;      // §6.6 decodes exceeding the timeout window
  double sim_start_hour = 0.0;  // offset into the week (peak is 19:00 Mon)
  std::uint64_t seed = 915;     // Sept 15, the day of Figure 9
};

struct FleetMetrics {
  // Latency percentiles of conversions started near peak / at peak.
  util::Percentiles latency_near_peak;
  util::Percentiles latency_at_peak;
  util::Percentiles latency_all;
  // Per-sample-interval p99 across machines of concurrent conversions.
  std::vector<double> concurrency_p99_series;
  std::vector<double> series_time_hours;
  std::uint64_t conversions = 0;
  std::uint64_t outsourced = 0;
  std::uint64_t timeouts = 0;  // §6.6: escalate to the requeue pipeline
};

// Simulates `days` days of conversion traffic and returns the metrics
// behind Figures 9 and 10.
FleetMetrics simulate_fleet(const FleetConfig& cfg, const WorkloadModel& wl,
                            double days);

// ---- §6.6 timeout -> requeue over real servers ------------------------------
//
// The simulator above models latencies; this path drives *real* conversions
// through a fleet of LeptonServer instances (server/server.h) and
// reproduces the paper's §6.6 contract: a conversion that exceeds its
// timeout window is abandoned (the server's session aborts as kTimeout at
// its next MCU-row poll) and the request is requeued on a *different*
// server, normally with a more generous budget. Requests route uniformly at
// random, like the production load balancers (§5.5).

enum class FleetOp { kEncode, kDecode };

struct RequeueConfig {
  // Fleet endpoints, one per serving daemon: "unix:/path", a bare socket
  // path, or "tcp:host:port" (server/endpoint.h) — a multi-port leptond
  // fleet is just a vector of tcp: endpoints.
  std::vector<std::string> endpoints;
  FleetOp op = FleetOp::kEncode;
  // Deadline for the first attempt; 0 = none.
  std::chrono::milliseconds first_deadline{100};
  // Deadline for requeued attempts; 0 = none (the paper's requeue pipeline
  // is the patient path — the file must eventually convert or classify).
  std::chrono::milliseconds retry_deadline{0};
  // First try + requeues. 2 is the paper's timeout -> second-server shape.
  int max_attempts = 2;
  // Health-checked routing: ping-probe every endpoint up front, route and
  // requeue among the healthy only, and demote an endpoint the moment an
  // attempt against it fails at the transport level. For encode ops a
  // kill-switched server (shutoff engaged in the PING trailer) counts as
  // unhealthy — it would refuse the encode anyway. When every endpoint is
  // unhealthy the router falls back to the full list (a blind attempt
  // beats a guaranteed local failure). Off by default: the legacy path is
  // byte-identical, probe-free routing.
  bool health_check = false;
  std::chrono::milliseconds health_timeout{250};  // per-probe transport cap
  std::uint64_t seed = 66;  // §6.6
};

// Per-request record, in input order (tests verify byte-identity and the
// first-timeout/second-success shape from these).
struct RequestTrace {
  int attempts = 0;
  int first_server = -1;
  int final_server = -1;
  util::ExitCode first_code = util::ExitCode::kSuccess;
  util::ExitCode final_code = util::ExitCode::kSuccess;
  double ttfb_s = 0;    // of the final attempt
  double total_s = 0;   // sum over attempts (what the user waited)
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::vector<std::uint8_t> data;  // final response body (empty on failure)
};

struct RequeueMetrics {
  std::uint64_t requests = 0;
  std::uint64_t requeues = 0;            // attempts beyond the first
  std::uint64_t succeeded = 0;
  std::uint64_t transport_failures = 0;  // connect/IO-level attempt failures
  std::uint64_t health_probes = 0;       // PINGs issued (health_check only)
  std::uint64_t unhealthy_endpoints = 0; // endpoints demoted by probe/attempt
  // Self-healing client counters (FleetClient below; always zero under
  // run_fleet_requeue, which predates breakers).
  std::uint64_t breaker_opens = 0;       // closed/half-open -> open
  std::uint64_t breaker_closes = 0;      // half-open probe succeeded
  std::uint64_t half_open_probes = 0;    // requests routed as breaker probes
  std::uint64_t breaker_fast_fails = 0;  // refused: every breaker open
  std::uint64_t backoff_retries = 0;     // retries that slept a backoff
  double backoff_wait_s = 0;             // total backoff sleep
  std::uint64_t passthrough_fallbacks = 0;  // puts degraded to pass-through
  util::CodeTally first_attempt_codes;   // §6.2 tally of attempt #1
  util::CodeTally final_codes;           // §6.2 tally after requeueing
  util::Percentiles ttfb_s;
  util::Percentiles latency_s;           // end-to-end, retries included
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::vector<RequestTrace> traces;
};

// Routes each body through the fleet with the §6.6 requeue rule: requeue
// on server-local failures — kTimeout, kServerShutdown (draining or
// kill-switched machine), or a transport failure — never on a content
// classification (a progressive JPEG is progressive on every server).
// Serial by design — the per-request stats stay attributable and the run
// is reproducible.
RequeueMetrics run_fleet_requeue(
    const RequeueConfig& cfg,
    const std::vector<std::vector<std::uint8_t>>& bodies);

}  // namespace lepton::storage
