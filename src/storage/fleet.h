// Blockserver fleet simulator (§5.5 "Outsourcing").
//
// The production problem: load balancers assign requests to blockservers
// uniformly at random without inspecting them; a 16-core blockserver is
// saturated by 2 simultaneous Lepton conversions, yet routinely receives 15
// at once during peak — so conversion latency collapses unless overloaded
// machines can "outsource" conversions elsewhere. The paper evaluates three
// strategies (Fig 9/10): Control (none), To-Self (re-route to a random
// other blockserver, power-of-two-choices style), and To-Dedicated (a
// separate Lepton-only cluster), with outsourcing triggered when local
// concurrent conversions exceed a threshold (3 or 4), at a 7.9% transport
// overhead.
#pragma once

#include <cstdint>
#include <vector>

#include "storage/event_sim.h"
#include "storage/workload.h"
#include "util/rng.h"
#include "util/stats.h"

namespace lepton::storage {

enum class OutsourcePolicy { kControl, kToSelf, kToDedicated };

struct FleetConfig {
  int blockservers = 128;
  int dedicated = 12;           // Lepton-only machines (To-Dedicated)
  int cores_per_server = 16;    // §5.5
  OutsourcePolicy policy = OutsourcePolicy::kControl;
  int threshold = 4;            // outsource if > threshold-1 concurrent (§5.5)
  double outsource_overhead = 0.079;  // §5.5: 7.9%
  // Conversion service time: a 2-conversions-saturate-16-cores machine
  // encodes a median 1.5 MB file in ~170 ms (§4.1). §5.5's "average of 5
  // encodes/s during the Thursday peak" reads as a per-blockserver rate
  // (fleet-wide Lepton ingests thousands of images/s at 2-12 GiB/s, §5.4);
  // benches set WorkloadModel::peak_encode_rate ≈ 4-8 × blockservers.
  double base_encode_s_per_mb = 0.113;
  double timeout_s = 30.0;      // §6.6 decodes exceeding the timeout window
  double sim_start_hour = 0.0;  // offset into the week (peak is 19:00 Mon)
  std::uint64_t seed = 915;     // Sept 15, the day of Figure 9
};

struct FleetMetrics {
  // Latency percentiles of conversions started near peak / at peak.
  util::Percentiles latency_near_peak;
  util::Percentiles latency_at_peak;
  util::Percentiles latency_all;
  // Per-sample-interval p99 across machines of concurrent conversions.
  std::vector<double> concurrency_p99_series;
  std::vector<double> series_time_hours;
  std::uint64_t conversions = 0;
  std::uint64_t outsourced = 0;
  std::uint64_t timeouts = 0;  // §6.6: escalate to the requeue pipeline
};

// Simulates `days` days of conversion traffic and returns the metrics
// behind Figures 9 and 10.
FleetMetrics simulate_fleet(const FleetConfig& cfg, const WorkloadModel& wl,
                            double days);

}  // namespace lepton::storage
