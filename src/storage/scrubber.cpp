#include "storage/scrubber.h"

namespace lepton::storage {

void Scrubber::start() {
  std::lock_guard<std::mutex> lk(mu_);
  if (running_) return;
  stopping_ = false;
  running_ = true;
  thread_ = std::thread([this] { thread_main(); });
}

void Scrubber::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lk(mu_);
  running_ = false;
}

bool Scrubber::throttle(std::uint64_t bytes_read) {
  if (cfg_.rate_limit_bytes_per_s == 0) {
    std::lock_guard<std::mutex> lk(mu_);
    return !stopping_;
  }
  // Token bucket with zero stored credit: after reading B bytes we owe
  // B / rate seconds of idleness before the next read.
  auto debt = std::chrono::microseconds(
      bytes_read * 1'000'000 / cfg_.rate_limit_bytes_per_s);
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait_for(lk, debt, [this] { return stopping_; });
  return !stopping_;
}

void Scrubber::run_pass() {
  std::vector<DurableStore::ScrubItem> items = store_->scrub_snapshot();
  unsigned lepton_seen = 0;
  for (const DurableStore::ScrubItem& item : items) {
    bool decode_check = false;
    if (item.kind == StorageKind::kLepton && cfg_.decode_check_every != 0) {
      decode_check = (lepton_seen++ % cfg_.decode_check_every) == 0;
    }
    std::uint64_t bytes = store_->scrub_verify_object(item, decode_check);
    // run_pass() is also the synchronous entry point (scrub_pass_now);
    // only the background thread throttles.
    if (running_ && !throttle(bytes)) return;
  }
  if (cfg_.journal_check) store_->scrub_verify_journal();
}

void Scrubber::thread_main() {
  for (;;) {
    run_pass();
    {
      std::lock_guard<std::mutex> lk(store_->mu_);
      ++store_->stats_.scrub_passes;
    }
    std::unique_lock<std::mutex> lk(mu_);
    if (cv_.wait_for(lk, cfg_.pass_interval, [this] { return stopping_; })) {
      return;
    }
  }
}

}  // namespace lepton::storage
