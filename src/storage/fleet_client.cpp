#include "storage/fleet_client.h"

#include <algorithm>
#include <cstdlib>

#include "server/client.h"

namespace lepton::storage {
namespace {

using util::ExitCode;

// §6.6 requeue rule: server-local conditions earn another server; content
// classifications are properties of the file and never requeue.
bool requeue_worthy(const server::RequestResult& res) {
  return !res.transport_ok || res.code == ExitCode::kTimeout ||
         res.code == ExitCode::kServerShutdown;
}

// Extracts the daemon's "in_flight N" STATS row (docs/PROTOCOL.md). The
// key must match the whole token — "in_flight_peak" is a different row.
bool parse_in_flight(const std::vector<std::uint8_t>& text,
                     std::uint64_t* out) {
  const std::string s(text.begin(), text.end());
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t eol = s.find('\n', pos);
    if (eol == std::string::npos) eol = s.size();
    const std::string line = s.substr(pos, eol - pos);
    pos = eol + 1;
    std::size_t sp = line.find(' ');
    if (sp == std::string::npos || line.substr(0, sp) != "in_flight") {
      continue;
    }
    *out = std::strtoull(line.c_str() + sp + 1, nullptr, 10);
    return true;
  }
  return false;
}

}  // namespace

const char* breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

FleetClient::FleetClient(FleetClientConfig cfg)
    : cfg_(std::move(cfg)), rng_(cfg_.seed) {
  peers_.reserve(cfg_.endpoints.size());
  for (const std::string& ep : cfg_.endpoints) {
    Peer p;
    p.endpoint = ep;
    peers_.push_back(std::move(p));
  }
  if (cfg_.max_attempts < 1) cfg_.max_attempts = 1;
  if (cfg_.breaker_threshold < 1) cfg_.breaker_threshold = 1;
}

FleetClient::~FleetClient() { stop(); }

void FleetClient::start() {
  if (!cfg_.background_probe || prober_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    prober_stop_ = false;
  }
  prober_ = std::thread(&FleetClient::prober_main, this);
}

void FleetClient::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    prober_stop_ = true;
  }
  prober_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
}

void FleetClient::prober_main() {
  for (;;) {
    std::chrono::milliseconds wait;
    {
      std::unique_lock<std::mutex> lk(mu_);
      // Jittered interval, drawn from the client seed: a fleet of these
      // clients probing N daemons must not thundering-herd on one tick.
      double f = 1.0 + cfg_.probe_jitter * (rng_.uniform() * 2.0 - 1.0);
      wait = std::chrono::milliseconds(static_cast<std::int64_t>(
          std::max(1.0, static_cast<double>(cfg_.probe_interval.count()) * f)));
      if (prober_cv_.wait_for(lk, wait, [&] { return prober_stop_; })) {
        return;
      }
    }
    probe_now();
  }
}

int FleetClient::probe_now() {
  // Snapshot who needs what under the lock; converse off it.
  struct Job {
    std::size_t ix;
    bool half_open;  // PING probe; else a closed-peer STATS poll
  };
  std::vector<Job> jobs;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      Peer& p = peers_[i];
      if (p.state == BreakerState::kOpen && now >= p.open_until) {
        p.state = BreakerState::kHalfOpen;
        p.half_open_busy = false;
      }
      if (p.state == BreakerState::kHalfOpen && !p.half_open_busy) {
        jobs.push_back({i, true});
      } else if (p.state == BreakerState::kClosed) {
        jobs.push_back({i, false});
      }
    }
  }

  for (const Job& job : jobs) {
    std::string endpoint;
    {
      std::lock_guard<std::mutex> lk(mu_);
      endpoint = peers_[job.ix].endpoint;
      ++metrics_.health_probes;
    }
    auto cli = server::LeptonClient::connect(endpoint);
    server::RequestOptions opts;
    opts.transport_timeout = cfg_.health_timeout;
    server::RequestResult r;
    if (cli.ok()) {
      r = job.half_open ? cli.ping(opts) : cli.stats();
    }
    std::lock_guard<std::mutex> lk(mu_);
    Peer& p = peers_[job.ix];
    if (!cli.ok() || !r.transport_ok) {
      record_transport_failure_locked(job.ix);
      continue;
    }
    if (cfg_.op == FleetOp::kEncode && r.shutoff_engaged) {
      // Kill-switched: alive on the wire but refuses every encode. Keep it
      // out of the rotation without calling the transport dead.
      if (p.state != BreakerState::kOpen) {
        p.state = BreakerState::kOpen;
        p.half_open_busy = false;
        p.open_until =
            std::chrono::steady_clock::now() + cfg_.breaker_cooldown;
        ++metrics_.breaker_opens;
      }
      ++metrics_.unhealthy_endpoints;
      continue;
    }
    if (!job.half_open && r.code == ExitCode::kSuccess) {
      std::uint64_t depth = 0;
      if (parse_in_flight(r.data, &depth)) p.server_in_flight = depth;
    }
    record_success_locked(job.ix);
  }
  return static_cast<int>(jobs.size());
}

int FleetClient::pick_locked(std::chrono::steady_clock::time_point now) {
  // Cooldowns that have elapsed make their breakers probe-able.
  for (Peer& p : peers_) {
    if (p.state == BreakerState::kOpen && now >= p.open_until) {
      p.state = BreakerState::kHalfOpen;
      p.half_open_busy = false;
    }
  }
  std::vector<std::size_t> closed;
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (peers_[i].state == BreakerState::kClosed) closed.push_back(i);
  }
  if (!closed.empty()) {
    if (!cfg_.least_in_flight) {
      return static_cast<int>(closed[static_cast<std::size_t>(
          rng_.below(static_cast<std::uint64_t>(closed.size())))]);
    }
    std::uint64_t best = ~0ull;
    std::vector<std::size_t> ties;
    for (std::size_t i : closed) {
      std::uint64_t depth =
          peers_[i].server_in_flight + peers_[i].local_outstanding;
      if (depth < best) {
        best = depth;
        ties.clear();
      }
      if (depth == best) ties.push_back(i);
    }
    return static_cast<int>(ties[static_cast<std::size_t>(
        rng_.below(static_cast<std::uint64_t>(ties.size())))]);
  }
  // No closed breaker: one half-open probe request may go through.
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    Peer& p = peers_[i];
    if (p.state == BreakerState::kHalfOpen && !p.half_open_busy) {
      p.half_open_busy = true;
      ++metrics_.half_open_probes;
      return static_cast<int>(i);
    }
  }
  return -1;
}

void FleetClient::record_success_locked(std::size_t ix) {
  Peer& p = peers_[ix];
  p.consecutive_failures = 0;
  ++p.successes;
  if (p.state != BreakerState::kClosed) {
    p.state = BreakerState::kClosed;
    p.half_open_busy = false;
    ++metrics_.breaker_closes;
  }
}

void FleetClient::record_transport_failure_locked(std::size_t ix) {
  Peer& p = peers_[ix];
  ++p.failures;
  ++p.consecutive_failures;
  const bool open_now =
      p.state == BreakerState::kHalfOpen ||
      (p.state == BreakerState::kClosed &&
       p.consecutive_failures >= cfg_.breaker_threshold);
  if (open_now) {
    if (p.state == BreakerState::kClosed) ++metrics_.unhealthy_endpoints;
    p.state = BreakerState::kOpen;
    p.half_open_busy = false;
    p.open_until = std::chrono::steady_clock::now() + cfg_.breaker_cooldown;
    ++metrics_.breaker_opens;
  }
}

RequestTrace FleetClient::convert(FleetOp op,
                                  std::span<const std::uint8_t> body) {
  RequestTrace tr;
  tr.bytes_in = body.size();
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++metrics_.requests;
  }

  for (int attempt = 0; attempt < cfg_.max_attempts; ++attempt) {
    int ix;
    bool probe_request = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      const std::uint64_t probes_before = metrics_.half_open_probes;
      ix = pick_locked(std::chrono::steady_clock::now());
      if (ix < 0) {
        // Breaker set exhausted: fail fast in the §6.6 server-local class
        // so callers degrade (put() goes pass-through) instead of waiting
        // out a fleet that already told us it is down.
        ++metrics_.breaker_fast_fails;
        if (attempt == 0) {
          tr.first_code = ExitCode::kServerShutdown;
          metrics_.first_attempt_codes.add(
              static_cast<unsigned>(ExitCode::kServerShutdown));
        }
        tr.final_code = ExitCode::kServerShutdown;
        break;
      }
      probe_request = metrics_.half_open_probes != probes_before;
      ++peers_[static_cast<std::size_t>(ix)].local_outstanding;
    }
    (void)probe_request;

    std::string endpoint;
    {
      std::lock_guard<std::mutex> lk(mu_);
      endpoint = peers_[static_cast<std::size_t>(ix)].endpoint;
    }
    // Fresh connection per attempt, as in run_fleet_requeue: the server
    // closes after every non-success trailer.
    auto cli = server::LeptonClient::connect(endpoint);
    server::RequestOptions opts;
    opts.deadline = attempt == 0 ? cfg_.first_deadline : cfg_.retry_deadline;
    server::RequestResult res;
    if (!cli.ok()) {
      res.transport_ok = false;
      res.code = ExitCode::kShortRead;
      res.message = cli.message();
    } else {
      res = op == FleetOp::kEncode
                ? cli.encode({body.data(), body.size()}, opts)
                : cli.decode({body.data(), body.size()}, opts);
    }

    bool done;
    std::chrono::milliseconds backoff{0};
    {
      std::lock_guard<std::mutex> lk(mu_);
      Peer& p = peers_[static_cast<std::size_t>(ix)];
      --p.local_outstanding;
      ++tr.attempts;
      tr.total_s += res.total_s;
      tr.final_server = ix;
      tr.final_code = res.code;
      if (attempt == 0) {
        tr.first_server = ix;
        tr.first_code = res.code;
        metrics_.first_attempt_codes.add(static_cast<unsigned>(res.code));
      }
      if (!res.transport_ok) {
        ++metrics_.transport_failures;
        record_transport_failure_locked(static_cast<std::size_t>(ix));
      } else {
        record_success_locked(static_cast<std::size_t>(ix));
      }
      if (res.ok()) {
        tr.ttfb_s = res.ttfb_s;
        tr.bytes_out = res.data.size();
        tr.data = std::move(res.data);
        ++metrics_.succeeded;
        done = true;
      } else if (!requeue_worthy(res) || attempt + 1 >= cfg_.max_attempts) {
        done = true;
      } else {
        done = false;
        ++metrics_.requeues;
        // Exponential backoff with full jitter over the upper half:
        // retry k sleeps in [d/2, d], d = min(cap, base * 2^(k-1)).
        auto d = cfg_.backoff_base * (1 << attempt);
        if (d > cfg_.backoff_cap) d = cfg_.backoff_cap;
        if (d.count() > 0) {
          auto half = d.count() / 2;
          backoff = std::chrono::milliseconds(
              half + static_cast<std::int64_t>(rng_.below(
                         static_cast<std::uint64_t>(d.count() - half + 1))));
          ++metrics_.backoff_retries;
          metrics_.backoff_wait_s +=
              static_cast<double>(backoff.count()) / 1000.0;
        }
      }
    }
    if (done) break;
    if (backoff.count() > 0) {
      std::this_thread::sleep_for(backoff);
      tr.total_s += static_cast<double>(backoff.count()) / 1000.0;
    }
  }

  std::lock_guard<std::mutex> lk(mu_);
  metrics_.final_codes.add(static_cast<unsigned>(tr.final_code));
  metrics_.latency_s.add(tr.total_s);
  if (tr.final_code == ExitCode::kSuccess) metrics_.ttfb_s.add(tr.ttfb_s);
  metrics_.bytes_in += tr.bytes_in;
  metrics_.bytes_out += tr.bytes_out;
  return tr;
}

FleetClient::PutResult FleetClient::put(const TransparentStore& store,
                                        std::span<const std::uint8_t> jpeg) {
  PutResult pr;
  RequestTrace tr = convert(FleetOp::kEncode, jpeg);
  pr.attempts = tr.attempts;
  pr.fleet_code = tr.final_code;
  if (tr.final_code == ExitCode::kSuccess) {
    if (store.admit_converted(jpeg, std::move(tr.data), &pr.object)) {
      return pr;
    }
    // The fleet's container failed the §5.7 gate — treat exactly like a
    // failed conversion; the container is never stored.
    pr.fleet_code = ExitCode::kRoundtripFailed;
  }
  pr.passthrough = true;
  pr.object = store.put_passthrough(jpeg);
  std::lock_guard<std::mutex> lk(mu_);
  ++metrics_.passthrough_fallbacks;
  return pr;
}

RequeueMetrics FleetClient::metrics() const {
  std::lock_guard<std::mutex> lk(mu_);
  return metrics_;
}

std::vector<EndpointHealth> FleetClient::endpoints() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<EndpointHealth> out;
  out.reserve(peers_.size());
  for (const Peer& p : peers_) {
    EndpointHealth h;
    h.endpoint = p.endpoint;
    h.state = p.state;
    h.consecutive_failures = p.consecutive_failures;
    h.server_in_flight = p.server_in_flight;
    h.local_outstanding = p.local_outstanding;
    h.successes = p.successes;
    h.failures = p.failures;
    out.push_back(std::move(h));
  }
  return out;
}

void FleetClient::inject_reported_in_flight(std::size_t index,
                                            std::uint64_t depth) {
  std::lock_guard<std::mutex> lk(mu_);
  if (index < peers_.size()) peers_[index].server_in_flight = depth;
}

}  // namespace lepton::storage
