// DurableStore — the crash-safe on-disk persistence layer under
// TransparentStore's codec policy (ISSUE 9; the durability substrate the
// sharded fleet store shards over).
//
// The paper's deployment keeps hundreds of PB behind blockservers and
// leans on layered verification (§5.7 round-trip admission, §6.2 error
// accounting) so "no user data is ever lost" survives crashes and bad
// disks. This layer supplies the disk half of that posture:
//
// Commit protocol (per put, in order):
//   1. temp file `objects/<aa>/.tmp.<md5>.<pid>.<seq>` written via the
//      failpoint-routed util/fileio shim (fs.open / fs.write / fs.fsync /
//      fs.rename / fs.unlink are all injectable, including `short` torn
//      writes and err:ENOSPC / err:EIO)
//   2. fsync(temp)                      — bytes durable before visible
//   3. rename(temp → objects/<aa>/<md5>) — atomic publish, content-addressed
//      by the payload md5 (identical payloads dedup to one file)
//   4. fsync(objects/<aa>/)             — the rename itself durable
//   5. append one journal record {key, kind, md5, size, fnv64} + fsync
//   6. acknowledge
// A crash between any two steps leaves either nothing, a temp file the
// startup sweep quarantines, or an unreferenced object the recovery pass
// quarantines as an orphan — never a torn object behind an acknowledged
// key. The journal record's own checksum (fnv-1a over the record fields)
// makes a torn or bit-flipped journal line detectable, not trusted.
//
// Invariant (proven by examples/crash_store.cpp under kill-9 and by the
// recovery-matrix tests): acknowledged ⇒ readable byte-identical;
// unacknowledged ⇒ absent, quarantined, or — when the crash landed after
// the journal record became durable but before the ack was delivered —
// fully intact; never half-served, never served corrupt.
//
// Recovery (open()): parse the journal (checksum-validated, torn tail
// dropped), sweep temp files and unreferenced objects into `quarantine/`
// with a reason line (bytes are NEVER deleted — quarantine is a move), and
// verify size+md5 of every referenced object; a mismatch quarantines the
// file and reports the keys as lost (fsck exits nonzero on loss). The
// journal is then rewritten compacted, atomically.
//
// Failed commits are first-class outcomes: ENOSPC/EDQUOT classify as
// kDiskFull, other I/O errors as kIoError (never kImpossible), the temp
// file is unlinked (and the startup sweep catches what an injected
// fs.unlink failure leaves behind), and the failure is tallied in stats.
//
// Recovery, quarantine and scrub I/O deliberately bypass the failpoint
// shim: a chaos schedule aimed at the commit path must not be able to
// corrupt the repair machinery.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "lepton/store.h"

namespace lepton::storage {

class Scrubber;

enum class FsyncMode : std::uint8_t {
  kAlways,  // steps 2/4/5 all barriered — crash-safe vs power loss
  kBatch,   // object files barriered; the journal fsyncs every
            // `batch_puts` records (group commit) and on sync()/close
  kNone,    // no barriers — crash-safe vs process death only (bench floor)
};

struct DurableStoreConfig {
  std::string root;
  FsyncMode fsync = FsyncMode::kAlways;
  std::size_t batch_puts = 16;
  // Recovery verifies size of every referenced object always; full md5
  // re-verification can be skipped for large stores (the scrubber then
  // covers it incrementally).
  bool verify_md5_on_open = true;
  EncodeOptions encode;  // TransparentStore codec policy
};

struct DurablePutStats {
  util::ExitCode code = util::ExitCode::kSuccess;  // kDiskFull/kIoError on
                                                   // a failed commit
  bool acknowledged = false;
  StorageKind kind = StorageKind::kDeflate;
  std::string md5_hex;
  std::size_t bytes_stored = 0;
  bool deduplicated = false;  // payload already on disk (content address hit)
  PutStats codec;             // the TransparentStore §6.2 facts
};

struct RecoveryReport {
  std::uint64_t objects_live = 0;        // journal entries with healthy files
  std::uint64_t keys_live = 0;
  std::uint64_t temps_quarantined = 0;   // torn/partial commits swept
  std::uint64_t orphans_quarantined = 0; // files with no journal record
  std::uint64_t corrupt_quarantined = 0; // size/md5 mismatch vs journal
  std::uint64_t keys_lost = 0;           // acknowledged keys now unreadable
  std::uint64_t journal_torn_tail = 0;   // trailing partial record dropped
  std::uint64_t journal_bad_records = 0; // checksum/parse failures mid-file
};

struct DurableStoreStats {
  std::uint64_t puts_acknowledged = 0;
  std::uint64_t puts_deduplicated = 0;
  std::uint64_t puts_failed_disk_full = 0;
  std::uint64_t puts_failed_io_error = 0;
  std::uint64_t gets = 0;
  std::uint64_t get_corrupt_quarantined = 0;
  // Reads that failed outright (open/read error). NOT corruption: the key
  // stays in the index and the object is untouched — retryable.
  std::uint64_t get_read_errors = 0;
  // Scrubber counters (zero until start_scrubber; see scrubber.h for the
  // glossary — also docs/OPERATIONS.md §"Durability & recovery").
  std::uint64_t scrub_passes = 0;
  std::uint64_t scrub_objects_checked = 0;
  std::uint64_t scrub_bytes_read = 0;
  std::uint64_t scrub_decode_checks = 0;
  std::uint64_t scrub_corrupt_found = 0;
  std::uint64_t scrub_read_errors = 0;  // unreadable this pass; not quarantined
  std::uint64_t scrub_journal_bad_records = 0;
  RecoveryReport recovery;  // from this open()
};

struct FsckReport {
  std::uint64_t healthy = 0;
  std::uint64_t quarantined = 0;  // this pass: temps + orphans + corrupt
  std::uint64_t orphaned = 0;     // subset of quarantined
  std::uint64_t lost = 0;         // acknowledged keys unreadable — data loss
  std::uint64_t keys = 0;
  bool ok() const { return lost == 0; }
};

struct ScrubberConfig {
  // Token-bucket read budget; 0 = unlimited. The scrubber must never
  // compete with serving traffic for disk bandwidth.
  std::size_t rate_limit_bytes_per_s = 8 << 20;
  std::chrono::milliseconds pass_interval{2000};  // idle between full passes
  // Every Nth kLepton object additionally gets a decode spot-check (full
  // container decode, §5.7 consumption facts required). 0 disables.
  unsigned decode_check_every = 8;
  bool journal_check = true;  // re-validate journal record checksums per pass
};

class DurableStore {
 public:
  ~DurableStore();
  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  // Opens (creating the layout if absent) and runs recovery. nullptr with
  // *err set when the root is unusable; recovery findings land in
  // stats().recovery.
  static std::unique_ptr<DurableStore> open(DurableStoreConfig cfg,
                                            std::string* err);

  // Compress-and-commit: TransparentStore::put picks the storage kind
  // (Lepton behind the §5.7 round-trip gate, Deflate fallback, shutoff
  // honored), then the payload is committed via the protocol above.
  // Returns stats.acknowledged == true only once the commit is durable per
  // the configured FsyncMode.
  DurablePutStats put(std::string_view key, std::span<const std::uint8_t> file);

  // Commits a pre-admitted object (e.g. a fleet conversion that already
  // passed TransparentStore::admit_converted, or a put_passthrough object).
  DurablePutStats put_object(std::string_view key, const StoredObject& obj);

  // Reads the original bytes back. False = key unknown (not an error).
  // True with out->code != kSuccess = the key exists but cannot be served:
  // an on-disk md5 mismatch quarantines the object immediately (kIoError;
  // corrupt bytes are never returned); a failed open/read (fd exhaustion,
  // transient EIO) is kIoError WITHOUT quarantine — the key stays
  // retryable, since unread bytes are not evidence of corruption; and
  // decode-layer failures classify as TransparentStore::get does.
  bool get(std::string_view key, Result* out);

  // Reads the stored container behind a key — payload + kind + md5, no
  // decode. The shard-migration path (storage/sharded_store.h) moves
  // objects between shards at rest with this. Same contract as get():
  // false = key unknown; true with *code != kSuccess = the key exists but
  // the object is unreadable (retryable) or failed its md5 (quarantined).
  bool get_object(std::string_view key, StoredObject* out,
                  util::ExitCode* code = nullptr);

  // Index peek: the content address (and kind/size) behind a key, without
  // touching disk. The sharded store keys its decode cache off this md5.
  // False = key unknown. Out-params may be null.
  bool lookup(std::string_view key, StorageKind* kind, std::string* md5_hex,
              std::uint64_t* size) const;

  bool contains(std::string_view key) const;
  std::vector<std::string> keys() const;
  std::size_t key_count() const;

  // Flushes a batched journal (kBatch) to disk now; no-op (true) otherwise.
  // False = the fsync failed: the unsynced records stay pending and the
  // next batch boundary, sync() call, or close retries the barrier.
  bool sync();

  // Background integrity scrubber (scrubber.h): rate-limited md5 re-verify
  // of every object plus decode spot-checks for kLepton objects; corrupt
  // objects are quarantined and counted. Idempotent.
  void start_scrubber(ScrubberConfig cfg = {});
  void stop_scrubber();
  // One synchronous full pass (tests, fsck drills, the crash harness).
  void scrub_pass_now();

  DurableStoreStats stats() const;
  const std::string& root() const { return cfg_.root; }

  // The codec-policy layer under this store — exposed so a fleet-fronting
  // caller can convert remotely against the same admission gate
  // (FleetClient::put takes the TransparentStore) and so SHUTOFF drills
  // reach every shard's switch.
  TransparentStore& codec() { return codec_store_; }
  const TransparentStore& codec() const { return codec_store_; }

  // Offline check of an existing store directory: runs the same recovery
  // pass (sweeping temps, quarantining orphans/corruption) plus a full
  // md5 verify, and reports. `lost > 0` means acknowledged data is gone —
  // leptonctl fsck exits nonzero on it.
  static FsckReport fsck(const std::string& root, std::string* err);

 private:
  friend class Scrubber;
  struct Entry {
    StorageKind kind;
    std::string md5_hex;
    std::uint64_t size;
  };

  DurableStore(DurableStoreConfig cfg);

  bool recover(std::string* err);
  // Shared read path under get()/get_object(): index lookup, payload read,
  // md5 verify (mismatch quarantines). False = key unknown.
  bool load_object(std::string_view key, StoredObject* obj,
                   util::ExitCode* code, std::string* message);
  DurablePutStats commit(std::string_view key, StorageKind kind,
                         std::span<const std::uint8_t> payload,
                         const std::string& md5_hex, const PutStats& codec);
  bool append_journal_locked(const std::string& record, int* io_err);
  // Moves objects/<aa>/<name> into quarantine/<name>.<seq> with a reason
  // line, probing <seq> past any name an earlier run already used. Never
  // deletes or overwrites bytes. Returns false if the move itself failed
  // (file stays).
  bool quarantine_file(const std::string& rel_dir, const std::string& name,
                       const std::string& reason);
  void drop_keys_with_md5_locked(const std::string& md5_hex);
  std::string object_dir(const std::string& md5_hex) const;
  std::string object_path(const std::string& md5_hex) const;

  // Scrubber interface (scrubber.h drives these).
  struct ScrubItem {
    std::string md5_hex;
    StorageKind kind;
    std::uint64_t size;
  };
  std::vector<ScrubItem> scrub_snapshot() const;
  // Re-reads + md5-verifies one object (decode spot-check optional).
  // Returns bytes read; corrupt objects are quarantined and tallied.
  std::uint64_t scrub_verify_object(const ScrubItem& item, bool decode_check);
  void scrub_verify_journal();

  DurableStoreConfig cfg_;
  TransparentStore codec_store_;
  mutable std::mutex mu_;  // index + journal fd + counters
  std::map<std::string, Entry, std::less<>> index_;
  int journal_fd_ = -1;
  std::uint64_t journal_len_ = 0;  // last known record boundary
  // Set when a failed append could not be truncated back to a record
  // boundary: further appends would corrupt the next record, so puts on
  // this handle fail (kIoError) until the store is reopened.
  bool journal_poisoned_ = false;
  std::size_t journal_unsynced_ = 0;
  std::uint64_t temp_seq_ = 0;
  std::uint64_t quarantine_seq_ = 0;
  DurableStoreStats stats_;
  std::unique_ptr<Scrubber> scrubber_;
};

}  // namespace lepton::storage
