// Minimal discrete-event simulation engine for the deployment studies
// (§5.4-§5.6): a time-ordered event queue with deterministic tie-breaking
// (insertion order) so every simulation replays identically under a seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace lepton::storage {

class EventSim {
 public:
  using Fn = std::function<void()>;

  void at(double t, Fn fn) {
    queue_.push(Event{t, seq_++, std::move(fn)});
  }
  void after(double dt, Fn fn) { at(now_ + dt, std::move(fn)); }
  double now() const { return now_; }

  // Runs events until the queue empties or simulated time passes t_end.
  void run_until(double t_end) {
    while (!queue_.empty() && queue_.top().t <= t_end) {
      Event e = queue_.top();
      queue_.pop();
      now_ = e.t;
      e.fn();
    }
    now_ = t_end;
  }

  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    double t;
    std::uint64_t seq;
    Fn fn;
    bool operator>(const Event& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  double now_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace lepton::storage
