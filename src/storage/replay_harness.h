// The §5 workload-replay harness core (ISSUE 10) — shared by the operator
// driver (examples/workload_replay.cpp) and the trajectory bench
// (bench/micro_sharded.cpp).
//
// Replays millions of simulated object accesses against a ShardedStore:
// a fig11-style backfill ramp ingests every object (content drawn from a
// bounded pool of distinct pre-admitted JPEGs, so the simulated keyspace
// can dwarf the real bytes on disk), then Zipf-skewed reads with fig05
// weekly-shape timestamps hammer get(). Mid-replay drills: a §5.7 SHUTOFF
// engage/clear during backfill (fresh puts must admit as Deflate and read
// back byte-identical), and one shard kill + restart during the read phase
// (reads on the dead shard must classify unavailable — never wrong bytes,
// never a claimed miss — and after recovery every sampled key on that
// shard must read back byte-identical).
//
// Every successful read is verified against the known original bytes, so
// the report's "zero lost or corrupted acked reads" claim is checked per
// access, not sampled.
#pragma once

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "storage/sharded_store.h"
#include "storage/workload.h"

namespace lepton::storage {

struct ReplayHarnessConfig {
  std::string dir;                  // root; shard i lives at dir/shard<i>
  int shards = 4;
  std::uint64_t objects = 1'000'000;
  std::uint64_t reads = 1'200'000;
  std::size_t pool = 4096;          // distinct JPEG contents
  std::size_t min_obj_bytes = 8u << 10;
  std::size_t max_obj_bytes = 24u << 10;
  std::size_t cache_mb = 48;        // decoded-output budget; 0 = no cache
  double zipf_s = 0.99;
  std::uint64_t seed = 11945;       // arXiv:1912.11145
  bool shutoff_drill = true;        // at 50% of backfill
  bool kill_restart = true;         // kill at 30% of reads, restart at 60%
  std::uint64_t restart_verify_sample = 2000;  // keys re-read after recovery
  std::uint64_t uncached_sample = 20000;       // baseline reads, cache off
  bool progress = false;            // chatty phase logging to stderr
};

struct ReplayReport {
  // Volume.
  std::uint64_t accesses = 0;  // puts issued + gets issued
  std::uint64_t backfill_keys = 0;
  std::uint64_t reads_issued = 0;
  // Read outcomes.
  std::uint64_t reads_ok = 0;
  std::uint64_t reads_unavailable = 0;  // routed to the killed shard
  std::uint64_t reads_failed = 0;       // acked key unserveable — data loss
  std::uint64_t reads_corrupt = 0;      // wrong bytes served — never allowed
  std::uint64_t lost_after_restart = 0;
  std::uint64_t backfill_failures = 0;
  // Drills.
  int killed_shard = -1;
  std::uint64_t shutoff_deflate_puts = 0;
  // Rates.
  double backfill_s = 0;
  double backfill_keys_per_s = 0;
  double read_s = 0;
  double read_MB = 0;
  double cached_MBps = 0;    // effective read rate through the cache
  double uncached_MBps = 0;  // baseline sample with the cache disabled
  double cache_speedup = 0;  // cached_MBps / uncached_MBps
  double hit_rate = 0;       // cache hits / cache gets on the read phase
  DecodeCacheStats cache;
  ShardedStoreStats store;
  bool ok = false;  // zero lost or corrupted acked reads, drills passed
  std::string error;
};

namespace replay_detail {

inline std::string key_name(std::uint64_t object) {
  return "obj" + std::to_string(object);
}

inline double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

inline void note(const ReplayHarnessConfig& hc, const char* fmt, ...) {
  if (!hc.progress) return;
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
}

}  // namespace replay_detail

inline ReplayReport run_replay(const ReplayHarnessConfig& hc) {
  using replay_detail::key_name;
  using replay_detail::note;
  using replay_detail::seconds_since;
  ReplayReport r;

  // ---- content pool: distinct originals, pre-admitted once -------------
  note(hc, "replay: building %zu-object content pool...\n", hc.pool);
  TransparentStore codec;
  util::Rng pool_rng(hc.seed ^ 0x706f6f6cull);  // "pool"
  std::vector<std::vector<std::uint8_t>> originals(hc.pool);
  std::vector<StoredObject> admitted(hc.pool);
  for (std::size_t i = 0; i < hc.pool; ++i) {
    std::size_t span = hc.max_obj_bytes - hc.min_obj_bytes + 1;
    std::size_t size = hc.min_obj_bytes + pool_rng.below(span);
    originals[i] = corpus::jpeg_of_size(size, hc.seed + i);
    admitted[i] = codec.put({originals[i].data(), originals[i].size()});
  }

  // ---- sharded store ---------------------------------------------------
  ShardedStoreConfig sc;
  for (int i = 0; i < hc.shards; ++i) {
    ShardBackendConfig sh;
    sh.name = "shard" + std::to_string(i);
    sh.root = hc.dir + "/shard" + std::to_string(i);
    sc.shards.push_back(std::move(sh));
  }
  // Simulated-object mode: millions of journal appends, so no per-put
  // barriers — the kill drill is loss of the backend process, not of the
  // machine (power-loss crash safety is PR 9's harness).
  sc.fsync = FsyncMode::kNone;
  sc.decode_cache_bytes = hc.cache_mb << 20;
  std::string err;
  auto store = ShardedStore::open(sc, &err);
  if (store == nullptr) {
    r.error = "open: " + err;
    return r;
  }

  // ---- backfill (fig11 ramp) ------------------------------------------
  ReplayConfig rc;
  rc.objects = hc.objects;
  rc.reads = hc.reads;
  rc.zipf_s = hc.zipf_s;
  rc.seed = hc.seed;
  ReplayGen gen(rc);
  ReplayOp op;
  const std::uint64_t drill_at = hc.objects / 2;
  auto t0 = std::chrono::steady_clock::now();
  note(hc, "replay: backfilling %llu keys across %d shards...\n",
       static_cast<unsigned long long>(hc.objects), hc.shards);
  while (gen.next(&op) && op.kind == ReplayOp::Kind::kPut) {
    ++r.accesses;
    ++r.backfill_keys;
    const auto& obj = admitted[op.object % hc.pool];
    auto ps = store->put_object(key_name(op.object), obj);
    if (!ps.durable.acknowledged) ++r.backfill_failures;
    if (hc.shutoff_drill && r.backfill_keys == drill_at) {
      // §5.7 drill: engage fleet-wide, prove fresh conversions degrade to
      // Deflate (never fail), read them back, clear.
      note(hc, "replay: SHUTOFF drill at 50%% of backfill\n");
      store->set_shutoff(true);
      for (int d = 0; d < 8; ++d) {
        const auto& orig = originals[static_cast<std::size_t>(d) % hc.pool];
        auto dps = store->put("drill" + std::to_string(d),
                              {orig.data(), orig.size()});
        if (dps.durable.acknowledged &&
            dps.durable.kind == StorageKind::kDeflate) {
          Result res;
          if (store->get("drill" + std::to_string(d), &res) && res.ok() &&
              res.data == orig) {
            ++r.shutoff_deflate_puts;
          }
        }
      }
      store->set_shutoff(false);
    }
    if (r.backfill_keys == hc.objects) break;  // gen switches to reads next
  }
  r.backfill_s = seconds_since(t0);
  r.backfill_keys_per_s =
      r.backfill_s > 0 ? static_cast<double>(r.backfill_keys) / r.backfill_s
                       : 0;

  // ---- Zipf read phase (fig05 shape), kill/restart mid-stream ----------
  const int kill_shard = hc.shards > 1 ? 1 : -1;
  const std::uint64_t kill_at = hc.reads * 3 / 10;
  const std::uint64_t restart_at = hc.reads * 6 / 10;
  double read_bytes = 0;
  note(hc, "replay: %llu Zipf reads (s=%.2f)...\n",
       static_cast<unsigned long long>(hc.reads), hc.zipf_s);
  t0 = std::chrono::steady_clock::now();
  // The first op of this phase was already drawn by the loop above unless
  // the backfill count broke exactly at the boundary; handle both.
  bool have_op = op.kind == ReplayOp::Kind::kGet;
  while (have_op || gen.next(&op)) {
    have_op = false;
    if (op.kind != ReplayOp::Kind::kGet) continue;
    ++r.accesses;
    ++r.reads_issued;
    if (hc.kill_restart && kill_shard >= 0 && r.reads_issued == kill_at) {
      note(hc, "replay: killing shard %d at 30%% of reads\n", kill_shard);
      store->kill_shard(kill_shard);
      r.killed_shard = kill_shard;
    }
    if (hc.kill_restart && kill_shard >= 0 && r.reads_issued == restart_at) {
      note(hc, "replay: restarting shard %d at 60%% of reads\n", kill_shard);
      std::string rerr;
      if (!store->restart_shard(kill_shard, &rerr)) {
        r.error = "restart: " + rerr;
        return r;
      }
      // Recovery audit: a sample of the recovered shard's keys must read
      // back byte-identical to the originals they were acked with.
      auto keys = store->shard_keys(kill_shard);
      std::uint64_t checked = 0;
      for (const auto& k : keys) {
        if (checked >= hc.restart_verify_sample) break;
        if (k.rfind("obj", 0) != 0) continue;
        std::uint64_t id = std::strtoull(k.c_str() + 3, nullptr, 10);
        Result res;
        if (!store->get(k, &res) || !res.ok() ||
            res.data != originals[id % hc.pool]) {
          ++r.lost_after_restart;
        }
        ++checked;
      }
      note(hc, "replay: recovery audit over %llu keys, %llu lost\n",
           static_cast<unsigned long long>(checked),
           static_cast<unsigned long long>(r.lost_after_restart));
    }
    Result res;
    ShardedGetStats gs;
    bool found = store->get(key_name(op.object), &res, &gs);
    if (!found) {
      // Every object was acked during backfill; a claimed miss is loss.
      ++r.reads_failed;
    } else if (res.code == util::ExitCode::kServerShutdown) {
      ++r.reads_unavailable;
    } else if (!res.ok()) {
      ++r.reads_failed;
    } else {
      if (res.data != originals[op.object % hc.pool]) {
        ++r.reads_corrupt;
      } else {
        ++r.reads_ok;
        read_bytes += static_cast<double>(res.data.size());
      }
    }
  }
  r.read_s = seconds_since(t0);
  r.read_MB = read_bytes / (1 << 20);
  r.cached_MBps = r.read_s > 0 ? r.read_MB / r.read_s : 0;
  r.cache = store->cache() != nullptr ? store->cache()->stats()
                                      : DecodeCacheStats{};
  if (r.cache.gets > 0) {
    r.hit_rate = static_cast<double>(r.cache.hits) /
                 static_cast<double>(r.cache.gets);
  }
  r.store = store->stats();

  // ---- uncached baseline ----------------------------------------------
  // Same roots, cache disabled, a fresh Zipf stream: every read pays the
  // full decode. Reopen runs recovery on every shard first.
  if (hc.uncached_sample > 0) {
    note(hc, "replay: uncached baseline over %llu reads...\n",
         static_cast<unsigned long long>(hc.uncached_sample));
    store.reset();
    ShardedStoreConfig sc2 = sc;
    sc2.decode_cache_bytes = 0;
    auto bare = ShardedStore::open(sc2, &err);
    if (bare == nullptr) {
      r.error = "uncached reopen: " + err;
      return r;
    }
    ZipfSampler zipf(hc.objects, hc.zipf_s);
    util::Rng rng(hc.seed ^ 0x62617265ull);  // "bare"
    double bytes = 0;
    t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < hc.uncached_sample; ++i) {
      std::uint64_t object = zipf.sample(rng);
      Result res;
      if (!bare->get(key_name(object), &res) || !res.ok()) {
        ++r.reads_failed;
        continue;
      }
      if (res.data != originals[object % hc.pool]) {
        ++r.reads_corrupt;
        continue;
      }
      bytes += static_cast<double>(res.data.size());
    }
    double s = seconds_since(t0);
    r.uncached_MBps = s > 0 ? bytes / (1 << 20) / s : 0;
  }
  if (r.uncached_MBps > 0) r.cache_speedup = r.cached_MBps / r.uncached_MBps;

  r.ok = r.reads_corrupt == 0 && r.reads_failed == 0 &&
         r.lost_after_restart == 0 && r.backfill_failures == 0 &&
         (!hc.shutoff_drill || r.shutoff_deflate_puts == 8) &&
         (!hc.kill_restart || hc.shards < 2 || r.killed_shard >= 0);
  return r;
}

}  // namespace lepton::storage
