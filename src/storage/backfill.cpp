#include "storage/backfill.h"

#include <cmath>

namespace lepton::storage {

std::vector<BackfillSample> simulate_backfill_day(const BackfillConfig& cfg,
                                                  double outage_start_h,
                                                  double outage_end_h,
                                                  double hours) {
  util::Rng rng(cfg.seed);
  std::vector<BackfillSample> out;
  const double step_h = 0.1;  // 6-minute samples, like the paper's plot
  for (double h = 0; h < hours; h += step_h) {
    BackfillSample s;
    s.hour = h;
    s.backfill_active = !(h >= outage_start_h && h < outage_end_h);
    // Ramp-down/up takes a few samples (machines drain their queues).
    double ramp = 1.0;
    if (!s.backfill_active) {
      ramp = 0.0;
    } else if (h >= outage_end_h && h < outage_end_h + 0.5) {
      ramp = (h - outage_end_h) / 0.5;  // DropSpot re-allocates machines
    }
    double noise = rng.normal(0, 0.015);
    s.compressions_per_s = cfg.chunks_per_second * ramp * (1.0 + noise);
    if (s.compressions_per_s < 0) s.compressions_per_s = 0;
    s.power_kw = cfg.base_power_kw +
                 cfg.backfill_power_kw * ramp * (1.0 + rng.normal(0, 0.01)) +
                 3.0 * std::sin(h / 3.0);  // ambient fleet wobble
    out.push_back(s);
  }
  return out;
}

CostModel compute_cost_model(const BackfillConfig& cfg) {
  CostModel m;
  // Conversions per kWh: chunks/s over cluster kW (§5.6.1 includes the
  // three verification decodes in the power envelope).
  double conversions_per_hour = cfg.chunks_per_second * 3600.0;
  m.conversions_per_kwh = conversions_per_hour / cfg.cluster_power_kw;
  // Each conversion saves savings_fraction of an avg_image_mb image.
  double gib_saved_per_conversion =
      cfg.avg_image_mb * 1e6 * cfg.savings_fraction / (1024.0 * 1024 * 1024);
  m.gib_saved_per_kwh = m.conversions_per_kwh * gib_saved_per_conversion;
  // Break-even electricity price vs a depowered 5 TB disk at $120
  // (paper's thought experiment): price where 1 kWh = saved bytes' cost.
  double disk_usd_per_gib = 120.0 / (5000.0 * 1e9 / (1024.0 * 1024 * 1024));
  m.breakeven_kwh_price_depowered_disk = m.gib_saved_per_kwh * disk_usd_per_gib;
  // Per-server-year figures.
  double images_per_s = cfg.chunks_per_second / cfg.machines;
  m.images_per_server_year = images_per_s * 3600 * 24 * 365;
  m.tib_saved_per_server_year = m.images_per_server_year * cfg.avg_image_mb *
                                1e6 * cfg.savings_fraction /
                                (1024.0 * 1024 * 1024 * 1024);
  // S3 Infrequent Access (Feb 2017): $0.0125/GiB-month.
  m.s3_ia_cost_per_server_year_usd =
      m.tib_saved_per_server_year * 1024.0 * 0.0125 * 12.0;
  return m;
}

}  // namespace lepton::storage
