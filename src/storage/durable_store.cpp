#include "storage/durable_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "lepton/context.h"
#include "storage/scrubber.h"
#include "util/fileio.h"
#include "util/md5.h"

namespace lepton::storage {
namespace fio = util::fileio;

namespace {

constexpr char kJournalName[] = "journal";
constexpr char kObjectsDir[] = "objects";
constexpr char kQuarantineDir[] = "quarantine";
constexpr char kReasonsLog[] = "quarantine/reasons.log";
constexpr char kTempPrefix[] = ".tmp.";

// FNV-1a over the record prefix: any bit flip anywhere in a journal line —
// key, kind, md5, size or the checksum itself — fails validation, so a
// corrupted record is rejected (and its object quarantined as an orphan)
// instead of trusted.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string to_hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// Keys are operator-visible strings; the journal is line/space delimited,
// so space, '%', and control bytes are %XX-escaped.
std::string escape_key(std::string_view key) {
  std::string out;
  out.reserve(key.size());
  for (char c : key) {
    auto u = static_cast<unsigned char>(c);
    if (u <= 0x20 || u == 0x7f || c == '%') {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%%%02x", u);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

bool unescape_key(std::string_view in, std::string* out) {
  out->clear();
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '%') {
      out->push_back(in[i]);
      continue;
    }
    if (i + 2 >= in.size() || !std::isxdigit(static_cast<unsigned char>(in[i + 1])) ||
        !std::isxdigit(static_cast<unsigned char>(in[i + 2]))) {
      return false;
    }
    out->push_back(static_cast<char>(
        std::stoi(std::string(in.substr(i + 1, 2)), nullptr, 16)));
    i += 2;
  }
  return true;
}

bool is_md5_hex(std::string_view s) {
  if (s.size() != 32) return false;
  return std::all_of(s.begin(), s.end(), [](char c) {
    return std::isxdigit(static_cast<unsigned char>(c)) &&
           !std::isupper(static_cast<unsigned char>(c));
  });
}

struct JournalRecord {
  std::string key;
  StorageKind kind;
  std::string md5_hex;
  std::uint64_t size;
};

std::string format_record(const JournalRecord& r) {
  std::string body = "put " + escape_key(r.key) + ' ' +
                     std::string(storage_kind_name(r.kind)) + ' ' + r.md5_hex +
                     ' ' + std::to_string(r.size);
  return body + ' ' + to_hex64(fnv1a(body)) + '\n';
}

// Strict parse + checksum validation of one complete line (no newline).
bool parse_record(std::string_view line, JournalRecord* out) {
  std::size_t chk_at = line.find_last_of(' ');
  if (chk_at == std::string::npos) return false;
  std::string_view chk = line.substr(chk_at + 1);
  if (chk.size() != 16 || to_hex64(fnv1a(line.substr(0, chk_at))) != chk) {
    return false;
  }
  std::vector<std::string_view> f;
  std::size_t pos = 0;
  while (pos <= chk_at) {
    std::size_t sp = line.find(' ', pos);
    if (sp == std::string::npos || sp > chk_at) sp = chk_at;
    f.push_back(line.substr(pos, sp - pos));
    pos = sp + 1;
  }
  if (f.size() != 5 || f[0] != "put") return false;
  if (!unescape_key(f[1], &out->key)) return false;
  if (!parse_storage_kind(f[2], &out->kind)) return false;
  if (!is_md5_hex(f[3])) return false;
  out->md5_hex = f[3];
  char* end = nullptr;
  std::string size_s(f[4]);
  unsigned long long sz = std::strtoull(size_s.c_str(), &end, 10);
  if (end == size_s.c_str() || *end != '\0') return false;
  out->size = sz;
  return true;
}

bool file_size(const std::string& path, std::uint64_t* out) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) return false;
  *out = static_cast<std::uint64_t>(st.st_size);
  return true;
}

// Raw (unrouted) append for the quarantine reason log — repair-side I/O
// must keep working while a chaos schedule is armed against the commit
// path.
void append_reason(const std::string& root, const std::string& line) {
  int fd = ::open((root + "/" + kReasonsLog).c_str(),
                  O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return;
  ssize_t ignored = ::write(fd, line.data(), line.size());
  (void)ignored;
  ::close(fd);
}

}  // namespace

DurableStore::DurableStore(DurableStoreConfig cfg)
    : cfg_(std::move(cfg)), codec_store_(cfg_.encode) {}

DurableStore::~DurableStore() {
  stop_scrubber();
  std::lock_guard<std::mutex> lk(mu_);
  if (journal_fd_ >= 0) {
    if (cfg_.fsync != FsyncMode::kNone && journal_unsynced_ > 0) {
      ::fsync(journal_fd_);
    }
    ::close(journal_fd_);
  }
}

std::unique_ptr<DurableStore> DurableStore::open(DurableStoreConfig cfg,
                                                 std::string* err) {
  if (cfg.root.empty()) {
    if (err != nullptr) *err = "durable store root is empty";
    return nullptr;
  }
  std::unique_ptr<DurableStore> s(new DurableStore(std::move(cfg)));
  if (!s->recover(err)) return nullptr;
  return s;
}

std::string DurableStore::object_dir(const std::string& md5_hex) const {
  return cfg_.root + "/" + kObjectsDir + "/" + md5_hex.substr(0, 2);
}

std::string DurableStore::object_path(const std::string& md5_hex) const {
  return object_dir(md5_hex) + "/" + md5_hex;
}

bool DurableStore::quarantine_file(const std::string& rel_dir,
                                   const std::string& name,
                                   const std::string& reason) {
  std::string from = cfg_.root + "/" + rel_dir + "/" + name;
  // The sequence restarts at 0 on every open and rename() overwrites an
  // existing destination, so probe until a name no other run has used —
  // "bytes are NEVER deleted" includes bytes a previous run preserved.
  std::string to;
  do {
    to = cfg_.root + "/" + kQuarantineDir + "/" + name + "." +
         std::to_string(quarantine_seq_++);
  } while (::access(to.c_str(), F_OK) == 0);
  // Raw rename: quarantine is repair-side and must not be injectable.
  if (::rename(from.c_str(), to.c_str()) != 0) return false;
  append_reason(cfg_.root, name + " <- " + rel_dir + ": " + reason + "\n");
  return true;
}

bool DurableStore::recover(std::string* err) {
  auto fail = [&](const std::string& what) {
    if (err != nullptr) *err = what;
    return false;
  };
  for (const char* sub : {"", kObjectsDir, kQuarantineDir}) {
    std::string d = cfg_.root + (sub[0] != '\0' ? std::string("/") + sub : "");
    if (!fio::make_dirs(d)) return fail("cannot create " + d);
  }

  RecoveryReport rep;

  // 1. Journal → candidate records. Complete, checksum-valid lines only: a
  //    torn tail (crash mid-append) is dropped silently — that commit was
  //    never acknowledged; a bad line mid-file is counted as corruption.
  std::string jpath = cfg_.root + "/" + kJournalName;
  std::vector<JournalRecord> records;
  {
    std::vector<std::uint8_t> raw;
    if (fio::read_file(jpath, &raw)) {
      std::string_view text(reinterpret_cast<const char*>(raw.data()),
                            raw.size());
      std::size_t pos = 0;
      while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) {
          ++rep.journal_torn_tail;
          break;
        }
        JournalRecord r;
        if (parse_record(text.substr(pos, nl - pos), &r)) {
          records.push_back(std::move(r));
        } else {
          ++rep.journal_bad_records;
        }
        pos = nl + 1;
      }
    }
  }

  // Last record per key wins; track which md5s are referenced.
  std::map<std::string, Entry, std::less<>> index;
  for (const JournalRecord& r : records) {
    index[r.key] = Entry{r.kind, r.md5_hex, r.size};
  }
  std::map<std::string, std::vector<std::string>> md5_keys;
  for (const auto& [key, e] : index) md5_keys[e.md5_hex].push_back(key);

  // 2. Sweep the fanout: temps → quarantine, unreferenced → quarantine,
  //    referenced → verify size (+ md5 when configured).
  std::string objects_root = cfg_.root + "/" + kObjectsDir;
  for (const std::string& fan : fio::list_dirs(objects_root)) {
    for (const std::string& name : fio::list_files(objects_root + "/" + fan)) {
      std::string rel = std::string(kObjectsDir) + "/" + fan;
      if (name.rfind(kTempPrefix, 0) == 0) {
        if (quarantine_file(rel, name, "torn/partial commit (temp file)")) {
          ++rep.temps_quarantined;
        }
        continue;
      }
      auto it = md5_keys.find(name);
      if (it == md5_keys.end()) {
        // Present on disk, never acknowledged (the crash landed between
        // rename and journal append) — or its journal record was corrupted.
        if (quarantine_file(rel, name, "orphaned (no valid journal record)")) {
          ++rep.orphans_quarantined;
        }
        continue;
      }
      std::string path = objects_root + "/" + fan + "/" + name;
      std::uint64_t sz = 0;
      bool good = file_size(path, &sz);
      std::uint64_t want = index[it->second.front()].size;
      if (good && sz != want) good = false;
      if (good && cfg_.verify_md5_on_open) {
        std::vector<std::uint8_t> bytes;
        good = fio::read_file(path, &bytes) &&
               util::Md5::hex_digest({bytes.data(), bytes.size()}) == name;
      }
      if (!good) {
        if (quarantine_file(rel, name, "payload mismatch at recovery "
                                       "(size or md5 vs journal)")) {
          ++rep.corrupt_quarantined;
        }
        rep.keys_lost += it->second.size();
        for (const std::string& k : it->second) index.erase(k);
        md5_keys.erase(it);
        continue;
      }
    }
  }
  // Journal entries whose object file is missing entirely: acknowledged
  // data that is simply gone — loss.
  for (auto it = index.begin(); it != index.end();) {
    std::uint64_t sz = 0;
    if (!file_size(object_path(it->second.md5_hex), &sz)) {
      ++rep.keys_lost;
      it = index.erase(it);
    } else {
      ++it;
    }
  }
  {
    std::map<std::string, bool> live_md5;
    for (const auto& [key, e] : index) live_md5[e.md5_hex] = true;
    rep.objects_live = live_md5.size();
  }
  rep.keys_live = index.size();

  // 3. Rewrite the journal compacted (atomic, raw-side barriers): drops
  //    torn tails, bad records, and superseded entries in one pass.
  {
    std::string body;
    for (const auto& [key, e] : index) {
      body += format_record({key, e.kind, e.md5_hex, e.size});
    }
    // Unrouted atomic write: recovery must succeed under an armed schedule.
    std::string tmp = jpath + ".compact";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (fd < 0) return fail("cannot write journal at " + jpath);
    const char* p = body.data();
    std::size_t n = body.size();
    while (n > 0) {
      ssize_t w = ::write(fd, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return fail("journal rewrite failed at " + jpath);
      }
      p += w;
      n -= static_cast<std::size_t>(w);
    }
    if (cfg_.fsync != FsyncMode::kNone) ::fsync(fd);
    ::close(fd);
    if (::rename(tmp.c_str(), jpath.c_str()) != 0) {
      return fail("journal rewrite rename failed at " + jpath);
    }
  }

  int jfd = ::open(jpath.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (jfd < 0) return fail("cannot reopen journal at " + jpath);

  std::lock_guard<std::mutex> lk(mu_);
  index_ = std::move(index);
  journal_fd_ = jfd;
  journal_len_ = 0;
  {
    off_t end = ::lseek(jfd, 0, SEEK_END);
    if (end > 0) journal_len_ = static_cast<std::uint64_t>(end);
  }
  journal_poisoned_ = false;
  journal_unsynced_ = 0;
  stats_.recovery = rep;
  return true;
}

bool DurableStore::append_journal_locked(const std::string& record,
                                         int* io_err) {
  fio::IoStatus st = fio::write_all(
      journal_fd_,
      {reinterpret_cast<const std::uint8_t*>(record.data()), record.size()});
  if (!st.ok()) {
    // A failed append may have landed a partial record. Mid-file (unlike a
    // crash, where the torn bytes are the tail and recovery drops them) the
    // partial would glue onto the NEXT append and corrupt that record's
    // line — losing a later acknowledged key. Restore the record boundary.
    // Raw ftruncate: repair-side, not injectable.
    if (::ftruncate(journal_fd_, static_cast<off_t>(journal_len_)) != 0) {
      // Cannot restore the boundary: the journal may corrupt the next
      // append, so stop accepting puts on this handle.
      journal_poisoned_ = true;
    }
    *io_err = st.err;
    return false;
  }
  journal_len_ += record.size();
  switch (cfg_.fsync) {
    case FsyncMode::kAlways:
      break;  // fsync below
    case FsyncMode::kBatch:
      if (++journal_unsynced_ < cfg_.batch_puts) return true;
      break;
    case FsyncMode::kNone:
      return true;
  }
  st = fio::sync_fd(journal_fd_);
  if (!st.ok()) {
    *io_err = st.err;
    return false;
  }
  journal_unsynced_ = 0;
  return true;
}

DurablePutStats DurableStore::commit(std::string_view key, StorageKind kind,
                                     std::span<const std::uint8_t> payload,
                                     const std::string& md5_hex,
                                     const PutStats& codec) {
  DurablePutStats out;
  out.kind = kind;
  out.md5_hex = md5_hex;
  out.bytes_stored = payload.size();
  out.codec = codec;

  auto fail = [&](int err) -> DurablePutStats& {
    out.code = fio::classify_io_errno(err);
    std::lock_guard<std::mutex> lk(mu_);
    if (out.code == util::ExitCode::kDiskFull) {
      ++stats_.puts_failed_disk_full;
    } else {
      ++stats_.puts_failed_io_error;
    }
    return out;
  };

  std::string dir = object_dir(md5_hex);
  std::string final_path = object_path(md5_hex);

  // Content-address dedup: the payload may already be committed (possibly
  // under another key); only the journal record is new then. Probe via an
  // opened fd + fstat, not stat-by-path, so the hit is pinned to a real
  // inode rather than a name a concurrent rename could retarget.
  bool have_object = false;
  {
    int rfd = ::open(final_path.c_str(), O_RDONLY | O_CLOEXEC);
    if (rfd >= 0) {
      struct stat st{};
      have_object = ::fstat(rfd, &st) == 0 && S_ISREG(st.st_mode) &&
                    static_cast<std::uint64_t>(st.st_size) == payload.size();
      ::close(rfd);
    }
  }
  if (have_object) {
    // The existing publish may not be durable yet: a prior put can have
    // renamed the object and then failed (or not yet reached) the
    // directory barrier. Acknowledging against it without re-issuing the
    // barrier would journal a key whose rename can vanish on power loss.
    if (cfg_.fsync != FsyncMode::kNone) {
      fio::IoStatus st = fio::sync_dir(dir);
      if (!st.ok()) return fail(st.err);
    }
  } else {
    if (!fio::make_dirs(dir)) return fail(EIO);
    std::uint64_t seq;
    {
      std::lock_guard<std::mutex> lk(mu_);
      seq = temp_seq_++;
    }
    // Temp name carries pid+seq: concurrent puts of the same content and
    // temps from a crashed predecessor can never collide.
    std::string tmp = dir + "/" + kTempPrefix + md5_hex + "." +
                      std::to_string(::getpid()) + "." + std::to_string(seq);
    int fd = -1;
    fio::IoStatus st = fio::create_excl(tmp, &fd);
    if (!st.ok()) return fail(st.err);
    st = fio::write_all(fd, payload);
    if (st.ok() && cfg_.fsync != FsyncMode::kNone) st = fio::sync_fd(fd);
    ::close(fd);
    if (st.ok()) st = fio::rename_path(tmp, final_path);
    if (!st.ok()) {
      // No temp-file litter behind a failed put. The unlink itself is a
      // failpoint site — when it too fails (or we crashed before reaching
      // it), the startup sweep quarantines the leftover.
      fio::unlink_path(tmp);
      return fail(st.err);
    }
    if (cfg_.fsync != FsyncMode::kNone) {
      st = fio::sync_dir(dir);
      if (!st.ok()) return fail(st.err);
    }
  }

  std::string record = format_record(
      {std::string(key), kind, md5_hex, payload.size()});
  {
    std::lock_guard<std::mutex> lk(mu_);
    int io_err = 0;
    if (journal_poisoned_) {
      ++stats_.puts_failed_io_error;
      out.code = util::ExitCode::kIoError;
      return out;
    }
    if (!append_journal_locked(record, &io_err)) {
      // The object file exists but the key was never acknowledged; the
      // orphan sweep reclaims it on the next open unless another key
      // shares the content.
      out.code = fio::classify_io_errno(io_err);
      if (out.code == util::ExitCode::kDiskFull) {
        ++stats_.puts_failed_disk_full;
      } else {
        ++stats_.puts_failed_io_error;
      }
      return out;
    }
    index_[std::string(key)] = Entry{kind, md5_hex, payload.size()};
    ++stats_.puts_acknowledged;
    if (have_object) {
      out.deduplicated = true;
      ++stats_.puts_deduplicated;
    }
  }
  out.acknowledged = true;
  out.code = util::ExitCode::kSuccess;
  return out;
}

DurablePutStats DurableStore::put(std::string_view key,
                                  std::span<const std::uint8_t> file) {
  PutStats ps;
  StoredObject obj = codec_store_.put(file, &ps);
  return commit(key, obj.kind, {obj.payload.data(), obj.payload.size()},
                obj.md5_hex, ps);
}

DurablePutStats DurableStore::put_object(std::string_view key,
                                         const StoredObject& obj) {
  PutStats ps;
  ps.bytes_in = obj.payload.size();
  ps.bytes_out = obj.payload.size();
  return commit(key, obj.kind, {obj.payload.data(), obj.payload.size()},
                obj.md5_hex, ps);
}

bool DurableStore::load_object(std::string_view key, StoredObject* obj,
                               util::ExitCode* code, std::string* message) {
  Entry e;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    e = it->second;
    ++stats_.gets;
  }
  obj->kind = e.kind;
  obj->md5_hex = e.md5_hex;
  if (!fio::read_file(object_path(e.md5_hex), &obj->payload)) {
    // A failed open/read is not evidence of corruption — fd exhaustion or
    // a transient EIO can fail the read while the bytes on disk are
    // perfectly healthy. Leave the object and the index alone so the key
    // stays retryable; only a verified md5 mismatch may quarantine.
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.get_read_errors;
    *code = util::ExitCode::kIoError;
    *message = "stored object could not be read; retryable";
    return true;
  }
  if (util::Md5::hex_digest({obj->payload.data(), obj->payload.size()}) !=
      e.md5_hex) {
    // Never serve corrupt bytes: quarantine now, report the loss.
    std::lock_guard<std::mutex> lk(mu_);
    if (quarantine_file(std::string(kObjectsDir) + "/" + e.md5_hex.substr(0, 2),
                        e.md5_hex, "md5 mismatch on get()")) {
    }
    drop_keys_with_md5_locked(e.md5_hex);
    ++stats_.get_corrupt_quarantined;
    *code = util::ExitCode::kIoError;
    *message = "stored object failed integrity check; quarantined";
    return true;
  }
  *code = util::ExitCode::kSuccess;
  return true;
}

bool DurableStore::get(std::string_view key, Result* out) {
  StoredObject obj;
  util::ExitCode code = util::ExitCode::kSuccess;
  std::string message;
  if (!load_object(key, &obj, &code, &message)) return false;
  if (code != util::ExitCode::kSuccess) {
    out->code = code;
    out->data.clear();
    out->message = std::move(message);
    return true;
  }
  // The codec-layer get re-checks md5 (cheap, and preserves the §5.7
  // posture that consumption facts are part of correctness for kLepton).
  *out = codec_store_.get(obj);
  return true;
}

bool DurableStore::get_object(std::string_view key, StoredObject* out,
                              util::ExitCode* code) {
  util::ExitCode c = util::ExitCode::kSuccess;
  std::string message;
  if (!load_object(key, out, &c, &message)) return false;
  if (code != nullptr) *code = c;
  return true;
}

bool DurableStore::lookup(std::string_view key, StorageKind* kind,
                          std::string* md5_hex, std::uint64_t* size) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  if (kind != nullptr) *kind = it->second.kind;
  if (md5_hex != nullptr) *md5_hex = it->second.md5_hex;
  if (size != nullptr) *size = it->second.size;
  return true;
}

void DurableStore::drop_keys_with_md5_locked(const std::string& md5_hex) {
  for (auto it = index_.begin(); it != index_.end();) {
    if (it->second.md5_hex == md5_hex) {
      it = index_.erase(it);
    } else {
      ++it;
    }
  }
}

bool DurableStore::contains(std::string_view key) const {
  std::lock_guard<std::mutex> lk(mu_);
  return index_.find(key) != index_.end();
}

std::vector<std::string> DurableStore::keys() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(index_.size());
  for (const auto& [k, e] : index_) out.push_back(k);
  return out;
}

std::size_t DurableStore::key_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return index_.size();
}

bool DurableStore::sync() {
  std::lock_guard<std::mutex> lk(mu_);
  if (journal_fd_ < 0 || journal_unsynced_ == 0) return true;
  // Group commit is part of the commit path, so the barrier is routed
  // (injectable). On failure the records stay pending — the next batch,
  // an explicit retry, or close retries them — and the caller hears about
  // it instead of trusting a sync that never happened.
  if (!fio::sync_fd(journal_fd_).ok()) return false;
  journal_unsynced_ = 0;
  return true;
}

DurableStoreStats DurableStore::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::vector<DurableStore::ScrubItem> DurableStore::scrub_snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, ScrubItem> by_md5;
  for (const auto& [key, e] : index_) {
    by_md5[e.md5_hex] = ScrubItem{e.md5_hex, e.kind, e.size};
  }
  std::vector<ScrubItem> out;
  out.reserve(by_md5.size());
  for (auto& [md5, item] : by_md5) out.push_back(std::move(item));
  return out;
}

std::uint64_t DurableStore::scrub_verify_object(const ScrubItem& item,
                                                bool decode_check) {
  std::vector<std::uint8_t> bytes;
  if (!fio::read_file(object_path(item.md5_hex), &bytes)) {
    // Same rule as get(): a failed read proves nothing about the bytes on
    // disk. Count it and move on — the next pass (or a get) retries; only
    // a verified mismatch of successfully-read bytes may quarantine.
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.scrub_objects_checked;
    ++stats_.scrub_read_errors;
    return 0;
  }
  bool good = bytes.size() == item.size &&
              util::Md5::hex_digest({bytes.data(), bytes.size()}) ==
                  item.md5_hex;
  bool decode_ok = true;
  if (good && decode_check && item.kind == StorageKind::kLepton) {
    // Decode spot-check: the container must still decode cleanly with its
    // payload exactly consumed — the §5.7 facts get() would require.
    VectorSink sink;
    DecodeStats ds;
    util::ExitCode code = decode_lepton({bytes.data(), bytes.size()}, sink, {},
                                        default_context(), &ds);
    decode_ok = code == util::ExitCode::kSuccess && ds.payload_exhausted;
  }
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.scrub_objects_checked;
  stats_.scrub_bytes_read += bytes.size();
  if (decode_check && item.kind == StorageKind::kLepton) {
    ++stats_.scrub_decode_checks;
  }
  if (good && decode_ok) return bytes.size();
  ++stats_.scrub_corrupt_found;
  if (quarantine_file(
          std::string(kObjectsDir) + "/" + item.md5_hex.substr(0, 2),
          item.md5_hex,
          good ? "decode spot-check failed (scrub)" : "md5 mismatch (scrub)")) {
  }
  drop_keys_with_md5_locked(item.md5_hex);
  return bytes.size();
}

void DurableStore::scrub_verify_journal() {
  // Re-read the on-disk journal and checksum-validate every complete
  // record: bit rot in the journal itself must be detected, not trusted.
  std::vector<std::uint8_t> raw;
  if (!fio::read_file(cfg_.root + "/" + kJournalName, &raw)) return;
  std::string_view text(reinterpret_cast<const char*>(raw.data()), raw.size());
  std::uint64_t bad = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) break;  // in-flight append, not corruption
    JournalRecord r;
    if (!parse_record(text.substr(pos, nl - pos), &r)) ++bad;
    pos = nl + 1;
  }
  std::lock_guard<std::mutex> lk(mu_);
  stats_.scrub_journal_bad_records += bad;
}

void DurableStore::start_scrubber(ScrubberConfig cfg) {
  if (scrubber_ != nullptr) return;
  scrubber_ = std::make_unique<Scrubber>(this, cfg);
  scrubber_->start();
}

void DurableStore::stop_scrubber() {
  if (scrubber_ == nullptr) return;
  scrubber_->stop();
  scrubber_.reset();
}

void DurableStore::scrub_pass_now() {
  Scrubber s(this, ScrubberConfig{});
  s.run_pass();
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.scrub_passes;
}

FsckReport DurableStore::fsck(const std::string& root, std::string* err) {
  FsckReport rep;
  DurableStoreConfig cfg;
  cfg.root = root;
  cfg.verify_md5_on_open = true;
  std::unique_ptr<DurableStore> s = open(std::move(cfg), err);
  if (s == nullptr) {
    rep.lost = ~0ull;  // unusable store: report as loss-grade
    return rep;
  }
  DurableStoreStats st = s->stats();
  rep.healthy = st.recovery.objects_live;
  rep.keys = st.recovery.keys_live;
  rep.orphaned = st.recovery.orphans_quarantined;
  rep.quarantined = st.recovery.temps_quarantined +
                    st.recovery.orphans_quarantined +
                    st.recovery.corrupt_quarantined;
  rep.lost = st.recovery.keys_lost;
  return rep;
}

}  // namespace lepton::storage
