#include "storage/decode_cache.h"

#include <cstdio>

namespace lepton::storage {

DecodeCache::DecodeCache(DecodeCacheConfig cfg) : cfg_(cfg) {
  if (cfg_.budget_bytes == 0) cfg_.budget_bytes = 1;  // degenerate but valid
  if (cfg_.max_entry_bytes == 0) {
    cfg_.max_entry_bytes = cfg_.budget_bytes / 4;
    if (cfg_.max_entry_bytes == 0) cfg_.max_entry_bytes = cfg_.budget_bytes;
  }
  stats_.budget_bytes = cfg_.budget_bytes;
}

DecodeCache::Value DecodeCache::get(std::string_view md5_hex) {
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.gets;
  auto it = map_.find(md5_hex);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  // Refresh recency: splice the node to the front; iterators (and the
  // string_view keys into node storage) stay valid.
  lru_.splice(lru_.begin(), lru_, it->second);
  stats_.hit_bytes_served += it->second->value->size();
  return it->second->value;
}

void DecodeCache::put(std::string_view md5_hex, Value value) {
  if (value == nullptr) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (value->size() > cfg_.max_entry_bytes ||
      value->size() > cfg_.budget_bytes) {
    ++stats_.rejected_oversize;
    return;
  }
  auto it = map_.find(md5_hex);
  if (it != map_.end()) {
    // Same content address ⇒ same bytes; just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{std::string(md5_hex), std::move(value)});
  auto node = lru_.begin();
  map_.emplace(std::string_view(node->md5_hex), node);
  stats_.bytes += node->value->size();
  ++stats_.entries;
  ++stats_.insertions;
  evict_to_budget_locked();
}

void DecodeCache::evict_to_budget_locked() {
  while (stats_.bytes > cfg_.budget_bytes && !lru_.empty()) {
    auto victim = std::prev(lru_.end());
    stats_.bytes -= victim->value->size();
    --stats_.entries;
    ++stats_.evictions;
    map_.erase(std::string_view(victim->md5_hex));
    lru_.erase(victim);
  }
}

bool DecodeCache::invalidate(std::string_view md5_hex) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(md5_hex);
  if (it == map_.end()) return false;
  auto node = it->second;
  stats_.bytes -= node->value->size();
  --stats_.entries;
  ++stats_.invalidations;
  map_.erase(it);
  lru_.erase(node);
  return true;
}

std::uint64_t DecodeCache::invalidate_all() {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t dropped = stats_.entries;
  stats_.invalidations += dropped;
  stats_.bytes = 0;
  stats_.entries = 0;
  map_.clear();
  lru_.clear();
  return dropped;
}

DecodeCacheStats DecodeCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::string DecodeCache::stats_text(std::string_view prefix) const {
  DecodeCacheStats s = stats();
  std::string p(prefix);
  char buf[640];
  std::snprintf(buf, sizeof(buf),
                "%shits %llu\n%smisses %llu\n%sevictions %llu\n"
                "%sinvalidations %llu\n%sinsertions %llu\n"
                "%srejected_oversize %llu\n%sbytes %llu\n%sentries %llu\n"
                "%sbudget_bytes %llu\n%shit_bytes_served %llu\n",
                p.c_str(), static_cast<unsigned long long>(s.hits), p.c_str(),
                static_cast<unsigned long long>(s.misses), p.c_str(),
                static_cast<unsigned long long>(s.evictions), p.c_str(),
                static_cast<unsigned long long>(s.invalidations), p.c_str(),
                static_cast<unsigned long long>(s.insertions), p.c_str(),
                static_cast<unsigned long long>(s.rejected_oversize), p.c_str(),
                static_cast<unsigned long long>(s.bytes), p.c_str(),
                static_cast<unsigned long long>(s.entries), p.c_str(),
                static_cast<unsigned long long>(s.budget_bytes), p.c_str(),
                static_cast<unsigned long long>(s.hit_bytes_served));
  return buf;
}

}  // namespace lepton::storage
