#include "storage/hash_ring.h"

#include <algorithm>

namespace lepton::storage {

namespace {

// 64-bit FNV-1a over a byte string — the repo's standing checksum idiom
// (journal records, trace ids). Placement only; not cryptographic.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

// SplitMix64 finalizer: a cheap, well-mixed bijection. Turning the FNV
// digest through it decorrelates nearby names/vnode indices so points
// spread uniformly on the ring.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t kKeySalt = 0x6c6570746f6e6b65ull;    // "leptonke"
constexpr std::uint64_t kShardSalt = 0x6c6570746f6e7368ull;  // "leptonsh"

}  // namespace

HashRing::HashRing(HashRingConfig cfg) : cfg_(cfg) {
  if (cfg_.vnodes < 1) cfg_.vnodes = 1;
}

std::uint64_t HashRing::key_point(std::string_view key) const {
  return mix(fnv1a(key) ^ cfg_.seed ^ kKeySalt);
}

std::uint64_t HashRing::shard_point(std::string_view name, int vnode) const {
  return mix(mix(fnv1a(name) ^ cfg_.seed ^ kShardSalt) +
             static_cast<std::uint64_t>(vnode));
}

int HashRing::add_shard(std::string_view name) {
  if (name.empty() || contains(name)) return -1;
  int id = static_cast<int>(names_.size());
  names_.emplace_back(name);
  ++live_;
  points_.reserve(points_.size() + static_cast<std::size_t>(cfg_.vnodes));
  for (int v = 0; v < cfg_.vnodes; ++v) {
    points_.push_back(Point{shard_point(name, v), id});
  }
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    return a.h != b.h ? a.h < b.h : a.id < b.id;
  });
  return id;
}

bool HashRing::remove_shard(std::string_view name) {
  int id = id_of(name);
  if (id < 0) return false;
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [id](const Point& p) { return p.id == id; }),
                points_.end());
  names_[static_cast<std::size_t>(id)].clear();
  --live_;
  return true;
}

int HashRing::shard_of(std::string_view key) const {
  if (points_.empty()) return -1;
  std::uint64_t h = key_point(key);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t v) { return p.h < v; });
  if (it == points_.end()) it = points_.begin();  // wrap past the top
  return it->id;
}

bool HashRing::contains(std::string_view name) const {
  return id_of(name) >= 0;
}

int HashRing::id_of(std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (!names_[i].empty() && names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

const std::string& HashRing::name_of(int id) const {
  static const std::string kEmpty;
  if (id < 0 || static_cast<std::size_t>(id) >= names_.size()) return kEmpty;
  return names_[static_cast<std::size_t>(id)];
}

std::vector<std::string> HashRing::members() const {
  std::vector<std::string> out;
  out.reserve(live_);
  for (const auto& n : names_) {
    if (!n.empty()) out.push_back(n);
  }
  return out;
}

}  // namespace lepton::storage
