#include "jpeg/huffman_table.h"

#include <algorithm>
#include <numeric>

namespace lepton::jpegfmt {

HuffmanTable HuffmanTable::build(std::span<const std::uint8_t> counts16,
                                 std::span<const std::uint8_t> symbols) {
  if (counts16.size() != 16) {
    throw ParseError(util::ExitCode::kNotAnImage, "DHT counts != 16");
  }
  HuffmanTable t;
  std::copy(counts16.begin(), counts16.end(), t.counts_.begin());
  std::size_t total = std::accumulate(counts16.begin(), counts16.end(),
                                      std::size_t{0});
  if (total == 0 || total > 256 || symbols.size() < total) {
    throw ParseError(util::ExitCode::kNotAnImage, "DHT symbol count invalid");
  }
  t.symbols_.assign(symbols.begin(), symbols.begin() + total);

  // Canonical code assignment (T.81 C.2): codes of each length are
  // consecutive, starting from (previous start + previous count) << 1.
  std::uint32_t code = 0;
  std::size_t k = 0;
  t.enc_len_.fill(0);
  for (int len = 1; len <= 16; ++len) {
    int n = counts16[len - 1];
    if (n == 0) {
      t.min_code_[len] = 0;
      t.max_code_[len] = -1;
      t.val_ptr_[len] = 0;
      code <<= 1;
      continue;
    }
    // Over-subscription check: all codes of this length must fit.
    if (code + static_cast<std::uint32_t>(n) > (1u << len)) {
      throw ParseError(util::ExitCode::kNotAnImage,
                       "DHT table over-subscribed");
    }
    t.val_ptr_[len] = static_cast<std::uint32_t>(k);
    t.min_code_[len] = static_cast<std::int32_t>(code);
    for (int i = 0; i < n; ++i, ++k) {
      std::uint8_t sym = t.symbols_[k];
      t.enc_code_[sym] = static_cast<std::uint16_t>(code);
      t.enc_len_[sym] = static_cast<std::uint8_t>(len);
      ++code;
    }
    t.max_code_[len] = static_cast<std::int32_t>(code - 1);
    code <<= 1;
  }

  // First-level decode LUT: every kLutBits-bit stream prefix that begins
  // with a code of length <= kLutBits maps straight to (len << 8) | symbol.
  k = 0;
  code = 0;
  for (int len = 1; len <= kLutBits; ++len) {
    int n = counts16[len - 1];
    for (int i = 0; i < n; ++i, ++k) {
      std::uint32_t first = code << (kLutBits - len);
      std::uint32_t span = 1u << (kLutBits - len);
      for (std::uint32_t s = 0; s < span; ++s) {
        t.lut_[first + s] = static_cast<std::uint16_t>(
            (static_cast<std::uint32_t>(len) << 8) | t.symbols_[k]);
      }
      ++code;
    }
    code <<= 1;
  }

  t.defined_ = true;
  return t;
}

HuffmanTable build_optimal_table(std::span<const std::uint64_t> freq,
                                 int max_len) {
  // Package-merge would be exact; the classic IJG approach (Huffman tree,
  // then limit lengths by moving leaves) is what jpegtran ships and is what
  // we mirror. We implement the IJG algorithm from T.81 K.2.
  constexpr int kMaxSymbols = 256;
  std::array<std::int64_t, kMaxSymbols + 1> f{};
  std::array<int, kMaxSymbols + 1> others;
  std::array<int, kMaxSymbols + 1> codesize{};
  others.fill(-1);
  int nsym = static_cast<int>(freq.size());
  for (int i = 0; i < nsym; ++i) f[i] = static_cast<std::int64_t>(freq[i]);
  // Reserve one code point so no symbol gets the all-ones code (T.81 K.2
  // uses a pseudo-symbol with frequency 1).
  f[kMaxSymbols] = 1;

  for (;;) {
    // Find least c1 and second-least c2 nonzero frequencies.
    int c1 = -1, c2 = -1;
    std::int64_t v1 = INT64_MAX, v2 = INT64_MAX;
    for (int i = 0; i <= kMaxSymbols; ++i) {
      if (f[i] == 0) continue;
      if (f[i] <= v1) {
        v2 = v1;
        c2 = c1;
        v1 = f[i];
        c1 = i;
      } else if (f[i] <= v2) {
        v2 = f[i];
        c2 = i;
      }
    }
    if (c2 < 0) break;  // tree complete
    f[c1] += f[c2];
    f[c2] = 0;
    for (++codesize[c1]; others[c1] >= 0; ++codesize[c1]) c1 = others[c1];
    others[c1] = c2;
    for (++codesize[c2]; others[c2] >= 0; ++codesize[c2]) c2 = others[c2];
  }

  // Count codes per length, then limit to max_len (IJG: move pairs of
  // longest codes up).
  std::array<int, 64> bits{};
  for (int i = 0; i <= kMaxSymbols; ++i) {
    if (codesize[i] > 0 && codesize[i] < 64) ++bits[codesize[i]];
  }
  for (int len = 63; len > max_len; --len) {
    while (bits[len] > 0) {
      int j = len - 2;
      while (j > 0 && bits[j] == 0) --j;
      bits[len] -= 2;
      ++bits[len - 1];
      bits[j + 1] += 2;
      --bits[j];
    }
  }
  // Remove the reserved pseudo-symbol's code (the longest one).
  for (int len = max_len; len >= 1; --len) {
    if (bits[len] > 0) {
      --bits[len];
      break;
    }
  }

  // Emit symbols sorted by (codesize, symbol value).
  std::array<std::uint8_t, 16> counts{};
  std::vector<std::uint8_t> symbols;
  for (int len = 1; len <= max_len; ++len) {
    counts[len - 1] = static_cast<std::uint8_t>(bits[len]);
  }
  for (int len = 1; len <= 63; ++len) {
    for (int i = 0; i < nsym; ++i) {
      if (codesize[i] == len) symbols.push_back(static_cast<std::uint8_t>(i));
    }
  }
  // Length limiting may have changed per-length counts without changing the
  // symbol order (IJG property). Total symbols must match total counts.
  std::size_t total = 0;
  for (auto c : counts) total += c;
  symbols.resize(total <= symbols.size() ? total : symbols.size());
  if (symbols.empty()) {
    // Degenerate input (all-zero frequencies): emit a 1-entry table so the
    // stream stays well-formed.
    counts.fill(0);
    counts[0] = 1;
    symbols = {0};
  }
  return HuffmanTable::build(counts, symbols);
}

}  // namespace lepton::jpegfmt
