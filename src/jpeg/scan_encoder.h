// Entropy-coded scan encoder: coefficient blocks → the exact original
// Huffman-coded scan bytes.
//
// The encoder is *resumable*: it can start from a HuffmanHandover captured
// mid-file (bit offset, partial byte, DC predictors, RST phase) and emit
// only the byte range belonging to one thread segment or storage chunk.
// Outputs of consecutive segments concatenate bit-exactly — this is the
// decoder half of the paper's "Huffman handover word" design (§3.4): it is
// what lets Lepton's decode be multithreaded and chunk-distributed even
// though the user's original JPEG was written serially.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "jpeg/jpeg_types.h"
#include "jpeg/parser.h"

namespace lepton::jpegfmt {

struct ScanEncodeParams {
  int start_mcu_row = 0;
  int end_mcu_row = 0;        // exclusive
  HuffmanHandover handover;   // writer state at start_mcu_row
  std::uint8_t pad_bit = 1;
  std::uint32_t rst_count_limit = 0;  // stop inserting RSTs after this many
  bool final_segment = false;         // emit trailing padding when done
};

// Re-encodes MCU rows [start, end) of `coeffs` under the tables in `jf`.
// Returns only *complete* bytes; trailing partial-byte state is returned via
// `handover_out` so the next segment can resume. `handover_out.pos.byte_off`
// advances by the number of scan bytes this segment is responsible for.
std::vector<std::uint8_t> encode_scan_rows(const JpegFile& jf,
                                           const CoeffImage& coeffs,
                                           const ScanEncodeParams& params,
                                           HuffmanHandover* handover_out);

// Block-source variant for streaming decoders that hold only a ring of
// rows instead of a whole CoeffImage (the Lepton decode path, §1 "Memory").
using BlockSourceFn =
    std::function<const std::int16_t*(int comp, int bx, int by)>;
std::vector<std::uint8_t> encode_scan_rows_fn(const JpegFile& jf,
                                              const BlockSourceFn& source,
                                              const ScanEncodeParams& params,
                                              HuffmanHandover* handover_out);

// Convenience: re-encode the entire scan in one call (single-threaded
// verification path).
std::vector<std::uint8_t> encode_scan(const JpegFile& jf,
                                      const CoeffImage& coeffs,
                                      std::uint8_t pad_bit,
                                      std::uint32_t rst_count_limit);

struct ScanDecodeResult;  // fwd (scan_decoder.h)

}  // namespace lepton::jpegfmt

#include "jpeg/scan_decoder.h"

namespace lepton::jpegfmt {

// Rebuilds the complete original scan from a decode result: every MCU row,
// no synthetic final padding, plus the verbatim trailing bytes. The result
// is byte-identical to JpegFile::scan_bytes() for any file decode_scan
// accepted.
std::vector<std::uint8_t> reconstruct_scan(const JpegFile& jf,
                                           const ScanDecodeResult& dec);

// Full original file: header + reconstructed scan + EOI + trailing garbage.
std::vector<std::uint8_t> reconstruct_file(const JpegFile& jf,
                                           const ScanDecodeResult& dec);

}  // namespace lepton::jpegfmt
