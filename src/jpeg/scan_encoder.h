// Entropy-coded scan encoder: coefficient blocks → the exact original
// Huffman-coded scan bytes.
//
// The encoder is *resumable*: it can start from a HuffmanHandover captured
// mid-file (bit offset, partial byte, DC predictors, RST phase) and emit
// only the byte range belonging to one thread segment or storage chunk.
// Outputs of consecutive segments concatenate bit-exactly — this is the
// decoder half of the paper's "Huffman handover word" design (§3.4): it is
// what lets Lepton's decode be multithreaded and chunk-distributed even
// though the user's original JPEG was written serially.
//
// The core is a template over the block source so the streaming decoder's
// per-block ring lookup inlines into the MCU loop (it runs once per block
// of every decode; an std::function indirection there is measurable).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "jpeg/jpeg_types.h"
#include "jpeg/parser.h"
#include "jpeg/scan_simd.h"
#include "jpeg/stuffed_bitio.h"

namespace lepton::jpegfmt {

struct ScanEncodeParams {
  int start_mcu_row = 0;
  int end_mcu_row = 0;        // exclusive
  HuffmanHandover handover;   // writer state at start_mcu_row
  std::uint8_t pad_bit = 1;
  std::uint32_t rst_count_limit = 0;  // stop inserting RSTs after this many
  bool final_segment = false;         // emit trailing padding when done
};

namespace detail {

inline int magnitude_bits(int v) {
  unsigned a = static_cast<unsigned>(v < 0 ? -v : v);
  return 32 - std::countl_zero(a | 1) - (a == 0 ? 1 : 0);
}

inline void put_coded(StuffedBitWriter& w, const HuffmanTable& t, int symbol) {
  int len = t.code_length(static_cast<std::uint8_t>(symbol));
  if (len == 0) {
    // The file's own tables produced these symbols during decode, so this
    // can only mean internal state corruption (§6.2 "Impossible" row).
    throw ParseError(util::ExitCode::kImpossible, "symbol without Huffman code");
  }
  w.put_bits(t.code(static_cast<std::uint8_t>(symbol)), len);
}

// Emits one block from its PreparedBlock (scan_simd.h): DC differentially,
// then only the nonzero AC coefficients, walking the set bits of the
// nonzero mask — run lengths fall out of the bit positions, and the Huffman
// code and the value bits of each coefficient merge into a single put_bits
// (<= 27 bits). Byte-identical to the classic per-coefficient walk.
inline void encode_block(StuffedBitWriter& w, const std::int16_t* blk,
                         const simd::PreparedBlock& p, const HuffmanTable& dct,
                         const HuffmanTable& act, std::int16_t& dc_pred) {
  int diff = blk[0] - dc_pred;
  dc_pred = blk[0];
  int s = diff == 0 ? 0 : magnitude_bits(diff);
  put_coded(w, dct, s);
  if (s > 0) {
    int v = diff < 0 ? diff + (1 << s) - 1 : diff;
    w.put_bits(static_cast<std::uint32_t>(v), s);
  }

  std::uint64_t m = p.nzmask;
  int prev = 0;
  while (m != 0) {
    int k = std::countr_zero(m);
    m &= m - 1;
    int run = k - prev - 1;
    prev = k;
    while (run > 15) {
      put_coded(w, act, 0xF0);  // ZRL
      run -= 16;
    }
    int size = p.size[k];
    int symbol = (run << 4) | size;
    int len = act.code_length(static_cast<std::uint8_t>(symbol));
    if (len == 0) {
      throw ParseError(util::ExitCode::kImpossible,
                       "symbol without Huffman code");
    }
    // v = c for positives, c - 1 in two's complement for negatives; the
    // low `size` bits match T.81's value coding (put_bits masks to size).
    int c = p.zz[k];
    auto v = static_cast<std::uint32_t>(c + (c >> 15));
    w.put_bits((static_cast<std::uint32_t>(
                    act.code(static_cast<std::uint8_t>(symbol)))
                << size) |
                   (v & ((1u << size) - 1u)),
               len + size);
  }
  if (prev != 63) put_coded(w, act, 0x00);  // EOB
}

}  // namespace detail

// Re-encodes MCU rows [start, end) under the tables in `jf`, emitting
// complete bytes into `*out` (cleared up front, capacity retained).
// Trailing partial-byte state is returned via `handover_out` so the next
// segment can resume; `handover_out->pos.byte_off` advances by the number
// of scan bytes this segment is responsible for. `source(comp, bx, by)`
// must return the block's 64 coefficients in natural order.
template <typename Source>
void encode_scan_rows_with(const JpegFile& jf, Source&& source,
                           const ScanEncodeParams& params,
                           HuffmanHandover* handover_out,
                           std::vector<std::uint8_t>* out) {
  const FrameInfo& fr = jf.frame;
  const HuffmanHandover& h = params.handover;
  // SIMD dispatch resolved once per call (the decode path calls this per
  // MCU row): scalar / SSE2 / AVX2 per util::active_simd().
  const simd::PrepareFn prepare = simd::prepare_block_fn();
  simd::PreparedBlock prepared;
  StuffedBitWriter w(out, h.partial_byte, h.pos.bit_off);
  std::array<std::int16_t, 4> dc_pred = h.dc_pred;
  std::uint32_t mcus_done = h.mcus_done;
  std::uint32_t rst_emitted = h.rst_seen;
  const int dri = jf.restart_interval;

  // Per-MCU block layout in a fixed-capacity array: the streaming decoder
  // calls this once per MCU row, so a heap-allocated layout would be an
  // allocation per row. Capacity bound: the parser admits <= 3 components
  // at <= 2x2 sampling.
  struct Slot {
    int comp, bx, by;
  };
  std::array<Slot, 64> layout;
  int nslots = 0;
  for (int ci = 0; ci < fr.ncomp(); ++ci) {
    const auto& comp = fr.comps[ci];
    for (int by = 0; by < comp.v_samp; ++by) {
      for (int bx = 0; bx < comp.h_samp; ++bx) {
        layout[static_cast<std::size_t>(nslots++)] = {ci, bx, by};
      }
    }
  }

  for (int my = params.start_mcu_row; my < params.end_mcu_row; ++my) {
    for (int mx = 0; mx < fr.mcus_x; ++mx) {
      if (dri > 0 && mcus_done > 0 && mcus_done % dri == 0 &&
          rst_emitted < params.rst_count_limit) {
        w.pad_to_byte(params.pad_bit);
        w.put_marker(static_cast<std::uint8_t>(0xD0 + (rst_emitted % 8)));
        ++rst_emitted;
        dc_pred.fill(0);
      }
      for (int s = 0; s < nslots; ++s) {
        const Slot& sl = layout[static_cast<std::size_t>(s)];
        const auto& comp = fr.comps[sl.comp];
        int bx = (fr.ncomp() == 1) ? mx : mx * comp.h_samp + sl.bx;
        int by = (fr.ncomp() == 1) ? my : my * comp.v_samp + sl.by;
        const std::int16_t* blk = source(sl.comp, bx, by);
        prepare(blk, prepared);
        detail::encode_block(w, blk, prepared, jf.dc_tables[comp.dc_tbl],
                             jf.ac_tables[comp.ac_tbl], dc_pred[sl.comp]);
      }
      ++mcus_done;
    }
  }

  if (params.final_segment) w.pad_to_byte(params.pad_bit);
  w.finish();  // trim *out to the emitted length

  if (handover_out != nullptr) {
    handover_out->pos.byte_off = h.pos.byte_off + w.bytes_emitted();
    handover_out->pos.bit_off = w.bit_offset();
    handover_out->partial_byte = w.partial_byte();
    handover_out->dc_pred = dc_pred;
    handover_out->mcus_done = mcus_done;
    handover_out->rst_seen = rst_emitted;
  }
}

// Re-encodes MCU rows [start, end) of `coeffs` under the tables in `jf`.
// Returns only *complete* bytes; trailing partial-byte state is returned via
// `handover_out` so the next segment can resume.
std::vector<std::uint8_t> encode_scan_rows(const JpegFile& jf,
                                           const CoeffImage& coeffs,
                                           const ScanEncodeParams& params,
                                           HuffmanHandover* handover_out);

// Convenience: re-encode the entire scan in one call (single-threaded
// verification path).
std::vector<std::uint8_t> encode_scan(const JpegFile& jf,
                                      const CoeffImage& coeffs,
                                      std::uint8_t pad_bit,
                                      std::uint32_t rst_count_limit);

struct ScanDecodeResult;  // fwd (scan_decoder.h)

}  // namespace lepton::jpegfmt

#include "jpeg/scan_decoder.h"

namespace lepton::jpegfmt {

// Rebuilds the complete original scan from a decode result: every MCU row,
// no synthetic final padding, plus the verbatim trailing bytes. The result
// is byte-identical to JpegFile::scan_bytes() for any file decode_scan
// accepted.
std::vector<std::uint8_t> reconstruct_scan(const JpegFile& jf,
                                           const ScanDecodeResult& dec);

// Full original file: header + reconstructed scan + EOI + trailing garbage.
std::vector<std::uint8_t> reconstruct_file(const JpegFile& jf,
                                           const ScanDecodeResult& dec);

}  // namespace lepton::jpegfmt
