// Authors valid baseline JFIF files from raw images.
//
// The paper's benchmark corpus is 233k random user chunks from the Dropbox
// store (§4); we cannot have those, so the corpus module synthesizes images
// and this builder turns them into real baseline JPEGs — full pipeline:
// RGB→YCbCr, subsampling, forward DCT, IJG quality-scaled quantization,
// standard (or optimized) Huffman tables, byte stuffing, optional restart
// markers. The output bytes are ground truth for every round-trip test.
#pragma once

#include <cstdint>
#include <vector>

#include "jpeg/jpeg_types.h"

namespace lepton::jpegfmt {

enum class Subsampling { k444, k422, k420 };

struct RasterImage {
  int width = 0;
  int height = 0;
  int channels = 3;  // 3 = RGB, 1 = grayscale
  std::vector<std::uint8_t> pixels;  // row-major, interleaved

  std::uint8_t at(int x, int y, int c) const {
    return pixels[(static_cast<std::size_t>(y) * width + x) * channels + c];
  }
};

struct JfifOptions {
  int quality = 85;            // IJG 1..100 scale
  Subsampling subsampling = Subsampling::k420;
  int restart_interval_mcus = 0;  // 0 = no RST markers
  bool optimize_huffman = false;  // build per-file optimal tables
  std::uint8_t pad_bit = 1;       // polarity for alignment padding
  std::vector<std::uint8_t> comment;  // optional COM payload (header bulk)
};

// Encodes `img` as a baseline JFIF byte stream.
std::vector<std::uint8_t> build_jfif(const RasterImage& img,
                                     const JfifOptions& opt);

// IJG-scaled quantization table for a quality setting (Annex K tables).
std::array<std::uint16_t, 64> quality_scaled_luma_table(int quality);
std::array<std::uint16_t, 64> quality_scaled_chroma_table(int quality);

}  // namespace lepton::jpegfmt
