#include "jpeg/scan_decoder.h"

#include <cstring>

#include "jpeg/stuffed_bitio.h"
#include "util/failpoint.h"

namespace lepton::jpegfmt {
namespace {

using util::ExitCode;

[[noreturn]] void fail(ExitCode c, const char* msg) {
  throw ParseError(c, msg);
}

// Slow-path symbol decode for the tail of the stream (fewer than a fused
// window's worth of bits buffered): 16-bit peek when possible, canonical
// per-bit walk for the very last symbols. Returns -1 on no match /
// truncation.
int decode_symbol(StuffedBitReader& rd, const HuffmanTable& t) {
  if (rd.ensure(16)) {
    std::uint32_t hit = t.decode16(rd.peek(16));
    if (hit == 0) return -1;
    rd.consume(static_cast<int>(hit >> 8));
    return static_cast<int>(hit & 0xFF);
  }
  bool truncated = false;
  int sym = t.decode([&rd, &truncated]() -> std::uint32_t {
    int b = rd.get_bit();
    if (b < 0) truncated = true;
    return truncated ? 0u : static_cast<std::uint32_t>(b);
  });
  return truncated ? -1 : sym;
}

int extend_sign(std::int32_t v, int size) {
  // T.81 F.2.2.1 EXTEND: values with the high bit clear are negative.
  if (v < (1 << (size - 1))) return v - (1 << size) + 1;
  return v;
}

// Fused refill windows: one ensure() covers a whole Huffman symbol plus its
// magnitude bits, so the per-coefficient chain runs peek/consume only — no
// second refill check between code and value, no truncation branch per
// get_bits. DC: 16-bit code + up to 11 value bits; AC: 16 + up to 10.
inline constexpr int kDcFusedBits = 27;
inline constexpr int kAcFusedBits = 26;

}  // namespace

ScanDecodeResult decode_scan(const JpegFile& jf) {
  const FrameInfo& fr = jf.frame;
  ScanDecodeResult out;
  out.coeffs.comps.resize(fr.comps.size());
  std::uint64_t total_blocks = 0;
  for (std::size_t ci = 0; ci < fr.comps.size(); ++ci) {
    const auto& comp = fr.comps[ci];
    out.coeffs.comps[ci].resize(comp.width_blocks, comp.height_blocks);
    total_blocks += static_cast<std::uint64_t>(comp.width_blocks) *
                    comp.height_blocks;
  }
  // Encode-side memory budget (§6.2 ">178 MiB mem encode"): the encoder
  // must hold the whole coefficient image (§4.2). Failpoint
  // "codec.mem_gate" trips the refusal on schedule for chaos runs.
  if (total_blocks * 128 > 178ull << 20 ||
      (util::failpoint::armed() &&
       util::failpoint::hit("codec.mem_gate").fired())) {
    fail(ExitCode::kMemLimitEncode, "coefficient image exceeds encode budget");
  }

  StuffedBitReader rd(jf.scan_bytes());
  std::array<std::int16_t, 4> dc_pred{};
  std::uint32_t mcus_done = 0;
  std::uint32_t rst_seen = 0;
  bool rst_ceased = false;
  const int dri = jf.restart_interval;
  const std::uint32_t total_mcus =
      static_cast<std::uint32_t>(fr.mcus_x) * static_cast<std::uint32_t>(fr.mcus_y);
  if (total_mcus == 0) fail(ExitCode::kUnsupportedJpeg, "no MCUs");

  // Per-MCU block layout with everything the block loop consults hoisted
  // out of it: the component's coefficient plane and its Huffman tables are
  // resolved once here instead of per block. Coefficients land directly in
  // the CoeffImage row plane (row-major blocks), which is the layout the
  // encode-side context-plane precompute walks.
  struct McuSlot {
    ComponentCoeffs* cc;
    const HuffmanTable* dct;
    const HuffmanTable* act;
    int comp;
    int h_samp;
    int v_samp;
    int bx;
    int by;
  };
  std::vector<McuSlot> layout;
  for (int ci = 0; ci < fr.ncomp(); ++ci) {
    const auto& comp = fr.comps[ci];
    for (int by = 0; by < comp.v_samp; ++by) {
      for (int bx = 0; bx < comp.h_samp; ++bx) {
        layout.push_back({&out.coeffs.comps[static_cast<std::size_t>(ci)],
                          &jf.dc_tables[comp.dc_tbl], &jf.ac_tables[comp.ac_tbl],
                          ci, comp.h_samp, comp.v_samp, bx, by});
      }
    }
  }

  auto capture_handover = [&]() {
    HuffmanHandover h;
    h.pos = rd.pos();
    h.partial_byte = rd.partial_byte();
    h.dc_pred = dc_pred;
    h.mcus_done = mcus_done;
    h.rst_seen = rst_seen;
    return h;
  };

  for (int my = 0; my < fr.mcus_y; ++my) {
    out.row_boundaries.push_back({capture_handover(), my});
    for (int mx = 0; mx < fr.mcus_x; ++mx) {
      // Restart marker handling (T.81 E.1.4), tolerant of zero-wiped tails:
      // once an expected marker is absent we stop looking for them (§A.3).
      if (dri > 0 && mcus_done > 0 && mcus_done % dri == 0 && !rst_ceased) {
        StuffedBitReader save = rd;
        int pad_n = (8 - rd.bits_into_byte()) % 8;
        bool pad_ok = true;
        std::uint8_t first_pad = out.pad_bit;
        bool first_seen = out.pad_bit_seen;
        for (int i = 0; i < pad_n && pad_ok; ++i) {
          int b = rd.get_bit();
          if (b < 0) {
            pad_ok = false;
          } else if (!first_seen) {
            first_pad = static_cast<std::uint8_t>(b);
            first_seen = true;
          } else if (b != first_pad) {
            pad_ok = false;
          }
        }
        if (pad_ok && rd.consume_rst_marker(static_cast<int>(rst_seen % 8))) {
          out.pad_bit = first_pad;
          out.pad_bit_seen = first_seen;
          out.stats.bits_overhead += pad_n + 16;
          ++rst_seen;
          dc_pred.fill(0);
        } else {
          rd = save;  // no marker: zero-wiped or non-conforming region
          rst_ceased = true;
        }
      }

      for (const auto& sl : layout) {
        int bx = (fr.ncomp() == 1) ? mx : mx * sl.h_samp + sl.bx;
        int by = (fr.ncomp() == 1) ? my : my * sl.v_samp + sl.by;
        std::int16_t* blk = sl.cc->block(bx, by);
        const HuffmanTable& dct = *sl.dct;
        const HuffmanTable& act = *sl.act;

        // ---- DC ----
        int s;
        int diff = 0;
        if (rd.ensure(kDcFusedBits)) {
          // Fast path: the window covers the longest possible code plus its
          // value bits, so the whole pair resolves with one refill check.
          std::uint32_t hit = dct.decode16(rd.peek(16));
          if (hit == 0) fail(ExitCode::kUnsupportedJpeg, "bad DC code");
          int len = static_cast<int>(hit >> 8);
          s = static_cast<int>(hit & 0xFF);
          if (s > 11) fail(ExitCode::kAcOutOfRange, "DC size > 11");
          rd.consume(len);
          out.stats.bits_dc += static_cast<std::uint32_t>(len);
          if (s > 0) {
            diff = extend_sign(static_cast<std::int32_t>(rd.peek(s)), s);
            rd.consume(s);
            out.stats.bits_dc += static_cast<std::uint32_t>(s);
          }
        } else {
          s = decode_symbol(rd, dct);
          if (s < 0) fail(ExitCode::kUnsupportedJpeg, "bad DC code");
          if (s > 11) fail(ExitCode::kAcOutOfRange, "DC size > 11");
          out.stats.bits_dc += dct.code_length(static_cast<std::uint8_t>(s));
          if (s > 0) {
            std::int32_t raw = rd.get_bits(s);
            if (raw < 0) fail(ExitCode::kUnsupportedJpeg, "truncated DC bits");
            diff = extend_sign(raw, s);
            out.stats.bits_dc += static_cast<std::uint32_t>(s);
          }
        }
        int dc = dc_pred[sl.comp] + diff;
        if (dc < -2048 || dc > 2047) {
          fail(ExitCode::kAcOutOfRange, "DC out of range");
        }
        dc_pred[sl.comp] = static_cast<std::int16_t>(dc);
        blk[0] = static_cast<std::int16_t>(dc);

        // ---- AC ----
        // Edge/interior bit attribution accumulates branchlessly into an
        // indexed pair and flushes once per block: the zigzag walk
        // alternates between the classes too irregularly for the branch
        // predictor.
        std::uint64_t ac_bits[2] = {0, 0};  // [0]=interior 7x7, [1]=edge
        int k = 1;
        while (k < 64) {
          int run, size, sym_bits;
          std::int32_t raw;
          if (rd.ensure(kAcFusedBits)) {
            // Fast path: one window check amortizes the whole
            // symbol+magnitude chain — EOB/ZRL symbols consume and loop
            // without ever re-entering refill logic while the window lasts.
            std::uint32_t hit = act.decode16(rd.peek(16));
            if (hit == 0) fail(ExitCode::kUnsupportedJpeg, "bad AC code");
            sym_bits = static_cast<int>(hit >> 8);
            int rs = static_cast<int>(hit & 0xFF);
            run = rs >> 4;
            size = rs & 15;
            if (size == 0) {
              rd.consume(sym_bits);
              out.stats.bits_overhead += static_cast<std::uint32_t>(sym_bits);
              if (run == 15) {
                k += 16;  // ZRL
                continue;
              }
              break;  // EOB
            }
            if (size > 10) fail(ExitCode::kAcOutOfRange, "AC size > 10");
            rd.consume(sym_bits);
            raw = static_cast<std::int32_t>(rd.peek(size));
            rd.consume(size);
          } else {
            int rs = decode_symbol(rd, act);
            if (rs < 0) fail(ExitCode::kUnsupportedJpeg, "bad AC code");
            run = rs >> 4;
            size = rs & 15;
            sym_bits = act.code_length(static_cast<std::uint8_t>(rs));
            if (size == 0) {
              out.stats.bits_overhead += static_cast<std::uint32_t>(sym_bits);
              if (run == 15) {
                k += 16;  // ZRL
                continue;
              }
              break;  // EOB
            }
            if (size > 10) fail(ExitCode::kAcOutOfRange, "AC size > 10");
            raw = rd.get_bits(size);
            if (raw < 0) fail(ExitCode::kUnsupportedJpeg, "truncated AC bits");
          }
          k += run;
          if (k > 63) fail(ExitCode::kUnsupportedJpeg, "AC run overflow");
          int natural = kZigzag[k];
          blk[natural] = static_cast<std::int16_t>(extend_sign(raw, size));
          // Bit nat set ⇔ natural index nat is in row 0 or column 0.
          constexpr std::uint64_t kEdgeBits = 0x01010101010101FFull;
          ac_bits[(kEdgeBits >> natural) & 1] +=
              static_cast<std::uint32_t>(sym_bits + size);
          ++k;
        }
        out.stats.bits_ac77 += ac_bits[0];
        out.stats.bits_edge += ac_bits[1];
      }
      ++mcus_done;
    }
  }

  out.end_state = capture_handover();
  out.rst_count = rst_seen;

  // Everything after the last coefficient bit — the final pad byte in the
  // common case, zero-run tails (§A.3) otherwise — is preserved verbatim:
  // the format's "arbitrary data to append to the output" (§A.1). A
  // re-encode emits complete bytes up to end_state.pos.byte_off and then
  // appends these.
  auto scan = jf.scan_bytes();
  std::uint64_t tail_begin = out.end_state.pos.byte_off;
  if (tail_begin > scan.size()) {
    fail(ExitCode::kImpossible, "scan position beyond scan end");
  }
  out.trailing_scan.assign(scan.begin() + static_cast<std::ptrdiff_t>(tail_begin),
                           scan.end());
  return out;
}

}  // namespace lepton::jpegfmt
