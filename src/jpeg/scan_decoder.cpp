#include "jpeg/scan_decoder.h"

#include <cstring>

namespace lepton::jpegfmt {
namespace {

using util::ExitCode;

[[noreturn]] void fail(ExitCode c, const char* msg) {
  throw ParseError(c, msg);
}

// Bit reader over the entropy-coded segment that understands 0xFF00 byte
// stuffing and stops (without consuming) at markers. It can report, at any
// bit position, the *file-byte* offset containing the next unconsumed bit —
// the coordinate a Huffman handover word records. Copyable so RST detection
// can speculate and roll back.
class StuffedBitReader {
 public:
  explicit StuffedBitReader(std::span<const std::uint8_t> scan) : d_(scan) {}

  // Returns 0/1, or -1 at end of entropy data (marker or end of span).
  int get_bit() {
    if (wbits_ == 0 && !refill()) return -1;
    --wbits_;
    ++consumed_;
    return static_cast<int>((window_ >> wbits_) & 1u);
  }

  // Returns the value of `n` bits MSB-first, or -1 on truncation.
  std::int32_t get_bits(int n) {
    std::int32_t v = 0;
    for (int i = 0; i < n; ++i) {
      int b = get_bit();
      if (b < 0) return -1;
      v = (v << 1) | b;
    }
    return v;
  }

  // Position of the next unconsumed bit, in scan-relative byte space.
  ScanPos pos() const {
    std::uint64_t byte_idx = consumed_ / 8;
    int bit_off = static_cast<int>(consumed_ % 8);
    if (byte_idx >= n_loaded_) {
      // Next byte not yet loaded; it will be read from pos_.
      return {pos_, 0};
    }
    return {offsets_[byte_idx & 15], bit_off};
  }

  // High `bit_off` bits of the byte at pos() that were already consumed
  // (the "partial byte" of the handover word). Low bits are zeroed.
  std::uint8_t partial_byte() const {
    ScanPos p = pos();
    if (p.bit_off == 0) return 0;
    std::uint8_t b = d_[p.byte_off];
    return static_cast<std::uint8_t>(b & ~((1u << (8 - p.bit_off)) - 1u));
  }

  bool byte_aligned() const { return consumed_ % 8 == 0; }
  int bits_into_byte() const { return static_cast<int>(consumed_ % 8); }

  // After all entropy data is consumed, true iff every scan byte was used.
  bool fully_consumed() const { return wbits_ == 0 && pos_ >= d_.size(); }

  // If the next bytes are an RST marker with the expected index, consume it
  // and return true. Requires an empty bit window (callers consume padding
  // first), so consumed_ == 8 * n_loaded_ and pos() already reports the
  // next-load offset — advancing pos_ past the marker keeps it exact.
  bool consume_rst_marker(int expected_index) {
    if (wbits_ != 0) return false;
    if (pos_ + 1 >= d_.size()) return false;
    if (d_[pos_] != 0xFF) return false;
    std::uint8_t m = d_[pos_ + 1];
    if (m != 0xD0 + expected_index) return false;
    pos_ += 2;
    return true;
  }

 private:
  bool refill() {
    while (wbits_ <= 56) {
      if (pos_ >= d_.size()) break;
      std::uint8_t b = d_[pos_];
      if (b == 0xFF) {
        if (pos_ + 1 >= d_.size()) break;  // lone 0xFF at end: stop
        if (d_[pos_ + 1] != 0x00) break;   // marker: stop before it
        record_loaded(pos_);
        pos_ += 2;  // skip the stuffed 0x00 together with its 0xFF
        push(0xFF);
      } else {
        record_loaded(pos_);
        pos_ += 1;
        push(b);
      }
    }
    return wbits_ > 0;
  }

  void push(std::uint8_t b) {
    window_ = (window_ << 8) | b;
    wbits_ += 8;
  }
  void record_loaded(std::uint64_t off) { offsets_[n_loaded_++ & 15] = off; }

  std::span<const std::uint8_t> d_;
  std::uint64_t pos_ = 0;       // next byte to load
  std::uint64_t window_ = 0;    // right-justified unconsumed bits
  int wbits_ = 0;
  std::uint64_t consumed_ = 0;  // total data bits consumed
  std::uint64_t n_loaded_ = 0;  // total data bytes loaded
  std::uint64_t offsets_[16] = {};  // ring: file offset of each loaded byte
};

int extend_sign(std::int32_t v, int size) {
  // T.81 F.2.2.1 EXTEND: values with the high bit clear are negative.
  if (v < (1 << (size - 1))) return v - (1 << size) + 1;
  return v;
}

struct McuPos {
  int comp;
  int bx;
  int by;
};

}  // namespace

ScanDecodeResult decode_scan(const JpegFile& jf) {
  const FrameInfo& fr = jf.frame;
  ScanDecodeResult out;
  out.coeffs.comps.resize(fr.comps.size());
  std::uint64_t total_blocks = 0;
  for (std::size_t ci = 0; ci < fr.comps.size(); ++ci) {
    const auto& comp = fr.comps[ci];
    out.coeffs.comps[ci].resize(comp.width_blocks, comp.height_blocks);
    total_blocks += static_cast<std::uint64_t>(comp.width_blocks) *
                    comp.height_blocks;
  }
  // Encode-side memory budget (§6.2 ">178 MiB mem encode"): the encoder
  // must hold the whole coefficient image (§4.2).
  if (total_blocks * 128 > 178ull << 20) {
    fail(ExitCode::kMemLimitEncode, "coefficient image exceeds encode budget");
  }

  StuffedBitReader rd(jf.scan_bytes());
  std::array<std::int16_t, 4> dc_pred{};
  std::uint32_t mcus_done = 0;
  std::uint32_t rst_seen = 0;
  bool rst_ceased = false;
  const int dri = jf.restart_interval;
  const std::uint32_t total_mcus =
      static_cast<std::uint32_t>(fr.mcus_x) * static_cast<std::uint32_t>(fr.mcus_y);
  if (total_mcus == 0) fail(ExitCode::kUnsupportedJpeg, "no MCUs");

  // Per-MCU block layout (component, intra-MCU block coordinates).
  std::vector<McuPos> layout;
  for (int ci = 0; ci < fr.ncomp(); ++ci) {
    const auto& comp = fr.comps[ci];
    for (int by = 0; by < comp.v_samp; ++by) {
      for (int bx = 0; bx < comp.h_samp; ++bx) {
        layout.push_back({ci, bx, by});
      }
    }
  }

  auto next_bit = [&rd]() -> std::uint32_t {
    int b = rd.get_bit();
    if (b < 0) fail(ExitCode::kUnsupportedJpeg, "truncated scan");
    return static_cast<std::uint32_t>(b);
  };

  auto capture_handover = [&]() {
    HuffmanHandover h;
    h.pos = rd.pos();
    h.partial_byte = rd.partial_byte();
    h.dc_pred = dc_pred;
    h.mcus_done = mcus_done;
    h.rst_seen = rst_seen;
    return h;
  };

  for (int my = 0; my < fr.mcus_y; ++my) {
    out.row_boundaries.push_back({capture_handover(), my});
    for (int mx = 0; mx < fr.mcus_x; ++mx) {
      // Restart marker handling (T.81 E.1.4), tolerant of zero-wiped tails:
      // once an expected marker is absent we stop looking for them (§A.3).
      if (dri > 0 && mcus_done > 0 && mcus_done % dri == 0 && !rst_ceased) {
        StuffedBitReader save = rd;
        int pad_n = (8 - rd.bits_into_byte()) % 8;
        bool pad_ok = true;
        std::uint8_t first_pad = out.pad_bit;
        bool first_seen = out.pad_bit_seen;
        for (int i = 0; i < pad_n && pad_ok; ++i) {
          int b = rd.get_bit();
          if (b < 0) {
            pad_ok = false;
          } else if (!first_seen) {
            first_pad = static_cast<std::uint8_t>(b);
            first_seen = true;
          } else if (b != first_pad) {
            pad_ok = false;
          }
        }
        if (pad_ok && rd.consume_rst_marker(static_cast<int>(rst_seen % 8))) {
          out.pad_bit = first_pad;
          out.pad_bit_seen = first_seen;
          out.stats.bits_overhead += pad_n + 16;
          ++rst_seen;
          dc_pred.fill(0);
        } else {
          rd = save;  // no marker: zero-wiped or non-conforming region
          rst_ceased = true;
        }
      }

      for (const auto& mp : layout) {
        const auto& comp = fr.comps[mp.comp];
        auto& cc = out.coeffs.comps[mp.comp];
        int bx = (fr.ncomp() == 1) ? mx : mx * comp.h_samp + mp.bx;
        int by = (fr.ncomp() == 1) ? my : my * comp.v_samp + mp.by;
        std::int16_t* blk = cc.block(bx, by);

        // ---- DC ----
        const auto& dct = jf.dc_tables[comp.dc_tbl];
        const auto& act = jf.ac_tables[comp.ac_tbl];
        int s = dct.decode(next_bit);
        if (s < 0) fail(ExitCode::kUnsupportedJpeg, "bad DC code");
        if (s > 11) fail(ExitCode::kAcOutOfRange, "DC size > 11");
        out.stats.bits_dc += dct.code_length(static_cast<std::uint8_t>(s));
        int diff = 0;
        if (s > 0) {
          std::int32_t raw = rd.get_bits(s);
          if (raw < 0) fail(ExitCode::kUnsupportedJpeg, "truncated DC bits");
          diff = extend_sign(raw, s);
          out.stats.bits_dc += s;
        }
        int dc = dc_pred[mp.comp] + diff;
        if (dc < -2048 || dc > 2047) {
          fail(ExitCode::kAcOutOfRange, "DC out of range");
        }
        dc_pred[mp.comp] = static_cast<std::int16_t>(dc);
        blk[0] = static_cast<std::int16_t>(dc);

        // ---- AC ----
        int k = 1;
        while (k < 64) {
          int rs = act.decode(next_bit);
          if (rs < 0) fail(ExitCode::kUnsupportedJpeg, "bad AC code");
          int run = rs >> 4;
          int size = rs & 15;
          int sym_bits = act.code_length(static_cast<std::uint8_t>(rs));
          if (size == 0) {
            out.stats.bits_overhead += sym_bits;
            if (run == 15) {
              k += 16;  // ZRL
              continue;
            }
            break;  // EOB
          }
          if (size > 10) fail(ExitCode::kAcOutOfRange, "AC size > 10");
          k += run;
          if (k > 63) fail(ExitCode::kUnsupportedJpeg, "AC run overflow");
          std::int32_t raw = rd.get_bits(size);
          if (raw < 0) fail(ExitCode::kUnsupportedJpeg, "truncated AC bits");
          int natural = kZigzag[k];
          blk[natural] = static_cast<std::int16_t>(extend_sign(raw, size));
          int row = natural >> 3, col = natural & 7;
          if (row == 0 || col == 0) {
            out.stats.bits_edge += sym_bits + size;
          } else {
            out.stats.bits_ac77 += sym_bits + size;
          }
          ++k;
        }
      }
      ++mcus_done;
    }
  }

  out.end_state = capture_handover();
  out.rst_count = rst_seen;

  // Everything after the last coefficient bit — the final pad byte in the
  // common case, zero-run tails (§A.3) otherwise — is preserved verbatim:
  // the format's "arbitrary data to append to the output" (§A.1). A
  // re-encode emits complete bytes up to end_state.pos.byte_off and then
  // appends these.
  auto scan = jf.scan_bytes();
  std::uint64_t tail_begin = out.end_state.pos.byte_off;
  if (tail_begin > scan.size()) {
    fail(ExitCode::kImpossible, "scan position beyond scan end");
  }
  out.trailing_scan.assign(scan.begin() + static_cast<std::ptrdiff_t>(tail_begin),
                           scan.end());
  return out;
}

}  // namespace lepton::jpegfmt
