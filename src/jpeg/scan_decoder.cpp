#include "jpeg/scan_decoder.h"

#include <cstring>

#include "jpeg/stuffed_bitio.h"

namespace lepton::jpegfmt {
namespace {

using util::ExitCode;

[[noreturn]] void fail(ExitCode c, const char* msg) {
  throw ParseError(c, msg);
}

// Decodes one Huffman symbol. The common case resolves through the 16-bit
// peek + table lookup (one refill check, no per-bit loop); only the last
// few symbols of the stream — when fewer than 16 bits remain buffered —
// take the canonical per-bit path. Returns -1 on no match / truncation.
int decode_symbol(StuffedBitReader& rd, const HuffmanTable& t) {
  if (rd.ensure(16)) {
    std::uint32_t hit = t.decode16(rd.peek(16));
    if (hit == 0) return -1;
    rd.consume(static_cast<int>(hit >> 8));
    return static_cast<int>(hit & 0xFF);
  }
  bool truncated = false;
  int sym = t.decode([&rd, &truncated]() -> std::uint32_t {
    int b = rd.get_bit();
    if (b < 0) truncated = true;
    return truncated ? 0u : static_cast<std::uint32_t>(b);
  });
  return truncated ? -1 : sym;
}

int extend_sign(std::int32_t v, int size) {
  // T.81 F.2.2.1 EXTEND: values with the high bit clear are negative.
  if (v < (1 << (size - 1))) return v - (1 << size) + 1;
  return v;
}

struct McuPos {
  int comp;
  int bx;
  int by;
};

}  // namespace

ScanDecodeResult decode_scan(const JpegFile& jf) {
  const FrameInfo& fr = jf.frame;
  ScanDecodeResult out;
  out.coeffs.comps.resize(fr.comps.size());
  std::uint64_t total_blocks = 0;
  for (std::size_t ci = 0; ci < fr.comps.size(); ++ci) {
    const auto& comp = fr.comps[ci];
    out.coeffs.comps[ci].resize(comp.width_blocks, comp.height_blocks);
    total_blocks += static_cast<std::uint64_t>(comp.width_blocks) *
                    comp.height_blocks;
  }
  // Encode-side memory budget (§6.2 ">178 MiB mem encode"): the encoder
  // must hold the whole coefficient image (§4.2).
  if (total_blocks * 128 > 178ull << 20) {
    fail(ExitCode::kMemLimitEncode, "coefficient image exceeds encode budget");
  }

  StuffedBitReader rd(jf.scan_bytes());
  std::array<std::int16_t, 4> dc_pred{};
  std::uint32_t mcus_done = 0;
  std::uint32_t rst_seen = 0;
  bool rst_ceased = false;
  const int dri = jf.restart_interval;
  const std::uint32_t total_mcus =
      static_cast<std::uint32_t>(fr.mcus_x) * static_cast<std::uint32_t>(fr.mcus_y);
  if (total_mcus == 0) fail(ExitCode::kUnsupportedJpeg, "no MCUs");

  // Per-MCU block layout (component, intra-MCU block coordinates).
  std::vector<McuPos> layout;
  for (int ci = 0; ci < fr.ncomp(); ++ci) {
    const auto& comp = fr.comps[ci];
    for (int by = 0; by < comp.v_samp; ++by) {
      for (int bx = 0; bx < comp.h_samp; ++bx) {
        layout.push_back({ci, bx, by});
      }
    }
  }

  auto capture_handover = [&]() {
    HuffmanHandover h;
    h.pos = rd.pos();
    h.partial_byte = rd.partial_byte();
    h.dc_pred = dc_pred;
    h.mcus_done = mcus_done;
    h.rst_seen = rst_seen;
    return h;
  };

  for (int my = 0; my < fr.mcus_y; ++my) {
    out.row_boundaries.push_back({capture_handover(), my});
    for (int mx = 0; mx < fr.mcus_x; ++mx) {
      // Restart marker handling (T.81 E.1.4), tolerant of zero-wiped tails:
      // once an expected marker is absent we stop looking for them (§A.3).
      if (dri > 0 && mcus_done > 0 && mcus_done % dri == 0 && !rst_ceased) {
        StuffedBitReader save = rd;
        int pad_n = (8 - rd.bits_into_byte()) % 8;
        bool pad_ok = true;
        std::uint8_t first_pad = out.pad_bit;
        bool first_seen = out.pad_bit_seen;
        for (int i = 0; i < pad_n && pad_ok; ++i) {
          int b = rd.get_bit();
          if (b < 0) {
            pad_ok = false;
          } else if (!first_seen) {
            first_pad = static_cast<std::uint8_t>(b);
            first_seen = true;
          } else if (b != first_pad) {
            pad_ok = false;
          }
        }
        if (pad_ok && rd.consume_rst_marker(static_cast<int>(rst_seen % 8))) {
          out.pad_bit = first_pad;
          out.pad_bit_seen = first_seen;
          out.stats.bits_overhead += pad_n + 16;
          ++rst_seen;
          dc_pred.fill(0);
        } else {
          rd = save;  // no marker: zero-wiped or non-conforming region
          rst_ceased = true;
        }
      }

      for (const auto& mp : layout) {
        const auto& comp = fr.comps[mp.comp];
        auto& cc = out.coeffs.comps[mp.comp];
        int bx = (fr.ncomp() == 1) ? mx : mx * comp.h_samp + mp.bx;
        int by = (fr.ncomp() == 1) ? my : my * comp.v_samp + mp.by;
        std::int16_t* blk = cc.block(bx, by);

        // ---- DC ----
        const auto& dct = jf.dc_tables[comp.dc_tbl];
        const auto& act = jf.ac_tables[comp.ac_tbl];
        int s = decode_symbol(rd, dct);
        if (s < 0) fail(ExitCode::kUnsupportedJpeg, "bad DC code");
        if (s > 11) fail(ExitCode::kAcOutOfRange, "DC size > 11");
        out.stats.bits_dc += dct.code_length(static_cast<std::uint8_t>(s));
        int diff = 0;
        if (s > 0) {
          std::int32_t raw = rd.get_bits(s);
          if (raw < 0) fail(ExitCode::kUnsupportedJpeg, "truncated DC bits");
          diff = extend_sign(raw, s);
          out.stats.bits_dc += s;
        }
        int dc = dc_pred[mp.comp] + diff;
        if (dc < -2048 || dc > 2047) {
          fail(ExitCode::kAcOutOfRange, "DC out of range");
        }
        dc_pred[mp.comp] = static_cast<std::int16_t>(dc);
        blk[0] = static_cast<std::int16_t>(dc);

        // ---- AC ----
        int k = 1;
        while (k < 64) {
          int rs = decode_symbol(rd, act);
          if (rs < 0) fail(ExitCode::kUnsupportedJpeg, "bad AC code");
          int run = rs >> 4;
          int size = rs & 15;
          int sym_bits = act.code_length(static_cast<std::uint8_t>(rs));
          if (size == 0) {
            out.stats.bits_overhead += sym_bits;
            if (run == 15) {
              k += 16;  // ZRL
              continue;
            }
            break;  // EOB
          }
          if (size > 10) fail(ExitCode::kAcOutOfRange, "AC size > 10");
          k += run;
          if (k > 63) fail(ExitCode::kUnsupportedJpeg, "AC run overflow");
          std::int32_t raw = rd.get_bits(size);
          if (raw < 0) fail(ExitCode::kUnsupportedJpeg, "truncated AC bits");
          int natural = kZigzag[k];
          blk[natural] = static_cast<std::int16_t>(extend_sign(raw, size));
          int row = natural >> 3, col = natural & 7;
          if (row == 0 || col == 0) {
            out.stats.bits_edge += sym_bits + size;
          } else {
            out.stats.bits_ac77 += sym_bits + size;
          }
          ++k;
        }
      }
      ++mcus_done;
    }
  }

  out.end_state = capture_handover();
  out.rst_count = rst_seen;

  // Everything after the last coefficient bit — the final pad byte in the
  // common case, zero-run tails (§A.3) otherwise — is preserved verbatim:
  // the format's "arbitrary data to append to the output" (§A.1). A
  // re-encode emits complete bytes up to end_state.pos.byte_off and then
  // appends these.
  auto scan = jf.scan_bytes();
  std::uint64_t tail_begin = out.end_state.pos.byte_off;
  if (tail_begin > scan.size()) {
    fail(ExitCode::kImpossible, "scan position beyond scan end");
  }
  out.trailing_scan.assign(scan.begin() + static_cast<std::ptrdiff_t>(tail_begin),
                           scan.end());
  return out;
}

}  // namespace lepton::jpegfmt
