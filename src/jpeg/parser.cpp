#include "jpeg/parser.h"

#include <cstring>

namespace lepton::jpegfmt {
namespace {

using util::ExitCode;

constexpr std::uint8_t kSOI = 0xD8;
constexpr std::uint8_t kEOI = 0xD9;
constexpr std::uint8_t kSOS = 0xDA;
constexpr std::uint8_t kDQT = 0xDB;
constexpr std::uint8_t kDHT = 0xC4;
constexpr std::uint8_t kDRI = 0xDD;
constexpr std::uint8_t kCOM = 0xFE;

[[noreturn]] void fail(ExitCode c, const char* msg) {
  throw ParseError(c, msg);
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> d) : d_(d) {}
  std::uint8_t u8() {
    if (pos_ >= d_.size()) fail(ExitCode::kNotAnImage, "truncated header");
    return d_[pos_++];
  }
  std::uint16_t u16be() {
    std::uint16_t hi = u8();
    return static_cast<std::uint16_t>((hi << 8) | u8());
  }
  void skip(std::size_t n) {
    if (pos_ + n > d_.size()) fail(ExitCode::kNotAnImage, "truncated segment");
    pos_ += n;
  }
  std::span<const std::uint8_t> view(std::size_t n) {
    if (pos_ + n > d_.size()) fail(ExitCode::kNotAnImage, "truncated segment");
    auto s = d_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  std::size_t pos() const { return pos_; }
  bool at_end() const { return pos_ >= d_.size(); }

 private:
  std::span<const std::uint8_t> d_;
  std::size_t pos_ = 0;
};

void parse_dqt(Cursor& c, std::size_t seg_len, JpegFile& jf) {
  std::size_t end = c.pos() + seg_len;
  while (c.pos() < end) {
    std::uint8_t pq_tq = c.u8();
    int precision = pq_tq >> 4;
    int id = pq_tq & 15;
    if (id > 3) fail(ExitCode::kNotAnImage, "DQT id > 3");
    if (precision != 0) {
      // 16-bit tables are for 12-bit sample data; not baseline.
      fail(ExitCode::kUnsupportedJpeg, "16-bit DQT");
    }
    auto raw = c.view(64);
    // DQT stores entries in zigzag order; we keep natural order.
    for (int k = 0; k < 64; ++k) {
      jf.qtables[id].q[kZigzag[k]] = raw[k];
    }
    for (int k = 0; k < 64; ++k) {
      if (jf.qtables[id].q[k] == 0) {
        fail(ExitCode::kNotAnImage, "zero quantizer");
      }
    }
    jf.qtables[id].defined = true;
  }
  if (c.pos() != end) fail(ExitCode::kNotAnImage, "DQT length mismatch");
}

void parse_dht(Cursor& c, std::size_t seg_len, JpegFile& jf) {
  std::size_t end = c.pos() + seg_len;
  while (c.pos() < end) {
    std::uint8_t tc_th = c.u8();
    int klass = tc_th >> 4;  // 0 = DC, 1 = AC
    int id = tc_th & 15;
    if (klass > 1 || id > 3) fail(ExitCode::kNotAnImage, "DHT class/id");
    auto counts = c.view(16);
    std::size_t total = 0;
    for (auto n : counts) total += n;
    if (total > 256) fail(ExitCode::kNotAnImage, "DHT too many symbols");
    auto symbols = c.view(total);
    auto table = HuffmanTable::build(counts, symbols);
    (klass == 0 ? jf.dc_tables : jf.ac_tables)[id] = std::move(table);
  }
  if (c.pos() != end) fail(ExitCode::kNotAnImage, "DHT length mismatch");
}

void parse_sof(Cursor& c, std::size_t seg_len, JpegFile& jf) {
  std::size_t end = c.pos() + seg_len;
  jf.frame.precision = c.u8();
  jf.frame.height = c.u16be();
  jf.frame.width = c.u16be();
  int ncomp = c.u8();
  if (jf.frame.precision != 8) {
    fail(ExitCode::kUnsupportedJpeg, "precision != 8");
  }
  if (ncomp == 4) fail(ExitCode::kCmyk, "4-component frame");
  if (ncomp != 1 && ncomp != 3) {
    fail(ExitCode::kUnsupportedJpeg, "component count");
  }
  if (jf.frame.width <= 0 || jf.frame.height <= 0) {
    fail(ExitCode::kUnsupportedJpeg, "empty frame");
  }
  jf.frame.comps.clear();
  for (int i = 0; i < ncomp; ++i) {
    ComponentInfo ci;
    ci.id = c.u8();
    std::uint8_t hv = c.u8();
    ci.h_samp = hv >> 4;
    ci.v_samp = hv & 15;
    ci.quant_idx = c.u8();
    if (ci.quant_idx > 3) fail(ExitCode::kNotAnImage, "quant index");
    if (ci.h_samp < 1 || ci.h_samp > 2 || ci.v_samp < 1 || ci.v_samp > 2) {
      fail(ExitCode::kChromaSubsampleBig, "sampling factor out of range");
    }
    jf.frame.comps.push_back(ci);
  }
  // Chroma sampled denser than luma does not fit the slice layout the
  // production decoder allocates (§6.2 "Chroma subsample big").
  for (int i = 1; i < ncomp; ++i) {
    if (jf.frame.comps[i].h_samp > jf.frame.comps[0].h_samp ||
        jf.frame.comps[i].v_samp > jf.frame.comps[0].v_samp) {
      fail(ExitCode::kChromaSubsampleBig, "chroma denser than luma");
    }
  }
  if (c.pos() != end) fail(ExitCode::kNotAnImage, "SOF length mismatch");
}

void parse_sos(Cursor& c, std::size_t seg_len, JpegFile& jf) {
  std::size_t end = c.pos() + seg_len;
  int ns = c.u8();
  if (ns != jf.frame.ncomp()) {
    // Multi-scan sequential files interleave differently; not admitted.
    fail(ExitCode::kUnsupportedJpeg, "scan component count");
  }
  for (int i = 0; i < ns; ++i) {
    int cs = c.u8();
    std::uint8_t tables = c.u8();
    bool found = false;
    for (auto& comp : jf.frame.comps) {
      if (comp.id == cs) {
        comp.dc_tbl = tables >> 4;
        comp.ac_tbl = tables & 15;
        if (comp.dc_tbl > 3 || comp.ac_tbl > 3) {
          fail(ExitCode::kNotAnImage, "SOS table selector");
        }
        found = true;
        break;
      }
    }
    if (!found) fail(ExitCode::kNotAnImage, "SOS references unknown comp");
  }
  std::uint8_t ss = c.u8();
  std::uint8_t se = c.u8();
  std::uint8_t ah_al = c.u8();
  if (ss != 0 || se != 63 || ah_al != 0) {
    fail(ExitCode::kUnsupportedJpeg, "non-baseline spectral selection");
  }
  if (c.pos() != end) fail(ExitCode::kNotAnImage, "SOS length mismatch");
}

void finalize_geometry(JpegFile& jf) {
  auto& fr = jf.frame;
  fr.hmax = 1;
  fr.vmax = 1;
  for (const auto& comp : fr.comps) {
    fr.hmax = std::max(fr.hmax, comp.h_samp);
    fr.vmax = std::max(fr.vmax, comp.v_samp);
  }
  if (fr.ncomp() == 1) {
    // Single-component scans are non-interleaved: MCU = one block,
    // sampling factors do not apply (T.81 A.2.2).
    auto& comp = fr.comps[0];
    comp.h_samp = 1;
    comp.v_samp = 1;
    fr.hmax = fr.vmax = 1;
    comp.width_blocks = (fr.width + 7) / 8;
    comp.height_blocks = (fr.height + 7) / 8;
    fr.mcus_x = comp.width_blocks;
    fr.mcus_y = comp.height_blocks;
  } else {
    fr.mcus_x = (fr.width + fr.hmax * 8 - 1) / (fr.hmax * 8);
    fr.mcus_y = (fr.height + fr.vmax * 8 - 1) / (fr.vmax * 8);
    for (auto& comp : fr.comps) {
      comp.width_blocks = fr.mcus_x * comp.h_samp;
      comp.height_blocks = fr.mcus_y * comp.v_samp;
    }
  }
  // Validate table references now so the scan decoder can index blindly.
  for (const auto& comp : fr.comps) {
    if (!jf.qtables[comp.quant_idx].defined) {
      fail(ExitCode::kNotAnImage, "missing quant table");
    }
    if (!jf.dc_tables[comp.dc_tbl].defined() ||
        !jf.ac_tables[comp.ac_tbl].defined()) {
      fail(ExitCode::kNotAnImage, "missing huffman table");
    }
  }
}

// Finds the end of the entropy-coded scan: the offset of the EOI marker or,
// for truncated/corrupt files, the end of input.
void locate_scan_end(JpegFile& jf) {
  const auto& f = jf.file;
  std::size_t i = jf.scan_begin;
  while (i + 1 < f.size()) {
    if (f[i] != 0xFF) {
      ++i;
      continue;
    }
    std::uint8_t m = f[i + 1];
    if (m == 0x00 || (m >= 0xD0 && m <= 0xD7)) {
      i += 2;  // stuffed byte or RST marker: still inside the scan
      continue;
    }
    if (m == kEOI) {
      jf.scan_end = i;
      jf.has_eoi = true;
      jf.trailing_begin = i + 2;
      return;
    }
    if (m == 0xFF) {
      ++i;  // fill byte
      continue;
    }
    // Any other marker inside a single-scan baseline file (a second SOS,
    // DNL, ...) is a multi-scan or malformed file.
    fail(ExitCode::kUnsupportedJpeg, "unexpected marker in scan");
  }
  // No EOI: truncated or zero-padded file (§A.3). The scan is everything
  // that remains; round-trip checks decide admissibility.
  jf.scan_end = f.size();
  jf.has_eoi = false;
  jf.trailing_begin = f.size();
}

}  // namespace

namespace {

JpegFile parse_impl(std::span<const std::uint8_t> bytes, bool header_only);

}  // namespace

JpegFile parse_jpeg(std::span<const std::uint8_t> bytes) {
  return parse_impl(bytes, /*header_only=*/false);
}

JpegFile parse_jpeg_header(std::span<const std::uint8_t> header_bytes) {
  return parse_impl(header_bytes, /*header_only=*/true);
}

namespace {

JpegFile parse_impl(std::span<const std::uint8_t> bytes, bool header_only) {
  if (bytes.size() < 4 || bytes[0] != 0xFF || bytes[1] != kSOI) {
    fail(ExitCode::kNotAnImage, "no SOI");
  }
  JpegFile jf;
  jf.file.assign(bytes.begin(), bytes.end());
  Cursor c({jf.file.data(), jf.file.size()});
  c.skip(2);  // SOI

  bool have_sof = false;
  for (;;) {
    std::uint8_t ff = c.u8();
    if (ff != 0xFF) fail(ExitCode::kNotAnImage, "marker expected");
    std::uint8_t marker = c.u8();
    while (marker == 0xFF) marker = c.u8();  // fill bytes

    if (marker == kSOS) {
      if (!have_sof) fail(ExitCode::kNotAnImage, "SOS before SOF");
      std::size_t len = c.u16be();
      if (len < 2) fail(ExitCode::kNotAnImage, "SOS length");
      parse_sos(c, len - 2, jf);
      jf.scan_begin = c.pos();
      finalize_geometry(jf);
      if (header_only) {
        jf.scan_end = jf.scan_begin;
        jf.trailing_begin = jf.file.size();
        return jf;
      }
      locate_scan_end(jf);
      if (jf.scan_end == jf.scan_begin) {
        // "JPEG files that consist entirely of a header" (§6.2).
        fail(ExitCode::kUnsupportedJpeg, "empty scan");
      }
      return jf;
    }
    if (marker == kEOI) {
      fail(ExitCode::kUnsupportedJpeg, "header-only file");
    }
    if (marker == kSOI || (marker >= 0xD0 && marker <= 0xD7)) {
      fail(ExitCode::kNotAnImage, "stray restart/SOI in header");
    }

    std::size_t len = c.u16be();
    if (len < 2) fail(ExitCode::kNotAnImage, "segment length");
    std::size_t payload = len - 2;

    switch (marker) {
      case 0xC0:  // SOF0 baseline
      case 0xC1:  // SOF1 extended sequential (Huffman, 8-bit): admitted
        if (have_sof) fail(ExitCode::kNotAnImage, "duplicate SOF");
        parse_sof(c, payload, jf);
        have_sof = true;
        break;
      case 0xC2:
        fail(ExitCode::kProgressive, "progressive JPEG");
      case 0xC3:
      case 0xC5:
      case 0xC6:
      case 0xC7:
      case 0xC9:
      case 0xCA:
      case 0xCB:
      case 0xCD:
      case 0xCE:
      case 0xCF:
        fail(ExitCode::kUnsupportedJpeg, "unsupported SOF type");
      case kDHT:
        parse_dht(c, payload, jf);
        break;
      case kDQT:
        parse_dqt(c, payload, jf);
        break;
      case kDRI: {
        if (payload != 2) fail(ExitCode::kNotAnImage, "DRI length");
        jf.restart_interval = c.u16be();
        break;
      }
      case 0xDC:  // DNL
      case 0xDE:  // DHP (hierarchical)
      case 0xDF:  // EXP
        fail(ExitCode::kUnsupportedJpeg, "hierarchical/DNL");
      case kCOM:
      default:
        // APPn, COM, and anything unrecognized-but-framed: keep raw bytes
        // (they are part of the header blob Lepton zlib-compresses).
        c.skip(payload);
        break;
    }
  }
}

}  // namespace

// ---- streaming header probe -------------------------------------------------

HeaderProbeStatus JpegHeaderProbe::reject(util::ExitCode code,
                                          std::string msg) {
  status_ = HeaderProbeStatus::kRejected;
  code_ = code;
  msg_ = std::move(msg);
  return status_;
}

HeaderProbeStatus JpegHeaderProbe::update(std::span<const std::uint8_t> bytes) {
  if (status_ != HeaderProbeStatus::kNeedMore) return status_;

  if (pos_ == 0) {
    if (!bytes.empty() && bytes[0] != 0xFF) {
      return reject(ExitCode::kNotAnImage, "no SOI");
    }
    if (bytes.size() >= 2 && bytes[1] != kSOI) {
      return reject(ExitCode::kNotAnImage, "no SOI");
    }
    if (bytes.size() < 2) return status_;
    pos_ = 2;
  }

  // Marker walk, resumed at pos_ — always a marker boundary. A marker
  // segment is examined only once every one of its bytes has arrived;
  // classification reuses the same segment parsers as parse_jpeg, so the
  // probe can never disagree with the authoritative parse, only run ahead
  // of it.
  for (;;) {
    std::size_t p = pos_;
    if (p >= bytes.size()) return status_;
    if (bytes[p] != 0xFF) {
      return reject(ExitCode::kNotAnImage, "marker expected");
    }
    ++p;
    while (p < bytes.size() && bytes[p] == 0xFF) ++p;  // fill bytes
    if (p >= bytes.size()) return status_;
    std::uint8_t marker = bytes[p];
    ++p;

    if (marker == kSOS) {
      if (!have_sof_) return reject(ExitCode::kNotAnImage, "SOS before SOF");
      if (p + 2 > bytes.size()) return status_;
      std::size_t len = (static_cast<std::size_t>(bytes[p]) << 8) | bytes[p + 1];
      if (len < 2) return reject(ExitCode::kNotAnImage, "SOS length");
      if (p + len > bytes.size()) return status_;
      try {
        Cursor c(bytes);
        c.skip(p + 2);
        parse_sos(c, len - 2, jf_);
        finalize_geometry(jf_);
      } catch (const ParseError& e) {
        return reject(e.code(), e.what());
      }
      scan_begin_ = p + len;
      status_ = HeaderProbeStatus::kComplete;
      return status_;
    }
    if (marker == kEOI) {
      return reject(ExitCode::kUnsupportedJpeg, "header-only file");
    }
    if (marker == kSOI || (marker >= 0xD0 && marker <= 0xD7)) {
      return reject(ExitCode::kNotAnImage, "stray restart/SOI in header");
    }

    if (p + 2 > bytes.size()) return status_;
    std::size_t len = (static_cast<std::size_t>(bytes[p]) << 8) | bytes[p + 1];
    if (len < 2) return reject(ExitCode::kNotAnImage, "segment length");
    std::size_t payload = len - 2;

    // Marker-level rejections do not need the payload: a progressive or
    // hierarchical file dies the moment its SOF marker arrives, even if
    // the upload has barely started.
    switch (marker) {
      case 0xC0:
      case 0xC1:
        if (have_sof_) return reject(ExitCode::kNotAnImage, "duplicate SOF");
        break;
      case 0xC2:
        return reject(ExitCode::kProgressive, "progressive JPEG");
      case 0xC3:
      case 0xC5:
      case 0xC6:
      case 0xC7:
      case 0xC9:
      case 0xCA:
      case 0xCB:
      case 0xCD:
      case 0xCE:
      case 0xCF:
        return reject(ExitCode::kUnsupportedJpeg, "unsupported SOF type");
      case 0xDC:  // DNL
      case 0xDE:  // DHP (hierarchical)
      case 0xDF:  // EXP
        return reject(ExitCode::kUnsupportedJpeg, "hierarchical/DNL");
      default:
        break;
    }
    if (p + 2 + payload > bytes.size()) return status_;

    try {
      Cursor c(bytes);
      c.skip(p + 2);
      switch (marker) {
        case 0xC0:
        case 0xC1:
          parse_sof(c, payload, jf_);
          have_sof_ = true;
          break;
        case kDHT:
          parse_dht(c, payload, jf_);
          break;
        case kDQT:
          parse_dqt(c, payload, jf_);
          break;
        case kDRI:
          if (payload != 2) return reject(ExitCode::kNotAnImage, "DRI length");
          break;
        default:
          break;  // APPn, COM, unrecognized-but-framed: carried verbatim
      }
    } catch (const ParseError& e) {
      return reject(e.code(), e.what());
    }
    pos_ = p + 2 + payload;
  }
}

}  // namespace lepton::jpegfmt
