// Baseline-JPEG container parser. Walks the marker structure, collects
// quantization/Huffman tables and frame geometry, locates the entropy-coded
// scan, and classifies everything the production system rejects
// (progressive, CMYK, exotic sampling, header-only files, non-images) into
// the §6.2 exit-code taxonomy via ParseError.
//
// The parser never trusts input: every length, index and table reference is
// validated (the uncmpjpg lessons of §6.7).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "jpeg/huffman_table.h"
#include "jpeg/jpeg_types.h"

namespace lepton::jpegfmt {

struct JpegFile {
  std::vector<std::uint8_t> file;  // complete original bytes

  std::size_t scan_begin = 0;  // offset of first entropy-coded byte
  std::size_t scan_end = 0;    // offset one past the last entropy-coded byte
  bool has_eoi = false;        // EOI marker present after the scan
  std::size_t trailing_begin = 0;  // offset of bytes after EOI (== size if none)

  FrameInfo frame;
  std::array<QuantTable, 4> qtables;
  std::array<HuffmanTable, 4> dc_tables;
  std::array<HuffmanTable, 4> ac_tables;
  int restart_interval = 0;  // DRI, in MCUs; 0 = no restarts

  std::span<const std::uint8_t> header_bytes() const {
    return {file.data(), scan_begin};
  }
  std::span<const std::uint8_t> scan_bytes() const {
    return {file.data() + scan_begin, scan_end - scan_begin};
  }
  std::span<const std::uint8_t> trailing_bytes() const {
    return {file.data() + trailing_begin, file.size() - trailing_begin};
  }
};

// Parses and validates a baseline JPEG. Throws ParseError with the §6.2
// classification on anything the system does not admit.
JpegFile parse_jpeg(std::span<const std::uint8_t> bytes);

// Parses header bytes alone (SOI .. end of SOS header, no scan data). Used
// by chunk decoders: every Lepton chunk embeds the JPEG header so it can be
// decoded without access to other chunks (§3.4).
JpegFile parse_jpeg_header(std::span<const std::uint8_t> header_bytes);

// ---- streaming header probe -------------------------------------------------

enum class HeaderProbeStatus : std::uint8_t {
  kNeedMore,   // prefix is consistent with an admissible JPEG, keep feeding
  kComplete,   // header walked through SOS; scan_begin() is valid
  kRejected,   // classified rejection — the file can never be admitted
};

// Resumable pre-parse of a baseline-JPEG header for streaming feeds
// (lepton::EncodeSession): call update() with the full file prefix
// accumulated so far, as often as new bytes arrive. The probe resumes at
// the marker boundary where it last stopped — completed markers are never
// re-walked — and a marker segment is examined only once all of its bytes
// are present, so partial headers simply report kNeedMore.
//
// Rejections reuse the very same segment parsers as parse_jpeg (same §6.2
// codes, same check order), which is what lets a server abort an upload of
// a progressive/CMYK/non-image file as soon as the offending marker
// arrives instead of buffering the whole file first. kComplete is advisory
// — the authoritative parse still runs on the complete buffer.
class JpegHeaderProbe {
 public:
  HeaderProbeStatus update(std::span<const std::uint8_t> bytes);

  HeaderProbeStatus status() const { return status_; }
  util::ExitCode reject_code() const { return code_; }
  const std::string& reject_reason() const { return msg_; }
  // Offset of the first entropy-coded scan byte (valid once kComplete).
  std::size_t scan_begin() const { return scan_begin_; }

 private:
  HeaderProbeStatus reject(util::ExitCode code, std::string msg);

  std::size_t pos_ = 0;  // next unexamined offset (a marker boundary)
  bool have_sof_ = false;
  std::size_t scan_begin_ = 0;
  HeaderProbeStatus status_ = HeaderProbeStatus::kNeedMore;
  util::ExitCode code_ = util::ExitCode::kSuccess;
  std::string msg_;
  JpegFile jf_;  // accumulated table/frame state for the shared validators
};

}  // namespace lepton::jpegfmt
