// Baseline-JPEG container parser. Walks the marker structure, collects
// quantization/Huffman tables and frame geometry, locates the entropy-coded
// scan, and classifies everything the production system rejects
// (progressive, CMYK, exotic sampling, header-only files, non-images) into
// the §6.2 exit-code taxonomy via ParseError.
//
// The parser never trusts input: every length, index and table reference is
// validated (the uncmpjpg lessons of §6.7).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "jpeg/huffman_table.h"
#include "jpeg/jpeg_types.h"

namespace lepton::jpegfmt {

struct JpegFile {
  std::vector<std::uint8_t> file;  // complete original bytes

  std::size_t scan_begin = 0;  // offset of first entropy-coded byte
  std::size_t scan_end = 0;    // offset one past the last entropy-coded byte
  bool has_eoi = false;        // EOI marker present after the scan
  std::size_t trailing_begin = 0;  // offset of bytes after EOI (== size if none)

  FrameInfo frame;
  std::array<QuantTable, 4> qtables;
  std::array<HuffmanTable, 4> dc_tables;
  std::array<HuffmanTable, 4> ac_tables;
  int restart_interval = 0;  // DRI, in MCUs; 0 = no restarts

  std::span<const std::uint8_t> header_bytes() const {
    return {file.data(), scan_begin};
  }
  std::span<const std::uint8_t> scan_bytes() const {
    return {file.data() + scan_begin, scan_end - scan_begin};
  }
  std::span<const std::uint8_t> trailing_bytes() const {
    return {file.data() + trailing_begin, file.size() - trailing_begin};
  }
};

// Parses and validates a baseline JPEG. Throws ParseError with the §6.2
// classification on anything the system does not admit.
JpegFile parse_jpeg(std::span<const std::uint8_t> bytes);

// Parses header bytes alone (SOI .. end of SOS header, no scan data). Used
// by chunk decoders: every Lepton chunk embeds the JPEG header so it can be
// decoded without access to other chunks (§3.4).
JpegFile parse_jpeg_header(std::span<const std::uint8_t> header_bytes);

}  // namespace lepton::jpegfmt
