#include "jpeg/jfif_builder.h"

#include <cmath>
#include <cstring>

#include "jpeg/dct.h"
#include "jpeg/parser.h"
#include "jpeg/scan_encoder.h"

namespace lepton::jpegfmt {
namespace {

// ITU-T T.81 Annex K reference tables.
constexpr std::array<std::uint16_t, 64> kLumaQ = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

constexpr std::array<std::uint16_t, 64> kChromaQ = {
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99, 47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99};

constexpr std::uint8_t kDcLumaCounts[16] = {0, 1, 5, 1, 1, 1, 1, 1,
                                            1, 0, 0, 0, 0, 0, 0, 0};
constexpr std::uint8_t kDcSymbols[12] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
constexpr std::uint8_t kDcChromaCounts[16] = {0, 3, 1, 1, 1, 1, 1, 1,
                                              1, 1, 1, 0, 0, 0, 0, 0};

constexpr std::uint8_t kAcLumaCounts[16] = {0, 2, 1, 3, 3, 2, 4, 3,
                                            5, 5, 4, 4, 0, 0, 1, 0x7d};
constexpr std::uint8_t kAcLumaSymbols[] = {
    0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31, 0x41, 0x06,
    0x13, 0x51, 0x61, 0x07, 0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xa1, 0x08,
    0x23, 0x42, 0xb1, 0xc1, 0x15, 0x52, 0xd1, 0xf0, 0x24, 0x33, 0x62, 0x72,
    0x82, 0x09, 0x0a, 0x16, 0x17, 0x18, 0x19, 0x1a, 0x25, 0x26, 0x27, 0x28,
    0x29, 0x2a, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3a, 0x43, 0x44, 0x45,
    0x46, 0x47, 0x48, 0x49, 0x4a, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
    0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6a, 0x73, 0x74, 0x75,
    0x76, 0x77, 0x78, 0x79, 0x7a, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
    0x8a, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9a, 0xa2, 0xa3,
    0xa4, 0xa5, 0xa6, 0xa7, 0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4, 0xb5, 0xb6,
    0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7, 0xc8, 0xc9,
    0xca, 0xd2, 0xd3, 0xd4, 0xd5, 0xd6, 0xd7, 0xd8, 0xd9, 0xda, 0xe1, 0xe2,
    0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea, 0xf1, 0xf2, 0xf3, 0xf4,
    0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa};

constexpr std::uint8_t kAcChromaCounts[16] = {0, 2, 1, 2, 4, 4, 3, 4,
                                              7, 5, 4, 4, 0, 1, 2, 0x77};
constexpr std::uint8_t kAcChromaSymbols[] = {
    0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21, 0x31, 0x06, 0x12, 0x41,
    0x51, 0x07, 0x61, 0x71, 0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91,
    0xa1, 0xb1, 0xc1, 0x09, 0x23, 0x33, 0x52, 0xf0, 0x15, 0x62, 0x72, 0xd1,
    0x0a, 0x16, 0x24, 0x34, 0xe1, 0x25, 0xf1, 0x17, 0x18, 0x19, 0x1a, 0x26,
    0x27, 0x28, 0x29, 0x2a, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3a, 0x43, 0x44,
    0x45, 0x46, 0x47, 0x48, 0x49, 0x4a, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58,
    0x59, 0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6a, 0x73, 0x74,
    0x75, 0x76, 0x77, 0x78, 0x79, 0x7a, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87,
    0x88, 0x89, 0x8a, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9a,
    0xa2, 0xa3, 0xa4, 0xa5, 0xa6, 0xa7, 0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4,
    0xb5, 0xb6, 0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7,
    0xc8, 0xc9, 0xca, 0xd2, 0xd3, 0xd4, 0xd5, 0xd6, 0xd7, 0xd8, 0xd9, 0xda,
    0xe2, 0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea, 0xf2, 0xf3, 0xf4,
    0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa};

std::array<std::uint16_t, 64> scale_table(
    const std::array<std::uint16_t, 64>& base, int quality) {
  quality = quality < 1 ? 1 : (quality > 100 ? 100 : quality);
  int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  std::array<std::uint16_t, 64> out{};
  for (int i = 0; i < 64; ++i) {
    int v = (base[i] * scale + 50) / 100;
    out[i] = static_cast<std::uint16_t>(v < 1 ? 1 : (v > 255 ? 255 : v));
  }
  return out;
}

struct Plane {
  int w = 0, h = 0;
  std::vector<std::uint8_t> px;
  std::uint8_t at(int x, int y) const {
    x = x < 0 ? 0 : (x >= w ? w - 1 : x);
    y = y < 0 ? 0 : (y >= h ? h - 1 : y);
    return px[static_cast<std::size_t>(y) * w + x];
  }
};

void be16(std::vector<std::uint8_t>& v, std::uint16_t x) {
  v.push_back(static_cast<std::uint8_t>(x >> 8));
  v.push_back(static_cast<std::uint8_t>(x));
}

void write_dht(std::vector<std::uint8_t>& out, int klass, int id,
               const HuffmanTable& t) {
  out.push_back(0xFF);
  out.push_back(0xC4);
  std::size_t total = t.symbols().size();
  be16(out, static_cast<std::uint16_t>(2 + 1 + 16 + total));
  out.push_back(static_cast<std::uint8_t>((klass << 4) | id));
  out.insert(out.end(), t.counts().begin(), t.counts().end());
  out.insert(out.end(), t.symbols().begin(), t.symbols().end());
}

int magnitude_bits(int v) {
  int a = v < 0 ? -v : v;
  int n = 0;
  while (a != 0) {
    ++n;
    a >>= 1;
  }
  return n;
}

// Tallies the (run,size) symbol frequencies the scan encoder will emit, for
// the optimize_huffman path (what jpegtran -optimize does).
void count_block_symbols(const std::int16_t* blk, std::int16_t& dc_pred,
                         std::uint64_t* dc_freq, std::uint64_t* ac_freq) {
  int diff = blk[0] - dc_pred;
  dc_pred = blk[0];
  ++dc_freq[magnitude_bits(diff)];
  int run = 0;
  for (int k = 1; k < 64; ++k) {
    int c = blk[kZigzag[k]];
    if (c == 0) {
      ++run;
      continue;
    }
    while (run > 15) {
      ++ac_freq[0xF0];
      run -= 16;
    }
    ++ac_freq[(run << 4) | magnitude_bits(c)];
    run = 0;
  }
  if (run > 0) ++ac_freq[0x00];
}

}  // namespace

std::array<std::uint16_t, 64> quality_scaled_luma_table(int quality) {
  return scale_table(kLumaQ, quality);
}
std::array<std::uint16_t, 64> quality_scaled_chroma_table(int quality) {
  return scale_table(kChromaQ, quality);
}

std::vector<std::uint8_t> build_jfif(const RasterImage& img,
                                     const JfifOptions& opt) {
  const bool gray = img.channels == 1;
  const int ncomp = gray ? 1 : 3;
  int hs = 1, vs = 1;
  if (!gray) {
    switch (opt.subsampling) {
      case Subsampling::k444: hs = 1; vs = 1; break;
      case Subsampling::k422: hs = 2; vs = 1; break;
      case Subsampling::k420: hs = 2; vs = 2; break;
    }
  }

  // ---- Build a JpegFile describing the frame (the scan encoder's view).
  JpegFile jf;
  jf.restart_interval = opt.restart_interval_mcus;
  auto lq = quality_scaled_luma_table(opt.quality);
  jf.qtables[0].q = lq;
  jf.qtables[0].defined = true;
  if (!gray) {
    jf.qtables[1].q = quality_scaled_chroma_table(opt.quality);
    jf.qtables[1].defined = true;
  }
  FrameInfo& fr = jf.frame;
  fr.width = img.width;
  fr.height = img.height;
  fr.precision = 8;
  for (int c = 0; c < ncomp; ++c) {
    ComponentInfo ci;
    ci.id = c + 1;
    ci.h_samp = c == 0 ? hs : 1;
    ci.v_samp = c == 0 ? vs : 1;
    ci.quant_idx = c == 0 ? 0 : 1;
    ci.dc_tbl = c == 0 ? 0 : 1;
    ci.ac_tbl = c == 0 ? 0 : 1;
    fr.comps.push_back(ci);
  }
  fr.hmax = gray ? 1 : hs;
  fr.vmax = gray ? 1 : vs;
  if (gray) {
    fr.comps[0].h_samp = fr.comps[0].v_samp = 1;
    fr.comps[0].width_blocks = (fr.width + 7) / 8;
    fr.comps[0].height_blocks = (fr.height + 7) / 8;
    fr.mcus_x = fr.comps[0].width_blocks;
    fr.mcus_y = fr.comps[0].height_blocks;
  } else {
    fr.mcus_x = (fr.width + fr.hmax * 8 - 1) / (fr.hmax * 8);
    fr.mcus_y = (fr.height + fr.vmax * 8 - 1) / (fr.vmax * 8);
    for (auto& ci : fr.comps) {
      ci.width_blocks = fr.mcus_x * ci.h_samp;
      ci.height_blocks = fr.mcus_y * ci.v_samp;
    }
  }

  // ---- Color convert + subsample into per-component planes.
  std::vector<Plane> planes(ncomp);
  if (gray) {
    planes[0].w = img.width;
    planes[0].h = img.height;
    planes[0].px = img.pixels;
  } else {
    Plane y, cb, cr;
    y.w = cb.w = cr.w = img.width;
    y.h = cb.h = cr.h = img.height;
    y.px.resize(static_cast<std::size_t>(img.width) * img.height);
    cb.px.resize(y.px.size());
    cr.px.resize(y.px.size());
    for (int r = 0; r < img.height; ++r) {
      for (int x = 0; x < img.width; ++x) {
        double R = img.at(x, r, 0), G = img.at(x, r, 1), B = img.at(x, r, 2);
        double Y = 0.299 * R + 0.587 * G + 0.114 * B;
        double Cb = -0.168736 * R - 0.331264 * G + 0.5 * B + 128.0;
        double Cr = 0.5 * R - 0.418688 * G - 0.081312 * B + 128.0;
        auto clamp8 = [](double v) {
          return static_cast<std::uint8_t>(v < 0 ? 0
                                                 : (v > 255 ? 255 : v + 0.5));
        };
        std::size_t idx = static_cast<std::size_t>(r) * img.width + x;
        y.px[idx] = clamp8(Y);
        cb.px[idx] = clamp8(Cb);
        cr.px[idx] = clamp8(Cr);
      }
    }
    planes[0] = std::move(y);
    // Box-filter chroma down by the sampling ratio.
    auto downsample = [&](const Plane& src) {
      Plane d;
      d.w = (img.width + hs - 1) / hs;
      d.h = (img.height + vs - 1) / vs;
      d.px.resize(static_cast<std::size_t>(d.w) * d.h);
      for (int ry = 0; ry < d.h; ++ry) {
        for (int rx = 0; rx < d.w; ++rx) {
          int sum = 0, n = 0;
          for (int dy = 0; dy < vs; ++dy) {
            for (int dx = 0; dx < hs; ++dx) {
              int sx = rx * hs + dx, sy = ry * vs + dy;
              if (sx < img.width && sy < img.height) {
                sum += src.at(sx, sy);
                ++n;
              }
            }
          }
          d.px[static_cast<std::size_t>(ry) * d.w + rx] =
              static_cast<std::uint8_t>((sum + n / 2) / n);
        }
      }
      return d;
    };
    planes[1] = downsample(cb);
    planes[2] = downsample(cr);
  }

  // ---- Forward DCT + quantization into the coefficient image.
  CoeffImage ci;
  ci.comps.resize(ncomp);
  for (int c = 0; c < ncomp; ++c) {
    const auto& comp = fr.comps[c];
    auto& cc = ci.comps[c];
    cc.resize(comp.width_blocks, comp.height_blocks);
    const auto& q = jf.qtables[comp.quant_idx].q;
    const Plane& pl = planes[c];
    std::uint8_t blockpx[64];
    for (int by = 0; by < comp.height_blocks; ++by) {
      for (int bx = 0; bx < comp.width_blocks; ++bx) {
        for (int yy = 0; yy < 8; ++yy) {
          for (int xx = 0; xx < 8; ++xx) {
            blockpx[yy * 8 + xx] = pl.at(bx * 8 + xx, by * 8 + yy);
          }
        }
        double coef[64];
        fdct_8x8(blockpx, 8, coef);
        std::int16_t* out = cc.block(bx, by);
        for (int k = 0; k < 64; ++k) {
          long qv = std::lround(coef[k] / q[k]);
          if (qv > 1023) qv = 1023;
          if (qv < -1024) qv = -1024;
          out[k] = static_cast<std::int16_t>(qv);
        }
      }
    }
  }

  // ---- Huffman tables (standard Annex K or per-file optimal).
  if (opt.optimize_huffman) {
    std::uint64_t dc_freq[2][12] = {};
    std::uint64_t ac_freq[2][256] = {};
    std::array<std::int16_t, 4> dc_pred{};
    std::uint32_t mcus = 0;
    for (int my = 0; my < fr.mcus_y; ++my) {
      for (int mx = 0; mx < fr.mcus_x; ++mx) {
        if (jf.restart_interval > 0 && mcus > 0 &&
            mcus % jf.restart_interval == 0) {
          dc_pred.fill(0);
        }
        for (int c = 0; c < ncomp; ++c) {
          const auto& comp = fr.comps[c];
          int ti = c == 0 ? 0 : 1;
          for (int sy = 0; sy < comp.v_samp; ++sy) {
            for (int sx = 0; sx < comp.h_samp; ++sx) {
              int bx = gray ? mx : mx * comp.h_samp + sx;
              int by = gray ? my : my * comp.v_samp + sy;
              count_block_symbols(ci.comps[c].block(bx, by), dc_pred[c],
                                  dc_freq[ti], ac_freq[ti]);
            }
          }
        }
        ++mcus;
      }
    }
    jf.dc_tables[0] = build_optimal_table({dc_freq[0], 12});
    jf.ac_tables[0] = build_optimal_table({ac_freq[0], 256});
    if (!gray) {
      jf.dc_tables[1] = build_optimal_table({dc_freq[1], 12});
      jf.ac_tables[1] = build_optimal_table({ac_freq[1], 256});
    }
  } else {
    jf.dc_tables[0] = HuffmanTable::build(kDcLumaCounts, kDcSymbols);
    jf.ac_tables[0] = HuffmanTable::build(
        kAcLumaCounts, {kAcLumaSymbols, sizeof(kAcLumaSymbols)});
    if (!gray) {
      jf.dc_tables[1] = HuffmanTable::build(kDcChromaCounts, kDcSymbols);
      jf.ac_tables[1] = HuffmanTable::build(
          kAcChromaCounts, {kAcChromaSymbols, sizeof(kAcChromaSymbols)});
    }
  }

  // ---- Header bytes.
  std::vector<std::uint8_t> out;
  out.push_back(0xFF);
  out.push_back(0xD8);  // SOI
  // APP0 / JFIF.
  out.push_back(0xFF);
  out.push_back(0xE0);
  be16(out, 16);
  const char jfif[5] = {'J', 'F', 'I', 'F', '\0'};
  out.insert(out.end(), jfif, jfif + 5);
  out.push_back(1);
  out.push_back(1);  // version 1.1
  out.push_back(0);  // aspect-ratio units
  be16(out, 1);
  be16(out, 1);
  out.push_back(0);
  out.push_back(0);  // no thumbnail
  if (!opt.comment.empty()) {
    out.push_back(0xFF);
    out.push_back(0xFE);
    be16(out, static_cast<std::uint16_t>(2 + opt.comment.size()));
    out.insert(out.end(), opt.comment.begin(), opt.comment.end());
  }
  // DQT.
  out.push_back(0xFF);
  out.push_back(0xDB);
  be16(out, static_cast<std::uint16_t>(2 + (gray ? 1 : 2) * 65));
  for (int t = 0; t < (gray ? 1 : 2); ++t) {
    out.push_back(static_cast<std::uint8_t>(t));
    for (int k = 0; k < 64; ++k) {
      out.push_back(static_cast<std::uint8_t>(jf.qtables[t].q[kZigzag[k]]));
    }
  }
  // SOF0.
  out.push_back(0xFF);
  out.push_back(0xC0);
  be16(out, static_cast<std::uint16_t>(8 + 3 * ncomp));
  out.push_back(8);
  be16(out, static_cast<std::uint16_t>(fr.height));
  be16(out, static_cast<std::uint16_t>(fr.width));
  out.push_back(static_cast<std::uint8_t>(ncomp));
  for (int c = 0; c < ncomp; ++c) {
    out.push_back(static_cast<std::uint8_t>(c + 1));
    int h = c == 0 ? hs : 1, v = c == 0 ? vs : 1;
    if (gray) h = v = 1;
    out.push_back(static_cast<std::uint8_t>((h << 4) | v));
    out.push_back(static_cast<std::uint8_t>(c == 0 ? 0 : 1));
  }
  // DHT.
  write_dht(out, 0, 0, jf.dc_tables[0]);
  write_dht(out, 1, 0, jf.ac_tables[0]);
  if (!gray) {
    write_dht(out, 0, 1, jf.dc_tables[1]);
    write_dht(out, 1, 1, jf.ac_tables[1]);
  }
  // DRI.
  if (opt.restart_interval_mcus > 0) {
    out.push_back(0xFF);
    out.push_back(0xDD);
    be16(out, 4);
    be16(out, static_cast<std::uint16_t>(opt.restart_interval_mcus));
  }
  // SOS.
  out.push_back(0xFF);
  out.push_back(0xDA);
  be16(out, static_cast<std::uint16_t>(6 + 2 * ncomp));
  out.push_back(static_cast<std::uint8_t>(ncomp));
  for (int c = 0; c < ncomp; ++c) {
    out.push_back(static_cast<std::uint8_t>(c + 1));
    int t = c == 0 ? 0 : 1;
    out.push_back(static_cast<std::uint8_t>((t << 4) | t));
  }
  out.push_back(0);
  out.push_back(63);
  out.push_back(0);

  // ---- Scan bytes.
  std::uint32_t total_mcus =
      static_cast<std::uint32_t>(fr.mcus_x) * static_cast<std::uint32_t>(fr.mcus_y);
  std::uint32_t rst_limit =
      opt.restart_interval_mcus > 0
          ? (total_mcus - 1) / static_cast<std::uint32_t>(opt.restart_interval_mcus)
          : 0;
  auto scan = encode_scan(jf, ci, opt.pad_bit, rst_limit);
  out.insert(out.end(), scan.begin(), scan.end());
  out.push_back(0xFF);
  out.push_back(0xD9);  // EOI
  return out;
}

}  // namespace lepton::jpegfmt
