#include "jpeg/scan_encoder.h"

#include <bit>

namespace lepton::jpegfmt {
namespace {

using util::ExitCode;

// Bit writer with JPEG 0xFF00 stuffing. Emits only completed bytes; can be
// seeded with a handover partial byte and reports its final partial state.
class StuffedBitWriter {
 public:
  StuffedBitWriter(std::uint8_t partial, int bit_off)
      : acc_(bit_off == 0 ? 0 : (partial >> (8 - bit_off))), nbits_(bit_off) {}

  void put_bits(std::uint32_t bits, int n) {
    acc_ = (acc_ << n) | (bits & ((1ull << n) - 1));
    nbits_ += n;
    while (nbits_ >= 8) {
      nbits_ -= 8;
      emit_byte(static_cast<std::uint8_t>(acc_ >> nbits_));
    }
    acc_ &= (1ull << nbits_) - 1;
  }

  void pad_to_byte(std::uint32_t pad_bit) {
    if (nbits_ == 0) return;
    std::uint32_t pad = pad_bit ? (1u << (8 - nbits_)) - 1u : 0u;
    put_bits(pad, 8 - nbits_);
  }

  // Markers are written outside the entropy bit stream (must be aligned).
  void put_marker(std::uint8_t m) {
    out_.push_back(0xFF);
    out_.push_back(m);
  }

  int bit_offset() const { return nbits_; }
  std::uint8_t partial_byte() const {
    return nbits_ == 0
               ? 0
               : static_cast<std::uint8_t>((acc_ << (8 - nbits_)) & 0xFF);
  }

  std::vector<std::uint8_t> take() { return std::move(out_); }
  std::size_t bytes_emitted() const { return out_.size(); }

 private:
  void emit_byte(std::uint8_t b) {
    out_.push_back(b);
    if (b == 0xFF) out_.push_back(0x00);
  }

  std::vector<std::uint8_t> out_;
  std::uint64_t acc_;
  int nbits_;
};

int magnitude_bits(int v) {
  unsigned a = static_cast<unsigned>(v < 0 ? -v : v);
  return 32 - std::countl_zero(a | 1) - (a == 0 ? 1 : 0);
}

void put_coded(StuffedBitWriter& w, const HuffmanTable& t, int symbol) {
  int len = t.code_length(static_cast<std::uint8_t>(symbol));
  if (len == 0) {
    // The file's own tables produced these symbols during decode, so this
    // can only mean internal state corruption (§6.2 "Impossible" row).
    throw ParseError(ExitCode::kImpossible, "symbol without Huffman code");
  }
  w.put_bits(t.code(static_cast<std::uint8_t>(symbol)), len);
}

void encode_block(StuffedBitWriter& w, const std::int16_t* blk,
                  const HuffmanTable& dct, const HuffmanTable& act,
                  std::int16_t& dc_pred) {
  int diff = blk[0] - dc_pred;
  dc_pred = blk[0];
  int s = diff == 0 ? 0 : magnitude_bits(diff);
  put_coded(w, dct, s);
  if (s > 0) {
    int v = diff < 0 ? diff + (1 << s) - 1 : diff;
    w.put_bits(static_cast<std::uint32_t>(v), s);
  }

  int run = 0;
  for (int k = 1; k < 64; ++k) {
    int c = blk[kZigzag[k]];
    if (c == 0) {
      ++run;
      continue;
    }
    while (run > 15) {
      put_coded(w, act, 0xF0);  // ZRL
      run -= 16;
    }
    int size = magnitude_bits(c);
    put_coded(w, act, (run << 4) | size);
    int v = c < 0 ? c + (1 << size) - 1 : c;
    w.put_bits(static_cast<std::uint32_t>(v), size);
    run = 0;
  }
  if (run > 0) put_coded(w, act, 0x00);  // EOB
}

}  // namespace

std::vector<std::uint8_t> encode_scan_rows(const JpegFile& jf,
                                           const CoeffImage& coeffs,
                                           const ScanEncodeParams& params,
                                           HuffmanHandover* handover_out) {
  return encode_scan_rows_fn(
      jf,
      [&coeffs](int comp, int bx, int by) {
        return coeffs.comps[comp].block(bx, by);
      },
      params, handover_out);
}

std::vector<std::uint8_t> encode_scan_rows_fn(const JpegFile& jf,
                                              const BlockSourceFn& source,
                                              const ScanEncodeParams& params,
                                              HuffmanHandover* handover_out) {
  const FrameInfo& fr = jf.frame;
  const HuffmanHandover& h = params.handover;
  StuffedBitWriter w(h.partial_byte, h.pos.bit_off);
  std::array<std::int16_t, 4> dc_pred = h.dc_pred;
  std::uint32_t mcus_done = h.mcus_done;
  std::uint32_t rst_emitted = h.rst_seen;
  const int dri = jf.restart_interval;

  struct Slot {
    int comp, bx, by;
  };
  std::vector<Slot> layout;
  for (int ci = 0; ci < fr.ncomp(); ++ci) {
    const auto& comp = fr.comps[ci];
    for (int by = 0; by < comp.v_samp; ++by) {
      for (int bx = 0; bx < comp.h_samp; ++bx) layout.push_back({ci, bx, by});
    }
  }

  for (int my = params.start_mcu_row; my < params.end_mcu_row; ++my) {
    for (int mx = 0; mx < fr.mcus_x; ++mx) {
      if (dri > 0 && mcus_done > 0 && mcus_done % dri == 0 &&
          rst_emitted < params.rst_count_limit) {
        w.pad_to_byte(params.pad_bit);
        w.put_marker(static_cast<std::uint8_t>(0xD0 + (rst_emitted % 8)));
        ++rst_emitted;
        dc_pred.fill(0);
      }
      for (const auto& sl : layout) {
        const auto& comp = fr.comps[sl.comp];
        int bx = (fr.ncomp() == 1) ? mx : mx * comp.h_samp + sl.bx;
        int by = (fr.ncomp() == 1) ? my : my * comp.v_samp + sl.by;
        encode_block(w, source(sl.comp, bx, by), jf.dc_tables[comp.dc_tbl],
                     jf.ac_tables[comp.ac_tbl], dc_pred[sl.comp]);
      }
      ++mcus_done;
    }
  }

  if (params.final_segment) w.pad_to_byte(params.pad_bit);

  if (handover_out != nullptr) {
    handover_out->pos.byte_off = h.pos.byte_off + w.bytes_emitted();
    handover_out->pos.bit_off = w.bit_offset();
    handover_out->partial_byte = w.partial_byte();
    handover_out->dc_pred = dc_pred;
    handover_out->mcus_done = mcus_done;
    handover_out->rst_seen = rst_emitted;
  }
  return w.take();
}

std::vector<std::uint8_t> encode_scan(const JpegFile& jf,
                                      const CoeffImage& coeffs,
                                      std::uint8_t pad_bit,
                                      std::uint32_t rst_count_limit) {
  ScanEncodeParams p;
  p.start_mcu_row = 0;
  p.end_mcu_row = jf.frame.mcus_y;
  p.pad_bit = pad_bit;
  p.rst_count_limit = rst_count_limit;
  p.final_segment = true;
  return encode_scan_rows(jf, coeffs, p, nullptr);
}

std::vector<std::uint8_t> reconstruct_scan(const JpegFile& jf,
                                           const ScanDecodeResult& dec) {
  ScanEncodeParams p;
  p.start_mcu_row = 0;
  p.end_mcu_row = jf.frame.mcus_y;
  p.pad_bit = dec.pad_bit;
  p.rst_count_limit = dec.rst_count;
  p.final_segment = false;  // the original padding lives in trailing_scan
  auto scan = encode_scan_rows(jf, dec.coeffs, p, nullptr);
  scan.insert(scan.end(), dec.trailing_scan.begin(), dec.trailing_scan.end());
  return scan;
}

std::vector<std::uint8_t> reconstruct_file(const JpegFile& jf,
                                           const ScanDecodeResult& dec) {
  std::vector<std::uint8_t> out(jf.header_bytes().begin(),
                                jf.header_bytes().end());
  auto scan = reconstruct_scan(jf, dec);
  out.insert(out.end(), scan.begin(), scan.end());
  if (jf.has_eoi) {
    out.push_back(0xFF);
    out.push_back(0xD9);
  }
  out.insert(out.end(), jf.trailing_bytes().begin(), jf.trailing_bytes().end());
  return out;
}

}  // namespace lepton::jpegfmt
