#include "jpeg/scan_encoder.h"

namespace lepton::jpegfmt {

std::vector<std::uint8_t> encode_scan_rows(const JpegFile& jf,
                                           const CoeffImage& coeffs,
                                           const ScanEncodeParams& params,
                                           HuffmanHandover* handover_out) {
  std::vector<std::uint8_t> out;
  encode_scan_rows_with(
      jf,
      [&coeffs](int comp, int bx, int by) {
        return coeffs.comps[comp].block(bx, by);
      },
      params, handover_out, &out);
  return out;
}

std::vector<std::uint8_t> encode_scan(const JpegFile& jf,
                                      const CoeffImage& coeffs,
                                      std::uint8_t pad_bit,
                                      std::uint32_t rst_count_limit) {
  ScanEncodeParams p;
  p.start_mcu_row = 0;
  p.end_mcu_row = jf.frame.mcus_y;
  p.pad_bit = pad_bit;
  p.rst_count_limit = rst_count_limit;
  p.final_segment = true;
  return encode_scan_rows(jf, coeffs, p, nullptr);
}

std::vector<std::uint8_t> reconstruct_scan(const JpegFile& jf,
                                           const ScanDecodeResult& dec) {
  ScanEncodeParams p;
  p.start_mcu_row = 0;
  p.end_mcu_row = jf.frame.mcus_y;
  p.pad_bit = dec.pad_bit;
  p.rst_count_limit = dec.rst_count;
  p.final_segment = false;  // the original padding lives in trailing_scan
  auto scan = encode_scan_rows(jf, dec.coeffs, p, nullptr);
  scan.insert(scan.end(), dec.trailing_scan.begin(), dec.trailing_scan.end());
  return scan;
}

std::vector<std::uint8_t> reconstruct_file(const JpegFile& jf,
                                           const ScanDecodeResult& dec) {
  std::vector<std::uint8_t> out(jf.header_bytes().begin(),
                                jf.header_bytes().end());
  auto scan = reconstruct_scan(jf, dec);
  out.insert(out.end(), scan.begin(), scan.end());
  if (jf.has_eoi) {
    out.push_back(0xFF);
    out.push_back(0xD9);
  }
  out.insert(out.end(), jf.trailing_bytes().begin(), jf.trailing_bytes().end());
  return out;
}

}  // namespace lepton::jpegfmt
