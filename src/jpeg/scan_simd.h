// Vectorized coefficient preparation for the scan re-encoder.
//
// The decode path re-Huffman-encodes every block it reconstructs
// (encode_scan_rows_with); the serial per-coefficient walk there — load a
// zigzag coefficient, branch on zero, compute its magnitude class — costs
// one hard-to-predict branch per coefficient on mostly-zero blocks. The
// prepare pass below lifts that work out of the emission loop: it computes,
// for all 63 AC coefficients at once, the zigzag-ordered values, their
// magnitude bit-lengths, and a nonzero bitmask. The emission loop then
// walks only the set bits (countr_zero), with run lengths falling out of
// the bit positions — no per-zero work at all.
//
// Three implementations share the contract: a scalar fallback (always
// compiled, always tested), SSE2 (the x86-64 baseline), and AVX2 (runtime
// dispatch via util::cpu_features). All three produce byte-identical
// PreparedBlock contents; the SIMD magnitude class comes from the float
// exponent field (exact for |c| <= 2^24, far above JPEG's 12-bit range).
#pragma once

#include <cstdint>

namespace lepton::jpegfmt::simd {

struct PreparedBlock {
  // Bit k set (k in 1..63) iff the coefficient at zigzag index k is
  // nonzero. Bit 0 (DC) is always clear — DC is differentially coded by
  // the caller.
  std::uint64_t nzmask;
  // Coefficients reordered to zigzag scan order (zz[0] = DC, unused).
  std::int16_t zz[64];
  // Magnitude bit-length per zigzag index (0 for zero coefficients).
  std::uint8_t size[64];
};

using PrepareFn = void (*)(const std::int16_t* blk, PreparedBlock& p);

// Always-available reference implementation.
void prepare_block_scalar(const std::int16_t* blk, PreparedBlock& p);

// The implementation for util::active_simd(); consult per scan (or per
// row) — it is an atomic load and a switch.
PrepareFn prepare_block_fn();

}  // namespace lepton::jpegfmt::simd
