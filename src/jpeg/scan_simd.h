// Vectorized coefficient preparation for the scan re-encoder.
//
// The decode path re-Huffman-encodes every block it reconstructs
// (encode_scan_rows_with); the serial per-coefficient walk there — load a
// zigzag coefficient, branch on zero, compute its magnitude class — costs
// one hard-to-predict branch per coefficient on mostly-zero blocks. The
// prepare pass below lifts that work out of the emission loop: it computes,
// for all 63 AC coefficients at once, the zigzag-ordered values, their
// magnitude bit-lengths, and a nonzero bitmask. The emission loop then
// walks only the set bits (countr_zero), with run lengths falling out of
// the bit positions — no per-zero work at all.
//
// Three implementations share the contract: a scalar fallback (always
// compiled, always tested), SSE2 (the x86-64 baseline), and AVX2 (runtime
// dispatch via util::cpu_features). All three produce byte-identical
// PreparedBlock contents; the SIMD magnitude class comes from the float
// exponent field (exact for |c| <= 2^24, far above JPEG's 12-bit range).
#pragma once

#include <cstdint>

namespace lepton::jpegfmt::simd {

struct PreparedBlock {
  // Bit k set (k in 1..63) iff the coefficient at zigzag index k is
  // nonzero. Bit 0 (DC) is always clear — DC is differentially coded by
  // the caller.
  std::uint64_t nzmask;
  // Coefficients reordered to zigzag scan order (zz[0] = DC, unused).
  std::int16_t zz[64];
  // Magnitude bit-length per zigzag index (0 for zero coefficients).
  std::uint8_t size[64];
};

using PrepareFn = void (*)(const std::int16_t* blk, PreparedBlock& p);

// Always-available reference implementation.
void prepare_block_scalar(const std::int16_t* blk, PreparedBlock& p);

// The implementation for util::active_simd(); consult per scan (or per
// row) — it is an atomic load and a switch.
PrepareFn prepare_block_fn();

// ---- Encode-side context-plane kernels --------------------------------------
//
// The encode pipeline precomputes per-block model context (nonzero counts,
// neighbour-magnitude buckets) for whole MCU rows before the serial
// adaptive-coder loop runs. These kernels are its vector core; all levels
// are byte-identical (the tests sweep scalar vs dispatched output).

// Natural-order |coefficient| per position plus a nonzero bitmask: bit
// `nat` (0..63) set iff blk[nat] != 0. abs_out uses two's-complement
// wrap-around for INT16_MIN (32768), matching the SIMD abs trick exactly.
using AbsNzFn = void (*)(const std::int16_t* blk, std::uint16_t* abs_out,
                         std::uint64_t* nz_natural);

// Weighted neighbour-magnitude buckets for all 64 natural positions:
// out[nat] = magnitude_bucket((13*a + 13*l + 6*al) / 32), computed in
// uint16 arithmetic (AC magnitudes keep the sum < 2^15; the DC lane may
// wrap, identically at every level, and is never consumed). Absent
// neighbours are passed as a shared all-zero array.
using MagBucketsFn = void (*)(const std::uint16_t* above,
                              const std::uint16_t* left,
                              const std::uint16_t* above_left,
                              std::uint8_t* out);

// Row-plane forms of the same kernels: `nblocks` consecutive blocks of a
// CoeffImage row (the storage is row-major, so a block row is one
// contiguous int16 stream) in one call — no per-block dispatch, pure
// streaming SIMD. `abs_nz_row` fills nblocks*64 magnitudes plus one
// nonzero mask per block; `mag_buckets_row` maps `nlanes` parallel
// (above, left, above-left) magnitude streams to buckets. The per-block
// forms above remain for the fix-up lanes (absent neighbours, the
// above-left ring quirk) and for tests.
using AbsNzRowFn = void (*)(const std::int16_t* blocks, int nblocks,
                            std::uint16_t* abs_out, std::uint64_t* nz_out);
using MagBucketsRowFn = void (*)(const std::uint16_t* above,
                                 const std::uint16_t* left,
                                 const std::uint16_t* above_left,
                                 std::uint8_t* out, std::size_t nlanes);

struct ContextKernels {
  AbsNzFn abs_nz;
  MagBucketsFn mag_buckets;
  AbsNzRowFn abs_nz_row;
  MagBucketsRowFn mag_buckets_row;
};

// Always-available reference implementations.
void abs_nz_scalar(const std::int16_t* blk, std::uint16_t* abs_out,
                   std::uint64_t* nz_natural);
void mag_buckets_scalar(const std::uint16_t* above, const std::uint16_t* left,
                        const std::uint16_t* above_left, std::uint8_t* out);
void abs_nz_row_scalar(const std::int16_t* blocks, int nblocks,
                       std::uint16_t* abs_out, std::uint64_t* nz_out);
void mag_buckets_row_scalar(const std::uint16_t* above,
                            const std::uint16_t* left,
                            const std::uint16_t* above_left, std::uint8_t* out,
                            std::size_t nlanes);

// Kernels for util::active_simd(); consult once per segment/row batch.
ContextKernels context_kernels();

// Natural-order masks over the nonzero bitmask: the 7x7 interior
// (rows 1-7 x cols 1-7), the 7x1 column edge (F[u][0], u>=1) and the 1x7
// row edge (F[0][v], v>=1).
inline constexpr std::uint64_t kInteriorMask = 0xFEFEFEFEFEFEFE00ull;
inline constexpr std::uint64_t kColEdgeMask = 0x0101010101010100ull;
inline constexpr std::uint64_t kRowEdgeMask = 0x00000000000000FEull;

}  // namespace lepton::jpegfmt::simd
