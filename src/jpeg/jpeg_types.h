// Shared data model for the baseline-JPEG substrate: quantization and
// Huffman table containers, frame/component geometry, and the coefficient
// image the Lepton model operates on.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/exit_codes.h"
#include "util/tracked_memory.h"

namespace lepton::jpegfmt {

// Zigzag scan order: kZigzag[k] = natural (row*8+col) index of the k-th
// zigzag position.
inline constexpr std::array<std::uint8_t, 64> kZigzag = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

// Inverse: kZigzagInv[natural] = zigzag position.
inline constexpr std::array<std::uint8_t, 64> make_zigzag_inv() {
  std::array<std::uint8_t, 64> inv{};
  for (int k = 0; k < 64; ++k) inv[kZigzag[k]] = static_cast<std::uint8_t>(k);
  return inv;
}
inline constexpr std::array<std::uint8_t, 64> kZigzagInv = make_zigzag_inv();

// Classified parse/decode failure. Caught at the public API boundary and
// converted into a Result carrying the §6.2 exit code.
class ParseError : public std::runtime_error {
 public:
  ParseError(util::ExitCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  util::ExitCode code() const { return code_; }

 private:
  util::ExitCode code_;
};

struct QuantTable {
  std::array<std::uint16_t, 64> q{};  // natural order
  bool defined = false;
};

struct ComponentInfo {
  int id = 0;          // component identifier from SOF
  int h_samp = 1;      // horizontal sampling factor
  int v_samp = 1;      // vertical sampling factor
  int quant_idx = 0;   // DQT table selector
  int dc_tbl = 0;      // DHT DC table selector (from SOS)
  int ac_tbl = 0;      // DHT AC table selector (from SOS)
  // Block-grid geometry (padded to full MCUs for interleaved scans).
  int width_blocks = 0;
  int height_blocks = 0;
};

struct FrameInfo {
  int width = 0;
  int height = 0;
  int precision = 8;
  std::vector<ComponentInfo> comps;
  int hmax = 1;
  int vmax = 1;
  int mcus_x = 0;  // MCUs per row
  int mcus_y = 0;  // MCU rows
  int ncomp() const { return static_cast<int>(comps.size()); }
  // Blocks per MCU across all components (interleaved scan).
  int blocks_per_mcu() const {
    int n = 0;
    for (const auto& c : comps) n += c.h_samp * c.v_samp;
    return n;
  }
};

// Quantized DCT coefficients for one component, stored as a padded grid of
// 8x8 blocks in natural (row-major u*8+v) order. Uses tracked allocation:
// whole-image coefficient buffers dominate encode-side memory (§4.2) and
// are what the Figure 3 bench measures.
struct ComponentCoeffs {
  int width_blocks = 0;
  int height_blocks = 0;
  util::tracked_vector<std::int16_t> data;  // width_blocks*height_blocks*64

  void resize(int wb, int hb) {
    width_blocks = wb;
    height_blocks = hb;
    data.assign(static_cast<std::size_t>(wb) * hb * 64, 0);
  }
  std::int16_t* block(int bx, int by) {
    return data.data() + (static_cast<std::size_t>(by) * width_blocks + bx) * 64;
  }
  const std::int16_t* block(int bx, int by) const {
    return data.data() + (static_cast<std::size_t>(by) * width_blocks + bx) * 64;
  }
};

struct CoeffImage {
  std::vector<ComponentCoeffs> comps;
};

// A position inside the entropy-coded scan, measured in *file* bytes from
// the start of the scan data (stuffing bytes and RST markers included).
// `bit_off` bits of the byte at `byte_off` have already been consumed.
// This is the coordinate system of the Huffman handover words.
struct ScanPos {
  std::uint64_t byte_off = 0;
  int bit_off = 0;
};

// Everything a Huffman writer needs to resume emitting the scan mid-stream:
// the paper's "Huffman handover word" (§3.4) plus RST bookkeeping.
struct HuffmanHandover {
  ScanPos pos;                       // where in the scan this segment starts
  std::uint8_t partial_byte = 0;     // already-decided high bits of that byte
  std::array<std::int16_t, 4> dc_pred{};  // previous DC value per component
  std::uint32_t mcus_done = 0;       // MCUs consumed before this point
  std::uint32_t rst_seen = 0;        // RST markers consumed before this point
};

// Per-MCU-row record captured during the serial scan decode; segment and
// chunk boundaries are chosen from these.
struct RowBoundary {
  HuffmanHandover handover;
  int mcu_row = 0;
};

}  // namespace lepton::jpegfmt
