#include "jpeg/scan_simd.h"

#include <bit>

#include "jpeg/jpeg_types.h"
#include "util/cpu_features.h"

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)
#define LEPTON_SCAN_SIMD_X86 1
#include <immintrin.h>
#else
#define LEPTON_SCAN_SIMD_X86 0
#endif

namespace lepton::jpegfmt::simd {

void prepare_block_scalar(const std::int16_t* blk, PreparedBlock& p) {
  std::uint64_t nz = 0;
  p.zz[0] = blk[0];
  p.size[0] = 0;
  for (int k = 1; k < 64; ++k) {
    int c = blk[kZigzag[k]];
    p.zz[k] = static_cast<std::int16_t>(c);
    auto a = static_cast<unsigned>(c < 0 ? -c : c);
    p.size[k] = static_cast<std::uint8_t>(32 - std::countl_zero(a | 1) -
                                          (a == 0 ? 1 : 0));
    nz |= static_cast<std::uint64_t>(c != 0) << k;
  }
  p.nzmask = nz;
}

#if LEPTON_SCAN_SIMD_X86

namespace {

// Zero-extended |x| lanes → magnitude bit-length via the float exponent:
// for a > 0, (bits(float(a)) >> 23) - 126 == floor(log2 a) + 1; a == 0
// gives a negative value that the caller clamps to zero. Exact because
// every |coefficient| (<= 2^15) converts to float exactly.

inline void sizes_sse2(__m128i abs16, std::uint8_t* out8) {
  __m128i zero = _mm_setzero_si128();
  __m128i lo = _mm_unpacklo_epi16(abs16, zero);
  __m128i hi = _mm_unpackhi_epi16(abs16, zero);
  __m128i elo = _mm_srli_epi32(_mm_castps_si128(_mm_cvtepi32_ps(lo)), 23);
  __m128i ehi = _mm_srli_epi32(_mm_castps_si128(_mm_cvtepi32_ps(hi)), 23);
  __m128i bias = _mm_set1_epi32(126);
  __m128i b16 = _mm_packs_epi32(_mm_sub_epi32(elo, bias),
                                _mm_sub_epi32(ehi, bias));
  b16 = _mm_max_epi16(b16, zero);  // zero lanes: -126 → 0
  __m128i b8 = _mm_packus_epi16(b16, zero);
  _mm_storel_epi64(reinterpret_cast<__m128i*>(out8), b8);
}

void prepare_block_sse2(const std::int16_t* blk, PreparedBlock& p) {
  for (int k = 0; k < 64; ++k) p.zz[k] = blk[kZigzag[k]];
  std::uint64_t nz = 0;
  __m128i zero = _mm_setzero_si128();
  for (int g = 0; g < 64; g += 8) {
    __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p.zz + g));
    __m128i sign = _mm_srai_epi16(x, 15);
    __m128i abs16 = _mm_sub_epi16(_mm_xor_si128(x, sign), sign);
    // Per-lane zero flags → one byte of the nonzero mask.
    __m128i is_zero = _mm_cmpeq_epi16(x, zero);
    unsigned zbyte = static_cast<unsigned>(
        _mm_movemask_epi8(_mm_packs_epi16(is_zero, zero)));
    nz |= static_cast<std::uint64_t>(~zbyte & 0xFFu) << g;
    sizes_sse2(abs16, p.size + g);
  }
  p.nzmask = nz & ~1ull;  // DC excluded
  p.size[0] = 0;
}

__attribute__((target("avx2"))) void prepare_block_avx2(
    const std::int16_t* blk, PreparedBlock& p) {
  for (int k = 0; k < 64; ++k) p.zz[k] = blk[kZigzag[k]];
  std::uint64_t nz = 0;
  __m256i zero = _mm256_setzero_si256();
  __m256i bias = _mm256_set1_epi32(126);
  for (int g = 0; g < 64; g += 16) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p.zz + g));
    // Per-lane zero flags. vpacksswb interleaves 128-bit halves; movemask
    // over the packed bytes yields the 16 flags in half-scrambled order, so
    // un-scramble by assembling from the two halves explicitly.
    __m256i is_zero = _mm256_cmpeq_epi16(x, zero);
    __m256i packed = _mm256_packs_epi16(is_zero, zero);
    auto zmask = static_cast<unsigned>(_mm256_movemask_epi8(packed));
    unsigned z16 = (zmask & 0xFFu) | ((zmask >> 8) & 0xFF00u);
    nz |= static_cast<std::uint64_t>(~z16 & 0xFFFFu) << g;
    // Magnitude classes, 16 lanes: widen |x| zero-extended, float-exponent
    // trick per 8, repack. vpackusdw/vpackuswb also interleave halves;
    // doing the two 8-lane halves with 128-bit ops keeps the order
    // straight and still halves the loop count vs SSE2.
    __m256i sign = _mm256_srai_epi16(x, 15);
    __m256i abs16 = _mm256_sub_epi16(_mm256_xor_si256(x, sign), sign);
    __m256i lo32 =
        _mm256_cvtepu16_epi32(_mm256_castsi256_si128(abs16));
    __m256i hi32 =
        _mm256_cvtepu16_epi32(_mm256_extracti128_si256(abs16, 1));
    __m256i elo = _mm256_srli_epi32(
        _mm256_castps_si256(_mm256_cvtepi32_ps(lo32)), 23);
    __m256i ehi = _mm256_srli_epi32(
        _mm256_castps_si256(_mm256_cvtepi32_ps(hi32)), 23);
    __m256i blo = _mm256_sub_epi32(elo, bias);
    __m256i bhi = _mm256_sub_epi32(ehi, bias);
    // Pack 8+8 int32 → 16 int16 (lane-interleaved), fix order with a
    // permute, clamp, then narrow to bytes.
    __m256i b16 = _mm256_packs_epi32(blo, bhi);
    b16 = _mm256_permute4x64_epi64(b16, 0xD8);
    b16 = _mm256_max_epi16(b16, zero);
    __m256i b8 = _mm256_packus_epi16(b16, zero);
    b8 = _mm256_permute4x64_epi64(b8, 0xD8);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p.size + g),
                     _mm256_castsi256_si128(b8));
  }
  p.nzmask = nz & ~1ull;
  p.size[0] = 0;
}

}  // namespace

#endif  // LEPTON_SCAN_SIMD_X86

// ---- context-plane kernels --------------------------------------------------

void abs_nz_scalar(const std::int16_t* blk, std::uint16_t* abs_out,
                   std::uint64_t* nz_natural) {
  std::uint64_t nz = 0;
  for (int i = 0; i < 64; ++i) {
    int c = blk[i];
    // Two's-complement wrap for INT16_MIN (32768), matching the vector
    // (x ^ sign) - sign computation bit-for-bit.
    abs_out[i] = static_cast<std::uint16_t>(c < 0 ? -c : c);
    nz |= static_cast<std::uint64_t>(c != 0) << i;
  }
  *nz_natural = nz;
}

void mag_buckets_scalar(const std::uint16_t* above, const std::uint16_t* left,
                        const std::uint16_t* above_left, std::uint8_t* out) {
  mag_buckets_row_scalar(above, left, above_left, out, 64);
}

void mag_buckets_row_scalar(const std::uint16_t* above,
                            const std::uint16_t* left,
                            const std::uint16_t* above_left, std::uint8_t* out,
                            std::size_t nlanes) {
  for (std::size_t i = 0; i < nlanes; ++i) {
    // uint16 arithmetic throughout: AC sums stay < 2^15; the DC lane may
    // wrap mod 2^16 exactly as the 16-lane vector multiply does (it is
    // never consumed — model DC context comes from pixel gradients).
    auto w = static_cast<std::uint16_t>(
        13u * above[i] + 13u * left[i] + 6u * above_left[i]);
    auto x = static_cast<std::uint32_t>(w >> 5);
    int b = std::bit_width(x);
    out[i] = static_cast<std::uint8_t>(b > 11 ? 11 : b);
  }
}

void abs_nz_row_scalar(const std::int16_t* blocks, int nblocks,
                       std::uint16_t* abs_out, std::uint64_t* nz_out) {
  for (int b = 0; b < nblocks; ++b) {
    abs_nz_scalar(blocks + b * 64, abs_out + b * 64, nz_out + b);
  }
}

#if LEPTON_SCAN_SIMD_X86

namespace {

void abs_nz_sse2(const std::int16_t* blk, std::uint16_t* abs_out,
                 std::uint64_t* nz_natural) {
  std::uint64_t nz = 0;
  __m128i zero = _mm_setzero_si128();
  for (int g = 0; g < 64; g += 8) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(blk + g));
    __m128i sign = _mm_srai_epi16(x, 15);
    __m128i abs16 = _mm_sub_epi16(_mm_xor_si128(x, sign), sign);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(abs_out + g), abs16);
    __m128i is_zero = _mm_cmpeq_epi16(x, zero);
    unsigned zbyte = static_cast<unsigned>(
        _mm_movemask_epi8(_mm_packs_epi16(is_zero, zero)));
    nz |= static_cast<std::uint64_t>(~zbyte & 0xFFu) << g;
  }
  *nz_natural = nz;
}

// Bit lengths of 8 uint16 lanes (values < 2^12 here) via the float
// exponent, clamped below at zero — shared shape with sizes_sse2 above.
inline __m128i bitlen8_sse2(__m128i v16) {
  __m128i zero = _mm_setzero_si128();
  __m128i lo = _mm_unpacklo_epi16(v16, zero);
  __m128i hi = _mm_unpackhi_epi16(v16, zero);
  __m128i elo = _mm_srli_epi32(_mm_castps_si128(_mm_cvtepi32_ps(lo)), 23);
  __m128i ehi = _mm_srli_epi32(_mm_castps_si128(_mm_cvtepi32_ps(hi)), 23);
  __m128i bias = _mm_set1_epi32(126);
  __m128i b16 = _mm_packs_epi32(_mm_sub_epi32(elo, bias),
                                _mm_sub_epi32(ehi, bias));
  return _mm_max_epi16(b16, zero);
}

void mag_buckets_row_sse2(const std::uint16_t* above, const std::uint16_t* left,
                          const std::uint16_t* above_left, std::uint8_t* out,
                          std::size_t nlanes) {
  __m128i zero = _mm_setzero_si128();
  __m128i w13 = _mm_set1_epi16(13);
  __m128i w6 = _mm_set1_epi16(6);
  for (std::size_t g = 0; g < nlanes; g += 8) {
    __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(above + g));
    __m128i l = _mm_loadu_si128(reinterpret_cast<const __m128i*>(left + g));
    __m128i al =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(above_left + g));
    // mullo/add wrap mod 2^16 — identical to the scalar uint16 arithmetic.
    __m128i w = _mm_add_epi16(
        _mm_add_epi16(_mm_mullo_epi16(a, w13), _mm_mullo_epi16(l, w13)),
        _mm_mullo_epi16(al, w6));
    __m128i x = _mm_srli_epi16(w, 5);  // <= 2047: bit length <= 11, no clamp
    __m128i b16 = bitlen8_sse2(x);
    __m128i b8 = _mm_packus_epi16(b16, zero);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + g), b8);
  }
}

void mag_buckets_sse2(const std::uint16_t* above, const std::uint16_t* left,
                      const std::uint16_t* above_left, std::uint8_t* out) {
  mag_buckets_row_sse2(above, left, above_left, out, 64);
}

void abs_nz_row_sse2(const std::int16_t* blocks, int nblocks,
                     std::uint16_t* abs_out, std::uint64_t* nz_out) {
  for (int b = 0; b < nblocks; ++b) {
    abs_nz_sse2(blocks + b * 64, abs_out + b * 64, nz_out + b);
  }
}

__attribute__((target("avx2"))) void abs_nz_avx2(const std::int16_t* blk,
                                                 std::uint16_t* abs_out,
                                                 std::uint64_t* nz_natural) {
  std::uint64_t nz = 0;
  __m256i zero = _mm256_setzero_si256();
  for (int g = 0; g < 64; g += 16) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(blk + g));
    __m256i sign = _mm256_srai_epi16(x, 15);
    __m256i abs16 = _mm256_sub_epi16(_mm256_xor_si256(x, sign), sign);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(abs_out + g), abs16);
    __m256i is_zero = _mm256_cmpeq_epi16(x, zero);
    __m256i packed = _mm256_packs_epi16(is_zero, zero);
    auto zmask = static_cast<unsigned>(_mm256_movemask_epi8(packed));
    unsigned z16 = (zmask & 0xFFu) | ((zmask >> 8) & 0xFF00u);
    nz |= static_cast<std::uint64_t>(~z16 & 0xFFFFu) << g;
  }
  *nz_natural = nz;
}

__attribute__((target("avx2"))) void mag_buckets_row_avx2(
    const std::uint16_t* above, const std::uint16_t* left,
    const std::uint16_t* above_left, std::uint8_t* out, std::size_t nlanes) {
  __m256i zero = _mm256_setzero_si256();
  __m256i w13 = _mm256_set1_epi16(13);
  __m256i w6 = _mm256_set1_epi16(6);
  __m256i bias = _mm256_set1_epi32(126);
  for (std::size_t g = 0; g < nlanes; g += 16) {
    __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(above + g));
    __m256i l = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(left + g));
    __m256i al =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(above_left + g));
    __m256i w = _mm256_add_epi16(
        _mm256_add_epi16(_mm256_mullo_epi16(a, w13), _mm256_mullo_epi16(l, w13)),
        _mm256_mullo_epi16(al, w6));
    __m256i x = _mm256_srli_epi16(w, 5);
    // Bit lengths via the float exponent, 16 lanes; same pack/permute
    // order-fixing dance as prepare_block_avx2.
    __m256i lo32 = _mm256_cvtepu16_epi32(_mm256_castsi256_si128(x));
    __m256i hi32 = _mm256_cvtepu16_epi32(_mm256_extracti128_si256(x, 1));
    __m256i elo = _mm256_srli_epi32(
        _mm256_castps_si256(_mm256_cvtepi32_ps(lo32)), 23);
    __m256i ehi = _mm256_srli_epi32(
        _mm256_castps_si256(_mm256_cvtepi32_ps(hi32)), 23);
    __m256i b16 = _mm256_packs_epi32(_mm256_sub_epi32(elo, bias),
                                     _mm256_sub_epi32(ehi, bias));
    b16 = _mm256_permute4x64_epi64(b16, 0xD8);
    b16 = _mm256_max_epi16(b16, zero);
    __m256i b8 = _mm256_packus_epi16(b16, zero);
    b8 = _mm256_permute4x64_epi64(b8, 0xD8);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + g),
                     _mm256_castsi256_si128(b8));
  }
}

__attribute__((target("avx2"))) void mag_buckets_avx2(
    const std::uint16_t* above, const std::uint16_t* left,
    const std::uint16_t* above_left, std::uint8_t* out) {
  mag_buckets_row_avx2(above, left, above_left, out, 64);
}

__attribute__((target("avx2"))) void abs_nz_row_avx2(const std::int16_t* blocks,
                                                     int nblocks,
                                                     std::uint16_t* abs_out,
                                                     std::uint64_t* nz_out) {
  std::uint64_t nz = 0;
  __m256i zero = _mm256_setzero_si256();
  for (int b = 0; b < nblocks; ++b) {
    const std::int16_t* blk = blocks + b * 64;
    std::uint16_t* ab = abs_out + b * 64;
    nz = 0;
    for (int g = 0; g < 64; g += 16) {
      __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(blk + g));
      __m256i sign = _mm256_srai_epi16(x, 15);
      __m256i abs16 = _mm256_sub_epi16(_mm256_xor_si256(x, sign), sign);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(ab + g), abs16);
      __m256i is_zero = _mm256_cmpeq_epi16(x, zero);
      __m256i packed = _mm256_packs_epi16(is_zero, zero);
      auto zmask = static_cast<unsigned>(_mm256_movemask_epi8(packed));
      unsigned z16 = (zmask & 0xFFu) | ((zmask >> 8) & 0xFF00u);
      nz |= static_cast<std::uint64_t>(~z16 & 0xFFFFu) << g;
    }
    nz_out[b] = nz;
  }
}

}  // namespace

#endif  // LEPTON_SCAN_SIMD_X86

ContextKernels context_kernels() {
#if LEPTON_SCAN_SIMD_X86
  switch (util::active_simd()) {
    case util::SimdLevel::kAvx2:
      return {abs_nz_avx2, mag_buckets_avx2, abs_nz_row_avx2,
              mag_buckets_row_avx2};
    case util::SimdLevel::kSse2:
      return {abs_nz_sse2, mag_buckets_sse2, abs_nz_row_sse2,
              mag_buckets_row_sse2};
    case util::SimdLevel::kScalar: break;
  }
#endif
  return {abs_nz_scalar, mag_buckets_scalar, abs_nz_row_scalar,
          mag_buckets_row_scalar};
}

PrepareFn prepare_block_fn() {
#if LEPTON_SCAN_SIMD_X86
  switch (util::active_simd()) {
    case util::SimdLevel::kAvx2: return prepare_block_avx2;
    case util::SimdLevel::kSse2: return prepare_block_sse2;
    case util::SimdLevel::kScalar: return prepare_block_scalar;
  }
#endif
  return prepare_block_scalar;
}

}  // namespace lepton::jpegfmt::simd
