#include "jpeg/scan_simd.h"

#include <bit>

#include "jpeg/jpeg_types.h"
#include "util/cpu_features.h"

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)
#define LEPTON_SCAN_SIMD_X86 1
#include <immintrin.h>
#else
#define LEPTON_SCAN_SIMD_X86 0
#endif

namespace lepton::jpegfmt::simd {

void prepare_block_scalar(const std::int16_t* blk, PreparedBlock& p) {
  std::uint64_t nz = 0;
  p.zz[0] = blk[0];
  p.size[0] = 0;
  for (int k = 1; k < 64; ++k) {
    int c = blk[kZigzag[k]];
    p.zz[k] = static_cast<std::int16_t>(c);
    auto a = static_cast<unsigned>(c < 0 ? -c : c);
    p.size[k] = static_cast<std::uint8_t>(32 - std::countl_zero(a | 1) -
                                          (a == 0 ? 1 : 0));
    nz |= static_cast<std::uint64_t>(c != 0) << k;
  }
  p.nzmask = nz;
}

#if LEPTON_SCAN_SIMD_X86

namespace {

// Zero-extended |x| lanes → magnitude bit-length via the float exponent:
// for a > 0, (bits(float(a)) >> 23) - 126 == floor(log2 a) + 1; a == 0
// gives a negative value that the caller clamps to zero. Exact because
// every |coefficient| (<= 2^15) converts to float exactly.

inline void sizes_sse2(__m128i abs16, std::uint8_t* out8) {
  __m128i zero = _mm_setzero_si128();
  __m128i lo = _mm_unpacklo_epi16(abs16, zero);
  __m128i hi = _mm_unpackhi_epi16(abs16, zero);
  __m128i elo = _mm_srli_epi32(_mm_castps_si128(_mm_cvtepi32_ps(lo)), 23);
  __m128i ehi = _mm_srli_epi32(_mm_castps_si128(_mm_cvtepi32_ps(hi)), 23);
  __m128i bias = _mm_set1_epi32(126);
  __m128i b16 = _mm_packs_epi32(_mm_sub_epi32(elo, bias),
                                _mm_sub_epi32(ehi, bias));
  b16 = _mm_max_epi16(b16, zero);  // zero lanes: -126 → 0
  __m128i b8 = _mm_packus_epi16(b16, zero);
  _mm_storel_epi64(reinterpret_cast<__m128i*>(out8), b8);
}

void prepare_block_sse2(const std::int16_t* blk, PreparedBlock& p) {
  for (int k = 0; k < 64; ++k) p.zz[k] = blk[kZigzag[k]];
  std::uint64_t nz = 0;
  __m128i zero = _mm_setzero_si128();
  for (int g = 0; g < 64; g += 8) {
    __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p.zz + g));
    __m128i sign = _mm_srai_epi16(x, 15);
    __m128i abs16 = _mm_sub_epi16(_mm_xor_si128(x, sign), sign);
    // Per-lane zero flags → one byte of the nonzero mask.
    __m128i is_zero = _mm_cmpeq_epi16(x, zero);
    unsigned zbyte = static_cast<unsigned>(
        _mm_movemask_epi8(_mm_packs_epi16(is_zero, zero)));
    nz |= static_cast<std::uint64_t>(~zbyte & 0xFFu) << g;
    sizes_sse2(abs16, p.size + g);
  }
  p.nzmask = nz & ~1ull;  // DC excluded
  p.size[0] = 0;
}

__attribute__((target("avx2"))) void prepare_block_avx2(
    const std::int16_t* blk, PreparedBlock& p) {
  for (int k = 0; k < 64; ++k) p.zz[k] = blk[kZigzag[k]];
  std::uint64_t nz = 0;
  __m256i zero = _mm256_setzero_si256();
  __m256i bias = _mm256_set1_epi32(126);
  for (int g = 0; g < 64; g += 16) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p.zz + g));
    // Per-lane zero flags. vpacksswb interleaves 128-bit halves; movemask
    // over the packed bytes yields the 16 flags in half-scrambled order, so
    // un-scramble by assembling from the two halves explicitly.
    __m256i is_zero = _mm256_cmpeq_epi16(x, zero);
    __m256i packed = _mm256_packs_epi16(is_zero, zero);
    auto zmask = static_cast<unsigned>(_mm256_movemask_epi8(packed));
    unsigned z16 = (zmask & 0xFFu) | ((zmask >> 8) & 0xFF00u);
    nz |= static_cast<std::uint64_t>(~z16 & 0xFFFFu) << g;
    // Magnitude classes, 16 lanes: widen |x| zero-extended, float-exponent
    // trick per 8, repack. vpackusdw/vpackuswb also interleave halves;
    // doing the two 8-lane halves with 128-bit ops keeps the order
    // straight and still halves the loop count vs SSE2.
    __m256i sign = _mm256_srai_epi16(x, 15);
    __m256i abs16 = _mm256_sub_epi16(_mm256_xor_si256(x, sign), sign);
    __m256i lo32 =
        _mm256_cvtepu16_epi32(_mm256_castsi256_si128(abs16));
    __m256i hi32 =
        _mm256_cvtepu16_epi32(_mm256_extracti128_si256(abs16, 1));
    __m256i elo = _mm256_srli_epi32(
        _mm256_castps_si256(_mm256_cvtepi32_ps(lo32)), 23);
    __m256i ehi = _mm256_srli_epi32(
        _mm256_castps_si256(_mm256_cvtepi32_ps(hi32)), 23);
    __m256i blo = _mm256_sub_epi32(elo, bias);
    __m256i bhi = _mm256_sub_epi32(ehi, bias);
    // Pack 8+8 int32 → 16 int16 (lane-interleaved), fix order with a
    // permute, clamp, then narrow to bytes.
    __m256i b16 = _mm256_packs_epi32(blo, bhi);
    b16 = _mm256_permute4x64_epi64(b16, 0xD8);
    b16 = _mm256_max_epi16(b16, zero);
    __m256i b8 = _mm256_packus_epi16(b16, zero);
    b8 = _mm256_permute4x64_epi64(b8, 0xD8);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p.size + g),
                     _mm256_castsi256_si128(b8));
  }
  p.nzmask = nz & ~1ull;
  p.size[0] = 0;
}

}  // namespace

#endif  // LEPTON_SCAN_SIMD_X86

PrepareFn prepare_block_fn() {
#if LEPTON_SCAN_SIMD_X86
  switch (util::active_simd()) {
    case util::SimdLevel::kAvx2: return prepare_block_avx2;
    case util::SimdLevel::kSse2: return prepare_block_sse2;
    case util::SimdLevel::kScalar: return prepare_block_scalar;
  }
#endif
  return prepare_block_scalar;
}

}  // namespace lepton::jpegfmt::simd
