// 8x8 DCT transforms.
//
// Two implementations with different jobs:
//  * a floating-point forward DCT used only by the synthetic JPEG author
//    (corpus generation — accuracy matters, determinism across builds does
//    not because the authored bytes become the ground truth), and
//  * a fixed-point integer inverse DCT used by the Lepton model's DC
//    prediction (§3.3/§A.2.3). The model runs the same IDCT on the encode
//    and decode side, so it must be bit-deterministic; it is pure int32/64
//    arithmetic with a constant table, no floating point.
#pragma once

#include <array>
#include <cstdint>

namespace lepton::jpegfmt {

// Forward DCT of an 8x8 block of samples (level-shifted by -128 internally)
// producing unquantized coefficients in natural order.
void fdct_8x8(const std::uint8_t* pixels, int stride, double out[64]);

// Deterministic integer IDCT. Input: dequantized coefficients (coef * q),
// natural order. Output: 64 pixel values scaled by 8 (i.e. 8x the sample
// value, without the +128 level shift). The x8 scale keeps the DC term
// exact: a DC of d contributes exactly d to every scaled output sample.
void idct_8x8_scaled(const std::int32_t coef[64], std::int32_t out[64]);

// Orthonormal DCT basis entry B(x, u) in Q20 fixed point: used by the
// Lakhani edge predictor (§A.2.2), which needs individual basis values.
std::int64_t dct_basis_q20(int x, int u);

}  // namespace lepton::jpegfmt
