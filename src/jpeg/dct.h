// 8x8 DCT transforms.
//
// Two implementations with different jobs:
//  * a floating-point forward DCT used only by the synthetic JPEG author
//    (corpus generation — accuracy matters, determinism across builds does
//    not because the authored bytes become the ground truth), and
//  * a fixed-point integer inverse DCT used by the Lepton model's DC
//    prediction (§3.3/§A.2.3). The model runs the same IDCT on the encode
//    and decode side, so it must be bit-deterministic; it is pure int32/64
//    arithmetic with a constant table, no floating point. The IDCT sits on
//    the per-block hot path of both encode and decode (ac_only_pixels runs
//    it once per block), so the basis lives in a compile-time table — no
//    init-guard check per access — and idct_8x8_scaled skips all-zero
//    coefficient rows, which dominate AC-only blocks.
#pragma once

#include <array>
#include <cstdint>

namespace lepton::jpegfmt {

// Orthonormal DCT basis B(x, u) = c(u) * cos((2x+1) u pi / 16) in Q20 fixed
// point, c(0) = sqrt(1/8), c(u>0) = sqrt(2/8). Values are the rounded
// long-double constants; embedding them (rather than computing at startup)
// keeps the table deterministic across builds *and* free of the per-access
// guard a function-local static carries.
inline constexpr std::int64_t kDctBasisQ20[8][8] = {
    {370728, 514214, 484379, 435930, 370728, 291279, 200636, 102284},
    {370728, 435930, 200636, -102284, -370728, -514214, -484379, -291279},
    {370728, 291279, -200636, -514214, -370728, 102284, 484379, 435930},
    {370728, 102284, -484379, -291279, 370728, 435930, -200636, -514214},
    {370728, -102284, -484379, 291279, 370728, -435930, -200636, 514214},
    {370728, -291279, -200636, 514214, -370728, -102284, 484379, -435930},
    {370728, -435930, 200636, 102284, -370728, 514214, -484379, 291279},
    {370728, -514214, 484379, -435930, 370728, -291279, 200636, -102284},
};

// Basis entry accessor kept for the Lakhani edge predictor (§A.2.2), which
// needs individual basis values.
inline std::int64_t dct_basis_q20(int x, int u) { return kDctBasisQ20[x][u]; }

// Forward DCT of an 8x8 block of samples (level-shifted by -128 internally)
// producing unquantized coefficients in natural order.
void fdct_8x8(const std::uint8_t* pixels, int stride, double out[64]);

// Deterministic integer IDCT. Input: dequantized coefficients (coef * q),
// natural order. Output: 64 pixel values scaled by 8 (i.e. 8x the sample
// value, without the +128 level shift). The x8 scale keeps the DC term
// exact: a DC of d contributes exactly d to every scaled output sample.
void idct_8x8_scaled(const std::int32_t coef[64], std::int32_t out[64]);

// Fused AC-only variant of the same transform: dequantizes `coef * q` on
// the fly with the DC term forced to zero, skipping the staging buffer a
// separate dequantize pass would need. Runs once per block on both codec
// sides (model::ac_only_pixels); identical arithmetic to calling
// idct_8x8_scaled on the dequantized block with coef[0] = 0.
void idct_8x8_dequant_ac(const std::int16_t coef[64],
                         const std::uint16_t q[64], std::int32_t out[64]);

}  // namespace lepton::jpegfmt
