#include "jpeg/dct.h"

#include <cmath>

#include "util/cpu_features.h"

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)
#define LEPTON_DCT_X86 1
#include <immintrin.h>
#else
#define LEPTON_DCT_X86 0
#endif

namespace lepton::jpegfmt {

void fdct_8x8(const std::uint8_t* pixels, int stride, double out[64]) {
  // Direct O(64*64) transform; only used when authoring corpus files.
  static double cb[8][8];
  static bool init = false;
  if (!init) {
    const double pi = 3.14159265358979323846;
    for (int x = 0; x < 8; ++x) {
      for (int u = 0; u < 8; ++u) {
        double c = u == 0 ? std::sqrt(0.125) : 0.5;
        cb[x][u] = c * std::cos((2 * x + 1) * u * pi / 16.0);
      }
    }
    init = true;
  }
  double tmp[64];
  // Rows.
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      double s = 0;
      for (int x = 0; x < 8; ++x) {
        s += (static_cast<double>(pixels[y * stride + x]) - 128.0) * cb[x][u];
      }
      tmp[y * 8 + u] = s;
    }
  }
  // Columns.
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      double s = 0;
      for (int y = 0; y < 8; ++y) s += tmp[y * 8 + v] * cb[y][u];
      out[u * 8 + v] = s;
    }
  }
}

namespace {

// Loeffler-Ligtenberg-Moshovitz butterfly constants, Q13 (the jidctint
// lineage): round(2^13 * cos-products). One 1-D pass costs 12 multiplies
// instead of 64 — the reason the per-block IDCT stopped dominating the
// encode+decode profile.
inline constexpr std::int64_t kFix0_298631336 = 2446;
inline constexpr std::int64_t kFix0_390180644 = 3196;
inline constexpr std::int64_t kFix0_541196100 = 4433;
inline constexpr std::int64_t kFix0_765366865 = 6270;
inline constexpr std::int64_t kFix0_899976223 = 7373;
inline constexpr std::int64_t kFix1_175875602 = 9633;
inline constexpr std::int64_t kFix1_501321110 = 12299;
inline constexpr std::int64_t kFix1_847759065 = 15137;
inline constexpr std::int64_t kFix1_961570560 = 16069;
inline constexpr std::int64_t kFix2_053119869 = 16819;
inline constexpr std::int64_t kFix2_562915447 = 20995;
inline constexpr std::int64_t kFix3_072711026 = 25172;

// One 8-point 1-D JPEG inverse DCT: out[x] = sqrt(8) * 2^13 * sum_v
// in[v] * Bo(x, v) (Bo the orthonormal basis), computed with the Loeffler
// network. `shift` (with rounding) descales the result. Strides let the
// same code run over rows of the coefficient block and columns of the
// intermediate.
inline void idct_1d(const std::int64_t* in, int in_stride, std::int64_t* out,
                    int out_stride, int shift) {
  // Even part.
  std::int64_t z2 = in[2 * in_stride];
  std::int64_t z3 = in[6 * in_stride];
  std::int64_t z1 = (z2 + z3) * kFix0_541196100;
  std::int64_t t2 = z1 - z3 * kFix1_847759065;
  std::int64_t t3 = z1 + z2 * kFix0_765366865;
  std::int64_t t0 = (in[0] + in[4 * in_stride]) << 13;
  std::int64_t t1 = (in[0] - in[4 * in_stride]) << 13;
  std::int64_t e0 = t0 + t3, e3 = t0 - t3;
  std::int64_t e1 = t1 + t2, e2 = t1 - t2;

  // Odd part.
  std::int64_t o0 = in[7 * in_stride];
  std::int64_t o1 = in[5 * in_stride];
  std::int64_t o2 = in[3 * in_stride];
  std::int64_t o3 = in[1 * in_stride];
  z1 = o0 + o3;
  z2 = o1 + o2;
  z3 = o0 + o2;
  std::int64_t z4 = o1 + o3;
  std::int64_t z5 = (z3 + z4) * kFix1_175875602;
  o0 *= kFix0_298631336;
  o1 *= kFix2_053119869;
  o2 *= kFix3_072711026;
  o3 *= kFix1_501321110;
  z1 *= -kFix0_899976223;
  z2 *= -kFix2_562915447;
  z3 = z3 * -kFix1_961570560 + z5;
  z4 = z4 * -kFix0_390180644 + z5;
  o0 += z1 + z3;
  o1 += z2 + z4;
  o2 += z2 + z3;
  o3 += z1 + z4;

  const std::int64_t r = shift > 0 ? (1ll << (shift - 1)) : 0;
  out[0 * out_stride] = (e0 + o3 + r) >> shift;
  out[7 * out_stride] = (e0 - o3 + r) >> shift;
  out[1 * out_stride] = (e1 + o2 + r) >> shift;
  out[6 * out_stride] = (e1 - o2 + r) >> shift;
  out[2 * out_stride] = (e2 + o1 + r) >> shift;
  out[5 * out_stride] = (e2 - o1 + r) >> shift;
  out[3 * out_stride] = (e3 + o0 + r) >> shift;
  out[4 * out_stride] = (e3 - o0 + r) >> shift;
}

#if LEPTON_DCT_X86

// ---- AVX2 second pass -------------------------------------------------------
//
// The column pass combines tmp[u][y] across u for every y — lane-parallel
// over y, and tmp is stored row-major, so the eight rows load directly as
// vectors with no transpose. All arithmetic is exact 64-bit (multiplies via
// vpmuldq on operands the caller has range-gated to 31 bits, arithmetic
// shifts emulated with a sign mask), so the result is bit-identical to the
// scalar idct_1d column loop — a hard requirement: DC prediction feeds the
// model, and a stream encoded on an AVX2 machine must decode identically on
// a machine without it.

struct V8 {
  __m256i a, b;  // columns 0..3, 4..7 as int64 lanes
};

#define LEPTON_AVX2 __attribute__((target("avx2"))) static inline

LEPTON_AVX2 V8 v8_load(const std::int64_t* p) {
  return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 4))};
}
LEPTON_AVX2 V8 v8_add(V8 x, V8 y) {
  return {_mm256_add_epi64(x.a, y.a), _mm256_add_epi64(x.b, y.b)};
}
LEPTON_AVX2 V8 v8_sub(V8 x, V8 y) {
  return {_mm256_sub_epi64(x.a, y.a), _mm256_sub_epi64(x.b, y.b)};
}
// x * c with |x| < 2^31 (range-gated) and |c| < 2^15: vpmuldq multiplies
// the signed low halves of each 64-bit lane.
LEPTON_AVX2 V8 v8_mulc(V8 x, std::int64_t c) {
  __m256i cc = _mm256_set1_epi64x(c);
  return {_mm256_mul_epi32(x.a, cc), _mm256_mul_epi32(x.b, cc)};
}
LEPTON_AVX2 V8 v8_shl13(V8 x) {
  return {_mm256_slli_epi64(x.a, 13), _mm256_slli_epi64(x.b, 13)};
}
// Arithmetic >> 20 with rounding (AVX2 has no 64-bit arithmetic shift:
// logical shift + a sign-extension mask).
LEPTON_AVX2 __m256i asr20_round_lane(__m256i x) {
  x = _mm256_add_epi64(x, _mm256_set1_epi64x(1ll << 19));
  __m256i neg = _mm256_cmpgt_epi64(_mm256_setzero_si256(), x);
  return _mm256_or_si256(_mm256_srli_epi64(x, 20),
                         _mm256_slli_epi64(neg, 44));
}
// Truncate 8 int64 lanes to 8 int32 and store one output row.
LEPTON_AVX2 void v8_store_row(V8 x, std::int32_t* p) {
  __m256i ra = asr20_round_lane(x.a);
  __m256i rb = asr20_round_lane(x.b);
  const __m256i idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  __m256i pa = _mm256_permutevar8x32_epi32(ra, idx);
  __m256i pb = _mm256_permutevar8x32_epi32(rb, idx);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p),
                      _mm256_permute2x128_si256(pa, pb, 0x20));
}

__attribute__((target("avx2"))) static void idct_pass2_avx2(
    const std::int64_t* tmp, std::int32_t* out) {
  V8 in0 = v8_load(tmp), in1 = v8_load(tmp + 8), in2 = v8_load(tmp + 16);
  V8 in3 = v8_load(tmp + 24), in4 = v8_load(tmp + 32), in5 = v8_load(tmp + 40);
  V8 in6 = v8_load(tmp + 48), in7 = v8_load(tmp + 56);

  // Even part (mirrors idct_1d exactly).
  V8 z1 = v8_mulc(v8_add(in2, in6), kFix0_541196100);
  V8 t2 = v8_sub(z1, v8_mulc(in6, kFix1_847759065));
  V8 t3 = v8_add(z1, v8_mulc(in2, kFix0_765366865));
  V8 t0 = v8_shl13(v8_add(in0, in4));
  V8 t1 = v8_shl13(v8_sub(in0, in4));
  V8 e0 = v8_add(t0, t3), e3 = v8_sub(t0, t3);
  V8 e1 = v8_add(t1, t2), e2 = v8_sub(t1, t2);

  // Odd part.
  V8 o0 = in7, o1 = in5, o2 = in3, o3 = in1;
  V8 za = v8_add(o0, o3);
  V8 zb = v8_add(o1, o2);
  V8 zc = v8_add(o0, o2);
  V8 zd = v8_add(o1, o3);
  V8 z5 = v8_mulc(v8_add(zc, zd), kFix1_175875602);
  o0 = v8_mulc(o0, kFix0_298631336);
  o1 = v8_mulc(o1, kFix2_053119869);
  o2 = v8_mulc(o2, kFix3_072711026);
  o3 = v8_mulc(o3, kFix1_501321110);
  za = v8_mulc(za, -kFix0_899976223);
  zb = v8_mulc(zb, -kFix2_562915447);
  zc = v8_add(v8_mulc(zc, -kFix1_961570560), z5);
  zd = v8_add(v8_mulc(zd, -kFix0_390180644), z5);
  o0 = v8_add(o0, v8_add(za, zc));
  o1 = v8_add(o1, v8_add(zb, zd));
  o2 = v8_add(o2, v8_add(zb, zc));
  o3 = v8_add(o3, v8_add(za, zd));

  v8_store_row(v8_add(e0, o3), out);
  v8_store_row(v8_sub(e0, o3), out + 56);
  v8_store_row(v8_add(e1, o2), out + 8);
  v8_store_row(v8_sub(e1, o2), out + 48);
  v8_store_row(v8_add(e2, o1), out + 16);
  v8_store_row(v8_sub(e2, o1), out + 40);
  v8_store_row(v8_add(e3, o0), out + 24);
  v8_store_row(v8_sub(e3, o0), out + 32);
}

#undef LEPTON_AVX2

#endif  // LEPTON_DCT_X86

}  // namespace

void idct_8x8_scaled(const std::int32_t coef[64], std::int32_t out[64]) {
  // Two Loeffler 1-D passes. Scale ledger: each pass multiplies by
  // sqrt(8) * 2^13; pass 1 descales by 2^6, pass 2 by 2^20, so the result
  // is 8 * (2^26 / 2^26) * pixel — the 8x-scaled samples the DC predictor
  // expects. All intermediates fit int64 with room to spare (|coef| can
  // reach 2^26 for 16-bit quant tables).
  //
  // The blocks this runs on are sparse (AC-only, early EOB), so pass 1
  // skips coefficient rows that are entirely zero — linearity makes their
  // contribution exactly zero. Determinism (§5.2) is preserved: encode and
  // decode run this same code on the same values.
  std::uint32_t row_nz = 0;  // bit u set ⇔ coef row u has a nonzero entry
  for (int u = 0; u < 8; ++u) {
    const std::int32_t* r = coef + u * 8;
    if ((r[0] | r[1] | r[2] | r[3] | r[4] | r[5] | r[6] | r[7]) != 0) {
      row_nz |= 1u << u;
    }
  }
  if (row_nz == 0) {
    for (int i = 0; i < 64; ++i) out[i] = 0;
    return;
  }
  std::int64_t row_in[8];
  std::int64_t tmp[64];
  for (int u = 0; u < 8; ++u) {
    if ((row_nz & (1u << u)) == 0) {
      for (int y = 0; y < 8; ++y) tmp[u * 8 + y] = 0;
      continue;
    }
    const std::int32_t* r = coef + u * 8;
    for (int v = 0; v < 8; ++v) row_in[v] = r[v];
    idct_1d(row_in, 1, tmp + u * 8, 1, 6);
  }
  std::int64_t col_out[8];
  for (int y = 0; y < 8; ++y) {
    idct_1d(tmp + y, 8, col_out, 1, 20);
    for (int x = 0; x < 8; ++x) {
      out[x * 8 + y] = static_cast<std::int32_t>(col_out[x]);
    }
  }
}

void idct_8x8_dequant_ac(const std::int16_t coef[64],
                         const std::uint16_t q[64], std::int32_t out[64]) {
  std::uint32_t row_nz = 0;
  for (int u = 0; u < 8; ++u) {
    const std::int16_t* r = coef + u * 8;
    // DC is excluded by definition; rows 1..7 test all eight entries.
    std::int32_t any = r[1] | r[2] | r[3] | r[4] | r[5] | r[6] | r[7];
    if (u != 0) any |= r[0];
    if (any != 0) row_nz |= 1u << u;
  }
  if (row_nz == 0) {
    for (int i = 0; i < 64; ++i) out[i] = 0;
    return;
  }
  std::int64_t row_in[8];
  std::int64_t tmp[64];
  // OR-accumulator over pass-1 magnitudes (t^(t>>63) = |t| or |t|-1): if it
  // stays under 2^29-1 every second-pass multiply operand fits 32 signed
  // bits, which is what the exact AVX2 pass below requires (vpmuldq
  // multiplies 32-bit halves). The widest operand is z5's, a FOUR-term sum
  // of pass-1 outputs (in1+in3+in5+in7), hence 2^29 and not 2^31: 4·(2^29-1)
  // still fits int32. Ordinary 8-bit-quant blocks sit far inside the gate;
  // pathological 16-bit-quant blocks fall back to the scalar loop with
  // identical results.
  std::int64_t mag_or = 0;
  for (int u = 0; u < 8; ++u) {
    if ((row_nz & (1u << u)) == 0) {
      for (int y = 0; y < 8; ++y) tmp[u * 8 + y] = 0;
      continue;
    }
    const std::int16_t* r = coef + u * 8;
    const std::uint16_t* qr = q + u * 8;
    // Rows carrying only their v=0 (column-edge) coefficient are common in
    // AC-only blocks; for them the butterfly degenerates to a broadcast of
    // the DC path — bit-identical to running idct_1d on that input.
    if (u != 0 && (r[1] | r[2] | r[3] | r[4] | r[5] | r[6] | r[7]) == 0) {
      std::int64_t t =
          (((static_cast<std::int64_t>(r[0]) * qr[0]) << 13) + (1ll << 5)) >>
          6;
      for (int y = 0; y < 8; ++y) tmp[u * 8 + y] = t;
      mag_or |= t ^ (t >> 63);
      continue;
    }
    for (int v = 0; v < 8; ++v) {
      row_in[v] = static_cast<std::int64_t>(r[v]) * qr[v];
    }
    if (u == 0) row_in[0] = 0;  // AC-only: DC excluded
    idct_1d(row_in, 1, tmp + u * 8, 1, 6);
    for (int y = 0; y < 8; ++y) {
      std::int64_t t = tmp[u * 8 + y];
      mag_or |= t ^ (t >> 63);
    }
  }
  // Blocks whose only energy is coefficient row 0 (the 1x7 row edge) make
  // every second-pass column a DC-only butterfly: broadcast it.
  if (row_nz == 1u) {
    for (int y = 0; y < 8; ++y) {
      std::int32_t v =
          static_cast<std::int32_t>(((tmp[y] << 13) + (1ll << 19)) >> 20);
      for (int x = 0; x < 8; ++x) out[x * 8 + y] = v;
    }
    return;
  }
#if LEPTON_DCT_X86
  if (mag_or < (1ll << 29) - 1 &&
      util::active_simd() == util::SimdLevel::kAvx2) {
    idct_pass2_avx2(tmp, out);
    return;
  }
#else
  (void)mag_or;
#endif
  std::int64_t col_out[8];
  for (int y = 0; y < 8; ++y) {
    idct_1d(tmp + y, 8, col_out, 1, 20);
    for (int x = 0; x < 8; ++x) {
      out[x * 8 + y] = static_cast<std::int32_t>(col_out[x]);
    }
  }
}

}  // namespace lepton::jpegfmt
