#include "jpeg/dct.h"

#include <cmath>

namespace lepton::jpegfmt {
namespace {

// cos((2x+1) u pi / 16) * sqrt(1/8 or 2/8), Q20. Generated at first use from
// long double and cached; the values are constants so this is deterministic
// per process and identical across encode/decode within a build, which is
// the property the model requires (both sides run this same code).
struct BasisTable {
  std::int64_t b[8][8];
  BasisTable() {
    const long double pi = 3.14159265358979323846264338327950288L;
    for (int x = 0; x < 8; ++x) {
      for (int u = 0; u < 8; ++u) {
        long double c = u == 0 ? std::sqrt(0.125L) : std::sqrt(0.25L);
        long double v =
            c * std::cos((2 * x + 1) * u * pi / 16.0L) * 1048576.0L;
        b[x][u] = static_cast<std::int64_t>(v >= 0 ? v + 0.5L : v - 0.5L);
      }
    }
  }
};

const BasisTable& basis() {
  static const BasisTable t;
  return t;
}

}  // namespace

std::int64_t dct_basis_q20(int x, int u) { return basis().b[x][u]; }

void fdct_8x8(const std::uint8_t* pixels, int stride, double out[64]) {
  // Direct O(64*64) transform; only used when authoring corpus files.
  static double cb[8][8];
  static bool init = false;
  if (!init) {
    const double pi = 3.14159265358979323846;
    for (int x = 0; x < 8; ++x) {
      for (int u = 0; u < 8; ++u) {
        double c = u == 0 ? std::sqrt(0.125) : 0.5;
        cb[x][u] = c * std::cos((2 * x + 1) * u * pi / 16.0);
      }
    }
    init = true;
  }
  double tmp[64];
  // Rows.
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      double s = 0;
      for (int x = 0; x < 8; ++x) {
        s += (static_cast<double>(pixels[y * stride + x]) - 128.0) * cb[x][u];
      }
      tmp[y * 8 + u] = s;
    }
  }
  // Columns.
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      double s = 0;
      for (int y = 0; y < 8; ++y) s += tmp[y * 8 + v] * cb[y][u];
      out[u * 8 + v] = s;
    }
  }
}

void idct_8x8_scaled(const std::int32_t coef[64], std::int32_t out[64]) {
  const auto& B = basis();
  // Separable: tmp[u][y] = sum_v coef[u][v] * B(y, v), then
  // out[x][y] = sum_u B(x, u) * tmp[u][y]. All Q20 → shift back with
  // rounding. Output scaled by 8.
  std::int64_t tmp[64];
  for (int u = 0; u < 8; ++u) {
    for (int y = 0; y < 8; ++y) {
      std::int64_t s = 0;
      for (int v = 0; v < 8; ++v) {
        s += static_cast<std::int64_t>(coef[u * 8 + v]) * B.b[y][v];
      }
      tmp[u * 8 + y] = s >> 10;  // keep Q10 for the second pass
    }
  }
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      std::int64_t s = 0;
      for (int u = 0; u < 8; ++u) s += tmp[u * 8 + y] * B.b[x][u];
      // Q30 now; produce 8x-scaled samples: value*8 = s / 2^30 * 8.
      out[x * 8 + y] = static_cast<std::int32_t>((s + (1ll << 26)) >> 27);
    }
  }
}

}  // namespace lepton::jpegfmt
