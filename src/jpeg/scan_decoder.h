// Entropy-coded scan decoder: Huffman-coded scan bytes → quantized DCT
// coefficient blocks.
//
// Beyond plain decoding, this module captures everything Lepton's format
// needs to re-create the scan byte-exactly and in parallel:
//   * a HuffmanHandover record at every MCU-row boundary (bit offset,
//     partial byte, per-component DC predictors, RST phase) — the raw
//     material for thread-segment and 4-MiB-chunk splits (§3.4),
//   * the observed pad-bit polarity (§A.3),
//   * the number of RST markers actually present, so files whose tails were
//     zero-wiped still round-trip (§A.3's "RST count" fix),
//   * per-category bit tallies (DC / 7x7 AC / edge AC) for the Figure 4
//     component breakdown.
#pragma once

#include <cstdint>
#include <vector>

#include "jpeg/jpeg_types.h"
#include "jpeg/parser.h"

namespace lepton::jpegfmt {

struct ScanStats {
  std::uint64_t bits_dc = 0;      // DC symbols + magnitude bits
  std::uint64_t bits_ac77 = 0;    // AC coefficients in the 7x7 interior
  std::uint64_t bits_edge = 0;    // AC coefficients in the 7x1/1x7 edges
  std::uint64_t bits_overhead = 0;  // EOB/ZRL/padding/marker bits
};

struct ScanDecodeResult {
  CoeffImage coeffs;
  // Boundary state at the start of each MCU row (index == mcu row).
  std::vector<RowBoundary> row_boundaries;
  // State after the final MCU, before trailing padding.
  HuffmanHandover end_state;
  std::uint32_t rst_count = 0;  // RST markers actually present in the file
  std::uint8_t pad_bit = 1;     // observed pad polarity (default 1)
  bool pad_bit_seen = false;
  // Scan bytes from end_state.pos.byte_off to the end of the scan, stored
  // verbatim: the final pad byte in the common case; zero-run tails and
  // other unrepresentable residue otherwise. This is the §A.1 format's
  // "arbitrary data to append to the output". The first byte's high
  // end_state.pos.bit_off bits coincide with end_state.partial_byte.
  std::vector<std::uint8_t> trailing_scan;
  ScanStats stats;
};

// Decodes the full scan. Throws ParseError on anything that cannot be
// represented for an exact round trip (truncation, garbage trailing the
// final MCU, inconsistent padding, out-of-range coefficients).
ScanDecodeResult decode_scan(const JpegFile& jf);

}  // namespace lepton::jpegfmt
