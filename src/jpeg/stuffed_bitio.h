// Bit I/O over the JPEG entropy-coded segment, with 0xFF00 byte stuffing.
//
// Shared by the scan decoder (reader), the scan encoder (writer), tests and
// the hot-path microbench. Both classes are built around a 64-bit window:
// the reader refills up to eight bytes at a time and serves multi-bit
// requests with one shift+mask (no per-bit loop), and exposes peek/consume
// so Huffman symbol decode can run off a lookup table; the writer
// accumulates whole symbols into a 64-bit register and can emit into a
// caller-owned, capacity-reserved buffer (the CodecContext scratch-reuse
// path). See DESIGN.md "Performance architecture".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "jpeg/jpeg_types.h"

namespace lepton::jpegfmt {

// Reader that understands 0xFF00 byte stuffing and stops (without
// consuming) at markers. It can report, at any bit position, the
// *file-byte* offset containing the next unconsumed bit — the coordinate a
// Huffman handover word records. Copyable so RST detection can speculate
// and roll back.
class StuffedBitReader {
 public:
  explicit StuffedBitReader(std::span<const std::uint8_t> scan) : d_(scan) {}

  // Returns 0/1, or -1 at end of entropy data (marker or end of span).
  int get_bit() {
    if (wbits_ == 0 && !refill()) return -1;
    --wbits_;
    ++consumed_;
    return static_cast<int>((window_ >> wbits_) & 1u);
  }

  // Returns the value of `n` bits MSB-first (0 <= n <= 32), or -1 on
  // truncation — in which case nothing is consumed. One shift+mask off the
  // 64-bit window; no per-bit loop.
  std::int32_t get_bits(int n) {
    if (n == 0) return 0;
    if (!ensure(n)) return -1;
    wbits_ -= n;
    consumed_ += static_cast<std::uint64_t>(n);
    return static_cast<std::int32_t>((window_ >> wbits_) &
                                     ((1ull << n) - 1ull));
  }

  // Refills until at least `n` bits are buffered; false if the entropy data
  // ends first (the buffered remainder stays readable via get_bit).
  bool ensure(int n) {
    while (wbits_ < n) {
      int before = wbits_;
      refill();
      if (wbits_ == before) return false;
    }
    return true;
  }

  // The next `n` buffered bits, MSB-first, without consuming. Requires a
  // prior successful ensure(n).
  std::uint32_t peek(int n) const {
    return static_cast<std::uint32_t>((window_ >> (wbits_ - n)) &
                                      ((1ull << n) - 1ull));
  }

  // Consumes `n` buffered bits. Requires a prior successful ensure(n).
  void consume(int n) {
    wbits_ -= n;
    consumed_ += static_cast<std::uint64_t>(n);
  }

  // Position of the next unconsumed bit, in scan-relative byte space.
  ScanPos pos() const {
    std::uint64_t byte_idx = consumed_ / 8;
    int bit_off = static_cast<int>(consumed_ % 8);
    if (byte_idx >= n_loaded_) {
      // Next byte not yet loaded; it will be read from pos_.
      return {pos_, 0};
    }
    return {offsets_[byte_idx & 15], bit_off};
  }

  // High `bit_off` bits of the byte at pos() that were already consumed
  // (the "partial byte" of the handover word). Low bits are zeroed.
  std::uint8_t partial_byte() const {
    ScanPos p = pos();
    if (p.bit_off == 0) return 0;
    std::uint8_t b = d_[p.byte_off];
    return static_cast<std::uint8_t>(b & ~((1u << (8 - p.bit_off)) - 1u));
  }

  bool byte_aligned() const { return consumed_ % 8 == 0; }
  int bits_into_byte() const { return static_cast<int>(consumed_ % 8); }

  // After all entropy data is consumed, true iff every scan byte was used.
  bool fully_consumed() const { return wbits_ == 0 && pos_ >= d_.size(); }

  // If the next bytes are an RST marker with the expected index, consume it
  // and return true. Requires an empty bit window (callers consume padding
  // first), so consumed_ == 8 * n_loaded_ and pos() already reports the
  // next-load offset — advancing pos_ past the marker keeps it exact.
  bool consume_rst_marker(int expected_index) {
    if (wbits_ != 0) return false;
    if (pos_ + 1 >= d_.size()) return false;
    if (d_[pos_] != 0xFF) return false;
    std::uint8_t m = d_[pos_ + 1];
    if (m != 0xD0 + expected_index) return false;
    pos_ += 2;
    return true;
  }

 private:
  bool refill() {
    while (wbits_ <= 56) {
      if (pos_ >= d_.size()) break;
      std::uint8_t b = d_[pos_];
      if (b == 0xFF) {
        if (pos_ + 1 >= d_.size()) break;  // lone 0xFF at end: stop
        if (d_[pos_ + 1] != 0x00) break;   // marker: stop before it
        record_loaded(pos_);
        pos_ += 2;  // skip the stuffed 0x00 together with its 0xFF
        push(0xFF);
      } else {
        record_loaded(pos_);
        pos_ += 1;
        push(b);
      }
    }
    return wbits_ > 0;
  }

  void push(std::uint8_t b) {
    window_ = (window_ << 8) | b;
    wbits_ += 8;
  }
  void record_loaded(std::uint64_t off) { offsets_[n_loaded_++ & 15] = off; }

  std::span<const std::uint8_t> d_;
  std::uint64_t pos_ = 0;       // next byte to load
  std::uint64_t window_ = 0;    // right-justified unconsumed bits
  int wbits_ = 0;
  std::uint64_t consumed_ = 0;  // total data bits consumed
  std::uint64_t n_loaded_ = 0;  // total data bytes loaded
  std::uint64_t offsets_[16] = {};  // ring: file offset of each loaded byte
};

// Bit writer with JPEG 0xFF00 stuffing. Emits only completed bytes; can be
// seeded with a handover partial byte and reports its final partial state.
// Symbols accumulate in a 64-bit register and flush through raw stores
// into over-allocated storage — one capacity check per put_bits call
// instead of a push_back (capacity branch + size bump) per byte, which is
// measurable on the decode path's per-block re-encode. The output vector
// can be caller-owned so a long-lived decode loop reuses one grown-once
// allocation; the vector's size() is only authoritative after finish().
class StuffedBitWriter {
 public:
  StuffedBitWriter(std::uint8_t partial, int bit_off)
      : out_(&own_),
        acc_(bit_off == 0 ? 0 : (partial >> (8 - bit_off))),
        nbits_(bit_off) {}

  // Writes into `*out`, cleared up front but keeping its capacity.
  StuffedBitWriter(std::vector<std::uint8_t>* out, std::uint8_t partial,
                   int bit_off)
      : out_(out),
        acc_(bit_off == 0 ? 0 : (partial >> (8 - bit_off))),
        nbits_(bit_off) {
    out_->clear();
  }

  void put_bits(std::uint32_t bits, int n) {
    acc_ = (acc_ << n) | (bits & ((1ull << n) - 1));
    nbits_ += n;
    if (nbits_ < 8) return;
    // A 32-bit put flushes at most 4 bytes, 8 with worst-case stuffing.
    ensure(16);
    std::uint8_t* dst = out_->data() + len_;
    do {
      nbits_ -= 8;
      std::uint8_t b = static_cast<std::uint8_t>(acc_ >> nbits_);
      *dst++ = b;
      if (b == 0xFF) *dst++ = 0x00;
    } while (nbits_ >= 8);
    len_ = static_cast<std::size_t>(dst - out_->data());
    acc_ &= (1ull << nbits_) - 1;
  }

  void pad_to_byte(std::uint32_t pad_bit) {
    if (nbits_ == 0) return;
    std::uint32_t pad = pad_bit ? (1u << (8 - nbits_)) - 1u : 0u;
    put_bits(pad, 8 - nbits_);
  }

  // Markers are written outside the entropy bit stream (must be aligned).
  void put_marker(std::uint8_t m) {
    ensure(2);
    (*out_)[len_++] = 0xFF;
    (*out_)[len_++] = m;
  }

  int bit_offset() const { return nbits_; }
  std::uint8_t partial_byte() const {
    return nbits_ == 0
               ? 0
               : static_cast<std::uint8_t>((acc_ << (8 - nbits_)) & 0xFF);
  }

  // Trims the storage to the emitted length. Must be called exactly once,
  // after the last put; bytes_emitted() stays valid either way.
  void finish() { out_->resize(len_); }

  // Finishes and moves the bytes out (internal buffer) or copies them
  // (external buffer — callers on the reuse path read the buffer directly).
  std::vector<std::uint8_t> take() {
    finish();
    if (out_ == &own_) return std::move(own_);
    return *out_;
  }
  std::size_t bytes_emitted() const { return len_; }

 private:
  void ensure(std::size_t extra) {
    if (out_->size() < len_ + extra) {
      std::size_t grown = out_->size() * 2;
      out_->resize(grown > len_ + extra + 64 ? grown : len_ + extra + 64);
    }
  }

  std::vector<std::uint8_t> own_;
  std::vector<std::uint8_t>* out_;
  std::size_t len_ = 0;  // emitted bytes; out_->size() is the capacity in use
  std::uint64_t acc_;
  int nbits_;
};

}  // namespace lepton::jpegfmt
