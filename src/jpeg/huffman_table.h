// Canonical JPEG Huffman tables (ITU-T T.81 Annex C) with both encode and
// decode views. Decode uses an 8-bit first-level lookup with a canonical
// slow path for longer codes. All table construction is bounds-checked:
// hostile DHT segments were the source of the open-source release's fuzzing
// bugs (§6.7), so over-subscribed code lengths are rejected, not trusted.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "jpeg/jpeg_types.h"

namespace lepton::jpegfmt {

class HuffmanTable {
 public:
  HuffmanTable() = default;

  // Builds from the DHT payload: 16 length counts then the symbol list.
  // Throws ParseError on invalid (over-subscribed) tables.
  static HuffmanTable build(std::span<const std::uint8_t> counts16,
                            std::span<const std::uint8_t> symbols);

  bool defined() const { return defined_; }

  // -- Encode view ---------------------------------------------------------
  // Code/length for a symbol. Length 0 means the symbol has no code (using
  // it would make the file unrepresentable; callers treat that as corrupt).
  std::uint16_t code(std::uint8_t symbol) const { return enc_code_[symbol]; }
  std::uint8_t code_length(std::uint8_t symbol) const {
    return enc_len_[symbol];
  }

  // -- Decode view ---------------------------------------------------------

  // First-level decode LUT width: 10 bits covers every code of the common
  // tables (the standard Annex K tables put all frequent symbols at <= 10
  // bits), so the canonical fallback runs only for rare long codes. 2 KiB
  // per table keeps all four tables of a scan resident in L1.
  static constexpr int kLutBits = 10;

  // Fast path: decodes one symbol from the next 16 bits of the stream
  // (MSB-first, as returned by StuffedBitReader::peek(16)). Returns
  // (length << 8) | symbol, or 0 if no code matches. Codes of length <=
  // kLutBits resolve with a single table lookup; longer codes fall back to
  // the canonical min/max compare. Exactly equivalent to decode() when at
  // least 16 bits are available.
  std::uint32_t decode16(std::uint32_t bits16) const {
    std::uint32_t hit = lut_[bits16 >> (16 - kLutBits)];
    if (hit != 0) return hit;
    for (int len = kLutBits + 1; len <= 16; ++len) {
      std::uint32_t code = bits16 >> (16 - len);
      if (max_code_[len] >= 0 &&
          static_cast<std::int32_t>(code) <= max_code_[len] &&
          static_cast<std::int32_t>(code) >= min_code_[len]) {
        std::size_t idx =
            val_ptr_[len] + (code - static_cast<std::uint32_t>(min_code_[len]));
        if (idx < symbols_.size()) {
          return (static_cast<std::uint32_t>(len) << 8) | symbols_[idx];
        }
        return 0;
      }
    }
    return 0;
  }

  // Decodes one symbol by pulling bits from `next_bit` (a callable returning
  // 0/1). Returns -1 if the bit pattern matches no code. Slow path for
  // stream tails with fewer than 16 bits left.
  template <typename NextBit>
  int decode(NextBit&& next_bit) const {
    // First level: try the 8-bit LUT using peeked bits one at a time.
    std::uint32_t bits = 0;
    for (int len = 1; len <= 16; ++len) {
      bits = (bits << 1) | (next_bit() & 1u);
      if (len <= 8) {
        // LUT keyed by (code << (8 - len)) is ambiguous; use canonical
        // min/max compare which is branch-cheap.
      }
      if (max_code_[len] >= 0 &&
          static_cast<std::int32_t>(bits) <= max_code_[len] &&
          static_cast<std::int32_t>(bits) >= min_code_[len]) {
        std::size_t idx =
            val_ptr_[len] + (bits - static_cast<std::uint32_t>(min_code_[len]));
        if (idx < symbols_.size()) return symbols_[idx];
        return -1;
      }
    }
    return -1;
  }

  // Raw DHT payload (counts + symbols) for re-serialization.
  const std::array<std::uint8_t, 16>& counts() const { return counts_; }
  const std::vector<std::uint8_t>& symbols() const { return symbols_; }

 private:
  bool defined_ = false;
  std::array<std::uint8_t, 16> counts_{};
  std::vector<std::uint8_t> symbols_;
  // Canonical decode tables (T.81 F.2.2.3).
  std::array<std::int32_t, 17> min_code_{};
  std::array<std::int32_t, 17> max_code_{};  // -1 = no codes of this length
  std::array<std::uint32_t, 17> val_ptr_{};
  // Encode tables.
  std::array<std::uint16_t, 256> enc_code_{};
  std::array<std::uint8_t, 256> enc_len_{};
  // First-level decode LUT keyed by the next kLutBits stream bits:
  // (len << 8) | symbol for codes of length <= kLutBits, 0 = longer code
  // or no match.
  std::array<std::uint16_t, (1u << kLutBits)> lut_{};
};

// Builds an optimal (length-limited, canonical) Huffman table for the given
// symbol frequencies, as jpegtran's -optimize does. Used by the
// JPEGrescan-like baseline and by the synthetic JPEG author.
HuffmanTable build_optimal_table(std::span<const std::uint64_t> freq,
                                 int max_len = 16);

}  // namespace lepton::jpegfmt
