#include "baselines/arith_jpeg.h"

#include <memory>

#include "baselines/jpeg_envelope.h"
#include "coding/coder_ops.h"
#include "jpeg/scan_decoder.h"

namespace lepton::baselines {
namespace {

using coding::Branch;
using util::ExitCode;

constexpr int kKinds = 2;
constexpr int kPosBuckets = 6;   // zigzag position buckets for AC contexts
constexpr int kDcClasses = 3;    // previous-delta classification (spec-like)

int pos_bucket(int k) {
  if (k <= 1) return 0;
  if (k <= 2) return 1;
  if (k <= 5) return 2;
  if (k <= 9) return 3;
  if (k <= 20) return 4;
  return 5;
}

struct Model {
  Branch dc_exp[kKinds][kDcClasses][13];
  Branch dc_sign[kKinds][kDcClasses];
  Branch dc_res[kKinds][kDcClasses][12];
  Branch eob[kKinds][kPosBuckets];
  Branch nonzero[kKinds][kPosBuckets];
  Branch ac_exp[kKinds][kPosBuckets][11];
  Branch ac_sign[kKinds][kPosBuckets];
  Branch ac_res[kKinds][kPosBuckets][10];
};

template <typename Ops>
void code_image(Ops& ops, Model& m, const jpegfmt::JpegFile& hdr,
                jpegfmt::CoeffImage& coeffs) {
  const auto& fr = hdr.frame;
  // Sequential per-component state, as the spec's coder keeps.
  std::array<int, 4> prev_class{};

  for (std::size_t c = 0; c < fr.comps.size(); ++c) {
    auto& cc = coeffs.comps[c];
    int kind = c == 0 ? 0 : 1;
    std::size_t nblocks =
        static_cast<std::size_t>(cc.width_blocks) * cc.height_blocks;
    std::int32_t prev_dc = 0;
    for (std::size_t b = 0; b < nblocks; ++b) {
      std::int16_t* blk = cc.data.data() + b * 64;

      // ---- DC: delta vs previous block of the component ----
      int cls = prev_class[c];
      std::int32_t delta = coding::code_value(
          ops, m.dc_exp[kind][cls], &m.dc_sign[kind][cls], m.dc_res[kind][cls],
          12, Ops::kEncoding ? blk[0] - prev_dc : 0);
      if constexpr (!Ops::kEncoding) {
        std::int32_t dc = prev_dc + delta;
        if (dc > 2047) dc = 2047;
        if (dc < -2048) dc = -2048;
        blk[0] = static_cast<std::int16_t>(dc);
      }
      prev_dc = blk[0];
      std::uint32_t mag = delta < 0 ? static_cast<std::uint32_t>(-delta)
                                    : static_cast<std::uint32_t>(delta);
      prev_class[c] = mag == 0 ? 0 : (mag <= 2 ? 1 : 2);

      // ---- AC: per-position EOB decision + value (spec Annex G shape) ----
      int last_nz = 0;
      if constexpr (Ops::kEncoding) {
        for (int k = 63; k >= 1; --k) {
          if (blk[jpegfmt::kZigzag[k]] != 0) {
            last_nz = k;
            break;
          }
        }
      }
      for (int k = 1; k < 64; ++k) {
        int pb = pos_bucket(k);
        bool eob = ops.code_bit(m.eob[kind][pb], k > last_nz);
        if (eob) break;
        int nat = jpegfmt::kZigzag[k];
        bool nz = ops.code_bit(m.nonzero[kind][pb],
                               Ops::kEncoding ? blk[nat] != 0 : false);
        if (!nz) continue;
        std::int32_t v = coding::code_value(
            ops, m.ac_exp[kind][pb], &m.ac_sign[kind][pb], m.ac_res[kind][pb],
            10, Ops::kEncoding ? blk[nat] : 0);
        if constexpr (!Ops::kEncoding) {
          blk[nat] = static_cast<std::int16_t>(v);
        } else if (v == 0) {
          // A nonzero flag with value 0 would desynchronize: impossible by
          // construction on the encode side.
        }
      }
    }
  }
}

}  // namespace

std::size_t ArithJpegCodec::bin_count() { return sizeof(Model) / sizeof(Branch); }

CodecResult ArithJpegCodec::encode(std::span<const std::uint8_t> input) {
  CodecResult out;
  try {
    auto jf = jpegfmt::parse_jpeg(input);
    auto dec = jpegfmt::decode_scan(jf);
    auto env = make_envelope(jf, dec);
    auto model = std::make_unique<Model>();
    coding::BoolEncoder enc;
    coding::EncodeOps ops{&enc};
    code_image(ops, *model, jf, dec.coeffs);
    auto coded = enc.finish();
    out.data = pack_envelope(env, {coded.data(), coded.size()});
  } catch (const jpegfmt::ParseError& e) {
    out.code = e.code();
  } catch (const std::exception&) {
    out.code = ExitCode::kImpossible;
  }
  return out;
}

CodecResult ArithJpegCodec::decode(std::span<const std::uint8_t> input) {
  CodecResult out;
  try {
    auto u = unpack_envelope(input);
    jpegfmt::CoeffImage coeffs;
    coeffs.comps.resize(u.header.frame.comps.size());
    for (std::size_t c = 0; c < u.header.frame.comps.size(); ++c) {
      coeffs.comps[c].resize(u.header.frame.comps[c].width_blocks,
                             u.header.frame.comps[c].height_blocks);
    }
    auto model = std::make_unique<Model>();
    coding::BoolDecoder dec({u.coded.data(), u.coded.size()});
    coding::DecodeOps ops{&dec};
    code_image(ops, *model, u.header, coeffs);
    out.data = reassemble_file(u, coeffs);
  } catch (const jpegfmt::ParseError& e) {
    out.code = e.code();
  } catch (const std::exception&) {
    out.code = ExitCode::kImpossible;
  }
  return out;
}

}  // namespace lepton::baselines
