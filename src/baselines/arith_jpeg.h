// MozJPEG-arithmetic-class baseline (§2, Figure 1 "MozJPEG (arithmetic)").
//
// The JPEG specification's arithmetic-coding extension uses a small model —
// "about 300 bins" (§3.2) — with contexts that look only at the previous
// values within the same block/component, nothing like Lepton's 721k-bin
// neighbourhood model. This codec reproduces that design point: the same
// spec-flavoured contexts (DC delta classification, AC position buckets,
// EOB decision per position) over our range coder. It lands mid-pack on
// compression (paper: ~12%) while staying reasonably fast.
#pragma once

#include "baselines/codec_iface.h"

namespace lepton::baselines {

class ArithJpegCodec : public Codec {
 public:
  std::string name() const override { return "mozjpeg-arith-like"; }
  bool jpeg_aware() const override { return true; }
  CodecResult encode(std::span<const std::uint8_t> input) override;
  CodecResult decode(std::span<const std::uint8_t> input) override;

  // Number of statistic bins in the model (tests pin this near the paper's
  // "about 300 bins" description).
  static std::size_t bin_count();
};

}  // namespace lepton::baselines
