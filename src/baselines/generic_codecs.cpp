#include "baselines/generic_codecs.h"

#include <memory>

#include "coding/coder_ops.h"
#include "util/serialize.h"
#include "util/tracked_memory.h"
#include "util/zlib_util.h"

namespace lepton::baselines {

CodecResult DeflateCodec::encode(std::span<const std::uint8_t> input) {
  CodecResult out;
  util::Serializer s;
  s.u64(input.size());
  auto z = util::zlib_compress(input, level_);
  s.blob({z.data(), z.size()});
  out.data = s.take();
  return out;
}

CodecResult DeflateCodec::decode(std::span<const std::uint8_t> input) {
  CodecResult out;
  util::Deserializer d(input);
  std::uint64_t expect = d.u64();
  auto z = d.blob();
  if (!d.ok() ||
      !util::zlib_decompress({z.data(), z.size()}, out.data) ||
      out.data.size() != expect) {
    out.code = util::ExitCode::kNotAnImage;
    out.data.clear();
  }
  return out;
}

namespace {

// 256-way adaptive byte model as a binary tree per context.
struct ByteModel {
  explicit ByteModel(int contexts) : tree(contexts) {}
  std::vector<std::array<coding::Branch, 256>> tree;
};

}  // namespace

CodecResult ByteArithCodec::encode(std::span<const std::uint8_t> input) {
  CodecResult out;
  int contexts = order_ == 0 ? 1 : 256;
  ByteModel model(contexts);
  util::MemoryTracker::instance().on_alloc(contexts * 512);
  coding::BoolEncoder enc;
  coding::EncodeOps ops{&enc};
  std::uint8_t prev = 0;
  for (std::uint8_t b : input) {
    coding::code_tree(ops, model.tree[order_ == 0 ? 0 : prev].data(), 8, b);
    prev = b;
  }
  util::MemoryTracker::instance().on_free(contexts * 512);
  util::Serializer s;
  s.u64(input.size());
  auto coded = enc.finish();
  s.blob({coded.data(), coded.size()});
  out.data = s.take();
  return out;
}

CodecResult ByteArithCodec::decode(std::span<const std::uint8_t> input) {
  CodecResult out;
  util::Deserializer d(input);
  std::uint64_t n = d.u64();
  auto coded = d.blob();
  if (!d.ok() || n > (1ull << 32)) {
    out.code = util::ExitCode::kNotAnImage;
    return out;
  }
  int contexts = order_ == 0 ? 1 : 256;
  ByteModel model(contexts);
  util::MemoryTracker::instance().on_alloc(contexts * 512);
  coding::BoolDecoder dec({coded.data(), coded.size()});
  coding::DecodeOps ops{&dec};
  out.data.reserve(n);
  std::uint8_t prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    auto b = static_cast<std::uint8_t>(
        coding::code_tree(ops, model.tree[order_ == 0 ? 0 : prev].data(), 8,
                          0));
    out.data.push_back(b);
    prev = b;
  }
  util::MemoryTracker::instance().on_free(contexts * 512);
  return out;
}

}  // namespace lepton::baselines
