#include "baselines/packjpg_like.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "baselines/jpeg_envelope.h"
#include "coding/coder_ops.h"
#include "jpeg/scan_decoder.h"
#include "util/tracked_memory.h"

namespace lepton::baselines {
namespace {

using coding::Branch;
using util::ExitCode;

constexpr int kKinds = 2;          // luma / chroma statistics
constexpr int kEnergyBuckets = 16; // log2 of accumulated band energy
constexpr int kDeltaClasses = 3;   // DC previous-delta classification

int energy_bucket(std::uint32_t e) {
  int b = 0;
  while (e != 0 && b < kEnergyBuckets - 1) {
    ++b;
    e >>= 1;
  }
  return b;
}

// The coder's full adaptive state. Band-indexed plus energy-context bins;
// the paq mode adds a second bank keyed by the previous decoded value and
// mixes the two predictions per bit.
struct Model {
  // [kind][band][energy bucket][bit]
  Branch ac_exp[kKinds][64][kEnergyBuckets][11];
  Branch ac_sign[kKinds][64][kEnergyBuckets];
  Branch ac_res[kKinds][64][kEnergyBuckets][10];
  // Second bank for context mixing (paq mode); sized to cover every bit of
  // one value coding (exponent + sign + residual <= 20 bits).
  Branch mix_exp[kKinds][64][kEnergyBuckets][24];
  // DC
  Branch dc_exp[kKinds][kDeltaClasses][13];
  Branch dc_sign[kKinds][kDeltaClasses];
  Branch dc_res[kKinds][kDeltaClasses][12];
};

// Context-mixing bit ops: probability = mean of two adaptive branches.
struct MixEncodeOps {
  static constexpr bool kEncoding = true;
  coding::BoolEncoder* enc;
  Branch* second = nullptr;
  bool code_bit(Branch& b, bool bit) {
    std::uint8_t p = b.prob_zero();
    if (second != nullptr) {
      unsigned mixed = (static_cast<unsigned>(p) + second->prob_zero()) / 2;
      p = static_cast<std::uint8_t>(mixed < 1 ? 1 : mixed);
      second->record(bit);
      ++second;
    }
    enc->put(bit, p);
    b.record(bit);
    return bit;
  }

  // Raw-bit batch (coder_ops.h contract); the mixing model has no second
  // opinion on uniform bits.
  std::uint32_t code_literal(std::uint32_t bits, int count) {
    enc->put_literal(bits, count);
    return bits;
  }
};

struct MixDecodeOps {
  static constexpr bool kEncoding = false;
  coding::BoolDecoder* dec;
  Branch* second = nullptr;
  bool code_bit(Branch& b, bool /*hint*/) {
    std::uint8_t p = b.prob_zero();
    if (second != nullptr) {
      unsigned mixed = (static_cast<unsigned>(p) + second->prob_zero()) / 2;
      p = static_cast<std::uint8_t>(mixed < 1 ? 1 : mixed);
    }
    bool bit = dec->get(p);
    if (second != nullptr) {
      second->record(bit);
      ++second;
    }
    b.record(bit);
    return bit;
  }

  std::uint32_t code_literal(std::uint32_t /*hint*/, int count) {
    return dec->get_literal(count);
  }
};

struct BlockRef {
  std::uint32_t comp;
  std::uint32_t index;  // block index within component (raster)
};

// Flattened view of every block in the image, component-major: the "global"
// structure both sides must hold in RAM.
struct GlobalView {
  std::vector<BlockRef> blocks;
  std::vector<std::uint32_t> energy;  // accumulated |coef| of coded bands
  std::vector<std::uint32_t> order;   // sort permutation, rebuilt per band

  explicit GlobalView(const jpegfmt::FrameInfo& fr) {
    for (std::size_t c = 0; c < fr.comps.size(); ++c) {
      auto n = static_cast<std::uint32_t>(fr.comps[c].width_blocks) *
               static_cast<std::uint32_t>(fr.comps[c].height_blocks);
      for (std::uint32_t i = 0; i < n; ++i) {
        blocks.push_back({static_cast<std::uint32_t>(c), i});
      }
    }
    energy.assign(blocks.size(), 0);
    order.resize(blocks.size());
  }

  // The global operation: stable-sort all blocks by decreasing energy of
  // their already-coded bands. Re-run for every band, on both sides.
  void resort() {
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [this](std::uint32_t a, std::uint32_t b) {
                       return energy[a] > energy[b];
                     });
  }
};

template <typename Ops>
void code_image(Ops& ops, Model& m, const jpegfmt::JpegFile& hdr,
                jpegfmt::CoeffImage& coeffs, bool paq, bool encoding_known) {
  const auto& fr = hdr.frame;
  GlobalView view(fr);

  auto block_ptr = [&](const BlockRef& r) {
    auto& cc = coeffs.comps[r.comp];
    return cc.data.data() + static_cast<std::size_t>(r.index) * 64;
  };
  auto kind_of = [](const BlockRef& r) { return r.comp == 0 ? 0 : 1; };

  // ---- DC band: raster order, neighbour-average prediction ("baseline
  // PackJPG's approach", §4.3). ----
  for (std::size_t c = 0; c < fr.comps.size(); ++c) {
    auto& cc = coeffs.comps[c];
    int wb = cc.width_blocks;
    int kind = c == 0 ? 0 : 1;
    int prev_class = 0;
    for (int by = 0; by < cc.height_blocks; ++by) {
      for (int bx = 0; bx < wb; ++bx) {
        std::int16_t* blk = cc.data.data() +
                            (static_cast<std::size_t>(by) * wb + bx) * 64;
        std::int32_t left = bx > 0 ? blk[-64] : 0;
        std::int32_t above =
            by > 0 ? blk[-static_cast<std::ptrdiff_t>(wb) * 64] : 0;
        std::int32_t pred =
            bx > 0 && by > 0 ? (left + above) / 2 : (bx > 0 ? left : above);
        std::int32_t delta = coding::code_value(
            ops, m.dc_exp[kind][prev_class], &m.dc_sign[kind][prev_class],
            m.dc_res[kind][prev_class], 12,
            encoding_known ? blk[0] - pred : 0);
        if constexpr (!Ops::kEncoding) {
          std::int32_t dc = pred + delta;
          if (dc > 2047) dc = 2047;
          if (dc < -2048) dc = -2048;
          blk[0] = static_cast<std::int16_t>(dc);
        }
        std::uint32_t mag = delta < 0 ? static_cast<std::uint32_t>(-delta)
                                      : static_cast<std::uint32_t>(delta);
        prev_class = mag == 0 ? 0 : (mag <= 2 ? 1 : 2);
      }
    }
  }
  // Seed energies with |DC|.
  for (std::size_t i = 0; i < view.blocks.size(); ++i) {
    std::int16_t dc = block_ptr(view.blocks[i])[0];
    view.energy[i] = static_cast<std::uint32_t>(dc < 0 ? -dc : dc);
  }

  // ---- AC bands in zigzag order, each band globally sorted ----
  for (int band = 1; band < 64; ++band) {
    int nat = jpegfmt::kZigzag[band];
    view.resort();  // the global operation
    for (std::uint32_t oi : view.order) {
      const BlockRef& r = view.blocks[oi];
      std::int16_t* blk = block_ptr(r);
      int kind = kind_of(r);
      int eb = energy_bucket(view.energy[oi]);
      if (paq) {
        ops.second = m.mix_exp[kind][band][eb];
      }
      std::int32_t v = coding::code_value(
          ops, m.ac_exp[kind][band][eb], &m.ac_sign[kind][band][eb],
          m.ac_res[kind][band][eb], 10, encoding_known ? blk[nat] : 0);
      ops.second = nullptr;
      if constexpr (!Ops::kEncoding) {
        blk[nat] = static_cast<std::int16_t>(v);
      }
      view.energy[oi] += static_cast<std::uint32_t>(v < 0 ? -v : v);
    }
  }
}

}  // namespace

CodecResult PackJpgLikeCodec::encode(std::span<const std::uint8_t> input) {
  CodecResult out;
  try {
    auto jf = jpegfmt::parse_jpeg(input);
    auto dec = jpegfmt::decode_scan(jf);
    auto env = make_envelope(jf, dec);

    auto model = std::make_unique<Model>();
    util::MemoryTracker::instance().on_alloc(sizeof(Model));
    coding::BoolEncoder enc;
    MixEncodeOps ops{&enc};
    code_image(ops, *model, jf, dec.coeffs, paq_mode_, true);
    util::MemoryTracker::instance().on_free(sizeof(Model));
    auto coded = enc.finish();
    out.data = pack_envelope(env, {coded.data(), coded.size()});
  } catch (const jpegfmt::ParseError& e) {
    out.code = e.code();
  } catch (const std::exception&) {
    out.code = ExitCode::kImpossible;
  }
  return out;
}

CodecResult PackJpgLikeCodec::decode(std::span<const std::uint8_t> input) {
  CodecResult out;
  try {
    auto u = unpack_envelope(input);
    // Whole-image allocation up front: this codec cannot stream (§2).
    jpegfmt::CoeffImage coeffs;
    coeffs.comps.resize(u.header.frame.comps.size());
    for (std::size_t c = 0; c < u.header.frame.comps.size(); ++c) {
      coeffs.comps[c].resize(u.header.frame.comps[c].width_blocks,
                             u.header.frame.comps[c].height_blocks);
    }
    auto model = std::make_unique<Model>();
    util::MemoryTracker::instance().on_alloc(sizeof(Model));
    coding::BoolDecoder dec({u.coded.data(), u.coded.size()});
    MixDecodeOps ops{&dec};
    code_image(ops, *model, u.header, coeffs, paq_mode_, false);
    util::MemoryTracker::instance().on_free(sizeof(Model));
    out.data = reassemble_file(u, coeffs);
  } catch (const jpegfmt::ParseError& e) {
    out.code = e.code();
  } catch (const std::exception&) {
    out.code = ExitCode::kImpossible;
  }
  return out;
}

}  // namespace lepton::baselines
