#include "baselines/rescan_like.h"

#include <array>

#include "baselines/jpeg_envelope.h"
#include "jpeg/huffman_table.h"
#include "jpeg/scan_decoder.h"
#include "util/bitio.h"
#include "util/serialize.h"

namespace lepton::baselines {
namespace {

using jpegfmt::HuffmanTable;
using util::ExitCode;

// Spectral bands, as jpegrescan's default progressive script uses.
struct Band {
  int ss, se;  // zigzag range, inclusive
};
constexpr std::array<Band, 2> kAcBands = {{{1, 5}, {6, 63}}};

int magnitude_bits(int v) {
  int a = v < 0 ? -v : v;
  int n = 0;
  while (a != 0) {
    ++n;
    a >>= 1;
  }
  return n;
}

std::uint32_t to_raw(int v, int size) {
  return v < 0 ? static_cast<std::uint32_t>(v + (1 << size) - 1)
               : static_cast<std::uint32_t>(v);
}

int from_raw(std::uint32_t raw, int size) {
  auto v = static_cast<std::int32_t>(raw);
  if (v < (1 << (size - 1))) return v - (1 << size) + 1;
  return v;
}

// One component's blocks in raster order (progressive scans are coded
// non-interleaved per component).
struct CompView {
  const jpegfmt::ComponentCoeffs* cc;
  std::size_t nblocks() const {
    return static_cast<std::size_t>(cc->width_blocks) * cc->height_blocks;
  }
};

// ---- symbol streams -------------------------------------------------------
// The encoder runs each band twice: once counting symbol frequencies, once
// emitting bits — exactly jpegtran -optimize's two-pass structure.

template <typename EmitSym, typename EmitBits>
void walk_dc(const std::vector<CompView>& comps, EmitSym&& sym,
             EmitBits&& bits) {
  for (const auto& cv : comps) {
    std::int32_t prev = 0;
    const std::int16_t* data = cv.cc->data.data();
    for (std::size_t b = 0; b < cv.nblocks(); ++b) {
      std::int32_t dc = data[b * 64];
      std::int32_t diff = dc - prev;
      prev = dc;
      int s = magnitude_bits(diff);
      sym(s);
      if (s > 0) bits(to_raw(diff, s), s);
    }
  }
}

template <typename EmitSym, typename EmitBits>
void walk_ac_band(const CompView& cv, const Band& band, EmitSym&& sym,
                  EmitBits&& bits) {
  std::uint32_t eobrun = 0;
  auto flush_eob = [&] {
    while (eobrun > 0) {
      int e = 0;
      while ((2u << e) <= eobrun && e < 14) ++e;  // e = floor(log2(eobrun))
      std::uint32_t run = std::min(eobrun, (1u << (e + 1)) - 1);
      // symbol (e<<4)|0, extra bits = run - 2^e  (T.81 G.1.2.2)
      sym(e << 4);
      if (e > 0) bits(run - (1u << e), e);
      eobrun -= run;
    }
  };
  const std::int16_t* data = cv.cc->data.data();
  for (std::size_t b = 0; b < cv.nblocks(); ++b) {
    const std::int16_t* blk = data + b * 64;
    int last_nz = 0;
    for (int k = band.se; k >= band.ss; --k) {
      if (blk[jpegfmt::kZigzag[k]] != 0) {
        last_nz = k;
        break;
      }
    }
    if (last_nz == 0) {
      ++eobrun;
      if (eobrun == 0x7FFF) flush_eob();
      continue;
    }
    flush_eob();
    int run = 0;
    for (int k = band.ss; k <= last_nz; ++k) {
      int c = blk[jpegfmt::kZigzag[k]];
      if (c == 0) {
        ++run;
        continue;
      }
      while (run > 15) {
        sym(0xF0);
        run -= 16;
      }
      int s = magnitude_bits(c);
      sym((run << 4) | s);
      bits(to_raw(c, s), s);
      run = 0;
    }
    if (last_nz < band.se) ++eobrun;  // trailing zeros join the next EOB run
  }
  flush_eob();
}

void serialize_table(util::Serializer& s, const HuffmanTable& t) {
  s.bytes({t.counts().data(), 16});
  s.u32(static_cast<std::uint32_t>(t.symbols().size()));
  s.bytes({t.symbols().data(), t.symbols().size()});
}

HuffmanTable deserialize_table(util::Deserializer& d) {
  auto counts = d.bytes(16);
  auto n = d.u32();
  if (!d.ok() || n > 256) {
    throw jpegfmt::ParseError(ExitCode::kNotAnImage, "bad band table");
  }
  auto symbols = d.bytes(n);
  if (!d.ok()) {
    throw jpegfmt::ParseError(ExitCode::kNotAnImage, "bad band symbols");
  }
  return HuffmanTable::build({counts.data(), counts.size()},
                             {symbols.data(), symbols.size()});
}

}  // namespace

CodecResult RescanLikeCodec::encode(std::span<const std::uint8_t> input) {
  CodecResult out;
  try {
    auto jf = jpegfmt::parse_jpeg(input);
    auto dec = jpegfmt::decode_scan(jf);
    auto env = make_envelope(jf, dec);

    std::vector<CompView> comps;
    for (const auto& cc : dec.coeffs.comps) comps.push_back({&cc});

    util::Serializer coded;
    util::BitWriter bw;

    // ---- DC band ----
    {
      std::uint64_t freq[256] = {};
      walk_dc(comps, [&](int s) { ++freq[s]; }, [](std::uint32_t, int) {});
      auto table = jpegfmt::build_optimal_table({freq, 256});
      serialize_table(coded, table);
      walk_dc(
          comps,
          [&](int s) {
            bw.put_bits(table.code(static_cast<std::uint8_t>(s)),
                        table.code_length(static_cast<std::uint8_t>(s)));
          },
          [&](std::uint32_t raw, int n) { bw.put_bits(raw, n); });
    }
    // ---- AC bands, per component (non-interleaved progressive scans) ----
    for (const auto& band : kAcBands) {
      for (const auto& cv : comps) {
        std::uint64_t freq[256] = {};
        walk_ac_band(cv, band, [&](int s) { ++freq[s]; },
                     [](std::uint32_t, int) {});
        auto table = jpegfmt::build_optimal_table({freq, 256});
        serialize_table(coded, table);
        walk_ac_band(
            cv, band,
            [&](int s) {
              bw.put_bits(table.code(static_cast<std::uint8_t>(s)),
                          table.code_length(static_cast<std::uint8_t>(s)));
            },
            [&](std::uint32_t raw, int n) { bw.put_bits(raw, n); });
      }
    }
    bw.pad_to_byte(1);
    coded.blob({bw.bytes().data(), bw.bytes().size()});
    out.data = pack_envelope(env, {coded.data().data(), coded.size()});
  } catch (const jpegfmt::ParseError& e) {
    out.code = e.code();
  } catch (const std::exception&) {
    out.code = ExitCode::kImpossible;
  }
  return out;
}

CodecResult RescanLikeCodec::decode(std::span<const std::uint8_t> input) {
  CodecResult out;
  try {
    auto u = unpack_envelope(input);
    jpegfmt::CoeffImage coeffs;
    coeffs.comps.resize(u.header.frame.comps.size());
    for (std::size_t c = 0; c < u.header.frame.comps.size(); ++c) {
      coeffs.comps[c].resize(u.header.frame.comps[c].width_blocks,
                             u.header.frame.comps[c].height_blocks);
    }

    util::Deserializer d({u.coded.data(), u.coded.size()});
    auto dc_table = deserialize_table(d);
    std::vector<HuffmanTable> band_tables;
    for (std::size_t bi = 0; bi < kAcBands.size(); ++bi) {
      for (std::size_t c = 0; c < coeffs.comps.size(); ++c) {
        band_tables.push_back(deserialize_table(d));
      }
    }
    auto payload = d.blob();
    if (!d.ok()) {
      throw jpegfmt::ParseError(ExitCode::kNotAnImage, "bad rescan payload");
    }
    util::BitReader br({payload.data(), payload.size()});
    auto next_bit = [&br] { return br.get_bit(); };

    // ---- DC ----
    for (auto& cc : coeffs.comps) {
      std::int32_t prev = 0;
      std::size_t n = static_cast<std::size_t>(cc.width_blocks) *
                      cc.height_blocks;
      for (std::size_t b = 0; b < n; ++b) {
        int s = dc_table.decode(next_bit);
        if (s < 0 || s > 12 || !br.ok()) {
          throw jpegfmt::ParseError(ExitCode::kNotAnImage, "bad DC symbol");
        }
        std::int32_t diff =
            s == 0 ? 0
                   : from_raw(br.get_bits(s), s);
        prev += diff;
        if (prev > 2047 || prev < -2048) {
          throw jpegfmt::ParseError(ExitCode::kAcOutOfRange, "DC overflow");
        }
        cc.data[b * 64] = static_cast<std::int16_t>(prev);
      }
    }
    // ---- AC bands ----
    std::size_t table_idx = 0;
    for (const auto& band : kAcBands) {
      for (auto& cc : coeffs.comps) {
        const auto& table = band_tables[table_idx++];
        std::size_t n = static_cast<std::size_t>(cc.width_blocks) *
                        cc.height_blocks;
        std::uint32_t eobrun = 0;
        for (std::size_t b = 0; b < n; ++b) {
          std::int16_t* blk = cc.data.data() + b * 64;
          if (eobrun > 0) {
            --eobrun;
            continue;
          }
          int k = band.ss;
          while (k <= band.se) {
            int rs = table.decode(next_bit);
            if (rs < 0 || !br.ok()) {
              throw jpegfmt::ParseError(ExitCode::kNotAnImage, "bad AC sym");
            }
            int r = rs >> 4, s = rs & 15;
            if (s == 0) {
              if (rs == 0xF0) {
                k += 16;
                continue;
              }
              // EOB run of 2^r + extra bits, covering this block too.
              eobrun = 1u << r;
              if (r > 0) eobrun += br.get_bits(r);
              --eobrun;  // this block
              break;
            }
            k += r;
            if (k > band.se) {
              throw jpegfmt::ParseError(ExitCode::kNotAnImage, "band overrun");
            }
            std::int32_t raw = static_cast<std::int32_t>(br.get_bits(s));
            blk[jpegfmt::kZigzag[k]] =
                static_cast<std::int16_t>(from_raw(raw, s));
            ++k;
          }
        }
      }
    }
    out.data = reassemble_file(u, coeffs);
  } catch (const jpegfmt::ParseError& e) {
    out.code = e.code();
  } catch (const std::exception&) {
    out.code = ExitCode::kImpossible;
  }
  return out;
}

}  // namespace lepton::baselines
