// PackJPG-class baseline (§2 "format-aware, file-preserving recompression").
//
// Reproduces the *mechanism* the paper contrasts Lepton against: one of
// PackJPG's compression techniques "requires re-arranging all of the
// compressed pixel values in the file in a globally sorted order", which
// means decompression is single-threaded, needs the entire file, and must
// decode the whole image into RAM before any byte can be output (§2).
//
// Our implementation: coefficients are coded band by band (zigzag index);
// within each band, blocks are visited in an order globally sorted by the
// energy of their already-coded bands. The decoder must reproduce the sort,
// so it fundamentally cannot stream or parallelize — exactly the property
// Figure 1/2 punishes with a ~9x decode-speed gap.
//
// The PAQ-like mode layers context mixing (two adaptive models averaged per
// bit) on the same coder: a little more compression, markedly slower —
// the Figure 2 relationship for PAQ8PX. (PAQ8PX's real 35-50x slowdown
// comes from dozens of mixed models; two are enough to place it correctly
// on both axes relative to PackJPG. Documented in DESIGN.md §5.)
#pragma once

#include "baselines/codec_iface.h"

namespace lepton::baselines {

class PackJpgLikeCodec : public Codec {
 public:
  explicit PackJpgLikeCodec(bool paq_mode = false) : paq_mode_(paq_mode) {}
  std::string name() const override {
    return paq_mode_ ? "paq-like" : "packjpg-like";
  }
  bool jpeg_aware() const override { return true; }
  CodecResult encode(std::span<const std::uint8_t> input) override;
  CodecResult decode(std::span<const std::uint8_t> input) override;

 private:
  bool paq_mode_;
};

}  // namespace lepton::baselines
