// Shared container plumbing for the JPEG-aware baseline codecs.
//
// Every format-aware, file-preserving recompressor (§2) needs the same
// bookkeeping Lepton does: carry the raw header bytes, the pad bit, the RST
// count, the unconsumed scan tail and any post-EOI garbage, so the original
// file can be reassembled around the recoded coefficients. This envelope
// factors that out so each baseline only implements its coefficient coding.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "jpeg/parser.h"
#include "jpeg/scan_decoder.h"

namespace lepton::baselines {

struct Envelope {
  std::vector<std::uint8_t> jpeg_header;
  std::uint8_t pad_bit = 1;
  std::uint32_t rst_count = 0;
  bool has_eoi = true;
  std::vector<std::uint8_t> trailing_scan;
  std::vector<std::uint8_t> trailing_file;
};

Envelope make_envelope(const jpegfmt::JpegFile& jf,
                       const jpegfmt::ScanDecodeResult& dec);

// Serializes the envelope (zlib-compressed, as Lepton does for headers §3.1)
// followed by `coded` (the baseline's coefficient payload).
std::vector<std::uint8_t> pack_envelope(const Envelope& env,
                                        std::span<const std::uint8_t> coded);

// Splits a packed container back into envelope + coded payload. Throws
// jpegfmt::ParseError on corrupt input.
struct Unpacked {
  Envelope env;
  std::vector<std::uint8_t> coded;
  jpegfmt::JpegFile header;  // parsed from env.jpeg_header
};
Unpacked unpack_envelope(std::span<const std::uint8_t> container);

// Reassembles the original file from the envelope and decoded coefficients.
std::vector<std::uint8_t> reassemble_file(const Unpacked& u,
                                          const jpegfmt::CoeffImage& coeffs);

}  // namespace lepton::baselines
