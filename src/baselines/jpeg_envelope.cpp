#include "baselines/jpeg_envelope.h"

#include "jpeg/scan_encoder.h"
#include "util/serialize.h"
#include "util/zlib_util.h"

namespace lepton::baselines {

Envelope make_envelope(const jpegfmt::JpegFile& jf,
                       const jpegfmt::ScanDecodeResult& dec) {
  Envelope env;
  env.jpeg_header.assign(jf.header_bytes().begin(), jf.header_bytes().end());
  env.pad_bit = dec.pad_bit;
  env.rst_count = dec.rst_count;
  env.has_eoi = jf.has_eoi;
  env.trailing_scan = dec.trailing_scan;
  env.trailing_file.assign(jf.trailing_bytes().begin(),
                           jf.trailing_bytes().end());
  return env;
}

std::vector<std::uint8_t> pack_envelope(const Envelope& env,
                                        std::span<const std::uint8_t> coded) {
  util::Serializer meta;
  meta.blob({env.jpeg_header.data(), env.jpeg_header.size()});
  meta.u8(env.pad_bit);
  meta.u32(env.rst_count);
  meta.u8(env.has_eoi ? 1 : 0);
  meta.blob({env.trailing_scan.data(), env.trailing_scan.size()});
  meta.blob({env.trailing_file.data(), env.trailing_file.size()});
  auto zmeta = util::zlib_compress({meta.data().data(), meta.size()}, 6);

  util::Serializer out;
  out.blob({zmeta.data(), zmeta.size()});
  out.blob(coded);
  return out.take();
}

Unpacked unpack_envelope(std::span<const std::uint8_t> container) {
  util::Deserializer d(container);
  auto zmeta = d.blob();
  auto coded = d.blob();
  if (!d.ok()) {
    throw jpegfmt::ParseError(util::ExitCode::kNotAnImage,
                              "truncated baseline container");
  }
  std::vector<std::uint8_t> meta;
  if (!util::zlib_decompress({zmeta.data(), zmeta.size()}, meta)) {
    throw jpegfmt::ParseError(util::ExitCode::kNotAnImage,
                              "corrupt baseline metadata");
  }
  Unpacked u;
  util::Deserializer m({meta.data(), meta.size()});
  u.env.jpeg_header = m.blob();
  u.env.pad_bit = m.u8() & 1;
  u.env.rst_count = m.u32();
  u.env.has_eoi = m.u8() != 0;
  u.env.trailing_scan = m.blob();
  u.env.trailing_file = m.blob();
  if (!m.ok()) {
    throw jpegfmt::ParseError(util::ExitCode::kNotAnImage,
                              "corrupt baseline metadata fields");
  }
  u.coded = std::move(coded);
  u.header = jpegfmt::parse_jpeg_header(
      {u.env.jpeg_header.data(), u.env.jpeg_header.size()});
  return u;
}

std::vector<std::uint8_t> reassemble_file(const Unpacked& u,
                                          const jpegfmt::CoeffImage& coeffs) {
  jpegfmt::ScanEncodeParams p;
  p.start_mcu_row = 0;
  p.end_mcu_row = u.header.frame.mcus_y;
  p.pad_bit = u.env.pad_bit;
  p.rst_count_limit = u.env.rst_count;
  p.final_segment = false;  // original padding travels in trailing_scan
  auto scan = jpegfmt::encode_scan_rows(u.header, coeffs, p, nullptr);

  std::vector<std::uint8_t> out = u.env.jpeg_header;
  out.insert(out.end(), scan.begin(), scan.end());
  out.insert(out.end(), u.env.trailing_scan.begin(), u.env.trailing_scan.end());
  if (u.env.has_eoi) {
    out.push_back(0xFF);
    out.push_back(0xD9);
  }
  out.insert(out.end(), u.env.trailing_file.begin(), u.env.trailing_file.end());
  return out;
}

}  // namespace lepton::baselines
