// Common interface for every compression algorithm in the Figure 1/2/3
// comparison: Lepton (multithreaded and 1-way), the JPEG-aware baselines
// (PackJPG-like, PAQ-like, MozJPEG-arithmetic-like, JPEGrescan-like) and the
// generic byte codecs (Deflate family, adaptive byte coder).
//
// Every codec must restore the EXACT original bytes — the same bar the
// paper holds its format-aware competitors to (§2 "file-preserving").
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/exit_codes.h"

namespace lepton::baselines {

struct CodecResult {
  util::ExitCode code = util::ExitCode::kSuccess;
  std::vector<std::uint8_t> data;
  bool ok() const { return code == util::ExitCode::kSuccess; }
};

class Codec {
 public:
  virtual ~Codec() = default;
  virtual std::string name() const = 0;
  // True for codecs that understand JPEG structure (center of Figure 2).
  virtual bool jpeg_aware() const = 0;
  virtual CodecResult encode(std::span<const std::uint8_t> input) = 0;
  virtual CodecResult decode(std::span<const std::uint8_t> input) = 0;
};

// The full codec lineup of Figure 2, in the paper's display order.
std::vector<std::unique_ptr<Codec>> make_comparison_codecs();

}  // namespace lepton::baselines
