// Generic byte-level codecs for the right-hand side of Figure 2.
//
// The paper measures Deflate, Brotli, LZham, LZMA and Zstandard and finds
// all of them save ~1% on JPEGs: already-compressed scan bytes look like
// noise to any byte-level model, and only the header compresses. Brotli /
// LZham / LZMA / Zstandard binaries are not available offline, so the class
// is represented by zlib at several levels plus our own adaptive byte-wise
// arithmetic coders (order-0 and order-1) — every member of this family
// lands at ≈0-1% on JPEGs, which is the figure's point (DESIGN.md §5
// records the substitution).
#pragma once

#include "baselines/codec_iface.h"

namespace lepton::baselines {

class DeflateCodec : public Codec {
 public:
  DeflateCodec(int level, std::string slot)
      : level_(level), slot_(std::move(slot)) {}
  std::string name() const override { return slot_; }
  bool jpeg_aware() const override { return false; }
  CodecResult encode(std::span<const std::uint8_t> input) override;
  CodecResult decode(std::span<const std::uint8_t> input) override;

 private:
  int level_;
  std::string slot_;
};

// Adaptive binary-decomposed byte coder; order 0 or 1 (previous byte as
// context). Stands in for the LZMA/LZham family's entropy stage.
class ByteArithCodec : public Codec {
 public:
  ByteArithCodec(int order, std::string slot)
      : order_(order), slot_(std::move(slot)) {}
  std::string name() const override { return slot_; }
  bool jpeg_aware() const override { return false; }
  CodecResult encode(std::span<const std::uint8_t> input) override;
  CodecResult decode(std::span<const std::uint8_t> input) override;

 private:
  int order_;
  std::string slot_;
};

}  // namespace lepton::baselines
