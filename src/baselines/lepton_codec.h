// Adapts the Lepton public API to the comparison-codec interface so the
// Figure 1/2/3 benches treat it uniformly ("Lepton" and "Lepton 1-way").
#pragma once

#include "baselines/codec_iface.h"
#include "lepton/codec.h"

namespace lepton::baselines {

class LeptonCodecAdapter : public Codec {
 public:
  explicit LeptonCodecAdapter(bool one_way) : one_way_(one_way) {
    opts_.one_way = one_way;
  }
  std::string name() const override {
    return one_way_ ? "lepton-1way" : "lepton";
  }
  bool jpeg_aware() const override { return true; }
  CodecResult encode(std::span<const std::uint8_t> input) override {
    auto r = lepton::encode_jpeg(input, opts_);
    return {r.code, std::move(r.data)};
  }
  CodecResult decode(std::span<const std::uint8_t> input) override {
    DecodeOptions d;
    d.run_parallel = !one_way_;
    auto r = lepton::decode_lepton(input, d);
    return {r.code, std::move(r.data)};
  }

 private:
  bool one_way_;
  EncodeOptions opts_;
};

}  // namespace lepton::baselines
