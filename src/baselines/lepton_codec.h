// Adapts the Lepton public API to the comparison-codec interface so the
// Figure 1/2/3 benches treat it uniformly ("Lepton" and "Lepton 1-way").
// Drives the streaming sessions directly (session.h) — the same single
// codec path as every other entry point.
#pragma once

#include "baselines/codec_iface.h"
#include "lepton/codec.h"
#include "lepton/session.h"

namespace lepton::baselines {

class LeptonCodecAdapter : public Codec {
 public:
  explicit LeptonCodecAdapter(bool one_way) : one_way_(one_way) {
    opts_.one_way = one_way;
  }
  std::string name() const override {
    return one_way_ ? "lepton-1way" : "lepton";
  }
  bool jpeg_aware() const override { return true; }
  CodecResult encode(std::span<const std::uint8_t> input) override {
    VectorSink sink;
    EncodeSession session(opts_);
    session.feed(input);
    auto code = session.finish(sink);
    return {code, std::move(sink.data)};
  }
  CodecResult decode(std::span<const std::uint8_t> input) override {
    DecodeOptions d;
    d.run_parallel = !one_way_;
    VectorSink sink;
    DecodeSession session(sink, d);
    session.feed(input);
    auto code = session.finish();
    return {code, std::move(sink.data)};
  }

 private:
  bool one_way_;
  EncodeOptions opts_;
};

}  // namespace lepton::baselines
