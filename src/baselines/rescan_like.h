// JPEGrescan-class baseline (§2, Figure 1 "JPEGrescan (progressive)").
//
// jpegtran-family tools squeeze JPEGs without arithmetic coding by
// (a) rebuilding optimal per-file Huffman tables and (b) rewriting the scan
// in progressive spectral order, where end-of-band runs (EOBRUN) amortize
// the cost of trailing zeros across many blocks. This codec implements both
// mechanisms faithfully: spectral bands DC / AC[1,5] / AC[6,63], each with
// length-limited optimal Huffman tables built from a first counting pass,
// and T.81 §G-style EOBRUN coding in the AC bands. Decompression is fast
// (plain Huffman), compression modest — the lower-right point of Figure 1.
#pragma once

#include "baselines/codec_iface.h"

namespace lepton::baselines {

class RescanLikeCodec : public Codec {
 public:
  std::string name() const override { return "jpegrescan-like"; }
  bool jpeg_aware() const override { return true; }
  CodecResult encode(std::span<const std::uint8_t> input) override;
  CodecResult decode(std::span<const std::uint8_t> input) override;
};

}  // namespace lepton::baselines
