// Assembles the Figure 2 codec lineup. Slot names carry the paper's column
// they stand in for; DESIGN.md §5 documents each substitution.
#include "baselines/arith_jpeg.h"
#include "baselines/codec_iface.h"
#include "baselines/generic_codecs.h"
#include "baselines/lepton_codec.h"
#include "baselines/packjpg_like.h"
#include "baselines/rescan_like.h"

namespace lepton::baselines {

std::vector<std::unique_ptr<Codec>> make_comparison_codecs() {
  std::vector<std::unique_ptr<Codec>> v;
  v.push_back(std::make_unique<LeptonCodecAdapter>(/*one_way=*/false));
  v.push_back(std::make_unique<LeptonCodecAdapter>(/*one_way=*/true));
  v.push_back(std::make_unique<PackJpgLikeCodec>(/*paq_mode=*/false));
  v.push_back(std::make_unique<PackJpgLikeCodec>(/*paq_mode=*/true));
  v.push_back(std::make_unique<RescanLikeCodec>());
  v.push_back(std::make_unique<ArithJpegCodec>());
  v.push_back(std::make_unique<DeflateCodec>(9, "deflate-9 (brotli slot)"));
  v.push_back(std::make_unique<DeflateCodec>(6, "deflate"));
  v.push_back(std::make_unique<ByteArithCodec>(0, "byte-arith-o0 (lzham slot)"));
  v.push_back(std::make_unique<ByteArithCodec>(1, "byte-arith-o1 (lzma slot)"));
  v.push_back(std::make_unique<DeflateCodec>(1, "deflate-1 (zstd slot)"));
  return v;
}

}  // namespace lepton::baselines
