// Drives the probability model over the blocks of one thread segment.
//
// Written once, templated over coding::EncodeOps / coding::DecodeOps, so the
// encoder and decoder cannot drift (§5.2's determinism requirement). The
// codec streams: it holds exactly two block rows of context per component
// (the row being coded and the row above it), which is what keeps Lepton's
// decode working set fixed regardless of image height (§1 "Memory", §5.4).
//
// Block coding order within a block (§3.3/§A.2): the 7x7 interior count,
// the 7x7 values (zigzag), the 7x1 column edge, the 1x7 row edge, and the
// DC last — DC prediction gets to use every AC coefficient.
#pragma once

#include <cstdint>
#include <vector>

#include "coding/coder_ops.h"
#include "jpeg/dct.h"
#include "jpeg/jpeg_types.h"
#include "jpeg/parser.h"
#include "model/context_plane.h"
#include "model/model.h"
#include "model/predictors.h"
#include "util/tracked_memory.h"

namespace lepton::model {

// Zigzag-ordered natural indices of the 49 interior (7x7) coefficients.
struct Interior77 {
  std::array<std::uint8_t, kNum77> zigzag_order{};  // natural indices
  std::array<std::uint8_t, kNum77> raster_order{};
  Interior77() {
    int zi = 0, ri = 0;
    for (int k = 1; k < 64; ++k) {
      int nat = jpegfmt::kZigzag[k];
      if ((nat >> 3) != 0 && (nat & 7) != 0) {
        zigzag_order[zi++] = static_cast<std::uint8_t>(nat);
      }
    }
    for (int u = 1; u < 8; ++u) {
      for (int v = 1; v < 8; ++v) {
        raster_order[ri++] = static_cast<std::uint8_t>(u * 8 + v);
      }
    }
  }
};

inline const Interior77& interior77() {
  static const Interior77 t;
  return t;
}

// Read-prefetch `p` into all cache levels; no-op on compilers without the
// builtin. Used to pull the next block's context-ring rows in while the
// current block's serial bit chain is still resolving.
inline void prefetch_ro(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0, 3);
#else
  (void)p;
#endif
}

// Compressed-size attribution per block section (encode side only; byte
// granularity integrates accurately over many blocks). Feeds the Figure 4
// component-breakdown bench.
struct SectionTally {
  std::uint64_t bytes_77 = 0;    // non-zero count + 7x7 values
  std::uint64_t bytes_edge = 0;  // 7x1/1x7 counts + values
  std::uint64_t bytes_dc = 0;    // DC delta
};

// The two context block rows a SegmentCodec keeps per component. Owned
// externally (CodecContext worker scratch) so repeated codec runs reuse the
// grown-once ring allocations; SegmentCodec re-shapes it to the current
// frame geometry and invalidates every slot on construction.
struct SegmentRings {
  std::vector<std::array<util::tracked_vector<BlockState>, 2>> comps;
};

template <typename Ops>
class SegmentCodec {
 public:
  // `scratch` (optional) supplies reusable ring storage; when null the
  // codec owns its rings. Either way every slot starts invalid — a segment
  // boundary behaves like the top of the image.
  SegmentCodec(Ops ops, ProbabilityModel& pm, const jpegfmt::JpegFile& jf,
               const ModelOptions& opts, SegmentRings* scratch = nullptr)
      : ops_(ops),
        pm_(pm),
        jf_(jf),
        opts_(opts),
        rings_(scratch != nullptr ? scratch : &own_rings_) {
    const auto& fr = jf.frame;
    rings_->comps.resize(fr.comps.size());
    for (std::size_t c = 0; c < fr.comps.size(); ++c) {
      auto wb = static_cast<std::size_t>(fr.comps[c].width_blocks);
      for (auto& row : rings_->comps[c]) {
        row.resize(wb);
        for (auto& bs : row) bs.valid = false;  // clear reused slots
      }
    }
    // Fold the quantization table into the Lakhani basis rows once per
    // segment: the edge predictor then spends one multiply per term
    // instead of two, on a path that runs for every edge coefficient.
    if (opts_.lakhani_edges) {
      for (std::size_t c = 0; c < fr.comps.size(); ++c) {
        build_edge_tables(edge_tables_[c],
                          jf.qtables[fr.comps[c].quant_idx].q.data());
      }
    }
  }

  // Attaches encode-side context-plane scratch: subsequent code_mcu_row
  // calls on the encode instantiation run the staged pipeline (per-row
  // precompute, then a coder loop that only feeds the BoolEncoder) instead
  // of deriving context per block. Byte-streams are identical either way;
  // decode instantiations ignore it. Null detaches (reference path).
  void attach_plane(ContextPlane* plane) {
    plane_ = plane;
    if (plane_ != nullptr) plane_->reshape(jf_.frame);
  }

  // Maps this codec's local row indices onto source MCU rows: local row r
  // codes source row `origin + r * stride`. All context state — rings,
  // plane, "above" validity, the v_samp=2 ring quirk — is indexed by the
  // local row, so under a multi-lane map a lane's previous row (a stride
  // away in the image) is its context "above" row, exactly like a
  // narrower image. The identity map (0, 1) is the v2 single-lane
  // behaviour. The map is format-bearing on v3 streams: encoder and
  // decoder must agree on it per lane.
  void set_row_map(int origin, int stride) {
    row_origin_ = origin;
    row_stride_ = stride;
  }

  // Codes one MCU row (local index `my`; source row per the row map). On
  // encode, `source` supplies ground-truth blocks; on decode pass nullptr.
  // Decoded coefficients land in the ring and can be read back with
  // row_block() (local row index) until the next call for that parity.
  void code_mcu_row(int my, const jpegfmt::CoeffImage* source) {
    begin_row(my, source);
    for (int mx = 0; mx < jf_.frame.mcus_x; ++mx) code_row_mcu(mx);
    end_row();
  }

  // Stepping form of code_mcu_row, for the multi-lane driver: begin_row
  // latches the row (and on encode runs the context-plane precompute),
  // code_row_mcu codes one MCU column, end_row finishes row bookkeeping.
  // A LaneSet interleaves code_row_mcu across lanes column by column so
  // the CPU sees N independent coder chains in one instruction stream.
  void begin_row(int my, const jpegfmt::CoeffImage* source) {
    cur_my_ = my;
    cur_my_src_ = row_origin_ + my * row_stride_;
    cur_source_ = source;
    if constexpr (Ops::kEncoding) {
      cur_plane_row_ = plane_ != nullptr && source != nullptr;
      if (cur_plane_row_) {
        precompute_mcu_row(*plane_, jf_, *source, my, cur_my_src_,
                           cur_my_src_ - row_stride_, plane_row_coded_,
                           edge_tables_.data(), opts_,
                           jpegfmt::simd::context_kernels());
      }
    }
  }

  void code_row_mcu(int mx) {
    if constexpr (Ops::kEncoding) {
      if (cur_plane_row_) {
        code_row_mcu_plane(mx);
        return;
      }
    }
    const auto& fr = jf_.frame;
    for (int ci = 0; ci < fr.ncomp(); ++ci) {
      const auto& comp = fr.comps[ci];
      for (int sy = 0; sy < comp.v_samp; ++sy) {
        for (int sx = 0; sx < comp.h_samp; ++sx) {
          int bx = fr.ncomp() == 1 ? mx : mx * comp.h_samp + sx;
          int by = fr.ncomp() == 1 ? cur_my_ : cur_my_ * comp.v_samp + sy;
          int by_src =
              fr.ncomp() == 1 ? cur_my_src_ : cur_my_src_ * comp.v_samp + sy;
          code_block(ci, bx, by,
                     cur_source_ != nullptr
                         ? cur_source_->comps[ci].block(bx, by_src)
                         : nullptr);
        }
      }
    }
  }

  void end_row() {
    if constexpr (Ops::kEncoding) {
      if (cur_plane_row_) plane_row_coded_ = true;
    }
  }

  // Marks the start of a segment: the next row has no "above" context, as
  // if it were the top of the image (this independence is what costs a
  // little compression per extra thread, §3.4).
  void reset_above_context() {
    for (auto& ring : rings_->comps) {
      for (auto& row : ring) {
        for (auto& bs : row) bs.valid = false;
      }
    }
    plane_row_coded_ = false;
  }

  // Read back a decoded block from the ring (valid for the two most recent
  // block rows of the component).
  const std::int16_t* row_block(int ci, int bx, int by) const {
    return rings_->comps[ci][by & 1][static_cast<std::size_t>(bx)].coef.data();
  }

  // Attribute compressed bytes to block sections (encode side only).
  void set_tally(SectionTally* t) { tally_ = t; }

 private:
  void code_block(int ci, int bx, int by, const std::int16_t* truth) {
    const auto& comp = jf_.frame.comps[ci];
    const std::uint16_t* q = jf_.qtables[comp.quant_idx].q.data();
    KindModel& km = pm_.for_component(ci);

    auto& cur_row = rings_->comps[ci][by & 1];
    auto& prev_row = rings_->comps[ci][(by - 1) & 1];
    BlockState& bs = cur_row[static_cast<std::size_t>(bx)];
    // Pull the next block's context into cache while this block's serial
    // bit chain runs: its above neighbour (read-only) and the far end of
    // its ring slot. A BlockState is several lines; the two hottest are its
    // coefficient array (offset 0) and the pixel rows used by DC prediction.
    if (bx + 1 < static_cast<int>(cur_row.size())) {
      const BlockState* nxt_above = &prev_row[static_cast<std::size_t>(bx + 1)];
      prefetch_ro(nxt_above);
      prefetch_ro(reinterpret_cast<const std::uint8_t*>(nxt_above) + 128);
    }
    // Clear only what later reads depend on (ring slot reuse): the decode
    // side writes just the nonzero coefficients, so coef must start zeroed
    // (the encode side copies all 64 from truth); nz77/px_bottom/px_right/
    // valid are unconditionally overwritten below and in
    // finalize_block_pixels. A full BlockState{} assignment would memset
    // twice as many bytes once per block.
    if constexpr (!Ops::kEncoding) bs.coef.fill(0);
    bs.valid = false;

    Neighbors nb;
    if (by > 0 && prev_row[bx].valid) nb.above = &prev_row[bx];
    if (bx > 0 && cur_row[bx - 1].valid) nb.left = &cur_row[bx - 1];
    if (by > 0 && bx > 0 && prev_row[bx - 1].valid) {
      nb.above_left = &prev_row[bx - 1];
    }

    // Branch-free neighbour magnitude: absent neighbours read from a shared
    // all-zero block, so the per-coefficient accessor (called for every
    // 7x7 and edge coefficient) has no null checks. The Neighbors struct
    // keeps real nulls — Lakhani and the DC gradient must distinguish
    // "absent" from "zero".
    static const BlockState kZeroBlock{};
    const std::int16_t* mag_a =
        nb.above != nullptr ? nb.above->coef.data() : kZeroBlock.coef.data();
    const std::int16_t* mag_l =
        nb.left != nullptr ? nb.left->coef.data() : kZeroBlock.coef.data();
    const std::int16_t* mag_al = nb.above_left != nullptr
                                     ? nb.above_left->coef.data()
                                     : kZeroBlock.coef.data();
    auto wmag = [mag_a, mag_l, mag_al](int nat) -> std::uint32_t {
      int a = mag_a[nat] < 0 ? -mag_a[nat] : mag_a[nat];
      int l = mag_l[nat] < 0 ? -mag_l[nat] : mag_l[nat];
      int al = mag_al[nat] < 0 ? -mag_al[nat] : mag_al[nat];
      return static_cast<std::uint32_t>(13 * a + 13 * l + 6 * al) / 32u;
    };

    std::int16_t* blk = bs.coef.data();
    if constexpr (Ops::kEncoding) {
      for (int i = 0; i < 64; ++i) blk[i] = truth[i];
    }

    const auto& order =
        opts_.zigzag_77 ? interior77().zigzag_order : interior77().raster_order;

    auto coded_bytes = [this]() -> std::uint64_t {
      if constexpr (Ops::kEncoding) {
        return ops_.enc->bytes_so_far();
      } else {
        return 0;
      }
    };
    std::uint64_t mark = coded_bytes();

    // ---- (1) number of non-zero 7x7 coefficients (§A.2.1) ----
    int nz_truth = 0;
    if constexpr (Ops::kEncoding) {
      for (int i = 0; i < kNum77; ++i) nz_truth += blk[order[i]] != 0;
    }
    int na = nb.above != nullptr ? nb.above->nz77 : 0;
    int nl = nb.left != nullptr ? nb.left->nz77 : 0;
    int nz_ctx = nz_count_bucket((na + nl) / 2);
    int nz = static_cast<int>(coding::code_tree(
        ops_, km.nz77.at(nz_ctx).row(), 6, static_cast<std::uint32_t>(nz_truth)));
    if (nz > kNum77) nz = kNum77;  // 6 bits can express up to 63
    bs.nz77 = static_cast<std::uint8_t>(nz);

    // ---- (2) 7x7 interior values, most-active first (zigzag) ----
    int remaining = nz;
    for (int i = 0; i < kNum77 && remaining > 0; ++i) {
      int nat = order[i];
      int avg_b = magnitude_bucket(wmag(nat));
      int rem_b = nz_count_bucket(remaining);
      Coef77Bins& cb = km.c77.at(i).at(avg_b);
      std::int32_t v =
          coding::code_value(ops_, cb.exp_row(rem_b), &cb.sign, cb.res.data(),
                             kAcMaxBits, Ops::kEncoding ? blk[nat] : 0);
      if constexpr (!Ops::kEncoding) {
        blk[nat] = static_cast<std::int16_t>(v);
      }
      if (v != 0) --remaining;
    }

    if (tally_ != nullptr) {
      std::uint64_t now = coded_bytes();
      tally_->bytes_77 += now - mark;
      mark = now;
    }

    // ---- (3) edges: 7x1 column (left-predicted), 1x7 row (above-) ----
    code_edge(km, nb, blk, q, wmag, ci, /*orientation=*/0, nz);
    code_edge(km, nb, blk, q, wmag, ci, /*orientation=*/1, nz);

    if (tally_ != nullptr) {
      std::uint64_t now = coded_bytes();
      tally_->bytes_edge += now - mark;
      mark = now;
    }

    // ---- (4) DC, last (§A.2.3) ----
    std::int32_t px_ac[64];
    DcPrediction pred;
    if (opts_.dc_gradient) {
      ac_only_pixels(blk, q, px_ac);
      pred = predict_dc_gradient(nb, px_ac, q);
    } else {
      pred = predict_dc_simple(nb, q);
    }
    if (pred.predicted_dc > 2047) pred.predicted_dc = 2047;
    if (pred.predicted_dc < -2048) pred.predicted_dc = -2048;
    int conf = confidence_bucket(pred.spread);
    ValueBins<kDcDeltaBits>& db = km.dc.at(conf);
    std::int32_t delta = coding::code_value(
        ops_, db.exp.data(), &db.sign, db.res.data(), kDcDeltaBits,
        Ops::kEncoding ? blk[0] - pred.predicted_dc : 0);
    if constexpr (!Ops::kEncoding) {
      std::int32_t dc = pred.predicted_dc + delta;
      if (dc > 2047) dc = 2047;
      if (dc < -2048) dc = -2048;
      blk[0] = static_cast<std::int16_t>(dc);
    }

    if (tally_ != nullptr) tally_->bytes_dc += coded_bytes() - mark;

    // ---- (5) finalize ring state for the blocks to our right/below ----
    if (!opts_.dc_gradient) ac_only_pixels(blk, q, px_ac);
    finalize_block_pixels(bs, px_ac, q);
  }

  template <typename WMag>
  void code_edge(KindModel& km, const Neighbors& nb, std::int16_t* blk,
                 const std::uint16_t* q, const WMag& wmag, int ci,
                 int orientation, int nz77v) {
    // orientation 0: F[u][0], predicted from the left block;
    // orientation 1: F[0][v], predicted from the above block.
    const BlockState* neighbor = orientation == 0 ? nb.left : nb.above;

    int count_truth = 0;
    if constexpr (Ops::kEncoding) {
      for (int i = 1; i < 8; ++i) {
        count_truth += blk[orientation == 0 ? i * 8 : i] != 0;
      }
    }
    int ctx = nz_count_bucket(nz77v);
    if (ctx > 7) ctx = 7;
    int count = static_cast<int>(coding::code_tree(
        ops_, km.edge_nz.at(orientation).at(ctx).row(), 3,
        static_cast<std::uint32_t>(count_truth)));

    int remaining = count;
    for (int i = 1; i < 8 && remaining > 0; ++i) {
      int nat = orientation == 0 ? i * 8 : i;
      int pb;
      if (opts_.lakhani_edges) {
        pb = lakhani_pred_bucket(
            edge_tables_[static_cast<std::size_t>(ci)], orientation, i, blk,
            neighbor != nullptr ? neighbor->coef.data() : nullptr, q);
      } else {
        std::int32_t predicted = avg_neighbor_value(nb, nat);
        if (predicted > 1023) predicted = 1023;
        if (predicted < -1023) predicted = -1023;
        pb = signed_pred_bucket(predicted);
      }
      int mb = magnitude_bucket(wmag(nat));
      if (mb > 3) mb = 3;
      EdgeBins& eb = km.edge.at(orientation).at(i - 1).at(pb);
      std::int32_t v =
          coding::code_value(ops_, eb.exp_row(mb), &eb.sign, eb.res_row(mb),
                             kAcMaxBits, Ops::kEncoding ? blk[nat] : 0);
      if constexpr (!Ops::kEncoding) {
        blk[nat] = static_cast<std::int16_t>(v);
      }
      if (v != 0) --remaining;
    }
  }

  // ---- encode-side context-plane pipeline ----------------------------------
  //
  // Stage 2+3 of the staged encode (stage 1 is the fused-refill scan
  // parse): precompute_block_row resolves every bucket a block's coding
  // needs from ground truth (SIMD kernels for the bulk work), then
  // code_block_plane feeds the BoolEncoder with zero context derivation on
  // the serial chain. Bit-identical to code_block by construction — every
  // plane field replicates the reference derivation on the same inputs
  // (encode ring state equals truth), which the fuzz tests pin down.

  // One MCU column of the coder loop, exact MCU interleaving order (chroma
  // components share adaptive state, so the order is part of the format).
  // The row's context was resolved by precompute_mcu_row in begin_row; this
  // only feeds the BoolEncoder.
  void code_row_mcu_plane(int mx) {
    const auto& fr = jf_.frame;
    for (int ci = 0; ci < fr.ncomp(); ++ci) {
      const auto& comp = fr.comps[ci];
      ComponentPlane& cp = plane_->comps[static_cast<std::size_t>(ci)];
      const auto& cc = cur_source_->comps[static_cast<std::size_t>(ci)];
      for (int sy = 0; sy < comp.v_samp; ++sy) {
        for (int sx = 0; sx < comp.h_samp; ++sx) {
          int bx = fr.ncomp() == 1 ? mx : mx * comp.h_samp + sx;
          int by_src =
              fr.ncomp() == 1 ? cur_my_src_ : cur_my_src_ * comp.v_samp + sy;
          std::size_t slot = static_cast<std::size_t>(sy) * cc.width_blocks +
                             static_cast<std::size_t>(bx);
          code_block_plane(ci, cp.ctx[slot], cp.mag.data() + slot * 64,
                           cc.block(bx, by_src));
        }
      }
    }
  }

  void code_block_plane(int ci, const BlockCtx& bc, const std::uint8_t* mag,
                        const std::int16_t* truth) {
    static_assert(Ops::kEncoding, "plane path is encode-only");
    KindModel& km = pm_.for_component(ci);
    const auto& order =
        opts_.zigzag_77 ? interior77().zigzag_order : interior77().raster_order;

    std::uint64_t mark = tally_ != nullptr ? ops_.enc->bytes_so_far() : 0;

    // ---- (1) number of non-zero 7x7 coefficients (§A.2.1) ----
    coding::code_tree(ops_, km.nz77.at(bc.nz_ctx).row(), 6, bc.nz77);

    // ---- (2) 7x7 interior values, most-active first ----
    int remaining = bc.nz77;
    for (int i = 0; i < kNum77 && remaining > 0; ++i) {
      int nat = order[i];
      Coef77Bins& cb = km.c77.at(i).at(mag[nat]);
      coding::code_value(ops_, cb.exp_row(nz_count_bucket(remaining)),
                         &cb.sign, cb.res.data(), kAcMaxBits, truth[nat]);
      remaining -= truth[nat] != 0;
    }

    if (tally_ != nullptr) {
      std::uint64_t now = ops_.enc->bytes_so_far();
      tally_->bytes_77 += now - mark;
      mark = now;
    }

    // ---- (3) edges: 7x1 column, 1x7 row ----
    for (int orientation = 0; orientation < 2; ++orientation) {
      coding::code_tree(ops_, km.edge_nz.at(orientation).at(bc.edge_ctx).row(),
                        3, bc.edge_count[orientation]);
      int rem = bc.edge_count[orientation];
      for (int i = 1; i < 8 && rem > 0; ++i) {
        int nat = orientation == 0 ? i * 8 : i;
        int mb = mag[nat];
        if (mb > 3) mb = 3;
        EdgeBins& eb =
            km.edge.at(orientation).at(i - 1).at(bc.pb[orientation][i]);
        coding::code_value(ops_, eb.exp_row(mb), &eb.sign, eb.res_row(mb),
                           kAcMaxBits, truth[nat]);
        rem -= truth[nat] != 0;
      }
    }

    if (tally_ != nullptr) {
      std::uint64_t now = ops_.enc->bytes_so_far();
      tally_->bytes_edge += now - mark;
      mark = now;
    }

    // ---- (4) DC, last (§A.2.3) ----
    ValueBins<kDcDeltaBits>& db = km.dc.at(bc.dc_conf);
    coding::code_value(ops_, db.exp.data(), &db.sign, db.res.data(),
                       kDcDeltaBits, truth[0] - bc.dc_pred);

    if (tally_ != nullptr) tally_->bytes_dc += ops_.enc->bytes_so_far() - mark;
  }

  Ops ops_;
  ProbabilityModel& pm_;
  const jpegfmt::JpegFile& jf_;
  ModelOptions opts_;
  std::array<EdgeTables, 4> edge_tables_{};
  SectionTally* tally_ = nullptr;
  // Two block rows of context per component, indexed by (by & 1). Points at
  // caller-provided scratch when available, at own_rings_ otherwise.
  SegmentRings own_rings_;
  SegmentRings* rings_;
  // Encode-side context plane (null = reference per-block path) and
  // whether any MCU row was coded since construction/reset (the first
  // row's blocks have no "above" context).
  ContextPlane* plane_ = nullptr;
  bool plane_row_coded_ = false;
  // Lane row map (set_row_map): local row r codes source MCU row
  // row_origin_ + r * row_stride_. Identity for v2 single-lane segments.
  int row_origin_ = 0;
  int row_stride_ = 1;
  // Row latched by begin_row: local index, mapped source row, truth
  // source, and whether this row runs the plane path.
  int cur_my_ = 0;
  int cur_my_src_ = 0;
  const jpegfmt::CoeffImage* cur_source_ = nullptr;
  bool cur_plane_row_ = false;
};

}  // namespace lepton::model
