// Coefficient predictors (§3.3, §A.2).
//
// Three predictor families, all computed identically on the encode and
// decode side from already-coded data:
//  * 7x7: weighted neighbour average  F̄ = (13·FA + 13·FL + 6·FAL) / 32,
//  * 7x1/1x7 edges: Lakhani's DCT-domain continuity solve — an entire
//    neighbour row/column of coefficients predicts each edge coefficient,
//  * DC: pixel-gradient extrapolation from the two adjacent rows/columns of
//    neighbouring blocks, with a confidence measure (max − min prediction).
//
// All arithmetic is integer (Q20 basis tables, int64 accumulation) so the
// model is bit-deterministic — the deployment property §5.2 is built on.
#pragma once

#include <array>
#include <cstdint>

#include "jpeg/jpeg_types.h"

namespace lepton::model {

// Fully decoded state of a neighbouring block, kept in the codec's row ring.
struct BlockState {
  std::array<std::int16_t, 64> coef{};   // natural order, quantized
  std::uint8_t nz77 = 0;                 // non-zero count in the 7x7 interior
  // Final pixels (8x-scaled, no +128 shift) adjacent to later blocks:
  std::array<std::int32_t, 16> px_bottom{};  // rows 6,7: [row-6][x] flattened
  std::array<std::int32_t, 16> px_right{};   // cols 6,7: [y][col-6] flattened
  bool valid = false;
};

// Neighbourhood view for one block being coded.
struct Neighbors {
  const BlockState* above = nullptr;
  const BlockState* left = nullptr;
  const BlockState* above_left = nullptr;
};

// Weighted average magnitude of the neighbours' coefficient at natural
// index `nat`: (13|A| + 13|L| + 6|AL|) / 32 (§A.2.1). Missing neighbours
// contribute zero.
std::uint32_t avg_neighbor_magnitude(const Neighbors& nb, int nat);

// Signed weighted average of the neighbours' coefficient values (fallback
// edge predictor when the Lakhani path is ablated).
std::int32_t avg_neighbor_value(const Neighbors& nb, int nat);

// Raw-pointer core of avg_neighbor_value (null = absent neighbour,
// contributes zero; truncating division). The BlockState overload and the
// encode-side context plane both call this, so the two paths cannot
// drift.
inline std::int32_t avg_neighbor_value_at(const std::int16_t* above,
                                          const std::int16_t* left,
                                          const std::int16_t* above_left,
                                          int nat) {
  std::int32_t sum = 0;
  if (above != nullptr) sum += 13 * above[nat];
  if (left != nullptr) sum += 13 * left[nat];
  if (above_left != nullptr) sum += 6 * above_left[nat];
  return sum / 32;
}

// Lakhani edge prediction (§A.2.2). Predicts the quantized value of an edge
// coefficient from the adjacent block's full coefficient row/column plus the
// current block's already-coded 7x7 interior.
//   orientation 0: F[u][0] (7x1 column), u in 1..7, predicted from `left`
//   orientation 1: F[0][v] (1x7 row),    v in 1..7, predicted from `above`
// `cur` holds the current block's coefficients coded so far (7x7 interior
// complete). Returns 0 when the required neighbour is absent.
std::int32_t lakhani_edge_prediction(int orientation, int index,
                                     const std::int16_t* cur,
                                     const BlockState* neighbor,
                                     const std::uint16_t* q);

// DC prediction (§A.2.3).
struct DcPrediction {
  std::int32_t predicted_dc = 0;   // quantized DC prediction
  std::uint32_t spread = 0;        // max−min of the 16 estimates, /q00
};

// Gradient predictor: interpolates pixel gradients across the block seam
// using the neighbours' last two pixel rows/columns and the current block's
// AC-only pixels (8x-scaled IDCT with DC=0, passed as `px_ac`).
DcPrediction predict_dc_gradient(const Neighbors& nb,
                                 const std::int32_t* px_ac,
                                 const std::uint16_t* q);

// Same predictor over raw pixel-edge pointers (null = absent neighbour):
// `above_bottom` is the above block's px_bottom layout, `left_right` the
// left block's px_right layout. The BlockState overload above delegates
// here; the encode-side context plane calls it with its own rolling pixel
// rows. One implementation, so the two paths cannot drift.
DcPrediction predict_dc_gradient_edges(const std::int32_t* above_bottom,
                                       const std::int32_t* left_right,
                                       const std::int32_t* px_ac,
                                       const std::uint16_t* q);

// First-cut / ablation predictor: neighbour DC average ("baseline PackJPG"
// behaviour per §4.3).
DcPrediction predict_dc_simple(const Neighbors& nb, const std::uint16_t* q);

// Raw-value form of the simple predictor (null = absent neighbour).
DcPrediction predict_dc_simple_vals(const std::int16_t* above_dc,
                                    const std::int16_t* left_dc);

// Computes the 8x-scaled AC-only pixels of a block (DC forced to zero).
void ac_only_pixels(const std::int16_t* coef, const std::uint16_t* q,
                    std::int32_t px_out[64]);

// Fills BlockState.px_bottom / px_right from AC-only pixels + the final DC.
void finalize_block_pixels(BlockState& bs, const std::int32_t* px_ac,
                           const std::uint16_t* q);

}  // namespace lepton::model
