// Encode-side context plane (the staged encode pipeline's middle stage).
//
// On encode every model context is a pure function of ground-truth
// coefficients — the ring state the decoder must reconstruct serially is
// already known. This module precomputes, for a whole block row at a time,
// everything the adaptive-coder loop consults per block: the 7x7 nonzero
// count and its tree bucket, the edge nonzero counts, the weighted
// neighbour-magnitude bucket of all 64 coefficients (SIMD, scan_simd.h
// kernels), the Lakhani (or averaged-neighbour) edge prediction buckets,
// and the DC prediction + confidence bucket. The serial loop then does
// nothing but feed the BoolEncoder (model/block_codec.h).
//
// Bit-exactness contract: every field equals what the per-block reference
// path derives from its context rings — the plane path and the reference
// path produce byte-identical streams (fuzzed in tests/context_plane_test).
// Storage is owned by CodecContext worker scratch and re-shaped per
// segment: no steady-state allocation.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "jpeg/dct.h"
#include "jpeg/jpeg_types.h"
#include "jpeg/parser.h"
#include "jpeg/scan_simd.h"
#include "model/model.h"
#include "model/predictors.h"
#include "util/tracked_memory.h"

namespace lepton::model {

// Per-component Lakhani basis with the quantization step folded in
// ([row] tables index [u][v], [col] tables [v][u]).
//
// (An AVX2 vpmuldq version of the edge dot products was tried and measured
// a net loss here — the per-call int16→int64 widening and horizontal
// reduction cost more than the ~15 scalar multiplies they replace, which
// GCC already schedules well. The folded tables keep the scalar loop at
// one multiply per term; see DESIGN.md "what didn't pay".)
struct EdgeTables {
  std::int64_t bq7_row[8][8];
  std::int64_t bq0_row[8][8];
  std::int64_t bq7_col[8][8];
  std::int64_t bq0_col[8][8];
};

// Folds the quantization table into the Lakhani basis rows once per
// segment: the edge predictor then spends one multiply per term instead of
// two, on a path that runs for every edge coefficient.
inline void build_edge_tables(EdgeTables& t, const std::uint16_t* q) {
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      t.bq7_row[u][v] = jpegfmt::dct_basis_q20(7, v) * q[u * 8 + v];
      t.bq0_row[u][v] = jpegfmt::dct_basis_q20(0, v) * q[u * 8 + v];
      t.bq7_col[v][u] = jpegfmt::dct_basis_q20(7, u) * q[u * 8 + v];
      t.bq0_col[v][u] = jpegfmt::dct_basis_q20(0, u) * q[u * 8 + v];
    }
  }
}

// Requantize a Lakhani numerator and bucket it: m = bit length of
// |pred| / q (truncating), clamped to 8 — the magnitude half of
// signed_pred_bucket without materializing the quotient's sign walk.
// bit_width(a / qq) is exactly the shift-walk count the reference used
// (a >= qq<<k  ⟺  floor(a/qq) >= 2^k); the fuzz tests pin the identity.
inline int lakhani_num_bucket(std::int64_t num, std::uint32_t qq) {
  std::int64_t pred_dq = num / jpegfmt::dct_basis_q20(0, 0);
  std::uint64_t a = pred_dq < 0 ? static_cast<std::uint64_t>(-pred_dq)
                                : static_cast<std::uint64_t>(pred_dq);
  if (qq == 0) qq = 1;
  int m = std::bit_width(a / qq);
  if (m > 8) m = 8;
  return pred_dq < 0 ? 8 - m : 8 + m;
}

// Fast Lakhani path: same continuity solve as
// model::lakhani_edge_prediction, but with the quantization table folded
// into the basis rows (one multiply per term) and the final requantization
// division replaced by the bucket mapping above — the prediction is only
// ever consumed as a bucket. Differs from the reference at round-to-nearest
// boundaries only; encode and decode share it, so symmetry holds.
// `neighbor` is the adjacent block's 64 coefficients (natural order), null
// when absent (predict 0 → bucket 8).
inline int lakhani_pred_bucket(const EdgeTables& t, int orientation, int index,
                               const std::int16_t* cur,
                               const std::int16_t* neighbor,
                               const std::uint16_t* q) {
  if (neighbor == nullptr) return 8;  // no context: predict 0
  std::int64_t num = 0;
  std::uint32_t qq;
  if (orientation == 0) {
    const int u = index;
    for (int v = 0; v < 8; ++v) {
      num += t.bq7_row[u][v] * neighbor[u * 8 + v];
    }
    for (int v = 1; v < 8; ++v) {
      num -= t.bq0_row[u][v] * cur[u * 8 + v];
    }
    qq = q[u * 8];
  } else {
    const int v = index;
    for (int u = 0; u < 8; ++u) {
      num += t.bq7_col[v][u] * neighbor[u * 8 + v];
    }
    for (int u = 1; u < 8; ++u) {
      num -= t.bq0_col[v][u] * cur[u * 8 + v];
    }
    qq = q[v];
  }
  return lakhani_num_bucket(num, qq);
}

// Every bucket and count the serial coder loop consults for one block,
// fully resolved by the precompute stage. Magnitude buckets live in a
// separate row plane (ComponentPlane::mag) written by the bulk kernel pass.
struct BlockCtx {
  std::int16_t dc_pred;          // clamped DC prediction
  std::uint8_t nz77;             // truth nonzero count, 7x7 interior
  std::uint8_t nz_ctx;           // bucket for the 6-bit count tree
  std::uint8_t edge_ctx;         // nz77 bucket for the 3-bit edge trees
  std::uint8_t dc_conf;          // DC confidence bucket
  std::uint8_t edge_count[2];    // truth nonzero counts, 7x1 / 1x7
  std::uint8_t pb[2][8];         // edge prediction bucket, [orientation][1..7]
};

// Final pixels (8x-scaled) adjacent to later blocks, the DC-gradient
// context — same layout as BlockState's px_bottom/px_right.
struct PlanePx {
  std::array<std::int32_t, 16> bottom;  // rows 6,7: [row-6][x] flattened
  std::array<std::int32_t, 16> right;   // cols 6,7: [y][col-6] flattened
};

// Rolling per-component precompute state. The |coefficient| rows keep a
// *three*-deep ring (indexed by `by % 3`): computing an even row's
// magnitude buckets under the above-left quirk needs rows by-1, by and
// by+1 live at once. Counts and edge pixels roll two rows (`by & 1`),
// exactly like the codec's context rings. The magnitude-bucket and
// BlockCtx rows for the MCU row currently being coded are plane-laid-out
// per sub-row.
struct ComponentPlane {
  util::tracked_vector<std::uint16_t> abs[3];  // width_blocks * 64
  std::vector<std::uint8_t> nz[2];             // width_blocks
  util::tracked_vector<PlanePx> px[2];         // width_blocks
  util::tracked_vector<std::uint8_t> mag;      // v_samp rows * wb * 64
  std::vector<std::uint64_t> nzm;              // v_samp rows * wb masks
  std::vector<BlockCtx> ctx;                   // v_samp rows: [sy*wb + bx]
};

struct ContextPlane {
  std::vector<ComponentPlane> comps;

  // Re-shapes to the frame geometry, growing each buffer at most once per
  // context lifetime (vectors keep capacity across segments/files).
  void reshape(const jpegfmt::FrameInfo& fr) {
    comps.resize(fr.comps.size());
    for (std::size_t c = 0; c < fr.comps.size(); ++c) {
      auto wb = static_cast<std::size_t>(fr.comps[c].width_blocks);
      auto rows = static_cast<std::size_t>(fr.comps[c].v_samp);
      ComponentPlane& cp = comps[c];
      for (int r = 0; r < 3; ++r) cp.abs[r].resize(wb * 64);
      for (int r = 0; r < 2; ++r) {
        cp.nz[r].resize(wb);
        cp.px[r].resize(wb);
      }
      cp.mag.resize(rows * wb * 64);
      cp.nzm.resize(rows * wb);
      cp.ctx.resize(rows * wb);
    }
  }
};

namespace detail {

// Shared all-zero magnitude row for absent neighbours: the kernel then has
// no validity branches per lane (same trick as the reference path's
// kZeroBlock).
alignas(32) inline constexpr std::uint16_t kZeroAbs[64] = {};

}  // namespace detail

// ---- Precompute stages ------------------------------------------------------
//
// Stage A (plane_abs_row): |coefficients| + per-block nonzero masks for one
// whole block row, one streaming kernel call (the CoeffImage stores a block
// row contiguously). Stage B (plane_context_row): bulk magnitude-bucket
// pass over the row's parallel (above, left, above-left) magnitude streams,
// per-block fix-ups only where a neighbour is absent or the ring quirk
// applies, then the per-block scalar tail (count buckets, gated Lakhani,
// DC prediction, rolling pixels).
//
// The above-left quirk: the reference path's two-row context ring is
// shared with the MCU interleave, so with v_samp == 2 block (bx-1, by+1)
// is coded *before* (bx, by) whenever bx % h_samp == 0 — by coding time
// the ring's above-left slot already holds the BELOW-left block. Encoder
// and decoder share the ring, so this is part of the byte stream; the
// plane reproduces it exactly (see DESIGN.md). It is why the abs ring is
// three-deep: an even row's bucket pass touches rows by-1, by and by+1.
//
// Header-inline on purpose: this is the encode pipeline's bulk stage, and
// inlining it into the instantiating TU keeps it fused with the coder loop
// (a cold out-of-line copy measured ~50% slower purely from code
// placement on the dev box).

// Stage A: fills cp.abs[by_ctx % 3] and the `nzm_row` masks (one uint64
// per block, natural-order bit per nonzero coefficient) from source block
// row `by_src`. `by_ctx` is the context-plane row index — identical to
// `by_src` for a contiguous segment, the lane-local row index when the
// codec runs as one of N interleaved lanes (block_codec.h set_row_map).
inline void plane_abs_row(ComponentPlane& cp, std::uint64_t* nzm_row,
                          const jpegfmt::ComponentCoeffs& cc, int by_ctx,
                          int by_src,
                          const jpegfmt::simd::ContextKernels& kernels) {
  kernels.abs_nz_row(cc.block(0, by_src), cc.width_blocks,
                     cp.abs[static_cast<std::size_t>(by_ctx % 3)].data(),
                     nzm_row);
}

// Stage B for context row `by_ctx` (source block row `by_src`; the two
// differ only under the multi-lane row map, where `by_ctx` counts the
// lane's own rows consecutively). Requires stage A for `by_ctx`, for
// `by_ctx - 1` when `above_valid`, and for `by_ctx + 1` when the quirk
// rows apply (v_samp == 2, even `by_ctx` > 0). `above_valid` says whether
// the context row above was coded in this segment/lane (starts behave like
// the top of the image); `by_above_src` is that row's source block row
// (`by_src - 1` contiguously, the lane's previous row otherwise). Writes
// `out_row`/`mag_row` and the row's rolling state.
inline void plane_context_row(ComponentPlane& cp, BlockCtx* out_row,
                              std::uint8_t* mag_row,
                              const std::uint64_t* nzm_row,
                              const jpegfmt::ComponentCoeffs& cc, int by_ctx,
                              int by_src, int by_above_src, bool above_valid,
                              int h_samp, int v_samp, const EdgeTables& et,
                              const std::uint16_t* q, const ModelOptions& opts,
                              const jpegfmt::simd::ContextKernels& kernels) {
  namespace simd = jpegfmt::simd;
  const int wb = cc.width_blocks;
  const std::uint16_t* abs_cur =
      cp.abs[static_cast<std::size_t>(by_ctx % 3)].data();
  const std::uint16_t* abs_prev =
      cp.abs[static_cast<std::size_t>((by_ctx + 2) % 3)].data();
  const std::uint16_t* abs_next =
      cp.abs[static_cast<std::size_t>((by_ctx + 1) % 3)].data();
  std::uint8_t* nz_cur = cp.nz[by_ctx & 1].data();
  const std::uint8_t* nz_prev = cp.nz[(by_ctx - 1) & 1].data();
  PlanePx* px_cur = cp.px[by_ctx & 1].data();
  const PlanePx* px_prev = cp.px[(by_ctx - 1) & 1].data();

  // ---- bulk magnitude-bucket pass + fix-up lanes ----
  const bool quirk_row = v_samp == 2 && (by_ctx & 1) == 0 && by_ctx > 0;
  if (above_valid) {
    // Blocks 1..wb-1 as three parallel streams (above / left / above-left
    // are the same plane shifted by one row and/or one block). For
    // h_samp == 1 quirk rows, every block's above-left is the below-left —
    // one stream swap handles the whole row.
    const std::uint16_t* al_stream =
        quirk_row && h_samp == 1 ? abs_next : abs_prev;
    kernels.mag_buckets_row(abs_prev + 64, abs_cur, al_stream, mag_row + 64,
                            static_cast<std::size_t>(wb - 1) * 64);
    kernels.mag_buckets(abs_prev, detail::kZeroAbs, detail::kZeroAbs, mag_row);
    if (quirk_row && h_samp == 2) {
      // Every even-bx block's above-left is the below-left block.
      for (int bx = 2; bx < wb; bx += 2) {
        kernels.mag_buckets(abs_prev + static_cast<std::size_t>(bx) * 64,
                            abs_cur + static_cast<std::size_t>(bx - 1) * 64,
                            abs_next + static_cast<std::size_t>(bx - 1) * 64,
                            mag_row + static_cast<std::size_t>(bx) * 64);
      }
    }
  } else {
    // First row of a segment: no above context anywhere; the quirk
    // below-left is still live when the row is not the top of the image.
    kernels.mag_buckets(detail::kZeroAbs, detail::kZeroAbs, detail::kZeroAbs,
                        mag_row);
    for (int bx = 1; bx < wb; ++bx) {
      const std::uint16_t* al =
          quirk_row && bx % h_samp == 0
              ? abs_next + static_cast<std::size_t>(bx - 1) * 64
              : detail::kZeroAbs;
      kernels.mag_buckets(detail::kZeroAbs,
                          abs_cur + static_cast<std::size_t>(bx - 1) * 64, al,
                          mag_row + static_cast<std::size_t>(bx) * 64);
    }
  }

  // ---- per-block scalar tail ----
  for (int bx = 0; bx < wb; ++bx) {
    const std::int16_t* truth = cc.block(bx, by_src);
    BlockCtx& bc = out_row[bx];
    const bool left_valid = bx > 0;
    const bool al_valid = above_valid && left_valid;
    const std::uint64_t nzmask = nzm_row[bx];

    int nz77 = std::popcount(nzmask & simd::kInteriorMask);
    bc.nz77 = static_cast<std::uint8_t>(nz77);
    bc.edge_count[0] =
        static_cast<std::uint8_t>(std::popcount(nzmask & simd::kColEdgeMask));
    bc.edge_count[1] =
        static_cast<std::uint8_t>(std::popcount(nzmask & simd::kRowEdgeMask));
    nz_cur[bx] = bc.nz77;

    int na = above_valid ? nz_prev[bx] : 0;
    int nl = left_valid ? nz_cur[bx - 1] : 0;
    bc.nz_ctx = static_cast<std::uint8_t>(nz_count_bucket((na + nl) / 2));
    int ec = nz_count_bucket(nz77);
    bc.edge_ctx = static_cast<std::uint8_t>(ec > 7 ? 7 : ec);

    // ---- edge prediction buckets ----
    //
    // The coder loop consumes pb[or][i] only for i = 1..(last nonzero edge
    // position) — it stops the moment the coded nonzero count is
    // exhausted. Computing exactly that prefix keeps the plane's Lakhani
    // work equal to the reference path's (sparse blocks: zero dot
    // products).
    std::uint64_t colbits = nzmask & simd::kColEdgeMask;
    std::uint64_t rowbits = nzmask & simd::kRowEdgeMask;
    int last_i[2];
    last_i[0] = colbits != 0 ? (63 - std::countl_zero(colbits)) / 8 : 0;
    last_i[1] = rowbits != 0 ? 63 - std::countl_zero(rowbits) : 0;
    const std::int16_t* above_truth =
        above_valid ? cc.block(bx, by_above_src) : nullptr;
    const std::int16_t* left_truth =
        left_valid ? cc.block(bx - 1, by_src) : nullptr;
    if (opts.lakhani_edges) {
      for (int i = 1; i <= last_i[0]; ++i) {
        bc.pb[0][i] = static_cast<std::uint8_t>(
            lakhani_pred_bucket(et, 0, i, truth, left_truth, q));
      }
      for (int i = 1; i <= last_i[1]; ++i) {
        bc.pb[1][i] = static_cast<std::uint8_t>(
            lakhani_pred_bucket(et, 1, i, truth, above_truth, q));
      }
    } else {
      const bool al_quirk = quirk_row && left_valid && bx % h_samp == 0;
      // The quirk's below-left block is the other sub-row of the same MCU
      // row (by_ctx even ⇒ by_src even), so `by_src + 1` is always the
      // right source row regardless of the lane stride.
      const std::int16_t* al_truth =
          al_quirk ? cc.block(bx - 1, by_src + 1)
                   : (al_valid ? cc.block(bx - 1, by_above_src) : nullptr);
      for (int orientation = 0; orientation < 2; ++orientation) {
        for (int i = 1; i <= last_i[orientation]; ++i) {
          int nat = orientation == 0 ? i * 8 : i;
          std::int32_t predicted =
              avg_neighbor_value_at(above_truth, left_truth, al_truth, nat);
          if (predicted > 1023) predicted = 1023;
          if (predicted < -1023) predicted = -1023;
          bc.pb[orientation][i] =
              static_cast<std::uint8_t>(signed_pred_bucket(predicted));
        }
      }
    }

    // ---- DC prediction + rolling pixel edges ----
    std::int32_t px_ac[64];
    ac_only_pixels(truth, q, px_ac);
    DcPrediction pred;
    if (opts.dc_gradient) {
      pred = predict_dc_gradient_edges(
          above_valid ? px_prev[bx].bottom.data() : nullptr,
          left_valid ? px_cur[bx - 1].right.data() : nullptr, px_ac, q);
    } else {
      pred = predict_dc_simple_vals(above_truth, left_truth);
    }
    if (pred.predicted_dc > 2047) pred.predicted_dc = 2047;
    if (pred.predicted_dc < -2048) pred.predicted_dc = -2048;
    bc.dc_pred = static_cast<std::int16_t>(pred.predicted_dc);
    bc.dc_conf = static_cast<std::uint8_t>(confidence_bucket(pred.spread));

    // Same arithmetic as finalize_block_pixels: a DC of d (quantized)
    // shifts every 8x-scaled sample by exactly d*q00.
    std::int32_t shift = static_cast<std::int32_t>(truth[0]) * q[0];
    PlanePx& px = px_cur[bx];
    for (int x = 0; x < 8; ++x) {
      px.bottom[static_cast<std::size_t>(x)] = px_ac[6 * 8 + x] + shift;
      px.bottom[static_cast<std::size_t>(8 + x)] = px_ac[7 * 8 + x] + shift;
    }
    for (int y = 0; y < 8; ++y) {
      px.right[static_cast<std::size_t>(y * 2 + 0)] = px_ac[y * 8 + 6] + shift;
      px.right[static_cast<std::size_t>(y * 2 + 1)] = px_ac[y * 8 + 7] + shift;
    }
  }
}

// Precomputes every component block row of MCU row `my_src` under context
// row index `my_ctx`: stage A for all sub-rows first (an even quirk row's
// bucket pass reads the next row's magnitudes), then stage B in row order
// (sub-row sy=1 reads sy=0's rolling state). `my_above_src` is the source
// MCU row whose bottom sub-row sits "above" this one in context — for a
// contiguous segment that is `my_src - 1` (and `my_ctx == my_src`); under
// the multi-lane row map it is the lane's previous row, a stride away.
// `any_row_coded` = whether an MCU row was coded since the segment/lane
// start (the first row's blocks have no "above" context). `et` points at
// one EdgeTables per component. This is the single wiring of the stages —
// SegmentCodec's plane path and the precompute bench both drive it, so the
// bench measures exactly what the encoder runs.
inline void precompute_mcu_row(ContextPlane& plane,
                               const jpegfmt::JpegFile& jf,
                               const jpegfmt::CoeffImage& source, int my_ctx,
                               int my_src, int my_above_src,
                               bool any_row_coded, const EdgeTables* et,
                               const ModelOptions& opts,
                               const jpegfmt::simd::ContextKernels& kernels) {
  const auto& fr = jf.frame;
  for (int ci = 0; ci < fr.ncomp(); ++ci) {
    const auto& comp = fr.comps[ci];
    ComponentPlane& cp = plane.comps[static_cast<std::size_t>(ci)];
    const auto& cc = source.comps[static_cast<std::size_t>(ci)];
    const std::uint16_t* q = jf.qtables[comp.quant_idx].q.data();
    const int v_samp = fr.ncomp() == 1 ? 1 : comp.v_samp;
    const auto wb = static_cast<std::size_t>(cc.width_blocks);
    for (int sy = 0; sy < v_samp; ++sy) {
      plane_abs_row(cp, cp.nzm.data() + static_cast<std::size_t>(sy) * wb, cc,
                    my_ctx * v_samp + sy, my_src * v_samp + sy, kernels);
    }
    for (int sy = 0; sy < v_samp; ++sy) {
      int by_ctx = my_ctx * v_samp + sy;
      int by_src = my_src * v_samp + sy;
      bool above_valid = sy > 0 || any_row_coded;
      int by_above_src =
          sy > 0 ? by_src - 1 : my_above_src * v_samp + (v_samp - 1);
      plane_context_row(cp, cp.ctx.data() + static_cast<std::size_t>(sy) * wb,
                        cp.mag.data() + static_cast<std::size_t>(sy) * wb * 64,
                        cp.nzm.data() + static_cast<std::size_t>(sy) * wb, cc,
                        by_ctx, by_src, by_above_src, above_valid, comp.h_samp,
                        v_samp, et[static_cast<std::size_t>(ci)], q, opts,
                        kernels);
    }
  }
}

}  // namespace lepton::model
