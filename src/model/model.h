// Lepton's adaptive probability model (§3.2, §3.3, §A.2).
//
// The model is a large set of independent adaptive "statistic bins"
// (coding::Branch), each used in one context. Contexts follow the paper:
//   * the number of non-zero 7x7 coefficients, coded as a 6-bit tree with
//     bins indexed by ⌊log1.59((nA+nL)/2)⌋ (§A.2.1),
//   * 7x7 AC values, Exp-Golomb coded with bins indexed by the coefficient
//     index and ⌊log2(|A|+|L|+½|AL|)⌋ of the neighbouring blocks (§3.3),
//   * 7x1/1x7 edge values with bins indexed by a quantized Lakhani
//     prediction computed from an entire neighbour row/column (§A.2.2),
//   * the DC delta against a pixel-gradient prediction, with bins indexed
//     by the prediction spread (confidence) (§A.2.3).
//
// Every bin access goes through clamped accessors: the production system's
// very first qualification run caught a *reversed* multidimensional bin
// index that compiled fine and corrupted state (§6.1); afterwards Dropbox
// wrapped every bin in a bounds-checking class and paid ~10% CPU for it.
// We adopt the same posture.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "coding/branch.h"

namespace lepton::model {

using coding::Branch;

// Ablation switches for the §4.3 experiments. All default to the paper's
// shipped configuration.
struct ModelOptions {
  bool lakhani_edges = true;  // false: predict edges like 7x7 neighbours
  bool dc_gradient = true;    // false: "baseline PackJPG" neighbour-DC mean
  bool zigzag_77 = true;      // false: raster order (costs ~0.2%, §A.2.1)
};

// ---- Context bucketing -----------------------------------------------------

// The bucketing functions run once per coded coefficient, so the loops the
// obvious formulations would use are replaced with a small lookup table
// (nz counts) and std::bit_width (single instruction on every relevant
// target). Each carries a static_assert or is covered by model_test
// equivalence checks against the reference definition.

// ⌊log1.59(n)⌋-style bucket for non-zero counts, clamped to [0, 9]:
// thresholds 1, 2, 3, 5, 7, 11, 17, 26, 41.
inline int nz_count_bucket(int n) {
  static constexpr std::array<std::uint8_t, 64> kBucket = [] {
    constexpr int kThresholds[9] = {1, 2, 3, 5, 7, 11, 17, 26, 41};
    std::array<std::uint8_t, 64> t{};
    for (int v = 0; v < 64; ++v) {
      int b = 0;
      while (b < 9 && v >= kThresholds[b]) ++b;
      t[static_cast<std::size_t>(v)] = static_cast<std::uint8_t>(b);
    }
    return t;
  }();
  if (n < 0) n = 0;
  if (n > 63) n = 63;
  return kBucket[static_cast<std::size_t>(n)];
}

// ⌊log2(1+x)⌋ clamped to [0, 11] for neighbour-magnitude averages.
inline int magnitude_bucket(std::uint32_t x) {
  int b = std::bit_width(x);
  return b > 11 ? 11 : b;
}

// Signed prediction bucket for edge coefficients: 8 negative magnitudes,
// zero, 8 positive magnitudes → [0, 16].
inline int signed_pred_bucket(std::int32_t p) {
  if (p == 0) return 8;
  std::uint32_t a = p < 0 ? static_cast<std::uint32_t>(-p)
                          : static_cast<std::uint32_t>(p);
  int m = std::bit_width(a);
  if (m > 8) m = 8;
  return p < 0 ? 8 - m : 8 + m;
}

// Confidence bucket for the DC prediction spread, [0, 16].
inline int confidence_bucket(std::uint32_t spread) {
  int b = std::bit_width(spread);
  return b > 16 ? 16 : b;
}

// ---- Model storage ---------------------------------------------------------

inline constexpr int kNum77 = 49;       // interior coefficients per block
inline constexpr int kAvgBuckets = 12;  // magnitude_bucket range
inline constexpr int kNzBuckets = 10;   // nz_count_bucket range
inline constexpr int kPredBuckets = 17; // signed_pred_bucket range
inline constexpr int kConfBuckets = 17; // confidence_bucket range
inline constexpr int kAcMaxBits = 10;   // |AC| <= 1023 in 8-bit baseline
inline constexpr int kDcDeltaBits = 13; // DC delta range after prediction

// Bounds-clamped fixed-size branch row. Clamping (rather than asserting)
// keeps hostile streams safe *and* keeps encoder/decoder symmetric: both
// sides clamp the same way, so an out-of-range context still round-trips.
template <int N>
class BranchRow {
 public:
  Branch& at(int i) {
    if (i < 0) i = 0;
    if (i >= N) i = N - 1;
    return b_[i];
  }
  Branch* row() { return b_.data(); }
  static constexpr int size() { return N; }

 private:
  std::array<Branch, N> b_{};
};

template <int Outer, typename Inner>
class BranchDim {
 public:
  Inner& at(int i) {
    if (i < 0) i = 0;
    if (i >= Outer) i = Outer - 1;
    return d_[i];
  }
  static constexpr int outer() { return Outer; }

 private:
  std::array<Inner, Outer> d_{};
};

// Model state for one channel kind (luma or chroma). Sized so a per-thread
// copy stays in the hundreds of kilobytes — the paper's hard decode budget
// (24 MiB single-threaded incl. buffers, §4.2) is enforced upstream.
struct KindModel {
  // §A.2.1: 6-bit count tree, 10 neighbour buckets, 64 tree nodes.
  BranchDim<kNzBuckets, BranchRow<64>> nz77;

  // 7x7 values.
  BranchDim<kNum77, BranchDim<kAvgBuckets, BranchDim<kNzBuckets,
      BranchRow<kAcMaxBits + 1>>>> c77_exp;
  BranchDim<kNum77, BranchDim<kAvgBuckets, BranchRow<1>>> c77_sign;
  BranchDim<kNum77, BranchDim<kAvgBuckets, BranchRow<kAcMaxBits>>> c77_res;

  // Edge (7x1 columns = orientation 0, 1x7 rows = orientation 1). Values
  // are additionally conditioned on the neighbouring blocks' magnitude at
  // the same coefficient (4 coarse buckets): the Lakhani prediction centres
  // the value, the neighbour magnitude scales the expected spread.
  BranchDim<2, BranchDim<8, BranchRow<8>>> edge_nz;  // 3-bit count tree
  BranchDim<2, BranchDim<7, BranchDim<kPredBuckets, BranchDim<4,
      BranchRow<kAcMaxBits + 1>>>>> edge_exp;
  BranchDim<2, BranchDim<7, BranchDim<kPredBuckets, BranchRow<1>>>> edge_sign;
  BranchDim<2, BranchDim<7, BranchDim<kPredBuckets, BranchDim<4,
      BranchRow<kAcMaxBits>>>>> edge_res;

  // DC delta.
  BranchDim<kConfBuckets, BranchRow<kDcDeltaBits + 1>> dc_exp;
  BranchDim<kConfBuckets, BranchRow<1>> dc_sign;
  BranchDim<kConfBuckets, BranchRow<kDcDeltaBits>> dc_res;
};

// Full model: separate statistics for luma (component 0) and chroma.
struct ProbabilityModel {
  std::array<KindModel, 2> kinds;
  KindModel& for_component(int comp_idx) {
    return kinds[comp_idx == 0 ? 0 : 1];
  }

  // Returns every bin to the 50-50 prior without touching the heap: a
  // freshly constructed Branch holds virtual counts 1/1, i.e. the byte
  // pattern 0x01 0x01, so one memset reproduces construction exactly. This
  // is what lets a long-lived CodecContext reuse one model allocation per
  // worker across files (no model-sized allocation after warm-up).
  void reset() {
    static_assert(std::is_trivially_copyable_v<KindModel>);
    static_assert(sizeof(KindModel) % sizeof(coding::Branch) == 0);
    std::memset(static_cast<void*>(kinds.data()), 0x01, sizeof(kinds));
  }
};

// Total number of statistic bins in the model — reported by DESIGN.md and
// checked by tests against the intended layout (same order of magnitude as
// the paper's 721,564 bins; exact count differs because the open-source
// model's bin layout is not fully specified in the paper).
constexpr std::size_t model_bin_count() {
  return sizeof(ProbabilityModel) / sizeof(Branch);
}

}  // namespace lepton::model
