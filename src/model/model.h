// Lepton's adaptive probability model (§3.2, §3.3, §A.2).
//
// The model is a large set of independent adaptive "statistic bins"
// (coding::Branch), each used in one context. Contexts follow the paper:
//   * the number of non-zero 7x7 coefficients, coded as a 6-bit tree with
//     bins indexed by ⌊log1.59((nA+nL)/2)⌋ (§A.2.1),
//   * 7x7 AC values, Exp-Golomb coded with bins indexed by the coefficient
//     index and ⌊log2(|A|+|L|+½|AL|)⌋ of the neighbouring blocks (§3.3),
//   * 7x1/1x7 edge values with bins indexed by a quantized Lakhani
//     prediction computed from an entire neighbour row/column (§A.2.2),
//   * the DC delta against a pixel-gradient prediction, with bins indexed
//     by the prediction spread (confidence) (§A.2.3).
//
// Every bin access goes through clamped accessors: the production system's
// very first qualification run caught a *reversed* multidimensional bin
// index that compiled fine and corrupted state (§6.1); afterwards Dropbox
// wrapped every bin in a bounds-checking class and paid ~10% CPU for it.
// We adopt the same posture.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "coding/branch.h"

namespace lepton::model {

using coding::Branch;

// Ablation switches for the §4.3 experiments. All default to the paper's
// shipped configuration.
struct ModelOptions {
  bool lakhani_edges = true;  // false: predict edges like 7x7 neighbours
  bool dc_gradient = true;    // false: "baseline PackJPG" neighbour-DC mean
  bool zigzag_77 = true;      // false: raster order (costs ~0.2%, §A.2.1)
};

// ---- Context bucketing -----------------------------------------------------

// The bucketing functions run once per coded coefficient, so the loops the
// obvious formulations would use are replaced with a small lookup table
// (nz counts) and std::bit_width (single instruction on every relevant
// target). Each carries a static_assert or is covered by model_test
// equivalence checks against the reference definition.

// ⌊log1.59(n)⌋-style bucket for non-zero counts, clamped to [0, 9]:
// thresholds 1, 2, 3, 5, 7, 11, 17, 26, 41.
inline int nz_count_bucket(int n) {
  static constexpr std::array<std::uint8_t, 64> kBucket = [] {
    constexpr int kThresholds[9] = {1, 2, 3, 5, 7, 11, 17, 26, 41};
    std::array<std::uint8_t, 64> t{};
    for (int v = 0; v < 64; ++v) {
      int b = 0;
      while (b < 9 && v >= kThresholds[b]) ++b;
      t[static_cast<std::size_t>(v)] = static_cast<std::uint8_t>(b);
    }
    return t;
  }();
  if (n < 0) n = 0;
  if (n > 63) n = 63;
  return kBucket[static_cast<std::size_t>(n)];
}

// ⌊log2(1+x)⌋ clamped to [0, 11] for neighbour-magnitude averages.
inline int magnitude_bucket(std::uint32_t x) {
  int b = std::bit_width(x);
  return b > 11 ? 11 : b;
}

// Signed prediction bucket for edge coefficients: 8 negative magnitudes,
// zero, 8 positive magnitudes → [0, 16].
inline int signed_pred_bucket(std::int32_t p) {
  if (p == 0) return 8;
  std::uint32_t a = p < 0 ? static_cast<std::uint32_t>(-p)
                          : static_cast<std::uint32_t>(p);
  int m = std::bit_width(a);
  if (m > 8) m = 8;
  return p < 0 ? 8 - m : 8 + m;
}

// Confidence bucket for the DC prediction spread, [0, 16].
inline int confidence_bucket(std::uint32_t spread) {
  int b = std::bit_width(spread);
  return b > 16 ? 16 : b;
}

// ---- Model storage ---------------------------------------------------------

inline constexpr int kNum77 = 49;       // interior coefficients per block
inline constexpr int kAvgBuckets = 12;  // magnitude_bucket range
inline constexpr int kNzBuckets = 10;   // nz_count_bucket range
inline constexpr int kPredBuckets = 17; // signed_pred_bucket range
inline constexpr int kConfBuckets = 17; // confidence_bucket range
inline constexpr int kAcMaxBits = 10;   // |AC| <= 1023 in 8-bit baseline
inline constexpr int kDcDeltaBits = 13; // DC delta range after prediction

inline constexpr int kEdgeMagBuckets = 4;  // coarse neighbour-magnitude dim

// Bounds-clamped fixed-size branch row. Clamping (rather than asserting)
// keeps hostile streams safe *and* keeps encoder/decoder symmetric: both
// sides clamp the same way, so an out-of-range context still round-trips.
template <int N>
class BranchRow {
 public:
  Branch& at(int i) {
    if (i < 0) i = 0;
    if (i >= N) i = N - 1;
    return b_[i];
  }
  Branch* row() { return b_.data(); }
  static constexpr int size() { return N; }

 private:
  std::array<Branch, N> b_{};
};

template <int Outer, typename Inner>
class BranchDim {
 public:
  Inner& at(int i) {
    if (i < 0) i = 0;
    if (i >= Outer) i = Outer - 1;
    return d_[i];
  }
  static constexpr int outer() { return Outer; }

 private:
  std::array<Inner, Outer> d_{};
};

// ---- Value-coding clusters -------------------------------------------------
//
// The bins consulted to code one coefficient used to live in three separate
// model-scale arrays (exp / sign / res, each indexed by the full context) —
// so each coded value touched three cache lines hundreds of kilobytes
// apart. The clusters below group the same bins by *access order* instead:
// everything one `coding::code_value` call reads sits in one small struct
// (exponent unary walk first, then sign, then residual), so one value's
// bins span one or two cache lines and consecutive bits hit the same line.
//
// The clustering is pure relocation: every bin keeps exactly the context
// conditioning it had (exp rows keep their extra remaining-count /
// magnitude dimension; sign and residual stay conditioned on the outer
// context only), so the coded byte stream is bit-identical to the previous
// layout. The static_asserts after KindModel pin the layout contract.

// Bins for one Exp-Golomb value whose exponent, sign and residual all share
// one fully-resolved context (the DC delta). sizeof(Branch)*(2*MaxBits+2)
// bytes — 112 for the DC's MaxBits = 13.
template <int MaxBits>
struct ValueBins {
  std::array<Branch, MaxBits + 1> exp;
  Branch sign;
  std::array<Branch, MaxBits> res;
};

// 7x7 interior value bins for one (coefficient, neighbour-magnitude)
// context. The exponent walk is additionally conditioned on the
// remaining-nonzeros bucket (as before); sign/res are not. 484 bytes; the
// stretch one code_value call walks (one 44-byte exp row, then the
// adjacent sign+res run) stays within one or two cache lines each.
struct Coef77Bins {
  std::array<std::array<Branch, kAcMaxBits + 1>, kNzBuckets> exp;
  Branch sign;
  std::array<Branch, kAcMaxBits> res;

  Branch* exp_row(int rem_b) {
    if (rem_b < 0) rem_b = 0;
    if (rem_b >= kNzBuckets) rem_b = kNzBuckets - 1;
    return exp[static_cast<std::size_t>(rem_b)].data();
  }
};

// Edge value bins for one (orientation, coefficient, Lakhani-prediction)
// context. Exponent and residual keep their coarse neighbour-magnitude
// dimension; sign does not. 340 bytes.
struct EdgeBins {
  std::array<std::array<Branch, kAcMaxBits + 1>, kEdgeMagBuckets> exp;
  Branch sign;
  std::array<std::array<Branch, kAcMaxBits>, kEdgeMagBuckets> res;

  Branch* exp_row(int mb) {
    if (mb < 0) mb = 0;
    if (mb >= kEdgeMagBuckets) mb = kEdgeMagBuckets - 1;
    return exp[static_cast<std::size_t>(mb)].data();
  }
  Branch* res_row(int mb) {
    if (mb < 0) mb = 0;
    if (mb >= kEdgeMagBuckets) mb = kEdgeMagBuckets - 1;
    return res[static_cast<std::size_t>(mb)].data();
  }
};

// Model state for one channel kind (luma or chroma). Sized so a per-thread
// copy stays in the hundreds of kilobytes — the paper's hard decode budget
// (24 MiB single-threaded incl. buffers, §4.2) is enforced upstream.
struct KindModel {
  // §A.2.1: 6-bit count tree, 10 neighbour buckets, 64 tree nodes.
  BranchDim<kNzBuckets, BranchRow<64>> nz77;

  // 7x7 values: one cluster per (zigzag position, magnitude bucket).
  BranchDim<kNum77, BranchDim<kAvgBuckets, Coef77Bins>> c77;

  // Edge (7x1 columns = orientation 0, 1x7 rows = orientation 1). Values
  // are additionally conditioned on the neighbouring blocks' magnitude at
  // the same coefficient (4 coarse buckets): the Lakhani prediction centres
  // the value, the neighbour magnitude scales the expected spread.
  BranchDim<2, BranchDim<8, BranchRow<8>>> edge_nz;  // 3-bit count tree
  BranchDim<2, BranchDim<7, BranchDim<kPredBuckets, EdgeBins>>> edge;

  // DC delta: one self-contained cluster per confidence bucket.
  BranchDim<kConfBuckets, ValueBins<kDcDeltaBits>> dc;
};

// ---- Layout contract -------------------------------------------------------
//
// The compile-time layout map below is the documented bin layout
// (DESIGN.md §"Performance architecture"); the static_asserts make the
// contract binding: clusters are exactly their bins (no padding anywhere —
// a padded cluster would silently inflate the per-thread model copy and
// break the memset-based reset), sections appear in coding order, and the
// whole model stays memset-resettable.
struct KindModelLayout {
  std::size_t nz77_off, nz77_bins;
  std::size_t c77_off, c77_bins;
  std::size_t edge_nz_off, edge_nz_bins;
  std::size_t edge_off, edge_bins;
  std::size_t dc_off, dc_bins;
};

inline constexpr KindModelLayout kKindModelLayout = {
    offsetof(KindModel, nz77), std::size_t{kNzBuckets} * 64,
    offsetof(KindModel, c77),
    std::size_t{kNum77} * kAvgBuckets *
        (kNzBuckets * (kAcMaxBits + 1) + 1 + kAcMaxBits),
    offsetof(KindModel, edge_nz), std::size_t{2} * 8 * 8,
    offsetof(KindModel, edge),
    std::size_t{2} * 7 * kPredBuckets *
        (kEdgeMagBuckets * (kAcMaxBits + 1) + 1 + kEdgeMagBuckets * kAcMaxBits),
    offsetof(KindModel, dc), std::size_t{kConfBuckets} * (2 * kDcDeltaBits + 2),
};

// Clusters contain exactly their bins — no padding.
static_assert(sizeof(Coef77Bins) ==
              sizeof(Branch) * (kNzBuckets * (kAcMaxBits + 1) + 1 + kAcMaxBits));
static_assert(sizeof(EdgeBins) ==
              sizeof(Branch) * (kEdgeMagBuckets * (kAcMaxBits + 1) + 1 +
                                kEdgeMagBuckets * kAcMaxBits));
static_assert(sizeof(ValueBins<kDcDeltaBits>) ==
              sizeof(Branch) * (2 * kDcDeltaBits + 2));
// One 7x7 cluster spans one-or-two cache lines per coded value: the widest
// stretch a single code_value call walks (one exp row, then sign+res) is
// well under two 64-byte lines.
static_assert(sizeof(Branch) * (kAcMaxBits + 1) <= 64);
static_assert(sizeof(Branch) * (1 + kAcMaxBits) <= 64);
// Sections appear in coding order (nz count → 7x7 → edge → DC) and tile the
// struct exactly.
static_assert(kKindModelLayout.nz77_off == 0);
static_assert(kKindModelLayout.c77_off ==
              kKindModelLayout.nz77_off +
                  sizeof(Branch) * kKindModelLayout.nz77_bins);
static_assert(kKindModelLayout.edge_nz_off ==
              kKindModelLayout.c77_off +
                  sizeof(Branch) * kKindModelLayout.c77_bins);
static_assert(kKindModelLayout.edge_off ==
              kKindModelLayout.edge_nz_off +
                  sizeof(Branch) * kKindModelLayout.edge_nz_bins);
static_assert(kKindModelLayout.dc_off ==
              kKindModelLayout.edge_off +
                  sizeof(Branch) * kKindModelLayout.edge_bins);
static_assert(sizeof(KindModel) ==
              kKindModelLayout.dc_off +
                  sizeof(Branch) * kKindModelLayout.dc_bins);
static_assert(alignof(KindModel) == alignof(Branch));

// Full model: separate statistics for luma (component 0) and chroma.
struct ProbabilityModel {
  std::array<KindModel, 2> kinds;
  KindModel& for_component(int comp_idx) {
    return kinds[comp_idx == 0 ? 0 : 1];
  }

  // Returns every bin to the 50-50 prior without touching the heap: the
  // model is (statically asserted to be) a dense array of Branch, so
  // stamping a freshly constructed Branch's four bytes across the storage
  // reproduces construction exactly. The stamp runs as a memcpy-doubling
  // fill (memcpy is the blessed way to write trivially-copyable object
  // representations; a reinterpret_cast'ed word fill would be an aliasing
  // violation) and costs the same as the memset it replaces. This is what
  // lets a long-lived CodecContext reuse one model allocation per worker
  // across files (no model-sized allocation after warm-up).
  void reset() {
    static_assert(std::is_trivially_copyable_v<KindModel>);
    static_assert(sizeof(KindModel) % sizeof(coding::Branch) == 0);
    const coding::Branch fresh{};
    auto* dst = reinterpret_cast<unsigned char*>(kinds.data());
    std::memcpy(dst, &fresh, sizeof(fresh));
    std::size_t filled = sizeof(fresh);
    while (filled < sizeof(kinds)) {
      std::size_t chunk = filled < sizeof(kinds) - filled
                              ? filled
                              : sizeof(kinds) - filled;
      std::memcpy(dst + filled, dst, chunk);
      filled += chunk;
    }
  }
};

// Total number of statistic bins in the model — reported by DESIGN.md and
// checked by tests against the intended layout (same order of magnitude as
// the paper's 721,564 bins; exact count differs because the open-source
// model's bin layout is not fully specified in the paper).
constexpr std::size_t model_bin_count() {
  return sizeof(ProbabilityModel) / sizeof(Branch);
}

}  // namespace lepton::model
