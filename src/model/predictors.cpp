#include "model/predictors.h"

#include "jpeg/dct.h"

namespace lepton::model {
namespace {

inline std::int32_t abs32(std::int32_t v) { return v < 0 ? -v : v; }

// Round-to-nearest division, deterministic for negative numerators.
inline std::int32_t round_div(std::int64_t num, std::int64_t den) {
  if (num >= 0) return static_cast<std::int32_t>((num + den / 2) / den);
  return static_cast<std::int32_t>(-((-num + den / 2) / den));
}

}  // namespace

std::uint32_t avg_neighbor_magnitude(const Neighbors& nb, int nat) {
  std::uint32_t sum = 0;
  if (nb.above != nullptr) sum += 13u * static_cast<std::uint32_t>(abs32(nb.above->coef[nat]));
  if (nb.left != nullptr) sum += 13u * static_cast<std::uint32_t>(abs32(nb.left->coef[nat]));
  if (nb.above_left != nullptr) {
    sum += 6u * static_cast<std::uint32_t>(abs32(nb.above_left->coef[nat]));
  }
  return sum / 32u;
}

std::int32_t avg_neighbor_value(const Neighbors& nb, int nat) {
  return avg_neighbor_value_at(
      nb.above != nullptr ? nb.above->coef.data() : nullptr,
      nb.left != nullptr ? nb.left->coef.data() : nullptr,
      nb.above_left != nullptr ? nb.above_left->coef.data() : nullptr, nat);
}

std::int32_t lakhani_edge_prediction(int orientation, int index,
                                     const std::int16_t* cur,
                                     const BlockState* neighbor,
                                     const std::uint16_t* q) {
  if (neighbor == nullptr || index < 1 || index > 7) return 0;
  using jpegfmt::dct_basis_q20;
  // Continuity of pixels across the shared edge (§A.2.2):
  //   B00·F[u][0] = Σ_v B(7,v)·Ldq[u][v] − Σ_{v≥1} B(0,v)·Fdq[u][v]
  // for orientation 0 (left neighbour), and the transposed form with the
  // above neighbour for orientation 1. All terms dequantized; the result is
  // re-quantized to the edge coefficient's own step.
  std::int64_t num = 0;
  if (orientation == 0) {
    const int u = index;
    for (int v = 0; v < 8; ++v) {
      std::int64_t ldq = static_cast<std::int64_t>(neighbor->coef[u * 8 + v]) *
                         q[u * 8 + v];
      num += dct_basis_q20(7, v) * ldq;
    }
    for (int v = 1; v < 8; ++v) {
      std::int64_t fdq =
          static_cast<std::int64_t>(cur[u * 8 + v]) * q[u * 8 + v];
      num -= dct_basis_q20(0, v) * fdq;
    }
    std::int64_t pred_dq = num / dct_basis_q20(0, 0);
    return round_div(pred_dq, q[u * 8 + 0]);
  }
  const int v = index;
  for (int u = 0; u < 8; ++u) {
    std::int64_t adq = static_cast<std::int64_t>(neighbor->coef[u * 8 + v]) *
                       q[u * 8 + v];
    num += dct_basis_q20(7, u) * adq;
  }
  for (int u = 1; u < 8; ++u) {
    std::int64_t fdq = static_cast<std::int64_t>(cur[u * 8 + v]) * q[u * 8 + v];
    num -= dct_basis_q20(0, u) * fdq;
  }
  std::int64_t pred_dq = num / dct_basis_q20(0, 0);
  return round_div(pred_dq, q[0 * 8 + v]);
}

void ac_only_pixels(const std::int16_t* coef, const std::uint16_t* q,
                    std::int32_t px_out[64]) {
  jpegfmt::idct_8x8_dequant_ac(coef, q, px_out);
}

DcPrediction predict_dc_gradient(const Neighbors& nb,
                                 const std::int32_t* px_ac,
                                 const std::uint16_t* q) {
  const std::int32_t* above_bottom =
      (nb.above != nullptr && nb.above->valid) ? nb.above->px_bottom.data()
                                               : nullptr;
  const std::int32_t* left_right =
      (nb.left != nullptr && nb.left->valid) ? nb.left->px_right.data()
                                             : nullptr;
  return predict_dc_gradient_edges(above_bottom, left_right, px_ac, q);
}

DcPrediction predict_dc_gradient_edges(const std::int32_t* above_bottom,
                                       const std::int32_t* left_right,
                                       const std::int32_t* px_ac,
                                       const std::uint16_t* q) {
  // Each border pair yields an estimate of the 8x-scaled DC pixel shift s
  // (== F00·q00 exactly, see dct.h): the gradient inside the neighbour and
  // the gradient inside the current block should meet seamlessly at the
  // seam (§A.2.3, Figure 17 right).
  std::int32_t est[16];
  int n = 0;
  if (above_bottom != nullptr) {
    for (int x = 0; x < 8; ++x) {
      std::int32_t a6 = above_bottom[x];
      std::int32_t a7 = above_bottom[8 + x];
      std::int32_t c0 = px_ac[x];        // row 0
      std::int32_t c1 = px_ac[8 + x];    // row 1
      std::int32_t p = a7 + ((a7 - a6) + (c1 - c0)) / 2;
      est[n++] = p - c0;
    }
  }
  if (left_right != nullptr) {
    for (int y = 0; y < 8; ++y) {
      std::int32_t l6 = left_right[y * 2 + 0];
      std::int32_t l7 = left_right[y * 2 + 1];
      std::int32_t c0 = px_ac[y * 8 + 0];  // col 0
      std::int32_t c1 = px_ac[y * 8 + 1];  // col 1
      std::int32_t p = l7 + ((l7 - l6) + (c1 - c0)) / 2;
      est[n++] = p - c0;
    }
  }
  DcPrediction out;
  if (n == 0) return out;  // no context: predict 0 with zero confidence
  std::int64_t sum = 0;
  std::int32_t mn = est[0], mx = est[0];
  for (int i = 0; i < n; ++i) {
    sum += est[i];
    mn = est[i] < mn ? est[i] : mn;
    mx = est[i] > mx ? est[i] : mx;
  }
  std::int32_t q00 = q[0] == 0 ? 1 : q[0];
  // n is 8 (one neighbour) or 16 (both): constant-divisor branches let the
  // compiler turn the estimate average into shifts instead of a division.
  std::int32_t avg = n == 16 ? round_div(sum, 16) : round_div(sum, 8);
  out.predicted_dc = round_div(avg, q00);
  out.spread = static_cast<std::uint32_t>((mx - mn) / q00);
  return out;
}

DcPrediction predict_dc_simple(const Neighbors& nb,
                               const std::uint16_t* /*q*/) {
  const std::int16_t* above_dc =
      (nb.above != nullptr && nb.above->valid) ? nb.above->coef.data() : nullptr;
  const std::int16_t* left_dc =
      (nb.left != nullptr && nb.left->valid) ? nb.left->coef.data() : nullptr;
  return predict_dc_simple_vals(above_dc, left_dc);
}

DcPrediction predict_dc_simple_vals(const std::int16_t* above_dc,
                                    const std::int16_t* left_dc) {
  DcPrediction out;
  int n = 0;
  std::int32_t sum = 0;
  std::int32_t vals[2] = {0, 0};
  if (above_dc != nullptr) {
    vals[n] = *above_dc;
    sum += vals[n++];
  }
  if (left_dc != nullptr) {
    vals[n] = *left_dc;
    sum += vals[n++];
  }
  if (n == 0) return out;
  out.predicted_dc = sum / n;
  out.spread = n == 2 ? static_cast<std::uint32_t>(abs32(vals[0] - vals[1]))
                      : 0u;
  return out;
}

void finalize_block_pixels(BlockState& bs, const std::int32_t* px_ac,
                           const std::uint16_t* q) {
  // DC of d (quantized) shifts every 8x-scaled sample by exactly d*q00.
  std::int32_t shift = static_cast<std::int32_t>(bs.coef[0]) * q[0];
  for (int x = 0; x < 8; ++x) {
    bs.px_bottom[x] = px_ac[6 * 8 + x] + shift;
    bs.px_bottom[8 + x] = px_ac[7 * 8 + x] + shift;
  }
  for (int y = 0; y < 8; ++y) {
    bs.px_right[y * 2 + 0] = px_ac[y * 8 + 6] + shift;
    bs.px_right[y * 2 + 1] = px_ac[y * 8 + 7] + shift;
  }
  bs.valid = true;
}

}  // namespace lepton::model
