#include "lepton/chunk.h"

#include "jpeg/scan_decoder.h"
#include "lepton/context.h"
#include "lepton/plan.h"

namespace lepton {

CodecContext& ChunkCodec::context() const {
  return ctx_ != nullptr ? *ctx_ : default_context();
}

ChunkSetResult ChunkCodec::encode_chunks(
    std::span<const std::uint8_t> jpeg) const {
  ChunkSetResult out;
  try {
    auto jf = jpegfmt::parse_jpeg(jpeg);
    auto dec = jpegfmt::decode_scan(jf);
    std::uint64_t size = jpeg.size();
    for (std::uint64_t off = 0; off < size; off += chunk_size_) {
      std::uint64_t end = std::min<std::uint64_t>(off + chunk_size_, size);
      auto plan =
          core::plan_byte_range(jf, dec, off, end, opts_, /*is_chunk=*/true);
      out.chunks.push_back(
          core::encode_container(jf, dec, plan, opts_, nullptr, context()));
    }
  } catch (const jpegfmt::ParseError& e) {
    out.code = e.code();
    out.message = e.what();
    out.chunks.clear();
  } catch (const std::exception& e) {
    out.code = util::ExitCode::kImpossible;
    out.message = e.what();
    out.chunks.clear();
  }
  return out;
}

Result ChunkCodec::decode_chunk(std::span<const std::uint8_t> chunk,
                                const DecodeOptions& opts) const {
  Result r;
  VectorSink sink;
  r.code = decode_lepton(chunk, sink, opts, context(), nullptr);
  r.data = std::move(sink.data);
  return r;
}

util::ExitCode ChunkCodec::chunk_info(std::span<const std::uint8_t> chunk,
                                      ChunkInfo* out) {
  try {
    auto pc = core::parse_container(chunk);
    out->offset = pc.header.chunk_off;
    out->length = pc.header.chunk_len;
    out->total_size = pc.header.file_total_size;
    return util::ExitCode::kSuccess;
  } catch (const jpegfmt::ParseError& e) {
    return e.code();
  } catch (const std::exception&) {
    return util::ExitCode::kImpossible;
  }
}

}  // namespace lepton
