#include "lepton/chunk.h"

#include "lepton/context.h"
#include "lepton/session.h"

namespace lepton {

CodecContext& ChunkCodec::context() const {
  return ctx_ != nullptr ? *ctx_ : default_context();
}

ChunkSetResult ChunkCodec::encode_chunks(
    std::span<const std::uint8_t> jpeg) const {
  ChunkSetResult out;
  EncodeSession session(opts_, &context());
  session.feed(jpeg);
  out.code = session.finish_chunks(chunk_size_, &out.chunks);
  if (!out.ok()) out.message = session.message();
  return out;
}

Result ChunkCodec::decode_chunk(std::span<const std::uint8_t> chunk,
                                const DecodeOptions& opts,
                                DecodeStats* stats) const {
  Result r;
  VectorSink sink;
  r.code = decode_lepton(chunk, sink, opts, context(), stats);
  r.data = std::move(sink.data);
  return r;
}

util::ExitCode ChunkCodec::chunk_info(std::span<const std::uint8_t> chunk,
                                      ChunkInfo* out) {
  try {
    auto pc = core::parse_container(chunk);
    out->offset = pc.header.chunk_off;
    out->length = pc.header.chunk_len;
    out->total_size = pc.header.file_total_size;
    return util::ExitCode::kSuccess;
  } catch (const jpegfmt::ParseError& e) {
    return e.code();
  } catch (const std::exception&) {
    return util::ExitCode::kImpossible;
  }
}

}  // namespace lepton
