#include "lepton/sandbox.h"

#if defined(__linux__)
#include <linux/seccomp.h>
#include <sys/prctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#include <cstdlib>
#endif

namespace lepton::core {

bool sandbox_supported() {
#if defined(__linux__) && defined(SECCOMP_MODE_STRICT)
  return true;
#else
  return false;
#endif
}

bool enter_strict_sandbox() {
#if defined(__linux__) && defined(SECCOMP_MODE_STRICT)
  return ::prctl(PR_SET_SECCOMP, SECCOMP_MODE_STRICT) == 0;
#else
  return false;
#endif
}

void sandbox_exit(int status) {
#if defined(__linux__)
  for (;;) ::syscall(SYS_exit, status);
#else
  std::_Exit(status);
#endif
}

}  // namespace lepton::core
