// Streaming codec sessions (§3.4, §5.7): the primary public API.
//
// The paper's deployment is network-paced — blockservers hand Lepton the
// bytes of a 4-MiB chunk as they arrive from the store, decode begins
// before the chunk has fully arrived, and every conversion runs under a
// time box that aborts it when the latency budget is blown. Sessions make
// that calling convention first-class:
//
//   lepton::VectorSink out;
//   lepton::DecodeSession s(out);                  // or (out, opts, &ctx)
//   s.control().set_deadline_after(std::chrono::milliseconds(50));
//   while (socket.read(slice)) {
//     if (s.feed(slice) != ExitCode::kSuccess) break;   // classified early
//   }
//   auto code = s.finish(&stats);                  // §6.2 classification
//
// feed() accepts slices of any size (single bytes included). Input is
// classified as early as the bytes allow: a non-Lepton stream fails at its
// first bytes, a hostile header fails when the header arrives — before the
// payload has been fetched. The verbatim JPEG header prefix is emitted to
// the sink as soon as the container header parses (time-to-first-byte does
// not wait for the payload), and segments whose interleaved arithmetic
// streams complete mid-stream are decoded while later bytes are still in
// flight. finish() decodes whatever remains — in parallel on the context's
// pool — and classifies a stream that ended early as kShortRead, a
// cancelled/expired session as kTimeout.
//
// EncodeSession is the same shape for compression. Encoding needs the whole
// file before planning (§3: the production system assembles the file before
// compressing later chunks), so feed() buffers — but it also runs a
// resumable JPEG header probe, so files the system does not admit
// (progressive, CMYK, non-images...) are rejected mid-upload, long before
// finish().
//
// Every whole-buffer entry point (encode_jpeg, decode_lepton, ChunkCodec,
// TransparentStore, the baselines adapter) is a feed-everything wrapper
// over these sessions: there is exactly one codec driver.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "jpeg/parser.h"
#include "jpeg/scan_decoder.h"
#include "lepton/codec.h"
#include "lepton/format.h"
#include "lepton/plan.h"
#include "lepton/run_control.h"

namespace lepton {

class CodecContext;

// ---- decode ----------------------------------------------------------------

class DecodeSession {
 public:
  // `sink` receives the original file bytes, in order, possibly before all
  // input has been fed. `ctx` (optional) pins the session to a dedicated
  // CodecContext; by default it runs on the process-wide context. When
  // opts.run is null the session owns its RunControl (see control()).
  explicit DecodeSession(ByteSink& sink, const DecodeOptions& opts = {},
                         CodecContext* ctx = nullptr);

  DecodeSession(const DecodeSession&) = delete;
  DecodeSession& operator=(const DecodeSession&) = delete;

  // The session's cancellation/deadline control — opts.run when the caller
  // supplied one, the session-owned control otherwise. May be tripped from
  // any thread while feed()/finish() runs on another.
  RunControl& control() { return *rc_; }

  // Consumes the next input slice (any size; bytes need not align with any
  // container structure). Returns kSuccess while the stream is healthy.
  // Failures are classified and sticky; once feed() reports an error the
  // session is dead and finish() returns the same code.
  util::ExitCode feed(std::span<const std::uint8_t> bytes);

  // Ends the input stream: decodes every remaining segment (in parallel on
  // the context's pool when opts.run_parallel), emits the suffix, and
  // returns the final §6.2 classification. An input stream that ended
  // before the bytes its header promised is kShortRead; a tripped
  // RunControl is kTimeout. Idempotent. `stats` (optional) receives
  // payload-consumption facts.
  util::ExitCode finish(DecodeStats* stats = nullptr);

  // True once finish() has run (successfully or not).
  bool finished() const { return finished_; }

  // Progress visibility for pacing layers.
  bool header_ready() const { return validated_; }
  std::uint64_t bytes_fed() const { return parser_.bytes_consumed(); }
  std::size_t segments_decoded() const { return next_seg_; }

  const std::string& message() const { return message_; }

 private:
  util::ExitCode fail(util::ExitCode code, std::string msg);
  util::ExitCode pump();
  util::ExitCode finish_impl();

  ByteSink& sink_;
  DecodeOptions opts_;
  CodecContext& ctx_;
  RunControl own_rc_;
  RunControl* rc_;

  core::ContainerParser parser_;
  jpegfmt::JpegFile hdr_;    // parsed embedded JPEG header
  bool validated_ = false;   // header validated + prefix emitted
  std::size_t next_seg_ = 0;  // first segment not yet decoded
  core::DecodeRunFlags flags_;

  bool finished_ = false;
  util::ExitCode error_ = util::ExitCode::kSuccess;
  std::string message_;
};

// ---- encode ----------------------------------------------------------------

class EncodeSession {
 public:
  explicit EncodeSession(const EncodeOptions& opts = {},
                         CodecContext* ctx = nullptr);

  EncodeSession(const EncodeSession&) = delete;
  EncodeSession& operator=(const EncodeSession&) = delete;

  RunControl& control() { return *rc_; }

  // Buffers the next slice of the JPEG file. The resumable header probe
  // classifies inadmissible files (progressive, CMYK, not-an-image, ...)
  // as soon as the offending marker arrives; the returned error is sticky.
  //
  // Lifetime: the fed bytes must stay valid until the *next* feed() or
  // finish call returns. A session fed exactly once (every one-shot
  // wrapper) borrows the caller's span and never copies the file; from the
  // second feed on, slices are accumulated into an internal buffer.
  util::ExitCode feed(std::span<const std::uint8_t> bytes);

  // Compresses the buffered file into one Lepton container, appended to
  // `sink`. Segment workers poll control() at MCU-row granularity; a trip
  // classifies as kTimeout. Idempotent per session (one container).
  util::ExitCode finish(ByteSink& sink);

  // Chunked finish (§3): one independent container per chunk_size byte
  // range of the input, appended to `*chunks`. Same classification rules.
  util::ExitCode finish_chunks(std::size_t chunk_size,
                               std::vector<std::vector<std::uint8_t>>* chunks);

  bool finished() const { return finished_; }
  std::uint64_t bytes_fed() const {
    return buffer_.size() + deferred_.size();
  }

  // True once the probe has seen a complete, plausible JPEG header (the
  // file may still be rejected by the full parse at finish()).
  bool header_seen() const;

  const std::string& message() const { return message_; }

 private:
  util::ExitCode fail(util::ExitCode code, std::string msg);
  // Shared prologue of the finish variants: probe/parse/scan-decode the
  // buffered file. Returns kSuccess and fills jf_/dec_ once.
  util::ExitCode prepare();
  // The input seen so far: the borrowed single-feed span, or the
  // accumulation buffer once a second feed forced a copy.
  std::span<const std::uint8_t> pending_input() const;

  EncodeOptions opts_;
  CodecContext& ctx_;
  RunControl own_rc_;
  RunControl* rc_;

  std::vector<std::uint8_t> buffer_;
  std::span<const std::uint8_t> deferred_;  // single-feed borrow (no copy)
  jpegfmt::JpegHeaderProbe probe_;

  bool prepared_ = false;
  jpegfmt::JpegFile jf_;
  jpegfmt::ScanDecodeResult dec_;

  bool finished_ = false;
  util::ExitCode error_ = util::ExitCode::kSuccess;
  std::string message_;
};

}  // namespace lepton
