// Whole-file Lepton encode/decode (§3).
//
// Encoding: one serial pass Huffman-decodes the original JPEG (this serial
// stage is the encoder's scaling bottleneck past 4 threads — §5.4/Fig 8),
// then thread segments arithmetic-code their MCU-row ranges in parallel
// with independent model copies.
//
// Decoding: each segment thread arithmetic-decodes its rows and immediately
// Huffman-re-encodes them from its handover word, streaming completed bytes
// to the caller's sink in order — time-to-first-byte does not wait for the
// whole container (§3.4).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "lepton/format.h"
#include "lepton/run_control.h"
#include "model/model.h"
#include "util/exit_codes.h"

namespace lepton {

class CodecContext;  // long-lived pool + scratch (context.h)

struct Result {
  util::ExitCode code = util::ExitCode::kSuccess;
  std::vector<std::uint8_t> data;
  std::string message;
  bool ok() const { return code == util::ExitCode::kSuccess; }
};

struct EncodeOptions {
  // Maximum thread segments per container; the actual count follows the
  // production size policy (small files get fewer threads — §5.4/Fig 7).
  int max_threads = 8;
  // Overrides the size policy with an exact segment count (benches sweep
  // thread counts explicitly; 0 = use the policy).
  int force_threads = 0;
  // "Lepton 1-way" (§4.1): one segment over the whole image, maximum
  // compression, single-threaded.
  bool one_way = false;
  // Run segment work on real threads (false = same segmentation, serial
  // execution; useful for deterministic debugging).
  bool run_parallel = true;
  // Optional cancellation/deadline control, polled by the segment workers
  // at MCU-row granularity (run_control.h). Non-owning: must outlive the
  // call. Sessions wire their own control in here; a trip classifies the
  // run as kTimeout.
  RunControl* run = nullptr;
  // Staged encode pipeline (context-plane precompute + plane-fed coder
  // loop). Byte-streams are identical either way; false runs the per-block
  // reference path (fuzz baseline, perf attribution).
  bool use_context_plane = true;
  // Interleaved coder lanes per segment (format v3). 0 = the measured
  // default (core::kDefaultCoderLanes); 1 = single lane, which is exactly
  // the v2 format; 2..kMaxLanes = v3 with that many lanes. Per segment the
  // effective count is clamped to the segment's MCU-row count. Environment
  // pins (read per encode): LEPTON_FORMAT=v2 forces v2 regardless of this
  // field (the CI back-compat gate), LEPTON_LANES=<n> supplies the count
  // when this field is 0.
  int coder_lanes = 0;
  model::ModelOptions model;
};

struct DecodeOptions {
  bool run_parallel = true;
  // Same contract as EncodeOptions::run.
  RunControl* run = nullptr;
};

// Stream-consumption facts from a successful decode, for validation layers
// (verify.cpp's admissibility gate, the store's get() path, chunk decode).
// A well-formed container's arithmetic payload is consumed exactly: no
// overrun, nothing left over.
struct DecodeStats {
  // Some segment's BoolDecoder needed bytes past the end of its payload —
  // the stream was truncated relative to what the coded data demanded.
  bool payload_overrun = false;
  // Every segment consumed its payload to the end (without overrunning).
  bool payload_exhausted = true;
  // Exact counts behind the booleans, summed across segments: payload
  // bytes present in the container vs bytes the arithmetic decode actually
  // consumed. Equal on a well-formed container.
  std::uint64_t payload_bytes = 0;
  std::uint64_t payload_consumed = 0;
  // Number of coder lanes (across all segments; a v2 segment is one lane)
  // whose BoolDecoder overran its slice of the payload. payload_overrun is
  // the OR of this; the count tells validation *which kind* of truncation
  // a v3 container suffered (one short lane vs a truncated tail).
  std::uint32_t lanes_overrun = 0;
};

// Streaming output consumer. append() calls arrive in byte order.
class ByteSink {
 public:
  virtual ~ByteSink() = default;
  virtual void append(std::span<const std::uint8_t> bytes) = 0;
};

class VectorSink : public ByteSink {
 public:
  void append(std::span<const std::uint8_t> b) override {
    data.insert(data.end(), b.begin(), b.end());
  }
  std::vector<std::uint8_t> data;
};

// Records time-to-first-byte and total bytes; wraps another sink (Fig 1's
// decode-speed axis measures time-to-last-byte, §3.4 motivates TTFB).
class TimingSink : public ByteSink {
 public:
  explicit TimingSink(ByteSink* inner = nullptr) : inner_(inner) {
    start_ = std::chrono::steady_clock::now();
  }
  void append(std::span<const std::uint8_t> b) override {
    if (!saw_first_ && !b.empty()) {
      first_byte_ = std::chrono::steady_clock::now();
      saw_first_ = true;
    }
    bytes_ += b.size();
    if (inner_ != nullptr) inner_->append(b);
  }
  double ttfb_seconds() const {
    return saw_first_
               ? std::chrono::duration<double>(first_byte_ - start_).count()
               : 0.0;
  }
  std::size_t bytes() const { return bytes_; }

 private:
  ByteSink* inner_;
  std::chrono::steady_clock::time_point start_, first_byte_;
  bool saw_first_ = false;
  std::size_t bytes_ = 0;
};

// Number of thread segments the production policy assigns to `bytes` of
// input (the visible cutoffs in Figures 7/8).
int threads_for_size(std::size_t bytes, int max_threads);

// Compresses a baseline JPEG into a single Lepton container. Failures are
// classified, never thrown. The two-argument form runs on the process-wide
// default CodecContext (context.h); pass an explicit context to use a
// dedicated pool. Implemented as a whole-buffer wrapper over
// lepton::EncodeSession (session.h) — the streaming session is the one
// codec driver.
Result encode_jpeg(std::span<const std::uint8_t> jpeg,
                   const EncodeOptions& opts = {});
Result encode_jpeg(std::span<const std::uint8_t> jpeg,
                   const EncodeOptions& opts, CodecContext& ctx);

// Decompresses a Lepton container, streaming the original bytes to `sink`.
// Returns the §6.2 classification (data in the Result stays empty; the sink
// owns the bytes). `stats`, when given, reports payload-consumption facts
// for validation layers. Implemented as a whole-buffer wrapper over
// lepton::DecodeSession (session.h).
util::ExitCode decode_lepton(std::span<const std::uint8_t> lep, ByteSink& sink,
                             const DecodeOptions& opts = {});
util::ExitCode decode_lepton(std::span<const std::uint8_t> lep, ByteSink& sink,
                             const DecodeOptions& opts, CodecContext& ctx,
                             DecodeStats* stats = nullptr);

// Convenience: decode into a Result buffer.
Result decode_lepton(std::span<const std::uint8_t> lep,
                     const DecodeOptions& opts = {});

// Per-component compressed-size breakdown used by the Figure 4 bench.
struct ComponentBreakdown {
  std::uint64_t header_in = 0, header_out = 0;
  std::uint64_t dc_in_bits = 0, dc_out_bits = 0;
  std::uint64_t ac77_in_bits = 0, ac77_out_bits = 0;
  std::uint64_t edge_in_bits = 0, edge_out_bits = 0;
};

// Encode with instrumentation (single-segment; used by bench/fig04).
Result encode_jpeg_with_breakdown(std::span<const std::uint8_t> jpeg,
                                  const EncodeOptions& opts,
                                  ComponentBreakdown* breakdown);

}  // namespace lepton
