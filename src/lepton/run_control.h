// Per-session cancellation and deadline (§3.4, §5.7).
//
// Production blockservers time-box every conversion: a compress that blows
// its latency budget is aborted and the chunk falls back to Deflate, and a
// decompress that stalls must not pin worker threads. RunControl is that
// budget made explicit: a cancellation flag plus a monotonic-clock deadline,
// shared by reference between the caller and every segment worker of one
// session. Workers poll it at MCU-row granularity; a trip surfaces through
// the §6.2 taxonomy as kTimeout.
//
// Any thread may cancel or (re)set the deadline while the session runs —
// both fields are atomics. The same RunControl must not be reused across
// concurrent sessions (a trip would stop them all, which is occasionally
// exactly what a draining server wants).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace lepton {

class RunControl {
 public:
  using Clock = std::chrono::steady_clock;

  // ---- caller side -------------------------------------------------------
  void request_cancel() { cancel_.store(true, std::memory_order_relaxed); }

  void set_deadline(Clock::time_point tp) {
    deadline_ns_.store(to_ns(tp), std::memory_order_relaxed);
  }
  void set_deadline_after(Clock::duration budget) {
    set_deadline(Clock::now() + budget);
  }
  void clear_deadline() {
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
  }
  void reset() {
    cancel_.store(false, std::memory_order_relaxed);
    clear_deadline();
  }

  // ---- worker side -------------------------------------------------------
  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  // True once cancelled or past the deadline. The common case (no deadline,
  // not cancelled) is two relaxed loads and no clock read, so polling every
  // MCU row costs nothing measurable.
  bool tripped() const {
    if (cancel_.load(std::memory_order_relaxed)) return true;
    std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d == kNoDeadline) return false;
    return to_ns(Clock::now()) >= d;
  }

 private:
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();
  static std::int64_t to_ns(Clock::time_point tp) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               tp.time_since_epoch())
        .count();
  }

  std::atomic<bool> cancel_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace lepton
