#include "lepton/context.h"

namespace lepton {

CodecContext::CodecContext(int workers)
    : pool_(workers < 0 ? 0 : static_cast<std::size_t>(workers)) {}

CodecContext::ScratchLease CodecContext::acquire_scratch() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!free_.empty()) {
      auto s = std::move(free_.back());
      free_.pop_back();
      return {this, std::move(s)};
    }
    ++total_blocks_;
  }
  // Allocate outside the lock: model construction is the expensive part and
  // only happens until the pool reaches peak concurrency.
  return {this, std::make_unique<CodecScratch>()};
}

void CodecContext::release(std::unique_ptr<CodecScratch> s) {
  std::lock_guard<std::mutex> lk(mu_);
  free_.push_back(std::move(s));
}

std::size_t CodecContext::scratch_blocks() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_blocks_;
}

Result CodecContext::encode(std::span<const std::uint8_t> jpeg,
                            const EncodeOptions& opts) {
  return encode_jpeg(jpeg, opts, *this);
}

util::ExitCode CodecContext::decode(std::span<const std::uint8_t> lep,
                                    ByteSink& sink, const DecodeOptions& opts,
                                    DecodeStats* stats) {
  return decode_lepton(lep, sink, opts, *this, stats);
}

Result CodecContext::decode(std::span<const std::uint8_t> lep,
                            const DecodeOptions& opts) {
  Result r;
  VectorSink sink;
  r.code = decode_lepton(lep, sink, opts, *this, nullptr);
  r.data = std::move(sink.data);
  return r;
}

CodecContext& default_context() {
  // Spawned once per process, before any untrusted input is parsed — the
  // §5.1 pre-SECCOMP ordering. Never destroyed before exit.
  static CodecContext ctx(8);
  return ctx;
}

}  // namespace lepton
