// 4-MiB chunk codec (§3, §3.4).
//
// The Dropbox back-end stores files as independent chunks of at most 4 MiB
// spread across many servers, and client software retrieves each chunk
// independently — so Lepton must decompress any substring of a JPEG file
// without access to the other substrings. Each chunk here is a standalone
// Lepton container embedding the JPEG header, the Huffman handover word for
// its position, and verbatim prepend bytes covering the partial MCU row at
// its start.
//
// Compression sees the whole file (the production system assembles the file
// before compressing later chunks, §3); only *decompression* is
// chunk-independent.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lepton/codec.h"

namespace lepton {

inline constexpr std::size_t kDefaultChunkSize = 4u << 20;  // 4 MiB (§3)

struct ChunkSetResult {
  util::ExitCode code = util::ExitCode::kSuccess;
  std::string message;
  std::vector<std::vector<std::uint8_t>> chunks;  // one container per chunk
  bool ok() const { return code == util::ExitCode::kSuccess; }
};

struct ChunkInfo {
  std::uint64_t offset = 0;      // byte range of the original file
  std::uint64_t length = 0;
  std::uint64_t total_size = 0;  // size of the whole original file
};

class ChunkCodec {
 public:
  // `ctx` (optional) pins the codec to a dedicated CodecContext; by default
  // chunks run on the process-wide context, sharing its pre-spawned pool
  // and scratch with the whole-file paths.
  explicit ChunkCodec(EncodeOptions opts = {},
                      std::size_t chunk_size = kDefaultChunkSize,
                      CodecContext* ctx = nullptr)
      : opts_(opts), chunk_size_(chunk_size), ctx_(ctx) {}

  // Splits the JPEG into fixed-size byte ranges and compresses each into an
  // independent container. Classified failure leaves `chunks` empty.
  // A wrapper over EncodeSession::finish_chunks (session.h).
  ChunkSetResult encode_chunks(std::span<const std::uint8_t> jpeg) const;

  // Decodes one chunk in isolation: returns exactly the original file bytes
  // [info.offset, info.offset + info.length). A wrapper over DecodeSession.
  // `stats` (optional) reports payload-consumption facts — a decode that
  // overran or under-consumed its arithmetic payload is suspect even when
  // the byte count came out right (§5.7), and callers like the store's
  // get() path act on it.
  Result decode_chunk(std::span<const std::uint8_t> chunk,
                      const DecodeOptions& opts = {},
                      DecodeStats* stats = nullptr) const;

  // Reads a chunk's placement without decoding it.
  static util::ExitCode chunk_info(std::span<const std::uint8_t> chunk,
                                   ChunkInfo* out);

  std::size_t chunk_size() const { return chunk_size_; }

 private:
  CodecContext& context() const;

  EncodeOptions opts_;
  std::size_t chunk_size_;
  CodecContext* ctx_;
};

}  // namespace lepton
