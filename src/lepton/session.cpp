#include "lepton/session.h"

#include "lepton/context.h"
#include "lepton/plan.h"

namespace lepton {

using util::ExitCode;

// ---- DecodeSession ----------------------------------------------------------

DecodeSession::DecodeSession(ByteSink& sink, const DecodeOptions& opts,
                             CodecContext* ctx)
    : sink_(sink),
      opts_(opts),
      ctx_(ctx != nullptr ? *ctx : default_context()),
      rc_(opts.run != nullptr ? opts.run : &own_rc_) {
  opts_.run = rc_;  // the core drivers read the control from the options
}

ExitCode DecodeSession::fail(ExitCode code, std::string msg) {
  error_ = code;
  message_ = std::move(msg);
  return code;
}

ExitCode DecodeSession::pump() {
  // The header becomes usable the moment its bytes have arrived: validate
  // it (hostile headers die before the payload has even been fetched) and
  // emit the verbatim JPEG-header prefix — time-to-first-byte does not
  // wait for the arithmetic payload.
  if (parser_.header_ready() && !validated_) {
    try {
      hdr_ = core::validate_container_decode(parser_.header());
    } catch (const jpegfmt::ParseError& e) {
      return fail(e.code(), e.what());
    } catch (const std::exception& e) {
      return fail(ExitCode::kImpossible, e.what());
    }
    validated_ = true;
    const auto& h = parser_.header();
    sink_.append({h.jpeg_header.data() + h.prefix_off, h.prefix_len});
  }
  if (!validated_ || parser_.complete()) return ExitCode::kSuccess;
  // Network-paced overlap: while later bytes are still in flight, decode —
  // serially, in emission order — any segment whose interleaved arithmetic
  // stream is already complete. When the whole container arrived in one
  // feed, this loop never runs (complete() above) and finish() decodes
  // everything on the pool instead, so the one-shot wrappers keep full
  // segment parallelism.
  while (next_seg_ < parser_.segment_count() &&
         parser_.segment_complete(next_seg_)) {
    core::OrderedEmitter em(sink_, 1);
    const auto& a = parser_.segment_arith(next_seg_);
    ExitCode code =
        core::decode_one_segment(parser_.header(), hdr_, {a.data(), a.size()},
                                 next_seg_, ctx_, em, 0, &flags_, rc_);
    if (code != ExitCode::kSuccess) {
      return fail(code, "segment decode failed");
    }
    ++next_seg_;
  }
  return ExitCode::kSuccess;
}

ExitCode DecodeSession::feed(std::span<const std::uint8_t> bytes) {
  if (error_ != ExitCode::kSuccess) return error_;
  // Rejected without touching the sticky state: a stray late slice must
  // not rewrite the outcome of a finished session.
  if (finished_) return ExitCode::kImpossible;
  if (rc_->tripped()) return fail(ExitCode::kTimeout, "session cancelled");
  // Nothing in this API throws on hostile input (lepton.h): allocation
  // failure from parser buffer growth classifies like any other internal
  // failure instead of escaping the never-throws contract.
  try {
    ExitCode code = parser_.feed(bytes);
    if (code != ExitCode::kSuccess) return fail(code, parser_.error_message());
    return pump();
  } catch (const jpegfmt::ParseError& e) {
    return fail(e.code(), e.what());
  } catch (const std::exception& e) {
    return fail(ExitCode::kImpossible, e.what());
  }
}

ExitCode DecodeSession::finish(DecodeStats* stats) {
  ExitCode code = finish_impl();
  // Consumption facts are reported on every path — including failures —
  // so truncation diagnostics keep what the eagerly decoded segments
  // learned, and repeated finish() calls answer identically.
  flags_.fill(stats);
  return code;
}

ExitCode DecodeSession::finish_impl() {
  if (finished_) return error_;
  finished_ = true;
  if (error_ != ExitCode::kSuccess) return error_;
  if (rc_->tripped()) return fail(ExitCode::kTimeout, "session cancelled");
  if (!parser_.complete()) {
    // The connection ended before the bytes the container's own header
    // promised — the streaming counterpart of a truncated buffer.
    return fail(ExitCode::kShortRead, "input ended mid-container");
  }
  try {
    ExitCode code = core::decode_segment_range(parser_.header(), hdr_,
                                               parser_.arith(), next_seg_,
                                               sink_, opts_, ctx_, &flags_);
    if (code != ExitCode::kSuccess) {
      return fail(code, "segment decode failed");
    }
    const auto& h = parser_.header();
    sink_.append({h.suffix.data(), h.suffix.size()});
  } catch (const jpegfmt::ParseError& e) {
    return fail(e.code(), e.what());
  } catch (const std::exception& e) {
    return fail(ExitCode::kImpossible, e.what());
  }
  return ExitCode::kSuccess;
}

// ---- EncodeSession ----------------------------------------------------------

EncodeSession::EncodeSession(const EncodeOptions& opts, CodecContext* ctx)
    : opts_(opts),
      ctx_(ctx != nullptr ? *ctx : default_context()),
      rc_(opts.run != nullptr ? opts.run : &own_rc_) {
  opts_.run = rc_;
}

ExitCode EncodeSession::fail(ExitCode code, std::string msg) {
  error_ = code;
  message_ = std::move(msg);
  return code;
}

bool EncodeSession::header_seen() const {
  return probe_.status() == jpegfmt::HeaderProbeStatus::kComplete;
}

ExitCode EncodeSession::feed(std::span<const std::uint8_t> bytes) {
  if (error_ != ExitCode::kSuccess) return error_;
  // Rejected without touching the sticky state (see DecodeSession::feed).
  if (finished_) return ExitCode::kImpossible;
  if (rc_->tripped()) return fail(ExitCode::kTimeout, "session cancelled");
  if (bytes.empty()) return ExitCode::kSuccess;
  try {
    if (buffer_.empty() && deferred_.empty()) {
      // Single-feed fast path (every one-shot wrapper): borrow the
      // caller's span instead of copying a possibly multi-MB file. The
      // copy is deferred to the next feed() call, per the header contract.
      deferred_ = bytes;
    } else {
      if (!deferred_.empty()) {
        buffer_.assign(deferred_.begin(), deferred_.end());
        deferred_ = {};
      }
      buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
    }
    if (probe_.update(pending_input()) ==
        jpegfmt::HeaderProbeStatus::kRejected) {
      return fail(probe_.reject_code(), probe_.reject_reason());
    }
  } catch (const std::exception& e) {
    return fail(ExitCode::kImpossible, e.what());
  }
  return ExitCode::kSuccess;
}

std::span<const std::uint8_t> EncodeSession::pending_input() const {
  return deferred_.empty()
             ? std::span<const std::uint8_t>{buffer_.data(), buffer_.size()}
             : deferred_;
}

ExitCode EncodeSession::prepare() {
  if (prepared_) return ExitCode::kSuccess;
  try {
    jf_ = jpegfmt::parse_jpeg(pending_input());
    dec_ = jpegfmt::decode_scan(jf_);
  } catch (const jpegfmt::ParseError& e) {
    return fail(e.code(), e.what());
  } catch (const std::exception& e) {
    return fail(ExitCode::kImpossible, e.what());
  }
  prepared_ = true;
  return ExitCode::kSuccess;
}

ExitCode EncodeSession::finish(ByteSink& sink) {
  if (finished_) return error_;
  finished_ = true;
  if (error_ != ExitCode::kSuccess) return error_;
  if (rc_->tripped()) return fail(ExitCode::kTimeout, "session cancelled");
  if (ExitCode c = prepare(); c != ExitCode::kSuccess) return c;
  try {
    auto plan = core::plan_whole_file(jf_, dec_, opts_);
    auto data = core::encode_container(jf_, dec_, plan, opts_, nullptr, ctx_);
    sink.append({data.data(), data.size()});
  } catch (const jpegfmt::ParseError& e) {
    return fail(e.code(), e.what());
  } catch (const std::exception& e) {
    return fail(ExitCode::kImpossible, e.what());
  }
  return ExitCode::kSuccess;
}

ExitCode EncodeSession::finish_chunks(
    std::size_t chunk_size, std::vector<std::vector<std::uint8_t>>* chunks) {
  if (finished_) return error_;
  finished_ = true;
  if (error_ != ExitCode::kSuccess) return error_;
  if (rc_->tripped()) return fail(ExitCode::kTimeout, "session cancelled");
  if (ExitCode c = prepare(); c != ExitCode::kSuccess) return c;
  try {
    std::uint64_t size = pending_input().size();
    for (std::uint64_t off = 0; off < size; off += chunk_size) {
      std::uint64_t end = std::min<std::uint64_t>(off + chunk_size, size);
      auto plan =
          core::plan_byte_range(jf_, dec_, off, end, opts_, /*is_chunk=*/true);
      chunks->push_back(
          core::encode_container(jf_, dec_, plan, opts_, nullptr, ctx_));
    }
  } catch (const jpegfmt::ParseError& e) {
    chunks->clear();
    return fail(e.code(), e.what());
  } catch (const std::exception& e) {
    chunks->clear();
    return fail(ExitCode::kImpossible, e.what());
  }
  return ExitCode::kSuccess;
}

}  // namespace lepton
