#include "lepton/store.h"

#include <sys/stat.h>

#include <chrono>

#include "lepton/context.h"
#include "util/md5.h"
#include "util/zlib_util.h"

namespace lepton {
namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void TransparentStore::set_shutoff_file(std::string path) {
  shutoff_file_ = std::move(path);
  shutoff_checked_ns_.store(kNeverChecked, std::memory_order_release);
}

bool TransparentStore::shutoff_active() const {
  if (shutoff_.load(std::memory_order_relaxed)) return true;
  if (shutoff_file_.empty()) return false;
  std::int64_t now = steady_now_ns();
  std::int64_t last = shutoff_checked_ns_.load(std::memory_order_acquire);
  if (last != kNeverChecked && now - last < kShutoffTtlNs) {
    return shutoff_cached_.load(std::memory_order_acquire);
  }
  return recheck_shutoff();
}

bool TransparentStore::recheck_shutoff() const {
  if (shutoff_.load(std::memory_order_relaxed)) return true;
  if (shutoff_file_.empty()) return false;
  struct stat st{};
  bool on = ::stat(shutoff_file_.c_str(), &st) == 0;
  // Publish answer before timestamp (store.h ordering contract): a put()
  // that sees the fresh timestamp sees the matching answer.
  shutoff_cached_.store(on, std::memory_order_release);
  shutoff_checked_ns_.store(steady_now_ns(), std::memory_order_release);
  return on;
}

StoredObject TransparentStore::put(std::span<const std::uint8_t> file,
                                   PutStats* stats) const {
  StoredObject obj;
  PutStats local;
  local.bytes_in = file.size();

  if (!shutoff_active()) {
    Result enc = encode_jpeg(file, opts_);
    local.lepton_code = enc.code;
    if (enc.ok()) {
      // md5 of the compressed buffer *before* the round-trip test (§5.7):
      // if memory is corrupted after this point, get() will notice.
      std::string md5 = util::Md5::hex_digest({enc.data.data(),
                                               enc.data.size()});
      VectorSink rt_sink;
      DecodeStats rt_stats;
      util::ExitCode rt_code =
          decode_lepton({enc.data.data(), enc.data.size()}, rt_sink, {},
                        default_context(), &rt_stats);
      // A decode that overran or under-consumed its payload is suspect even
      // when the bytes compare equal — same posture as the qualification
      // gate (verify.cpp): consumption facts are part of the round trip.
      local.roundtrip_ok =
          rt_code == util::ExitCode::kSuccess && rt_stats.payload_exhausted &&
          rt_sink.data.size() == file.size() &&
          std::equal(rt_sink.data.begin(), rt_sink.data.end(), file.begin());
      if (local.roundtrip_ok) {
        obj.kind = StorageKind::kLepton;
        obj.payload = std::move(enc.data);
        obj.md5_hex = std::move(md5);
        local.bytes_out = obj.payload.size();
        if (stats != nullptr) *stats = local;
        return obj;
      }
      // A compressor that cannot reproduce its input must not admit the
      // file (§5.7); reclassify and fall through to Deflate.
      local.lepton_code = util::ExitCode::kRoundtripFailed;
    }
  } else {
    local.lepton_code = util::ExitCode::kServerShutdown;
  }

  obj.kind = StorageKind::kDeflate;
  obj.payload = util::zlib_compress(file, 6);
  obj.md5_hex = util::Md5::hex_digest({obj.payload.data(),
                                       obj.payload.size()});
  local.bytes_out = obj.payload.size();
  if (stats != nullptr) *stats = local;
  return obj;
}

StoredObject TransparentStore::put_passthrough(
    std::span<const std::uint8_t> file, PutStats* stats) const {
  StoredObject obj;
  obj.kind = StorageKind::kPassthrough;
  obj.payload.assign(file.begin(), file.end());
  obj.md5_hex = util::Md5::hex_digest({obj.payload.data(),
                                       obj.payload.size()});
  if (stats != nullptr) {
    PutStats local;
    local.bytes_in = file.size();
    local.bytes_out = obj.payload.size();
    local.roundtrip_ok = true;  // trivially: the payload *is* the original
    *stats = local;
  }
  return obj;
}

bool TransparentStore::admit_converted(std::span<const std::uint8_t> original,
                                       std::vector<std::uint8_t> container,
                                       StoredObject* out,
                                       PutStats* stats) const {
  PutStats local;
  local.bytes_in = original.size();
  // md5 before the round-trip test, same §5.7 ordering as put(): corruption
  // between this check and the write is what get() then catches.
  std::string md5 = util::Md5::hex_digest({container.data(),
                                           container.size()});
  VectorSink rt_sink;
  DecodeStats rt_stats;
  util::ExitCode rt_code =
      decode_lepton({container.data(), container.size()}, rt_sink, {},
                    default_context(), &rt_stats);
  local.lepton_code = rt_code;
  local.roundtrip_ok =
      rt_code == util::ExitCode::kSuccess && rt_stats.payload_exhausted &&
      rt_sink.data.size() == original.size() &&
      std::equal(rt_sink.data.begin(), rt_sink.data.end(), original.begin());
  if (!local.roundtrip_ok) {
    local.lepton_code = util::ExitCode::kRoundtripFailed;
    if (stats != nullptr) *stats = local;
    return false;
  }
  out->kind = StorageKind::kLepton;
  out->payload = std::move(container);
  out->md5_hex = std::move(md5);
  local.bytes_out = out->payload.size();
  if (stats != nullptr) *stats = local;
  return true;
}

Result TransparentStore::get(const StoredObject& obj,
                             DecodeStats* decode_stats) const {
  Result r;
  if (util::Md5::hex_digest({obj.payload.data(), obj.payload.size()}) !=
      obj.md5_hex) {
    r.code = util::ExitCode::kImpossible;
    r.message = "stored payload md5 mismatch";
    return r;
  }
  if (obj.kind == StorageKind::kLepton) {
    VectorSink sink;
    DecodeStats stats;
    r.code = decode_lepton({obj.payload.data(), obj.payload.size()}, sink, {},
                           default_context(), &stats);
    if (decode_stats != nullptr) *decode_stats = stats;
    if (r.code == util::ExitCode::kSuccess && !stats.payload_exhausted) {
      // The stream decoded "successfully" but consumed more or fewer bytes
      // than it contains — truncated or padded payload that happened to
      // produce the right output length. put() admitted an exactly-consumed
      // stream, so this is corruption; do not hand the bytes out silently.
      r.code = util::ExitCode::kShortRead;
      r.message = "payload consumption mismatch on stored object";
      return r;
    }
    if (r.code == util::ExitCode::kSuccess) r.data = std::move(sink.data);
    return r;
  }
  if (obj.kind == StorageKind::kPassthrough) {
    // The md5 check above is the whole integrity story: the payload is the
    // original file.
    r.data = obj.payload;
    return r;
  }
  if (!util::zlib_decompress({obj.payload.data(), obj.payload.size()},
                             r.data)) {
    r.code = util::ExitCode::kNotAnImage;
    r.message = "corrupt deflate payload";
  }
  return r;
}

}  // namespace lepton
