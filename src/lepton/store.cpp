#include "lepton/store.h"

#include <sys/stat.h>

#include "util/md5.h"
#include "util/zlib_util.h"

namespace lepton {

bool TransparentStore::shutoff_active() const {
  if (shutoff_) return true;
  if (shutoff_file_.empty()) return false;
  struct stat st{};
  return ::stat(shutoff_file_.c_str(), &st) == 0;
}

StoredObject TransparentStore::put(std::span<const std::uint8_t> file,
                                   PutStats* stats) const {
  StoredObject obj;
  PutStats local;
  local.bytes_in = file.size();

  if (!shutoff_active()) {
    Result enc = encode_jpeg(file, opts_);
    local.lepton_code = enc.code;
    if (enc.ok()) {
      // md5 of the compressed buffer *before* the round-trip test (§5.7):
      // if memory is corrupted after this point, get() will notice.
      std::string md5 = util::Md5::hex_digest({enc.data.data(),
                                               enc.data.size()});
      Result rt = decode_lepton({enc.data.data(), enc.data.size()});
      local.roundtrip_ok =
          rt.ok() && rt.data.size() == file.size() &&
          std::equal(rt.data.begin(), rt.data.end(), file.begin());
      if (local.roundtrip_ok) {
        obj.kind = StorageKind::kLepton;
        obj.payload = std::move(enc.data);
        obj.md5_hex = std::move(md5);
        local.bytes_out = obj.payload.size();
        if (stats != nullptr) *stats = local;
        return obj;
      }
      // A compressor that cannot reproduce its input must not admit the
      // file (§5.7); reclassify and fall through to Deflate.
      local.lepton_code = util::ExitCode::kRoundtripFailed;
    }
  } else {
    local.lepton_code = util::ExitCode::kServerShutdown;
  }

  obj.kind = StorageKind::kDeflate;
  obj.payload = util::zlib_compress(file, 6);
  obj.md5_hex = util::Md5::hex_digest({obj.payload.data(),
                                       obj.payload.size()});
  local.bytes_out = obj.payload.size();
  if (stats != nullptr) *stats = local;
  return obj;
}

Result TransparentStore::get(const StoredObject& obj) const {
  Result r;
  if (util::Md5::hex_digest({obj.payload.data(), obj.payload.size()}) !=
      obj.md5_hex) {
    r.code = util::ExitCode::kImpossible;
    r.message = "stored payload md5 mismatch";
    return r;
  }
  if (obj.kind == StorageKind::kLepton) {
    return decode_lepton({obj.payload.data(), obj.payload.size()});
  }
  if (!util::zlib_decompress({obj.payload.data(), obj.payload.size()},
                             r.data)) {
    r.code = util::ExitCode::kNotAnImage;
    r.message = "corrupt deflate payload";
  }
  return r;
}

}  // namespace lepton
