// Qualification and determinism machinery (§5.2, §5.7).
//
// Before any Lepton version reaches production it is "qualified": run over
// a large corpus, every output decompressed with the same binary and again
// with an independently built decoder, results compared byte-for-byte. The
// paper's fail-safe caught a nondeterministic buffer overrun after a few
// million images this way. We reproduce the harness: the second decode uses
// a different execution schedule (serial vs parallel) as the stand-in for
// "a different compiler's binary", plus an optional fault-injection hook so
// the tests can prove the detector actually detects.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "lepton/codec.h"

namespace lepton {

struct QualificationReport {
  std::uint64_t files = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;   // classified, by design
  std::uint64_t mismatches = 0; // decode(encode(x)) != x — must stay 0
  std::uint64_t nondeterminism = 0;  // two decodes disagreed — pages a human
  std::array<std::uint64_t,
             static_cast<std::size_t>(util::ExitCode::kCount)> by_code{};
  std::vector<std::string> alerts;

  bool clean() const { return mismatches == 0 && nondeterminism == 0; }
};

class QualificationRunner {
 public:
  explicit QualificationRunner(EncodeOptions opts = {}) : opts_(opts) {}

  // Runs the full qualification protocol over one file and folds the
  // outcome into the report.
  void run_file(std::span<const std::uint8_t> file, QualificationReport* rep);

  // Fault injection for testing the detector itself: called on the second
  // decode's output buffer before comparison.
  void set_second_decode_mutator(
      std::function<void(std::vector<std::uint8_t>&)> fn) {
    mutator_ = std::move(fn);
  }

 private:
  EncodeOptions opts_;
  std::function<void(std::vector<std::uint8_t>&)> mutator_;
};

}  // namespace lepton
