// Long-lived codec execution context (§5.1, §5.4).
//
// Production Lepton runs as a daemon: worker threads are spawned once —
// before SECCOMP forbids clone() — and every model-sized buffer is
// allocated once and reused for the life of the process. CodecContext is
// that daemon's state made explicit: it owns a persistent util::ThreadPool
// for segment fan-out plus a pool of per-worker scratch blocks, each
// holding a ProbabilityModel (reset by memset, never reallocated), a
// capacity-reserved arithmetic output buffer, a Huffman row re-encode
// buffer, and the two-row context rings. Repeated encode/decode calls
// through one context perform no model-sized heap allocations after
// warm-up; a test asserts this via the tracked_memory counters.
//
// The free functions encode_jpeg/decode_lepton route through a process-wide
// default context, so casual callers get the reuse for free; servers that
// want isolation (or several pools) construct their own.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "lepton/codec.h"
#include "lepton/run_control.h"
#include "model/block_codec.h"
#include "model/model.h"
#include "util/thread_pool.h"
#include "util/tracked_memory.h"

namespace lepton {

// One worker's reusable working set. Not thread-safe; a scratch block is
// leased to exactly one segment job at a time.
//
// Every model-sized resource comes in per-lane families (format v3's
// interleaved coder lanes each need their own model, context rings, plane,
// and output buffer); a v2/single-lane segment is simply lane 0. The
// families grow once to the largest lane count seen and are reused — the
// no-allocation-after-warm-up property is per lane count.
class CodecScratch {
 public:
  CodecScratch() : model_(1), used_(1, 0), rings_(1), planes_(1) {}

  // Grows every per-lane family to `n` lanes. Call before taking any lane
  // reference: growth can move the underlying storage.
  void ensure_lanes(std::size_t n) {
    if (model_.size() < n) {
      model_.resize(n);
      used_.resize(n, 0);
      rings_.resize(n);
      planes_.resize(n);
    }
    if (lane_arith_.size() < n) lane_arith_.resize(n);
  }

  // Lane `k`'s probability model, returned at the 50-50 prior. The first
  // hand-out after construction skips the reset (construction zeroed it).
  model::ProbabilityModel& lane_model(std::size_t k) {
    if (used_[k] != 0) model_[k].reset();
    used_[k] = 1;
    return model_[k];
  }
  model::ProbabilityModel& fresh_model() { return lane_model(0); }

  // Per-segment arithmetic output (encode) — cleared by BoolEncoder, grows
  // once to the largest segment seen. Multi-lane encodes concatenate their
  // lane streams into this buffer for serialization.
  std::vector<std::uint8_t>& arith_buffer() { return arith_buf_; }

  // Lane `k`'s own arithmetic output (multi-lane encode).
  std::vector<std::uint8_t>& lane_arith(std::size_t k) {
    return lane_arith_[k];
  }

  // Per-row Huffman re-encode output (decode).
  std::vector<std::uint8_t>& row_buffer() { return row_buf_; }

  // Context-row rings for SegmentCodec, per lane.
  model::SegmentRings& lane_rings(std::size_t k) { return rings_[k]; }
  model::SegmentRings& rings() { return rings_[0]; }

  // Encode-side context-plane scratch (rolling magnitude/pixel rows plus
  // the per-MCU-row bucket plane), re-shaped per segment, grown once.
  model::ContextPlane& lane_plane(std::size_t k) { return planes_[k]; }
  model::ContextPlane& plane() { return planes_[0]; }

 private:
  // Allocated through the tracker: the per-worker (now per-lane) model
  // copies are what the Figure 3 memory accounting counts (§4.2).
  util::tracked_vector<model::ProbabilityModel> model_;
  std::vector<std::uint8_t> used_;  // lane model handed out since ctor?
  std::vector<std::uint8_t> arith_buf_;
  std::vector<std::vector<std::uint8_t>> lane_arith_;
  std::vector<std::uint8_t> row_buf_;
  std::vector<model::SegmentRings> rings_;
  std::vector<model::ContextPlane> planes_;
};

class CodecContext {
 public:
  // `workers` is the pre-spawned thread count (the paper's production
  // daemon uses the §5.4 maximum of 8; the calling thread participates in
  // batches, so `workers` == 0 still works, serially).
  explicit CodecContext(int workers = 8);

  CodecContext(const CodecContext&) = delete;
  CodecContext& operator=(const CodecContext&) = delete;

  util::ThreadPool& pool() { return pool_; }

  // Segment fan-out bound to a session's RunControl: runs fn(i, tripped)
  // for i in [0, n) on the pool (the calling thread participates, as in
  // ThreadPool::parallel_run). `tripped` is the control's state sampled at
  // dispatch — a segment of a cancelled/expired session observes it before
  // doing any work and fails fast as kTimeout, so one tripped session stops
  // scheduling real work without affecting other sessions sharing this
  // context. `rc` may be null (never tripped). When `parallel` is false the
  // same dispatch runs as a serial loop on the calling thread.
  template <typename Fn>
  void parallel_run(int n, bool parallel, const RunControl* rc, Fn&& fn) {
    auto dispatch = [rc, &fn](int i) {
      fn(i, rc != nullptr && rc->tripped());
    };
    if (parallel) {
      pool_.parallel_run(n, dispatch);
    } else {
      for (int i = 0; i < n; ++i) dispatch(i);
    }
  }

  // RAII lease of a scratch block; returns it to the context on destruction.
  class ScratchLease {
   public:
    ScratchLease() = default;
    ScratchLease(CodecContext* ctx, std::unique_ptr<CodecScratch> s)
        : ctx_(ctx), s_(std::move(s)) {}
    ScratchLease(ScratchLease&&) = default;
    ScratchLease& operator=(ScratchLease&&) = default;
    ~ScratchLease() {
      if (ctx_ != nullptr && s_ != nullptr) ctx_->release(std::move(s_));
    }
    CodecScratch* operator->() { return s_.get(); }
    CodecScratch& operator*() { return *s_; }

   private:
    CodecContext* ctx_ = nullptr;
    std::unique_ptr<CodecScratch> s_;
  };

  // Hands out a free scratch block, allocating a new one only when every
  // existing block is leased (so the pool converges on the peak segment
  // concurrency and stays there).
  ScratchLease acquire_scratch();

  // How many scratch blocks exist (leased + free); test/bench visibility
  // into the warm-up behaviour.
  std::size_t scratch_blocks() const;

  // Convenience entry points bound to this context.
  Result encode(std::span<const std::uint8_t> jpeg,
                const EncodeOptions& opts = {});
  util::ExitCode decode(std::span<const std::uint8_t> lep, ByteSink& sink,
                        const DecodeOptions& opts = {},
                        DecodeStats* stats = nullptr);
  Result decode(std::span<const std::uint8_t> lep,
                const DecodeOptions& opts = {});

 private:
  void release(std::unique_ptr<CodecScratch> s);

  util::ThreadPool pool_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<CodecScratch>> free_;
  std::size_t total_blocks_ = 0;
};

// The process-wide context behind the free encode_jpeg/decode_lepton
// functions. Created on first use, lives for the process (the daemon
// lifetime of §5.1).
CodecContext& default_context();

}  // namespace lepton
