#include "lepton/codec.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string_view>

#include "coding/lane_set.h"
#include "jpeg/parser.h"
#include "jpeg/scan_decoder.h"
#include "jpeg/scan_encoder.h"
#include "lepton/context.h"
#include "lepton/plan.h"
#include "lepton/session.h"
#include "model/block_codec.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"
#include "util/tracked_memory.h"

namespace lepton {
namespace {

using util::ExitCode;

// Decode working-set estimate for the §6.2 ">24 MiB mem decode" gate: one
// model copy plus two context rows per component, per coder lane (a v2
// segment is one lane; a v3 segment declares its count in the header, so
// `lane_units` is the container-wide lane total).
std::size_t decode_working_set(const jpegfmt::JpegFile& hdr,
                               std::size_t lane_units) {
  std::size_t rings = 0;
  for (const auto& comp : hdr.frame.comps) {
    rings += static_cast<std::size_t>(comp.width_blocks) * 2 *
             sizeof(model::BlockState);
  }
  return lane_units * (sizeof(model::ProbabilityModel) + rings);
}

// Coder lanes the encoder should aim for, before the per-segment clamp to
// the MCU-row count. LEPTON_FORMAT=v2 pins the v2 format outright (the CI
// back-compat gate runs the whole suite under it); LEPTON_LANES supplies a
// count when the option is 0 (defaulted).
int requested_coder_lanes(const EncodeOptions& opts) {
  if (const char* pin = std::getenv("LEPTON_FORMAT");
      pin != nullptr && std::string_view(pin) == "v2") {
    return 1;
  }
  int lanes = opts.coder_lanes;
  if (lanes == 0) {
    if (const char* env = std::getenv("LEPTON_LANES"); env != nullptr) {
      lanes = std::atoi(env);
    }
  }
  if (lanes <= 0) lanes = core::kDefaultCoderLanes;
  return std::min(lanes, static_cast<int>(core::kMaxLanes));
}

}  // namespace

int threads_for_size(std::size_t bytes, int max_threads) {
  int t;
  if (bytes < 128u << 10) {
    t = 1;
  } else if (bytes < 512u << 10) {
    t = 2;
  } else if (bytes < 3u << 20) {
    t = 4;
  } else {
    t = 8;
  }
  return t < max_threads ? t : (max_threads < 1 ? 1 : max_threads);
}

namespace core {

std::vector<std::uint8_t> encode_container(const jpegfmt::JpegFile& jf,
                                           const jpegfmt::ScanDecodeResult& dec,
                                           const ContainerPlan& plan,
                                           const EncodeOptions& opts,
                                           model::SectionTally* tally,
                                           CodecContext& ctx) {
  ContainerHeader h;
  h.is_chunk = plan.is_chunk;
  h.file_total_size = plan.file_total_size;
  h.chunk_off = plan.chunk_off;
  h.chunk_len = plan.chunk_len;
  h.scan_begin_abs = jf.scan_begin;
  h.pad_bit = dec.pad_bit;
  h.rst_count = dec.rst_count;
  h.model = opts.model;
  h.jpeg_header.assign(jf.header_bytes().begin(), jf.header_bytes().end());
  h.prefix_off = plan.prefix_off;
  h.prefix_len = plan.prefix_len;
  h.suffix = plan.suffix;
  h.segments = plan.segments;

  // Format selection: more than one coder lane requires the v3 container
  // (per-segment lane tables); a single lane is exactly the v2 format.
  const int req_lanes = requested_coder_lanes(opts);
  h.version = req_lanes > 1 ? kFormatVersionV3 : kFormatVersion;

  const RunControl* rc = opts.run;
  const std::size_t nseg = plan.segments.size();
  // One scratch lease per segment, held until the container is serialized:
  // each segment's arithmetic output lives in its scratch buffer and is
  // passed to the serializer as a view.
  std::vector<CodecContext::ScratchLease> leases;
  leases.reserve(nseg);
  for (std::size_t i = 0; i < nseg; ++i) {
    leases.push_back(ctx.acquire_scratch());
  }
  std::vector<std::span<const std::uint8_t>> arith(nseg);
  std::atomic<int> error_code{-1};
  auto encode_segment = [&](int i, bool tripped) {
    try {
      if (tripped) {
        // The session's deadline/cancel tripped before this segment started
        // (sampled at dispatch in CodecContext::parallel_run): do no work.
        throw jpegfmt::ParseError(ExitCode::kTimeout,
                                  "session cancelled before segment start");
      }
      const auto& seg = plan.segments[static_cast<std::size_t>(i)];
      CodecScratch& scratch = *leases[static_cast<std::size_t>(i)];
      const std::uint32_t rows = seg.end_row - seg.start_row;
      // Per-segment clamp: a lane with no rows would emit a flush-only
      // stream for nothing. A clamped-to-1 segment inside a v3 container
      // is fine — the serializer writes its trivial lane table.
      const std::size_t lanes =
          std::max<std::size_t>(1, std::min<std::size_t>(
                                       static_cast<std::size_t>(req_lanes),
                                       rows));
      if (lanes > 1) {
        scratch.ensure_lanes(lanes);
        std::vector<coding::BoolEncoder> encs;
        std::vector<model::SegmentCodec<coding::EncodeOps>> codecs;
        encs.reserve(lanes);
        codecs.reserve(lanes);
        coding::LaneSet<model::SegmentCodec<coding::EncodeOps>,
                        jpegfmt::CoeffImage>
            set;
        for (std::size_t k = 0; k < lanes; ++k) {
          encs.emplace_back(&scratch.lane_arith(k));
        }
        for (std::size_t k = 0; k < lanes; ++k) {
          codecs.emplace_back(coding::EncodeOps{&encs[k]},
                              scratch.lane_model(k), jf, opts.model,
                              &scratch.lane_rings(k));
          codecs[k].set_row_map(
              static_cast<int>(seg.start_row) + static_cast<int>(k),
              static_cast<int>(lanes));
          if (opts.use_context_plane) {
            codecs[k].attach_plane(&scratch.lane_plane(k));
          }
          if (tally != nullptr && nseg == 1) codecs[k].set_tally(tally);
          set.add(&codecs[k]);
        }
        const int mcus_x = jf.frame.mcus_x;
        for (std::uint32_t base = 0; base < rows;
             base += static_cast<std::uint32_t>(lanes)) {
          if (rc != nullptr && rc->tripped()) {
            throw jpegfmt::ParseError(ExitCode::kTimeout,
                                      "session deadline tripped mid-encode");
          }
          set.code_row_group(static_cast<int>(base / lanes),
                             std::min<std::size_t>(lanes, rows - base),
                             mcus_x, &dec.coeffs);
        }
        // Concatenate the lane streams into the segment's output buffer
        // and record the per-lane split for the v3 lane table.
        std::vector<std::uint8_t>& out = scratch.arith_buffer();
        out.clear();
        auto& lane_lens = h.segments[static_cast<std::size_t>(i)].lane_lens;
        lane_lens.resize(lanes);
        for (std::size_t k = 0; k < lanes; ++k) {
          encs[k].finish_into_buffer();
          const std::vector<std::uint8_t>& lane = scratch.lane_arith(k);
          lane_lens[k] = static_cast<std::uint32_t>(lane.size());
          out.insert(out.end(), lane.begin(), lane.end());
        }
      } else {
        coding::BoolEncoder enc(&scratch.arith_buffer());
        model::SegmentCodec<coding::EncodeOps> codec(coding::EncodeOps{&enc},
                                                     scratch.fresh_model(), jf,
                                                     opts.model,
                                                     &scratch.rings());
        if (opts.use_context_plane) codec.attach_plane(&scratch.plane());
        if (tally != nullptr && nseg == 1) {
          codec.set_tally(tally);
        }
        for (std::uint32_t row = seg.start_row; row < seg.end_row; ++row) {
          if (rc != nullptr && rc->tripped()) {
            throw jpegfmt::ParseError(ExitCode::kTimeout,
                                      "session deadline tripped mid-encode");
          }
          codec.code_mcu_row(static_cast<int>(row), &dec.coeffs);
        }
        enc.finish_into_buffer();
      }
      arith[static_cast<std::size_t>(i)] = {scratch.arith_buffer().data(),
                                            scratch.arith_buffer().size()};
    } catch (const jpegfmt::ParseError& e) {
      error_code.store(static_cast<int>(e.code()));
    } catch (...) {
      error_code.store(static_cast<int>(ExitCode::kImpossible));
    }
  };
  ctx.parallel_run(static_cast<int>(nseg), opts.run_parallel, rc,
                   encode_segment);
  if (error_code.load() >= 0) {
    throw jpegfmt::ParseError(static_cast<ExitCode>(error_code.load()),
                              "segment encode failed");
  }
  return serialize_container(h, arith);
}

jpegfmt::JpegFile validate_container_decode(const ContainerHeader& h) {
  jpegfmt::JpegFile hdr = jpegfmt::parse_jpeg_header(
      {h.jpeg_header.data(), h.jpeg_header.size()});

  // Structural validation against the (attacker-controlled) header.
  for (const auto& seg : h.segments) {
    if (seg.end_row > static_cast<std::uint32_t>(hdr.frame.mcus_y)) {
      throw jpegfmt::ParseError(ExitCode::kNotAnImage, "segment row range");
    }
  }
  const std::size_t nseg = h.segments.size();
  // §6.2 ">24 MiB mem decode" gate. The per-thread budget applies to the
  // §5.4 maximum of 16 threads at most — a hostile header cannot scale the
  // allowance (and with it the scratch it makes us allocate) by declaring
  // thousands of segments. The working set counts every coder lane (v3
  // segments carry one model + ring set per lane; the parser bounds the
  // count at kMaxLanes), while the allowance still counts segments —
  // declaring lanes buys an attacker no extra budget.
  std::size_t lane_units = 0;
  for (const auto& seg : h.segments) {
    lane_units += seg.lane_lens.empty() ? 1 : seg.lane_lens.size();
  }
  if (lane_units == 0) lane_units = 1;
  // Failpoint "codec.mem_gate": a fired schedule shrinks the budget to
  // zero — every allocation-gated decode then classifies kMemLimitDecode,
  // exercising the §6.2 refusal without a hostile container.
  const bool gate_tripped =
      util::failpoint::armed() &&
      util::failpoint::hit("codec.mem_gate").fired();
  if (gate_tripped ||
      decode_working_set(hdr, lane_units) >
          (24ull << 20) * (nseg < 16 ? (nseg == 0 ? 1 : nseg) : 16)) {
    throw jpegfmt::ParseError(ExitCode::kMemLimitDecode,
                              "decode working set exceeds budget");
  }
  return hdr;
}

util::ExitCode decode_one_segment(const ContainerHeader& h,
                                  const jpegfmt::JpegFile& hdr,
                                  std::span<const std::uint8_t> arith,
                                  std::size_t i, CodecContext& ctx,
                                  OrderedEmitter& em, std::size_t local,
                                  DecodeRunFlags* flags,
                                  const RunControl* rc) {
  ExitCode code = ExitCode::kSuccess;
  try {
    const auto& seg = h.segments[i];
    // Leased inside the task (unlike encode, which must keep every
    // segment's output buffer alive until serialization): live scratch
    // is bounded by pool concurrency, not by the attacker-controlled
    // segment count.
    CodecContext::ScratchLease lease = ctx.acquire_scratch();
    CodecScratch& scratch = *lease;
    if (!seg.prepend.empty()) {
      em.submit(local, {seg.prepend.data(), seg.prepend.size()});
    }
    jpegfmt::HuffmanHandover ho = seg.handover;
    std::uint64_t produced = 0;
    jpegfmt::ScanEncodeParams p;
    p.pad_bit = h.pad_bit;
    p.rst_count_limit = h.rst_count;
    p.final_segment = false;
    std::vector<std::uint8_t>& row_bytes = scratch.row_buffer();
    const std::size_t lanes = seg.lane_lens.size();
    if (lanes > 1) {
      // Format v3: the payload is the concatenation of `lanes` independent
      // coder streams (the parser enforced sum(lane_lens) == payload size).
      // Lane k arithmetic-decodes source rows start_row + k, + k + lanes,
      // ... under its own model/rings, stepping column-interleaved with
      // the other lanes; each decoded row group is then Huffman-re-encoded
      // in image order.
      scratch.ensure_lanes(lanes);
      std::vector<coding::BoolDecoder> bds;
      std::vector<model::SegmentCodec<coding::DecodeOps>> codecs;
      bds.reserve(lanes);
      codecs.reserve(lanes);
      coding::LaneSet<model::SegmentCodec<coding::DecodeOps>,
                      jpegfmt::CoeffImage>
          set;
      std::size_t off = 0;
      for (std::size_t k = 0; k < lanes; ++k) {
        bds.emplace_back(arith.subspan(off, seg.lane_lens[k]));
        off += seg.lane_lens[k];
      }
      for (std::size_t k = 0; k < lanes; ++k) {
        codecs.emplace_back(coding::DecodeOps{&bds[k]}, scratch.lane_model(k),
                            hdr, h.model, &scratch.lane_rings(k));
        codecs[k].set_row_map(
            static_cast<int>(seg.start_row) + static_cast<int>(k),
            static_cast<int>(lanes));
        set.add(&codecs[k]);
      }
      const std::uint32_t rows = seg.end_row - seg.start_row;
      auto record = [&flags, &bds, lanes] {
        if (flags == nullptr) return;
        for (std::size_t k = 0; k < lanes; ++k) {
          if (bds[k].overran()) {
            flags->overran.store(true);
            flags->lanes_overrun.fetch_add(1);
          }
          if (!bds[k].exhausted()) flags->leftover.store(true);
          flags->payload_bytes.fetch_add(bds[k].available());
          flags->payload_consumed.fetch_add(bds[k].consumed());
        }
      };
      try {
        for (std::uint32_t base = 0; base < rows && produced < seg.out_len;
             base += static_cast<std::uint32_t>(lanes)) {
          if (rc != nullptr && rc->tripped()) {
            throw jpegfmt::ParseError(ExitCode::kTimeout,
                                      "session deadline tripped mid-decode");
          }
          const int group_local = static_cast<int>(base / lanes);
          const std::size_t group = std::min<std::size_t>(lanes, rows - base);
          set.code_row_group(group_local, group, hdr.frame.mcus_x, nullptr);
          for (std::size_t g = 0; g < group && produced < seg.out_len; ++g) {
            const int row =
                static_cast<int>(seg.start_row + base) + static_cast<int>(g);
            model::SegmentCodec<coding::DecodeOps>& codec = codecs[g];
            // The re-encoder asks for real block rows of MCU row `row`;
            // translate to the lane's local ring rows (local group_local):
            // by_local = by - (row - group_local) * v_samp per component.
            const int shift = row - group_local;
            auto source = [&codec, shift, &hdr](int comp, int bx, int by) {
              const auto& fr = hdr.frame;
              const int v = fr.ncomp() == 1 ? 1 : fr.comps[comp].v_samp;
              return codec.row_block(comp, bx, by - shift * v);
            };
            p.start_mcu_row = row;
            p.end_mcu_row = row + 1;
            p.handover = ho;
            jpegfmt::encode_scan_rows_with(hdr, source, p, &ho, &row_bytes);
            std::size_t take = row_bytes.size();
            if (produced + take > seg.out_len) {
              take = static_cast<std::size_t>(seg.out_len - produced);
            }
            em.submit(local, {row_bytes.data(), take});
            produced += take;
          }
        }
      } catch (...) {
        // Re-encoding garbage rows (truncated/hostile lane streams) can
        // throw mid-loop; the consumption facts must still reach the
        // validation layers, which use them to classify the truncation.
        record();
        throw;
      }
      record();
    } else {
      coding::BoolDecoder bd({arith.data(), arith.size()});
      model::SegmentCodec<coding::DecodeOps> codec(coding::DecodeOps{&bd},
                                                   scratch.fresh_model(), hdr,
                                                   h.model, &scratch.rings());
      // Direct lambda into the template entry point: the per-block ring
      // lookup inlines into the re-encode MCU loop (an std::function there
      // is an indirect call per block of every decode).
      auto source = [&codec](int comp, int bx, int by) {
        return codec.row_block(comp, bx, by);
      };
      auto record = [&flags, &bd] {
        if (flags == nullptr) return;
        if (bd.overran()) {
          flags->overran.store(true);
          flags->lanes_overrun.fetch_add(1);
        }
        if (!bd.exhausted()) flags->leftover.store(true);
        flags->payload_bytes.fetch_add(bd.available());
        flags->payload_consumed.fetch_add(bd.consumed());
      };
      try {
        for (std::uint32_t row = seg.start_row;
             row < seg.end_row && produced < seg.out_len; ++row) {
          if (rc != nullptr && rc->tripped()) {
            throw jpegfmt::ParseError(ExitCode::kTimeout,
                                      "session deadline tripped mid-decode");
          }
          codec.code_mcu_row(static_cast<int>(row), nullptr);
          p.start_mcu_row = static_cast<int>(row);
          p.end_mcu_row = static_cast<int>(row) + 1;
          p.handover = ho;
          jpegfmt::encode_scan_rows_with(hdr, source, p, &ho, &row_bytes);
          std::size_t take = row_bytes.size();
          if (produced + take > seg.out_len) {
            take = static_cast<std::size_t>(seg.out_len - produced);
          }
          em.submit(local, {row_bytes.data(), take});
          produced += take;
        }
      } catch (...) {
        // Same contract as the multi-lane path: consumption facts survive
        // a mid-loop re-encode failure.
        record();
        throw;
      }
      record();
    }
    if (produced != seg.out_len) {
      throw jpegfmt::ParseError(ExitCode::kNotAnImage,
                                "segment produced wrong byte count");
    }
  } catch (const jpegfmt::ParseError& e) {
    code = e.code();
  } catch (...) {
    code = ExitCode::kImpossible;
  }
  em.complete(local);
  return code;
}

util::ExitCode decode_segment_range(
    const ContainerHeader& h, const jpegfmt::JpegFile& hdr,
    const std::vector<std::vector<std::uint8_t>>& arith, std::size_t first,
    ByteSink& sink, const DecodeOptions& opts, CodecContext& ctx,
    DecodeRunFlags* flags) {
  const std::size_t nseg = h.segments.size();
  if (first >= nseg) return ExitCode::kSuccess;
  const RunControl* rc = opts.run;
  OrderedEmitter emitter(sink, nseg - first);
  std::atomic<int> error_code{-1};
  auto run = [&](int k, bool tripped) {
    std::size_t seg = first + static_cast<std::size_t>(k);
    ExitCode code;
    if (tripped) {
      // Sampled at dispatch: a tripped session's unstarted segments are
      // classified without leasing scratch or touching the payload.
      code = ExitCode::kTimeout;
      emitter.complete(static_cast<std::size_t>(k));
    } else {
      code = decode_one_segment(h, hdr, {arith[seg].data(), arith[seg].size()},
                                seg, ctx, emitter,
                                static_cast<std::size_t>(k), flags, rc);
    }
    if (code != ExitCode::kSuccess) {
      error_code.store(static_cast<int>(code));
    }
  };
  ctx.parallel_run(static_cast<int>(nseg - first), opts.run_parallel, rc, run);
  return error_code.load() >= 0 ? static_cast<ExitCode>(error_code.load())
                                : ExitCode::kSuccess;
}

void decode_container(const ParsedContainer& pc, ByteSink& sink,
                      const DecodeOptions& opts, CodecContext& ctx,
                      DecodeStats* stats) {
  const ContainerHeader& h = pc.header;
  jpegfmt::JpegFile hdr = validate_container_decode(h);

  // Verbatim prefix (header bytes belonging to this chunk's byte range).
  sink.append({h.jpeg_header.data() + h.prefix_off, h.prefix_len});

  DecodeRunFlags flags;
  ExitCode code =
      decode_segment_range(h, hdr, pc.arith, 0, sink, opts, ctx, &flags);
  flags.fill(stats);
  if (code != ExitCode::kSuccess) {
    throw jpegfmt::ParseError(code, "segment decode failed");
  }
  sink.append({h.suffix.data(), h.suffix.size()});
}

}  // namespace core

// ---- one-shot wrappers ------------------------------------------------------
//
// Every whole-buffer entry point below is a feed-everything wrapper over the
// streaming sessions (session.h): one codec driver, two calling conventions.

Result encode_jpeg(std::span<const std::uint8_t> jpeg,
                   const EncodeOptions& opts) {
  return encode_jpeg(jpeg, opts, default_context());
}

Result encode_jpeg(std::span<const std::uint8_t> jpeg,
                   const EncodeOptions& opts, CodecContext& ctx) {
  EncodeSession session(opts, &ctx);
  session.feed(jpeg);
  Result r;
  VectorSink sink;
  r.code = session.finish(sink);
  r.message = session.message();
  if (r.ok()) r.data = std::move(sink.data);
  return r;
}

Result encode_jpeg_with_breakdown(std::span<const std::uint8_t> jpeg,
                                  const EncodeOptions& opts,
                                  ComponentBreakdown* breakdown) {
  if (breakdown == nullptr) return encode_jpeg(jpeg, opts);
  Result r;
  try {
    auto jf = jpegfmt::parse_jpeg(jpeg);
    auto dec = jpegfmt::decode_scan(jf);
    EncodeOptions eopts = opts;
    eopts.one_way = true;
    auto plan = core::plan_whole_file(jf, dec, eopts);
    model::SectionTally tally;
    r.data = core::encode_container(jf, dec, plan, eopts, &tally,
                                    default_context());
    breakdown->header_in = jf.scan_begin + (jpeg.size() - jf.trailing_begin) +
                           (jf.has_eoi ? 2 : 0) + dec.trailing_scan.size();
    // Compressed header cost ≈ container minus arithmetic payload.
    std::uint64_t arith_total =
        tally.bytes_77 + tally.bytes_edge + tally.bytes_dc;
    breakdown->header_out =
        r.data.size() > arith_total ? r.data.size() - arith_total : 0;
    breakdown->dc_in_bits = dec.stats.bits_dc;
    breakdown->dc_out_bits = tally.bytes_dc * 8;
    breakdown->ac77_in_bits =
        dec.stats.bits_ac77 + dec.stats.bits_overhead;  // EOB/ZRL ride along
    breakdown->ac77_out_bits = tally.bytes_77 * 8;
    breakdown->edge_in_bits = dec.stats.bits_edge;
    breakdown->edge_out_bits = tally.bytes_edge * 8;
  } catch (const jpegfmt::ParseError& e) {
    r.code = e.code();
    r.message = e.what();
  } catch (const std::exception& e) {
    r.code = ExitCode::kImpossible;
    r.message = e.what();
  }
  return r;
}

util::ExitCode decode_lepton(std::span<const std::uint8_t> lep, ByteSink& sink,
                             const DecodeOptions& opts) {
  return decode_lepton(lep, sink, opts, default_context(), nullptr);
}

util::ExitCode decode_lepton(std::span<const std::uint8_t> lep, ByteSink& sink,
                             const DecodeOptions& opts, CodecContext& ctx,
                             DecodeStats* stats) {
  DecodeSession session(sink, opts, &ctx);
  session.feed(lep);
  return session.finish(stats);
}

Result decode_lepton(std::span<const std::uint8_t> lep,
                     const DecodeOptions& opts) {
  Result r;
  VectorSink sink;
  r.code = decode_lepton(lep, sink, opts);
  r.data = std::move(sink.data);
  return r;
}

}  // namespace lepton
