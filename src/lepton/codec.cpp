#include "lepton/codec.h"

#include <atomic>
#include <memory>

#include "jpeg/parser.h"
#include "jpeg/scan_decoder.h"
#include "jpeg/scan_encoder.h"
#include "lepton/context.h"
#include "lepton/plan.h"
#include "model/block_codec.h"
#include "util/thread_pool.h"
#include "util/tracked_memory.h"

namespace lepton {
namespace {

using util::ExitCode;

// In-order streaming assembler for parallel segment output (§3.4: separate
// threads each write their own segment, which is concatenated and sent).
// Completion is tracked with one flag per segment — any segment count the
// format layer admits (kMaxSegments) works; the flags are only touched
// under the mutex.
class OrderedEmitter {
 public:
  OrderedEmitter(ByteSink& sink, std::size_t n)
      : sink_(sink), pending_(n), completed_(n, 0) {}

  void submit(std::size_t seg, std::span<const std::uint8_t> bytes) {
    std::lock_guard<std::mutex> lk(mu_);
    if (seg == live_) {
      sink_.append(bytes);
    } else {
      pending_[seg].insert(pending_[seg].end(), bytes.begin(), bytes.end());
    }
  }

  void complete(std::size_t seg) {
    std::lock_guard<std::mutex> lk(mu_);
    completed_[seg] = 1;
    while (live_ < pending_.size() && completed_[live_] != 0) {
      ++live_;
      if (live_ < pending_.size() && !pending_[live_].empty()) {
        sink_.append({pending_[live_].data(), pending_[live_].size()});
        pending_[live_].clear();
      }
    }
  }

 private:
  ByteSink& sink_;
  std::mutex mu_;
  std::size_t live_ = 0;
  std::vector<std::vector<std::uint8_t>> pending_;
  std::vector<std::uint8_t> completed_;  // one flag per segment
};

// Decode working-set estimate for the §6.2 ">24 MiB mem decode" gate: the
// per-thread model copy plus two context rows per component.
std::size_t decode_working_set(const jpegfmt::JpegFile& hdr, std::size_t nseg) {
  std::size_t rings = 0;
  for (const auto& comp : hdr.frame.comps) {
    rings += static_cast<std::size_t>(comp.width_blocks) * 2 *
             sizeof(model::BlockState);
  }
  return nseg * (sizeof(model::ProbabilityModel) + rings);
}

}  // namespace

int threads_for_size(std::size_t bytes, int max_threads) {
  int t;
  if (bytes < 128u << 10) {
    t = 1;
  } else if (bytes < 512u << 10) {
    t = 2;
  } else if (bytes < 3u << 20) {
    t = 4;
  } else {
    t = 8;
  }
  return t < max_threads ? t : (max_threads < 1 ? 1 : max_threads);
}

namespace core {

std::vector<std::uint8_t> encode_container(const jpegfmt::JpegFile& jf,
                                           const jpegfmt::ScanDecodeResult& dec,
                                           const ContainerPlan& plan,
                                           const EncodeOptions& opts,
                                           model::SectionTally* tally,
                                           CodecContext& ctx) {
  ContainerHeader h;
  h.is_chunk = plan.is_chunk;
  h.file_total_size = plan.file_total_size;
  h.chunk_off = plan.chunk_off;
  h.chunk_len = plan.chunk_len;
  h.scan_begin_abs = jf.scan_begin;
  h.pad_bit = dec.pad_bit;
  h.rst_count = dec.rst_count;
  h.model = opts.model;
  h.jpeg_header.assign(jf.header_bytes().begin(), jf.header_bytes().end());
  h.prefix_off = plan.prefix_off;
  h.prefix_len = plan.prefix_len;
  h.suffix = plan.suffix;
  h.segments = plan.segments;

  const std::size_t nseg = plan.segments.size();
  // One scratch lease per segment, held until the container is serialized:
  // each segment's arithmetic output lives in its scratch buffer and is
  // passed to the serializer as a view.
  std::vector<CodecContext::ScratchLease> leases;
  leases.reserve(nseg);
  for (std::size_t i = 0; i < nseg; ++i) {
    leases.push_back(ctx.acquire_scratch());
  }
  std::vector<std::span<const std::uint8_t>> arith(nseg);
  std::atomic<bool> failed{false};
  auto encode_segment = [&](int i) {
    try {
      const auto& seg = plan.segments[static_cast<std::size_t>(i)];
      CodecScratch& scratch = *leases[static_cast<std::size_t>(i)];
      coding::BoolEncoder enc(&scratch.arith_buffer());
      model::SegmentCodec<coding::EncodeOps> codec(coding::EncodeOps{&enc},
                                                   scratch.fresh_model(), jf,
                                                   opts.model,
                                                   &scratch.rings());
      if (tally != nullptr && nseg == 1) {
        codec.set_tally(tally);
      }
      for (std::uint32_t row = seg.start_row; row < seg.end_row; ++row) {
        codec.code_mcu_row(static_cast<int>(row), &dec.coeffs);
      }
      enc.finish_into_buffer();
      arith[static_cast<std::size_t>(i)] = {scratch.arith_buffer().data(),
                                            scratch.arith_buffer().size()};
    } catch (...) {
      failed.store(true);
    }
  };
  if (opts.run_parallel) {
    ctx.pool().parallel_run(static_cast<int>(nseg), encode_segment);
  } else {
    for (std::size_t i = 0; i < nseg; ++i) {
      encode_segment(static_cast<int>(i));
    }
  }
  if (failed.load()) {
    throw jpegfmt::ParseError(ExitCode::kImpossible, "segment encode failed");
  }
  return serialize_container(h, arith);
}

void decode_container(const ParsedContainer& pc, ByteSink& sink,
                      const DecodeOptions& opts, CodecContext& ctx,
                      DecodeStats* stats) {
  const ContainerHeader& h = pc.header;
  jpegfmt::JpegFile hdr = jpegfmt::parse_jpeg_header(
      {h.jpeg_header.data(), h.jpeg_header.size()});

  // Structural validation against the (attacker-controlled) header.
  for (const auto& seg : h.segments) {
    if (seg.end_row > static_cast<std::uint32_t>(hdr.frame.mcus_y)) {
      throw jpegfmt::ParseError(ExitCode::kNotAnImage, "segment row range");
    }
  }
  const std::size_t nseg = h.segments.size();
  // §6.2 ">24 MiB mem decode" gate. The per-thread budget applies to the
  // §5.4 maximum of 16 threads at most — a hostile header cannot scale the
  // allowance (and with it the scratch it makes us allocate) by declaring
  // thousands of segments.
  if (decode_working_set(hdr, nseg == 0 ? 1 : nseg) >
      (24ull << 20) * (nseg < 16 ? (nseg == 0 ? 1 : nseg) : 16)) {
    throw jpegfmt::ParseError(ExitCode::kMemLimitDecode,
                              "decode working set exceeds budget");
  }

  // Verbatim prefix (header bytes belonging to this chunk's byte range).
  sink.append({h.jpeg_header.data() + h.prefix_off, h.prefix_len});

  OrderedEmitter emitter(sink, nseg);
  std::atomic<int> error_code{-1};
  std::atomic<bool> overran{false};
  std::atomic<bool> leftover{false};

  auto decode_segment = [&](int i) {
    try {
      const auto& seg = h.segments[static_cast<std::size_t>(i)];
      // Leased inside the task (unlike encode, which must keep every
      // segment's output buffer alive until serialization): live scratch
      // is bounded by pool concurrency, not by the attacker-controlled
      // segment count.
      CodecContext::ScratchLease lease = ctx.acquire_scratch();
      CodecScratch& scratch = *lease;
      coding::BoolDecoder bd(
          {pc.arith[static_cast<std::size_t>(i)].data(),
           pc.arith[static_cast<std::size_t>(i)].size()});
      model::SegmentCodec<coding::DecodeOps> codec(coding::DecodeOps{&bd},
                                                   scratch.fresh_model(), hdr,
                                                   h.model, &scratch.rings());
      if (!seg.prepend.empty()) {
        emitter.submit(static_cast<std::size_t>(i),
                       {seg.prepend.data(), seg.prepend.size()});
      }
      jpegfmt::HuffmanHandover ho = seg.handover;
      std::uint64_t produced = 0;
      // Direct lambda into the template entry point: the per-block ring
      // lookup inlines into the re-encode MCU loop (an std::function there
      // is an indirect call per block of every decode).
      auto source = [&codec](int comp, int bx, int by) {
        return codec.row_block(comp, bx, by);
      };
      jpegfmt::ScanEncodeParams p;
      p.pad_bit = h.pad_bit;
      p.rst_count_limit = h.rst_count;
      p.final_segment = false;
      std::vector<std::uint8_t>& row_bytes = scratch.row_buffer();
      for (std::uint32_t row = seg.start_row;
           row < seg.end_row && produced < seg.out_len; ++row) {
        codec.code_mcu_row(static_cast<int>(row), nullptr);
        p.start_mcu_row = static_cast<int>(row);
        p.end_mcu_row = static_cast<int>(row) + 1;
        p.handover = ho;
        jpegfmt::encode_scan_rows_with(hdr, source, p, &ho, &row_bytes);
        std::size_t take = row_bytes.size();
        if (produced + take > seg.out_len) {
          take = static_cast<std::size_t>(seg.out_len - produced);
        }
        emitter.submit(static_cast<std::size_t>(i), {row_bytes.data(), take});
        produced += take;
      }
      if (bd.overran()) overran.store(true);
      if (!bd.exhausted()) leftover.store(true);
      if (produced != seg.out_len) {
        throw jpegfmt::ParseError(ExitCode::kNotAnImage,
                                  "segment produced wrong byte count");
      }
      emitter.complete(static_cast<std::size_t>(i));
    } catch (const jpegfmt::ParseError& e) {
      error_code.store(static_cast<int>(e.code()));
      emitter.complete(static_cast<std::size_t>(i));
    } catch (...) {
      error_code.store(static_cast<int>(ExitCode::kImpossible));
      emitter.complete(static_cast<std::size_t>(i));
    }
  };

  if (opts.run_parallel) {
    ctx.pool().parallel_run(static_cast<int>(nseg), decode_segment);
  } else {
    for (std::size_t i = 0; i < nseg; ++i) {
      decode_segment(static_cast<int>(i));
    }
  }
  if (stats != nullptr) {
    stats->payload_overrun = overran.load();
    stats->payload_exhausted = !overran.load() && !leftover.load();
  }
  if (error_code.load() >= 0) {
    throw jpegfmt::ParseError(static_cast<ExitCode>(error_code.load()),
                              "segment decode failed");
  }
  sink.append({h.suffix.data(), h.suffix.size()});
}

}  // namespace core

Result encode_jpeg(std::span<const std::uint8_t> jpeg,
                   const EncodeOptions& opts) {
  return encode_jpeg(jpeg, opts, default_context());
}

Result encode_jpeg(std::span<const std::uint8_t> jpeg,
                   const EncodeOptions& opts, CodecContext& ctx) {
  Result r;
  try {
    auto jf = jpegfmt::parse_jpeg(jpeg);
    auto dec = jpegfmt::decode_scan(jf);
    auto plan = core::plan_whole_file(jf, dec, opts);
    r.data = core::encode_container(jf, dec, plan, opts, nullptr, ctx);
  } catch (const jpegfmt::ParseError& e) {
    r.code = e.code();
    r.message = e.what();
  } catch (const std::exception& e) {
    r.code = ExitCode::kImpossible;
    r.message = e.what();
  }
  return r;
}

Result encode_jpeg_with_breakdown(std::span<const std::uint8_t> jpeg,
                                  const EncodeOptions& opts,
                                  ComponentBreakdown* breakdown) {
  if (breakdown == nullptr) return encode_jpeg(jpeg, opts);
  Result r;
  try {
    auto jf = jpegfmt::parse_jpeg(jpeg);
    auto dec = jpegfmt::decode_scan(jf);
    EncodeOptions eopts = opts;
    eopts.one_way = true;
    auto plan = core::plan_whole_file(jf, dec, eopts);
    model::SectionTally tally;
    r.data = core::encode_container(jf, dec, plan, eopts, &tally,
                                    default_context());
    breakdown->header_in = jf.scan_begin + (jpeg.size() - jf.trailing_begin) +
                           (jf.has_eoi ? 2 : 0) + dec.trailing_scan.size();
    // Compressed header cost ≈ container minus arithmetic payload.
    std::uint64_t arith_total =
        tally.bytes_77 + tally.bytes_edge + tally.bytes_dc;
    breakdown->header_out =
        r.data.size() > arith_total ? r.data.size() - arith_total : 0;
    breakdown->dc_in_bits = dec.stats.bits_dc;
    breakdown->dc_out_bits = tally.bytes_dc * 8;
    breakdown->ac77_in_bits =
        dec.stats.bits_ac77 + dec.stats.bits_overhead;  // EOB/ZRL ride along
    breakdown->ac77_out_bits = tally.bytes_77 * 8;
    breakdown->edge_in_bits = dec.stats.bits_edge;
    breakdown->edge_out_bits = tally.bytes_edge * 8;
  } catch (const jpegfmt::ParseError& e) {
    r.code = e.code();
    r.message = e.what();
  } catch (const std::exception& e) {
    r.code = ExitCode::kImpossible;
    r.message = e.what();
  }
  return r;
}

util::ExitCode decode_lepton(std::span<const std::uint8_t> lep, ByteSink& sink,
                             const DecodeOptions& opts) {
  return decode_lepton(lep, sink, opts, default_context(), nullptr);
}

util::ExitCode decode_lepton(std::span<const std::uint8_t> lep, ByteSink& sink,
                             const DecodeOptions& opts, CodecContext& ctx,
                             DecodeStats* stats) {
  try {
    auto pc = core::parse_container(lep);
    core::decode_container(pc, sink, opts, ctx, stats);
    return ExitCode::kSuccess;
  } catch (const jpegfmt::ParseError& e) {
    return e.code();
  } catch (const std::exception&) {
    return ExitCode::kImpossible;
  }
}

Result decode_lepton(std::span<const std::uint8_t> lep,
                     const DecodeOptions& opts) {
  Result r;
  VectorSink sink;
  r.code = decode_lepton(lep, sink, opts);
  r.data = std::move(sink.data);
  return r;
}

}  // namespace lepton
