#include "lepton/codec.h"

#include <atomic>
#include <memory>

#include "jpeg/parser.h"
#include "jpeg/scan_decoder.h"
#include "jpeg/scan_encoder.h"
#include "lepton/plan.h"
#include "model/block_codec.h"
#include "util/thread_pool.h"
#include "util/tracked_memory.h"

namespace lepton {
namespace {

using util::ExitCode;

// Heap model allocation routed through the tracker (Figure 3 accounting).
using ModelVec = util::tracked_vector<model::ProbabilityModel>;

// In-order streaming assembler for parallel segment output (§3.4: separate
// threads each write their own segment, which is concatenated and sent).
class OrderedEmitter {
 public:
  OrderedEmitter(ByteSink& sink, std::size_t n) : sink_(sink), pending_(n) {}

  void submit(std::size_t seg, std::span<const std::uint8_t> bytes) {
    std::lock_guard<std::mutex> lk(mu_);
    if (seg == live_) {
      sink_.append(bytes);
    } else {
      pending_[seg].insert(pending_[seg].end(), bytes.begin(), bytes.end());
    }
  }

  void complete(std::size_t seg) {
    std::lock_guard<std::mutex> lk(mu_);
    done_.insert(done_.end(), 0);  // no-op to keep vector in scope semantics
    completed_ |= (1ull << seg);
    while (live_ < pending_.size() && (completed_ >> live_) & 1ull) {
      ++live_;
      if (live_ < pending_.size() && !pending_[live_].empty()) {
        sink_.append({pending_[live_].data(), pending_[live_].size()});
        pending_[live_].clear();
      }
    }
  }

 private:
  ByteSink& sink_;
  std::mutex mu_;
  std::size_t live_ = 0;
  std::uint64_t completed_ = 0;
  std::vector<std::vector<std::uint8_t>> pending_;
  std::vector<int> done_;
};

// Decode working-set estimate for the §6.2 ">24 MiB mem decode" gate: the
// per-thread model copy plus two context rows per component.
std::size_t decode_working_set(const jpegfmt::JpegFile& hdr, std::size_t nseg) {
  std::size_t rings = 0;
  for (const auto& comp : hdr.frame.comps) {
    rings += static_cast<std::size_t>(comp.width_blocks) * 2 *
             sizeof(model::BlockState);
  }
  return nseg * (sizeof(model::ProbabilityModel) + rings);
}

}  // namespace

int threads_for_size(std::size_t bytes, int max_threads) {
  int t;
  if (bytes < 128u << 10) {
    t = 1;
  } else if (bytes < 512u << 10) {
    t = 2;
  } else if (bytes < 3u << 20) {
    t = 4;
  } else {
    t = 8;
  }
  return t < max_threads ? t : (max_threads < 1 ? 1 : max_threads);
}

namespace core {

std::vector<std::uint8_t> encode_container(const jpegfmt::JpegFile& jf,
                                           const jpegfmt::ScanDecodeResult& dec,
                                           const ContainerPlan& plan,
                                           const EncodeOptions& opts,
                                           model::SectionTally* tally) {
  ContainerHeader h;
  h.is_chunk = plan.is_chunk;
  h.file_total_size = plan.file_total_size;
  h.chunk_off = plan.chunk_off;
  h.chunk_len = plan.chunk_len;
  h.scan_begin_abs = jf.scan_begin;
  h.pad_bit = dec.pad_bit;
  h.rst_count = dec.rst_count;
  h.model = opts.model;
  h.jpeg_header.assign(jf.header_bytes().begin(), jf.header_bytes().end());
  h.prefix_off = plan.prefix_off;
  h.prefix_len = plan.prefix_len;
  h.suffix = plan.suffix;
  h.segments = plan.segments;

  std::vector<std::vector<std::uint8_t>> arith(plan.segments.size());
  std::atomic<bool> failed{false};
  auto encode_segment = [&](int i) {
    try {
      const auto& seg = plan.segments[static_cast<std::size_t>(i)];
      ModelVec pm(1);
      coding::BoolEncoder enc;
      model::SegmentCodec<coding::EncodeOps> codec(coding::EncodeOps{&enc},
                                                   pm[0], jf, opts.model);
      if (tally != nullptr && plan.segments.size() == 1) {
        codec.set_tally(tally);
      }
      for (std::uint32_t row = seg.start_row; row < seg.end_row; ++row) {
        codec.code_mcu_row(static_cast<int>(row), &dec.coeffs);
      }
      arith[static_cast<std::size_t>(i)] = enc.finish();
    } catch (...) {
      failed.store(true);
    }
  };
  util::parallel_for_segments(static_cast<int>(plan.segments.size()),
                              opts.run_parallel ? opts.max_threads : 1,
                              encode_segment);
  if (failed.load()) {
    throw jpegfmt::ParseError(ExitCode::kImpossible, "segment encode failed");
  }
  return serialize_container(h, arith);
}

void decode_container(const ParsedContainer& pc, ByteSink& sink,
                      const DecodeOptions& opts) {
  const ContainerHeader& h = pc.header;
  jpegfmt::JpegFile hdr = jpegfmt::parse_jpeg_header(
      {h.jpeg_header.data(), h.jpeg_header.size()});

  // Structural validation against the (attacker-controlled) header.
  for (const auto& seg : h.segments) {
    if (seg.end_row > static_cast<std::uint32_t>(hdr.frame.mcus_y)) {
      throw jpegfmt::ParseError(ExitCode::kNotAnImage, "segment row range");
    }
  }
  if (decode_working_set(hdr, h.segments.empty() ? 1 : h.segments.size()) >
      (24u << 20) * (h.segments.empty() ? 1 : h.segments.size())) {
    throw jpegfmt::ParseError(ExitCode::kMemLimitDecode,
                              "decode working set exceeds budget");
  }

  // Verbatim prefix (header bytes belonging to this chunk's byte range).
  sink.append({h.jpeg_header.data() + h.prefix_off, h.prefix_len});

  OrderedEmitter emitter(sink, h.segments.size());
  std::atomic<int> error_code{-1};

  auto decode_segment = [&](int i) {
    try {
      const auto& seg = h.segments[static_cast<std::size_t>(i)];
      ModelVec pm(1);
      coding::BoolDecoder bd(
          {pc.arith[static_cast<std::size_t>(i)].data(),
           pc.arith[static_cast<std::size_t>(i)].size()});
      model::SegmentCodec<coding::DecodeOps> codec(coding::DecodeOps{&bd},
                                                   pm[0], hdr, h.model);
      if (!seg.prepend.empty()) {
        emitter.submit(static_cast<std::size_t>(i),
                       {seg.prepend.data(), seg.prepend.size()});
      }
      jpegfmt::HuffmanHandover ho = seg.handover;
      std::uint64_t produced = 0;
      auto source = [&codec](int comp, int bx, int by) {
        return codec.row_block(comp, bx, by);
      };
      for (std::uint32_t row = seg.start_row;
           row < seg.end_row && produced < seg.out_len; ++row) {
        codec.code_mcu_row(static_cast<int>(row), nullptr);
        jpegfmt::ScanEncodeParams p;
        p.start_mcu_row = static_cast<int>(row);
        p.end_mcu_row = static_cast<int>(row) + 1;
        p.handover = ho;
        p.pad_bit = h.pad_bit;
        p.rst_count_limit = h.rst_count;
        p.final_segment = false;
        auto bytes = jpegfmt::encode_scan_rows_fn(hdr, source, p, &ho);
        std::size_t take = bytes.size();
        if (produced + take > seg.out_len) {
          take = static_cast<std::size_t>(seg.out_len - produced);
        }
        emitter.submit(static_cast<std::size_t>(i), {bytes.data(), take});
        produced += take;
      }
      if (produced != seg.out_len) {
        throw jpegfmt::ParseError(ExitCode::kNotAnImage,
                                  "segment produced wrong byte count");
      }
      emitter.complete(static_cast<std::size_t>(i));
    } catch (const jpegfmt::ParseError& e) {
      error_code.store(static_cast<int>(e.code()));
      emitter.complete(static_cast<std::size_t>(i));
    } catch (...) {
      error_code.store(static_cast<int>(ExitCode::kImpossible));
      emitter.complete(static_cast<std::size_t>(i));
    }
  };

  util::parallel_for_segments(static_cast<int>(h.segments.size()),
                              opts.run_parallel ? 8 : 1, decode_segment);
  if (error_code.load() >= 0) {
    throw jpegfmt::ParseError(static_cast<ExitCode>(error_code.load()),
                              "segment decode failed");
  }
  sink.append({h.suffix.data(), h.suffix.size()});
}

}  // namespace core

Result encode_jpeg(std::span<const std::uint8_t> jpeg,
                   const EncodeOptions& opts) {
  return encode_jpeg_with_breakdown(jpeg, opts, nullptr);
}

Result encode_jpeg_with_breakdown(std::span<const std::uint8_t> jpeg,
                                  const EncodeOptions& opts,
                                  ComponentBreakdown* breakdown) {
  Result r;
  try {
    auto jf = jpegfmt::parse_jpeg(jpeg);
    auto dec = jpegfmt::decode_scan(jf);
    EncodeOptions eopts = opts;
    if (breakdown != nullptr) eopts.one_way = true;
    auto plan = core::plan_whole_file(jf, dec, eopts);
    model::SectionTally tally;
    r.data = core::encode_container(jf, dec, plan, eopts,
                                    breakdown != nullptr ? &tally : nullptr);
    if (breakdown != nullptr) {
      breakdown->header_in = jf.scan_begin + (jpeg.size() - jf.trailing_begin) +
                             (jf.has_eoi ? 2 : 0) + dec.trailing_scan.size();
      // Compressed header cost ≈ container minus arithmetic payload.
      std::uint64_t arith_total =
          tally.bytes_77 + tally.bytes_edge + tally.bytes_dc;
      breakdown->header_out =
          r.data.size() > arith_total ? r.data.size() - arith_total : 0;
      breakdown->dc_in_bits = dec.stats.bits_dc;
      breakdown->dc_out_bits = tally.bytes_dc * 8;
      breakdown->ac77_in_bits =
          dec.stats.bits_ac77 + dec.stats.bits_overhead;  // EOB/ZRL ride along
      breakdown->ac77_out_bits = tally.bytes_77 * 8;
      breakdown->edge_in_bits = dec.stats.bits_edge;
      breakdown->edge_out_bits = tally.bytes_edge * 8;
    }
  } catch (const jpegfmt::ParseError& e) {
    r.code = e.code();
    r.message = e.what();
  } catch (const std::exception& e) {
    r.code = ExitCode::kImpossible;
    r.message = e.what();
  }
  return r;
}

util::ExitCode decode_lepton(std::span<const std::uint8_t> lep, ByteSink& sink,
                             const DecodeOptions& opts) {
  try {
    auto pc = core::parse_container(lep);
    core::decode_container(pc, sink, opts);
    return ExitCode::kSuccess;
  } catch (const jpegfmt::ParseError& e) {
    return e.code();
  } catch (const std::exception&) {
    return ExitCode::kImpossible;
  }
}

Result decode_lepton(std::span<const std::uint8_t> lep,
                     const DecodeOptions& opts) {
  Result r;
  VectorSink sink;
  r.code = decode_lepton(lep, sink, opts);
  r.data = std::move(sink.data);
  return r;
}

}  // namespace lepton
