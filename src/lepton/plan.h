// Container planning: maps a byte range of the original file onto verbatim
// sections + re-encodable MCU-row segments with Huffman handover words.
//
// This is where the paper's two distribution requirements meet the format:
//  * thread segments within a container (§3.4 "within chunks, parallel
//    decoding"), and
//  * 4-MiB storage chunks that decode with no access to other chunks
//    (§3 "distribution across independent chunks").
//
// A chunk boundary rarely lands on an MCU-row boundary; the bytes between
// the chunk start and the first row boundary inside it are carried verbatim
// as segment "prepend" data (§A.1 "arbitrary data to prepend"), and the
// last segment's output is trimmed to the chunk end.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "jpeg/parser.h"
#include "jpeg/scan_decoder.h"
#include "lepton/codec.h"
#include "lepton/format.h"
#include "model/block_codec.h"

namespace lepton::core {

struct ContainerPlan {
  bool is_chunk = false;
  std::uint64_t file_total_size = 0;
  std::uint64_t chunk_off = 0;
  std::uint64_t chunk_len = 0;
  std::uint64_t prefix_off = 0;  // range into the JPEG header bytes
  std::uint64_t prefix_len = 0;
  std::vector<std::uint8_t> suffix;
  std::vector<SegmentHeader> segments;
};

// Plans the container for original-file byte range [begin, end).
ContainerPlan plan_byte_range(const jpegfmt::JpegFile& jf,
                              const jpegfmt::ScanDecodeResult& dec,
                              std::uint64_t begin, std::uint64_t end,
                              const EncodeOptions& opts, bool is_chunk);

// Whole file as a single container.
ContainerPlan plan_whole_file(const jpegfmt::JpegFile& jf,
                              const jpegfmt::ScanDecodeResult& dec,
                              const EncodeOptions& opts);

// Encodes one planned container on `ctx`'s pool and scratch (implemented
// in codec.cpp). Segment workers poll `opts.run` at MCU-row granularity;
// a trip throws jpegfmt::ParseError(kTimeout).
std::vector<std::uint8_t> encode_container(
    const jpegfmt::JpegFile& jf, const jpegfmt::ScanDecodeResult& dec,
    const ContainerPlan& plan, const EncodeOptions& opts,
    model::SectionTally* tally, CodecContext& ctx);

// ---- shared decode driver ---------------------------------------------------
//
// DecodeSession (session.h) and the whole-buffer decode path are built from
// the same three pieces below, so there is exactly one segment-decode code
// path regardless of how the container bytes arrived.

// In-order streaming assembler for parallel segment output (§3.4: separate
// threads each write their own segment, which is concatenated and sent).
// Completion is tracked with one flag per segment — any segment count the
// format layer admits (kMaxSegments) works; the flags are only touched
// under the mutex.
class OrderedEmitter {
 public:
  OrderedEmitter(ByteSink& sink, std::size_t n)
      : sink_(sink), pending_(n), completed_(n, 0) {}

  void submit(std::size_t seg, std::span<const std::uint8_t> bytes) {
    std::lock_guard<std::mutex> lk(mu_);
    if (seg == live_) {
      sink_.append(bytes);
    } else {
      pending_[seg].insert(pending_[seg].end(), bytes.begin(), bytes.end());
    }
  }

  void complete(std::size_t seg) {
    std::lock_guard<std::mutex> lk(mu_);
    completed_[seg] = 1;
    while (live_ < pending_.size() && completed_[live_] != 0) {
      ++live_;
      if (live_ < pending_.size() && !pending_[live_].empty()) {
        sink_.append({pending_[live_].data(), pending_[live_].size()});
        pending_[live_].clear();
      }
    }
  }

 private:
  ByteSink& sink_;
  std::mutex mu_;
  std::size_t live_ = 0;
  std::vector<std::vector<std::uint8_t>> pending_;
  std::vector<std::uint8_t> completed_;  // one flag per segment
};

// Payload-consumption facts accumulated across a container's segments
// (aggregated into lepton::DecodeStats at the end of a decode).
struct DecodeRunFlags {
  std::atomic<bool> overran{false};
  std::atomic<bool> leftover{false};
  std::atomic<std::uint64_t> payload_bytes{0};
  std::atomic<std::uint64_t> payload_consumed{0};
  // Count of coder lanes (v2 segment = one lane) that overran their
  // payload slice.
  std::atomic<std::uint32_t> lanes_overrun{0};

  void fill(DecodeStats* stats) const {
    if (stats == nullptr) return;
    stats->payload_overrun = overran.load();
    stats->payload_exhausted = !overran.load() && !leftover.load();
    stats->payload_bytes = payload_bytes.load();
    stats->payload_consumed = payload_consumed.load();
    stats->lanes_overrun = lanes_overrun.load();
  }
};

// Parses the container's embedded JPEG header, validates the segment row
// ranges against it, and enforces the §6.2 ">24 MiB mem decode" budget.
// Throws jpegfmt::ParseError on violation. Runs before any output byte is
// emitted — a session fails a hostile header the moment it arrives, before
// the arithmetic payload has even been fetched.
jpegfmt::JpegFile validate_container_decode(const ContainerHeader& h);

// Decodes one segment of `h` from its arithmetic stream, submitting its
// prepend bytes and re-encoded rows to `em` under index `local` and always
// marking `local` complete (success or failure — in-order emission never
// wedges). Polls `rc` every MCU row; a trip classifies as kTimeout.
// Returns kSuccess or the classified failure; never throws.
util::ExitCode decode_one_segment(const ContainerHeader& h,
                                  const jpegfmt::JpegFile& hdr,
                                  std::span<const std::uint8_t> arith,
                                  std::size_t seg, CodecContext& ctx,
                                  OrderedEmitter& em, std::size_t local,
                                  DecodeRunFlags* flags, const RunControl* rc);

// Decodes segments [first, h.segments.size()) into `sink` in order, on
// `ctx`'s pool when opts.run_parallel (the calling thread participates).
// Segments before `first` must already have been emitted by the caller
// (DecodeSession decodes them eagerly as their streams complete). Returns
// the first classified failure, kSuccess otherwise.
util::ExitCode decode_segment_range(
    const ContainerHeader& h, const jpegfmt::JpegFile& hdr,
    const std::vector<std::vector<std::uint8_t>>& arith, std::size_t first,
    ByteSink& sink, const DecodeOptions& opts, CodecContext& ctx,
    DecodeRunFlags* flags);

// Decodes one parsed container into `sink` (implemented in codec.cpp).
// Throws jpegfmt::ParseError with a §6.2 classification on failure.
// `stats` (optional) reports payload-consumption facts.
void decode_container(const ParsedContainer& pc, ByteSink& sink,
                      const DecodeOptions& opts, CodecContext& ctx,
                      DecodeStats* stats = nullptr);

}  // namespace lepton::core
