// Container planning: maps a byte range of the original file onto verbatim
// sections + re-encodable MCU-row segments with Huffman handover words.
//
// This is where the paper's two distribution requirements meet the format:
//  * thread segments within a container (§3.4 "within chunks, parallel
//    decoding"), and
//  * 4-MiB storage chunks that decode with no access to other chunks
//    (§3 "distribution across independent chunks").
//
// A chunk boundary rarely lands on an MCU-row boundary; the bytes between
// the chunk start and the first row boundary inside it are carried verbatim
// as segment "prepend" data (§A.1 "arbitrary data to prepend"), and the
// last segment's output is trimmed to the chunk end.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "jpeg/parser.h"
#include "jpeg/scan_decoder.h"
#include "lepton/codec.h"
#include "lepton/format.h"
#include "model/block_codec.h"

namespace lepton::core {

struct ContainerPlan {
  bool is_chunk = false;
  std::uint64_t file_total_size = 0;
  std::uint64_t chunk_off = 0;
  std::uint64_t chunk_len = 0;
  std::uint64_t prefix_off = 0;  // range into the JPEG header bytes
  std::uint64_t prefix_len = 0;
  std::vector<std::uint8_t> suffix;
  std::vector<SegmentHeader> segments;
};

// Plans the container for original-file byte range [begin, end).
ContainerPlan plan_byte_range(const jpegfmt::JpegFile& jf,
                              const jpegfmt::ScanDecodeResult& dec,
                              std::uint64_t begin, std::uint64_t end,
                              const EncodeOptions& opts, bool is_chunk);

// Whole file as a single container.
ContainerPlan plan_whole_file(const jpegfmt::JpegFile& jf,
                              const jpegfmt::ScanDecodeResult& dec,
                              const EncodeOptions& opts);

// Encodes one planned container on `ctx`'s pool and scratch (implemented
// in codec.cpp).
std::vector<std::uint8_t> encode_container(
    const jpegfmt::JpegFile& jf, const jpegfmt::ScanDecodeResult& dec,
    const ContainerPlan& plan, const EncodeOptions& opts,
    model::SectionTally* tally, CodecContext& ctx);

// Decodes one parsed container into `sink` (implemented in codec.cpp).
// Throws jpegfmt::ParseError with a §6.2 classification on failure.
// `stats` (optional) reports payload-consumption facts.
void decode_container(const ParsedContainer& pc, ByteSink& sink,
                      const DecodeOptions& opts, CodecContext& ctx,
                      DecodeStats* stats = nullptr);

}  // namespace lepton::core
