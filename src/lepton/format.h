// The Lepton container format (§A.1).
//
// Layout (all integers little-endian):
//   magic 0xCF 0x84 | version u8 | flags u8 | n_segments u32 |
//   git revision (12 bytes) | output size u32 |
//   zlib blob (u32 len + deflate data)     — header payload, see below |
//   interleaved arithmetic sections        — [seg u8][len u32][bytes]...
//
// The zlib blob carries the original JPEG header bytes (every chunk embeds
// them so any chunk decodes in isolation, §3.4), the verbatim prefix/suffix
// byte ranges, and one record per thread segment: its MCU-row range, its
// Huffman handover word (§3.4), the byte count it must produce, and any
// verbatim prepend data (§A.1 "arbitrary data to prepend to the output").
//
// Arithmetic data is interleaved across segments in escalating sections of
// 256 / 4096 / 65536 bytes (§A.1) so a streaming decoder can start all
// threads before the container fully arrives.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "jpeg/jpeg_types.h"
#include "model/model.h"

namespace lepton::core {

inline constexpr std::uint8_t kMagic0 = 0xCF;
inline constexpr std::uint8_t kMagic1 = 0x84;
// Version 2: the hot-path overhaul changed the entropy layout (Exp-Golomb
// low residual bits are raw range-coder literals, and edge-prediction
// bucket rounding changed), so version-1 containers must be rejected
// loudly (§6.7's "incompatible old version" rule), not mis-decoded.
inline constexpr std::uint8_t kFormatVersion = 2;
// Version 3: multi-lane interleaved entropy coding. Each segment's
// arithmetic payload is the concatenation of N independent bool-coder lane
// streams (round-robin over the segment's MCU rows), with per-lane lengths
// in the segment header; everything else — outer layout, section
// interleave, handover words — is unchanged from v2. A v2 container is
// exactly a v3 container with one implicit lane, and v2 inputs keep
// decoding byte-identically. Any other version byte still fails loudly.
inline constexpr std::uint8_t kFormatVersionV3 = 3;

// Hard ceiling on coder lanes per segment: enough to cover any plausible
// ILP win (the sweep tops out well below this), small enough that a
// hostile lane table cannot scale per-segment scratch meaningfully.
inline constexpr std::uint32_t kMaxLanes = 8;
// Encode-side default lane count (EncodeOptions::coder_lanes == 0).
// Set by the PR 6 lane sweep on the committed corpus, which came back
// negative: interleaved lanes measured *slower* than the single chain
// (2 lanes: 0.96x combined) and cost +6.7% ratio from context-split
// adaptation, so the default stays the v2 single-lane format and v3 is
// opt-in (EncodeOptions::coder_lanes / LEPTON_LANES). The sweep and the
// why live in DESIGN.md "Format v3"; re-run bench/run_bench.sh before
// revisiting this constant.
inline constexpr int kDefaultCoderLanes = 1;

// Hard ceiling on thread segments per container, shared by the encode
// planner (clamps the requested count) and the container parser (rejects
// hostile headers with kNotAnImage). The decode OrderedEmitter tracks
// completion with one flag per segment, so any count the format admits is
// safe — this bound exists to keep hostile headers from requesting
// unbounded per-segment state, not because of a completion-tracking word
// width.
inline constexpr std::uint32_t kMaxSegments = 4096;

struct SegmentHeader {
  std::uint32_t start_row = 0;
  std::uint32_t end_row = 0;               // exclusive
  jpegfmt::HuffmanHandover handover;       // writer state at start_row
  std::uint64_t out_len = 0;               // bytes this segment contributes
  std::vector<std::uint8_t> prepend;       // verbatim bytes before its output
  // Format v3 only: byte length of each interleaved coder lane's stream,
  // concatenated in lane order inside this segment's arithmetic payload.
  // Lane k codes MCU rows start_row + k, start_row + k + N, ... Empty on
  // v2 (one implicit lane spanning the whole payload). The parser enforces
  // 1 <= lanes <= kMaxLanes and sum(lane_lens) == payload length.
  std::vector<std::uint32_t> lane_lens;
};

struct ContainerHeader {
  // Outer version byte: kFormatVersion (v2) or kFormatVersionV3. The
  // serializer writes it; the parser records what it accepted.
  std::uint8_t version = kFormatVersion;
  bool is_chunk = false;          // substring of a larger file
  std::uint64_t file_total_size = 0;
  std::uint64_t chunk_off = 0;    // byte range of the original file this
  std::uint64_t chunk_len = 0;    //   container decodes to
  std::uint64_t scan_begin_abs = 0;  // offset of scan data in the original
  std::uint8_t pad_bit = 1;
  std::uint32_t rst_count = 0;
  model::ModelOptions model;
  std::vector<std::uint8_t> jpeg_header;  // bytes [0, scan_begin) of original
  // Verbatim bytes this container must emit before its first segment: a
  // range *into jpeg_header* (header bytes are stored once, §A.1 "skip
  // serializing header" spirit).
  std::uint64_t prefix_off = 0;
  std::uint64_t prefix_len = 0;
  std::vector<std::uint8_t> suffix;       // verbatim chunk bytes after rows
  std::vector<SegmentHeader> segments;
};

// Serializes header + per-segment arithmetic streams into a container. The
// span form is the hot path: segment encoders keep their output in reusable
// CodecContext scratch buffers and hand views here, no per-call copies.
std::vector<std::uint8_t> serialize_container(
    const ContainerHeader& h,
    std::span<const std::span<const std::uint8_t>> arith);
std::vector<std::uint8_t> serialize_container(
    const ContainerHeader& h,
    const std::vector<std::vector<std::uint8_t>>& arith);

struct ParsedContainer {
  ContainerHeader header;
  std::vector<std::vector<std::uint8_t>> arith;  // per segment
};

// Incremental container parser: accepts the container in arbitrary-sized
// slices, as the bytes arrive from a socket (§3.4 — decode starts before a
// 4-MiB chunk is fully fetched). The header becomes available as soon as
// its bytes have arrived; arithmetic sections are de-interleaved into
// per-segment streams on the fly, so a caller can begin decoding a segment
// the moment its stream is complete.
//
// This is the only container-parsing code path: the whole-buffer
// parse_container() below is a feed-everything wrapper.
class ContainerParser {
 public:
  // Consumes the next input slice. Returns kSuccess while the stream is
  // still plausible (possibly incomplete); any classified failure is sticky
  // and every later call returns it again. Structural corruption is
  // kNotAnImage / kUnsupportedJpeg exactly as the whole-buffer parser
  // classifies it; feeding past the end of a complete container is
  // kNotAnImage ("trailing garbage").
  util::ExitCode feed(std::span<const std::uint8_t> bytes);

  util::ExitCode error() const { return error_; }
  const char* error_message() const { return error_msg_; }

  // True once the zlib header payload has arrived and parsed; header() and
  // the per-segment stream accessors are valid from then on.
  bool header_ready() const { return header_ready_; }
  const ContainerHeader& header() const { return header_; }

  // True once every segment's declared arithmetic bytes have arrived.
  bool complete() const { return state_ == State::kComplete; }

  // Per-segment stream progress (valid once header_ready()).
  std::size_t segment_count() const { return header_.segments.size(); }
  bool segment_complete(std::size_t seg) const {
    return arith_[seg].size() == arith_len_[seg];
  }
  const std::vector<std::uint8_t>& segment_arith(std::size_t seg) const {
    return arith_[seg];
  }
  const std::vector<std::vector<std::uint8_t>>& arith() const {
    return arith_;
  }

  // Total bytes consumed so far (diagnostics: "truncated at byte N").
  std::uint64_t bytes_consumed() const { return consumed_; }

  // Moves the parsed result out (call when complete()).
  ParsedContainer take() {
    return {std::move(header_), std::move(arith_)};
  }

 private:
  enum class State : std::uint8_t {
    kOuterHeader,   // magic .. output size + header blob length
    kHeaderBlob,    // accumulating the zlib header payload
    kSectionHead,   // [seg u8][len u32] of the next interleaved section
    kSectionBody,   // bytes of the current section
    kComplete,
    kError,
  };

  util::ExitCode fail(util::ExitCode code, const char* msg);
  void on_header_blob_complete();
  void maybe_complete();

  State state_ = State::kOuterHeader;
  util::ExitCode error_ = util::ExitCode::kSuccess;
  const char* error_msg_ = "";

  std::vector<std::uint8_t> pending_;  // partial fixed-size unit
  std::vector<std::uint8_t> blob_;     // zlib header payload
  std::size_t blob_len_ = 0;
  std::uint32_t n_segments_outer_ = 0;
  std::uint8_t version_outer_ = 0;

  bool header_ready_ = false;
  ContainerHeader header_;
  std::vector<std::uint32_t> arith_len_;
  std::vector<std::vector<std::uint8_t>> arith_;
  std::size_t cur_seg_ = 0;
  std::size_t body_remaining_ = 0;
  std::uint64_t consumed_ = 0;
};

// Parses and validates a complete container. Throws jpegfmt::ParseError
// (classified kNotAnImage / kImpossible for structurally hostile input,
// kShortRead for truncation) — a feed-everything wrapper over
// ContainerParser.
ParsedContainer parse_container(std::span<const std::uint8_t> bytes);

// True if the bytes begin with the Lepton magic.
bool looks_like_lepton(std::span<const std::uint8_t> bytes);

}  // namespace lepton::core
