// SECCOMP sandbox glue (§5.1).
//
// Production Lepton, before reading a single byte of untrusted input:
// allocates a zeroed 200-MiB region, pre-spawns its worker threads, sets up
// pipes, and then enters Linux secure computing mode, after which the
// kernel allows only read / write / exit / sigreturn — no open, no fork,
// no mmap. A compromised parser can then at worst corrupt its own output,
// which the round-trip gate rejects (§5.7).
//
// This repository reproduces the *architecture* portably (arena-allocated
// memory, pre-spawned threads, no allocation after input is read — see
// util/arena.h and the codec) and offers the real SECCOMP_MODE_STRICT entry
// here for Linux hosts. Because strict mode forbids nearly everything, it
// is exercised from a forked child in tests rather than wired into the
// library path.
#pragma once

namespace lepton::core {

// True if this platform can enter strict seccomp.
bool sandbox_supported();

// Enters SECCOMP_MODE_STRICT for the *calling process*. After this returns
// true, only read/write/exit/sigreturn are permitted; any other syscall
// kills the process. Returns false if unsupported/denied.
bool enter_strict_sandbox();

// Terminates the calling thread/process with the raw exit(2) syscall.
// Strict mode's allowlist contains exit but not exit_group, and libc's
// _exit()/quick_exit() issue exit_group — calling them inside the sandbox
// gets the process SIGKILLed instead of exiting with its status.
[[noreturn]] void sandbox_exit(int status);

}  // namespace lepton::core
