#include "lepton/format.h"

#include "util/exit_codes.h"
#include "util/serialize.h"
#include "util/zlib_util.h"

namespace lepton::core {
namespace {

using util::ExitCode;

[[noreturn]] void fail(ExitCode c, const char* msg) {
  throw jpegfmt::ParseError(c, msg);
}

void put_handover(util::Serializer& s, const jpegfmt::HuffmanHandover& h) {
  s.u64(h.pos.byte_off);
  s.u8(static_cast<std::uint8_t>(h.pos.bit_off));
  s.u8(h.partial_byte);
  for (int i = 0; i < 4; ++i) s.i16(h.dc_pred[i]);
  s.u32(h.mcus_done);
  s.u32(h.rst_seen);
}

jpegfmt::HuffmanHandover get_handover(util::Deserializer& d) {
  jpegfmt::HuffmanHandover h;
  h.pos.byte_off = d.u64();
  h.pos.bit_off = d.u8();
  h.partial_byte = d.u8();
  for (int i = 0; i < 4; ++i) h.dc_pred[i] = d.i16();
  h.mcus_done = d.u32();
  h.rst_seen = d.u32();
  if (h.pos.bit_off > 7) fail(ExitCode::kNotAnImage, "handover bit offset");
  return h;
}

// §A.1 interleave schedule: sections of 256, then 4096, then 65536 bytes.
std::size_t section_size(int round) {
  if (round == 0) return 256;
  if (round == 1) return 4096;
  return 65536;
}

}  // namespace

bool looks_like_lepton(std::span<const std::uint8_t> bytes) {
  return bytes.size() >= 2 && bytes[0] == kMagic0 && bytes[1] == kMagic1;
}

std::vector<std::uint8_t> serialize_container(
    const ContainerHeader& h,
    const std::vector<std::vector<std::uint8_t>>& arith) {
  std::vector<std::span<const std::uint8_t>> views;
  views.reserve(arith.size());
  for (const auto& a : arith) views.emplace_back(a.data(), a.size());
  return serialize_container(h, views);
}

std::vector<std::uint8_t> serialize_container(
    const ContainerHeader& h,
    std::span<const std::span<const std::uint8_t>> arith) {
  // ---- zlib header payload ----
  util::Serializer p;
  p.u8(h.is_chunk ? 1 : 0);
  p.u64(h.file_total_size);
  p.u64(h.chunk_off);
  p.u64(h.chunk_len);
  p.u64(h.scan_begin_abs);
  p.u8(h.pad_bit);
  p.u32(h.rst_count);
  p.u8(static_cast<std::uint8_t>((h.model.lakhani_edges ? 1 : 0) |
                                 (h.model.dc_gradient ? 2 : 0) |
                                 (h.model.zigzag_77 ? 4 : 0)));
  p.blob({h.jpeg_header.data(), h.jpeg_header.size()});
  p.u64(h.prefix_off);
  p.u64(h.prefix_len);
  p.blob({h.suffix.data(), h.suffix.size()});
  p.u32(static_cast<std::uint32_t>(h.segments.size()));
  const bool v3 = h.version == kFormatVersionV3;
  for (std::size_t i = 0; i < h.segments.size(); ++i) {
    const auto& seg = h.segments[i];
    p.u32(seg.start_row);
    p.u32(seg.end_row);
    put_handover(p, seg.handover);
    p.u64(seg.out_len);
    p.blob({seg.prepend.data(), seg.prepend.size()});
    p.u32(static_cast<std::uint32_t>(arith[i].size()));
    if (v3) {
      // Lane table: the payload is the lanes' streams concatenated in
      // order; an absent table (v2) means one implicit lane.
      p.u8(static_cast<std::uint8_t>(
          seg.lane_lens.empty() ? 1 : seg.lane_lens.size()));
      if (seg.lane_lens.empty()) {
        p.u32(static_cast<std::uint32_t>(arith[i].size()));
      } else {
        for (std::uint32_t len : seg.lane_lens) p.u32(len);
      }
    }
  }
  auto zpayload = util::zlib_compress({p.data().data(), p.size()}, 6);

  // ---- outer container ----
  util::Serializer s;
  s.u8(kMagic0);
  s.u8(kMagic1);
  s.u8(v3 ? kFormatVersionV3 : kFormatVersion);
  s.u8(h.is_chunk ? 1 : 0);
  s.u32(static_cast<std::uint32_t>(h.segments.size()));
  for (int i = 0; i < 12; ++i) s.u8(0);  // truncated git revision (§A.1)
  s.u32(static_cast<std::uint32_t>(h.chunk_len));
  s.blob({zpayload.data(), zpayload.size()});

  // ---- interleaved arithmetic sections (§A.1) ----
  std::vector<std::size_t> cursor(arith.size(), 0);
  std::vector<int> round(arith.size(), 0);
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t i = 0; i < arith.size(); ++i) {
      std::size_t left = arith[i].size() - cursor[i];
      if (left == 0) continue;
      std::size_t n = std::min(left, section_size(round[i]));
      ++round[i];
      s.u8(static_cast<std::uint8_t>(i));
      s.u32(static_cast<std::uint32_t>(n));
      s.bytes({arith[i].data() + cursor[i], n});
      cursor[i] += n;
      any = true;
    }
  }
  return s.take();
}

// ---- incremental parser -----------------------------------------------------

namespace {

// Outer fixed prefix: magic(2) version(1) flags(1) n_segments(4)
// revision(12) output-size(4) header-blob-length(4).
constexpr std::size_t kOuterFixedBytes = 28;
constexpr std::size_t kSectionHeadBytes = 5;  // [seg u8][len u32]

std::uint32_t le32_at(const std::vector<std::uint8_t>& b, std::size_t off) {
  return static_cast<std::uint32_t>(b[off]) |
         (static_cast<std::uint32_t>(b[off + 1]) << 8) |
         (static_cast<std::uint32_t>(b[off + 2]) << 16) |
         (static_cast<std::uint32_t>(b[off + 3]) << 24);
}

}  // namespace

util::ExitCode ContainerParser::fail(util::ExitCode code, const char* msg) {
  state_ = State::kError;
  error_ = code;
  error_msg_ = msg;
  return code;
}

void ContainerParser::on_header_blob_complete() {
  std::vector<std::uint8_t> payload;
  if (!util::zlib_decompress({blob_.data(), blob_.size()}, payload)) {
    fail(ExitCode::kNotAnImage, "corrupt header payload");
    return;
  }
  blob_.clear();
  blob_.shrink_to_fit();

  util::Deserializer q({payload.data(), payload.size()});
  auto& h = header_;
  h.version = version_outer_;
  h.is_chunk = q.u8() != 0;
  h.file_total_size = q.u64();
  h.chunk_off = q.u64();
  h.chunk_len = q.u64();
  h.scan_begin_abs = q.u64();
  h.pad_bit = q.u8() & 1;
  h.rst_count = q.u32();
  std::uint8_t mflags = q.u8();
  h.model.lakhani_edges = (mflags & 1) != 0;
  h.model.dc_gradient = (mflags & 2) != 0;
  h.model.zigzag_77 = (mflags & 4) != 0;
  h.jpeg_header = q.blob();
  h.prefix_off = q.u64();
  h.prefix_len = q.u64();
  h.suffix = q.blob();
  if (h.prefix_off + h.prefix_len > h.jpeg_header.size()) {
    fail(ExitCode::kNotAnImage, "prefix range outside header");
    return;
  }
  std::uint32_t n_segments = q.u32();
  if (!q.ok() || n_segments != n_segments_outer_ ||
      n_segments > kMaxSegments) {
    fail(ExitCode::kNotAnImage, "segment count mismatch");
    return;
  }
  arith_len_.resize(n_segments);
  const bool v3 = version_outer_ == kFormatVersionV3;
  for (std::uint32_t i = 0; i < n_segments; ++i) {
    SegmentHeader seg;
    seg.start_row = q.u32();
    seg.end_row = q.u32();
    seg.handover = get_handover(q);
    seg.out_len = q.u64();
    seg.prepend = q.blob();
    arith_len_[i] = q.u32();
    if (v3) {
      // Lane table: bounded count, and the lane streams must tile the
      // segment's declared payload exactly — a hostile table cannot point
      // lanes past the bytes that will actually arrive.
      std::uint32_t lanes = q.u8();
      if (lanes == 0 || lanes > kMaxLanes) {
        fail(ExitCode::kNotAnImage, "corrupt lane table");
        return;
      }
      std::uint64_t lane_sum = 0;
      seg.lane_lens.resize(lanes);
      for (std::uint32_t k = 0; k < lanes; ++k) {
        seg.lane_lens[k] = q.u32();
        lane_sum += seg.lane_lens[k];
      }
      if (!q.ok() || lane_sum != arith_len_[i]) {
        fail(ExitCode::kNotAnImage, "corrupt lane table");
        return;
      }
    }
    if (!q.ok() || seg.end_row < seg.start_row) {
      fail(ExitCode::kNotAnImage, "corrupt segment header");
      return;
    }
    h.segments.push_back(std::move(seg));
  }
  arith_.resize(n_segments);
  // Eager reservation is an optimization, not a promise: the declared
  // lengths are attacker-controlled (4096 segments x 4 GiB each would be
  // ~16 TiB), so cap the total reserved up front. Real containers fit the
  // budget comfortably; anything larger grows with the bytes that are
  // actually fed — which the section-overflow check bounds per segment.
  std::size_t reserve_budget = 8u << 20;
  for (std::uint32_t i = 0; i < n_segments; ++i) {
    std::size_t r = std::min<std::size_t>(arith_len_[i], reserve_budget);
    arith_[i].reserve(r);
    reserve_budget -= r;
  }
  header_ready_ = true;
}

void ContainerParser::maybe_complete() {
  for (std::size_t i = 0; i < arith_.size(); ++i) {
    if (arith_[i].size() != arith_len_[i]) return;
  }
  state_ = State::kComplete;
}

util::ExitCode ContainerParser::feed(std::span<const std::uint8_t> in) {
  if (state_ == State::kError) return error_;
  std::size_t i = 0;
  util::ExitCode rc = ExitCode::kSuccess;
  for (bool more = true; more && rc == ExitCode::kSuccess;) {
    switch (state_) {
      case State::kOuterHeader: {
        while (pending_.size() < kOuterFixedBytes && i < in.size()) {
          pending_.push_back(in[i++]);
        }
        // Classify as early as the bytes allow: a stream that is not a
        // Lepton container (or is the §6.7 incompatible version) is
        // rejected within its first three bytes, not at finish().
        if (!pending_.empty() && pending_[0] != kMagic0) {
          rc = fail(ExitCode::kNotAnImage, "bad magic");
        } else if (pending_.size() >= 2 && pending_[1] != kMagic1) {
          rc = fail(ExitCode::kNotAnImage, "bad magic");
        } else if (pending_.size() >= 3 && pending_[2] != kFormatVersion &&
                   pending_[2] != kFormatVersionV3) {
          // §6.7: any version this build does not speak — including the
          // pre-overhaul version 1 — fails loudly, never decodes garbage.
          rc = fail(ExitCode::kUnsupportedJpeg,
                    "unsupported container version");
        } else if (pending_.size() < kOuterFixedBytes) {
          more = false;  // need more input
        } else {
          version_outer_ = pending_[2];
          n_segments_outer_ = le32_at(pending_, 4);
          blob_len_ = le32_at(pending_, 24);
          if (n_segments_outer_ > kMaxSegments) {
            rc = fail(ExitCode::kNotAnImage, "segment count mismatch");
          } else {
            pending_.clear();
            blob_.reserve(blob_len_ < (1u << 20) ? blob_len_ : (1u << 20));
            state_ = State::kHeaderBlob;
          }
        }
        break;
      }
      case State::kHeaderBlob: {
        std::size_t take = std::min(blob_len_ - blob_.size(), in.size() - i);
        blob_.insert(blob_.end(), in.begin() + static_cast<std::ptrdiff_t>(i),
                     in.begin() + static_cast<std::ptrdiff_t>(i + take));
        i += take;
        if (blob_.size() < blob_len_) {
          more = false;
        } else {
          on_header_blob_complete();
          if (state_ == State::kError) {
            rc = error_;
          } else {
            state_ = State::kSectionHead;
            maybe_complete();  // zero-payload containers have no sections
          }
        }
        break;
      }
      case State::kSectionHead: {
        while (pending_.size() < kSectionHeadBytes && i < in.size()) {
          pending_.push_back(in[i++]);
        }
        if (pending_.size() < kSectionHeadBytes) {
          more = false;
        } else {
          std::size_t seg = pending_[0];
          std::uint32_t n = le32_at(pending_, 1);
          if (seg >= arith_.size()) {
            rc = fail(ExitCode::kNotAnImage, "corrupt interleave section");
          } else if (arith_[seg].size() + n > arith_len_[seg]) {
            rc = fail(ExitCode::kNotAnImage, "section overflow");
          } else {
            pending_.clear();
            cur_seg_ = seg;
            body_remaining_ = n;
            state_ = State::kSectionBody;
          }
        }
        break;
      }
      case State::kSectionBody: {
        std::size_t take = std::min(body_remaining_, in.size() - i);
        arith_[cur_seg_].insert(
            arith_[cur_seg_].end(), in.begin() + static_cast<std::ptrdiff_t>(i),
            in.begin() + static_cast<std::ptrdiff_t>(i + take));
        i += take;
        body_remaining_ -= take;
        if (body_remaining_ > 0) {
          more = false;
        } else {
          state_ = State::kSectionHead;
          maybe_complete();
        }
        break;
      }
      case State::kComplete: {
        if (i < in.size()) {
          rc = fail(ExitCode::kNotAnImage, "trailing garbage after container");
        } else {
          more = false;
        }
        break;
      }
      case State::kError:
        rc = error_;
        break;
    }
  }
  consumed_ += i;
  return rc;
}

ParsedContainer parse_container(std::span<const std::uint8_t> bytes) {
  ContainerParser p;
  util::ExitCode code = p.feed(bytes);
  if (code != ExitCode::kSuccess) {
    throw jpegfmt::ParseError(code, p.error_message());
  }
  if (!p.complete()) {
    // The buffer ended before the bytes its own header promised: the
    // whole-buffer equivalent of a connection cut mid-stream.
    throw jpegfmt::ParseError(ExitCode::kShortRead, "container truncated");
  }
  return p.take();
}

}  // namespace lepton::core
