#include "lepton/format.h"

#include "util/exit_codes.h"
#include "util/serialize.h"
#include "util/zlib_util.h"

namespace lepton::core {
namespace {

using util::ExitCode;

[[noreturn]] void fail(ExitCode c, const char* msg) {
  throw jpegfmt::ParseError(c, msg);
}

void put_handover(util::Serializer& s, const jpegfmt::HuffmanHandover& h) {
  s.u64(h.pos.byte_off);
  s.u8(static_cast<std::uint8_t>(h.pos.bit_off));
  s.u8(h.partial_byte);
  for (int i = 0; i < 4; ++i) s.i16(h.dc_pred[i]);
  s.u32(h.mcus_done);
  s.u32(h.rst_seen);
}

jpegfmt::HuffmanHandover get_handover(util::Deserializer& d) {
  jpegfmt::HuffmanHandover h;
  h.pos.byte_off = d.u64();
  h.pos.bit_off = d.u8();
  h.partial_byte = d.u8();
  for (int i = 0; i < 4; ++i) h.dc_pred[i] = d.i16();
  h.mcus_done = d.u32();
  h.rst_seen = d.u32();
  if (h.pos.bit_off > 7) fail(ExitCode::kNotAnImage, "handover bit offset");
  return h;
}

// §A.1 interleave schedule: sections of 256, then 4096, then 65536 bytes.
std::size_t section_size(int round) {
  if (round == 0) return 256;
  if (round == 1) return 4096;
  return 65536;
}

}  // namespace

bool looks_like_lepton(std::span<const std::uint8_t> bytes) {
  return bytes.size() >= 2 && bytes[0] == kMagic0 && bytes[1] == kMagic1;
}

std::vector<std::uint8_t> serialize_container(
    const ContainerHeader& h,
    const std::vector<std::vector<std::uint8_t>>& arith) {
  std::vector<std::span<const std::uint8_t>> views;
  views.reserve(arith.size());
  for (const auto& a : arith) views.emplace_back(a.data(), a.size());
  return serialize_container(h, views);
}

std::vector<std::uint8_t> serialize_container(
    const ContainerHeader& h,
    std::span<const std::span<const std::uint8_t>> arith) {
  // ---- zlib header payload ----
  util::Serializer p;
  p.u8(h.is_chunk ? 1 : 0);
  p.u64(h.file_total_size);
  p.u64(h.chunk_off);
  p.u64(h.chunk_len);
  p.u64(h.scan_begin_abs);
  p.u8(h.pad_bit);
  p.u32(h.rst_count);
  p.u8(static_cast<std::uint8_t>((h.model.lakhani_edges ? 1 : 0) |
                                 (h.model.dc_gradient ? 2 : 0) |
                                 (h.model.zigzag_77 ? 4 : 0)));
  p.blob({h.jpeg_header.data(), h.jpeg_header.size()});
  p.u64(h.prefix_off);
  p.u64(h.prefix_len);
  p.blob({h.suffix.data(), h.suffix.size()});
  p.u32(static_cast<std::uint32_t>(h.segments.size()));
  for (std::size_t i = 0; i < h.segments.size(); ++i) {
    const auto& seg = h.segments[i];
    p.u32(seg.start_row);
    p.u32(seg.end_row);
    put_handover(p, seg.handover);
    p.u64(seg.out_len);
    p.blob({seg.prepend.data(), seg.prepend.size()});
    p.u32(static_cast<std::uint32_t>(arith[i].size()));
  }
  auto zpayload = util::zlib_compress({p.data().data(), p.size()}, 6);

  // ---- outer container ----
  util::Serializer s;
  s.u8(kMagic0);
  s.u8(kMagic1);
  s.u8(kFormatVersion);
  s.u8(h.is_chunk ? 1 : 0);
  s.u32(static_cast<std::uint32_t>(h.segments.size()));
  for (int i = 0; i < 12; ++i) s.u8(0);  // truncated git revision (§A.1)
  s.u32(static_cast<std::uint32_t>(h.chunk_len));
  s.blob({zpayload.data(), zpayload.size()});

  // ---- interleaved arithmetic sections (§A.1) ----
  std::vector<std::size_t> cursor(arith.size(), 0);
  std::vector<int> round(arith.size(), 0);
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t i = 0; i < arith.size(); ++i) {
      std::size_t left = arith[i].size() - cursor[i];
      if (left == 0) continue;
      std::size_t n = std::min(left, section_size(round[i]));
      ++round[i];
      s.u8(static_cast<std::uint8_t>(i));
      s.u32(static_cast<std::uint32_t>(n));
      s.bytes({arith[i].data() + cursor[i], n});
      cursor[i] += n;
      any = true;
    }
  }
  return s.take();
}

ParsedContainer parse_container(std::span<const std::uint8_t> bytes) {
  util::Deserializer d(bytes);
  if (d.u8() != kMagic0 || d.u8() != kMagic1) {
    fail(ExitCode::kNotAnImage, "bad magic");
  }
  std::uint8_t version = d.u8();
  if (version != kFormatVersion) {
    // §6.7's "incompatible old version" incident: fail loudly, do not guess.
    fail(ExitCode::kUnsupportedJpeg, "unsupported container version");
  }
  d.u8();  // flags (mirrored inside the payload)
  std::uint32_t n_segments_outer = d.u32();
  for (int i = 0; i < 12; ++i) d.u8();  // git revision
  d.u32();                              // output size (redundant)

  auto zpayload = d.blob();
  if (!d.ok()) fail(ExitCode::kNotAnImage, "truncated container");
  std::vector<std::uint8_t> payload;
  if (!util::zlib_decompress({zpayload.data(), zpayload.size()}, payload)) {
    fail(ExitCode::kNotAnImage, "corrupt header payload");
  }

  ParsedContainer out;
  util::Deserializer q({payload.data(), payload.size()});
  auto& h = out.header;
  h.is_chunk = q.u8() != 0;
  h.file_total_size = q.u64();
  h.chunk_off = q.u64();
  h.chunk_len = q.u64();
  h.scan_begin_abs = q.u64();
  h.pad_bit = q.u8() & 1;
  h.rst_count = q.u32();
  std::uint8_t mflags = q.u8();
  h.model.lakhani_edges = (mflags & 1) != 0;
  h.model.dc_gradient = (mflags & 2) != 0;
  h.model.zigzag_77 = (mflags & 4) != 0;
  h.jpeg_header = q.blob();
  h.prefix_off = q.u64();
  h.prefix_len = q.u64();
  h.suffix = q.blob();
  if (h.prefix_off + h.prefix_len > h.jpeg_header.size()) {
    fail(ExitCode::kNotAnImage, "prefix range outside header");
  }
  std::uint32_t n_segments = q.u32();
  if (!q.ok() || n_segments != n_segments_outer || n_segments > kMaxSegments) {
    fail(ExitCode::kNotAnImage, "segment count mismatch");
  }
  std::vector<std::uint32_t> arith_len(n_segments);
  for (std::uint32_t i = 0; i < n_segments; ++i) {
    SegmentHeader seg;
    seg.start_row = q.u32();
    seg.end_row = q.u32();
    seg.handover = get_handover(q);
    seg.out_len = q.u64();
    seg.prepend = q.blob();
    arith_len[i] = q.u32();
    if (!q.ok() || seg.end_row < seg.start_row) {
      fail(ExitCode::kNotAnImage, "corrupt segment header");
    }
    h.segments.push_back(std::move(seg));
  }

  // ---- de-interleave the arithmetic sections ----
  out.arith.resize(n_segments);
  for (std::uint32_t i = 0; i < n_segments; ++i) {
    out.arith[i].reserve(arith_len[i]);
  }
  while (d.remaining() > 0) {
    std::uint8_t seg = d.u8();
    std::uint32_t n = d.u32();
    if (!d.ok() || seg >= n_segments) {
      fail(ExitCode::kNotAnImage, "corrupt interleave section");
    }
    auto view = d.view(n);
    if (!d.ok()) fail(ExitCode::kNotAnImage, "truncated section");
    if (out.arith[seg].size() + n > arith_len[seg]) {
      fail(ExitCode::kNotAnImage, "section overflow");
    }
    out.arith[seg].insert(out.arith[seg].end(), view.begin(), view.end());
  }
  for (std::uint32_t i = 0; i < n_segments; ++i) {
    if (out.arith[i].size() != arith_len[i]) {
      fail(ExitCode::kNotAnImage, "arith stream truncated");
    }
  }
  return out;
}

}  // namespace lepton::core
