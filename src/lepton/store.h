// The blockserver admit path (§5.7 "Safety Mechanisms").
//
// Production rule: a chunk is admitted in Lepton form only if it
// round-trips — decodes byte-identically to its input — at admit time; the
// compressed buffer is md5-summed before the round-trip test so in-memory
// corruption between check and write is detectable; everything Lepton
// rejects (or that fails the round trip) is stored with Deflate instead.
// "We have never been unable to decode a stored file" rests on this gate.
//
// Both put() and get() are thin wrappers over the streaming sessions
// (session.h) via encode_jpeg/decode_lepton, and both consume the decoder's
// payload-consumption facts: a decode whose arithmetic payload overran (or
// was left unconsumed) is treated as corrupt even when the byte count came
// out right.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "lepton/codec.h"

namespace lepton {

enum class StorageKind : std::uint8_t {
  kLepton = 1,
  kDeflate = 2,
  // Degraded-mode admission (§4, §6): the original bytes, untransformed.
  // Chosen when conversion is unavailable *and* spending local CPU on
  // Deflate is not wanted either — the fleet client's fallback when its
  // breaker set is exhausted or a remote encode fails. Durability first;
  // the compression win is an optimization, never a gate.
  kPassthrough = 3,
};

// Stable names for StorageKind — the durable store's journal records the
// kind by name (storage/durable_store.h), so the mapping is part of the
// on-disk format: never rename, only append.
constexpr std::string_view storage_kind_name(StorageKind k) {
  switch (k) {
    case StorageKind::kLepton: return "lepton";
    case StorageKind::kDeflate: return "deflate";
    case StorageKind::kPassthrough: return "passthrough";
  }
  return "?";
}

inline bool parse_storage_kind(std::string_view s, StorageKind* out) {
  for (StorageKind k : {StorageKind::kLepton, StorageKind::kDeflate,
                        StorageKind::kPassthrough}) {
    if (s == storage_kind_name(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

struct StoredObject {
  StorageKind kind = StorageKind::kDeflate;
  std::vector<std::uint8_t> payload;
  std::string md5_hex;  // of payload, taken before the round-trip test
};

struct PutStats {
  util::ExitCode lepton_code = util::ExitCode::kSuccess;
  bool roundtrip_ok = false;
  std::size_t bytes_in = 0;
  std::size_t bytes_out = 0;
};

class TransparentStore {
 public:
  explicit TransparentStore(EncodeOptions opts = {}) : opts_(opts) {}

  TransparentStore(const TransparentStore&) = delete;
  TransparentStore& operator=(const TransparentStore&) = delete;

  // Compresses and admits a file. Never fails: the Deflate fallback always
  // succeeds. `stats` (optional) reports what happened, in §6.2 terms.
  // Thread-safe: concurrent put() calls on one store are supported (the
  // store holds no per-call state beyond the shutoff cache below).
  StoredObject put(std::span<const std::uint8_t> file,
                   PutStats* stats = nullptr) const;

  // Pass-through admission: stores `file` unmodified (md5-sealed like every
  // object). The fleet client degrades to this when no server can convert —
  // the paper's never-lose-a-byte posture with zero local conversion cost.
  StoredObject put_passthrough(std::span<const std::uint8_t> file,
                               PutStats* stats = nullptr) const;

  // Admits a container produced *elsewhere* (a fleet conversion) under the
  // same §5.7 gate as put(): md5 the container first, then require a local
  // round-trip decode byte-identical to `original` with the payload exactly
  // consumed. True = *out is the admitted Lepton object; false = the
  // container failed the gate (corrupt or mismatched) and nothing was
  // admitted — the caller falls back, it never stores the container.
  bool admit_converted(std::span<const std::uint8_t> original,
                       std::vector<std::uint8_t> container, StoredObject* out,
                       PutStats* stats = nullptr) const;

  // Retrieves the original bytes. Returns a classified error if the
  // payload is corrupt: md5 mismatch, failed decode, or a "successful"
  // Lepton decode whose arithmetic payload overran / was not exhausted
  // (classified kShortRead — the §5.7 posture that consumption facts are
  // part of correctness). `decode_stats` (optional) receives the raw facts
  // for Lepton-stored objects.
  Result get(const StoredObject& obj, DecodeStats* decode_stats = nullptr) const;

  // Emergency shutoff (§5.7): when tripped, put() skips Lepton entirely and
  // goes straight to Deflate. The production switch is a file in /dev/shm
  // checked before compressing each chunk; this is the same check as a
  // process-local flag plus an optional file path.
  //
  // Semantics of shutoff_active():
  //  * The process-local flag (set_shutoff) takes effect immediately.
  //  * The file check is cached for kShutoffTtl: put() at fleet rates must
  //    not stat() per chunk, and the §5.7 guarantee is only "compression
  //    stops fleet-wide within ~30 seconds", so a sub-second-stale answer
  //    is well inside contract.
  //  * Safe under concurrent put(): the cache is a pair of atomics.
  //    Racing threads may redundantly stat() once each at refresh time and
  //    may observe the flip up to kShutoffTtl late — never a torn value.
  //  * set_shutoff_file() invalidates the cache (the next check stats).
  //  * The staleness window is therefore exactly kShutoffTtlNs: an operator
  //    who touches the shutoff file can observe shutoff_active() == false
  //    for up to 250 ms afterwards. Layers that must answer an operator
  //    *now* — the serving front-end's SHUTOFF frame (server/protocol.h) —
  //    call recheck_shutoff() instead, which stats unconditionally.
  void set_shutoff(bool on) {
    shutoff_.store(on, std::memory_order_relaxed);
  }
  bool shutoff() const { return shutoff_.load(std::memory_order_relaxed); }
  void set_shutoff_file(std::string path);
  bool shutoff_active() const;

  // Forced re-check: stats the shutoff file now (when one is configured),
  // refreshes the TTL cache with the result, and returns the current state.
  // This is the operator-facing path — put() keeps using the cached
  // shutoff_active() so fleet-rate traffic never stats per chunk, but a
  // SHUTOFF query frame must not answer up to 250 ms stale.
  bool recheck_shutoff() const;

  static constexpr std::int64_t kShutoffTtlNs = 250'000'000;  // 250 ms

 private:
  EncodeOptions opts_;
  // Atomic: the emergency path is a watchdog thread flipping the switch
  // while worker threads are inside put().
  std::atomic<bool> shutoff_{false};
  std::string shutoff_file_;
  // Cached file-stat result: last check time (steady-clock ns; kNeverChecked
  // forces a stat) and the cached answer. Ordering: the answer is published
  // before the timestamp, so a reader that sees a fresh timestamp sees the
  // matching answer.
  static constexpr std::int64_t kNeverChecked =
      std::numeric_limits<std::int64_t>::min();
  mutable std::atomic<std::int64_t> shutoff_checked_ns_{kNeverChecked};
  mutable std::atomic<bool> shutoff_cached_{false};
};

}  // namespace lepton
