// The blockserver admit path (§5.7 "Safety Mechanisms").
//
// Production rule: a chunk is admitted in Lepton form only if it
// round-trips — decodes byte-identically to its input — at admit time; the
// compressed buffer is md5-summed before the round-trip test so in-memory
// corruption between check and write is detectable; everything Lepton
// rejects (or that fails the round trip) is stored with Deflate instead.
// "We have never been unable to decode a stored file" rests on this gate.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "lepton/codec.h"

namespace lepton {

enum class StorageKind : std::uint8_t { kLepton = 1, kDeflate = 2 };

struct StoredObject {
  StorageKind kind = StorageKind::kDeflate;
  std::vector<std::uint8_t> payload;
  std::string md5_hex;  // of payload, taken before the round-trip test
};

struct PutStats {
  util::ExitCode lepton_code = util::ExitCode::kSuccess;
  bool roundtrip_ok = false;
  std::size_t bytes_in = 0;
  std::size_t bytes_out = 0;
};

class TransparentStore {
 public:
  explicit TransparentStore(EncodeOptions opts = {}) : opts_(opts) {}

  // Compresses and admits a file. Never fails: the Deflate fallback always
  // succeeds. `stats` (optional) reports what happened, in §6.2 terms.
  StoredObject put(std::span<const std::uint8_t> file,
                   PutStats* stats = nullptr) const;

  // Retrieves the original bytes. Returns a classified error if the payload
  // is corrupt (payload md5 mismatch or failed decode).
  Result get(const StoredObject& obj) const;

  // Emergency shutoff (§5.7): when tripped, put() skips Lepton entirely and
  // goes straight to Deflate. The production switch is a file in /dev/shm
  // checked before compressing each chunk; this is the same check as a
  // process-local flag plus an optional file path.
  void set_shutoff(bool on) { shutoff_ = on; }
  bool shutoff() const { return shutoff_; }
  void set_shutoff_file(std::string path) { shutoff_file_ = std::move(path); }
  bool shutoff_active() const;

 private:
  EncodeOptions opts_;
  bool shutoff_ = false;
  std::string shutoff_file_;
};

}  // namespace lepton
