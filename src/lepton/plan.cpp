#include "lepton/plan.h"

#include <algorithm>

namespace lepton::core {
namespace {

// First MCU row whose scan byte offset is >= rel (== mcus_y when none).
std::size_t first_row_at_or_after(const jpegfmt::ScanDecodeResult& dec,
                                  std::uint64_t rel) {
  const auto& rb = dec.row_boundaries;
  auto it = std::lower_bound(
      rb.begin(), rb.end(), rel, [](const jpegfmt::RowBoundary& b,
                                    std::uint64_t v) {
        return b.handover.pos.byte_off < v;
      });
  return static_cast<std::size_t>(it - rb.begin());
}

std::uint64_t row_off(const jpegfmt::ScanDecodeResult& dec, std::size_t r,
                      std::uint64_t end_byte) {
  return r < dec.row_boundaries.size()
             ? dec.row_boundaries[r].handover.pos.byte_off
             : end_byte;
}

}  // namespace

ContainerPlan plan_byte_range(const jpegfmt::JpegFile& jf,
                              const jpegfmt::ScanDecodeResult& dec,
                              std::uint64_t begin, std::uint64_t end,
                              const EncodeOptions& opts, bool is_chunk) {
  const std::uint64_t file_size = jf.file.size();
  end = std::min(end, file_size);

  ContainerPlan plan;
  plan.is_chunk = is_chunk;
  plan.file_total_size = file_size;
  plan.chunk_off = begin;
  plan.chunk_len = end - begin;

  const std::uint64_t scan_begin = jf.scan_begin;
  const std::uint64_t end_byte = dec.end_state.pos.byte_off;  // rel to scan
  const std::uint64_t trail_abs = scan_begin + end_byte;

  // ---- verbatim prefix: the part of [begin,end) inside the header ----
  if (begin < scan_begin) {
    plan.prefix_off = begin;
    plan.prefix_len = std::min(end, scan_begin) - begin;
  }

  // ---- re-encodable scan rows ----
  std::uint64_t rel0 = begin > scan_begin ? begin - scan_begin : 0;
  std::uint64_t rel1 =
      end > scan_begin ? std::min(end - scan_begin, end_byte) : 0;
  if (rel1 > rel0) {
    std::size_t r_first = first_row_at_or_after(dec, rel0);
    std::uint64_t first_off = row_off(dec, r_first, end_byte);
    if (first_off >= rel1) {
      // The range is smaller than one MCU row: all verbatim.
      SegmentHeader seg;
      seg.start_row = seg.end_row = 0;
      seg.out_len = 0;
      auto scan = jf.scan_bytes();
      seg.prepend.assign(scan.begin() + static_cast<std::ptrdiff_t>(rel0),
                         scan.begin() + static_cast<std::ptrdiff_t>(rel1));
      plan.segments.push_back(std::move(seg));
    } else {
      std::size_t r_last = first_row_at_or_after(dec, rel1);
      // Rows [r_first, r_last) re-encode; bytes [rel0, first_off) verbatim.
      std::vector<std::uint8_t> prepend;
      if (first_off > rel0) {
        auto scan = jf.scan_bytes();
        prepend.assign(scan.begin() + static_cast<std::ptrdiff_t>(rel0),
                       scan.begin() + static_cast<std::ptrdiff_t>(first_off));
      }
      std::size_t nrows = r_last - r_first;
      int threads;
      if (opts.one_way) {
        threads = 1;
      } else if (opts.force_threads > 0) {
        threads = opts.force_threads;
      } else {
        threads = threads_for_size(static_cast<std::size_t>(rel1 - rel0),
                                   opts.max_threads);
      }
      // The format rejects containers above kMaxSegments; never plan one.
      if (threads > static_cast<int>(kMaxSegments)) {
        threads = static_cast<int>(kMaxSegments);
      }
      std::size_t nseg =
          std::min<std::size_t>(static_cast<std::size_t>(threads), nrows);
      for (std::size_t s = 0; s < nseg; ++s) {
        SegmentHeader seg;
        std::size_t a = r_first + nrows * s / nseg;
        std::size_t b = r_first + nrows * (s + 1) / nseg;
        seg.start_row = static_cast<std::uint32_t>(a);
        seg.end_row = static_cast<std::uint32_t>(b);
        seg.handover = dec.row_boundaries[a].handover;
        std::uint64_t seg_begin = row_off(dec, a, end_byte);
        std::uint64_t seg_end =
            s + 1 == nseg ? rel1 : row_off(dec, b, end_byte);
        seg.out_len = seg_end - seg_begin;
        if (s == 0) seg.prepend = std::move(prepend);
        plan.segments.push_back(std::move(seg));
      }
    }
  }

  // ---- verbatim suffix: trailing scan bytes, EOI, file garbage ----
  std::uint64_t suf0 = std::max(begin, trail_abs);
  if (end > suf0) {
    plan.suffix.assign(
        jf.file.begin() + static_cast<std::ptrdiff_t>(suf0),
        jf.file.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return plan;
}

ContainerPlan plan_whole_file(const jpegfmt::JpegFile& jf,
                              const jpegfmt::ScanDecodeResult& dec,
                              const EncodeOptions& opts) {
  return plan_byte_range(jf, dec, 0, jf.file.size(), opts,
                         /*is_chunk=*/false);
}

}  // namespace lepton::core
