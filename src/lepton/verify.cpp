#include "lepton/verify.h"

#include "lepton/context.h"

namespace lepton {

void QualificationRunner::run_file(std::span<const std::uint8_t> file,
                                   QualificationReport* rep) {
  ++rep->files;
  Result enc = encode_jpeg(file, opts_);
  auto code_idx = static_cast<std::size_t>(enc.code);
  if (!enc.ok()) {
    ++rep->rejected;
    ++rep->by_code[code_idx];
    return;
  }

  // Decode #1: production configuration (multithreaded), with stream
  // accounting: a "successful" decode whose arithmetic payload overran is a
  // truncated/corrupt stream that happened to produce the right byte count,
  // and must not be admitted (§5.7).
  DecodeOptions par;
  par.run_parallel = true;
  DecodeStats stats;
  Result d1;
  {
    VectorSink sink;
    d1.code = decode_lepton({enc.data.data(), enc.data.size()}, sink, par,
                            default_context(), &stats);
    d1.data = std::move(sink.data);
  }

  // Decode #2: independent schedule (the gcc/asan single-threaded build in
  // production, §5.2/§5.6).
  DecodeOptions ser;
  ser.run_parallel = false;
  Result d2 = decode_lepton({enc.data.data(), enc.data.size()}, ser);
  if (mutator_) mutator_(d2.data);

  bool rt1 = d1.ok() && !stats.payload_overrun &&
             d1.data.size() == file.size() &&
             std::equal(d1.data.begin(), d1.data.end(), file.begin());
  if (!rt1) {
    ++rep->mismatches;
    ++rep->by_code[static_cast<std::size_t>(util::ExitCode::kRoundtripFailed)];
    rep->alerts.push_back(
        stats.payload_overrun
            ? "decoder overran its arithmetic payload (truncation, §5.7)"
            : "round-trip mismatch (pages the on-call, §5.7)");
    return;
  }
  if (!d2.ok() || d2.data != d1.data) {
    ++rep->nondeterminism;
    rep->alerts.push_back(
        "two decodes of one file disagree: nondeterminism (§5.2)");
    return;
  }
  ++rep->admitted;
  ++rep->by_code[static_cast<std::size_t>(util::ExitCode::kSuccess)];
}

}  // namespace lepton
