// Public API of the Lepton reproduction.
//
// Lepton losslessly re-compresses baseline JPEG files by replacing their
// Huffman entropy layer with a multithreaded adaptive arithmetic coder
// (Horn et al., NSDI 2017). The API is organized around *streaming
// sessions* — the paper's deployment is network-paced (§3.4): bytes arrive
// in arbitrary slices, decode begins before a chunk is fully fetched, and
// every conversion runs under a cancellable deadline (§5.7):
//
//   lepton::VectorSink out;
//   lepton::DecodeSession s(out);                    // session.h
//   s.control().set_deadline_after(std::chrono::milliseconds(50));
//   while (net.read(slice)) s.feed(slice);           // any slice sizes
//   auto code = s.finish();                          // §6.2 classification
//
// The familiar whole-buffer forms are thin wrappers over sessions (one
// codec driver, two calling conventions):
//
//   lepton::EncodeOptions opt;                       // threads, 1-way, ...
//   auto r = lepton::encode_jpeg(jpeg_bytes, opt);   // -> .lep container
//   if (r.ok()) {
//     lepton::VectorSink sink;
//     auto j = lepton::decode_lepton(r.data, sink);  // exact original bytes
//   }
//
//   lepton::ChunkCodec cc(opt);                      // 4-MiB storage chunks
//   auto chunks = cc.encode_chunks(jpeg_bytes);
//   auto part = cc.decode_chunk(chunks.chunks[k]);   // independent decode
//
//   lepton::TransparentStore store(opt);             // round-trip gate +
//   auto admitted = store.put(file_bytes);           //   Deflate fallback
//
// Every failure is classified with the production exit-code taxonomy
// (util::ExitCode, §6.2); nothing in this API throws on hostile input.
// Truncated input streams classify as kShortRead, cancelled or expired
// sessions as kTimeout.
#pragma once

#include "lepton/chunk.h"
#include "lepton/codec.h"
#include "lepton/context.h"
#include "lepton/run_control.h"
#include "lepton/session.h"
#include "lepton/store.h"
#include "lepton/verify.h"
