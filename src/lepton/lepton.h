// Public API of the Lepton reproduction.
//
// Lepton losslessly re-compresses baseline JPEG files by replacing their
// Huffman entropy layer with a multithreaded adaptive arithmetic coder
// (Horn et al., NSDI 2017). The API mirrors how the production system is
// used:
//
//   lepton::EncodeOptions opt;                       // threads, 1-way, ...
//   auto r = lepton::encode_jpeg(jpeg_bytes, opt);   // -> .lep container
//   if (r.ok()) {
//     lepton::VectorSink sink;
//     auto j = lepton::decode_lepton(r.data, sink);  // exact original bytes
//   }
//
//   lepton::ChunkCodec cc(opt);                      // 4-MiB storage chunks
//   auto chunks = cc.encode_chunks(jpeg_bytes);
//   auto part = cc.decode_chunk(chunks.chunks[k]);   // independent decode
//
//   lepton::TransparentStore store(opt);             // round-trip gate +
//   auto admitted = store.put(file_bytes);           //   Deflate fallback
//
// Every failure is classified with the production exit-code taxonomy
// (util::ExitCode, §6.2); nothing in this API throws on hostile input.
#pragma once

#include "lepton/chunk.h"
#include "lepton/codec.h"
#include "lepton/context.h"
#include "lepton/store.h"
#include "lepton/verify.h"
