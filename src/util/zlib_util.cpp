#include "util/zlib_util.h"

#include <zlib.h>

namespace lepton::util {

std::vector<std::uint8_t> zlib_compress(std::span<const std::uint8_t> data,
                                        int level) {
  uLongf bound = compressBound(static_cast<uLong>(data.size()));
  std::vector<std::uint8_t> out(bound);
  int rc = compress2(out.data(), &bound, data.data(),
                     static_cast<uLong>(data.size()), level);
  if (rc != Z_OK) {
    out.clear();
    return out;
  }
  out.resize(bound);
  return out;
}

bool zlib_decompress(std::span<const std::uint8_t> data,
                     std::vector<std::uint8_t>& out, std::size_t max_output) {
  out.clear();
  z_stream zs{};
  if (inflateInit(&zs) != Z_OK) return false;
  zs.next_in = const_cast<Bytef*>(data.data());
  zs.avail_in = static_cast<uInt>(data.size());

  std::uint8_t chunk[1 << 16];
  int rc = Z_OK;
  while (rc != Z_STREAM_END) {
    zs.next_out = chunk;
    zs.avail_out = sizeof(chunk);
    rc = inflate(&zs, Z_NO_FLUSH);
    if (rc != Z_OK && rc != Z_STREAM_END) {
      inflateEnd(&zs);
      out.clear();
      return false;
    }
    std::size_t produced = sizeof(chunk) - zs.avail_out;
    if (out.size() + produced > max_output) {
      inflateEnd(&zs);
      out.clear();
      return false;
    }
    out.insert(out.end(), chunk, chunk + produced);
    if (rc == Z_OK && zs.avail_in == 0 && produced == 0) {
      // Truncated stream.
      inflateEnd(&zs);
      out.clear();
      return false;
    }
  }
  inflateEnd(&zs);
  return true;
}

}  // namespace lepton::util
