#include "util/failpoint.h"

#include <cerrno>
#include <cstdlib>
#include <mutex>

#include "util/rng.h"

namespace lepton::util::failpoint {
namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

enum class Trigger : std::uint8_t { kAlways, kProbability, kEvery, kOnce };

struct Site {
  std::string name;
  Action action = Action::kNone;
  int err = EIO;
  std::chrono::milliseconds delay{0};
  Trigger trigger = Trigger::kAlways;
  double probability = 1.0;
  std::uint64_t every = 1;
  Rng rng{0};
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
  std::vector<std::uint64_t> fire_log;  // 1-based hit indices, capped
};

constexpr std::size_t kFireLogCap = 4096;

struct Registry {
  std::mutex mu;
  std::vector<Site> sites;
};

Registry& registry() {
  static Registry r;
  return r;
}

// FNV-1a: stable per-site seed derivation, so two sites armed with the
// same global seed still draw independent sequences.
std::uint64_t hash_name(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

struct ErrnoName {
  const char* name;
  int value;
};

// The errnos the wired sites can plausibly surface; numbers also parse.
constexpr ErrnoName kErrnoNames[] = {
    {"ECONNREFUSED", ECONNREFUSED}, {"ECONNRESET", ECONNRESET},
    {"EPIPE", EPIPE},               {"ETIMEDOUT", ETIMEDOUT},
    {"EMFILE", EMFILE},             {"ENFILE", ENFILE},
    {"ENOMEM", ENOMEM},             {"ENOBUFS", ENOBUFS},
    {"EIO", EIO},                   {"EAGAIN", EAGAIN},
    {"ENOSPC", ENOSPC},             {"EHOSTUNREACH", EHOSTUNREACH},
    {"ENETUNREACH", ENETUNREACH},
};

bool parse_errno(const std::string& s, int* out) {
  for (const auto& e : kErrnoNames) {
    if (s == e.name) {
      *out = e.value;
      return true;
    }
  }
  char* end = nullptr;
  long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || v <= 0) return false;
  *out = static_cast<int>(v);
  return true;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool set_error(std::string* err, const std::string& what) {
  if (err != nullptr) *err = what;
  return false;
}

bool parse_action(const std::string& s, Site* site, std::string* err) {
  if (s == "short") {
    site->action = Action::kShort;
    return true;
  }
  if (s == "fail") {
    site->action = Action::kFail;
    return true;
  }
  if (s == "err" || s.rfind("err:", 0) == 0) {
    site->action = Action::kErr;
    if (s.size() > 4 && !parse_errno(s.substr(4), &site->err)) {
      return set_error(err, "failpoint " + site->name + ": unknown errno '" +
                                s.substr(4) + "'");
    }
    return true;
  }
  if (s.rfind("delay:", 0) == 0) {
    std::string d = s.substr(6);
    if (d.size() < 3 || d.substr(d.size() - 2) != "ms") {
      return set_error(err, "failpoint " + site->name +
                                ": delay wants '<N>ms', got '" + d + "'");
    }
    std::uint64_t ms = 0;
    if (!parse_u64(d.substr(0, d.size() - 2), &ms)) {
      return set_error(err, "failpoint " + site->name +
                                ": bad delay '" + d + "'");
    }
    site->action = Action::kDelay;
    site->delay = std::chrono::milliseconds(ms);
    return true;
  }
  return set_error(err,
                   "failpoint " + site->name + ": unknown action '" + s + "'");
}

bool parse_trigger_term(const std::string& s, Site* site, bool* seed_set,
                        std::uint64_t* site_seed, std::string* err) {
  if (s == "once") {
    site->trigger = Trigger::kOnce;
    return true;
  }
  if (s.rfind("every", 0) == 0) {
    std::uint64_t n = 0;
    if (!parse_u64(s.substr(5), &n) || n == 0) {
      return set_error(err, "failpoint " + site->name +
                                ": bad trigger '" + s + "'");
    }
    site->trigger = Trigger::kEvery;
    site->every = n;
    return true;
  }
  if (s.rfind("seed", 0) == 0) {
    std::uint64_t n = 0;
    if (!parse_u64(s.substr(4), &n)) {
      return set_error(err, "failpoint " + site->name +
                                ": bad trigger '" + s + "'");
    }
    *seed_set = true;
    *site_seed = n;
    return true;
  }
  // A probability: float in [0, 1].
  char* end = nullptr;
  double p = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
    return set_error(err,
                     "failpoint " + site->name + ": bad trigger '" + s + "'");
  }
  site->trigger = Trigger::kProbability;
  site->probability = p;
  return true;
}

}  // namespace

bool arm(const std::string& spec, std::string* err) {
  std::vector<Site> sites;
  // Per-site seed overrides (@seedN); -1-like sentinel via the bool.
  std::vector<std::pair<bool, std::uint64_t>> seed_override;
  std::uint64_t global_seed = 0;

  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) semi = spec.size();
    std::string entry = trim(spec.substr(pos, semi - pos));
    pos = semi + 1;
    if (entry.empty()) continue;

    std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= entry.size()) {
      return set_error(err, "failpoint entry '" + entry +
                                "' is not site=action[@trigger]");
    }
    std::string key = trim(entry.substr(0, eq));
    std::string val = trim(entry.substr(eq + 1));
    if (key == "seed") {
      if (!parse_u64(val, &global_seed)) {
        return set_error(err, "failpoint seed: bad value '" + val + "'");
      }
      continue;
    }

    Site site;
    site.name = key;
    bool seed_set = false;
    std::uint64_t site_seed = 0;
    std::size_t at = val.find('@');
    std::string action_s = at == std::string::npos ? val : val.substr(0, at);
    if (!parse_action(trim(action_s), &site, err)) return false;
    if (at != std::string::npos) {
      std::string trig = val.substr(at + 1);
      std::size_t tpos = 0;
      while (tpos <= trig.size()) {
        std::size_t comma = trig.find(',', tpos);
        if (comma == std::string::npos) comma = trig.size();
        std::string term = trim(trig.substr(tpos, comma - tpos));
        tpos = comma + 1;
        if (term.empty()) continue;
        if (!parse_trigger_term(term, &site, &seed_set, &site_seed, err)) {
          return false;
        }
      }
    }
    seed_override.emplace_back(seed_set, site_seed);
    sites.push_back(std::move(site));
  }

  // Seed each site's PRNG only now: a 'seed=' entry anywhere in the spec
  // applies to every site without an explicit @seedN override.
  for (std::size_t i = 0; i < sites.size(); ++i) {
    std::uint64_t seed = seed_override[i].first
                             ? seed_override[i].second
                             : (global_seed ^ hash_name(sites[i].name));
    sites[i].rng = Rng(seed);
  }

  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  r.sites = std::move(sites);
  detail::g_armed.store(!r.sites.empty(), std::memory_order_release);
  return true;
}

bool arm_from_env(std::string* err) {
  const char* spec = std::getenv("LEPTON_FAILPOINTS");
  if (spec == nullptr || spec[0] == '\0') return true;
  return arm(spec, err);
}

void disarm() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  r.sites.clear();
  detail::g_armed.store(false, std::memory_order_release);
}

Outcome hit(std::string_view site) {
  Outcome out;
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (Site& s : r.sites) {
    if (s.name != site) continue;
    ++s.hits;
    bool fire = false;
    switch (s.trigger) {
      case Trigger::kAlways:
        fire = true;
        break;
      case Trigger::kProbability:
        fire = s.rng.chance(s.probability);
        break;
      case Trigger::kEvery:
        fire = s.hits % s.every == 0;
        break;
      case Trigger::kOnce:
        fire = s.hits == 1;
        break;
    }
    if (!fire) return out;
    ++s.fires;
    if (s.fire_log.size() < kFireLogCap) s.fire_log.push_back(s.hits);
    out.action = s.action;
    out.err = s.err;
    out.delay = s.delay;
    out.draw = s.rng.next();
    return out;
  }
  return out;
}

std::vector<SiteReport> report() {
  std::vector<SiteReport> out;
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  out.reserve(r.sites.size());
  for (const Site& s : r.sites) {
    out.push_back({s.name, s.hits, s.fires});
  }
  return out;
}

std::vector<std::uint64_t> fire_log(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (const Site& s : r.sites) {
    if (s.name == site) return s.fire_log;
  }
  return {};
}

std::string stats_text() {
  std::string t;
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (const Site& s : r.sites) {
    t += "failpoint ";
    t += s.name;
    t += ' ';
    t += std::to_string(s.hits);
    t += ' ';
    t += std::to_string(s.fires);
    t += '\n';
  }
  return t;
}

}  // namespace lepton::util::failpoint
