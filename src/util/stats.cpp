#include "util/stats.h"

#include <cstdio>

namespace lepton::util {

std::string format_percentiles(const Percentiles& p) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "p50=%.3f p75=%.3f p95=%.3f p99=%.3f",
                p.percentile(50), p.percentile(75), p.percentile(95),
                p.percentile(99));
  return buf;
}

}  // namespace lepton::util
