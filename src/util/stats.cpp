#include "util/stats.h"

#include <cstdio>

namespace lepton::util {

std::string format_percentiles(const Percentiles& p) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "p50=%.3f p75=%.3f p95=%.3f p99=%.3f",
                p.percentile(50), p.percentile(75), p.percentile(95),
                p.percentile(99));
  return buf;
}

std::string format_code_tally(const CodeTally& t,
                              std::string (*name)(unsigned code)) {
  std::string out;
  for (unsigned c = 0; c < t.ceiling(); ++c) {
    std::uint64_t n = t.count(c);
    if (n == 0) continue;
    if (!out.empty()) out += "  ";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "=%llu",
                  static_cast<unsigned long long>(n));
    out += name(c);
    out += buf;
  }
  return out.empty() ? "(none)" : out;
}

}  // namespace lepton::util
