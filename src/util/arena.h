// Fixed-budget bump arena.
//
// Production Lepton allocates a zeroed 200-MiB region before reading any
// input and never calls the allocator again (SECCOMP forbids mmap/brk —
// §5.1). Decode is budgeted at 24 MiB, encode at 178 MiB; inputs that would
// exceed the budget are rejected with a classified exit code rather than
// grown (§6.2 ">24 MiB mem decode" / ">178 MiB mem encode" rows).
//
// This Arena reproduces that discipline: a single upfront zeroed buffer,
// monotonic allocation, no growth, and a clean failure signal on exhaustion.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "util/tracked_memory.h"

namespace lepton::util {

class Arena {
 public:
  explicit Arena(std::size_t capacity_bytes)
      : buffer_(capacity_bytes, std::uint8_t{0}) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns nullptr when the budget is exhausted; never grows.
  void* alloc(std::size_t bytes, std::size_t align = 16) {
    auto base = reinterpret_cast<std::uintptr_t>(buffer_.data());
    std::uintptr_t p = (base + used_ + align - 1) & ~(align - 1);
    std::size_t off = p - base;
    if (off + bytes > buffer_.size()) return nullptr;
    used_ = off + bytes;
    high_water_ = used_ > high_water_ ? used_ : high_water_;
    return buffer_.data() + off;
  }

  template <typename T>
  T* alloc_array(std::size_t count) {
    void* p = alloc(count * sizeof(T), alignof(T));
    if (p == nullptr) return nullptr;
    // The region was zeroed at construction; placement-new for non-trivial
    // types is the caller's job. All arena users here are trivial PODs.
    return static_cast<T*>(p);
  }

  // Releases everything at once (between independent codec jobs). The next
  // job observes zeroed memory, matching "all heap allocations are zeroed
  // before use" (§5.2) so reuse cannot leak state across files.
  void reset() {
    std::memset(buffer_.data(), 0, used_);
    used_ = 0;
  }

  std::size_t capacity() const { return buffer_.size(); }
  std::size_t used() const { return used_; }
  std::size_t high_water() const { return high_water_; }
  std::size_t remaining() const { return buffer_.size() - used_; }

 private:
  tracked_vector<std::uint8_t> buffer_;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace lepton::util
