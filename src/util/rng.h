// Deterministic seedable RNG (xoshiro256**). Every stochastic component in
// this repository — corpus generation, workload arrivals, simulator noise —
// draws from an explicitly seeded Rng so experiments replay bit-identically.
// Determinism is a load-bearing property of the system under study (§5.2);
// it is also one of the test suite's invariants.
#pragma once

#include <cstdint>

namespace lepton::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : s_) {
      z += 0x9e3779b97f4a7c15ull;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      s = x ^ (x >> 31);
    }
  }

  std::uint64_t next() {
    std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, n).
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  }
  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
  double uniform(double lo, double hi) { return lo + uniform() * (hi - lo); }
  bool chance(double p) { return uniform() < p; }

  // Standard normal via Box-Muller (one value per call; simple and exact
  // enough for simulator noise).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(6.283185307179586 * u2);
  }
  double normal(double mean, double sd) { return mean + sd * normal(); }

  // Exponential with given mean (Poisson interarrival times).
  double exponential(double mean) {
    double u = uniform();
    if (u < 1e-300) u = 1e-300;
    return -mean * __builtin_log(u);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace lepton::util
