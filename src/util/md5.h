// MD5 (RFC 1321). Production Lepton md5sums the compressed file before the
// round-trip test so in-memory corruption between check and admit is caught
// (§5.7). Used here by the TransparentStore admit path and the safety tests.
// Not for security; for integrity-of-buffer checks exactly as deployed.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace lepton::util {

class Md5 {
 public:
  Md5();
  void update(std::span<const std::uint8_t> data);
  std::array<std::uint8_t, 16> final();

  static std::array<std::uint8_t, 16> digest(
      std::span<const std::uint8_t> data);
  static std::string hex_digest(std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_;
  std::uint64_t total_len_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
};

}  // namespace lepton::util
