// Pre-spawned worker pool.
//
// Production Lepton must pre-spawn its threads before entering SECCOMP
// (clone() is forbidden afterwards — §5.1). The codec therefore takes a
// pool of already-running workers rather than spawning per job. The pool is
// also how the bench harness pins "N-thread" codec configurations.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lepton::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t n_threads) {
    workers_.reserve(n_threads);
    for (std::size_t i = 0; i < n_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      tasks_.push(std::move(task));
    }
    cv_.notify_one();
  }

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
    }
  }

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Runs `fn(i)` for i in [0, n) on up to `threads` concurrent std::threads
// and joins them all (RAII-style structured parallelism; simpler than the
// pool when each codec job owns its segment workers, as Lepton does).
template <typename Fn>
void parallel_for_segments(int n, int threads, Fn&& fn) {
  if (threads <= 1 || n <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::thread> ts;
  ts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ts.emplace_back([&fn, i] { fn(i); });
  for (auto& t : ts) t.join();
}

}  // namespace lepton::util
