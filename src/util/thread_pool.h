// Pre-spawned worker pool.
//
// Production Lepton must pre-spawn its threads before entering SECCOMP
// (clone() is forbidden afterwards — §5.1). The codec therefore takes a
// pool of already-running workers rather than spawning per job: segment
// fan-out goes through ThreadPool::parallel_run, which hands indices to the
// pre-spawned workers and to the calling thread — no clone() per codec
// call, and no deadlock when pooled jobs nest (the caller always makes
// progress on its own batch). The pool is also how the bench harness pins
// "N-thread" codec configurations.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lepton::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t n_threads) {
    workers_.reserve(n_threads);
    for (std::size_t i = 0; i < n_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      tasks_.push(std::move(task));
    }
    cv_.notify_one();
  }

  std::size_t size() const { return workers_.size(); }

  // Runs fn(i) for i in [0, n) across the pre-spawned workers and returns
  // when all calls finish. The calling thread claims indices too, so the
  // batch completes even when every worker is busy (nested batches cannot
  // deadlock) and a pool of size 0 degrades to a serial loop. `fn` must not
  // throw (classified codec failures are captured inside the task).
  template <typename Fn>
  void parallel_run(int n, Fn&& fn) {
    if (n <= 0) return;
    if (n == 1 || workers_.empty()) {
      for (int i = 0; i < n; ++i) fn(i);
      return;
    }
    auto state = std::make_shared<BatchState>();
    state->n = n;
    state->run = [&fn](int i) { fn(i); };
    int helpers = static_cast<int>(workers_.size());
    if (helpers > n - 1) helpers = n - 1;
    for (int h = 0; h < helpers; ++h) {
      submit([state] { drain(*state); });
    }
    drain(*state);
    std::unique_lock<std::mutex> lk(state->mu);
    state->cv.wait(lk, [&state] { return state->done == state->n; });
  }

 private:
  struct BatchState {
    std::function<void(int)> run;
    std::atomic<int> next{0};
    int n = 0;
    std::mutex mu;
    std::condition_variable cv;
    int done = 0;
  };

  static void drain(BatchState& s) {
    int finished = 0;
    for (;;) {
      int i = s.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s.n) break;
      s.run(i);
      ++finished;
    }
    if (finished > 0) {
      std::lock_guard<std::mutex> lk(s.mu);
      s.done += finished;
      if (s.done == s.n) s.cv.notify_all();
    }
  }

  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
    }
  }

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Runs `fn(i)` for i in [0, n) on up to `threads` concurrent std::threads
// and joins them all (RAII-style structured parallelism; simpler than the
// pool when each codec job owns its segment workers, as Lepton does).
template <typename Fn>
void parallel_for_segments(int n, int threads, Fn&& fn) {
  if (threads <= 1 || n <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::thread> ts;
  ts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ts.emplace_back([&fn, i] { fn(i); });
  for (auto& t : ts) t.join();
}

}  // namespace lepton::util
