// Process-wide allocation accounting.
//
// The paper evaluates codecs by max resident memory (Figure 3) and Lepton
// enforces hard budgets (24 MiB decode / 178 MiB encode — §4.2, §6.2).
// Rather than fork a process per codec and read RUSAGE, every codec in this
// repository routes its bulk allocations through TrackedAllocator, and a
// MemoryGauge captures the high-water mark over a scoped region.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <new>
#include <vector>

namespace lepton::util {

class MemoryTracker {
 public:
  static MemoryTracker& instance() {
    static MemoryTracker t;
    return t;
  }

  void on_alloc(std::size_t n) {
    std::size_t cur = current_.fetch_add(n, std::memory_order_relaxed) + n;
    // Lock-free high-water update.
    std::size_t hw = high_water_.load(std::memory_order_relaxed);
    while (cur > hw &&
           !high_water_.compare_exchange_weak(hw, cur,
                                              std::memory_order_relaxed)) {
    }
  }
  void on_free(std::size_t n) {
    current_.fetch_sub(n, std::memory_order_relaxed);
  }

  std::size_t current() const {
    return current_.load(std::memory_order_relaxed);
  }
  std::size_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }
  // Resets the high-water mark to the current level (start of a gauge).
  void reset_high_water() {
    high_water_.store(current_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> current_{0};
  std::atomic<std::size_t> high_water_{0};
};

// STL-compatible allocator that reports to the MemoryTracker.
template <typename T>
class TrackedAllocator {
 public:
  using value_type = T;
  TrackedAllocator() = default;
  template <typename U>
  TrackedAllocator(const TrackedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw std::bad_alloc();
    std::size_t bytes = n * sizeof(T);
    MemoryTracker::instance().on_alloc(bytes);
    return static_cast<T*>(::operator new(bytes));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    MemoryTracker::instance().on_free(n * sizeof(T));
    ::operator delete(p);
  }
  bool operator==(const TrackedAllocator&) const { return true; }
};

template <typename T>
using tracked_vector = std::vector<T, TrackedAllocator<T>>;

// RAII scope measuring the peak of tracked allocations within the scope.
// Single-measurement sections should not overlap across threads; the bench
// harness measures one codec at a time.
class MemoryGauge {
 public:
  MemoryGauge() : start_(MemoryTracker::instance().current()) {
    MemoryTracker::instance().reset_high_water();
  }
  // Peak tracked bytes allocated above the level at construction.
  std::size_t peak_bytes() const {
    std::size_t hw = MemoryTracker::instance().high_water();
    return hw > start_ ? hw - start_ : 0;
  }

 private:
  std::size_t start_;
};

}  // namespace lepton::util
