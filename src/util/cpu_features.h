// Runtime CPU feature detection and SIMD dispatch control.
//
// Vectorized hot paths (the decode-side Huffman re-encode, scan_simd.h)
// pick their implementation at runtime through this shim: the scalar
// fallback is always compiled and always available, SSE2 is the x86-64
// baseline, AVX2 is used only when the CPU reports it. Tests and CI pin
// the level — programmatically via force_simd_level(), or with the
// LEPTON_SIMD environment variable (scalar|sse2|avx2, read once at first
// query) — so the scalar fallback stays exercised on AVX2 machines and a
// SIMD-forced run can be diffed against it (the dispatch rule is: active =
// min(requested, detected); requesting more than the CPU has clamps down,
// never up).
#pragma once

namespace lepton::util {

enum class SimdLevel { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

// Highest level this CPU supports (kScalar on non-x86 builds). Constant for
// the life of the process; cached after the first query.
SimdLevel detected_simd();

// The level dispatch sites should use right now: the forced level if one is
// set (clamped to detected), the LEPTON_SIMD environment override if set,
// otherwise detected. Cheap enough to consult per dispatch.
SimdLevel active_simd();

// Pins dispatch at `level` (clamped to detected) until called again;
// kScalar exercises the fallback on any machine. Thread-safe; intended for
// tests, benches and the CI scalar-pinned run.
void force_simd_level(SimdLevel level);

// Clears a force_simd_level() pin, returning to env-or-detected dispatch.
void clear_simd_override();

const char* simd_level_name(SimdLevel level);

}  // namespace lepton::util
