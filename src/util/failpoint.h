// Deterministic fault injection (failpoints).
//
// The paper's deployment claim — "we have never been unable to decode a
// stored file" — rests on recovery paths that production rarely exercises:
// short writes mid-frame, refused connects, blown memory budgets, slow
// encodes that trip deadlines. A failpoint is a named site in one of those
// paths that a chaos run can arm to misbehave on a *deterministic,
// replayable* schedule, so the requeue/breaker/pass-through machinery can
// be proven against hostile conditions instead of trusted.
//
// Always compiled, off by default. The fast path is one relaxed atomic
// load and a predictable branch:
//
//   if (util::failpoint::armed()) { ... slow path ... }
//
// Nothing else — no string lookup, no lock, no allocation — runs until a
// schedule is armed, so production binaries carry the sites for free.
//
// Schedule grammar (env LEPTON_FAILPOINTS, or arm() directly):
//
//   spec     := entry (';' entry)*
//   entry    := 'seed=' N                 global schedule seed
//             | site '=' action ['@' trigger (',' trigger)*]
//   action   := 'err' [':' ERRNO-NAME-or-number]   fail with errno
//             | 'short'                  partial I/O, then fail
//             | 'delay:' N 'ms'          sleep, then proceed normally
//             | 'fail'                   classified internal failure
//   trigger  := FLOAT in [0,1]           fire with this probability
//             | 'every' N                fire on hits N, 2N, 3N, ...
//             | 'once'                   fire on the first hit only
//             | 'seed' N                 per-site PRNG seed override
//
// Example:
//   LEPTON_FAILPOINTS="fleet.connect=err:ECONNREFUSED@0.3;sock.write=short@seed7;service.encode=delay:50ms@every5"
//
// Probability triggers draw from a per-site xoshiro PRNG seeded from the
// global seed and the site name (util/rng.h), so the same spec + seed
// yields the same fire sequence on every run — chaos runs replay.
//
// Wired sites (grep for the names): sock.read / sock.write (sockio.h and
// the service's response sink), fleet.connect (endpoint.cpp), accept (both
// connection planes), service.encode / service.decode (the request path),
// codec.mem_gate (the §6.2 decode/encode memory budgets), and the durable
// store's commit path via util/fileio.h — fs.open / fs.write / fs.fsync /
// fs.rename / fs.unlink (fs.write=short really leaves a torn prefix on
// disk before failing, the way a crash mid-write or a dying disk would).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lepton::util::failpoint {

enum class Action : std::uint8_t { kNone, kErr, kShort, kDelay, kFail };

struct Outcome {
  Action action = Action::kNone;
  int err = 0;                          // errno value, for kErr
  std::chrono::milliseconds delay{0};   // for kDelay
  std::uint64_t draw = 0;               // per-site PRNG draw (kShort sizes
                                        // the partial I/O from it)
  bool fired() const { return action != Action::kNone; }
};

namespace detail {
extern std::atomic<bool> g_armed;
}

// The zero-cost-when-disabled check: one relaxed load, one branch.
inline bool armed() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

// Slow path. Evaluates `site` against the armed schedule: bumps the hit
// counter, runs the trigger, and returns what the site should do (kNone =
// proceed normally). Call only behind armed(); unarmed sites return kNone.
Outcome hit(std::string_view site);

// Parses and installs a schedule. Returns false (with *err set) on a
// malformed spec, leaving the previous schedule in place. An empty spec
// disarms.
bool arm(const std::string& spec, std::string* err = nullptr);

// Arms from $LEPTON_FAILPOINTS. Unset/empty env: no-op, returns true.
bool arm_from_env(std::string* err = nullptr);

void disarm();

struct SiteReport {
  std::string site;
  std::uint64_t hits = 0;   // times evaluated
  std::uint64_t fires = 0;  // times the trigger fired
};

// Per-site counters of the armed schedule (empty when disarmed).
std::vector<SiteReport> report();

// Hit indices (1-based) at which `site` fired, capped at 4096 entries —
// the replayability witness tests compare across runs.
std::vector<std::uint64_t> fire_log(std::string_view site);

// STATS-ready text: "failpoint <site> <hits> <fires>\n" per armed site
// (docs/PROTOCOL.md §"STATS"). Empty string when disarmed.
std::string stats_text();

}  // namespace lepton::util::failpoint
