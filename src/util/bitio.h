// Bit-level I/O, MSB-first, as used by the JPEG entropy-coded segment.
//
// Both classes support being started from a "handover" state — a bit offset
// within a partially filled byte — which is the low-level mechanism behind
// the paper's "Huffman handover words" (§3.4): a decoder thread can resume
// writing a Huffman stream mid-byte, and the produced bytes concatenate
// exactly with the previous segment's output.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lepton::util {

// Writes bits MSB-first into an internal byte buffer.
class BitWriter {
 public:
  BitWriter() = default;

  // Resume mid-byte: `partial` holds `bit_offset` already-decided bits in its
  // most significant positions; they become the high bits of the first byte
  // this writer completes.
  BitWriter(std::uint8_t partial, int bit_offset)
      : acc_(partial >> (8 - bit_offset)), nbits_(bit_offset) {
    if (bit_offset == 0) acc_ = 0;
  }

  // Append the low `count` bits of `bits` (0 <= count <= 32), MSB-first.
  // The bits land in a 64-bit accumulator and flush a byte at a time — one
  // shift+or per call instead of a per-bit loop.
  void put_bits(std::uint32_t bits, int count) {
    acc_ = (acc_ << count) | (bits & ((1ull << count) - 1ull));
    nbits_ += count;
    while (nbits_ >= 8) {
      nbits_ -= 8;
      out_.push_back(static_cast<std::uint8_t>(acc_ >> nbits_));
    }
    acc_ &= (1ull << nbits_) - 1ull;
  }

  void put_bit(std::uint32_t bit) { put_bits(bit & 1u, 1); }

  // Pad the current byte to a boundary using copies of `pad_bit` (JPEG
  // encoders disagree on the pad polarity; Lepton records it — §A.3).
  void pad_to_byte(std::uint32_t pad_bit) {
    while (nbits_ != 0) put_bit(pad_bit);
  }

  bool byte_aligned() const { return nbits_ == 0; }
  int bit_offset() const { return nbits_; }

  // The bits of the unfinished byte, placed in the most significant
  // positions (the "partial byte" of a handover word).
  std::uint8_t partial_byte() const {
    return nbits_ == 0 ? 0
                       : static_cast<std::uint8_t>(acc_ << (8 - nbits_));
  }

  const std::vector<std::uint8_t>& bytes() const { return out_; }
  std::vector<std::uint8_t> take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }
  void clear() {
    out_.clear();
    acc_ = 0;
    nbits_ = 0;
  }

 private:
  std::vector<std::uint8_t> out_;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

// Reads bits MSB-first from a byte span. Never reads past the end: overruns
// are reported via ok() so callers can classify truncated inputs instead of
// crashing (a hard requirement for hostile-input handling, §5.1).
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint32_t get_bit() {
    if (byte_pos_ >= data_.size()) {
      ok_ = false;
      return 0;
    }
    std::uint32_t bit = (data_[byte_pos_] >> (7 - bit_pos_)) & 1u;
    if (++bit_pos_ == 8) {
      bit_pos_ = 0;
      ++byte_pos_;
    }
    return bit;
  }

  // MSB-first batch read: extracts per byte rather than per bit. Truncation
  // behaves like repeated get_bit() — missing bits read as 0 and ok()
  // flips false.
  std::uint32_t get_bits(int count) {
    std::uint32_t v = 0;
    while (count > 0) {
      if (byte_pos_ >= data_.size()) {
        ok_ = false;
        // count can still be 32 here (nothing consumed yet); a shift by the
        // full width would be UB, so zero-fill explicitly.
        return count < 32 ? v << count : 0;
      }
      int avail = 8 - bit_pos_;
      int take = avail < count ? avail : count;
      std::uint32_t chunk =
          (static_cast<std::uint32_t>(data_[byte_pos_]) >> (avail - take)) &
          ((1u << take) - 1u);
      v = (v << take) | chunk;
      count -= take;
      bit_pos_ += take;
      if (bit_pos_ == 8) {
        bit_pos_ = 0;
        ++byte_pos_;
      }
    }
    return v;
  }

  void skip_to_byte() {
    if (bit_pos_ != 0) {
      bit_pos_ = 0;
      ++byte_pos_;
    }
  }

  bool ok() const { return ok_; }
  bool at_end() const { return byte_pos_ >= data_.size(); }
  std::size_t byte_pos() const { return byte_pos_; }
  int bit_pos() const { return bit_pos_; }
  // Absolute position in bits from the start of the span.
  std::uint64_t bit_position() const { return byte_pos_ * 8ull + bit_pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t byte_pos_ = 0;
  int bit_pos_ = 0;
  bool ok_ = true;
};

}  // namespace lepton::util
