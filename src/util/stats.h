// Statistics accumulators used by the benchmark harness and the deployment
// simulator: exact percentiles over collected samples (the paper reports
// p50/p75/p95/p99 throughout §4-§6) and Welford mean/stddev.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lepton::util {

// Collects samples and answers exact percentile queries.
class Percentiles {
 public:
  void add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  // p in [0, 100]. Linear interpolation between closest ranks.
  double percentile(double p) const {
    if (samples_.empty()) return 0.0;
    sort_if_needed();
    if (samples_.size() == 1) return samples_[0];
    double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    auto hi = std::min(lo + 1, samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  double min() const { return percentile(0); }
  double median() const { return percentile(50); }
  double max() const { return percentile(100); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0;
    for (double v : samples_) s += v;
    return s / static_cast<double>(samples_.size());
  }

  double stddev() const {
    if (samples_.size() < 2) return 0.0;
    double m = mean(), s = 0;
    for (double v : samples_) s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(samples_.size() - 1));
  }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  void clear() {
    samples_.clear();
    sorted_ = false;
  }
  const std::vector<double>& samples() const { return samples_; }

 private:
  void sort_if_needed() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Bounded-memory percentile sketch: a uniform reservoir of up to
// `capacity` samples (Vitter's algorithm R, deterministic LCG). Long-lived
// daemons — the serving front-end's per-request latency stats — cannot
// keep every sample the way Percentiles does; a few-thousand-element
// reservoir answers p50-p99 queries within a fraction of a percentile at
// fleet rates, with O(capacity) memory and snapshot cost forever.
class ReservoirPercentiles {
 public:
  explicit ReservoirPercentiles(std::size_t capacity = 4096)
      : cap_(capacity == 0 ? 1 : capacity) {}

  void add(double v) {
    ++seen_;
    if (samples_.size() < cap_) {
      samples_.push_back(v);
      sorted_ = false;
      return;
    }
    // Replace a random slot with probability cap/seen (algorithm R).
    std::uint64_t j = next_random() % seen_;
    if (j < cap_) {
      samples_[static_cast<std::size_t>(j)] = v;
      sorted_ = false;
    }
  }

  // Same interpolation rule as Percentiles, over the reservoir.
  double percentile(double p) const {
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    if (samples_.size() == 1) return samples_[0];
    double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    auto hi = std::min(lo + 1, samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  // Total samples observed (not the reservoir size).
  std::uint64_t count() const { return seen_; }
  std::size_t reservoir_size() const { return samples_.size(); }

 private:
  std::uint64_t next_random() {
    // SplitMix64: cheap, deterministic, no <random> heft in a header.
    state_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  std::size_t cap_;
  std::uint64_t seen_ = 0;
  std::uint64_t state_ = 0x2545F4914F6CDD1Dull;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Numerically stable running mean/variance (Welford).
class RunningStat {
 public:
  void add(double v) {
    ++n_;
    double d = v - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (v - mean_);
  }
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

// Tallies small enum codes — in practice util::ExitCode — the way the
// paper's §6.2 table reports them: one count per code. The serving layer
// and the fleet requeue path accumulate per-request outcomes here.
class CodeTally {
 public:
  void add(unsigned code) {
    if (code >= counts_.size()) counts_.resize(code + 1, 0);
    ++counts_[code];
    ++total_;
  }

  std::uint64_t count(unsigned code) const {
    return code < counts_.size() ? counts_[code] : 0;
  }
  std::uint64_t total() const { return total_; }
  // Highest code ever added, +1 (iteration bound for report printers).
  unsigned ceiling() const { return static_cast<unsigned>(counts_.size()); }

  void merge(const CodeTally& other) {
    if (other.counts_.size() > counts_.size()) {
      counts_.resize(other.counts_.size(), 0);
    }
    for (std::size_t i = 0; i < other.counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    total_ += other.total_;
  }

  void clear() {
    counts_.clear();
    total_ = 0;
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Formats "p50/p75/p95/p99" rows the way the paper's figures label them.
std::string format_percentiles(const Percentiles& p);

// Formats a CodeTally's nonzero rows as "Name=count" pairs using `name`
// (pass util::exit_code_name via a lambda for §6.2 codes).
std::string format_code_tally(const CodeTally& t,
                              std::string (*name)(unsigned code));

}  // namespace lepton::util
