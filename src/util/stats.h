// Statistics accumulators used by the benchmark harness and the deployment
// simulator: exact percentiles over collected samples (the paper reports
// p50/p75/p95/p99 throughout §4-§6) and Welford mean/stddev.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

namespace lepton::util {

// Collects samples and answers exact percentile queries.
class Percentiles {
 public:
  void add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  // p in [0, 100]. Linear interpolation between closest ranks.
  double percentile(double p) const {
    if (samples_.empty()) return 0.0;
    sort_if_needed();
    if (samples_.size() == 1) return samples_[0];
    double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    auto hi = std::min(lo + 1, samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  double min() const { return percentile(0); }
  double median() const { return percentile(50); }
  double max() const { return percentile(100); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0;
    for (double v : samples_) s += v;
    return s / static_cast<double>(samples_.size());
  }

  double stddev() const {
    if (samples_.size() < 2) return 0.0;
    double m = mean(), s = 0;
    for (double v : samples_) s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(samples_.size() - 1));
  }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  void clear() {
    samples_.clear();
    sorted_ = false;
  }
  const std::vector<double>& samples() const { return samples_; }

 private:
  void sort_if_needed() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Numerically stable running mean/variance (Welford).
class RunningStat {
 public:
  void add(double v) {
    ++n_;
    double d = v - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (v - mean_);
  }
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

// Formats "p50/p75/p95/p99" rows the way the paper's figures label them.
std::string format_percentiles(const Percentiles& p);

}  // namespace lepton::util
