// Little-endian fixed-width serialization used by the Lepton container
// format (§A.1). Reads are bounds-checked and report failure through ok()
// rather than throwing from hostile input.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace lepton::util {

class Serializer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void bytes(std::span<const std::uint8_t> b) {
    out_.insert(out_.end(), b.begin(), b.end());
  }
  // Length-prefixed blob (u32 length).
  void blob(std::span<const std::uint8_t> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    bytes(b);
  }

  const std::vector<std::uint8_t>& data() const { return out_; }
  std::vector<std::uint8_t> take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::uint8_t> out_;
};

class Deserializer {
 public:
  explicit Deserializer(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return read<std::uint8_t>(); }
  std::uint16_t u16() {
    std::uint16_t lo = u8();
    return static_cast<std::uint16_t>(lo | (u8() << 8));
  }
  std::uint32_t u32() {
    std::uint32_t lo = u16();
    return lo | (static_cast<std::uint32_t>(u16()) << 16);
  }
  std::uint64_t u64() {
    std::uint64_t lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }
  std::int16_t i16() { return static_cast<std::int16_t>(u16()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

  std::vector<std::uint8_t> bytes(std::size_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return {};
    }
    std::vector<std::uint8_t> v(data_.begin() + pos_, data_.begin() + pos_ + n);
    pos_ += n;
    return v;
  }
  std::vector<std::uint8_t> blob() { return bytes(u32()); }

  // Zero-copy view of the next n bytes.
  std::span<const std::uint8_t> view(std::size_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return {};
    }
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  bool ok() const { return ok_; }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }

 private:
  template <typename T>
  T read() {
    if (pos_ + sizeof(T) > data_.size()) {
      ok_ = false;
      return T{};
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace lepton::util
