#include "util/fileio.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <thread>

#include "util/failpoint.h"

namespace lepton::util::fileio {
namespace {

// Evaluates `site` when a schedule is armed. Returns true when the caller
// should proceed normally; false = fail now with *err_out set. `short` is
// only meaningful for fs.write (which handles it inline in write_all);
// on any other site it degrades to a plain error.
bool fp_gate(const char* site, int* err_out) {
  if (!failpoint::armed()) return true;
  failpoint::Outcome o = failpoint::hit(site);
  switch (o.action) {
    case failpoint::Action::kNone:
      return true;
    case failpoint::Action::kDelay:
      std::this_thread::sleep_for(o.delay);
      return true;
    case failpoint::Action::kShort:
    case failpoint::Action::kErr:
    case failpoint::Action::kFail:
      *err_out = o.err;
      return false;
  }
  return true;
}

IoStatus raw_write_all(int fd, std::span<const std::uint8_t> data) {
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n > 0) {
    ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return {errno, "write"};
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return {0, "write"};
}

}  // namespace

IoStatus create_excl(const std::string& path, int* fd_out) {
  int inj = 0;
  if (!fp_gate("fs.open", &inj)) return {inj, "open"};
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) return {errno, "open"};
  *fd_out = fd;
  return {0, "open"};
}

IoStatus write_all(int fd, std::span<const std::uint8_t> data) {
  int inj = 0;
  std::uint64_t draw = 0;
  bool torn = false;
  if (failpoint::armed()) {
    failpoint::Outcome o = failpoint::hit("fs.write");
    switch (o.action) {
      case failpoint::Action::kNone:
        break;
      case failpoint::Action::kDelay:
        std::this_thread::sleep_for(o.delay);
        break;
      case failpoint::Action::kErr:
      case failpoint::Action::kFail:
        return {o.err, "write"};
      case failpoint::Action::kShort:
        // The injected torn write: a true prefix really lands on disk, then
        // the call fails — the file is left exactly as a crash mid-write
        // (or a dying disk) would leave it.
        torn = true;
        inj = o.err;
        draw = o.draw;
        break;
    }
  }
  if (torn) {
    std::size_t prefix = data.empty() ? 0 : draw % data.size();
    IoStatus w = raw_write_all(fd, data.subspan(0, prefix));
    return {w.ok() ? inj : w.err, "write"};
  }
  return raw_write_all(fd, data);
}

IoStatus sync_fd(int fd) {
  int inj = 0;
  if (!fp_gate("fs.fsync", &inj)) return {inj, "fsync"};
  if (::fsync(fd) != 0) return {errno, "fsync"};
  return {0, "fsync"};
}

IoStatus sync_dir(const std::string& dir) {
  int inj = 0;
  if (!fp_gate("fs.fsync", &inj)) return {inj, "fsync"};
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return {errno, "fsync"};
  int rc = ::fsync(fd);
  int err = rc != 0 ? errno : 0;
  ::close(fd);
  return {err, "fsync"};
}

IoStatus rename_path(const std::string& from, const std::string& to) {
  int inj = 0;
  if (!fp_gate("fs.rename", &inj)) return {inj, "rename"};
  if (::rename(from.c_str(), to.c_str()) != 0) return {errno, "rename"};
  return {0, "rename"};
}

IoStatus unlink_path(const std::string& path) {
  int inj = 0;
  if (!fp_gate("fs.unlink", &inj)) return {inj, "unlink"};
  if (::unlink(path.c_str()) != 0) return {errno, "unlink"};
  return {0, "unlink"};
}

IoStatus write_file_atomic(const std::string& path,
                           std::span<const std::uint8_t> data, bool do_fsync) {
  std::string tmp = path + ".tmp." + std::to_string(::getpid());
  ::unlink(tmp.c_str());  // a stale temp from a crashed predecessor
  int fd = -1;
  IoStatus st = create_excl(tmp, &fd);
  if (!st.ok()) return st;
  st = write_all(fd, data);
  if (st.ok() && do_fsync) st = sync_fd(fd);
  ::close(fd);
  if (st.ok()) st = rename_path(tmp, path);
  if (!st.ok()) {
    ::unlink(tmp.c_str());  // best effort; never clobber `path`
    return st;
  }
  if (do_fsync) {
    std::size_t slash = path.find_last_of('/');
    std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
    IoStatus ds = sync_dir(dir);
    if (!ds.ok()) return ds;
  }
  return {0, st.op};
}

bool read_file(const std::string& path, std::vector<std::uint8_t>* out) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  out->clear();
  std::uint8_t buf[1 << 16];
  for (;;) {
    ssize_t r = ::read(fd, buf, sizeof buf);
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (r == 0) break;
    out->insert(out->end(), buf, buf + r);
  }
  ::close(fd);
  return true;
}

bool make_dirs(const std::string& path) {
  std::string cur;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    std::size_t slash = path.find('/', pos);
    if (slash == std::string::npos) slash = path.size();
    cur = path.substr(0, slash);
    pos = slash + 1;
    if (cur.empty()) continue;
    if (::mkdir(cur.c_str(), 0755) != 0 && errno != EEXIST) return false;
    struct stat st{};
    if (::stat(cur.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) return false;
  }
  return true;
}

namespace {

std::vector<std::string> list_entries(const std::string& dir, bool dirs) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    struct stat st{};
    if (::stat((dir + "/" + name).c_str(), &st) != 0) continue;
    if (dirs ? S_ISDIR(st.st_mode) : S_ISREG(st.st_mode)) {
      out.push_back(std::move(name));
    }
  }
  ::closedir(d);
  return out;
}

}  // namespace

std::vector<std::string> list_files(const std::string& dir) {
  return list_entries(dir, false);
}

std::vector<std::string> list_dirs(const std::string& dir) {
  return list_entries(dir, true);
}

}  // namespace lepton::util::fileio
