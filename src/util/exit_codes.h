// Exit-code taxonomy of the production system (§6.2 table). Every layer of
// the codec classifies failures into one of these codes rather than
// crashing; the backfill/qualification machinery and the tbl_error_codes
// bench tally them exactly as the paper's table does.
#pragma once

#include <cstdint>
#include <string_view>

namespace lepton::util {

enum class ExitCode : std::uint8_t {
  kSuccess = 0,
  kProgressive,         // SOF2 progressive JPEG (intentionally unsupported)
  kUnsupportedJpeg,     // valid-ish JPEG using features we do not admit
  kNotAnImage,          // starts with SOI but is not a decodable JPEG
  kCmyk,                // 4-color component frame
  kMemLimitDecode,      // would exceed the 24 MiB decode budget
  kMemLimitEncode,      // would exceed the 178 MiB encode budget
  kServerShutdown,      // graceful shutdown while job queued (simulator)
  kImpossible,          // internal invariant violated ("Impossible" row)
  kAbortSignal,         // abort raised (SECCOMP would forbid; tracked anyway)
  kTimeout,             // conversion exceeded its deadline (simulator)
  kChromaSubsampleBig,  // sampling factors larger than the framebuffer slice
  kAcOutOfRange,        // coefficient outside the 8-bit baseline range
  kRoundtripFailed,     // decode(encode(x)) != x; file not admitted
  kOomKill,             // host OOM-killed the conversion (simulator)
  kOperatorInterrupt,   // human interrupted the run (simulator)
  kShortRead,           // input stream ended before the data it promised
  // Durable-store outcomes (appended — wire values above are frozen, the
  // trailer carries this enum as a u8). A failed durable commit is a
  // first-class put classification, not an "Impossible" invariant breach:
  // the operator actions differ (free space / replace disk vs page oncall).
  kDiskFull,            // durable commit failed: ENOSPC/EDQUOT
  kIoError,             // durable commit or stored-object read failed: EIO-class
  kCount
};

constexpr std::string_view exit_code_name(ExitCode c) {
  switch (c) {
    case ExitCode::kSuccess: return "Success";
    case ExitCode::kProgressive: return "Progressive";
    case ExitCode::kUnsupportedJpeg: return "Unsupported JPEG";
    case ExitCode::kNotAnImage: return "Not an image";
    case ExitCode::kCmyk: return "4 color CMYK";
    case ExitCode::kMemLimitDecode: return ">24 MiB mem decode";
    case ExitCode::kMemLimitEncode: return ">178 MiB mem encode";
    case ExitCode::kServerShutdown: return "Server shutdown";
    case ExitCode::kImpossible: return "\"Impossible\"";
    case ExitCode::kAbortSignal: return "Abort signal";
    case ExitCode::kTimeout: return "Timeout";
    case ExitCode::kChromaSubsampleBig: return "Chroma subsample big";
    case ExitCode::kAcOutOfRange: return "AC values out of range";
    case ExitCode::kRoundtripFailed: return "Roundtrip failed";
    case ExitCode::kOomKill: return "OOM kill";
    case ExitCode::kOperatorInterrupt: return "Operator interrupt";
    case ExitCode::kShortRead: return "Short read";
    case ExitCode::kDiskFull: return "Disk full";
    case ExitCode::kIoError: return "Disk I/O error";
    case ExitCode::kCount: break;
  }
  return "?";
}

}  // namespace lepton::util
