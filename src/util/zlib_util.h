// Thin RAII wrappers over zlib. Lepton compresses JPEG header bytes with
// Deflate (§3.1) and the production system falls back to Deflate for files
// Lepton rejects (§5.7); Deflate is also one of the generic baselines in
// Figure 2.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lepton::util {

// Compresses with zlib at the given level (1..9). Never fails for valid
// levels; returns the zlib-framed stream.
std::vector<std::uint8_t> zlib_compress(std::span<const std::uint8_t> data,
                                        int level = 6);

// Inflates a zlib stream. Returns false on corrupt input (output cleared).
// `max_output` bounds decompression-bomb exposure from hostile containers.
bool zlib_decompress(std::span<const std::uint8_t> data,
                     std::vector<std::uint8_t>& out,
                     std::size_t max_output = 512u << 20);

}  // namespace lepton::util
