#include "util/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace lepton::util {

namespace {

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)
#define LEPTON_X86 1
#else
#define LEPTON_X86 0
#endif

SimdLevel detect() {
#if LEPTON_X86 && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  return SimdLevel::kSse2;  // SSE2 is the x86-64 ABI baseline
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel parse_level(const char* s, SimdLevel fallback) {
  if (s == nullptr) return fallback;
  if (std::strcmp(s, "scalar") == 0) return SimdLevel::kScalar;
  if (std::strcmp(s, "sse2") == 0) return SimdLevel::kSse2;
  if (std::strcmp(s, "avx2") == 0) return SimdLevel::kAvx2;
  return fallback;
}

// -1 = no programmatic override; otherwise a SimdLevel value.
std::atomic<int> g_forced{-1};

}  // namespace

SimdLevel detected_simd() {
  static const SimdLevel level = detect();
  return level;
}

SimdLevel active_simd() {
  SimdLevel det = detected_simd();
  int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) {
    auto lvl = static_cast<SimdLevel>(forced);
    return lvl < det ? lvl : det;
  }
  static const SimdLevel env_level =
      parse_level(std::getenv("LEPTON_SIMD"), det);
  return env_level < det ? env_level : det;
}

void force_simd_level(SimdLevel level) {
  g_forced.store(static_cast<int>(level), std::memory_order_relaxed);
}

void clear_simd_override() {
  g_forced.store(-1, std::memory_order_relaxed);
}

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kSse2: return "sse2";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "unknown";
}

}  // namespace lepton::util
