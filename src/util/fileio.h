// Failpoint-routed file I/O (the disk-plane analogue of server/sockio.h).
//
// Every syscall on the durable-store commit path — open, write, fsync,
// rename, unlink — goes through this shim, each wired with a failpoint
// site so chaos runs can make the disk misbehave on a deterministic,
// replayable schedule (util/failpoint.h):
//
//   fs.open     err[:ERRNO]          the create fails (EMFILE, EACCES, ...)
//   fs.write    err[:ENOSPC|EIO]     the write fails without writing
//               short                a PRNG-sized TRUE PREFIX is written to
//                                    the file first, then the call fails —
//                                    the on-disk result is a genuinely torn
//                                    file, exactly what a crash or a dying
//                                    disk leaves behind
//   fs.fsync    err[:EIO] | delay    the barrier fails / stalls (a stall
//                                    widens the window a kill-9 can land in)
//   fs.rename   err[:ERRNO]          the atomic publish fails
//   fs.unlink   err[:ERRNO]          cleanup fails — litter stays for the
//                                    startup sweep to find
//
// All sites also accept delay:Nms. The shim is for the *commit* path;
// recovery, quarantine and scrub I/O deliberately bypass it (raw syscalls)
// so a chaos schedule aimed at puts cannot corrupt the repair machinery —
// see storage/durable_store.h.
#pragma once

#include <cerrno>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/exit_codes.h"

namespace lepton::util::fileio {

// Outcome of one routed operation: errno + which op it was. err == 0 is
// success; injected failures carry the schedule's errno and read exactly
// like real ones — callers cannot (and must not) tell them apart.
struct IoStatus {
  int err = 0;
  const char* op = "";
  bool ok() const { return err == 0; }
};

// §6.2 classification of a failed durable commit: ENOSPC/EDQUOT are the
// operator-actionable "disk full" row, everything else is an I/O error.
// Distinct from kImpossible by design — a full disk is not an invariant
// violation, it is a first-class put outcome (ISSUE 9 satellite).
inline ExitCode classify_io_errno(int err) {
  return (err == ENOSPC || err == EDQUOT) ? ExitCode::kDiskFull
                                          : ExitCode::kIoError;
}

// O_WRONLY|O_CREAT|O_EXCL: commit temp files must never silently reuse a
// predecessor's bytes. Site: fs.open.
IoStatus create_excl(const std::string& path, int* fd_out);

// Writes all of `data`, EINTR-retried. Site: fs.write — `short` writes a
// true prefix before failing, so the torn bytes are really on disk.
IoStatus write_all(int fd, std::span<const std::uint8_t> data);

// Site: fs.fsync.
IoStatus sync_fd(int fd);

// fsyncs the *directory*, making a completed rename durable (a renamed
// file whose directory was never synced can vanish on power loss).
// Site: fs.fsync (the open of the directory itself is not routed).
IoStatus sync_dir(const std::string& dir);

// Site: fs.rename.
IoStatus rename_path(const std::string& from, const std::string& to);

// Site: fs.unlink.
IoStatus unlink_path(const std::string& path);

// The crash-atomic publish pattern in one call: write `path + ".tmp.<pid>"`
// → fsync file → rename over `path` → fsync directory. Any failure unlinks
// the temp (best effort) and leaves whatever was at `path` untouched — a
// crash mid-call can leave a stale temp, never a torn `path`. With
// `do_fsync` false the two barriers are skipped (callers that only need
// atomicity-vs-crash-of-themselves, not power loss).
IoStatus write_file_atomic(const std::string& path,
                           std::span<const std::uint8_t> data, bool do_fsync);

// ---- unrouted helpers (recovery/scrub side) ---------------------------------

// Whole-file read; false on any error. Deliberately not failpoint-routed:
// the repair machinery must work while a chaos schedule is armed.
bool read_file(const std::string& path, std::vector<std::uint8_t>* out);

// mkdir -p. False only when a component exists as a non-directory or
// creation fails outright.
bool make_dirs(const std::string& path);

// Non-recursive listing of regular-file names in `dir` (no dot entries);
// empty when the directory cannot be read.
std::vector<std::string> list_files(const std::string& dir);

// Subdirectory names in `dir`.
std::vector<std::string> list_dirs(const std::string& dir);

}  // namespace lepton::util::fileio
