// Figure 4 (table): compression breakdown by JPEG file component.
// Paper values (original-byte share / compression ratio / bytes saved):
//   Header  2.3% / 47.6% / 1.0%
//   7x7 AC 49.7% / 80.2% / 9.8%
//   7x1+1x7 39.8% / 78.7% / 8.6%
//   DC      8.2% / 59.9% / 3.4%
//   Total   100% / 77.3% / 22.7%
#include "bench_common.h"
#include "lepton/codec.h"

int main(int argc, char** argv) {
  bool full = bench::want_full(argc, argv);
  bench::header("Figure 4: compression ratio by component",
                "header 47.6%, 7x7 80.2%, edges 78.7%, DC 59.9%, total 77.3%");

  lepton::ComponentBreakdown total{};
  std::uint64_t files = 0;
  for (const auto& f : bench::corpus(full)) {
    if (f.kind != lepton::corpus::FileKind::kBaselineJpeg) continue;
    lepton::ComponentBreakdown b{};
    auto r = lepton::encode_jpeg_with_breakdown({f.bytes.data(), f.bytes.size()},
                                                {}, &b);
    if (!r.ok()) continue;
    total.header_in += b.header_in;
    total.header_out += b.header_out;
    total.dc_in_bits += b.dc_in_bits;
    total.dc_out_bits += b.dc_out_bits;
    total.ac77_in_bits += b.ac77_in_bits;
    total.ac77_out_bits += b.ac77_out_bits;
    total.edge_in_bits += b.edge_in_bits;
    total.edge_out_bits += b.edge_out_bits;
    ++files;
  }

  double hdr_in = static_cast<double>(total.header_in);
  double dc_in = total.dc_in_bits / 8.0;
  double a77_in = total.ac77_in_bits / 8.0;
  double edge_in = total.edge_in_bits / 8.0;
  double all_in = hdr_in + dc_in + a77_in + edge_in;
  double hdr_out = static_cast<double>(total.header_out);
  double dc_out = total.dc_out_bits / 8.0;
  double a77_out = total.ac77_out_bits / 8.0;
  double edge_out = total.edge_out_bits / 8.0;
  double all_out = hdr_out + dc_out + a77_out + edge_out;

  std::printf("files: %llu\n", static_cast<unsigned long long>(files));
  std::printf("%-12s %14s %14s %14s   (paper ratio)\n", "category",
              "orig share %", "ratio %", "saved %");
  auto row = [&](const char* name, double in, double out, double paper) {
    std::printf("%-12s %13.1f%% %13.1f%% %13.1f%%   (%.1f%%)\n", name,
                100.0 * in / all_in, 100.0 * out / in,
                100.0 * (in - out) / all_in, paper);
  };
  row("Header", hdr_in, hdr_out, 47.6);
  row("7x7 AC", a77_in, a77_out, 80.2);
  row("7x1/1x7", edge_in, edge_out, 78.7);
  row("DC", dc_in, dc_out, 59.9);
  row("Total", all_in, all_out, 77.3);
  return 0;
}
