// Shared support for the figure/table benches: a cached benchmark corpus
// (the stand-in for the paper's 233k sampled chunks, §4), wall-clock
// timing, and uniform row printing so each bench's output reads like the
// corresponding figure. Every bench prints the paper's reported values next
// to the measured ones; EXPERIMENTS.md records both.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpus.h"
#include "util/stats.h"

namespace bench {

// Corpus sizes are scaled down from the paper's 100 KiB-4 MiB so every
// bench binary finishes in seconds; pass --full for the wider band.
inline lepton::corpus::CorpusOptions corpus_options(bool full) {
  lepton::corpus::CorpusOptions o;
  if (full) {
    o.min_bytes = 100 << 10;
    o.max_bytes = 4 << 20;
    o.valid_files = 40;
  } else {
    o.min_bytes = 24 << 10;
    o.max_bytes = 320 << 10;
    o.valid_files = 18;
  }
  return o;
}

inline const std::vector<lepton::corpus::CorpusFile>& corpus(bool full) {
  static std::vector<lepton::corpus::CorpusFile> small =
      lepton::corpus::build_corpus(corpus_options(false));
  static std::vector<lepton::corpus::CorpusFile> big;
  if (!full) return small;
  if (big.empty()) big = lepton::corpus::build_corpus(corpus_options(true));
  return big;
}

inline bool want_full(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--full") return true;
  }
  return false;
}

// Seconds elapsed running fn(). Monotonic (steady_clock) — wall-clock
// sources jump under NTP and invalidate short measurements.
inline double time_s(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// Best-of-N timing: the minimum over `rounds` runs. The shared-vCPU boxes
// these benches run on see multi-second CPU-steal episodes; the minimum is
// the only statistic that converges on the machine's actual speed. All
// benches report best-of-N through this helper so their numbers compare.
inline double best_of(int rounds, const std::function<void()>& fn) {
  double best = 1e100;
  for (int r = 0; r < rounds; ++r) {
    double s = time_s(fn);
    if (s < best) best = s;
  }
  return best;
}

inline double mbits(std::size_t bytes) { return bytes * 8.0 / 1e6; }

// The box's vCPU count, recorded in every trajectory entry: the
// single-thread numbers from a 1-vCPU runner and a many-core desktop are
// not comparable, and the entry must say which it was.
inline unsigned hardware_concurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

inline void header(const char* title, const char* paper_note) {
  std::printf("==== %s ====\n", title);
  std::printf("paper: %s\n\n", paper_note);
}

// ---- BENCH_hotpath.json trajectory -----------------------------------------
//
// The committed repo-root trajectory is an array of flat per-run objects,
// each tagged with the PR it measured ("pr") and the bench that wrote it
// ("bench": "hotpath" | "server"; entries predating the tag are hotpath's).
// A writer re-running keeps every entry except its own (same pr AND same
// bench), so micro_hotpath and micro_server append to one shared file
// without clobbering each other. Entries are split on top-level braces
// (ours are flat — no nested objects); a legacy single-object file is
// adopted as the PR 3 hotpath entry it was written by.
inline std::vector<std::string> read_trajectory_entries(
    const std::string& path, int drop_pr, const std::string& drop_bench) {
  std::vector<std::string> entries;
  FILE* in = std::fopen(path.c_str(), "r");
  if (in == nullptr) return entries;
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, in)) > 0) text.append(buf, n);
  std::fclose(in);
  std::size_t i = 0;
  while (i < text.size() && (text[i] == ' ' || text[i] == '\n')) ++i;
  bool legacy_object = i < text.size() && text[i] == '{';
  std::string cur;
  int depth = 0;
  bool in_string = false;
  auto int_field = [](const std::string& e, const char* key, int fallback) {
    std::size_t p = e.find(key);
    if (p == std::string::npos) return fallback;
    p = e.find(':', p);
    if (p == std::string::npos) return fallback;
    return std::atoi(e.c_str() + p + 1);
  };
  auto string_field = [](const std::string& e, const char* key,
                         const char* fallback) -> std::string {
    std::size_t p = e.find(key);
    if (p == std::string::npos) return fallback;
    p = e.find(':', p);
    if (p == std::string::npos) return fallback;
    p = e.find('"', p);
    if (p == std::string::npos) return fallback;
    std::size_t q = e.find('"', p + 1);
    if (q == std::string::npos) return fallback;
    return e.substr(p + 1, q - p - 1);
  };
  for (; i < text.size(); ++i) {
    char c = text[i];
    // Braces inside string values (e.g. a free-text "note") must not
    // affect the entry split.
    if (in_string) {
      if (depth > 0) cur.push_back(c);
      if (c == '\\' && i + 1 < text.size()) {
        if (depth > 0) cur.push_back(text[i + 1]);
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
      if (depth > 0) cur.push_back(c);
      continue;
    }
    if (c == '{') {
      if (++depth == 1) cur.clear();
    }
    if (depth > 0) cur.push_back(c);
    if (c == '}' && --depth == 0) {
      if (legacy_object && cur.find("\"pr\"") == std::string::npos) {
        // Adopt the pre-trajectory single object as the PR 3 entry.
        cur.insert(1, "\n  \"pr\": 3,");
      }
      int entry_pr = int_field(cur, "\"pr\"", -1);
      std::string entry_bench = string_field(cur, "\"bench\"", "hotpath");
      if (entry_pr != drop_pr || entry_bench != drop_bench) {
        entries.push_back(cur);
      }
    }
  }
  return entries;
}

}  // namespace bench
