// Shared support for the figure/table benches: a cached benchmark corpus
// (the stand-in for the paper's 233k sampled chunks, §4), wall-clock
// timing, and uniform row printing so each bench's output reads like the
// corresponding figure. Every bench prints the paper's reported values next
// to the measured ones; EXPERIMENTS.md records both.
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "util/stats.h"

namespace bench {

// Corpus sizes are scaled down from the paper's 100 KiB-4 MiB so every
// bench binary finishes in seconds; pass --full for the wider band.
inline lepton::corpus::CorpusOptions corpus_options(bool full) {
  lepton::corpus::CorpusOptions o;
  if (full) {
    o.min_bytes = 100 << 10;
    o.max_bytes = 4 << 20;
    o.valid_files = 40;
  } else {
    o.min_bytes = 24 << 10;
    o.max_bytes = 320 << 10;
    o.valid_files = 18;
  }
  return o;
}

inline const std::vector<lepton::corpus::CorpusFile>& corpus(bool full) {
  static std::vector<lepton::corpus::CorpusFile> small =
      lepton::corpus::build_corpus(corpus_options(false));
  static std::vector<lepton::corpus::CorpusFile> big;
  if (!full) return small;
  if (big.empty()) big = lepton::corpus::build_corpus(corpus_options(true));
  return big;
}

inline bool want_full(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--full") return true;
  }
  return false;
}

// Seconds elapsed running fn(). Monotonic (steady_clock) — wall-clock
// sources jump under NTP and invalidate short measurements.
inline double time_s(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// Best-of-N timing: the minimum over `rounds` runs. The shared-vCPU boxes
// these benches run on see multi-second CPU-steal episodes; the minimum is
// the only statistic that converges on the machine's actual speed. All
// benches report best-of-N through this helper so their numbers compare.
inline double best_of(int rounds, const std::function<void()>& fn) {
  double best = 1e100;
  for (int r = 0; r < rounds; ++r) {
    double s = time_s(fn);
    if (s < best) best = s;
  }
  return best;
}

inline double mbits(std::size_t bytes) { return bytes * 8.0 / 1e6; }

inline void header(const char* title, const char* paper_note) {
  std::printf("==== %s ====\n", title);
  std::printf("paper: %s\n\n", paper_note);
}

}  // namespace bench
