// Figure 13: decode:encode ratio on the serving path during the 2016
// rollout ("boiling the frog", §6.4). Paper: the ratio starts near zero
// (all stored photos were still Deflate) and climbs toward 1.5-2.0 as the
// Lepton-compressed fraction of the store and its download traffic grow —
// quietly multiplying decode hardware needs.
#include "bench_common.h"
#include "storage/rollout.h"

int main() {
  bench::header("Figure 13: decode:encode ratio during rollout",
                "climbs from ~0 to ~1.5-2.0 over the first months");
  lepton::storage::RolloutConfig cfg;
  auto series = lepton::storage::simulate_rollout(cfg);
  std::printf("%6s %14s %14s %8s %16s\n", "day", "decodes/s", "encodes/s",
              "ratio", "lepton fraction");
  for (std::size_t i = 0; i < series.size(); i += 5) {
    const auto& s = series[i];
    std::printf("%6.0f %14.2f %14.2f %8.2f %15.4f%%\n", s.day, s.decode_rate,
                s.encode_rate, s.ratio, 100 * s.lepton_fraction);
  }
  return 0;
}
