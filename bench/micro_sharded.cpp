// micro_sharded — the sharded fleet store under the §5 replay workload.
//
// Drives storage/replay_harness.h: a fig11-ramped backfill across N
// DurableStore shards, then Zipf-skewed reads (fig05 weekly timestamps)
// through the decoded-output cache, with a SHUTOFF drill mid-backfill and
// one shard kill + recovery mid-reads. Every successful read is verified
// byte-for-byte, so the numbers below only exist if zero acked reads were
// lost or corrupted. Also measures raw ring-lookup throughput (placement
// must never show up next to a decode on a profile).
//
// Default shape finishes in well under a minute for CI; --full runs the
// acceptance-scale replay (1M objects / 1.2M reads over 4 shards — the
// shape the committed pr=10 trajectory entry records). Appends a
// "bench": "sharded" entry to the BENCH_hotpath.json trajectory.
//
// Flags: --full, --out <path>, --pr <n> (default: this PR).
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_common.h"
#include "storage/hash_ring.h"
#include "storage/replay_harness.h"

namespace {

constexpr int kCurrentPr = 10;

namespace ls = lepton::storage;

// Placement cost: shard_of over a realistic 8-member, 128-vnode ring.
double ring_lookup_mops() {
  ls::HashRing ring;
  for (int s = 0; s < 8; ++s) ring.add_shard("blockserver-" + std::to_string(s));
  std::vector<std::string> keys;
  keys.reserve(4096);
  for (int k = 0; k < 4096; ++k) {
    keys.push_back("photos/" + std::to_string(k * 7919) + ".jpg");
  }
  // Accumulate ids so the loop cannot be optimized out.
  volatile long sink = 0;
  const int kRounds = 200;
  double s = bench::best_of(3, [&] {
    long acc = 0;
    for (int r = 0; r < kRounds; ++r) {
      for (const std::string& k : keys) acc += ring.shard_of(k);
    }
    sink = acc;
  });
  (void)sink;
  return kRounds * keys.size() / s / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  bool full = bench::want_full(argc, argv);
  std::string out_path = "BENCH_hotpath.json";
  int pr = kCurrentPr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
    if (std::string(argv[i]) == "--pr") pr = std::atoi(argv[i + 1]);
  }

  ls::ReplayHarnessConfig hc;  // defaults are the acceptance scale
  if (!full) {
    hc.objects = 20'000;
    hc.reads = 60'000;
    hc.pool = 256;
    hc.cache_mb = 8;
    hc.uncached_sample = 1'500;
    hc.restart_verify_sample = 500;
  }
  hc.dir = "/tmp/micro_sharded_" + std::to_string(::getpid());
  hc.progress = full;  // the full run takes minutes; narrate it

  double ring_mops = ring_lookup_mops();
  std::printf("micro_sharded: ring lookup %.2f Mops/s (8 shards x 128 vnodes)\n",
              ring_mops);
  std::printf(
      "replay: %llu objects / %llu reads over %d shards (pool %zu, cache "
      "%zu MB)%s\n\n",
      static_cast<unsigned long long>(hc.objects),
      static_cast<unsigned long long>(hc.reads), hc.shards, hc.pool,
      hc.cache_mb, full ? " [--full]" : "");

  ls::ReplayReport r = ls::run_replay(hc);
  if (!r.error.empty()) {
    std::fprintf(stderr, "micro_sharded: FATAL %s\n", r.error.c_str());
    return 1;
  }

  std::printf("%-26s %llu\n", "accesses",
              static_cast<unsigned long long>(r.accesses));
  std::printf("%-26s %.0f keys/s\n", "backfill", r.backfill_keys_per_s);
  std::printf("%-26s %llu ok / %llu unavailable / %llu failed / %llu corrupt\n",
              "reads", static_cast<unsigned long long>(r.reads_ok),
              static_cast<unsigned long long>(r.reads_unavailable),
              static_cast<unsigned long long>(r.reads_failed),
              static_cast<unsigned long long>(r.reads_corrupt));
  std::printf("%-26s %llu (shard %d killed + recovered)\n", "lost after restart",
              static_cast<unsigned long long>(r.lost_after_restart),
              r.killed_shard);
  std::printf("%-26s %.1f%%\n", "cache hit rate", 100.0 * r.hit_rate);
  std::printf("%-26s %.1f MB/s\n", "cached read rate", r.cached_MBps);
  std::printf("%-26s %.1f MB/s\n", "uncached read rate", r.uncached_MBps);
  std::printf("%-26s %.1fx\n", "cache speedup", r.cache_speedup);
  if (!r.ok) {
    std::fprintf(stderr, "\nmicro_sharded: REPLAY FAILED — numbers void\n");
    return 1;
  }

  std::vector<std::string> entries =
      bench::read_trajectory_entries(out_path, pr, "sharded");
  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "[\n");
  for (const auto& e : entries) std::fprintf(out, "%s,\n", e.c_str());
  std::fprintf(out,
               "{\n"
               "  \"pr\": %d,\n"
               "  \"bench\": \"sharded\",\n"
               "  \"shards\": %d,\n"
               "  \"objects\": %llu,\n"
               "  \"accesses\": %llu,\n"
               "  \"cache_hit_rate\": %.4f,\n"
               "  \"cached_read_MBps\": %.2f,\n"
               "  \"uncached_read_MBps\": %.2f,\n"
               "  \"cache_speedup\": %.2f,\n"
               "  \"backfill_keys_per_s\": %.0f,\n"
               "  \"ring_lookup_Mops\": %.2f,\n"
               "  \"reads_failed\": %llu,\n"
               "  \"reads_corrupt\": %llu,\n"
               "  \"lost_after_restart\": %llu,\n"
               "  \"shard_killed_and_recovered\": %d,\n"
               "  \"hardware_concurrency\": %u\n"
               "}\n"
               "]\n",
               pr, hc.shards, static_cast<unsigned long long>(hc.objects),
               static_cast<unsigned long long>(r.accesses), r.hit_rate,
               r.cached_MBps, r.uncached_MBps, r.cache_speedup,
               r.backfill_keys_per_s, ring_mops,
               static_cast<unsigned long long>(r.reads_failed),
               static_cast<unsigned long long>(r.reads_corrupt),
               static_cast<unsigned long long>(r.lost_after_restart),
               r.killed_shard >= 0 ? 1 : 0, bench::hardware_concurrency());
  std::fclose(out);
  std::printf("\nwrote %s (trajectory entry pr=%d bench=sharded, %zu prior "
              "entries kept)\n",
              out_path.c_str(), pr, entries.size());
  return 0;
}
