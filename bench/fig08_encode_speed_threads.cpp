// Figure 8: compression speed vs input size at 1/2/4/8 threads.
// Paper: encode gains little from 8 vs 4 threads because the *serial*
// Huffman decode of the original JPEG becomes the bottleneck — the encoder
// cannot use handover words on a file it did not write (§5.4).
#include "bench_common.h"
#include "corpus/corpus.h"
#include "lepton/codec.h"

int main(int argc, char** argv) {
  bool full = bench::want_full(argc, argv);
  bench::header("Figure 8: encode Mbit/s vs size, by thread count",
                "4->8 threads barely helps: serial JPEG Huffman decode "
                "bottlenecks the encoder");

  std::vector<std::size_t> sizes = full
      ? std::vector<std::size_t>{100u << 10, 400u << 10, 1u << 20, 2u << 20,
                                 4u << 20}
      : std::vector<std::size_t>{48u << 10, 96u << 10, 192u << 10,
                                 384u << 10};
  std::printf("%12s %12s %12s %12s %12s\n", "size KiB", "1 thread",
              "2 threads", "4 threads", "8 threads");
  int reps = full ? 1 : 3;
  for (std::size_t target : sizes) {
    auto jpeg = lepton::corpus::jpeg_of_size(target, 8000 + target);
    std::printf("%12.1f", jpeg.size() / 1024.0);
    for (int threads : {1, 2, 4, 8}) {
      lepton::EncodeOptions opt;
      opt.force_threads = threads;
      double best = 0;
      for (int r = 0; r < reps; ++r) {
        lepton::Result enc;
        double secs = bench::time_s(
            [&] { enc = lepton::encode_jpeg({jpeg.data(), jpeg.size()}, opt); });
        if (enc.ok()) best = std::max(best, bench::mbits(jpeg.size()) / secs);
      }
      std::printf("%12.1f", best);
    }
    std::printf("\n");
  }
  return 0;
}
