// Figure 3: max resident memory per codec. Paper: Lepton decode uses a
// hard 24 MiB single-threaded / 39 MiB p99 multithreaded (model copied per
// thread), versus 69-192 MiB for the other format-aware codecs — PackJPG
// must hold the whole coefficient image; Lepton streams two block rows.
// We measure the tracked-allocation high-water mark (codecs route their
// bulk buffers through the tracker; see util/tracked_memory.h).
#include "baselines/codec_iface.h"
#include "bench_common.h"
#include "util/tracked_memory.h"

int main(int argc, char** argv) {
  bool full = bench::want_full(argc, argv);
  bench::header("Figure 3: peak memory (tracked-allocation high water)",
                "lepton decode 24-39 MiB; other JPEG-aware 69-192 MiB "
                "(scaled: our corpus files are smaller)");

  auto codecs = lepton::baselines::make_comparison_codecs();
  std::printf("%-28s %22s %22s\n", "codec", "enc MiB (p50/p99)",
              "dec MiB (p50/p99)");
  for (auto& codec : codecs) {
    lepton::util::Percentiles enc_mem, dec_mem;
    for (const auto& f : bench::corpus(full)) {
      if (f.kind != lepton::corpus::FileKind::kBaselineJpeg) continue;
      lepton::baselines::CodecResult enc;
      {
        lepton::util::MemoryGauge g;
        enc = codec->encode({f.bytes.data(), f.bytes.size()});
        enc_mem.add(static_cast<double>(g.peak_bytes()) / (1 << 20));
      }
      if (!enc.ok()) continue;
      {
        lepton::util::MemoryGauge g;
        (void)codec->decode({enc.data.data(), enc.data.size()});
        dec_mem.add(static_cast<double>(g.peak_bytes()) / (1 << 20));
      }
    }
    std::printf("%-28s %10.2f /%8.2f %10.2f /%8.2f\n", codec->name().c_str(),
                enc_mem.percentile(50), enc_mem.percentile(99),
                dec_mem.percentile(50), dec_mem.percentile(99));
  }
  std::printf(
      "\nshape check: lepton decode uses a small fixed working set; "
      "packjpg-like decode scales with image size\n");
  return 0;
}
