// Failpoint overhead microbench: the layer's promise is "zero cost when
// disabled" — every wired site costs one relaxed atomic load and a
// predictable branch on the hot path. This measures that check against an
// unguarded loop, and the armed-but-not-firing slow path (registry lock +
// site lookup) for contrast — the slow path only exists inside chaos runs.
//
// Usage: micro_fault [--full]
#include <atomic>

#include "bench_common.h"
#include "util/failpoint.h"

namespace {

// The same shape as a wired site's fast path, with the outcome kept live.
std::uint64_t guarded_loop(std::uint64_t iters) {
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    if (lepton::util::failpoint::armed()) {
      acc += lepton::util::failpoint::hit("bench.site").fired() ? 1 : 0;
    }
    acc += i;
  }
  return acc;
}

std::uint64_t bare_loop(std::uint64_t iters) {
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < iters; ++i) acc += i;
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  bool full = bench::want_full(argc, argv);
  const std::uint64_t iters = full ? 400'000'000ull : 50'000'000ull;
  bench::header("micro_fault: failpoint check overhead",
                "robustness layer contract: sites are free until a chaos "
                "schedule arms them");

  std::atomic<std::uint64_t> sink{0};

  double bare = bench::best_of(5, [&] { sink += bare_loop(iters); });
  double off = bench::best_of(5, [&] { sink += guarded_loop(iters); });

  std::string err;
  if (!lepton::util::failpoint::arm("bench.site=delay:0ms@0.0", &err)) {
    std::fprintf(stderr, "arm: %s\n", err.c_str());
    return 1;
  }
  // Armed, never fires: every iteration takes the registry lock. This is
  // the price of a *chaos* run, shown for scale — not a production cost.
  const std::uint64_t armed_iters = iters / 50;
  double on = bench::best_of(3, [&] { sink += guarded_loop(armed_iters); });
  lepton::util::failpoint::disarm();

  auto per = [](double s, std::uint64_t n) { return s / n * 1e9; };
  std::printf("%-34s %10.3f ns/iter\n", "bare loop", per(bare, iters));
  std::printf("%-34s %10.3f ns/iter\n", "disabled failpoint check",
              per(off, iters));
  std::printf("%-34s %10.3f ns/iter (chaos runs only)\n",
              "armed, non-firing site", per(on, armed_iters));
  std::printf("\ndisabled-check overhead: %.3f ns/iter (sink %llu)\n",
              per(off, iters) - per(bare, iters),
              static_cast<unsigned long long>(sink.load() & 1));
  return 0;
}
