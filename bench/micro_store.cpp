// micro_store — durability overhead of storage::DurableStore.
//
// Measures put and get throughput (original-JPEG MB/s) through the full
// commit protocol at the three fsync levels:
//
//   fsync=always   every commit barriered (object fsync + dir fsync +
//                  journal fsync) — the crash-safe-vs-power-loss setting
//   fsync=batch    object files barriered; journal group-commits every
//                  16 records — the paper-scale bulk-ingest setting
//   fsync=off      no barriers — crash-safe vs process death only; this is
//                  the codec-bound ceiling the barrier overhead is priced
//                  against
//
// Also reports pure-dedup put throughput (second copy of every key — no
// object I/O, journal append only) and the recovery-scan rate. Appends a
// "bench": "store" entry to the BENCH_hotpath.json trajectory.
//
// Flags: --full for the larger corpus band, --out <path> for the JSON,
// --pr <n> for the trajectory entry id (default: this PR).
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_common.h"
#include "storage/durable_store.h"

namespace {

constexpr int kCurrentPr = 9;

using lepton::storage::DurableStore;
using lepton::storage::DurableStoreConfig;
using lepton::storage::FsyncMode;

struct StoreRun {
  double put_MBps = 0;
  double dedup_put_MBps = 0;
  double get_MBps = 0;
  double reopen_s = 0;  // recovery scan incl. full md5 verify
};

StoreRun run_mode(const std::vector<lepton::corpus::CorpusFile>& files,
                  FsyncMode mode, const char* tag) {
  std::string root = "/tmp/micro_store_" + std::to_string(::getpid()) + "_" +
                     tag;
  StoreRun r;
  double in_mb = 0;
  for (const auto& f : files) in_mb += static_cast<double>(f.bytes.size());
  in_mb /= 1 << 20;

  std::unique_ptr<DurableStore> store;
  {
    DurableStoreConfig cfg;
    cfg.root = root;
    cfg.fsync = mode;
    std::string err;
    store = DurableStore::open(std::move(cfg), &err);
    if (store == nullptr) {
      std::fprintf(stderr, "micro_store: open %s: %s\n", root.c_str(),
                   err.c_str());
      std::exit(1);
    }
  }

  double put_s = bench::time_s([&] {
    for (std::size_t i = 0; i < files.size(); ++i) {
      const auto& d = files[i].bytes;
      auto ps = store->put("k" + std::to_string(i), {d.data(), d.size()});
      if (!ps.acknowledged) std::exit(1);
    }
    if (!store->sync()) std::exit(1);
  });
  r.put_MBps = in_mb / put_s;

  // Same content under new keys: content-address hit, journal append only.
  double dedup_s = bench::time_s([&] {
    for (std::size_t i = 0; i < files.size(); ++i) {
      const auto& d = files[i].bytes;
      auto ps = store->put("dup" + std::to_string(i), {d.data(), d.size()});
      if (!ps.acknowledged || !ps.deduplicated) std::exit(1);
    }
    if (!store->sync()) std::exit(1);
  });
  r.dedup_put_MBps = in_mb / dedup_s;

  double get_s = bench::time_s([&] {
    for (std::size_t i = 0; i < files.size(); ++i) {
      lepton::Result res;
      if (!store->get("k" + std::to_string(i), &res) || !res.ok() ||
          res.data != files[i].bytes) {
        std::exit(1);
      }
    }
  });
  r.get_MBps = in_mb / get_s;

  store.reset();
  r.reopen_s = bench::time_s([&] {
    DurableStoreConfig cfg;
    cfg.root = root;
    cfg.fsync = mode;
    std::string err;
    auto re = DurableStore::open(std::move(cfg), &err);
    if (re == nullptr || re->stats().recovery.keys_lost != 0) std::exit(1);
  });
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool full = bench::want_full(argc, argv);
  std::string out_path = "BENCH_hotpath.json";
  int pr = kCurrentPr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
    if (std::string(argv[i]) == "--pr") pr = std::atoi(argv[i + 1]);
  }
  const auto& files = bench::corpus(full);
  double in_mb = 0;
  for (const auto& f : files) in_mb += static_cast<double>(f.bytes.size());
  in_mb /= 1 << 20;
  std::printf("micro_store: %zu files, %.2f MB, %u hw threads\n\n",
              files.size(), in_mb, bench::hardware_concurrency());

  struct {
    FsyncMode mode;
    const char* tag;
    StoreRun run;
  } modes[] = {
      {FsyncMode::kAlways, "always", {}},
      {FsyncMode::kBatch, "batch", {}},
      {FsyncMode::kNone, "off", {}},
  };
  std::printf("%-14s %12s %14s %12s %10s\n", "FSYNC", "PUT_MB/S",
              "DEDUP_PUT_MB/S", "GET_MB/S", "REOPEN_S");
  for (auto& m : modes) {
    m.run = run_mode(files, m.mode, m.tag);
    std::printf("%-14s %12.2f %14.2f %12.2f %10.3f\n", m.tag, m.run.put_MBps,
                m.run.dedup_put_MBps, m.run.get_MBps, m.run.reopen_s);
  }
  const StoreRun& always = modes[0].run;
  const StoreRun& batch = modes[1].run;
  const StoreRun& off = modes[2].run;
  std::printf(
      "\ndurability overhead: always/off put fraction %.3f, batch/off %.3f\n",
      off.put_MBps > 0 ? always.put_MBps / off.put_MBps : 0.0,
      off.put_MBps > 0 ? batch.put_MBps / off.put_MBps : 0.0);

  std::vector<std::string> entries =
      bench::read_trajectory_entries(out_path, pr, "store");
  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "[\n");
  for (const auto& e : entries) std::fprintf(out, "%s,\n", e.c_str());
  std::fprintf(out,
               "{\n"
               "  \"pr\": %d,\n"
               "  \"bench\": \"store\",\n"
               "  \"put_fsync_MBps\": %.2f,\n"
               "  \"put_batch_MBps\": %.2f,\n"
               "  \"put_nofsync_MBps\": %.2f,\n"
               "  \"dedup_put_fsync_MBps\": %.2f,\n"
               "  \"get_MBps\": %.2f,\n"
               "  \"reopen_verify_s\": %.3f,\n"
               "  \"fsync_overhead_fraction\": %.3f,\n"
               "  \"batch_overhead_fraction\": %.3f,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"corpus_files\": %zu,\n"
               "  \"corpus_MB\": %.2f\n"
               "}\n"
               "]\n",
               pr, always.put_MBps, batch.put_MBps, off.put_MBps,
               always.dedup_put_MBps, off.get_MBps, always.reopen_s,
               off.put_MBps > 0 ? always.put_MBps / off.put_MBps : 0.0,
               off.put_MBps > 0 ? batch.put_MBps / off.put_MBps : 0.0,
               bench::hardware_concurrency(), files.size(), in_mb);
  std::fclose(out);
  std::printf("\nwrote %s (trajectory entry pr=%d bench=store, %zu prior "
              "entries kept)\n",
              out_path.c_str(), pr, entries.size());
  return 0;
}
