#!/usr/bin/env bash
# Runs the hot-path and serving-layer microbenches and appends their entries
# to the committed repo-root BENCH_hotpath.json *trajectory* — an array with
# one entry per (PR, bench) pair: micro_hotpath writes "bench": "hotpath"
# entries (seeded with the PR 1/PR 3 numbers), micro_server writes
# "bench": "server" entries, micro_store writes "bench": "store" entries
# (durable-commit throughput at the three fsync levels), micro_sharded
# writes "bench": "sharded" entries (the §5 workload replay over the
# sharded fleet store — cache hit rate and cached vs uncached read MB/s);
# a re-run replaces only its own entry. Also runs
# the encode thread-scaling sweep (Figure 8) so the encode-side pipeline's
# scaling behaviour is captured alongside the single-thread levers.
#
# Usage: bench/run_bench.sh [build-dir] [-- extra micro_hotpath args]
# The build dir defaults to ./build and is configured+built if missing.
# PR=<n> overrides the trajectory entry id (default: each bench's
# kCurrentPr — bump micro_hotpath's once per perf PR, micro_server's once
# per serving-layer PR). Both thread-scaling sweeps run — decode (Figure 7)
# and encode (Figure 8) — so the per-thread codec numbers land next to the
# single-thread levers in the same artifact.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if [[ ! -x "$build_dir/micro_hotpath" || ! -x "$build_dir/micro_server" ||
      ! -x "$build_dir/micro_store" || ! -x "$build_dir/micro_sharded" ||
      ! -x "$build_dir/fig07_decode_speed_threads" ||
      ! -x "$build_dir/fig08_encode_speed_threads" ]]; then
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" \
    --target micro_hotpath micro_server micro_store micro_sharded \
    fig07_decode_speed_threads fig08_encode_speed_threads \
    -j "$(nproc)"
fi

shift $(( $# > 0 ? 1 : 0 )) || true
pr_args=()
if [[ -n "${PR:-}" ]]; then pr_args=(--pr "$PR"); fi
"$build_dir/micro_hotpath" --out "$repo_root/BENCH_hotpath.json" \
  "${pr_args[@]}" "$@"

echo
"$build_dir/micro_server" --out "$repo_root/BENCH_hotpath.json" "${pr_args[@]}"

echo
"$build_dir/micro_store" --out "$repo_root/BENCH_hotpath.json" "${pr_args[@]}"

echo
"$build_dir/micro_sharded" --out "$repo_root/BENCH_hotpath.json" "${pr_args[@]}"

echo
"$build_dir/fig07_decode_speed_threads" | tee "$build_dir/fig07_decode_speed_threads.txt"
echo "wrote $build_dir/fig07_decode_speed_threads.txt"

echo
"$build_dir/fig08_encode_speed_threads" | tee "$build_dir/fig08_encode_speed_threads.txt"
echo "wrote $build_dir/fig08_encode_speed_threads.txt"
