#!/usr/bin/env bash
# Runs the hot-path microbench and writes BENCH_hotpath.json at the repo
# root — the committed perf trajectory every perf PR compares against
# (ISSUE 3 acceptance; DESIGN.md §"Performance architecture").
#
# Usage: bench/run_bench.sh [build-dir] [-- extra micro_hotpath args]
# The build dir defaults to ./build and is configured+built if missing.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if [[ ! -x "$build_dir/micro_hotpath" ]]; then
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" --target micro_hotpath -j "$(nproc)"
fi

shift $(( $# > 0 ? 1 : 0 )) || true
"$build_dir/micro_hotpath" --out "$repo_root/BENCH_hotpath.json" "$@"
echo "wrote $repo_root/BENCH_hotpath.json"
