// Figure 1: compression savings vs decompression speed (time-to-last-byte)
// for the four lossless JPEG recompressors. Paper: Lepton ~23% savings at
// the highest decode speed; PackJPG matches the ratio but decodes >9x
// slower; MozJPEG-arithmetic ~12%; JPEGrescan-progressive ~8%. Diamonds in
// the paper are p25/p50/p75 across 200k JPEGs; we print the same three
// percentiles over the corpus.
#include "baselines/arith_jpeg.h"
#include "baselines/lepton_codec.h"
#include "baselines/packjpg_like.h"
#include "baselines/rescan_like.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  bool full = bench::want_full(argc, argv);
  bench::header("Figure 1: savings vs decompression speed",
                "lepton ~23%/fastest; packjpg ~23%/9x slower; "
                "mozjpeg-arith ~12%; jpegrescan ~8%");

  std::vector<std::unique_ptr<lepton::baselines::Codec>> codecs;
  codecs.push_back(
      std::make_unique<lepton::baselines::LeptonCodecAdapter>(false));
  codecs.push_back(
      std::make_unique<lepton::baselines::PackJpgLikeCodec>(false));
  codecs.push_back(std::make_unique<lepton::baselines::ArithJpegCodec>());
  codecs.push_back(std::make_unique<lepton::baselines::RescanLikeCodec>());

  std::printf("%-20s %26s %32s\n", "codec", "savings %% (p25/p50/p75)",
              "decode Mbit/s (p25/p50/p75)");
  for (auto& codec : codecs) {
    lepton::util::Percentiles savings, speed;
    for (const auto& f : bench::corpus(full)) {
      if (f.kind != lepton::corpus::FileKind::kBaselineJpeg) continue;
      auto enc = codec->encode({f.bytes.data(), f.bytes.size()});
      if (!enc.ok()) continue;
      savings.add(100.0 * (1.0 - static_cast<double>(enc.data.size()) /
                                     f.bytes.size()));
      lepton::baselines::CodecResult dec;
      double secs = bench::best_of(3, [&] {
        dec = codec->decode({enc.data.data(), enc.data.size()});
      });
      if (dec.ok() && dec.data == f.bytes) {
        speed.add(bench::mbits(f.bytes.size()) / secs);
      }
    }
    std::printf("%-20s %8.1f /%6.1f /%6.1f  %12.1f /%8.1f /%8.1f\n",
                codec->name().c_str(), savings.percentile(25),
                savings.percentile(50), savings.percentile(75),
                speed.percentile(25), speed.percentile(50),
                speed.percentile(75));
  }
  std::printf(
      "\nshape check: lepton savings ≈ packjpg savings; lepton decode speed "
      ">> packjpg; arith > rescan on savings\n");
  return 0;
}
