// Google-benchmark microbenchmarks of the performance-critical primitives:
// the range coder (the decode inner loop, §3.2), adaptive-branch updates,
// Huffman scan encode/decode (the §5.4 serial encoder bottleneck), the
// integer IDCT behind DC prediction, and MD5 (the §5.7 admit path).
#include <benchmark/benchmark.h>

#include "coding/bool_coder.h"
#include "coding/branch.h"
#include "corpus/corpus.h"
#include "jpeg/dct.h"
#include "jpeg/parser.h"
#include "jpeg/scan_decoder.h"
#include "jpeg/scan_encoder.h"
#include "util/md5.h"
#include "util/rng.h"

namespace {

void BM_BoolCoderEncode(benchmark::State& state) {
  lepton::util::Rng rng(1);
  std::vector<bool> bits(1 << 16);
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = rng.chance(0.3);
  for (auto _ : state) {
    lepton::coding::BoolEncoder enc;
    for (bool b : bits) enc.put(b, 179);
    benchmark::DoNotOptimize(enc.finish());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bits.size()));
}
BENCHMARK(BM_BoolCoderEncode);

void BM_BoolCoderDecode(benchmark::State& state) {
  lepton::util::Rng rng(1);
  lepton::coding::BoolEncoder enc;
  const int n = 1 << 16;
  for (int i = 0; i < n; ++i) enc.put(rng.chance(0.3), 179);
  auto data = enc.finish();
  for (auto _ : state) {
    lepton::coding::BoolDecoder dec({data.data(), data.size()});
    for (int i = 0; i < n; ++i) benchmark::DoNotOptimize(dec.get(179));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BoolCoderDecode);

void BM_BranchAdapt(benchmark::State& state) {
  lepton::coding::Branch b;
  int i = 0;
  for (auto _ : state) {
    b.record((++i & 3) == 0);
    benchmark::DoNotOptimize(b.prob_zero());
  }
}
BENCHMARK(BM_BranchAdapt);

const std::vector<std::uint8_t>& sample_jpeg() {
  static auto jpeg = lepton::corpus::jpeg_of_size(96 << 10, 4242);
  return jpeg;
}

void BM_JpegScanDecode(benchmark::State& state) {
  auto& jpeg = sample_jpeg();
  auto jf = lepton::jpegfmt::parse_jpeg({jpeg.data(), jpeg.size()});
  for (auto _ : state) {
    benchmark::DoNotOptimize(lepton::jpegfmt::decode_scan(jf));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(jpeg.size()));
}
BENCHMARK(BM_JpegScanDecode);

void BM_JpegScanEncode(benchmark::State& state) {
  auto& jpeg = sample_jpeg();
  auto jf = lepton::jpegfmt::parse_jpeg({jpeg.data(), jpeg.size()});
  auto dec = lepton::jpegfmt::decode_scan(jf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lepton::jpegfmt::reconstruct_scan(jf, dec));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(jpeg.size()));
}
BENCHMARK(BM_JpegScanEncode);

void BM_IdctScaled(benchmark::State& state) {
  lepton::util::Rng rng(2);
  std::int32_t coef[64], out[64];
  for (auto& c : coef) c = static_cast<std::int32_t>(rng.range(-512, 512));
  for (auto _ : state) {
    lepton::jpegfmt::idct_8x8_scaled(coef, out);
    benchmark::DoNotOptimize(out[0]);
  }
}
BENCHMARK(BM_IdctScaled);

void BM_Md5(benchmark::State& state) {
  std::vector<std::uint8_t> data(1 << 20);
  lepton::util::Rng rng(3);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lepton::util::Md5::digest({data.data(), data.size()}));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_Md5);

}  // namespace

BENCHMARK_MAIN();
