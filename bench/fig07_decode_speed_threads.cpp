// Figure 7: decompression speed vs input file size at 1/2/4/8 threads.
// Paper: speed grows with thread count (the Huffman handover words allow
// fully parallel decode, §3.4), with visible cutoffs where the production
// size policy switches thread counts.
#include "bench_common.h"
#include "corpus/corpus.h"
#include "lepton/codec.h"

int main(int argc, char** argv) {
  bool full = bench::want_full(argc, argv);
  bench::header("Figure 7: decode Mbit/s vs size, by thread count",
                "more threads = faster decode; handover words remove the "
                "serial bottleneck");

  std::vector<std::size_t> sizes = full
      ? std::vector<std::size_t>{100u << 10, 400u << 10, 1u << 20, 2u << 20,
                                 4u << 20}
      : std::vector<std::size_t>{48u << 10, 96u << 10, 192u << 10,
                                 384u << 10};
  std::printf("%12s %12s %12s %12s %12s\n", "size KiB", "1 thread",
              "2 threads", "4 threads", "8 threads");
  int reps = full ? 1 : 3;
  for (std::size_t target : sizes) {
    auto jpeg = lepton::corpus::jpeg_of_size(target, 7000 + target);
    std::printf("%12.1f", jpeg.size() / 1024.0);
    for (int threads : {1, 2, 4, 8}) {
      lepton::EncodeOptions opt;
      opt.force_threads = threads;
      auto enc = lepton::encode_jpeg({jpeg.data(), jpeg.size()}, opt);
      if (!enc.ok()) {
        std::printf("%12s", "-");
        continue;
      }
      double best = 0;
      for (int r = 0; r < reps; ++r) {
        lepton::Result dec;
        double secs = bench::time_s(
            [&] { dec = lepton::decode_lepton({enc.data.data(),
                                               enc.data.size()}); });
        if (dec.ok()) best = std::max(best, bench::mbits(jpeg.size()) / secs);
      }
      std::printf("%12.1f", best);
    }
    std::printf("\n");
  }
  return 0;
}
