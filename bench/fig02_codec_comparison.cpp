// Figure 2: savings and encode/decode speed for the full codec lineup over
// the benchmark corpus *including* the chunks Lepton rejects (corrupt,
// progressive, CMYK) — rejected files count as 0% savings, as in the paper.
// Paper values: Lepton 22.4%, Lepton 1-way 23.2%, PackJPG 23.0%, PAQ8PX
// 24.0%, JPEGrescan 8.3%, MozJPEG 12.0%, generic codecs ~0-1%; Lepton p50
// decode < 60 ms, p99 < 250 ms; encode p50 170 ms, p99 1 s.
#include "baselines/codec_iface.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  bool full = bench::want_full(argc, argv);
  bench::header("Figure 2: codec comparison (savings & speed)",
                "JPEG-aware ~8-24% but slower; generic fast but ~1%");

  auto codecs = lepton::baselines::make_comparison_codecs();
  std::printf("%-28s %9s %15s %15s %15s %15s\n", "codec", "savings%",
              "enc Mbps p50", "dec Mbps p50", "enc s p50/p99",
              "dec s p50/p99");
  for (auto& codec : codecs) {
    std::uint64_t in_bytes = 0, out_bytes = 0;
    lepton::util::Percentiles enc_speed, dec_speed, enc_time, dec_time;
    for (const auto& f : bench::corpus(full)) {
      lepton::baselines::CodecResult enc;
      double es = bench::best_of(3,
          [&] { enc = codec->encode({f.bytes.data(), f.bytes.size()}); });
      in_bytes += f.bytes.size();
      if (!enc.ok()) {
        out_bytes += f.bytes.size();  // rejected: stored uncompressed-ish
        continue;
      }
      out_bytes += enc.data.size();
      enc_speed.add(bench::mbits(f.bytes.size()) / es);
      enc_time.add(es);
      lepton::baselines::CodecResult dec;
      double ds = bench::best_of(3,
          [&] { dec = codec->decode({enc.data.data(), enc.data.size()}); });
      if (dec.ok()) {
        dec_speed.add(bench::mbits(f.bytes.size()) / ds);
        dec_time.add(ds);
      }
    }
    double savings = 100.0 * (1.0 - static_cast<double>(out_bytes) / in_bytes);
    std::printf("%-28s %8.1f%% %15.1f %15.1f %7.3f/%6.3f %7.3f/%6.3f\n",
                codec->name().c_str(), savings, enc_speed.percentile(50),
                dec_speed.percentile(50), enc_time.percentile(50),
                enc_time.percentile(99), dec_time.percentile(50),
                dec_time.percentile(99));
  }
  return 0;
}
