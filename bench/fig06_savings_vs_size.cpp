// Figure 6: compression savings vs file size. Paper: savings are uniform
// (~23%) across 0-4 MiB; small images stay competitive because they get
// fewer threads, so each statistic bin sees more of the image (§5.4).
#include "bench_common.h"
#include "lepton/codec.h"

int main(int argc, char** argv) {
  bool full = bench::want_full(argc, argv);
  bench::header("Figure 6: savings vs file size",
                "uniform ~23% across sizes (thread policy keeps small files "
                "competitive)");

  std::printf("%12s %10s %9s\n", "size KiB", "savings %", "threads");
  for (const auto& f : bench::corpus(full)) {
    if (f.kind != lepton::corpus::FileKind::kBaselineJpeg) continue;
    auto enc = lepton::encode_jpeg({f.bytes.data(), f.bytes.size()});
    if (!enc.ok()) continue;
    double savings =
        100.0 * (1.0 - static_cast<double>(enc.data.size()) / f.bytes.size());
    std::printf("%12.1f %9.1f%% %9d\n", f.bytes.size() / 1024.0, savings,
                lepton::threads_for_size(f.bytes.size(), 8));
  }
  return 0;
}
