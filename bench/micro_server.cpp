// Serving-layer microbench: what the socket front-end costs over the
// in-process sessions it drives, on both transports and both connection
// planes. Measures ping RTT (pure protocol + kernel hop), served
// encode/decode round-trip throughput against the in-process one-shot path
// on the same warm CodecContext, served decode TTFB (the §3.4
// streamed-output property must survive the wire), the event plane's
// idle-connection scaling (ping RTT and process thread count with 0, 256
// and 1024 parked keep-alive TCP connections), and a two-daemon TCP soak
// (concurrent well-behaved clients + hostile dribblers; request p50/p99
// and the §6.6 requeue rate). Appends a "bench": "server" entry to the
// committed BENCH_hotpath.json trajectory next to micro_hotpath's per-PR
// entries (docs/OPERATIONS.md explains how to read the file).
//
// Flags: --full for the larger corpus band, --out <path> for the JSON,
// --pr <n> for the trajectory entry id (default: this PR),
// --transport unix|tcp|both (default both) to pick the measured
// transports — CI's perf smoke runs --transport tcp.
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "lepton/lepton.h"
#include "leptond/event_server.h"
#include "server/client.h"
#include "server/endpoint.h"
#include "server/server.h"
#include "util/rng.h"

namespace {

// Bump once per PR that changes serving-layer performance.
constexpr int kCurrentPr = 7;

int process_threads() {
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("Threads:", 0) == 0) return std::atoi(line.c_str() + 8);
  }
  return -1;
}

int raw_connect(const std::string& endpoint) {
  lepton::server::Endpoint ep;
  std::string err;
  if (!lepton::server::parse_endpoint(endpoint, &ep, &err)) return -1;
  return lepton::server::connect_endpoint(ep, &err);
}

struct TransportNumbers {
  double ping_rtt_us = 0;
  double enc_served = 0;  // MB/s
  double dec_served = 0;  // MB/s
  double ttfb_p50 = 0, ttfb_p95 = 0;  // ms
};

// The served measurements against one endpoint (either transport/plane).
TransportNumbers measure_endpoint(
    const std::string& endpoint, double mb,
    const std::vector<std::vector<std::uint8_t>>& files,
    const std::vector<std::vector<std::uint8_t>>& leps) {
  TransportNumbers out;
  auto cli = lepton::server::LeptonClient::connect(endpoint);
  if (!cli.ok()) {
    std::fprintf(stderr, "connect %s: %s\n", endpoint.c_str(),
                 cli.message().c_str());
    std::abort();
  }
  const int kPings = 2000;
  double ping_s = bench::best_of(3, [&] {
    for (int i = 0; i < kPings; ++i) {
      if (!cli.ping().ok()) std::abort();
    }
  });
  out.ping_rtt_us = ping_s / kPings * 1e6;

  double enc_s = bench::best_of(3, [&] {
    for (const auto& f : files) {
      if (!cli.encode({f.data(), f.size()}).ok()) std::abort();
    }
  });
  lepton::util::Percentiles ttfb_ms;
  double dec_s = bench::best_of(3, [&] {
    for (const auto& l : leps) {
      auto r = cli.decode({l.data(), l.size()});
      if (!r.ok()) std::abort();
      ttfb_ms.add(1e3 * r.ttfb_s);
    }
  });
  out.enc_served = mb / enc_s;
  out.dec_served = mb / dec_s;
  out.ttfb_p50 = ttfb_ms.percentile(50);
  out.ttfb_p95 = ttfb_ms.percentile(95);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool full = bench::want_full(argc, argv);
  std::string out_path = "BENCH_hotpath.json";
  std::string transport = "both";
  int pr = kCurrentPr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
    if (std::string(argv[i]) == "--pr") pr = std::atoi(argv[i + 1]);
    if (std::string(argv[i]) == "--transport") transport = argv[i + 1];
  }
  const bool want_unix = transport != "tcp";
  const bool want_tcp = transport != "unix";

  bench::header("micro_server: socket front-end overhead over sessions",
                "§5 runs Lepton as socket-fronted daemons; the serving hop "
                "must cost protocol framing, not throughput");

  lepton::CodecContext ctx(4);

  // Thread plane on AF_UNIX (the PR 5 shape) and event plane on TCP (the
  // leptond shape) — served throughput must be transport-invariant.
  lepton::server::ServerConfig cfg;
  cfg.socket_path = "/tmp/lepton_micro_server_" +
                    std::to_string(static_cast<long>(::getpid())) + ".sock";
  lepton::server::LeptonServer srv(cfg, &ctx);
  lepton::leptond::EventServerConfig ec;
  ec.listen = "tcp:127.0.0.1:0";
  ec.workers = 4;
  lepton::leptond::EventServer tcp_srv(std::move(ec), &ctx);
  if (!srv.start() || !tcp_srv.start()) {
    std::fprintf(stderr, "cannot start servers\n");
    return 1;
  }

  // Baseline JPEGs only; anomalies would end requests in error trailers
  // (and connection closes), which is a different benchmark.
  std::vector<std::vector<std::uint8_t>> files;
  std::size_t jpeg_bytes = 0;
  for (const auto& f : bench::corpus(full)) {
    if (f.kind != lepton::corpus::FileKind::kBaselineJpeg) continue;
    files.push_back(f.bytes);
    jpeg_bytes += f.bytes.size();
  }
  std::vector<std::vector<std::uint8_t>> leps;
  for (const auto& f : files) {
    auto e = ctx.encode({f.data(), f.size()});
    if (!e.ok()) {
      std::fprintf(stderr, "corpus encode failed: %s\n", e.message.c_str());
      return 1;
    }
    leps.push_back(std::move(e.data));
  }
  double mb = jpeg_bytes / 1e6;

  // ---- in-process baselines ----
  double enc_local_s = bench::best_of(3, [&] {
    for (const auto& f : files) {
      if (!ctx.encode({f.data(), f.size()}).ok()) std::abort();
    }
  });
  double dec_local_s = bench::best_of(3, [&] {
    for (const auto& l : leps) {
      lepton::VectorSink sink;
      if (ctx.decode({l.data(), l.size()}, sink) !=
          lepton::util::ExitCode::kSuccess) {
        std::abort();
      }
    }
  });
  double enc_local = mb / enc_local_s, dec_local = mb / dec_local_s;

  // ---- served, per transport ----
  TransportNumbers un, tc;
  if (want_unix) un = measure_endpoint(srv.socket_path(), mb, files, leps);
  if (want_tcp) {
    tc = measure_endpoint(tcp_srv.bound_address(), mb, files, leps);
  }

  std::printf("%-38s %10s\n", "metric", "value");
  std::printf("%-38s %8.2f MB/s\n", "encode, in-process one-shot", enc_local);
  std::printf("%-38s %8.2f MB/s\n", "decode, in-process one-shot", dec_local);
  auto print_transport = [&](const char* name, const TransportNumbers& t) {
    std::printf("%-38s %8.1f us\n",
                (std::string(name) + " ping round trip").c_str(),
                t.ping_rtt_us);
    std::printf("%-38s %8.2f MB/s (%.1f%% of in-process)\n",
                (std::string(name) + " served encode").c_str(), t.enc_served,
                100.0 * t.enc_served / enc_local);
    std::printf("%-38s %8.2f MB/s (%.1f%% of in-process)\n",
                (std::string(name) + " served decode").c_str(), t.dec_served,
                100.0 * t.dec_served / dec_local);
    std::printf("%-38s %8.2f ms (p95 %.2f)\n",
                (std::string(name) + " served decode TTFB").c_str(),
                t.ttfb_p50, t.ttfb_p95);
  };
  if (want_unix) print_transport("unix/thread-plane", un);
  if (want_tcp) print_transport("tcp/event-plane", tc);
  std::printf("  (%zu corpus files, %.2f MB, warm context, best of 3)\n",
              files.size(), mb);

  // ---- idle-connection sweep (the event plane's scaling claim) ----
  // Park keep-alive TCP connections on the daemon and re-measure ping RTT
  // and the process thread count: connections must cost epoll
  // registrations, not threads, and the live path must not degrade.
  std::vector<int> idle_counts = {0, 256, 1024};
  std::vector<double> idle_rtt_us;
  std::vector<int> idle_threads;
  if (want_tcp) {
    std::vector<int> parked;
    auto cli = lepton::server::LeptonClient::connect(tcp_srv.bound_address());
    if (!cli.ok()) return 1;
    for (int target : idle_counts) {
      while (static_cast<int>(parked.size()) < target) {
        int fd = raw_connect(tcp_srv.bound_address());
        if (fd < 0) {
          std::fprintf(stderr, "idle connect failed at %zu\n", parked.size());
          return 1;
        }
        parked.push_back(fd);
      }
      const int kPings = 500;
      double s = bench::best_of(2, [&] {
        for (int i = 0; i < kPings; ++i) {
          if (!cli.ping().ok()) std::abort();
        }
      });
      idle_rtt_us.push_back(s / kPings * 1e6);
      idle_threads.push_back(process_threads());
      std::printf("%5d idle conns: ping %8.1f us, %3d process threads\n",
                  target, idle_rtt_us.back(), idle_threads.back());
    }
    for (int fd : parked) ::close(fd);
  }

  // ---- two-daemon TCP soak: concurrency + hostiles + requeue rate ----
  // A second daemon joins; well-behaved clients convert concurrently with
  // tight first deadlines (requeue to the other daemon, patient), while
  // hostile half-frame dribblers squat on the loops. The §6.6 shape under
  // load: every request converts, p99 stays bounded, hostiles cost nothing.
  std::size_t soak_requests = 0, soak_requeues = 0, soak_failures = 0;
  double soak_p50_ms = 0, soak_p99_ms = 0;
  if (want_tcp) {
    lepton::leptond::EventServerConfig e2;
    e2.listen = "tcp:127.0.0.1:0";
    e2.workers = 4;
    lepton::leptond::EventServer tcp_srv2(std::move(e2), &ctx);
    if (!tcp_srv2.start()) return 1;
    const std::string eps[2] = {tcp_srv.bound_address(),
                                tcp_srv2.bound_address()};

    std::vector<int> hostiles;
    for (int i = 0; i < 16; ++i) {
      int fd = raw_connect(eps[i % 2]);
      if (fd < 0) continue;
      std::uint8_t half[4] = {0x01, 0x00, 0x00, 0x00};
      (void)::send(fd, half, sizeof half, MSG_NOSIGNAL);
      hostiles.push_back(fd);
    }

    const int kThreads = full ? 8 : 4;
    const int kPerThread = full ? 12 : 6;
    std::mutex mu;
    lepton::util::Percentiles lat_ms;
    std::atomic<std::size_t> requeues{0}, failures{0};
    auto soak_worker = [&](int tix) {
      lepton::util::Rng rng(1000 + static_cast<std::uint64_t>(tix));
      for (int i = 0; i < kPerThread; ++i) {
        const auto& body = files[static_cast<std::size_t>(
            rng.below(static_cast<std::uint64_t>(files.size())))];
        auto t0 = std::chrono::steady_clock::now();
        std::size_t target = static_cast<std::size_t>(rng.below(2));
        lepton::server::RequestOptions opts;
        opts.deadline = std::chrono::milliseconds(20);  // trips under load
        bool done = false;
        for (int attempt = 0; attempt < 2 && !done; ++attempt) {
          auto cli = lepton::server::LeptonClient::connect(eps[target]);
          auto r = cli.ok() ? cli.encode({body.data(), body.size()}, opts)
                            : lepton::server::RequestResult{};
          if (r.ok()) {
            done = true;
            break;
          }
          bool requeue_worthy =
              !r.transport_ok ||
              r.code == lepton::util::ExitCode::kTimeout ||
              r.code == lepton::util::ExitCode::kServerShutdown;
          if (!requeue_worthy) break;  // content classification: final
          requeues.fetch_add(1);
          target = 1 - target;       // §6.6: the other daemon
          opts.deadline = std::chrono::milliseconds(0);  // patient retry
        }
        double ms = 1e3 * std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        std::lock_guard<std::mutex> lk(mu);
        lat_ms.add(ms);
        if (!done) failures.fetch_add(1);
      }
    };
    std::vector<std::thread> soakers;
    for (int t = 0; t < kThreads; ++t) soakers.emplace_back(soak_worker, t);
    for (auto& t : soakers) t.join();
    for (int fd : hostiles) ::close(fd);

    soak_requests = static_cast<std::size_t>(kThreads) *
                    static_cast<std::size_t>(kPerThread);
    soak_requeues = requeues.load();
    soak_failures = failures.load();
    soak_p50_ms = lat_ms.percentile(50);
    soak_p99_ms = lat_ms.percentile(99);
    std::printf(
        "soak: %zu requests x %d threads, 16 hostile conns: p50 %.1f ms, "
        "p99 %.1f ms, requeue rate %.2f, failures %zu\n",
        soak_requests, kThreads, soak_p50_ms, soak_p99_ms,
        soak_requests ? static_cast<double>(soak_requeues) / soak_requests
                      : 0.0,
        soak_failures);
    tcp_srv2.stop();
  }

  auto stats = srv.stats();
  auto tstats = tcp_srv.stats();
  std::vector<std::string> entries =
      bench::read_trajectory_entries(out_path, pr, "server");
  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "[\n");
  for (const auto& e : entries) std::fprintf(out, "%s,\n", e.c_str());
  std::fprintf(out,
               "{\n"
               "  \"pr\": %d,\n"
               "  \"bench\": \"server\",\n"
               "  \"ping_rtt_us\": %.1f,\n"
               "  \"encode_local_MBps\": %.2f,\n"
               "  \"encode_served_MBps\": %.2f,\n"
               "  \"encode_served_fraction\": %.3f,\n"
               "  \"decode_local_MBps\": %.2f,\n"
               "  \"decode_served_MBps\": %.2f,\n"
               "  \"decode_served_fraction\": %.3f,\n"
               "  \"decode_ttfb_ms_p50\": %.2f,\n"
               "  \"decode_ttfb_ms_p95\": %.2f,\n"
               "  \"tcp_ping_rtt_us\": %.1f,\n"
               "  \"tcp_encode_served_MBps\": %.2f,\n"
               "  \"tcp_decode_served_MBps\": %.2f,\n"
               "  \"tcp_decode_ttfb_ms_p50\": %.2f,\n"
               "  \"tcp_vs_unix_encode_fraction\": %.3f,\n",
               pr, un.ping_rtt_us, enc_local, un.enc_served,
               un.enc_served > 0 ? un.enc_served / enc_local : 0.0, dec_local,
               un.dec_served,
               un.dec_served > 0 ? un.dec_served / dec_local : 0.0,
               un.ttfb_p50, un.ttfb_p95, tc.ping_rtt_us, tc.enc_served,
               tc.dec_served, tc.ttfb_p50,
               un.enc_served > 0 && tc.enc_served > 0
                   ? tc.enc_served / un.enc_served
                   : 0.0);
  std::fprintf(out, "  \"idle_conns\": [");
  for (std::size_t i = 0; i < idle_rtt_us.size(); ++i) {
    std::fprintf(out, "%s%d", i ? ", " : "", idle_counts[i]);
  }
  std::fprintf(out, "],\n  \"idle_ping_rtt_us\": [");
  for (std::size_t i = 0; i < idle_rtt_us.size(); ++i) {
    std::fprintf(out, "%s%.1f", i ? ", " : "", idle_rtt_us[i]);
  }
  std::fprintf(out, "],\n  \"idle_process_threads\": [");
  for (std::size_t i = 0; i < idle_threads.size(); ++i) {
    std::fprintf(out, "%s%d", i ? ", " : "", idle_threads[i]);
  }
  std::fprintf(out,
               "],\n"
               "  \"soak_requests\": %zu,\n"
               "  \"soak_p50_ms\": %.1f,\n"
               "  \"soak_p99_ms\": %.1f,\n"
               "  \"soak_requeue_rate\": %.3f,\n"
               "  \"soak_failures\": %zu,\n"
               "  \"server_requests\": %llu,\n"
               "  \"server_bytes_out\": %llu,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"corpus_files\": %zu,\n"
               "  \"corpus_MB\": %.2f\n"
               "}\n"
               "]\n",
               soak_requests, soak_p50_ms, soak_p99_ms,
               soak_requests
                   ? static_cast<double>(soak_requeues) / soak_requests
                   : 0.0,
               soak_failures,
               static_cast<unsigned long long>(stats.requests +
                                               tstats.requests),
               static_cast<unsigned long long>(stats.bytes_out +
                                               tstats.bytes_out),
               bench::hardware_concurrency(), files.size(), mb);
  std::fclose(out);
  std::printf("\nwrote %s (trajectory entry pr=%d bench=server, %zu prior "
              "entries kept)\n",
              out_path.c_str(), pr, entries.size());
  srv.stop();
  tcp_srv.stop();
  return 0;
}
