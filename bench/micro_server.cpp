// Serving-layer microbench: what the socket front-end costs over the
// in-process sessions it drives. Measures ping RTT (pure protocol + kernel
// hop), served encode/decode round-trip throughput against the in-process
// one-shot path on the same warm CodecContext, and served decode TTFB (the
// §3.4 streamed-output property must survive the wire). Appends a
// "bench": "server" entry to the committed BENCH_hotpath.json trajectory
// next to micro_hotpath's per-PR entries (docs/OPERATIONS.md explains how
// to read the file).
//
// Flags: --full for the larger corpus band, --out <path> for the JSON,
// --pr <n> for the trajectory entry id (default: this PR).
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "lepton/lepton.h"
#include "server/client.h"
#include "server/server.h"

namespace {

// Bump once per PR that changes serving-layer performance.
constexpr int kCurrentPr = 5;

}  // namespace

int main(int argc, char** argv) {
  bool full = bench::want_full(argc, argv);
  std::string out_path = "BENCH_hotpath.json";
  int pr = kCurrentPr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
    if (std::string(argv[i]) == "--pr") pr = std::atoi(argv[i + 1]);
  }

  bench::header("micro_server: socket front-end overhead over sessions",
                "§5 runs Lepton as socket-fronted daemons; the serving hop "
                "must cost protocol framing, not throughput");

  lepton::CodecContext ctx(4);
  lepton::server::ServerConfig cfg;
  cfg.socket_path = "/tmp/lepton_micro_server_" +
                    std::to_string(static_cast<long>(::getpid())) + ".sock";
  lepton::server::LeptonServer srv(cfg, &ctx);
  if (!srv.start()) {
    std::fprintf(stderr, "cannot start server on %s\n",
                 cfg.socket_path.c_str());
    return 1;
  }

  // Baseline JPEGs only; anomalies would end requests in error trailers
  // (and connection closes), which is a different benchmark.
  std::vector<std::vector<std::uint8_t>> files;
  std::size_t jpeg_bytes = 0;
  for (const auto& f : bench::corpus(full)) {
    if (f.kind != lepton::corpus::FileKind::kBaselineJpeg) continue;
    files.push_back(f.bytes);
    jpeg_bytes += f.bytes.size();
  }
  std::vector<std::vector<std::uint8_t>> leps;
  for (const auto& f : files) {
    auto e = ctx.encode({f.data(), f.size()});
    if (!e.ok()) {
      std::fprintf(stderr, "corpus encode failed: %s\n", e.message.c_str());
      return 1;
    }
    leps.push_back(std::move(e.data));
  }

  // ---- ping RTT (protocol + unix-socket hop, no codec) ----
  auto cli = lepton::server::LeptonClient::connect(srv.socket_path());
  if (!cli.ok()) {
    std::fprintf(stderr, "connect: %s\n", cli.message().c_str());
    return 1;
  }
  const int kPings = 2000;
  double ping_s = bench::best_of(3, [&] {
    for (int i = 0; i < kPings; ++i) {
      if (!cli.ping().ok()) std::abort();
    }
  });
  double ping_rtt_us = ping_s / kPings * 1e6;

  // ---- served vs in-process encode ----
  double enc_local_s = bench::best_of(3, [&] {
    for (const auto& f : files) {
      if (!ctx.encode({f.data(), f.size()}).ok()) std::abort();
    }
  });
  double enc_served_s = bench::best_of(3, [&] {
    for (const auto& f : files) {
      if (!cli.encode({f.data(), f.size()}).ok()) std::abort();
    }
  });

  // ---- served vs in-process decode, plus served TTFB ----
  double dec_local_s = bench::best_of(3, [&] {
    for (const auto& l : leps) {
      lepton::VectorSink sink;
      if (ctx.decode({l.data(), l.size()}, sink) !=
          lepton::util::ExitCode::kSuccess) {
        std::abort();
      }
    }
  });
  lepton::util::Percentiles ttfb_ms;
  double dec_served_s = bench::best_of(3, [&] {
    for (const auto& l : leps) {
      auto r = cli.decode({l.data(), l.size()});
      if (!r.ok()) std::abort();
      ttfb_ms.add(1e3 * r.ttfb_s);
    }
  });

  double mb = jpeg_bytes / 1e6;
  double enc_local = mb / enc_local_s, enc_served = mb / enc_served_s;
  double dec_local = mb / dec_local_s, dec_served = mb / dec_served_s;

  std::printf("%-34s %10s\n", "metric", "value");
  std::printf("%-34s %8.1f us\n", "ping round trip", ping_rtt_us);
  std::printf("%-34s %8.2f MB/s\n", "encode, in-process one-shot", enc_local);
  std::printf("%-34s %8.2f MB/s (%.1f%% of in-process)\n",
              "encode, served round trip", enc_served,
              100.0 * enc_served / enc_local);
  std::printf("%-34s %8.2f MB/s\n", "decode, in-process one-shot", dec_local);
  std::printf("%-34s %8.2f MB/s (%.1f%% of in-process)\n",
              "decode, served round trip", dec_served,
              100.0 * dec_served / dec_local);
  std::printf("%-34s %8.2f ms (p95 %.2f)\n", "served decode TTFB",
              ttfb_ms.percentile(50), ttfb_ms.percentile(95));
  std::printf("  (%zu corpus files, %.2f MB, warm context, best of 3)\n",
              files.size(), mb);

  auto stats = srv.stats();
  std::vector<std::string> entries =
      bench::read_trajectory_entries(out_path, pr, "server");
  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "[\n");
  for (const auto& e : entries) std::fprintf(out, "%s,\n", e.c_str());
  std::fprintf(out,
               "{\n"
               "  \"pr\": %d,\n"
               "  \"bench\": \"server\",\n"
               "  \"ping_rtt_us\": %.1f,\n"
               "  \"encode_local_MBps\": %.2f,\n"
               "  \"encode_served_MBps\": %.2f,\n"
               "  \"encode_served_fraction\": %.3f,\n"
               "  \"decode_local_MBps\": %.2f,\n"
               "  \"decode_served_MBps\": %.2f,\n"
               "  \"decode_served_fraction\": %.3f,\n"
               "  \"decode_ttfb_ms_p50\": %.2f,\n"
               "  \"decode_ttfb_ms_p95\": %.2f,\n"
               "  \"server_requests\": %llu,\n"
               "  \"server_bytes_out\": %llu,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"corpus_files\": %zu,\n"
               "  \"corpus_MB\": %.2f\n"
               "}\n"
               "]\n",
               pr, ping_rtt_us, enc_local, enc_served, enc_served / enc_local,
               dec_local, dec_served, dec_served / dec_local,
               ttfb_ms.percentile(50), ttfb_ms.percentile(95),
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.bytes_out),
               bench::hardware_concurrency(), files.size(), mb);
  std::fclose(out);
  std::printf("\nwrote %s (trajectory entry pr=%d bench=server, %zu prior "
              "entries kept)\n",
              out_path.c_str(), pr, entries.size());
  srv.stop();
  return 0;
}
