// Figure 11: datacenter chassis power and compressions/s during the
// Sept 26, 2016 backfill outage. Paper: ~278 kW cluster footprint encoding
// 5,583 chunks/s; when backfill stops the power drops by 121 kW and
// resumes with DropSpot re-allocating spare machines.
#include "bench_common.h"
#include "storage/backfill.h"

int main() {
  bench::header("Figure 11: backfill power & throughput with outage",
                "~278 kW, 5583 chunks/s; -121 kW while backfill stopped");
  lepton::storage::BackfillConfig cfg;
  auto series =
      lepton::storage::simulate_backfill_day(cfg, /*outage_start_h=*/10.0,
                                             /*outage_end_h=*/14.0);
  std::printf("%8s %12s %18s %10s\n", "hour", "power kW", "compressions/s",
              "backfill");
  for (std::size_t i = 0; i < series.size(); i += 10) {
    const auto& s = series[i];
    std::printf("%8.1f %12.1f %18.0f %10s\n", s.hour, s.power_kw,
                s.compressions_per_s, s.backfill_active ? "on" : "OFF");
  }
  return 0;
}
