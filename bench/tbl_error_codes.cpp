// §6.2 table: exit codes observed over the backfill corpus. Paper:
// Success 94.07%, Progressive 3.04%, Unsupported 1.54%, Not-an-image 0.80%,
// CMYK 0.48%, memory/timeout/roundtrip tails < 0.05% each. Our corpus
// injects the same anomaly mix; the admit path classifies every file.
#include <array>

#include "bench_common.h"
#include "lepton/store.h"

int main(int argc, char** argv) {
  bool full = bench::want_full(argc, argv);
  bench::header("§6.2 table: exit codes over the corpus",
                "success ~94%; progressive ~3%; unsupported ~1.5%; "
                "not-an-image ~0.8%; CMYK ~0.5%");

  using lepton::util::ExitCode;
  std::array<std::uint64_t, static_cast<std::size_t>(ExitCode::kCount)>
      counts{};
  std::uint64_t total = 0;

  lepton::TransparentStore store;
  for (const auto& f : bench::corpus(full)) {
    lepton::PutStats stats;
    (void)store.put({f.bytes.data(), f.bytes.size()}, &stats);
    ExitCode code = stats.lepton_code;
    if (code == ExitCode::kSuccess && !stats.roundtrip_ok) {
      code = ExitCode::kRoundtripFailed;
    }
    ++counts[static_cast<std::size_t>(code)];
    ++total;
  }

  std::printf("%-24s %10s %10s\n", "exit code", "count", "fraction");
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    std::printf("%-24s %10llu %9.2f%%\n",
                std::string(lepton::util::exit_code_name(
                                static_cast<ExitCode>(i)))
                    .c_str(),
                static_cast<unsigned long long>(counts[i]),
                100.0 * counts[i] / total);
  }
  std::printf("\n(anomaly proportions are injected at corpus build time; "
              "zero-wiped tails land in Success when the RST-count + "
              "trailing-data machinery round-trips them, as in §A.3)\n");
  return 0;
}
