// Figure 5: a typical production week of coding events, normalized to the
// weekly minimum. Paper: weekday upload (encode) rates resemble weekends,
// but weekday download (decode) rates are higher — decode:encode ≈ 1.5 on
// weekdays, ≈ 1.0 on weekends.
#include "bench_common.h"
#include "storage/workload.h"

int main() {
  bench::header("Figure 5: weekly encode/decode rates vs weekly min",
                "weekend decode:encode -> 1.0, weekday -> 1.5");
  lepton::storage::WorkloadModel wl;

  // Hourly samples over a week (Sept 13-19 in the paper).
  std::vector<double> enc, dec;
  for (int h = 0; h < 7 * 24; ++h) {
    double t = h * lepton::storage::kHour;
    enc.push_back(wl.encode_rate(t));
    dec.push_back(wl.decode_rate(t));
  }
  double enc_min = *std::min_element(enc.begin(), enc.end());
  double dec_min = *std::min_element(dec.begin(), dec.end());

  const char* days[7] = {"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  std::printf("%4s %6s %14s %14s %8s\n", "day", "hour", "encodes/min",
              "decodes/min", "ratio");
  for (int h = 0; h < 7 * 24; h += 4) {
    std::printf("%4s %5d h %14.2f %14.2f %8.2f\n", days[h / 24], h % 24,
                enc[h] / enc_min, dec[h] / dec_min, dec[h] / enc[h]);
  }
  return 0;
}
