// Figure 12: hourly decode-latency percentiles around the moment
// transparent huge pages were disabled (April 13, 03:00). Paper: with THP
// enabled, kernel page defragmentation stalls decodes *before they read a
// single input byte*, inflating p95/p99 (up to 30 s) while barely moving
// the median; disabling THP collapses the tail.
#include "bench_common.h"
#include "storage/rollout.h"

int main() {
  bench::header("Figure 12: hourly decode latency, THP disabled mid-series",
                "p99/p95 collapse when THP is disabled; p50 unchanged");
  lepton::storage::ThpConfig cfg;
  auto series = lepton::storage::simulate_thp(cfg);
  std::printf("%6s %8s %8s %8s %8s %6s\n", "hour", "p50 s", "p75 s", "p95 s",
              "p99 s", "THP");
  for (const auto& s : series) {
    std::printf("%6.0f %8.3f %8.3f %8.3f %8.3f %6s\n", s.hour, s.p50, s.p75,
                s.p95, s.p99,
                s.hour < cfg.disable_at_hour ? "on" : "off");
  }
  return 0;
}
