// Hot-path microbench: measures the primitives rewritten by the
// performance overhauls (batched 64-bit bit reader, bool-coder adaptive and
// literal paths) against in-binary per-bit reference implementations,
// attributes the adaptive-model levers separately (bin cluster layout,
// speculative multi-bit decode, SIMD Huffman re-encode, AVX2 IDCT pass),
// and reports single-thread whole-codec encode/decode throughput through
// one warm CodecContext on the generated corpus. Emits BENCH_hotpath.json
// so future PRs have a perf trajectory (no google-benchmark dependency:
// plain steady_clock with best-of-N via bench::best_of).
//
// Flags: --full for the larger corpus band, --out <path> for the JSON.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "coding/bool_coder.h"
#include "coding/coder_ops.h"
#include "jpeg/dct.h"
#include "jpeg/parser.h"
#include "jpeg/scan_decoder.h"
#include "jpeg/scan_encoder.h"
#include "jpeg/stuffed_bitio.h"
#include "lepton/lepton.h"
#include "model/model.h"
#include "util/cpu_features.h"
#include "util/rng.h"

namespace {

using bench::best_of;

// Optimizer barrier: forces `v` to be materialized (the measured loops
// otherwise have no observable effect and get dead-code-eliminated).
template <typename T>
inline void keep(T&& v) {
  asm volatile("" : : "g"(v) : "memory");
}

// ---- bit reader: batched get_bits vs the per-bit loop it replaced ----------

std::vector<std::uint8_t> make_stuffed_stream(std::size_t bytes) {
  lepton::util::Rng rng(404);
  std::vector<std::uint8_t> scan;
  scan.reserve(bytes + bytes / 200);
  for (std::size_t i = 0; i < bytes; ++i) {
    auto b = static_cast<std::uint8_t>(rng.below(256));
    scan.push_back(b);
    if (b == 0xFF) scan.push_back(0x00);
  }
  return scan;
}

double bit_reader_batched_mbps(const std::vector<std::uint8_t>& scan) {
  double s = best_of(5, [&] {
    lepton::jpegfmt::StuffedBitReader rd({scan.data(), scan.size()});
    std::int64_t sink = 0;
    for (;;) {
      std::int32_t v = rd.get_bits(11);
      if (v < 0) break;
      sink += v;
    }
    keep(sink);
  });
  return scan.size() / 1e6 / s;
}

double bit_reader_per_bit_mbps(const std::vector<std::uint8_t>& scan) {
  double s = best_of(5, [&] {
    lepton::jpegfmt::StuffedBitReader rd({scan.data(), scan.size()});
    std::int64_t sink = 0;
    for (;;) {
      // The pre-overhaul get_bits: one get_bit call per bit.
      std::int32_t v = 0;
      bool done = false;
      for (int i = 0; i < 11; ++i) {
        int b = rd.get_bit();
        if (b < 0) {
          done = true;
          break;
        }
        v = (v << 1) | b;
      }
      if (done) break;
      sink += v;
    }
    keep(sink);
  });
  return scan.size() / 1e6 / s;
}

// ---- bool coder -------------------------------------------------------------

struct BoolCoderRates {
  double encode_adaptive_mbits;
  double decode_adaptive_mbits;
  double encode_literal_mbits;
  double decode_literal_mbits;
};

BoolCoderRates bool_coder_rates() {
  const int n = 1 << 21;
  lepton::util::Rng rng(405);
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = rng.chance(0.3) ? 1 : 0;

  BoolCoderRates r{};
  std::vector<std::uint8_t> buf;
  r.encode_adaptive_mbits = n / 1e6 / best_of(3, [&] {
    lepton::coding::BoolEncoder enc(&buf);
    for (int i = 0; i < n; ++i) enc.put(bits[i] != 0, 179);
    enc.finish_into_buffer();
  });
  r.decode_adaptive_mbits = n / 1e6 / best_of(3, [&] {
    lepton::coding::BoolDecoder dec({buf.data(), buf.size()});
    int sink = 0;
    for (int i = 0; i < n; ++i) sink += dec.get(179);
    keep(sink);
  });

  const int lit_words = n / 16;
  std::vector<std::uint16_t> words(lit_words);
  for (auto& w : words) w = static_cast<std::uint16_t>(rng.next());
  r.encode_literal_mbits = n / 1e6 / best_of(3, [&] {
    lepton::coding::BoolEncoder enc(&buf);
    for (int i = 0; i < lit_words; ++i) enc.put_literal(words[i], 16);
    enc.finish_into_buffer();
  });
  r.decode_literal_mbits = n / 1e6 / best_of(3, [&] {
    lepton::coding::BoolDecoder dec({buf.data(), buf.size()});
    std::uint32_t sink = 0;
    for (int i = 0; i < lit_words; ++i) sink += dec.get_literal(16);
    keep(sink);
  });
  return r;
}

// ---- lever 1: bin cluster layout -------------------------------------------
//
// Codes the same value stream through the clustered 7x7 bins (model.h
// Coef77Bins) and through an in-binary replica of the pre-overhaul layout
// (exp/sign/res in three separate model-scale arrays). Identical coding
// work; only the bin addresses differ.

struct ScatteredC77 {  // the layout the clusters replaced
  lepton::coding::Branch exp[49][12][10][11];
  lepton::coding::Branch sign[49][12];
  lepton::coding::Branch res[49][12][10];
};

struct LayoutRates {
  double clustered_mvals;
  double scattered_mvals;
};

LayoutRates layout_lever() {
  const int n = 1 << 19;
  lepton::util::Rng rng(406);
  struct Ctx {
    std::uint16_t i, avg, rem;
    std::int16_t v;
  };
  std::vector<Ctx> work(n);
  for (auto& w : work) {
    w.i = static_cast<std::uint16_t>(rng.below(49));
    w.avg = static_cast<std::uint16_t>(rng.below(12));
    w.rem = static_cast<std::uint16_t>(rng.below(10));
    w.v = static_cast<std::int16_t>(rng.below(64)) - 32;
  }
  std::vector<std::uint8_t> buf;
  auto clustered = std::make_unique<lepton::model::KindModel>();
  double cs = best_of(3, [&] {
    lepton::coding::BoolEncoder enc(&buf);
    lepton::coding::EncodeOps ops{&enc};
    for (const auto& w : work) {
      auto& cb = clustered->c77.at(w.i).at(w.avg);
      lepton::coding::code_value(ops, cb.exp_row(w.rem), &cb.sign,
                                 cb.res.data(), 10, w.v);
    }
    enc.finish_into_buffer();
  });
  auto scattered = std::make_unique<ScatteredC77>();
  double ss = best_of(3, [&] {
    lepton::coding::BoolEncoder enc(&buf);
    lepton::coding::EncodeOps ops{&enc};
    for (const auto& w : work) {
      lepton::coding::code_value(ops, scattered->exp[w.i][w.avg][w.rem],
                                 &scattered->sign[w.i][w.avg],
                                 scattered->res[w.i][w.avg], 10, w.v);
    }
    enc.finish_into_buffer();
  });
  return {n / 1e6 / cs, n / 1e6 / ss};
}

// ---- lever 2: speculative multi-bit decode ---------------------------------
//
// Decodes one stream twice: through the speculative DecodeOps overloads
// (prob preload + batched renormalization — what SegmentCodec uses) and
// through the per-bit reference templates instantiated with DecodeOps.
// Both must yield identical values; the ratio is the lever.

struct SpecRates {
  double spec_mvals;
  double ref_mvals;
};

SpecRates speculative_lever() {
  const int n = 1 << 19;
  lepton::util::Rng rng(407);
  std::vector<std::int16_t> vals(n);
  for (auto& v : vals) v = static_cast<std::int16_t>(rng.below(64)) - 32;
  auto bins = std::make_unique<lepton::model::ValueBins<10>[]>(64);
  std::vector<std::uint8_t> buf;
  {
    lepton::coding::BoolEncoder enc(&buf);
    lepton::coding::EncodeOps ops{&enc};
    for (int k = 0; k < n; ++k) {
      auto& b = bins[k & 63];
      lepton::coding::code_value(ops, b.exp.data(), &b.sign, b.res.data(), 10,
                                 vals[k]);
    }
    enc.finish_into_buffer();
  }
  auto reset_bins = [&] {
    for (int k = 0; k < 64; ++k) bins[k] = lepton::model::ValueBins<10>{};
  };
  std::int64_t sink = 0;
  double ss = best_of(3, [&] {
    reset_bins();
    lepton::coding::BoolDecoder dec({buf.data(), buf.size()});
    lepton::coding::DecodeOps ops{&dec};
    for (int k = 0; k < n; ++k) {
      auto& b = bins[k & 63];
      // Overload resolution picks the speculative non-template overload.
      sink += lepton::coding::code_value(ops, b.exp.data(), &b.sign,
                                         b.res.data(), 10, 0);
    }
  });
  double rs = best_of(3, [&] {
    reset_bins();
    lepton::coding::BoolDecoder dec({buf.data(), buf.size()});
    lepton::coding::DecodeOps ops{&dec};
    for (int k = 0; k < n; ++k) {
      auto& b = bins[k & 63];
      // Explicit template instantiation: the per-bit reference.
      sink += lepton::coding::code_value<lepton::coding::DecodeOps>(
          ops, b.exp.data(), &b.sign, b.res.data(), 10, 0);
    }
  });
  keep(sink);
  return {n / 1e6 / ss, n / 1e6 / rs};
}

// ---- lever 3: SIMD Huffman re-encode ---------------------------------------
//
// Re-encodes a real corpus file's scan (the decode path's per-row work)
// with SIMD dispatch active vs pinned to the scalar fallback.

struct ReencodeRates {
  double simd_mbps;
  double scalar_mbps;
};

ReencodeRates reencode_lever(const std::vector<std::uint8_t>& jpeg) {
  auto jf = lepton::jpegfmt::parse_jpeg({jpeg.data(), jpeg.size()});
  auto dec = lepton::jpegfmt::decode_scan(jf);
  double bytes = static_cast<double>(jf.scan_bytes().size());
  double ss = 0, cs = 0;
  lepton::util::force_simd_level(lepton::util::detected_simd());
  cs = best_of(5, [&] {
    auto scan = lepton::jpegfmt::encode_scan(jf, dec.coeffs, dec.pad_bit,
                                             dec.rst_count);
    keep(scan.size());
  });
  lepton::util::force_simd_level(lepton::util::SimdLevel::kScalar);
  ss = best_of(5, [&] {
    auto scan = lepton::jpegfmt::encode_scan(jf, dec.coeffs, dec.pad_bit,
                                             dec.rst_count);
    keep(scan.size());
  });
  lepton::util::clear_simd_override();
  return {bytes / 1e6 / cs, bytes / 1e6 / ss};
}

// ---- lever 4: AVX2 IDCT column pass ----------------------------------------

struct IdctRates {
  double simd_ns;
  double scalar_ns;
};

IdctRates idct_lever() {
  lepton::util::Rng rng(408);
  const int nblocks = 512;
  std::vector<std::array<std::int16_t, 64>> blocks(nblocks);
  std::uint16_t q[64];
  for (auto& v : q) v = static_cast<std::uint16_t>(1 + rng.below(48));
  for (auto& b : blocks) {
    b.fill(0);
    int nz = static_cast<int>(rng.below(24));
    for (int i = 0; i < nz; ++i) {
      b[rng.below(64)] = static_cast<std::int16_t>(rng.below(256)) - 128;
    }
  }
  std::int32_t out[64];
  std::int64_t sink = 0;
  const int rounds = 40;
  auto run = [&] {
    for (int r = 0; r < rounds; ++r) {
      for (const auto& b : blocks) {
        lepton::jpegfmt::idct_8x8_dequant_ac(b.data(), q, out);
        sink += out[9];
      }
    }
  };
  lepton::util::force_simd_level(lepton::util::detected_simd());
  double cs = best_of(3, run);
  lepton::util::force_simd_level(lepton::util::SimdLevel::kScalar);
  double ss = best_of(3, run);
  lepton::util::clear_simd_override();
  keep(sink);
  double per = static_cast<double>(rounds) * nblocks;
  return {cs / per * 1e9, ss / per * 1e9};
}

}  // namespace

int main(int argc, char** argv) {
  bool full = bench::want_full(argc, argv);
  std::string out_path = "BENCH_hotpath.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
  }

  bench::header("micro_hotpath: bit I/O, bool coder, single-thread codec",
                "Lepton decodes >300 MB/s/instance across 16 threads (§5.4); "
                "this tracks the single-thread hot paths that number rests on");

  // ---- primitives ----
  auto scan = make_stuffed_stream(full ? (8u << 20) : (2u << 20));
  double rd_batched = bit_reader_batched_mbps(scan);
  double rd_per_bit = bit_reader_per_bit_mbps(scan);
  auto bc = bool_coder_rates();
  std::printf("bit reader      : batched %7.1f MB/s   per-bit %7.1f MB/s   (%.2fx)\n",
              rd_batched, rd_per_bit, rd_batched / rd_per_bit);
  std::printf("bool coder      : adaptive enc %6.1f / dec %6.1f Mbit/s\n",
              bc.encode_adaptive_mbits, bc.decode_adaptive_mbits);
  std::printf("bool coder      : literal  enc %6.1f / dec %6.1f Mbit/s   (%.2fx enc)\n",
              bc.encode_literal_mbits, bc.decode_literal_mbits,
              bc.encode_literal_mbits / bc.encode_adaptive_mbits);

  // ---- adaptive-model levers, attributed separately ----
  auto lay = layout_lever();
  auto spec = speculative_lever();
  auto idct = idct_lever();
  std::printf("bin layout      : clustered %5.2f / scattered %5.2f Mvalues/s   (%.2fx)\n",
              lay.clustered_mvals, lay.scattered_mvals,
              lay.clustered_mvals / lay.scattered_mvals);
  std::printf("spec decode     : speculative %5.2f / per-bit ref %5.2f Mvalues/s (%.2fx)\n",
              spec.spec_mvals, spec.ref_mvals,
              spec.spec_mvals / spec.ref_mvals);
  std::printf("idct pass 2     : %s %6.1f / scalar %6.1f ns/block   (%.2fx)\n",
              lepton::util::simd_level_name(lepton::util::detected_simd()),
              idct.simd_ns, idct.scalar_ns, idct.scalar_ns / idct.simd_ns);

  // ---- whole-codec single-thread encode+decode on the generated corpus ----
  std::vector<std::vector<std::uint8_t>> files;
  std::size_t total = 0;
  for (const auto& f : bench::corpus(full)) {
    if (f.kind != lepton::corpus::FileKind::kBaselineJpeg) continue;
    files.push_back(f.bytes);
    total += f.bytes.size();
  }
  lepton::CodecContext ctx(1);
  lepton::EncodeOptions eopt;
  eopt.force_threads = 1;
  eopt.run_parallel = false;
  lepton::DecodeOptions dopt;
  dopt.run_parallel = false;

  std::vector<std::vector<std::uint8_t>> encoded;
  for (const auto& f : files) {
    auto e = ctx.encode({f.data(), f.size()}, eopt);
    if (!e.ok()) {
      std::fprintf(stderr, "corpus encode failed: %s\n", e.message.c_str());
      return 1;
    }
    encoded.push_back(std::move(e.data));
  }
  double es = best_of(5, [&] {
    for (const auto& f : files) {
      auto e = ctx.encode({f.data(), f.size()}, eopt);
      if (!e.ok()) std::abort();
    }
  });
  double ds = best_of(5, [&] {
    for (const auto& e : encoded) {
      auto d = ctx.decode({e.data(), e.size()}, dopt);
      if (!d.ok()) std::abort();
    }
  });
  double mb = total / 1e6;
  double enc_mbps = mb / es, dec_mbps = mb / ds;
  double combined = 2 * mb / (es + ds);
  std::printf("codec 1-thread  : encode %5.2f MB/s   decode %5.2f MB/s   combined %5.2f MB/s\n",
              enc_mbps, dec_mbps, combined);
  std::printf("  (%zu corpus files, %.2f MB, warm CodecContext, best of 5)\n",
              files.size(), mb);

  // ---- SIMD re-encode lever (uses the first corpus file's real scan) ----
  auto re = reencode_lever(files.front());
  std::printf("scan re-encode  : %s %6.2f / scalar %6.2f MB/s   (%.2fx)\n",
              lepton::util::simd_level_name(lepton::util::detected_simd()),
              re.simd_mbps, re.scalar_mbps, re.simd_mbps / re.scalar_mbps);

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bit_reader_batched_MBps\": %.2f,\n"
               "  \"bit_reader_per_bit_MBps\": %.2f,\n"
               "  \"bit_reader_speedup\": %.3f,\n"
               "  \"bool_adaptive_encode_Mbps\": %.2f,\n"
               "  \"bool_adaptive_decode_Mbps\": %.2f,\n"
               "  \"bool_literal_encode_Mbps\": %.2f,\n"
               "  \"bool_literal_decode_Mbps\": %.2f,\n"
               "  \"bool_literal_encode_speedup\": %.3f,\n"
               "  \"layout_clustered_Mvals\": %.2f,\n"
               "  \"layout_scattered_Mvals\": %.2f,\n"
               "  \"layout_speedup\": %.3f,\n"
               "  \"spec_decode_Mvals\": %.2f,\n"
               "  \"spec_decode_ref_Mvals\": %.2f,\n"
               "  \"spec_decode_speedup\": %.3f,\n"
               "  \"reencode_simd_MBps\": %.2f,\n"
               "  \"reencode_scalar_MBps\": %.2f,\n"
               "  \"reencode_simd_speedup\": %.3f,\n"
               "  \"idct_simd_ns_per_block\": %.1f,\n"
               "  \"idct_scalar_ns_per_block\": %.1f,\n"
               "  \"idct_speedup\": %.3f,\n"
               "  \"simd_level\": \"%s\",\n"
               "  \"codec_encode_MBps\": %.2f,\n"
               "  \"codec_decode_MBps\": %.2f,\n"
               "  \"codec_combined_MBps\": %.2f,\n"
               "  \"corpus_files\": %zu,\n"
               "  \"corpus_MB\": %.2f\n"
               "}\n",
               rd_batched, rd_per_bit, rd_batched / rd_per_bit,
               bc.encode_adaptive_mbits, bc.decode_adaptive_mbits,
               bc.encode_literal_mbits, bc.decode_literal_mbits,
               bc.encode_literal_mbits / bc.encode_adaptive_mbits,
               lay.clustered_mvals, lay.scattered_mvals,
               lay.clustered_mvals / lay.scattered_mvals, spec.spec_mvals,
               spec.ref_mvals, spec.spec_mvals / spec.ref_mvals, re.simd_mbps,
               re.scalar_mbps, re.simd_mbps / re.scalar_mbps, idct.simd_ns,
               idct.scalar_ns, idct.scalar_ns / idct.simd_ns,
               lepton::util::simd_level_name(lepton::util::detected_simd()),
               enc_mbps, dec_mbps, combined, files.size(), mb);
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
