// Hot-path microbench: measures the primitives rewritten by the
// performance overhaul (batched 64-bit bit reader, bool-coder adaptive and
// literal paths) against in-binary per-bit reference implementations, plus
// single-thread whole-codec encode/decode throughput through one warm
// CodecContext on the generated corpus. Emits BENCH_hotpath.json so future
// PRs have a perf trajectory (no google-benchmark dependency: plain
// steady_clock with best-of-N).
//
// Flags: --full for the larger corpus band, --out <path> for the JSON.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "coding/bool_coder.h"
#include "jpeg/stuffed_bitio.h"
#include "lepton/lepton.h"
#include "util/rng.h"

namespace {

double best_of(int rounds, const std::function<void()>& fn) {
  double best = 1e100;
  for (int r = 0; r < rounds; ++r) best = std::min(best, bench::time_s(fn));
  return best;
}

// Optimizer barrier: forces `v` to be materialized (the measured loops
// otherwise have no observable effect and get dead-code-eliminated).
template <typename T>
inline void keep(T&& v) {
  asm volatile("" : : "g"(v) : "memory");
}

// ---- bit reader: batched get_bits vs the per-bit loop it replaced ----------

std::vector<std::uint8_t> make_stuffed_stream(std::size_t bytes) {
  lepton::util::Rng rng(404);
  std::vector<std::uint8_t> scan;
  scan.reserve(bytes + bytes / 200);
  for (std::size_t i = 0; i < bytes; ++i) {
    auto b = static_cast<std::uint8_t>(rng.below(256));
    scan.push_back(b);
    if (b == 0xFF) scan.push_back(0x00);
  }
  return scan;
}

double bit_reader_batched_mbps(const std::vector<std::uint8_t>& scan) {
  double s = best_of(5, [&] {
    lepton::jpegfmt::StuffedBitReader rd({scan.data(), scan.size()});
    std::int64_t sink = 0;
    for (;;) {
      std::int32_t v = rd.get_bits(11);
      if (v < 0) break;
      sink += v;
    }
    keep(sink);
  });
  return scan.size() / 1e6 / s;
}

double bit_reader_per_bit_mbps(const std::vector<std::uint8_t>& scan) {
  double s = best_of(5, [&] {
    lepton::jpegfmt::StuffedBitReader rd({scan.data(), scan.size()});
    std::int64_t sink = 0;
    for (;;) {
      // The pre-overhaul get_bits: one get_bit call per bit.
      std::int32_t v = 0;
      bool done = false;
      for (int i = 0; i < 11; ++i) {
        int b = rd.get_bit();
        if (b < 0) {
          done = true;
          break;
        }
        v = (v << 1) | b;
      }
      if (done) break;
      sink += v;
    }
    keep(sink);
  });
  return scan.size() / 1e6 / s;
}

// ---- bool coder -------------------------------------------------------------

struct BoolCoderRates {
  double encode_adaptive_mbits;
  double decode_adaptive_mbits;
  double encode_literal_mbits;
  double decode_literal_mbits;
};

BoolCoderRates bool_coder_rates() {
  const int n = 1 << 21;
  lepton::util::Rng rng(405);
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = rng.chance(0.3) ? 1 : 0;

  BoolCoderRates r{};
  std::vector<std::uint8_t> buf;
  r.encode_adaptive_mbits = n / 1e6 / best_of(3, [&] {
    lepton::coding::BoolEncoder enc(&buf);
    for (int i = 0; i < n; ++i) enc.put(bits[i] != 0, 179);
    enc.finish_into_buffer();
  });
  r.decode_adaptive_mbits = n / 1e6 / best_of(3, [&] {
    lepton::coding::BoolDecoder dec({buf.data(), buf.size()});
    int sink = 0;
    for (int i = 0; i < n; ++i) sink += dec.get(179);
    keep(sink);
  });

  const int lit_words = n / 16;
  std::vector<std::uint16_t> words(lit_words);
  for (auto& w : words) w = static_cast<std::uint16_t>(rng.next());
  r.encode_literal_mbits = n / 1e6 / best_of(3, [&] {
    lepton::coding::BoolEncoder enc(&buf);
    for (int i = 0; i < lit_words; ++i) enc.put_literal(words[i], 16);
    enc.finish_into_buffer();
  });
  r.decode_literal_mbits = n / 1e6 / best_of(3, [&] {
    lepton::coding::BoolDecoder dec({buf.data(), buf.size()});
    std::uint32_t sink = 0;
    for (int i = 0; i < lit_words; ++i) sink += dec.get_literal(16);
    keep(sink);
  });
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool full = bench::want_full(argc, argv);
  std::string out_path = "BENCH_hotpath.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
  }

  bench::header("micro_hotpath: bit I/O, bool coder, single-thread codec",
                "Lepton decodes >300 MB/s/instance across 16 threads (§5.4); "
                "this tracks the single-thread hot paths that number rests on");

  // ---- primitives ----
  auto scan = make_stuffed_stream(full ? (8u << 20) : (2u << 20));
  double rd_batched = bit_reader_batched_mbps(scan);
  double rd_per_bit = bit_reader_per_bit_mbps(scan);
  auto bc = bool_coder_rates();
  std::printf("bit reader      : batched %7.1f MB/s   per-bit %7.1f MB/s   (%.2fx)\n",
              rd_batched, rd_per_bit, rd_batched / rd_per_bit);
  std::printf("bool coder      : adaptive enc %6.1f / dec %6.1f Mbit/s\n",
              bc.encode_adaptive_mbits, bc.decode_adaptive_mbits);
  std::printf("bool coder      : literal  enc %6.1f / dec %6.1f Mbit/s   (%.2fx enc)\n",
              bc.encode_literal_mbits, bc.decode_literal_mbits,
              bc.encode_literal_mbits / bc.encode_adaptive_mbits);

  // ---- whole-codec single-thread encode+decode on the generated corpus ----
  std::vector<std::vector<std::uint8_t>> files;
  std::size_t total = 0;
  for (const auto& f : bench::corpus(full)) {
    if (f.kind != lepton::corpus::FileKind::kBaselineJpeg) continue;
    files.push_back(f.bytes);
    total += f.bytes.size();
  }
  lepton::CodecContext ctx(1);
  lepton::EncodeOptions eopt;
  eopt.force_threads = 1;
  eopt.run_parallel = false;
  lepton::DecodeOptions dopt;
  dopt.run_parallel = false;

  std::vector<std::vector<std::uint8_t>> encoded;
  for (const auto& f : files) {
    auto e = ctx.encode({f.data(), f.size()}, eopt);
    if (!e.ok()) {
      std::fprintf(stderr, "corpus encode failed: %s\n", e.message.c_str());
      return 1;
    }
    encoded.push_back(std::move(e.data));
  }
  double es = best_of(3, [&] {
    for (const auto& f : files) {
      auto e = ctx.encode({f.data(), f.size()}, eopt);
      if (!e.ok()) std::abort();
    }
  });
  double ds = best_of(3, [&] {
    for (const auto& e : encoded) {
      auto d = ctx.decode({e.data(), e.size()}, dopt);
      if (!d.ok()) std::abort();
    }
  });
  double mb = total / 1e6;
  double enc_mbps = mb / es, dec_mbps = mb / ds;
  double combined = 2 * mb / (es + ds);
  std::printf("codec 1-thread  : encode %5.2f MB/s   decode %5.2f MB/s   combined %5.2f MB/s\n",
              enc_mbps, dec_mbps, combined);
  std::printf("  (%zu corpus files, %.2f MB, warm CodecContext, best of 3)\n",
              files.size(), mb);

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bit_reader_batched_MBps\": %.2f,\n"
               "  \"bit_reader_per_bit_MBps\": %.2f,\n"
               "  \"bit_reader_speedup\": %.3f,\n"
               "  \"bool_adaptive_encode_Mbps\": %.2f,\n"
               "  \"bool_adaptive_decode_Mbps\": %.2f,\n"
               "  \"bool_literal_encode_Mbps\": %.2f,\n"
               "  \"bool_literal_decode_Mbps\": %.2f,\n"
               "  \"bool_literal_encode_speedup\": %.3f,\n"
               "  \"codec_encode_MBps\": %.2f,\n"
               "  \"codec_decode_MBps\": %.2f,\n"
               "  \"codec_combined_MBps\": %.2f,\n"
               "  \"corpus_files\": %zu,\n"
               "  \"corpus_MB\": %.2f\n"
               "}\n",
               rd_batched, rd_per_bit, rd_batched / rd_per_bit,
               bc.encode_adaptive_mbits, bc.decode_adaptive_mbits,
               bc.encode_literal_mbits, bc.decode_literal_mbits,
               bc.encode_literal_mbits / bc.encode_adaptive_mbits, enc_mbps,
               dec_mbps, combined, files.size(), mb);
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
